#!/bin/sh
# cover.sh — run the full test suite with a merged coverage profile and
# enforce the recorded coverage floor. CI uploads the profile as an
# artifact; inspect it locally with:
#
#   go tool cover -html=cover.out
#
# BASELINE is the total-statement floor in percent. Raise it when coverage
# durably improves; never lower it to make a PR pass — add tests instead.
#
# Environment knobs:
#   PROFILE   output profile path (default cover.out)
#   BASELINE  override the floor (useful for local what-if runs)
set -eu
cd "$(dirname "$0")/.."

profile=${PROFILE:-cover.out}
baseline=${BASELINE:-82.0}

go test -coverprofile="$profile" -covermode=atomic ./...

total=$(go tool cover -func="$profile" | awk '/^total:/ {sub(/%/, "", $NF); print $NF}')
if [ -z "$total" ]; then
    echo "cover.sh: could not read total coverage from $profile" >&2
    exit 1
fi

echo "cover.sh: total statement coverage ${total}% (floor ${baseline}%)"
awk -v total="$total" -v floor="$baseline" 'BEGIN { exit !(total + 0 >= floor + 0) }' || {
    echo "cover.sh: coverage ${total}% fell below the ${baseline}% floor" >&2
    exit 1
}
