#!/bin/sh
# scenario-ci: run the declarative scenario matrix (suites/*.json) the way
# the CI gate does, writing scenario-junit.xml and scenario-summary.md.
#
# Grid depth: by default the run overrides unpinned repeat counts down to
# a quick grid (-repeats 2), which is what PR CI runs. SCENARIO_FULL=1
# drops the override so the suites run at their full repeat counts — the
# nightly schedule and manual workflow_dispatch set it. Cases whose
# assertions depend on exact per-repeat fault draws pin their own repeats
# and are unaffected either way (docs/SCENARIOS.md).
#
# When GITHUB_STEP_SUMMARY is set (always, in Actions) the Markdown
# verdict table is appended to the job summary — on failure too: the
# summary and the JUnit file are written before the exit code is decided.
set -eu

GO=${GO:-go}
junit=${SCENARIO_JUNIT:-scenario-junit.xml}
md=${SCENARIO_MD:-scenario-summary.md}

set -- -parallelism 4 -junit "$junit" -md "$md"
if [ -n "${SCENARIO_FULL:-}" ]; then
    echo "scenario-ci: full grid (suite repeat counts)"
else
    echo "scenario-ci: quick grid (-repeats 2; set SCENARIO_FULL=1 for the full counts)"
    set -- "$@" -repeats 2
fi

status=0
"$GO" run ./cmd/numaioscn "$@" suites/*.json || status=$?

if [ -n "${GITHUB_STEP_SUMMARY:-}" ] && [ -f "$md" ]; then
    cat "$md" >>"$GITHUB_STEP_SUMMARY"
fi

# Nightly (full-grid) runs also publish the CharacterizeAll parallel-scaling
# sweep to the job summary, so the perf trajectory is visible from the run
# page without downloading bench artifacts.
if [ -n "${SCENARIO_FULL:-}" ] && [ -n "${GITHUB_STEP_SUMMARY:-}" ]; then
    echo "scenario-ci: benchmarking CharacterizeAll p-sweep for the summary"
    sweep=$("$GO" test -run '^$' -bench '^BenchmarkCharacterizeAll$' \
        -benchmem -benchtime "${SWEEP_BENCHTIME:-1s}" . 2>/dev/null || true)
    if [ -n "$sweep" ]; then
        {
            echo ""
            echo "### CharacterizeAll parallel scaling (nightly)"
            echo ""
            echo "| width | ns/op | B/op | allocs/op | speedup vs p1 |"
            echo "|---|---|---|---|---|"
            printf '%s\n' "$sweep" | awk '
            /^BenchmarkCharacterizeAll\// {
                name = $1
                sub(/^BenchmarkCharacterizeAll\//, "", name)
                sub(/-[0-9]+$/, "", name)
                ns[name] = $3 + 0; b[name] = $5 + 0; al[name] = $7 + 0
                order[++cnt] = name
            }
            END {
                for (i = 1; i <= cnt; i++) {
                    p = order[i]
                    speed = (ns["p1"] > 0) ? sprintf("%.2fx", ns["p1"] / ns[p]) : "n/a"
                    printf "| %s | %.0f | %.0f | %.0f | %s |\n", p, ns[p], b[p], al[p], speed
                }
            }'
        } >>"$GITHUB_STEP_SUMMARY"
    else
        echo "scenario-ci: p-sweep benchmark produced no output (skipped)" >&2
    fi
fi
exit "$status"
