#!/bin/sh
# bench.sh — run the hot-path microbenchmarks with a fixed -benchtime and
# record the results for the speedup trajectory (docs/PERFORMANCE.md):
#
#   BENCH_<rev>.txt   raw `go test -bench` output, benchstat input
#   BENCH_<rev>.json  the same numbers as structured JSON
#
# Compare two revisions with: benchstat BENCH_<old>.txt BENCH_<new>.txt
#
# With -check the script instead runs the CharacterizeAll/RunFluid and
# PredictRequest/PlaceRequest hot paths once and compares their ns/op
# against the most recent recorded
# BENCH_*.json, failing on a slowdown beyond TOLERANCE — the CI
# bench-regression guard. Nothing is recorded in this mode.
#
# Environment knobs:
#   REV        label for the output files (default: git short hash)
#   BENCHTIME  per-benchmark budget (default 2s; use e.g. 10x for CI)
#   COUNT      repetitions per benchmark (default 1; benchstat wants >= 6)
#   TOLERANCE  -check slowdown limit as a ratio (default 1.25 = +25%)
set -eu
cd "$(dirname "$0")/.."

if [ "${1:-}" = "-check" ]; then
    # Latest record by commit date (checkout mtimes are meaningless); an
    # uncommitted record counts as newest.
    baseline=""
    newest=-1
    for f in BENCH_*.json; do
        [ -e "$f" ] || continue
        t=$(git log -1 --format=%ct -- "$f" 2>/dev/null)
        [ -n "$t" ] || t=$(date +%s)
        if [ "$t" -ge "$newest" ]; then
            newest=$t
            baseline=$f
        fi
    done
    if [ -z "$baseline" ]; then
        echo "bench.sh -check: no BENCH_*.json baseline recorded" >&2
        exit 1
    fi
    tolerance=${TOLERANCE:-1.25}
    tmp=$(mktemp -d)
    trap 'rm -rf "$tmp"' EXIT
    echo "bench.sh -check: comparing against $baseline (limit ${tolerance}x)"
    go test -run '^$' \
        -bench '^(BenchmarkCharacterizeAll|BenchmarkRunFluid|BenchmarkSolverIncremental|BenchmarkPredictRequest|BenchmarkPlaceRequest)$' \
        -benchtime "${BENCHTIME:-1s}" . | tee "$tmp/bench.txt"
    awk -v limit="$tolerance" '
    FNR == NR {
        # Baseline JSON: one {"name": ..., "ns_per_op": ...} object per line.
        if ($0 ~ /"name"/ && $0 ~ /"ns_per_op"/) {
            name = $0; sub(/.*"name": "/, "", name); sub(/".*/, "", name)
            ns = $0; sub(/.*"ns_per_op": /, "", ns); sub(/[,}].*/, "", ns)
            base[name] = ns + 0
        }
        next
    }
    /^Benchmark/ {
        name = $1
        sub(/-[0-9]+$/, "", name)
        if (!(name in base))
            next
        ratio = ($3 + 0) / base[name]
        verdict = (ratio > limit) ? "REGRESSION" : "ok"
        printf "%-34s baseline %12.0f ns/op, now %12.0f ns/op (%+6.1f%%)  %s\n",
            name, base[name], $3 + 0, (ratio - 1) * 100, verdict
        if (ratio > limit)
            bad = 1
        checked++
    }
    END {
        if (!checked) {
            print "bench.sh -check: no benchmark matched the baseline" > "/dev/stderr"
            exit 1
        }
        exit bad
    }
    ' "$baseline" "$tmp/bench.txt"
    # Structural gates beyond per-benchmark regression: the dirty-set
    # re-solve must beat the full re-level, and the parallel sweep must
    # actually scale — the latter only where the host has cores to scale
    # onto (the p1 and p8 sub-benchmarks run the same work on a 1-core
    # box, so the ratio is noise there).
    cores=$(getconf _NPROCESSORS_ONLN 2>/dev/null || echo 1)
    awk -v cores="$cores" '
    /^BenchmarkSolverIncremental\/incremental/ { inc = $3 + 0 }
    /^BenchmarkSolverIncremental\/full/        { full = $3 + 0 }
    /^BenchmarkCharacterizeAll\/p1-/           { p1 = $3 + 0 }
    /^BenchmarkCharacterizeAll\/p8-/           { p8 = $3 + 0 }
    END {
        bad = 0
        if (inc && full) {
            printf "incremental re-solve %.0f ns/op vs full %.0f ns/op (%.2fx)\n", inc, full, full / inc
            if (inc >= full) {
                print "bench.sh -check: incremental re-solve is not faster than the full re-level" > "/dev/stderr"
                bad = 1
            }
        } else {
            print "bench.sh -check: SolverIncremental results missing" > "/dev/stderr"
            bad = 1
        }
        if (cores + 0 >= 4) {
            if (p1 && p8) {
                ratio = p1 / p8
                printf "CharacterizeAll p8 speedup over p1: %.2fx (floor 2.5x)\n", ratio
                if (ratio < 2.5) {
                    print "bench.sh -check: parallel sweep scaling below the 2.5x floor" > "/dev/stderr"
                    bad = 1
                }
            } else {
                print "bench.sh -check: CharacterizeAll p1/p8 results missing" > "/dev/stderr"
                bad = 1
            }
        } else {
            printf "skipping p8/p1 scaling gate: only %d core(s) online\n", cores
        }
        exit bad
    }' "$tmp/bench.txt"
    echo "bench.sh -check: no regression beyond ${tolerance}x"
    exit 0
fi

rev=${REV:-$(git rev-parse --short HEAD 2>/dev/null || echo dev)}
benchtime=${BENCHTIME:-2s}
count=${COUNT:-1}
txt="BENCH_${rev}.txt"
json="BENCH_${rev}.json"

go test -run '^$' \
    -bench '^(BenchmarkCharacterize|BenchmarkCharacterizeAll|BenchmarkRunFluid|BenchmarkSolver|BenchmarkSolverIncremental|BenchmarkPredictRequest|BenchmarkPlaceRequest)$' \
    -benchmem -benchtime "$benchtime" -count "$count" . | tee "$txt"

awk -v rev="$rev" -v benchtime="$benchtime" '
/^Benchmark/ {
    name = $1
    sub(/-[0-9]+$/, "", name)
    line = sprintf("    {\"name\": \"%s\", \"iterations\": %s", name, $2)
    for (i = 3; i < NF; i += 2) {
        unit = $(i + 1)
        gsub(/\//, "_per_", unit)
        gsub(/[^A-Za-z0-9_]/, "_", unit)
        line = line sprintf(", \"%s\": %s", unit, $i)
    }
    lines[++cnt] = line "}"
}
END {
    printf "{\n  \"rev\": \"%s\",\n  \"benchtime\": \"%s\",\n  \"benchmarks\": [\n", rev, benchtime
    for (i = 1; i <= cnt; i++)
        printf "%s%s\n", lines[i], (i < cnt ? "," : "")
    print "  ]"
    print "}"
}
' "$txt" > "$json"

echo "wrote $txt and $json"
