#!/bin/sh
# bench.sh — run the hot-path microbenchmarks with a fixed -benchtime and
# record the results for the speedup trajectory (docs/PERFORMANCE.md):
#
#   BENCH_<rev>.txt   raw `go test -bench` output, benchstat input
#   BENCH_<rev>.json  the same numbers as structured JSON
#
# Compare two revisions with: benchstat BENCH_<old>.txt BENCH_<new>.txt
#
# With -check the script instead runs the CharacterizeAll/RunFluid and
# PredictRequest/PlaceRequest hot paths once and compares their ns/op,
# B/op and allocs/op against the most recent recorded BENCH_*.json,
# failing on a slowdown — or an allocation regression — beyond TOLERANCE,
# plus absolute gates on the sweep hot path (CharacterizeAll <= 500 KB/op,
# RunFluid <= 10 allocs/op) and on the telemetry tax (flight recorder
# on/off request ratio <= RECORDER_TOLERANCE, FlightRecorderRecord at 0
# allocs/op) — the CI bench-regression guard. Nothing is recorded in this
# mode. When GITHUB_STEP_SUMMARY is set, a benchstat-style old/new delta
# table is appended to it.
#
# Environment knobs:
#   REV        label for the output files (default: git short hash)
#   BENCHTIME  per-benchmark budget (default 2s; use e.g. 10x for CI)
#   COUNT      repetitions per benchmark (default 1; benchstat wants >= 6)
#   TOLERANCE  -check slowdown limit as a ratio (default 1.25 = +25%)
#   RECORDER_TOLERANCE  -check ceiling on the flight-recorder on/off
#              request-latency ratio (default 1.05 = +5%)
set -eu
cd "$(dirname "$0")/.."

if [ "${1:-}" = "-check" ]; then
    # Latest record by commit date (checkout mtimes are meaningless); an
    # uncommitted record counts as newest.
    baseline=""
    newest=-1
    for f in BENCH_*.json; do
        [ -e "$f" ] || continue
        t=$(git log -1 --format=%ct -- "$f" 2>/dev/null)
        [ -n "$t" ] || t=$(date +%s)
        if [ "$t" -ge "$newest" ]; then
            newest=$t
            baseline=$f
        fi
    done
    if [ -z "$baseline" ]; then
        echo "bench.sh -check: no BENCH_*.json baseline recorded" >&2
        exit 1
    fi
    tolerance=${TOLERANCE:-1.25}
    tmp=$(mktemp -d)
    trap 'rm -rf "$tmp"' EXIT
    echo "bench.sh -check: comparing against $baseline (limit ${tolerance}x)"
    go test -run '^$' \
        -bench '^(BenchmarkCharacterizeAll|BenchmarkRunFluid|BenchmarkSolverIncremental|BenchmarkPredictRequest|BenchmarkPlaceRequest|BenchmarkRecorderOverhead|BenchmarkFlightRecorderRecord)$' \
        -benchmem -benchtime "${BENCHTIME:-1s}" . | tee "$tmp/bench.txt"
    # The recorder on/off ratio compares two ~16us request paths, so its
    # signal (~0.4us) is the same size as scheduler noise in one sample.
    # Take extra repetitions and gate on per-mode minima: the best-case
    # run of each mode is the measurement least polluted by interference.
    go test -run '^$' -bench '^BenchmarkRecorderOverhead$' \
        -benchmem -benchtime "${BENCHTIME:-1s}" -count 2 . | tee -a "$tmp/bench.txt"
    if [ -n "${GITHUB_STEP_SUMMARY:-}" ]; then
        {
            echo "### Bench regression guard (vs $baseline)"
            echo ""
            echo "| benchmark | old ns/op | new ns/op | delta | old B/op | new B/op | old allocs | new allocs |"
            echo "|---|---|---|---|---|---|---|---|"
        } >> "$GITHUB_STEP_SUMMARY"
    fi
    awk -v limit="$tolerance" -v summary="${GITHUB_STEP_SUMMARY:-}" '
    # extract pulls one numeric JSON field out of a baseline line; returns
    # -1 when the field is absent (older records without -benchmem data).
    function extract(line, field,    v) {
        if (line !~ ("\"" field "\": "))
            return -1
        v = line
        sub(".*\"" field "\": ", "", v)
        sub(/[,}].*/, "", v)
        return v + 0
    }
    # gate compares one metric against its baseline with the tolerance
    # ratio; a zero baseline (e.g. a 0 allocs/op benchmark) must stay zero.
    function gate(name, metric, b, now,    ratio, verdict) {
        if (b < 0)
            return 0
        if (b == 0) {
            verdict = (now > 0) ? "REGRESSION" : "ok"
            printf "%-34s %-13s baseline %12.0f, now %12.0f            %s\n",
                name, metric, b, now, verdict
            return now > 0
        }
        ratio = now / b
        verdict = (ratio > limit) ? "REGRESSION" : "ok"
        printf "%-34s %-13s baseline %12.0f, now %12.0f (%+6.1f%%)  %s\n",
            name, metric, b, now, (ratio - 1) * 100, verdict
        return ratio > limit
    }
    FNR == NR {
        # Baseline JSON: one benchmark object per line.
        if ($0 ~ /"name"/ && $0 ~ /"ns_per_op"/) {
            name = $0; sub(/.*"name": "/, "", name); sub(/".*/, "", name)
            base_ns[name] = extract($0, "ns_per_op")
            base_b[name] = extract($0, "B_per_op")
            base_allocs[name] = extract($0, "allocs_per_op")
        }
        next
    }
    /^Benchmark/ {
        name = $1
        sub(/-[0-9]+$/, "", name)
        if (!(name in base_ns))
            next
        ns = $3 + 0; bop = $5 + 0; allocs = $7 + 0
        bad += gate(name, "ns/op", base_ns[name], ns)
        bad += gate(name, "B/op", base_b[name], bop)
        bad += gate(name, "allocs/op", base_allocs[name], allocs)
        if (summary != "") {
            dns = (base_ns[name] > 0) ? sprintf("%+.1f%%", (ns / base_ns[name] - 1) * 100) : "n/a"
            printf "| %s | %.0f | %.0f | %s | %.0f | %.0f | %.0f | %.0f |\n",
                name, base_ns[name], ns, dns,
                (base_b[name] < 0 ? 0 : base_b[name]), bop,
                (base_allocs[name] < 0 ? 0 : base_allocs[name]), allocs >> summary
        }
        checked++
    }
    END {
        if (!checked) {
            print "bench.sh -check: no benchmark matched the baseline" > "/dev/stderr"
            exit 1
        }
        exit bad > 0
    }
    ' "$baseline" "$tmp/bench.txt"
    # Structural gates beyond per-benchmark regression: the dirty-set
    # re-solve must beat the full re-level, and the parallel sweep must
    # actually scale — the latter only where the host has cores to scale
    # onto (the p1 and p8 sub-benchmarks run the same work on a 1-core
    # box, so the ratio is noise there).
    # Structural gates also cover the sweep's absolute allocation budget:
    # a zero-alloc hot path is the PR-9 contract, and a ratio-only gate
    # would let it erode a few percent at a time.
    cores=$(getconf _NPROCESSORS_ONLN 2>/dev/null || echo 1)
    recorder_limit=${RECORDER_TOLERANCE:-1.05}
    awk -v cores="$cores" -v reclimit="$recorder_limit" '
    /^BenchmarkRecorderOverhead\/off/  { if (!recoff || $3 + 0 < recoff) recoff = $3 + 0 }
    /^BenchmarkRecorderOverhead\/on/   { if (!recon || $3 + 0 < recon) recon = $3 + 0 }
    /^BenchmarkFlightRecorderRecord/   { recallocs = $7 + 0; seenrec = 1 }
    /^BenchmarkSolverIncremental\/incremental/ { inc = $3 + 0 }
    /^BenchmarkSolverIncremental\/full/        { full = $3 + 0 }
    /^BenchmarkCharacterizeAll\/p1-/           { p1 = $3 + 0 }
    /^BenchmarkCharacterizeAll\/p8-/           { p8 = $3 + 0 }
    /^BenchmarkCharacterizeAll\// {
        if (($5 + 0) > maxsweepb) { maxsweepb = $5 + 0; maxsweepname = $1 }
    }
    /^BenchmarkRunFluid/ { fluidallocs = $7 + 0; seenfluid = 1 }
    END {
        bad = 0
        if (inc && full) {
            printf "incremental re-solve %.0f ns/op vs full %.0f ns/op (%.2fx)\n", inc, full, full / inc
            if (inc >= full) {
                print "bench.sh -check: incremental re-solve is not faster than the full re-level" > "/dev/stderr"
                bad = 1
            }
        } else {
            print "bench.sh -check: SolverIncremental results missing" > "/dev/stderr"
            bad = 1
        }
        if (cores + 0 >= 4) {
            if (p1 && p8) {
                ratio = p1 / p8
                printf "CharacterizeAll p8 speedup over p1: %.2fx (floor 3.0x)\n", ratio
                if (ratio < 3.0) {
                    print "bench.sh -check: parallel sweep scaling below the 3.0x floor" > "/dev/stderr"
                    bad = 1
                }
            } else {
                print "bench.sh -check: CharacterizeAll p1/p8 results missing" > "/dev/stderr"
                bad = 1
            }
        } else {
            printf "skipping p8/p1 scaling gate: only %d core(s) online\n", cores
        }
        if (maxsweepname != "") {
            printf "CharacterizeAll peak heap: %.0f B/op at %s (ceiling 512000)\n", maxsweepb, maxsweepname
            if (maxsweepb > 512000) {
                print "bench.sh -check: CharacterizeAll B/op above the 500 KB ceiling" > "/dev/stderr"
                bad = 1
            }
        } else {
            print "bench.sh -check: CharacterizeAll results missing" > "/dev/stderr"
            bad = 1
        }
        if (seenfluid) {
            printf "RunFluid allocations: %.0f allocs/op (ceiling 10)\n", fluidallocs
            if (fluidallocs > 10) {
                print "bench.sh -check: RunFluid above the 10 allocs/op ceiling" > "/dev/stderr"
                bad = 1
            }
        } else {
            print "bench.sh -check: RunFluid results missing" > "/dev/stderr"
            bad = 1
        }
        if (recoff && recon) {
            ratio = recon / recoff
            printf "flight recorder request tax: off %.0f ns/op, on %.0f ns/op (%.3fx, ceiling %.2fx)\n",
                recoff, recon, ratio, reclimit
            if (ratio > reclimit) {
                print "bench.sh -check: flight recorder overhead above the on/off ceiling" > "/dev/stderr"
                bad = 1
            }
        } else {
            print "bench.sh -check: RecorderOverhead off/on results missing" > "/dev/stderr"
            bad = 1
        }
        if (seenrec) {
            printf "FlightRecorderRecord allocations: %.0f allocs/op (ceiling 0)\n", recallocs
            if (recallocs > 0) {
                print "bench.sh -check: FlightRecorderRecord must stay allocation-free" > "/dev/stderr"
                bad = 1
            }
        } else {
            print "bench.sh -check: FlightRecorderRecord results missing" > "/dev/stderr"
            bad = 1
        }
        exit bad
    }' "$tmp/bench.txt"
    echo "bench.sh -check: no regression beyond ${tolerance}x"
    exit 0
fi

rev=${REV:-$(git rev-parse --short HEAD 2>/dev/null || echo dev)}
benchtime=${BENCHTIME:-2s}
count=${COUNT:-1}
txt="BENCH_${rev}.txt"
json="BENCH_${rev}.json"

go test -run '^$' \
    -bench '^(BenchmarkCharacterize|BenchmarkCharacterizeAll|BenchmarkRunFluid|BenchmarkSolver|BenchmarkSolverIncremental|BenchmarkPredictRequest|BenchmarkPlaceRequest|BenchmarkRecorderOverhead|BenchmarkFlightRecorderRecord)$' \
    -benchmem -benchtime "$benchtime" -count "$count" . | tee "$txt"

awk -v rev="$rev" -v benchtime="$benchtime" '
/^Benchmark/ {
    name = $1
    sub(/-[0-9]+$/, "", name)
    line = sprintf("    {\"name\": \"%s\", \"iterations\": %s", name, $2)
    for (i = 3; i < NF; i += 2) {
        unit = $(i + 1)
        gsub(/\//, "_per_", unit)
        gsub(/[^A-Za-z0-9_]/, "_", unit)
        line = line sprintf(", \"%s\": %s", unit, $i)
    }
    lines[++cnt] = line "}"
}
END {
    printf "{\n  \"rev\": \"%s\",\n  \"benchtime\": \"%s\",\n  \"benchmarks\": [\n", rev, benchtime
    for (i = 1; i <= cnt; i++)
        printf "%s%s\n", lines[i], (i < cnt ? "," : "")
    print "  ]"
    print "}"
}
' "$txt" > "$json"

echo "wrote $txt and $json"
