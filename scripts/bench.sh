#!/bin/sh
# bench.sh — run the hot-path microbenchmarks with a fixed -benchtime and
# record the results for the speedup trajectory (docs/PERFORMANCE.md):
#
#   BENCH_<rev>.txt   raw `go test -bench` output, benchstat input
#   BENCH_<rev>.json  the same numbers as structured JSON
#
# Compare two revisions with: benchstat BENCH_<old>.txt BENCH_<new>.txt
#
# Environment knobs:
#   REV        label for the output files (default: git short hash)
#   BENCHTIME  per-benchmark budget (default 2s; use e.g. 10x for CI)
#   COUNT      repetitions per benchmark (default 1; benchstat wants >= 6)
set -eu
cd "$(dirname "$0")/.."

rev=${REV:-$(git rev-parse --short HEAD 2>/dev/null || echo dev)}
benchtime=${BENCHTIME:-2s}
count=${COUNT:-1}
txt="BENCH_${rev}.txt"
json="BENCH_${rev}.json"

go test -run '^$' \
    -bench '^(BenchmarkCharacterize|BenchmarkCharacterizeAll|BenchmarkRunFluid|BenchmarkSolver)$' \
    -benchmem -benchtime "$benchtime" -count "$count" . | tee "$txt"

awk -v rev="$rev" -v benchtime="$benchtime" '
/^Benchmark/ {
    name = $1
    sub(/-[0-9]+$/, "", name)
    line = sprintf("    {\"name\": \"%s\", \"iterations\": %s", name, $2)
    for (i = 3; i < NF; i += 2) {
        unit = $(i + 1)
        gsub(/\//, "_per_", unit)
        gsub(/[^A-Za-z0-9_]/, "_", unit)
        line = line sprintf(", \"%s\": %s", unit, $i)
    }
    lines[++cnt] = line "}"
}
END {
    printf "{\n  \"rev\": \"%s\",\n  \"benchtime\": \"%s\",\n  \"benchmarks\": [\n", rev, benchtime
    for (i = 1; i <= cnt; i++)
        printf "%s%s\n", lines[i], (i < cnt ? "," : "")
    print "  ]"
    print "}"
}
' "$txt" > "$json"

echo "wrote $txt and $json"
