#!/bin/sh
# serve-smoke: boot numaiod on an ephemeral port, exercise the API with
# curl, and shut it down gracefully with SIGTERM. Fails if any endpoint
# misbehaves or the daemon does not drain cleanly.
set -eu

GO=${GO:-go}
workdir=$(mktemp -d)
trap 'rm -rf "$workdir"' EXIT

echo "serve-smoke: building numaiod"
"$GO" build -o "$workdir/numaiod" ./cmd/numaiod

"$workdir/numaiod" -addr 127.0.0.1:0 -quiet >"$workdir/out.log" 2>"$workdir/err.log" &
pid=$!
trap 'kill "$pid" 2>/dev/null || true; rm -rf "$workdir"' EXIT

# Wait for the listen banner.
base=""
for _ in $(seq 1 100); do
    base=$(sed -n 's/^listening on //p' "$workdir/out.log" | head -n 1)
    [ -n "$base" ] && break
    sleep 0.1
done
if [ -z "$base" ]; then
    echo "serve-smoke: daemon never announced its address" >&2
    cat "$workdir/err.log" >&2
    exit 1
fi
echo "serve-smoke: daemon at $base"

fail() {
    echo "serve-smoke: $1" >&2
    exit 1
}

curl -fsS -o "$workdir/resp" "$base/healthz"
grep -q ok "$workdir/resp" || fail "/healthz not ok"

char='{"machine": "intel-4s4n", "config": {"repeats": 1, "sigma": -1}}'
curl -fsS -o "$workdir/resp" -X POST -d "$char" "$base/v1/characterize"
grep -q '"cached": false' "$workdir/resp" || fail "first characterize was not a cache miss"
curl -fsS -o "$workdir/resp" -X POST -d "$char" "$base/v1/characterize"
grep -q '"cached": true' "$workdir/resp" || fail "second characterize was not served from cache"

predict='{"machine": "intel-4s4n", "config": {"repeats": 1, "sigma": -1},
          "target": 0, "mode": "write", "mix": {"0": 0.5, "2": 0.5}}'
curl -fsS -o "$workdir/resp" -X POST -d "$predict" "$base/v1/predict"
grep -q '"predicted_bps"' "$workdir/resp" || fail "/v1/predict returned no prediction"

curl -fsS "$base/metrics" >"$workdir/metrics.txt"
grep -q 'numaiod_requests_total{endpoint="/v1/characterize",status="200"} 2' "$workdir/metrics.txt" \
    || fail "metrics missing characterize counter"
grep -Eq 'numaiod_model_cache\{event="hit"\} [1-9]' "$workdir/metrics.txt" \
    || fail "metrics missing cache hit"

echo "serve-smoke: sending SIGTERM"
kill -TERM "$pid"
i=0
while kill -0 "$pid" 2>/dev/null; do
    i=$((i + 1))
    [ "$i" -gt 100 ] && fail "daemon did not exit after SIGTERM"
    sleep 0.1
done
grep -q drained "$workdir/out.log" || fail "daemon exited without draining"
echo "serve-smoke: ok"
