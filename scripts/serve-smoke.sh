#!/bin/sh
# serve-smoke: boot numaiod on an ephemeral port, exercise the API with
# curl, and shut it down gracefully with SIGTERM. Fails if any endpoint
# misbehaves or the daemon does not drain cleanly.
#
# Cleanup is a single trap'd function so the daemon and the scratch
# directory are reclaimed on every exit path, including ^C and a CI
# timeout's SIGTERM; both startup waits are bounded so a wedged daemon
# fails the script instead of hanging it.
#
# SERVE_SMOKE_PORT overrides the listen port (default 0 = kernel-assigned
# ephemeral), so this smoke and fleet-smoke.sh can run side by side — or be
# pinned apart explicitly — without fixed-port collisions.
set -eu

. "$(dirname "$0")/smoke-lib.sh"

GO=${GO:-go}
port=${SERVE_SMOKE_PORT:-0}
pid=""
workdir=$(mktemp -d)

cleanup() {
    if [ -n "$pid" ]; then
        kill "$pid" 2>/dev/null || true
    fi
    rm -rf "$workdir"
}
trap cleanup EXIT
trap 'exit 129' INT
trap 'exit 143' TERM

fail() {
    echo "serve-smoke: $1" >&2
    exit 1
}

echo "serve-smoke: building numaiod and numaioload"
"$GO" build -o "$workdir/numaiod" ./cmd/numaiod
"$GO" build -o "$workdir/numaioload" ./cmd/numaioload

"$workdir/numaiod" -addr "127.0.0.1:$port" -quiet >"$workdir/out.log" 2>"$workdir/err.log" &
pid=$!

# Wait for the listen banner, bounded (smoke-lib.sh).
base=$(wait_banner "$workdir/out.log" "$pid")
if [ -z "$base" ]; then
    echo "serve-smoke: daemon never announced its address" >&2
    cat "$workdir/err.log" >&2
    exit 1
fi
echo "serve-smoke: daemon at $base"

# Wait until it actually serves: the banner precedes readiness.
wait_http "$base/healthz" || fail "daemon never became healthy at $base/healthz"

curl -fsS -o "$workdir/resp" "$base/healthz"
grep -q ok "$workdir/resp" || fail "/healthz not ok"

char='{"machine": "intel-4s4n", "config": {"repeats": 1, "sigma": -1}}'
curl -fsS -o "$workdir/resp" -X POST -d "$char" "$base/v1/characterize"
grep -q '"cached": false' "$workdir/resp" || fail "first characterize was not a cache miss"
curl -fsS -o "$workdir/resp" -X POST -d "$char" "$base/v1/characterize"
grep -q '"cached": true' "$workdir/resp" || fail "second characterize was not served from cache"
grep -q '"stale"' "$workdir/resp" && fail "healthy characterize marked stale"

predict='{"machine": "intel-4s4n", "config": {"repeats": 1, "sigma": -1},
          "target": 0, "mode": "write", "mix": {"0": 0.5, "2": 0.5}}'
curl -fsS -o "$workdir/resp" -X POST -d "$predict" "$base/v1/predict"
grep -q '"predicted_bps"' "$workdir/resp" || fail "/v1/predict returned no prediction"

# Serving fast lane: a short closed-loop load run must complete with a
# non-zero RPS, and the repeated identical requests must land as response
# cache hits.
echo "serve-smoke: numaioload against $base"
"$workdir/numaioload" -url "$base" -endpoint predict \
    -machine intel-4s4n -target 0 -mix "0:0.5,2:0.5" \
    -concurrency 2 -requests 50 >"$workdir/load.txt" || fail "numaioload run failed"
cat "$workdir/load.txt"
grep -q 'requests 50 errors 0' "$workdir/load.txt" || fail "numaioload lost requests"
grep -Eq 'rps [1-9][0-9]*' "$workdir/load.txt" || fail "numaioload reported zero RPS"
curl -fsS "$base/metrics" >"$workdir/metrics.txt"
grep -Eq 'numaiod_predict_cache_hits_total [1-9]' "$workdir/metrics.txt" \
    || fail "predict response cache saw no hits under load"

curl -fsS "$base/metrics" >"$workdir/metrics.txt"
grep -q 'numaiod_requests_total{endpoint="/v1/characterize",status="200"} 2' "$workdir/metrics.txt" \
    || fail "metrics missing characterize counter"
grep -Eq 'numaiod_model_cache\{event="hit"\} [1-9]' "$workdir/metrics.txt" \
    || fail "metrics missing cache hit"
grep -q 'numaiod_stale_models 0' "$workdir/metrics.txt" \
    || fail "metrics missing staleness gauge"
grep -q 'numaiod_breaker_open 0' "$workdir/metrics.txt" \
    || fail "metrics missing breaker gauge"
# Additive telemetry series (rendered after the historical block; the
# pre-existing names above must keep matching unchanged).
grep -q 'numaiod_solver_solves_total' "$workdir/metrics.txt" \
    || fail "metrics missing solver counter"
grep -Eq 'numaiod_solver_incremental_total [0-9]' "$workdir/metrics.txt" \
    || fail "metrics missing incremental-solve counter"
grep -Eq 'numaiod_solver_full_total [1-9]' "$workdir/metrics.txt" \
    || fail "metrics missing full-solve counter"
grep -q 'numaiod_solver_pool_hits_total' "$workdir/metrics.txt" \
    || fail "metrics missing solver pool counter"
grep -q 'numaiod_measure_workers_busy' "$workdir/metrics.txt" \
    || fail "metrics missing worker occupancy gauge"
grep -q 'numaiod_trace_active 0' "$workdir/metrics.txt" \
    || fail "metrics missing trace gauge"

# Trace round-trip: start, run a fresh (uncached) characterization under
# the recorder, stop, download, and check the recording is a non-empty
# Chrome trace that captured the measurement spans.
echo "serve-smoke: /debug/trace round-trip"
curl -fsS -o "$workdir/resp" -X POST "$base/debug/trace/start"
grep -q '"tracing": true' "$workdir/resp" || fail "trace start not acknowledged"
curl -fsS "$base/metrics" | grep -q 'numaiod_trace_active 1' \
    || fail "trace gauge did not flip on"
char2='{"machine": "intel-4s4n", "config": {"repeats": 2, "sigma": -1}}'
curl -fsS -o "$workdir/resp" -X POST -d "$char2" "$base/v1/characterize"
grep -q '"cached": false' "$workdir/resp" || fail "traced characterize unexpectedly cached"
curl -fsS -o "$workdir/resp" -X POST "$base/debug/trace/stop"
grep -Eq '"events": [1-9]' "$workdir/resp" || fail "trace stop reported no events"
curl -fsS -o "$workdir/trace.json" "$base/debug/trace"
[ -s "$workdir/trace.json" ] || fail "downloaded trace is empty"
grep -q '"displayTimeUnit":"ms"' "$workdir/trace.json" || fail "trace is not Chrome trace-event JSON"
grep -q '"cat":"measure"' "$workdir/trace.json" || fail "trace has no measurement spans"
grep -q '"cat":"http"' "$workdir/trace.json" || fail "trace has no request spans"
if command -v python3 >/dev/null 2>&1; then
    python3 -m json.tool "$workdir/trace.json" >/dev/null || fail "trace is not valid JSON"
fi

echo "serve-smoke: sending SIGTERM"
kill -TERM "$pid"
wait_exit "$pid" || fail "daemon did not exit after SIGTERM"
pid=""
grep -q drained "$workdir/out.log" || fail "daemon exited without draining"
echo "serve-smoke: ok"
