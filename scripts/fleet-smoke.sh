#!/bin/sh
# fleet-smoke: boot three numaiod replicas behind a numaiogw gateway,
# exercise sharded routing, fleet-wide placement, hot-model replication
# and request-ID traceability, then kill the replica that owns the test
# fingerprint and prove the fleet keeps serving — degraded, with the
# breaker metrics showing it. Finally drain the gateway with SIGTERM.
#
# FLEET_SMOKE_BASE_PORT pins replica ports to base..base+2 and the gateway
# to base+3; unset (the default) every process takes a kernel-assigned
# ephemeral port, so this smoke never collides with serve-smoke.sh or a
# developer's running daemon.
set -eu

. "$(dirname "$0")/smoke-lib.sh"

GO=${GO:-go}
base_port=${FLEET_SMOKE_BASE_PORT:-}
pids=""
workdir=$(mktemp -d)

cleanup() {
    for p in $pids; do
        kill "$p" 2>/dev/null || true
    done
    rm -rf "$workdir"
}
trap cleanup EXIT
trap 'exit 129' INT
trap 'exit 143' TERM

fail() {
    echo "fleet-smoke: $1" >&2
    for f in "$workdir"/*.err.log; do
        [ -f "$f" ] && { echo "--- $f" >&2; tail -5 "$f" >&2; }
    done
    exit 1
}

echo "fleet-smoke: building numaiod, numaiogw and numaioload"
"$GO" build -o "$workdir/numaiod" ./cmd/numaiod
"$GO" build -o "$workdir/numaiogw" ./cmd/numaiogw
"$GO" build -o "$workdir/numaioload" ./cmd/numaioload

# Three replicas. Without a base port each takes :0 and announces what it
# got; request logs stay on so request-ID traceability can be grepped.
for i in 0 1 2; do
    if [ -n "$base_port" ]; then
        addr="127.0.0.1:$((base_port + i))"
    else
        addr="127.0.0.1:0"
    fi
    "$workdir/numaiod" -addr "$addr" \
        >"$workdir/r$i.out.log" 2>"$workdir/r$i.err.log" &
    pids="$pids $!"
    eval "pid_r$i=$!"
done

for i in 0 1 2; do
    url=$(wait_banner "$workdir/r$i.out.log")
    [ -n "$url" ] || fail "replica r$i never announced its address"
    eval "url_r$i=$url"
done
echo "fleet-smoke: replicas at $url_r0 $url_r1 $url_r2"

cat >"$workdir/fleet.json" <<EOF
{
  "replicas": [
    {"name": "r0", "url": "$url_r0"},
    {"name": "r1", "url": "$url_r1"},
    {"name": "r2", "url": "$url_r2"}
  ],
  "replication": 2,
  "hot_threshold": 2
}
EOF

if [ -n "$base_port" ]; then
    gw_addr="127.0.0.1:$((base_port + 3))"
else
    gw_addr="127.0.0.1:0"
fi
"$workdir/numaiogw" -addr "$gw_addr" -config "$workdir/fleet.json" \
    -health-interval 200ms \
    >"$workdir/gw.out.log" 2>"$workdir/gw.err.log" &
pids="$pids $!"
gw_pid=$!

gw=$(wait_banner "$workdir/gw.out.log")
[ -n "$gw" ] || fail "gateway never announced its address"
echo "fleet-smoke: gateway at $gw"

curl -fsS -o "$workdir/resp" "$gw/healthz" || fail "gateway /healthz unreachable"
grep -q '3/3' "$workdir/resp" || fail "gateway does not see 3/3 replicas: $(cat "$workdir/resp")"

# Routed predict with a pinned request ID: lands on the ring owner, and
# the ID must appear in the structured logs on BOTH hops.
predict='{"machine": "intel-4s4n", "config": {"repeats": 1, "sigma": -1},
          "target": 0, "mode": "write", "mix": {"0": 0.5, "2": 0.5}}'
curl -fsS -o "$workdir/resp" -H 'X-Request-Id: smoke-rid-42' \
    -X POST -d "$predict" "$gw/v1/predict" || fail "routed predict failed"
grep -q '"predicted_bps"' "$workdir/resp" || fail "predict returned no prediction"

curl -fsS "$gw/metrics" >"$workdir/metrics.txt"
grep -q 'numaiogw_routed_total 1' "$workdir/metrics.txt" || fail "predict was not counted as routed"
grep -q 'numaiogw_proxied_total 0' "$workdir/metrics.txt" || fail "healthy-fleet predict was proxied"
grep -q 'request_id=smoke-rid-42' "$workdir/gw.err.log" || fail "gateway log missing request ID"
grep -q 'request_id=smoke-rid-42' "$workdir"/r?.err.log || fail "replica logs missing propagated request ID"

# The owner is whichever replica absorbed that forward.
owner=$(sed -n 's/^numaiogw_forwards_total{replica="\(r[0-9]\)"} 1$/\1/p' "$workdir/metrics.txt" | head -n 1)
[ -n "$owner" ] || fail "could not identify the ring owner from forward counters"
echo "fleet-smoke: fingerprint owner is $owner"

# Second identical predict crosses hot_threshold=2: the model replicates
# to a ring peer so the fingerprint stays readable if the owner dies.
curl -fsS -o /dev/null -X POST -d "$predict" "$gw/v1/predict" || fail "second predict failed"
curl -fsS "$gw/metrics" | grep -q 'numaiogw_replication_pulls_total 1' \
    || fail "hot model did not replicate after crossing the threshold"

# Fleet-wide placement over all three replicas.
place='{"machine": "intel-4s4n", "config": {"repeats": 1, "sigma": -1}, "target": 0}'
curl -fsS -o "$workdir/resp" -X POST -d "$place" "$gw/v1/fleet/place" || fail "fleet place failed"
grep -q '"host"' "$workdir/resp" || fail "fleet place returned no host"
grep -q '"degraded": false' "$workdir/resp" || fail "healthy fleet place marked degraded"

# Load through the gateway: every request must survive the extra hop.
echo "fleet-smoke: numaioload against $gw"
"$workdir/numaioload" -addr "$gw" -endpoint predict \
    -machine intel-4s4n -target 0 -mix "0:0.5,2:0.5" \
    -concurrency 2 -requests 40 >"$workdir/load.txt" || fail "numaioload run failed"
cat "$workdir/load.txt"
grep -q 'requests 40 errors 0' "$workdir/load.txt" || fail "numaioload lost requests through the gateway"

# Kill the owner. The fleet must keep serving: the next predict proxies to
# a ring successor, the health loop pulls the dead replica out, and the
# breaker metrics record the degradation.
echo "fleet-smoke: killing owner $owner"
eval "kill \$pid_$owner"
wait_metric "$gw" 'numaiogw_replicas_healthy 2' || fail "health loop never noticed the dead replica"

curl -fsS -o "$workdir/resp" -X POST -d "$predict" "$gw/v1/predict" \
    || fail "predict with dead owner failed — fleet did not degrade gracefully"
grep -q '"predicted_bps"' "$workdir/resp" || fail "degraded predict returned no prediction"
curl -fsS "$gw/metrics" >"$workdir/metrics.txt"
grep -Eq 'numaiogw_proxied_total [1-9]' "$workdir/metrics.txt" || fail "degraded predict was not proxied"
grep -q "numaiogw_replica_healthy{replica=\"$owner\"} 0" "$workdir/metrics.txt" \
    || fail "dead replica still marked healthy"
wait_metric "$gw" 'numaiogw_breaker_open 1' || fail "breaker never opened for the dead replica"

curl -fsS -o "$workdir/resp" "$gw/healthz" || fail "gateway /healthz failed while degraded"
grep -q '2/3' "$workdir/resp" || fail "gateway healthz does not report 2/3: $(cat "$workdir/resp")"

curl -fsS -o "$workdir/resp" -X POST -d "$place" "$gw/v1/fleet/place" || fail "degraded fleet place failed"
grep -q '"degraded": true' "$workdir/resp" || fail "fleet place did not report degradation"
grep -q '"host"' "$workdir/resp" || fail "degraded fleet place returned no host"

echo "fleet-smoke: sending SIGTERM to gateway"
kill -TERM "$gw_pid"
wait_exit "$gw_pid" || fail "gateway did not exit after SIGTERM"
grep -q drained "$workdir/gw.out.log" || fail "gateway exited without draining"
echo "fleet-smoke: ok"
