#!/bin/sh
# fleet-smoke: boot three numaiod replicas behind a numaiogw gateway,
# exercise sharded routing, fleet-wide placement, hot-model replication,
# request-ID and trace-context propagation across both hops (including a
# numaiotrace-stitched fleet timeline for one traced request), then kill
# the replica that owns the test fingerprint and prove the fleet keeps
# serving — degraded, with the breaker metrics and the gateway's flight
# recorder showing it. Finally drain the gateway with SIGTERM.
#
# FLEET_SMOKE_BASE_PORT pins replica ports to base..base+2 and the gateway
# to base+3; unset (the default) every process takes a kernel-assigned
# ephemeral port, so this smoke never collides with serve-smoke.sh or a
# developer's running daemon.
set -eu

. "$(dirname "$0")/smoke-lib.sh"

GO=${GO:-go}
base_port=${FLEET_SMOKE_BASE_PORT:-}
pids=""
workdir=$(mktemp -d)

cleanup() {
    for p in $pids; do
        kill "$p" 2>/dev/null || true
    done
    rm -rf "$workdir"
}
trap cleanup EXIT
trap 'exit 129' INT
trap 'exit 143' TERM

fail() {
    echo "fleet-smoke: $1" >&2
    for f in "$workdir"/*.err.log; do
        [ -f "$f" ] && { echo "--- $f" >&2; tail -5 "$f" >&2; }
    done
    exit 1
}

echo "fleet-smoke: building numaiod, numaiogw, numaioload and numaiotrace"
"$GO" build -o "$workdir/numaiod" ./cmd/numaiod
"$GO" build -o "$workdir/numaiogw" ./cmd/numaiogw
"$GO" build -o "$workdir/numaioload" ./cmd/numaioload
"$GO" build -o "$workdir/numaiotrace" ./cmd/numaiotrace

# Three replicas. Without a base port each takes :0 and announces what it
# got; request logs stay on so request-ID traceability can be grepped.
for i in 0 1 2; do
    if [ -n "$base_port" ]; then
        addr="127.0.0.1:$((base_port + i))"
    else
        addr="127.0.0.1:0"
    fi
    "$workdir/numaiod" -addr "$addr" \
        >"$workdir/r$i.out.log" 2>"$workdir/r$i.err.log" &
    pids="$pids $!"
    eval "pid_r$i=$!"
done

for i in 0 1 2; do
    url=$(wait_banner "$workdir/r$i.out.log")
    [ -n "$url" ] || fail "replica r$i never announced its address"
    eval "url_r$i=$url"
done
echo "fleet-smoke: replicas at $url_r0 $url_r1 $url_r2"

cat >"$workdir/fleet.json" <<EOF
{
  "replicas": [
    {"name": "r0", "url": "$url_r0"},
    {"name": "r1", "url": "$url_r1"},
    {"name": "r2", "url": "$url_r2"}
  ],
  "replication": 2,
  "hot_threshold": 2
}
EOF

if [ -n "$base_port" ]; then
    gw_addr="127.0.0.1:$((base_port + 3))"
else
    gw_addr="127.0.0.1:0"
fi
"$workdir/numaiogw" -addr "$gw_addr" -config "$workdir/fleet.json" \
    -health-interval 200ms \
    >"$workdir/gw.out.log" 2>"$workdir/gw.err.log" &
pids="$pids $!"
gw_pid=$!

gw=$(wait_banner "$workdir/gw.out.log")
[ -n "$gw" ] || fail "gateway never announced its address"
echo "fleet-smoke: gateway at $gw"

curl -fsS -o "$workdir/resp" "$gw/healthz" || fail "gateway /healthz unreachable"
grep -q '3/3' "$workdir/resp" || fail "gateway does not see 3/3 replicas: $(cat "$workdir/resp")"

# Routed predict with a pinned request ID and trace context: lands on the
# ring owner, and both IDs must appear in the structured logs on BOTH hops
# — the gateway derives a child span context, so the trace ID survives the
# forward while the span ID changes.
smoke_tid='cafe0000000000000000000000000042'
predict='{"machine": "intel-4s4n", "config": {"repeats": 1, "sigma": -1},
          "target": 0, "mode": "write", "mix": {"0": 0.5, "2": 0.5}}'
curl -fsS -o "$workdir/resp" -D "$workdir/hdrs" -H 'X-Request-Id: smoke-rid-42' \
    -H "X-Trace-Ctx: 00-$smoke_tid-1234567890abcdef-01" \
    -X POST -d "$predict" "$gw/v1/predict" || fail "routed predict failed"
grep -q '"predicted_bps"' "$workdir/resp" || fail "predict returned no prediction"

curl -fsS "$gw/metrics" >"$workdir/metrics.txt"
grep -q 'numaiogw_routed_total 1' "$workdir/metrics.txt" || fail "predict was not counted as routed"
grep -q 'numaiogw_proxied_total 0' "$workdir/metrics.txt" || fail "healthy-fleet predict was proxied"
grep -q 'request_id=smoke-rid-42' "$workdir/gw.err.log" || fail "gateway log missing request ID"
grep -q 'request_id=smoke-rid-42' "$workdir"/r?.err.log || fail "replica logs missing propagated request ID"
grep -q "trace_id=$smoke_tid" "$workdir/gw.err.log" || fail "gateway log missing the pinned trace ID"
grep -q "trace_id=$smoke_tid" "$workdir"/r?.err.log || fail "replica logs missing the propagated trace ID"
grep -iq 'server-timing:.*forward;dur=' "$workdir/hdrs" || fail "response lacks the gateway's Server-Timing stages"
grep -iq 'server-timing:.*solve;dur=' "$workdir/hdrs" || fail "response lacks the replica's Server-Timing stages"

# The owner is whichever replica absorbed that forward.
owner=$(sed -n 's/^numaiogw_forwards_total{replica="\(r[0-9]\)"} 1$/\1/p' "$workdir/metrics.txt" | head -n 1)
[ -n "$owner" ] || fail "could not identify the ring owner from forward counters"
echo "fleet-smoke: fingerprint owner is $owner"

# Second identical predict crosses hot_threshold=2: the model replicates
# to a ring peer so the fingerprint stays readable if the owner dies.
curl -fsS -o /dev/null -X POST -d "$predict" "$gw/v1/predict" || fail "second predict failed"
curl -fsS "$gw/metrics" | grep -q 'numaiogw_replication_pulls_total 1' \
    || fail "hot model did not replicate after crossing the threshold"

# Fleet-wide placement over all three replicas.
place='{"machine": "intel-4s4n", "config": {"repeats": 1, "sigma": -1}, "target": 0}'
curl -fsS -o "$workdir/resp" -X POST -d "$place" "$gw/v1/fleet/place" || fail "fleet place failed"
grep -q '"host"' "$workdir/resp" || fail "fleet place returned no host"
grep -q '"degraded": false' "$workdir/resp" || fail "healthy fleet place marked degraded"

# Load through the gateway: every request must survive the extra hop.
echo "fleet-smoke: numaioload against $gw"
"$workdir/numaioload" -addr "$gw" -endpoint predict \
    -machine intel-4s4n -target 0 -mix "0:0.5,2:0.5" \
    -concurrency 2 -requests 40 >"$workdir/load.txt" || fail "numaioload run failed"
cat "$workdir/load.txt"
grep -q 'requests 40 errors 0' "$workdir/load.txt" || fail "numaioload lost requests through the gateway"
grep -q 'stage ttfb' "$workdir/load.txt" || fail "numaioload report lacks the per-stage split"
grep -q 'slowest decile exemplars' "$workdir/load.txt" || fail "numaioload report lacks slowest-decile exemplar IDs"

# One traced request end to end: record on the gateway and every replica,
# drive a single request with numaioload -trace, then stitch the client's
# dump and all four server dumps into one fleet timeline with numaiotrace
# and prove at least three processes (load client, gateway, serving
# replica) carry spans with the request's trace ID.
for u in "$gw" "$url_r0" "$url_r1" "$url_r2"; do
    curl -fsS -o /dev/null -X POST "$u/debug/trace/start" || fail "trace start on $u failed"
done
"$workdir/numaioload" -addr "$gw" -endpoint predict \
    -machine intel-4s4n -target 0 -mix "0:0.5,2:0.5" \
    -concurrency 1 -requests 1 -trace "$workdir/load-trace.json" \
    >"$workdir/load1.txt" || fail "traced numaioload run failed"
for u in "$gw" "$url_r0" "$url_r1" "$url_r2"; do
    curl -fsS -o /dev/null -X POST "$u/debug/trace/stop" || fail "trace stop on $u failed"
done
curl -fsS -o "$workdir/gw-trace.json" "$gw/debug/trace" || fail "gateway trace download failed"
curl -fsS -o "$workdir/r0-trace.json" "$url_r0/debug/trace" || fail "r0 trace download failed"
curl -fsS -o "$workdir/r1-trace.json" "$url_r1/debug/trace" || fail "r1 trace download failed"
curl -fsS -o "$workdir/r2-trace.json" "$url_r2/debug/trace" || fail "r2 trace download failed"
tid=$(sed -n 's/.*"trace_id":"\([0-9a-f]\{32\}\)".*/\1/p' "$workdir/load-trace.json" | head -n 1)
[ -n "$tid" ] || fail "load trace carries no trace ID"
traces="load=$workdir/load-trace.json gw=$workdir/gw-trace.json"
traces="$traces r0=$workdir/r0-trace.json r1=$workdir/r1-trace.json r2=$workdir/r2-trace.json"
"$workdir/numaiotrace" -o "$workdir/fleet-trace.json" $traces \
    || fail "numaiotrace merge failed"
grep -q '"process_name"' "$workdir/fleet-trace.json" || fail "merged trace lacks process labels"
# Metadata (ph=M) labels exist for every input; count real spans only.
procs=$("$workdir/numaiotrace" -trace-id "$tid" $traces \
    | grep -v '"ph":"M"' | grep -o '"pid":[0-9]*' | sort -u | wc -l)
[ "$procs" -ge 3 ] || fail "trace $tid spans only $procs process(es) in the merged timeline, want >= 3"
echo "fleet-smoke: trace $tid stitched across $procs processes"

# The always-on flight recorders saw the traced request on both hops.
curl -fsS "$gw/debug/flightrecorder" | grep -q "\"trace_id\":\"$tid\"" \
    || fail "gateway flight recorder missing the traced request"

# Kill the owner. The fleet must keep serving: the next predict proxies to
# a ring successor, the health loop pulls the dead replica out, and the
# breaker metrics record the degradation.
echo "fleet-smoke: killing owner $owner"
eval "kill \$pid_$owner"
wait_metric "$gw" 'numaiogw_replicas_healthy 2' || fail "health loop never noticed the dead replica"

curl -fsS -o "$workdir/resp" -X POST -d "$predict" "$gw/v1/predict" \
    || fail "predict with dead owner failed — fleet did not degrade gracefully"
grep -q '"predicted_bps"' "$workdir/resp" || fail "degraded predict returned no prediction"
curl -fsS "$gw/metrics" >"$workdir/metrics.txt"
grep -Eq 'numaiogw_proxied_total [1-9]' "$workdir/metrics.txt" || fail "degraded predict was not proxied"
grep -q "numaiogw_replica_healthy{replica=\"$owner\"} 0" "$workdir/metrics.txt" \
    || fail "dead replica still marked healthy"
wait_metric "$gw" 'numaiogw_breaker_open 1' || fail "breaker never opened for the dead replica"

# The degradation left a resilience breadcrumb in the gateway's always-on
# flight recorder: the breaker opening on the dead owner. (Failed forward
# attempts would add failover events too, but the health loop usually pulls
# the corpse out of rotation before a request ever tries it.)
curl -fsS "$gw/debug/flightrecorder" >"$workdir/flight.json" \
    || fail "gateway /debug/flightrecorder unreachable after failover"
grep -q '"name":"breaker_open"' "$workdir/flight.json" || fail "flight recorder lacks a breaker-open event"
grep -q "replica=$owner" "$workdir/flight.json" || fail "resilience events do not name the dead owner"

curl -fsS -o "$workdir/resp" "$gw/healthz" || fail "gateway /healthz failed while degraded"
grep -q '2/3' "$workdir/resp" || fail "gateway healthz does not report 2/3: $(cat "$workdir/resp")"

curl -fsS -o "$workdir/resp" -X POST -d "$place" "$gw/v1/fleet/place" || fail "degraded fleet place failed"
grep -q '"degraded": true' "$workdir/resp" || fail "fleet place did not report degradation"
grep -q '"host"' "$workdir/resp" || fail "degraded fleet place returned no host"

echo "fleet-smoke: sending SIGTERM to gateway"
kill -TERM "$gw_pid"
wait_exit "$gw_pid" || fail "gateway did not exit after SIGTERM"
grep -q drained "$workdir/gw.out.log" || fail "gateway exited without draining"
echo "fleet-smoke: ok"
