# smoke-lib: shared bounded-wait helpers for the smoke scripts
# (serve-smoke.sh, fleet-smoke.sh). Source it, don't execute it:
#
#     . "$(dirname "$0")/smoke-lib.sh"
#
# Every wait polls at 100ms for up to SMOKE_WAIT_TRIES attempts (default
# 100 = 10s), so a wedged process fails the caller instead of hanging it —
# important under a CI timeout that would otherwise kill the job with no
# diagnostics.

SMOKE_WAIT_TRIES=${SMOKE_WAIT_TRIES:-100}

# wait_banner LOGFILE [PID] -> prints the base URL from the daemon's
# "listening on ..." banner, empty on timeout. With a PID, gives up early
# if the process already died (its log will never grow a banner).
wait_banner() {
    b=""
    for _ in $(seq 1 "$SMOKE_WAIT_TRIES"); do
        b=$(sed -n 's/^listening on //p' "$1" | head -n 1)
        [ -n "$b" ] && break
        if [ -n "${2:-}" ]; then
            kill -0 "$2" 2>/dev/null || break
        fi
        sleep 0.1
    done
    echo "$b"
}

# wait_http URL -> succeeds once URL answers with a 2xx. The listen banner
# precedes readiness, so callers poll this before talking to the API.
wait_http() {
    for _ in $(seq 1 "$SMOKE_WAIT_TRIES"); do
        if curl -fsS -o /dev/null "$1" 2>/dev/null; then
            return 0
        fi
        sleep 0.1
    done
    return 1
}

# wait_metric BASEURL PATTERN -> succeeds once PATTERN (an ERE) appears in
# BASEURL/metrics.
wait_metric() {
    for _ in $(seq 1 "$SMOKE_WAIT_TRIES"); do
        if curl -fsS "$1/metrics" 2>/dev/null | grep -Eq "$2"; then
            return 0
        fi
        sleep 0.1
    done
    return 1
}

# wait_exit PID -> succeeds once PID is gone; fails if it outlives the
# bound (a daemon that ignored SIGTERM).
wait_exit() {
    for _ in $(seq 1 "$SMOKE_WAIT_TRIES"); do
        kill -0 "$1" 2>/dev/null || return 0
        sleep 0.1
    done
    return 1
}
