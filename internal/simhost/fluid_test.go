package simhost

import (
	"math"
	"reflect"
	"testing"

	"numaio/internal/fabric"
	"numaio/internal/units"
)

// The tests in this file lock the phase-boundary behaviour of RunFluid:
// which phases exist, who completes in which phase, and how rates change at
// boundaries. They were written against the phase-per-solver implementation
// and must keep passing against the reused-solver fast path.

// TestRunFluidSimultaneousCompletions: equal transfers over a shared link
// finish at the same instant — one phase, both completed in ID order.
func TestRunFluidSimultaneousCompletions(t *testing.T) {
	res := []fabric.Resource{{ID: "l", Capacity: 10 * units.Gbps}}
	u := []fabric.Usage{{Resource: "l", Weight: 1}}
	out, err := RunFluid(res, []Transfer{
		{ID: "b", Bytes: 625 * units.MiB, Usages: u},
		{ID: "a", Bytes: 625 * units.MiB, Usages: u},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Timeline.Phases) != 1 {
		t.Fatalf("phases = %d, want 1", len(out.Timeline.Phases))
	}
	p := out.Timeline.Phases[0]
	if !reflect.DeepEqual(p.Completed, []string{"a", "b"}) {
		t.Errorf("completed = %v, want [a b]", p.Completed)
	}
	// Both ran at 5 Gb/s for the whole makespan.
	for _, id := range []string{"a", "b"} {
		if got := p.Rates.Get(id).Gbps(); math.Abs(got-5) > 1e-6 {
			t.Errorf("rate[%s] = %v, want 5", id, got)
		}
		tr := out.Transfers[id]
		if math.Abs(tr.Duration.Seconds()-out.Makespan.Seconds()) > 1e-9 {
			t.Errorf("duration[%s] = %v, want makespan %v", id, tr.Duration, out.Makespan)
		}
	}
	if got := out.SteadyAggregate.Gbps(); math.Abs(got-10) > 1e-6 {
		t.Errorf("steady aggregate = %v, want 10", got)
	}
}

// TestRunFluidSimultaneousAmongStaggered: two equal small transfers
// complete together mid-run, then the big one speeds up.
func TestRunFluidSimultaneousAmongStaggered(t *testing.T) {
	res := []fabric.Resource{{ID: "l", Capacity: 12 * units.Gbps}}
	u := []fabric.Usage{{Resource: "l", Weight: 1}}
	out, err := RunFluid(res, []Transfer{
		{ID: "s1", Bytes: 500 * units.MiB, Usages: u},
		{ID: "s2", Bytes: 500 * units.MiB, Usages: u},
		{ID: "big", Bytes: 2000 * units.MiB, Usages: u},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Timeline.Phases) != 2 {
		t.Fatalf("phases = %d, want 2\n%s", len(out.Timeline.Phases), out.Timeline.Summary())
	}
	p0, p1 := out.Timeline.Phases[0], out.Timeline.Phases[1]
	if !reflect.DeepEqual(p0.Completed, []string{"s1", "s2"}) {
		t.Errorf("phase 0 completed = %v, want [s1 s2]", p0.Completed)
	}
	if !reflect.DeepEqual(p1.Completed, []string{"big"}) {
		t.Errorf("phase 1 completed = %v, want [big]", p1.Completed)
	}
	// Phase 0: 4 Gb/s each; phase 1: big alone at the full 12 Gb/s.
	if got := p0.Rates.Get("big").Gbps(); math.Abs(got-4) > 1e-6 {
		t.Errorf("phase 0 big rate = %v, want 4", got)
	}
	if got := p1.Rates.Get("big").Gbps(); math.Abs(got-12) > 1e-6 {
		t.Errorf("phase 1 big rate = %v, want 12", got)
	}
	if len(p1.Rates) != 1 {
		t.Errorf("phase 1 rates = %v, want only big", p1.Rates)
	}
	// Phase boundaries are contiguous.
	if got, want := p1.Start, p0.Start+p0.Duration; math.Abs(got.Seconds()-want.Seconds()) > 1e-12 {
		t.Errorf("phase 1 start = %v, want %v", got, want)
	}
	if got, want := out.Makespan, p1.Start+p1.Duration; math.Abs(got.Seconds()-want.Seconds()) > 1e-12 {
		t.Errorf("makespan = %v, want %v", got, want)
	}
}

// TestRunFluidSingleTransferTimeline: a lone transfer yields exactly one
// phase at the bottleneck rate with a full-utilization record.
func TestRunFluidSingleTransferTimeline(t *testing.T) {
	res := []fabric.Resource{{ID: "l", Capacity: 8 * units.Gbps}}
	out, err := RunFluid(res, []Transfer{{
		ID: "only", Bytes: units.GiB,
		Usages: []fabric.Usage{{Resource: "l", Weight: 1}},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Timeline.Phases) != 1 {
		t.Fatalf("phases = %d, want 1", len(out.Timeline.Phases))
	}
	p := out.Timeline.Phases[0]
	if !reflect.DeepEqual(p.Completed, []string{"only"}) {
		t.Errorf("completed = %v, want [only]", p.Completed)
	}
	if got := p.Utilization.Get("l"); math.Abs(got-1) > 1e-9 {
		t.Errorf("utilization = %v, want 1", got)
	}
	if got := out.Transfers["only"].InitialRate.Gbps(); math.Abs(got-8) > 1e-6 {
		t.Errorf("initial rate = %v, want 8", got)
	}
	if got := out.AggregateBandwidth.Gbps(); math.Abs(got-8) > 1e-6 {
		t.Errorf("aggregate = %v, want 8", got)
	}
}

// TestRunFluidRateCappedContention: a demand-capped transfer leaves the
// rest of the link to its uncapped peer; when the peer finishes, the capped
// one keeps its cap (phase boundary must not lift the demand).
func TestRunFluidRateCappedContention(t *testing.T) {
	res := []fabric.Resource{{ID: "l", Capacity: 10 * units.Gbps}}
	u := []fabric.Usage{{Resource: "l", Weight: 1}}
	out, err := RunFluid(res, []Transfer{
		// 2 Gb/s cap, 8 Gbit of data -> alone it would need 4 s.
		{ID: "capped", Bytes: 1000 * units.MiB, Demand: 2 * units.Gbps, Usages: u},
		// Uncapped, gets the remaining 8 Gb/s: 16 Gbit -> 2 s.
		{ID: "fast", Bytes: 2000 * units.MiB, Usages: u},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Timeline.Phases) != 2 {
		t.Fatalf("phases = %d, want 2\n%s", len(out.Timeline.Phases), out.Timeline.Summary())
	}
	p0, p1 := out.Timeline.Phases[0], out.Timeline.Phases[1]
	if got := p0.Rates.Get("capped").Gbps(); math.Abs(got-2) > 1e-6 {
		t.Errorf("phase 0 capped rate = %v, want 2", got)
	}
	if got := p0.Rates.Get("fast").Gbps(); math.Abs(got-8) > 1e-6 {
		t.Errorf("phase 0 fast rate = %v, want 8", got)
	}
	if !reflect.DeepEqual(p0.Completed, []string{"fast"}) {
		t.Errorf("phase 0 completed = %v, want [fast]", p0.Completed)
	}
	// After fast completes the cap still binds.
	if got := p1.Rates.Get("capped").Gbps(); math.Abs(got-2) > 1e-6 {
		t.Errorf("phase 1 capped rate = %v, want 2", got)
	}
	if got := out.Transfers["capped"].Bandwidth.Gbps(); math.Abs(got-2) > 1e-6 {
		t.Errorf("capped average = %v, want 2", got)
	}
}

// TestRunFluidPhaseInvariants: contiguous phases, at least one completion
// per phase, and rates exactly for the transfers still active.
func TestRunFluidPhaseInvariants(t *testing.T) {
	res := []fabric.Resource{{ID: "l", Capacity: 10 * units.Gbps}}
	u := []fabric.Usage{{Resource: "l", Weight: 1}}
	var transfers []Transfer
	sizes := []units.Size{100 * units.MiB, 300 * units.MiB, 600 * units.MiB, 1000 * units.MiB}
	ids := []string{"t0", "t1", "t2", "t3"}
	for i, sz := range sizes {
		transfers = append(transfers, Transfer{ID: ids[i], Bytes: sz, Usages: u})
	}
	out, err := RunFluid(res, transfers)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Timeline.Phases) != len(sizes) {
		t.Fatalf("phases = %d, want %d", len(out.Timeline.Phases), len(sizes))
	}
	active := len(sizes)
	var clock units.Duration
	for i, p := range out.Timeline.Phases {
		if math.Abs(p.Start.Seconds()-clock.Seconds()) > 1e-12 {
			t.Errorf("phase %d start = %v, want %v", i, p.Start, clock)
		}
		clock += p.Duration
		if len(p.Completed) == 0 {
			t.Errorf("phase %d completes nothing", i)
		}
		if len(p.Rates) != active {
			t.Errorf("phase %d rates = %d entries, want %d", i, len(p.Rates), active)
		}
		active -= len(p.Completed)
	}
	if active != 0 {
		t.Errorf("transfers unaccounted for: %d", active)
	}
	if math.Abs(out.Makespan.Seconds()-clock.Seconds()) > 1e-12 {
		t.Errorf("makespan = %v, want %v", out.Makespan, clock)
	}
}
