package simhost

import (
	"math"
)

// FNV-64a parameters (hash/fnv), inlined so the hot path neither heap-
// allocates the hasher nor copies the key to []byte.
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// Hash01 maps a key to a deterministic uniform value in [0, 1). It is the
// probability draw behind Jitter and the fault injector's decisions
// (internal/faults): because the value depends only on the key, concurrent
// and serial runs see identical faults. The inline FNV-64a below is
// bit-identical to hash/fnv over the key's bytes.
func Hash01(key string) float64 {
	h := uint64(fnvOffset64)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= fnvPrime64
	}
	return float64(h%(1<<52)) / float64(int64(1)<<52)
}

// Jitter returns a deterministic multiplicative noise factor in
// [1-sigma, 1+sigma] derived from the key. The same key always yields the
// same factor, so experiments are reproducible while still showing the
// run-to-run spread real benchmarks exhibit (the paper reports ranges, not
// points, in Tables IV and V).
func Jitter(key string, sigma float64) float64 {
	if sigma <= 0 {
		return 1
	}
	// Map the hash to (-1, 1) symmetrically.
	u := Hash01(key)
	return 1 + sigma*(2*u-1)
}

// JitterMax returns the maximum of n jittered samples of base, emulating a
// benchmark that runs n times and reports the best observed bandwidth (the
// STREAM methodology in Sec. IV-A). The expected maximum of n uniform
// samples in [1-sigma, 1+sigma] approaches 1+sigma as n grows; we draw n
// deterministic samples and take the largest.
func JitterMax(key string, sigma float64, n int) float64 {
	if n <= 1 {
		return Jitter(key, sigma)
	}
	best := math.Inf(-1)
	for i := 0; i < n; i++ {
		f := Jitter(key+string(rune('A'+i%26))+itoa(i), sigma)
		if f > best {
			best = f
		}
	}
	return best
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var buf [20]byte
	pos := len(buf)
	for i > 0 {
		pos--
		buf[pos] = byte('0' + i%10)
		i /= 10
	}
	return string(buf[pos:])
}
