package simhost

import (
	"math"
	"strings"
	"testing"

	"numaio/internal/fabric"
	"numaio/internal/units"
)

// twoPhaseRun builds the canonical two-phase scenario: a small and a big
// transfer sharing one 10 Gb/s link.
func twoPhaseRun(t *testing.T) *SessionResult {
	t.Helper()
	res := []fabric.Resource{{ID: "l", Capacity: 10 * units.Gbps}}
	u := []fabric.Usage{{Resource: "l", Weight: 1}}
	out, err := RunFluid(res, []Transfer{
		{ID: "small", Bytes: 625 * units.MiB, Usages: u},
		{ID: "big", Bytes: 1875 * units.MiB, Usages: u},
	})
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func TestTimelinePhases(t *testing.T) {
	out := twoPhaseRun(t)
	tl := out.Timeline
	if len(tl.Phases) != 2 {
		t.Fatalf("phases = %d, want 2", len(tl.Phases))
	}
	p0, p1 := tl.Phases[0], tl.Phases[1]
	if p0.Start != 0 {
		t.Errorf("phase 0 start = %v", p0.Start)
	}
	if len(p0.Rates) != 2 || len(p1.Rates) != 1 {
		t.Errorf("phase active counts: %d, %d", len(p0.Rates), len(p1.Rates))
	}
	if math.Abs(p0.Aggregate().Gbps()-10) > 1e-6 {
		t.Errorf("phase 0 aggregate = %v", p0.Aggregate().Gbps())
	}
	if math.Abs(p1.Rates.Get("big").Gbps()-10) > 1e-6 {
		t.Errorf("phase 1 big rate = %v", p1.Rates.Get("big").Gbps())
	}
	if len(p0.Completed) != 1 || p0.Completed[0] != "small" {
		t.Errorf("phase 0 completed = %v", p0.Completed)
	}
	if math.Abs(tl.Makespan().Seconds()-out.Makespan.Seconds()) > 1e-9 {
		t.Errorf("timeline makespan %v != session makespan %v", tl.Makespan(), out.Makespan)
	}
}

func TestTimelineUtilizationAndBottlenecks(t *testing.T) {
	out := twoPhaseRun(t)
	tl := out.Timeline
	// The link is fully utilized throughout.
	if u := tl.AvgUtilization("l"); math.Abs(u-1) > 1e-6 {
		t.Errorf("avg utilization = %v, want 1", u)
	}
	hot := tl.Bottlenecks(0.999)
	if len(hot) != 1 || hot[0] != "l" {
		t.Errorf("bottlenecks = %v", hot)
	}
	if got := tl.Bottlenecks(1.1); len(got) != 0 {
		t.Errorf("impossible threshold matched %v", got)
	}
	if u := tl.AvgUtilization("nope"); u != 0 {
		t.Errorf("unknown resource utilization = %v", u)
	}
	if (&Timeline{}).AvgUtilization("l") != 0 {
		t.Error("empty timeline utilization should be 0")
	}
	if (&Timeline{}).Makespan() != 0 {
		t.Error("empty timeline makespan should be 0")
	}
}

func TestTimelineRateOf(t *testing.T) {
	out := twoPhaseRun(t)
	tl := out.Timeline
	if r := tl.RateOf("small", 0); math.Abs(r.Gbps()-5) > 1e-6 {
		t.Errorf("small rate in phase 0 = %v", r.Gbps())
	}
	if r := tl.RateOf("small", 1); r != 0 {
		t.Errorf("small rate in phase 1 = %v, want 0", r)
	}
	if tl.RateOf("small", -1) != 0 || tl.RateOf("small", 99) != 0 {
		t.Error("out-of-range phases should yield 0")
	}
}

func TestTimelineSummary(t *testing.T) {
	out := twoPhaseRun(t)
	s := out.Timeline.Summary()
	for _, want := range []string{"2 phases", "phase 0", "completes small", "2 active"} {
		if !strings.Contains(s, want) {
			t.Errorf("summary missing %q:\n%s", want, s)
		}
	}
}
