package simhost

import (
	"fmt"
	"math"
	"sort"

	"numaio/internal/fabric"
	"numaio/internal/telemetry"
	"numaio/internal/units"
)

// Transfer is one bulk data movement to run to completion.
type Transfer struct {
	ID     string
	Bytes  units.Size
	Demand units.Bandwidth // per-transfer rate cap; <= 0 means unbounded
	Usages []fabric.Usage
}

// TransferResult reports one completed transfer.
type TransferResult struct {
	ID       string
	Bytes    units.Size
	Duration units.Duration
	// Bandwidth is the average rate over the transfer's lifetime.
	Bandwidth units.Bandwidth
	// InitialRate is the rate while all transfers were still active, which
	// is what a steady-state benchmark with equal-sized jobs reports.
	InitialRate units.Bandwidth
}

// SessionResult reports a whole fluid run.
type SessionResult struct {
	Transfers map[string]TransferResult
	// Makespan is the completion time of the last transfer.
	Makespan units.Duration
	// AggregateBandwidth is total bytes moved divided by the makespan.
	AggregateBandwidth units.Bandwidth
	// SteadyAggregate is the sum of initial (all-active) rates, the number
	// a long-running benchmark such as fio converges to when all jobs move
	// the same amount of data.
	SteadyAggregate units.Bandwidth
	// Timeline records every constant-rate phase of the run, including
	// per-resource utilization — the observability layer for contention
	// analysis.
	Timeline Timeline
}

// FluidSession runs fluid sessions over a fixed resource set, reusing one
// solver (and its registered resource table) across runs. Callers with a
// stable fabric — the fio runner re-solving the same machine for every
// measurement cell — avoid re-registering every resource per run. A
// FluidSession is not safe for concurrent use.
type FluidSession struct {
	s *fabric.Solver

	// tr, when set, records one span per Run plus one per constant-rate
	// phase (category "fluid") on track tid, so solver work nests under the
	// measurement cell that triggered it. Tracing shapes no results.
	tr  *telemetry.Tracer
	tid int
}

// SetTracer attaches (or, with nil, detaches) a tracer; phase spans land
// on track tid.
func (fs *FluidSession) SetTracer(tr *telemetry.Tracer, tid int) {
	fs.tr, fs.tid = tr, tid
}

// NewFluidSession registers the resources once and returns the reusable
// session.
func NewFluidSession(resources []fabric.Resource) (*FluidSession, error) {
	s := fabric.NewSolver()
	for _, r := range resources {
		if err := s.SetResource(r); err != nil {
			return nil, err
		}
	}
	return &FluidSession{s: s}, nil
}

// RunFluid advances the given transfers through a max-min fair fabric until
// all complete, re-solving the allocation whenever a transfer finishes
// (fluid-flow approximation of the real time-shared hardware).
//
// The solver is built once — resources registered and flows added in sorted
// ID order — and completed flows are removed between phases. Ordered removal
// keeps the remaining flows in sorted order, so every phase solves the exact
// same problem (same float accumulation order) the per-phase rebuild did.
func RunFluid(resources []fabric.Resource, transfers []Transfer) (*SessionResult, error) {
	return RunFluidTraced(resources, transfers, nil, 0)
}

// RunFluidTraced is RunFluid with per-run and per-phase spans recorded on
// the tracer (nil means no tracing).
func RunFluidTraced(resources []fabric.Resource, transfers []Transfer, tr *telemetry.Tracer, tid int) (*SessionResult, error) {
	if len(transfers) == 0 {
		return &SessionResult{Transfers: map[string]TransferResult{}}, nil
	}
	s := fabric.AcquireSolver()
	defer fabric.ReleaseSolver(s)
	for _, r := range resources {
		if err := s.SetResource(r); err != nil {
			return nil, err
		}
	}
	fs := &FluidSession{s: s, tr: tr, tid: tid}
	return fs.Run(transfers)
}

// Run executes one fluid session over the session's fabric.
func (fs *FluidSession) Run(transfers []Transfer) (*SessionResult, error) {
	if len(transfers) == 0 {
		return &SessionResult{Transfers: map[string]TransferResult{}}, nil
	}
	seen := make(map[string]bool, len(transfers))
	for _, tr := range transfers {
		if tr.Bytes <= 0 {
			return nil, fmt.Errorf("simhost: transfer %q has nonpositive size", tr.ID)
		}
		if seen[tr.ID] {
			return nil, fmt.Errorf("simhost: duplicate transfer %q", tr.ID)
		}
		seen[tr.ID] = true
	}
	ord := make([]Transfer, len(transfers))
	copy(ord, transfers)
	sort.Slice(ord, func(i, j int) bool { return ord[i].ID < ord[j].ID })

	s := fs.s
	s.Reset()
	for _, tr := range ord {
		if err := s.AddFlow(fabric.Flow{ID: tr.ID, Demand: tr.Demand, Usages: tr.Usages}); err != nil {
			return nil, err
		}
	}

	remaining := make([]float64, len(ord)) // bits
	rate := make([]float64, len(ord))      // per-phase scratch
	done := make([]bool, len(ord))
	for i, tr := range ord {
		remaining[i] = tr.Bytes.Bits()
	}
	results := make(map[string]TransferResult, len(ord))

	runSpan := fs.tr.StartSpanOn(fs.tid, "fluid-run", "fluid",
		telemetry.Int("transfers", len(ord)))
	defer runSpan.End()

	var now float64 // seconds
	var totalBits float64
	var timeline Timeline
	activeCount := len(ord)
	first := true
	phaseIdx := 0
	for activeCount > 0 {
		phaseSpan := runSpan.StartSpan("fluid-phase", "fluid",
			telemetry.Int("phase", phaseIdx), telemetry.Int("active", activeCount))
		ia, err := s.SolveIndexed()
		if err != nil {
			phaseSpan.End()
			return nil, err
		}

		// Time until the next completion at current rates. Flows were added
		// in sorted ord order and RemoveFlow splices in place, so the k-th
		// still-active transfer is exactly flow index k — rates come straight
		// off the indexed view without any string-keyed lookups.
		dt := math.Inf(1)
		k := 0
		for i := range ord {
			if done[i] {
				continue
			}
			r := float64(ia.Rate(k))
			k++
			if r <= 0 {
				phaseSpan.End()
				return nil, fmt.Errorf("simhost: transfer %q starved (zero rate)", ord[i].ID)
			}
			rate[i] = r
			if t := remaining[i] / r; t < dt {
				dt = t
			}
		}

		// Materialize utilization for the timeline before any RemoveFlow
		// below invalidates the indexed view.
		util := make(map[fabric.ResourceID]float64, ia.NumResources())
		for ri := 0; ri < ia.NumResources(); ri++ {
			util[ia.ResourceID(ri)] = ia.Utilization(ri)
		}
		phase := Phase{
			Start:       units.Duration(now),
			Duration:    units.Duration(dt),
			Rates:       make(map[string]units.Bandwidth, activeCount),
			Utilization: util,
		}
		for i := range ord {
			if done[i] {
				continue
			}
			id := ord[i].ID
			phase.Rates[id] = units.Bandwidth(rate[i])
			if first {
				res := results[id]
				res.ID = id
				res.InitialRate = units.Bandwidth(rate[i])
				results[id] = res
			}
			remaining[i] -= rate[i] * dt
			if remaining[i] <= 1e-3 { // sub-bit residue
				res := results[id]
				res.Bytes = ord[i].Bytes
				res.Duration = units.Duration(now + dt)
				res.Bandwidth = units.Rate(ord[i].Bytes, res.Duration)
				results[id] = res
				totalBits += ord[i].Bytes.Bits()
				phase.Completed = append(phase.Completed, id)
				done[i] = true
				activeCount--
				s.RemoveFlow(id)
			}
		}
		timeline.Phases = append(timeline.Phases, phase)
		phaseSpan.SetAttr(telemetry.Int("completed", len(phase.Completed)))
		phaseSpan.End()
		phaseIdx++
		now += dt
		first = false
	}

	out := &SessionResult{
		Transfers: results,
		Makespan:  units.Duration(now),
		Timeline:  timeline,
	}
	if now > 0 {
		out.AggregateBandwidth = units.Bandwidth(totalBits / now)
	}
	for _, r := range results {
		out.SteadyAggregate += r.InitialRate
	}
	return out, nil
}
