package simhost

import (
	"fmt"
	"math"
	"sort"

	"numaio/internal/fabric"
	"numaio/internal/units"
)

// Transfer is one bulk data movement to run to completion.
type Transfer struct {
	ID     string
	Bytes  units.Size
	Demand units.Bandwidth // per-transfer rate cap; <= 0 means unbounded
	Usages []fabric.Usage
}

// TransferResult reports one completed transfer.
type TransferResult struct {
	ID       string
	Bytes    units.Size
	Duration units.Duration
	// Bandwidth is the average rate over the transfer's lifetime.
	Bandwidth units.Bandwidth
	// InitialRate is the rate while all transfers were still active, which
	// is what a steady-state benchmark with equal-sized jobs reports.
	InitialRate units.Bandwidth
}

// SessionResult reports a whole fluid run.
type SessionResult struct {
	Transfers map[string]TransferResult
	// Makespan is the completion time of the last transfer.
	Makespan units.Duration
	// AggregateBandwidth is total bytes moved divided by the makespan.
	AggregateBandwidth units.Bandwidth
	// SteadyAggregate is the sum of initial (all-active) rates, the number
	// a long-running benchmark such as fio converges to when all jobs move
	// the same amount of data.
	SteadyAggregate units.Bandwidth
	// Timeline records every constant-rate phase of the run, including
	// per-resource utilization — the observability layer for contention
	// analysis.
	Timeline Timeline
}

// RunFluid advances the given transfers through a max-min fair fabric until
// all complete, re-solving the allocation whenever a transfer finishes
// (fluid-flow approximation of the real time-shared hardware).
func RunFluid(resources []fabric.Resource, transfers []Transfer) (*SessionResult, error) {
	if len(transfers) == 0 {
		return &SessionResult{Transfers: map[string]TransferResult{}}, nil
	}
	remaining := make(map[string]float64, len(transfers)) // bits
	results := make(map[string]TransferResult, len(transfers))
	active := make(map[string]Transfer, len(transfers))
	for _, tr := range transfers {
		if tr.Bytes <= 0 {
			return nil, fmt.Errorf("simhost: transfer %q has nonpositive size", tr.ID)
		}
		if _, dup := active[tr.ID]; dup {
			return nil, fmt.Errorf("simhost: duplicate transfer %q", tr.ID)
		}
		active[tr.ID] = tr
		remaining[tr.ID] = tr.Bytes.Bits()
	}

	var now float64 // seconds
	var totalBits float64
	var timeline Timeline
	first := true
	for len(active) > 0 {
		s := fabric.NewSolver()
		for _, r := range resources {
			if err := s.SetResource(r); err != nil {
				return nil, err
			}
		}
		// Deterministic flow order.
		ids := make([]string, 0, len(active))
		for id := range active {
			ids = append(ids, id)
		}
		sort.Strings(ids)
		for _, id := range ids {
			tr := active[id]
			if err := s.AddFlow(fabric.Flow{ID: id, Demand: tr.Demand, Usages: tr.Usages}); err != nil {
				return nil, err
			}
		}
		alloc, err := s.Solve()
		if err != nil {
			return nil, err
		}

		// Time until the next completion at current rates.
		dt := math.Inf(1)
		for _, id := range ids {
			rate := float64(alloc.Rate(id))
			if rate <= 0 {
				return nil, fmt.Errorf("simhost: transfer %q starved (zero rate)", id)
			}
			if t := remaining[id] / rate; t < dt {
				dt = t
			}
		}

		phase := Phase{
			Start:       units.Duration(now),
			Duration:    units.Duration(dt),
			Rates:       make(map[string]units.Bandwidth, len(ids)),
			Utilization: alloc.Utilization,
		}
		for _, id := range ids {
			rate := float64(alloc.Rate(id))
			phase.Rates[id] = units.Bandwidth(rate)
			if first {
				res := results[id]
				res.ID = id
				res.InitialRate = units.Bandwidth(rate)
				results[id] = res
			}
			remaining[id] -= rate * dt
			if remaining[id] <= 1e-3 { // sub-bit residue
				tr := active[id]
				res := results[id]
				res.Bytes = tr.Bytes
				res.Duration = units.Duration(now + dt)
				res.Bandwidth = units.Rate(tr.Bytes, res.Duration)
				results[id] = res
				totalBits += tr.Bytes.Bits()
				phase.Completed = append(phase.Completed, id)
				delete(active, id)
			}
		}
		timeline.Phases = append(timeline.Phases, phase)
		now += dt
		first = false
	}

	out := &SessionResult{
		Transfers: results,
		Makespan:  units.Duration(now),
		Timeline:  timeline,
	}
	if now > 0 {
		out.AggregateBandwidth = units.Bandwidth(totalBits / now)
	}
	for _, r := range results {
		out.SteadyAggregate += r.InitialRate
	}
	return out, nil
}
