package simhost

import (
	"fmt"
	"math"
	"sort"
	"sync"

	"numaio/internal/fabric"
	"numaio/internal/telemetry"
	"numaio/internal/units"
)

// Transfer is one bulk data movement to run to completion.
type Transfer struct {
	ID     string
	Bytes  units.Size
	Demand units.Bandwidth // per-transfer rate cap; <= 0 means unbounded
	Usages []fabric.Usage
}

// TransferResult reports one completed transfer.
type TransferResult struct {
	ID       string
	Bytes    units.Size
	Duration units.Duration
	// Bandwidth is the average rate over the transfer's lifetime.
	Bandwidth units.Bandwidth
	// InitialRate is the rate while all transfers were still active, which
	// is what a steady-state benchmark with equal-sized jobs reports.
	InitialRate units.Bandwidth
}

// SessionResult reports a whole fluid run.
type SessionResult struct {
	Transfers map[string]TransferResult
	// Makespan is the completion time of the last transfer.
	Makespan units.Duration
	// AggregateBandwidth is total bytes moved divided by the makespan.
	AggregateBandwidth units.Bandwidth
	// SteadyAggregate is the sum of initial (all-active) rates, the number
	// a long-running benchmark such as fio converges to when all jobs move
	// the same amount of data. It is accumulated in ascending transfer-ID
	// order, so the float sum is deterministic.
	SteadyAggregate units.Bandwidth
	// Timeline records every constant-rate phase of the run, including
	// per-resource utilization — the observability layer for contention
	// analysis. Empty when the session runs lean (SetLeanTimeline).
	Timeline Timeline
}

// phaseSpan records one phase's scalars plus how many arena entries it
// owns; the escaping Timeline is materialized from the arenas in one exact
// allocation per kind at the end of a run.
type phaseSpan struct {
	start, dur           float64
	ratesN, utilN, compN int32
}

// FluidSession runs fluid sessions over a fixed resource set, reusing one
// solver (and its registered resource table) across runs plus the per-run
// bookkeeping buffers, so steady-state runs stay off the allocator. Callers
// with a stable fabric — the fio runner re-solving the same machine for
// every measurement cell — avoid re-registering every resource per run. A
// FluidSession is not safe for concurrent use.
type FluidSession struct {
	s *fabric.Solver

	// tr, when set, records one span per Run plus one per constant-rate
	// phase (category "fluid") on track tid, so solver work nests under the
	// measurement cell that triggered it. Tracing shapes no results.
	tr  *telemetry.Tracer
	tid int

	// lean skips the phase-by-phase Timeline (its entries dominate the cost
	// of a run); rates, durations and aggregates are unaffected. The
	// characterization sweep, which only reads aggregates, runs lean.
	lean bool

	// resSnap records the resource table registered into s by RunFluidTraced,
	// so a pooled session whose next caller passes the same table (ID and
	// capacity, compared cheaply — the IDs are interned) skips re-registering
	// all of it. Empty for sessions built via NewFluidSession.
	resSnap []fabric.Resource

	// Per-run scratch, reused across Run calls.
	ord       []Transfer
	remaining []float64 // bits left per ord index
	rate      []float64 // per-phase rate per ord index
	done      []bool
	results   []TransferResult // per ord index
	dropIdx   []int32          // per-phase completed flow indices

	// Timeline arenas: phase records accumulate here during a run and are
	// copied out in one exact-size block per kind, so a run's timeline
	// costs a handful of allocations instead of two maps per phase.
	spans     []phaseSpan
	rateArena []TransferRate
	utilArena []ResourceUtil
	compArena []string

	// out is the session-owned result served by RunShared; its Transfers
	// map is cleared and refilled per run instead of reallocated.
	out SessionResult

	// raw snapshots the caller's transfer slice (input order) from the last
	// run that built the solver's flow table. When the next run passes an
	// identical slice — the repeat pattern of every measurement loop — Run
	// skips validation, sorting and flow registration entirely and restores
	// the solver's checkpointed table instead.
	raw []Transfer
}

// SetTracer attaches (or, with nil, detaches) a tracer; phase spans land
// on track tid.
func (fs *FluidSession) SetTracer(tr *telemetry.Tracer, tid int) {
	fs.tr, fs.tid = tr, tid
}

// SetLeanTimeline toggles lean mode: when on, Run skips recording the
// phase-by-phase Timeline. All other results are identical.
func (fs *FluidSession) SetLeanTimeline(lean bool) { fs.lean = lean }

// NewFluidSession registers the resources once and returns the reusable
// session.
func NewFluidSession(resources []fabric.Resource) (*FluidSession, error) {
	s := fabric.NewSolver()
	for _, r := range resources {
		if err := s.SetResource(r); err != nil {
			return nil, err
		}
	}
	return &FluidSession{s: s}, nil
}

// sessionPool recycles the one-shot sessions behind RunFluid, keeping their
// scratch buffers (the solver itself comes from the fabric pool).
var sessionPool = sync.Pool{New: func() any { return &FluidSession{} }}

// RunFluid advances the given transfers through a max-min fair fabric until
// all complete, re-solving the allocation whenever a transfer finishes
// (fluid-flow approximation of the real time-shared hardware).
//
// The solver is built once — resources registered and flows added in sorted
// ID order — and completed flows are removed between phases; the solver
// re-levels only the components those removals touched. Ordered removal
// keeps the remaining flows in sorted order, so every phase solves the
// exact same problem (same float accumulation order) a per-phase rebuild
// would.
func RunFluid(resources []fabric.Resource, transfers []Transfer) (*SessionResult, error) {
	return RunFluidTraced(resources, transfers, nil, 0)
}

// RunFluidTraced is RunFluid with per-run and per-phase spans recorded on
// the tracer (nil means no tracing).
func RunFluidTraced(resources []fabric.Resource, transfers []Transfer, tr *telemetry.Tracer, tid int) (*SessionResult, error) {
	if len(transfers) == 0 {
		return &SessionResult{Transfers: map[string]TransferResult{}}, nil
	}
	fs := sessionPool.Get().(*FluidSession)
	if !resourcesMatch(fs.resSnap, resources) {
		if fs.s != nil {
			fabric.ReleaseSolver(fs.s)
			fs.s = nil
		}
		s := fabric.AcquireSolver()
		for _, r := range resources {
			if err := s.SetResource(r); err != nil {
				fabric.ReleaseSolver(s)
				fs.resSnap = fs.resSnap[:0]
				sessionPool.Put(fs)
				return nil, err
			}
		}
		fs.s = s
		fs.resSnap = append(fs.resSnap[:0], resources...)
	}
	fs.tr, fs.tid = tr, tid
	out, err := fs.Run(transfers)
	fs.tr = nil
	sessionPool.Put(fs) // keeps the solver and its registered table
	return out, err
}

// sameAsLast reports whether transfers is entry-for-entry identical to the
// input that built the solver's current checkpoint: same IDs, sizes and
// demands, and the same backing array for each usage list (measurement
// loops pass cached usage slices, so pointer equality is the common case
// and content comparison is not worth its cost).
func (fs *FluidSession) sameAsLast(transfers []Transfer) bool {
	if len(fs.raw) != len(transfers) || len(transfers) == 0 {
		return false
	}
	for i := range transfers {
		a, b := &fs.raw[i], &transfers[i]
		if a.ID != b.ID || a.Bytes != b.Bytes || a.Demand != b.Demand ||
			len(a.Usages) != len(b.Usages) {
			return false
		}
		if len(a.Usages) > 0 && &a.Usages[0] != &b.Usages[0] {
			return false
		}
	}
	return true
}

// resourcesMatch reports whether the session's registered table equals the
// requested one entry for entry. Resource IDs are interned, so the string
// compares hit the pointer-equality fast path.
func resourcesMatch(snap, resources []fabric.Resource) bool {
	if len(snap) != len(resources) || len(snap) == 0 {
		return false
	}
	for i := range resources {
		if snap[i].ID != resources[i].ID || snap[i].Capacity != resources[i].Capacity {
			return false
		}
	}
	return true
}

// Run executes one fluid session over the session's fabric. The returned
// result is freshly allocated and owned by the caller.
func (fs *FluidSession) Run(transfers []Transfer) (*SessionResult, error) {
	return fs.run(transfers, false)
}

// RunShared is Run with the result assembled into session-owned storage:
// the returned SessionResult (including its Transfers map) is reused by the
// next Run/RunShared call, so steady-state callers that consume the result
// before running again — the characterization sweep's measurement loop —
// stay entirely off the allocator. Do not retain the result.
func (fs *FluidSession) RunShared(transfers []Transfer) (*SessionResult, error) {
	return fs.run(transfers, true)
}

func (fs *FluidSession) run(transfers []Transfer, shared bool) (*SessionResult, error) {
	n := len(transfers)
	if n == 0 {
		return &SessionResult{Transfers: map[string]TransferResult{}}, nil
	}
	s := fs.s
	if !(fs.sameAsLast(transfers) && s.RestoreCheckpoint()) {
		// Full build: validate, sort, register — then checkpoint the solver
		// table and snapshot the input so identical repeats skip all of it.
		fs.raw = fs.raw[:0]
		for i := range transfers {
			if transfers[i].Bytes <= 0 {
				return nil, fmt.Errorf("simhost: transfer %q has nonpositive size", transfers[i].ID)
			}
		}
		fs.ord = append(fs.ord[:0], transfers...)
		ord := fs.ord
		sorted := true
		for i := 1; i < n; i++ {
			if ord[i].ID < ord[i-1].ID {
				sorted = false
				break
			}
		}
		if !sorted {
			sort.Slice(ord, func(i, j int) bool { return ord[i].ID < ord[j].ID })
		}
		for i := 1; i < n; i++ {
			if ord[i].ID == ord[i-1].ID {
				return nil, fmt.Errorf("simhost: duplicate transfer %q", ord[i].ID)
			}
		}
		s.Reset()
		for i := range ord {
			if err := s.AddFlow(fabric.Flow{ID: ord[i].ID, Demand: ord[i].Demand, Usages: ord[i].Usages}); err != nil {
				return nil, err
			}
		}
		s.Checkpoint()
		fs.raw = append(fs.raw[:0], transfers...)
	}
	ord := fs.ord

	if cap(fs.remaining) < n {
		fs.remaining = make([]float64, n)
		fs.rate = make([]float64, n)
		fs.done = make([]bool, n)
		fs.results = make([]TransferResult, n)
	}
	remaining, rate := fs.remaining[:n], fs.rate[:n]
	done, results := fs.done[:n], fs.results[:n]
	for i := range ord {
		remaining[i] = ord[i].Bytes.Bits()
		done[i] = false
		results[i] = TransferResult{}
	}
	fs.spans = fs.spans[:0]
	fs.rateArena = fs.rateArena[:0]
	fs.utilArena = fs.utilArena[:0]
	fs.compArena = fs.compArena[:0]

	var runSpan *telemetry.Span
	if fs.tr != nil {
		runSpan = fs.tr.StartSpanOn(fs.tid, "fluid-run", "fluid",
			telemetry.Int("transfers", n))
		defer runSpan.End()
	}

	var now float64 // seconds
	var totalBits float64
	activeCount := n
	first := true
	phaseIdx := 0
	for activeCount > 0 {
		var phaseSpanT *telemetry.Span
		if fs.tr != nil {
			phaseSpanT = runSpan.StartSpan("fluid-phase", "fluid",
				telemetry.Int("phase", phaseIdx), telemetry.Int("active", activeCount))
		}
		ia, err := s.SolveIndexed()
		if err != nil {
			phaseSpanT.End()
			return nil, err
		}

		// Time until the next completion at current rates. Flows were added
		// in sorted ord order and removal splices in place, so the k-th
		// still-active transfer is exactly flow index k — rates come straight
		// off the indexed view without any string-keyed lookups.
		dt := math.Inf(1)
		k := 0
		for i := range ord {
			if done[i] {
				continue
			}
			r := float64(ia.Rate(k))
			k++
			if r <= 0 {
				phaseSpanT.End()
				return nil, fmt.Errorf("simhost: transfer %q starved (zero rate)", ord[i].ID)
			}
			rate[i] = r
			if t := remaining[i] / r; t < dt {
				dt = t
			}
		}

		// Record the phase into the arenas before any removal below
		// invalidates the indexed view. Only loaded resources appear in the
		// utilization list — an absent entry reads as 0, which is also its
		// value.
		sp := phaseSpan{start: now, dur: dt}
		if !fs.lean {
			nres := ia.NumResources()
			for ri := 0; ri < nres; ri++ {
				if u := ia.Utilization(ri); u > 0 {
					fs.utilArena = append(fs.utilArena, ResourceUtil{Resource: ia.ResourceID(ri), Util: u})
					sp.utilN++
				}
			}
		}
		// Completions are collected and removed in one compaction pass:
		// batching the removals turns k tail-shifting splices into a single
		// sweep over the flow table.
		dropIdx := fs.dropIdx[:0]
		k = 0
		for i := range ord {
			if done[i] {
				continue
			}
			id := ord[i].ID
			if !fs.lean {
				fs.rateArena = append(fs.rateArena, TransferRate{ID: id, Rate: units.Bandwidth(rate[i])})
				sp.ratesN++
			}
			if first {
				results[i].ID = id
				results[i].InitialRate = units.Bandwidth(rate[i])
			}
			remaining[i] -= rate[i] * dt
			if remaining[i] <= 1e-3 { // sub-bit residue
				results[i].Bytes = ord[i].Bytes
				results[i].Duration = units.Duration(now + dt)
				results[i].Bandwidth = units.Rate(ord[i].Bytes, results[i].Duration)
				totalBits += ord[i].Bytes.Bits()
				if !fs.lean {
					fs.compArena = append(fs.compArena, id)
					sp.compN++
				}
				done[i] = true
				activeCount--
				dropIdx = append(dropIdx, int32(k))
			}
			k++
		}
		s.RemoveFlowsAt(dropIdx)
		fs.dropIdx = dropIdx[:0]
		if !fs.lean {
			fs.spans = append(fs.spans, sp)
			phaseSpanT.SetAttr(telemetry.Int("completed", int(sp.compN)))
		}
		phaseSpanT.End()
		phaseIdx++
		now += dt
		first = false
	}

	var out *SessionResult
	if shared {
		out = &fs.out
		if out.Transfers == nil {
			out.Transfers = make(map[string]TransferResult, n)
		} else {
			clear(out.Transfers)
		}
		out.Makespan = units.Duration(now)
		out.AggregateBandwidth = 0
		out.SteadyAggregate = 0
		out.Timeline = fs.materializeTimeline()
	} else {
		out = &SessionResult{
			Transfers: make(map[string]TransferResult, n),
			Makespan:  units.Duration(now),
			Timeline:  fs.materializeTimeline(),
		}
	}
	if now > 0 {
		out.AggregateBandwidth = units.Bandwidth(totalBits / now)
	}
	// Accumulated in ord (ascending ID) order: deterministic float sum.
	for i := range ord {
		out.Transfers[ord[i].ID] = results[i]
		out.SteadyAggregate += results[i].InitialRate
	}
	return out, nil
}

// materializeTimeline copies the run's arena-accumulated phase records into
// an exactly-sized, caller-owned Timeline: one allocation per entry kind
// regardless of phase count. Lean runs return the zero Timeline.
func (fs *FluidSession) materializeTimeline() Timeline {
	if fs.lean || len(fs.spans) == 0 {
		return Timeline{}
	}
	rates := make(RateList, len(fs.rateArena))
	copy(rates, fs.rateArena)
	utils := make(UtilList, len(fs.utilArena))
	copy(utils, fs.utilArena)
	var comp []string
	if len(fs.compArena) > 0 {
		comp = make([]string, len(fs.compArena))
		copy(comp, fs.compArena)
	}
	phases := make([]Phase, len(fs.spans))
	var ro, uo, co int32
	for i, sp := range fs.spans {
		p := &phases[i]
		p.Start = units.Duration(sp.start)
		p.Duration = units.Duration(sp.dur)
		p.Rates = rates[ro : ro+sp.ratesN : ro+sp.ratesN]
		p.Utilization = utils[uo : uo+sp.utilN : uo+sp.utilN]
		if sp.compN > 0 {
			p.Completed = comp[co : co+sp.compN : co+sp.compN]
		}
		ro += sp.ratesN
		uo += sp.utilN
		co += sp.compN
	}
	return Timeline{Phases: phases}
}
