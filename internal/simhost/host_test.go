package simhost

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"numaio/internal/fabric"
	"numaio/internal/topology"
	"numaio/internal/units"
)

func newTestHost(t *testing.T, opts ...Option) *Host {
	t.Helper()
	h, err := NewHost(topology.DL585G7(), opts...)
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func TestNewHostValidates(t *testing.T) {
	if _, err := NewHost(topology.New("empty", nil)); err == nil {
		t.Error("invalid machine should be rejected")
	}
}

// Sec. IV-A: on an idle system every node has ~4 GB free except node 0 with
// ~1.5 GB (the OS reservation).
func TestOSReservationOnNode0(t *testing.T) {
	h := newTestHost(t)
	if got := h.FreeMem(0); got != 4*units.GiB-DefaultOSReservation {
		t.Errorf("node 0 free = %v, want 1.5GiB", got)
	}
	for n := topology.NodeID(1); n < 8; n++ {
		if got := h.FreeMem(n); got != 4*units.GiB {
			t.Errorf("node %d free = %v, want 4GiB", n, got)
		}
	}
}

func TestWithOSReservation(t *testing.T) {
	h := newTestHost(t, WithOSReservation(units.GiB))
	if got := h.FreeMem(0); got != 3*units.GiB {
		t.Errorf("node 0 free = %v, want 3GiB", got)
	}
	// Oversized reservation clamps to the node's memory.
	h2 := newTestHost(t, WithOSReservation(100*units.GiB))
	if got := h2.FreeMem(0); got != 0 {
		t.Errorf("node 0 free = %v, want 0", got)
	}
}

func TestAllocBindStrict(t *testing.T) {
	h := newTestHost(t)
	b, err := h.Alloc(AllocRequest{Size: units.GiB, Policy: PolicyBind, Target: 3, TaskNode: 7})
	if err != nil {
		t.Fatal(err)
	}
	if b.HomeNode() != 3 || b.Pages[3] != units.GiB {
		t.Errorf("buffer = %+v", b)
	}
	if got := h.FreeMem(3); got != 3*units.GiB {
		t.Errorf("node 3 free = %v", got)
	}
	// Bind must fail when the node is full.
	if _, err := h.Alloc(AllocRequest{Size: 10 * units.GiB, Policy: PolicyBind, Target: 3, TaskNode: 7}); err == nil {
		t.Error("oversized bind should fail")
	}
	st := h.Stats(3)
	if st.NumaHit != 1 || st.OtherNode != 1 {
		t.Errorf("stats(3) = %+v", st)
	}
}

func TestAllocPreferredFallback(t *testing.T) {
	h := newTestHost(t)
	// Fill node 2 completely.
	if _, err := h.Alloc(AllocRequest{Size: 4 * units.GiB, Policy: PolicyBind, Target: 2, TaskNode: 2}); err != nil {
		t.Fatal(err)
	}
	b, err := h.Alloc(AllocRequest{Size: units.GiB, Policy: PolicyPreferred, Target: 2, TaskNode: 2})
	if err != nil {
		t.Fatal(err)
	}
	if b.HomeNode() == 2 {
		t.Error("fallback should pick another node")
	}
	if st := h.Stats(2); st.NumaForeign != 1 {
		t.Errorf("stats(2).NumaForeign = %d, want 1", st.NumaForeign)
	}
	if st := h.Stats(b.HomeNode()); st.NumaMiss != 1 {
		t.Errorf("stats(%d).NumaMiss = %d, want 1", b.HomeNode(), st.NumaMiss)
	}
}

func TestAllocLocalPreferred(t *testing.T) {
	h := newTestHost(t)
	b, err := h.Alloc(AllocRequest{Size: units.GiB, Policy: PolicyLocalPreferred, TaskNode: 5})
	if err != nil {
		t.Fatal(err)
	}
	if b.HomeNode() != 5 {
		t.Errorf("local-preferred landed on %d", b.HomeNode())
	}
	if st := h.Stats(5); st.LocalNode != 1 || st.NumaHit != 1 {
		t.Errorf("stats(5) = %+v", st)
	}
}

func TestAllocInterleaveEvenSplit(t *testing.T) {
	h := newTestHost(t)
	b, err := h.Alloc(AllocRequest{Size: 8 * units.GiB, Policy: PolicyInterleave, TaskNode: 0})
	if err != nil {
		t.Fatal(err)
	}
	if len(b.Pages) != 8 {
		t.Fatalf("interleave spread over %d nodes, want 8", len(b.Pages))
	}
	for n, sz := range b.Pages {
		if sz != units.GiB {
			t.Errorf("node %d share = %v, want 1GiB", n, sz)
		}
	}
	if st := h.Stats(4); st.InterleaveHit != 1 {
		t.Errorf("stats(4).InterleaveHit = %d", st.InterleaveHit)
	}
}

func TestAllocInterleaveSubsetAndSpill(t *testing.T) {
	h := newTestHost(t)
	// Nearly fill node 1, then interleave across {1,2}: node 1's shortfall
	// must spill elsewhere.
	if _, err := h.Alloc(AllocRequest{Size: 4*units.GiB - 512*units.MiB, Policy: PolicyBind, Target: 1, TaskNode: 1}); err != nil {
		t.Fatal(err)
	}
	b, err := h.Alloc(AllocRequest{
		Size: 2 * units.GiB, Policy: PolicyInterleave, TaskNode: 0,
		InterleaveNodes: []topology.NodeID{1, 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	var total units.Size
	for _, sz := range b.Pages {
		total += sz
	}
	if total != 2*units.GiB {
		t.Errorf("interleaved total = %v, want 2GiB", total)
	}
	if b.Pages[1] != 512*units.MiB {
		t.Errorf("node 1 share = %v, want 512MiB (all that was free)", b.Pages[1])
	}
	if b.Pages[2] != units.GiB {
		t.Errorf("node 2 share = %v, want 1GiB", b.Pages[2])
	}
}

func TestAllocInterleaveImpossible(t *testing.T) {
	h := newTestHost(t)
	if _, err := h.Alloc(AllocRequest{Size: 100 * units.GiB, Policy: PolicyInterleave, TaskNode: 0}); err == nil {
		t.Error("interleave beyond total memory should fail")
	}
	// Failure must not leak memory.
	var total units.Size
	for _, n := range topology.DL585G7().NodeIDs() {
		total += h.FreeMem(n)
	}
	if want := 32*units.GiB - DefaultOSReservation; total != want {
		t.Errorf("free total after failed alloc = %v, want %v", total, want)
	}
}

func TestAllocErrors(t *testing.T) {
	h := newTestHost(t)
	if _, err := h.Alloc(AllocRequest{Size: 0, Policy: PolicyBind, Target: 0, TaskNode: 0}); err == nil {
		t.Error("zero size should fail")
	}
	if _, err := h.Alloc(AllocRequest{Size: units.KiB, Policy: PolicyBind, Target: 99, TaskNode: 0}); err == nil {
		t.Error("unknown target should fail")
	}
	if _, err := h.Alloc(AllocRequest{Size: units.KiB, Policy: PolicyBind, Target: 0, TaskNode: 99}); err == nil {
		t.Error("unknown task node should fail")
	}
	if _, err := h.Alloc(AllocRequest{Size: units.KiB, Policy: Policy(42), TaskNode: 0}); err == nil {
		t.Error("unknown policy should fail")
	}
	if _, err := h.Alloc(AllocRequest{Size: units.KiB, Policy: PolicyInterleave, TaskNode: 0,
		InterleaveNodes: []topology.NodeID{42}}); err == nil {
		t.Error("unknown interleave node should fail")
	}
}

func TestFreeAndDoubleFree(t *testing.T) {
	h := newTestHost(t)
	b, err := h.Alloc(AllocRequest{Size: units.GiB, Policy: PolicyBind, Target: 6, TaskNode: 6})
	if err != nil {
		t.Fatal(err)
	}
	if err := h.Free(b); err != nil {
		t.Fatal(err)
	}
	if got := h.FreeMem(6); got != 4*units.GiB {
		t.Errorf("node 6 free after Free = %v", got)
	}
	if err := h.Free(b); err == nil {
		t.Error("double free should fail")
	}
	if err := h.Free(nil); err == nil {
		t.Error("Free(nil) should fail")
	}
}

// Property: allocation and free conserve total memory.
func TestAllocFreeConservation(t *testing.T) {
	f := func(sizes []uint16) bool {
		h, err := NewHost(topology.DL585G7())
		if err != nil {
			return false
		}
		totalBefore := units.Size(0)
		for _, n := range h.M.NodeIDs() {
			totalBefore += h.FreeMem(n)
		}
		var bufs []*Buffer
		for i, s := range sizes {
			if i >= 16 {
				break
			}
			size := units.Size(int64(s)+1) * units.MiB
			b, err := h.Alloc(AllocRequest{
				Size: size, Policy: Policy(i % 4), Target: topology.NodeID(i % 8),
				TaskNode: topology.NodeID((i + 3) % 8),
			})
			if err != nil {
				continue
			}
			bufs = append(bufs, b)
		}
		for _, b := range bufs {
			if err := h.Free(b); err != nil {
				return false
			}
		}
		totalAfter := units.Size(0)
		for _, n := range h.M.NodeIDs() {
			totalAfter += h.FreeMem(n)
		}
		return totalBefore == totalAfter
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestHardwareOutput(t *testing.T) {
	h := newTestHost(t)
	out := h.Hardware()
	for _, want := range []string{
		"available: 8 nodes (0-7)",
		"node 0 free: 1536 MB",
		"node 7 free: 4096 MB",
		"node distances:",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("Hardware() missing %q:\n%s", want, out)
		}
	}
}

func TestBufferHomeNodeTieBreak(t *testing.T) {
	b := &Buffer{Pages: map[topology.NodeID]units.Size{2: units.GiB, 5: units.GiB}}
	if got := b.HomeNode(); got != 2 {
		t.Errorf("HomeNode tie = %d, want 2 (lowest)", got)
	}
}

func TestPolicyStrings(t *testing.T) {
	for p, want := range map[Policy]string{
		PolicyLocalPreferred: "local-preferred",
		PolicyBind:           "bind",
		PolicyPreferred:      "preferred",
		PolicyInterleave:     "interleave",
		Policy(9):            "Policy(9)",
	} {
		if got := p.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int(p), got, want)
		}
	}
}

func TestStatsUnknownNode(t *testing.T) {
	h := newTestHost(t)
	if st := h.Stats(99); st != (NodeStats{}) {
		t.Errorf("Stats(99) = %+v, want zero", st)
	}
}

func TestRunFluidSingle(t *testing.T) {
	res := []fabric.Resource{{ID: "l", Capacity: 8 * units.Gbps}}
	out, err := RunFluid(res, []Transfer{{
		ID: "t", Bytes: units.GiB,
		Usages: []fabric.Usage{{Resource: "l", Weight: 1}},
	}})
	if err != nil {
		t.Fatal(err)
	}
	tr := out.Transfers["t"]
	wantDur := units.GiB.Bits() / 8e9
	if math.Abs(tr.Duration.Seconds()-wantDur) > 1e-9 {
		t.Errorf("duration = %v, want %v", tr.Duration.Seconds(), wantDur)
	}
	if math.Abs(tr.Bandwidth.Gbps()-8) > 1e-6 {
		t.Errorf("bandwidth = %v, want 8", tr.Bandwidth.Gbps())
	}
	if math.Abs(out.AggregateBandwidth.Gbps()-8) > 1e-6 {
		t.Errorf("aggregate = %v", out.AggregateBandwidth.Gbps())
	}
}

// Two transfers share a link; when the smaller finishes, the bigger speeds
// up. Average bandwidths must reflect the two phases.
func TestRunFluidResolvesAfterCompletion(t *testing.T) {
	res := []fabric.Resource{{ID: "l", Capacity: 10 * units.Gbps}}
	u := []fabric.Usage{{Resource: "l", Weight: 1}}
	out, err := RunFluid(res, []Transfer{
		{ID: "small", Bytes: 625 * units.MiB, Usages: u}, // 5 Gbit
		{ID: "big", Bytes: 1875 * units.MiB, Usages: u},  // 15 Gbit
	})
	if err != nil {
		t.Fatal(err)
	}
	// Phase 1: both at 5 Gb/s until small done at t=1s (5 Gbit each moved).
	// Phase 2: big alone at 10 Gb/s for its remaining 10 Gbit -> 1s more.
	small, big := out.Transfers["small"], out.Transfers["big"]
	if math.Abs(small.Duration.Seconds()-1.048576) > 1e-3 {
		t.Errorf("small duration = %v", small.Duration.Seconds())
	}
	if math.Abs(big.Duration.Seconds()-2.097152) > 1e-3 {
		t.Errorf("big duration = %v", big.Duration.Seconds())
	}
	if math.Abs(small.InitialRate.Gbps()-5) > 1e-6 || math.Abs(big.InitialRate.Gbps()-5) > 1e-6 {
		t.Errorf("initial rates = %v, %v; want 5,5", small.InitialRate.Gbps(), big.InitialRate.Gbps())
	}
	if math.Abs(big.Bandwidth.Gbps()-7.5) > 1e-3 {
		t.Errorf("big average = %v, want 7.5", big.Bandwidth.Gbps())
	}
	if math.Abs(out.SteadyAggregate.Gbps()-10) > 1e-6 {
		t.Errorf("steady aggregate = %v, want 10", out.SteadyAggregate.Gbps())
	}
}

func TestRunFluidDemandCap(t *testing.T) {
	res := []fabric.Resource{{ID: "l", Capacity: 10 * units.Gbps}}
	out, err := RunFluid(res, []Transfer{{
		ID: "capped", Bytes: units.GiB, Demand: 2 * units.Gbps,
		Usages: []fabric.Usage{{Resource: "l", Weight: 1}},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if got := out.Transfers["capped"].Bandwidth.Gbps(); math.Abs(got-2) > 1e-6 {
		t.Errorf("capped rate = %v, want 2", got)
	}
}

func TestRunFluidErrors(t *testing.T) {
	res := []fabric.Resource{{ID: "l", Capacity: 10 * units.Gbps}}
	u := []fabric.Usage{{Resource: "l", Weight: 1}}
	if _, err := RunFluid(res, []Transfer{{ID: "z", Bytes: 0, Usages: u}}); err == nil {
		t.Error("zero-size transfer should fail")
	}
	if _, err := RunFluid(res, []Transfer{
		{ID: "d", Bytes: units.KiB, Usages: u},
		{ID: "d", Bytes: units.KiB, Usages: u},
	}); err == nil {
		t.Error("duplicate transfer IDs should fail")
	}
	if _, err := RunFluid(res, []Transfer{{ID: "x", Bytes: units.KiB,
		Usages: []fabric.Usage{{Resource: "nope", Weight: 1}}}}); err == nil {
		t.Error("unknown resource should fail")
	}
	if _, err := RunFluid([]fabric.Resource{{ID: "bad", Capacity: -1}},
		[]Transfer{{ID: "x", Bytes: units.KiB, Usages: u}}); err == nil {
		t.Error("bad resource should fail")
	}
	out, err := RunFluid(res, nil)
	if err != nil || len(out.Transfers) != 0 {
		t.Error("empty run should succeed with no transfers")
	}
}

func TestJitterDeterministicAndBounded(t *testing.T) {
	a := Jitter("key", 0.05)
	b := Jitter("key", 0.05)
	if a != b {
		t.Error("Jitter must be deterministic")
	}
	if Jitter("other", 0.05) == a {
		t.Error("different keys should (almost surely) differ")
	}
	if Jitter("x", 0) != 1 {
		t.Error("zero sigma must return 1")
	}
	for _, key := range []string{"a", "b", "c", "d", "e", "f", "g"} {
		v := Jitter(key, 0.05)
		if v < 0.95 || v > 1.05 {
			t.Errorf("Jitter(%q) = %v out of [0.95, 1.05]", key, v)
		}
	}
}

func TestJitterMax(t *testing.T) {
	one := Jitter("k", 0.05)
	best := JitterMax("k", 0.05, 100)
	if best < one {
		t.Errorf("JitterMax(100) = %v < single sample %v", best, one)
	}
	if best > 1.05 {
		t.Errorf("JitterMax out of bounds: %v", best)
	}
	if JitterMax("k", 0.05, 1) != one {
		t.Error("JitterMax(1) should equal Jitter")
	}
	// With many samples the max should approach the upper bound.
	if best < 1.03 {
		t.Errorf("JitterMax(100) = %v, expected close to 1.05", best)
	}
}

// Property: jitter stays within bounds for arbitrary keys.
func TestJitterBoundsProperty(t *testing.T) {
	f := func(key string, sigmaPct uint8) bool {
		sigma := float64(sigmaPct%50) / 100
		v := Jitter(key, sigma)
		return v >= 1-sigma-1e-12 && v <= 1+sigma+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
