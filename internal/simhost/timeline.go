package simhost

import (
	"fmt"
	"sort"
	"strings"

	"numaio/internal/fabric"
	"numaio/internal/units"
)

// Phase is one constant-rate interval of a fluid run: the allocation is
// fixed between transfer completions.
type Phase struct {
	Start    units.Duration
	Duration units.Duration
	// Rates holds the per-transfer allocation during the phase.
	Rates map[string]units.Bandwidth
	// Utilization holds the per-resource load fraction during the phase.
	Utilization map[fabric.ResourceID]float64
	// Completed lists transfers that finish exactly at the end of the
	// phase.
	Completed []string
}

// Aggregate returns the summed rate of the phase.
func (p *Phase) Aggregate() units.Bandwidth {
	var sum units.Bandwidth
	for _, r := range p.Rates {
		sum += r
	}
	return sum
}

// Timeline is the phase-by-phase record of a fluid run.
type Timeline struct {
	Phases []Phase
}

// Makespan returns the total traced time.
func (t *Timeline) Makespan() units.Duration {
	if len(t.Phases) == 0 {
		return 0
	}
	last := t.Phases[len(t.Phases)-1]
	return last.Start + last.Duration
}

// AvgUtilization returns a resource's time-weighted mean utilization.
func (t *Timeline) AvgUtilization(r fabric.ResourceID) float64 {
	var weighted, total float64
	for _, p := range t.Phases {
		weighted += p.Utilization[r] * p.Duration.Seconds()
		total += p.Duration.Seconds()
	}
	if total == 0 {
		return 0
	}
	return weighted / total
}

// Bottlenecks returns the resources that are ~saturated (≥ thresh) in at
// least one phase, sorted by ID.
func (t *Timeline) Bottlenecks(thresh float64) []fabric.ResourceID {
	seen := make(map[fabric.ResourceID]bool)
	for _, p := range t.Phases {
		for id, u := range p.Utilization {
			if u >= thresh {
				seen[id] = true
			}
		}
	}
	out := make([]fabric.ResourceID, 0, len(seen))
	for id := range seen {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// RateOf returns a transfer's rate during phase i (0 if inactive).
func (t *Timeline) RateOf(id string, i int) units.Bandwidth {
	if i < 0 || i >= len(t.Phases) {
		return 0
	}
	return t.Phases[i].Rates[id]
}

// Summary renders a compact per-phase view: time span, aggregate rate,
// active transfers and completions.
func (t *Timeline) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "timeline: %d phases, makespan %v\n", len(t.Phases), t.Makespan())
	for i, p := range t.Phases {
		fmt.Fprintf(&b, "  phase %d @%v (+%v): %d active, aggregate %v",
			i, p.Start, p.Duration, len(p.Rates), p.Aggregate())
		if len(p.Completed) > 0 {
			fmt.Fprintf(&b, ", completes %s", strings.Join(p.Completed, ","))
		}
		b.WriteString("\n")
	}
	return b.String()
}
