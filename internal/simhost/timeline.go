package simhost

import (
	"fmt"
	"sort"
	"strings"

	"numaio/internal/fabric"
	"numaio/internal/units"
)

// TransferRate is one transfer's allocation during a phase.
type TransferRate struct {
	ID   string
	Rate units.Bandwidth
}

// RateList holds the per-transfer allocations of a phase in ascending
// transfer-ID order. It replaced a map so a fluid run can arena-allocate
// every phase's entries in one block (RunFluid's allocation budget is
// gated in CI); lists are per-phase small, so lookups scan.
type RateList []TransferRate

// Get returns a transfer's rate (0 when inactive in the phase).
func (rl RateList) Get(id string) units.Bandwidth {
	for i := range rl {
		if rl[i].ID == id {
			return rl[i].Rate
		}
	}
	return 0
}

// ResourceUtil is one resource's load fraction during a phase.
type ResourceUtil struct {
	Resource fabric.ResourceID
	Util     float64
}

// UtilList holds the per-resource load fractions of a phase, only for
// loaded resources, in the solver's resource-index order. An absent
// resource reads as 0 — which is also its utilization.
type UtilList []ResourceUtil

// Get returns a resource's utilization (0 when unloaded).
func (ul UtilList) Get(r fabric.ResourceID) float64 {
	for i := range ul {
		if ul[i].Resource == r {
			return ul[i].Util
		}
	}
	return 0
}

// Phase is one constant-rate interval of a fluid run: the allocation is
// fixed between transfer completions.
type Phase struct {
	Start    units.Duration
	Duration units.Duration
	// Rates holds the per-transfer allocation during the phase.
	Rates RateList
	// Utilization holds the per-resource load fraction during the phase.
	Utilization UtilList
	// Completed lists transfers that finish exactly at the end of the
	// phase.
	Completed []string
}

// Aggregate returns the summed rate of the phase.
func (p *Phase) Aggregate() units.Bandwidth {
	var sum units.Bandwidth
	for i := range p.Rates {
		sum += p.Rates[i].Rate
	}
	return sum
}

// Timeline is the phase-by-phase record of a fluid run.
type Timeline struct {
	Phases []Phase
}

// Makespan returns the total traced time.
func (t *Timeline) Makespan() units.Duration {
	if len(t.Phases) == 0 {
		return 0
	}
	last := t.Phases[len(t.Phases)-1]
	return last.Start + last.Duration
}

// AvgUtilization returns a resource's time-weighted mean utilization.
func (t *Timeline) AvgUtilization(r fabric.ResourceID) float64 {
	var weighted, total float64
	for i := range t.Phases {
		p := &t.Phases[i]
		weighted += p.Utilization.Get(r) * p.Duration.Seconds()
		total += p.Duration.Seconds()
	}
	if total == 0 {
		return 0
	}
	return weighted / total
}

// Bottlenecks returns the resources that are ~saturated (≥ thresh) in at
// least one phase, sorted by ID.
func (t *Timeline) Bottlenecks(thresh float64) []fabric.ResourceID {
	seen := make(map[fabric.ResourceID]bool)
	for i := range t.Phases {
		for _, u := range t.Phases[i].Utilization {
			if u.Util >= thresh {
				seen[u.Resource] = true
			}
		}
	}
	out := make([]fabric.ResourceID, 0, len(seen))
	for id := range seen {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// RateOf returns a transfer's rate during phase i (0 if inactive).
func (t *Timeline) RateOf(id string, i int) units.Bandwidth {
	if i < 0 || i >= len(t.Phases) {
		return 0
	}
	return t.Phases[i].Rates.Get(id)
}

// Summary renders a compact per-phase view: time span, aggregate rate,
// active transfers and completions.
func (t *Timeline) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "timeline: %d phases, makespan %v\n", len(t.Phases), t.Makespan())
	for i := range t.Phases {
		p := &t.Phases[i]
		fmt.Fprintf(&b, "  phase %d @%v (+%v): %d active, aggregate %v",
			i, p.Start, p.Duration, len(p.Rates), p.Aggregate())
		if len(p.Completed) > 0 {
			fmt.Fprintf(&b, ", completes %s", strings.Join(p.Completed, ","))
		}
		b.WriteString("\n")
	}
	return b.String()
}
