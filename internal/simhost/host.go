// Package simhost turns a static topology.Machine into a runnable simulated
// host: a NUMA-aware memory allocator with the Linux allocation policies and
// numastat-style counters, deterministic measurement jitter, and a fluid
// transfer executor that advances concurrent transfers through the fabric
// solver until completion.
//
// This package substitutes for the real DL585 G7 testbed (see DESIGN.md):
// programs written against it exercise the same decisions — where threads
// run, where buffers live — that libnuma/numactl control on real hardware.
package simhost

import (
	"fmt"
	"sort"
	"sync"

	"numaio/internal/topology"
	"numaio/internal/units"
)

// Policy is a NUMA memory allocation policy, mirroring Linux mempolicy.
type Policy int

// Policies.
const (
	// PolicyLocalPreferred allocates on the requesting task's node when
	// possible and falls back to the emptiest other node (the Linux 2.6
	// default, Sec. II-B).
	PolicyLocalPreferred Policy = iota
	// PolicyBind allocates strictly on the given node and fails when it
	// is full.
	PolicyBind
	// PolicyPreferred allocates on the given node when possible, falling
	// back like local-preferred.
	PolicyPreferred
	// PolicyInterleave spreads the allocation evenly across the given
	// nodes (or all nodes when none are specified).
	PolicyInterleave
)

func (p Policy) String() string {
	switch p {
	case PolicyLocalPreferred:
		return "local-preferred"
	case PolicyBind:
		return "bind"
	case PolicyPreferred:
		return "preferred"
	case PolicyInterleave:
		return "interleave"
	default:
		return fmt.Sprintf("Policy(%d)", int(p))
	}
}

// NodeStats are numastat-style counters for one node.
type NodeStats struct {
	NumaHit       int64 // allocations that landed on the intended node
	NumaMiss      int64 // allocations placed here though intended elsewhere
	NumaForeign   int64 // allocations intended here but placed elsewhere
	InterleaveHit int64 // interleaved allocations that landed as intended
	LocalNode     int64 // allocations on the requesting task's node
	OtherNode     int64 // allocations on this node for tasks running elsewhere
}

// Buffer is an allocated simulated memory region. Pages records how the
// buffer is spread across nodes (a single entry except for interleaving).
type Buffer struct {
	ID    int
	Size  units.Size
	Pages map[topology.NodeID]units.Size
	freed bool
}

// HomeNode returns the node holding the largest share of the buffer, which
// for non-interleaved buffers is the only node. Ties break toward the
// lowest node ID.
func (b *Buffer) HomeNode() topology.NodeID {
	if len(b.Pages) == 1 {
		for n := range b.Pages {
			return n
		}
	}
	var best topology.NodeID
	var bestSize units.Size = -1
	ids := make([]topology.NodeID, 0, len(b.Pages))
	for n := range b.Pages {
		ids = append(ids, n)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, n := range ids {
		if b.Pages[n] > bestSize {
			best, bestSize = n, b.Pages[n]
		}
	}
	return best
}

// DefaultOSReservation is the memory the OS pins on node 0 at boot. The
// paper observes ~2.5 GB in use on node 0 of an otherwise idle 4 GB/node
// host ("numactl --hardware" shows 1.5 GB free, Sec. IV-A).
const DefaultOSReservation = units.Size(2.5 * float64(units.GiB))

// denseSlotLimit bounds the node-ID range covered by the dense slot table;
// machines with IDs outside [0, denseSlotLimit) fall back to the sparse map.
// Every shipped profile (and any sysfs-discovered host) is well inside it.
const denseSlotLimit = 1 << 16

// maxPooledBuffers caps the Host's buffer freelist so a burst of
// allocations cannot pin memory forever.
const maxPooledBuffers = 256

// Host is a runnable simulated NUMA host. Free-memory and numastat state
// are dense position-indexed slices (node ID → position via the slot
// table), not maps: the allocator sits on the characterization sweep's
// per-cell path, where map overhead and per-node pointer cells used to
// dominate the allocation profile.
type Host struct {
	M *topology.Machine

	mu sync.Mutex
	// ids is the machine's node IDs in ascending order; free and stats are
	// parallel to it.
	ids   []topology.NodeID
	free  []units.Size
	stats []NodeStats
	// slot maps a node ID to its position in ids/free/stats (-1 = unknown);
	// wide covers IDs outside the dense range, and is nil for every normal
	// machine.
	slot   []int32
	wide   map[topology.NodeID]int32
	nextID int
	// bufPool recycles Buffers (and their Pages maps) released by Free, so
	// the alloc/free cycle of every measurement instance stays off the Go
	// heap in steady state.
	bufPool []*Buffer
}

// Option configures a Host.
type Option func(*hostConfig)

type hostConfig struct {
	osReservation units.Size
}

// WithOSReservation overrides the boot-time OS memory reserved on node 0.
func WithOSReservation(s units.Size) Option {
	return func(c *hostConfig) { c.osReservation = s }
}

// NewHost validates the machine and boots a host on it.
func NewHost(m *topology.Machine, opts ...Option) (*Host, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	cfg := hostConfig{osReservation: DefaultOSReservation}
	for _, o := range opts {
		o(&cfg)
	}
	ids := m.NodeIDs()
	h := &Host{
		M:     m,
		ids:   ids,
		free:  make([]units.Size, len(ids)),
		stats: make([]NodeStats, len(ids)),
	}
	maxID := int32(-1)
	for _, id := range ids {
		if id >= 0 && int(id) < denseSlotLimit {
			if int32(id) > maxID {
				maxID = int32(id)
			}
		}
	}
	if maxID >= 0 {
		h.slot = make([]int32, maxID+1)
		for i := range h.slot {
			h.slot[i] = -1
		}
	}
	for pos, id := range ids {
		if id >= 0 && int(id) < len(h.slot) {
			h.slot[id] = int32(pos)
		} else {
			if h.wide == nil {
				h.wide = make(map[topology.NodeID]int32)
			}
			h.wide[id] = int32(pos)
		}
		h.free[pos] = m.MustNode(id).Memory
	}
	// The OS boots on node 0 (or the lowest node).
	res := cfg.osReservation
	if res > h.free[0] {
		res = h.free[0]
	}
	h.free[0] -= res
	return h, nil
}

// pos returns the dense position of a node ID, or -1 when the machine has
// no such node.
func (h *Host) pos(n topology.NodeID) int32 {
	if n >= 0 && int(n) < len(h.slot) {
		return h.slot[n]
	}
	if p, ok := h.wide[n]; ok {
		return p
	}
	return -1
}

// FreeMem returns the free memory on a node.
func (h *Host) FreeMem(n topology.NodeID) units.Size {
	h.mu.Lock()
	defer h.mu.Unlock()
	if p := h.pos(n); p >= 0 {
		return h.free[p]
	}
	return 0
}

// Stats returns a copy of a node's numastat counters.
func (h *Host) Stats(n topology.NodeID) NodeStats {
	h.mu.Lock()
	defer h.mu.Unlock()
	if p := h.pos(n); p >= 0 {
		return h.stats[p]
	}
	return NodeStats{}
}

// AllocRequest describes an allocation.
type AllocRequest struct {
	Size   units.Size
	Policy Policy
	// Target is the bind/preferred node (ignored for local-preferred and
	// interleave).
	Target topology.NodeID
	// TaskNode is the node the requesting task runs on.
	TaskNode topology.NodeID
	// InterleaveNodes restricts interleaving; empty means all nodes.
	InterleaveNodes []topology.NodeID
}

// Alloc allocates a simulated buffer under the given policy.
func (h *Host) Alloc(req AllocRequest) (*Buffer, error) {
	if req.Size <= 0 {
		return nil, fmt.Errorf("simhost: nonpositive allocation size %v", req.Size)
	}
	h.mu.Lock()
	defer h.mu.Unlock()

	task := h.pos(req.TaskNode)
	if task < 0 {
		return nil, fmt.Errorf("simhost: unknown task node %d", int(req.TaskNode))
	}

	switch req.Policy {
	case PolicyBind:
		return h.allocOn(req.Target, req, task, true)
	case PolicyPreferred:
		return h.allocOn(req.Target, req, task, false)
	case PolicyLocalPreferred:
		return h.allocOn(req.TaskNode, req, task, false)
	case PolicyInterleave:
		return h.allocInterleaved(req, task)
	default:
		return nil, fmt.Errorf("simhost: unknown policy %v", req.Policy)
	}
}

// allocOn places the buffer on node want, falling back to the emptiest node
// unless strict. Positions are dense indices into free/stats.
func (h *Host) allocOn(want topology.NodeID, req AllocRequest, task int32, strict bool) (*Buffer, error) {
	wantPos := h.pos(want)
	if wantPos < 0 {
		return nil, fmt.Errorf("simhost: unknown node %d", int(want))
	}
	got := wantPos
	if h.free[wantPos] < req.Size {
		if strict {
			return nil, fmt.Errorf("simhost: node %d has %v free, need %v",
				int(want), h.free[wantPos], req.Size)
		}
		got = h.emptiestPosWith(req.Size)
		if got < 0 {
			return nil, fmt.Errorf("simhost: no node can hold %v", req.Size)
		}
	}
	h.free[got] -= req.Size
	h.account(wantPos, got, task, false)
	b := h.takeBuffer(req.Size)
	b.Pages[h.ids[got]] = req.Size
	return b, nil
}

func (h *Host) allocInterleaved(req AllocRequest, task int32) (*Buffer, error) {
	nodes := req.InterleaveNodes
	if len(nodes) == 0 {
		nodes = h.ids
	}
	for _, n := range nodes {
		if h.pos(n) < 0 {
			return nil, fmt.Errorf("simhost: unknown interleave node %d", int(n))
		}
	}
	b := h.takeBuffer(req.Size)
	pages := b.Pages
	share := req.Size / units.Size(len(nodes))
	rem := req.Size - share*units.Size(len(nodes))
	var spill units.Size
	for i, n := range nodes {
		want := share
		if units.Size(i) < rem {
			want++
		}
		p := h.pos(n)
		take := want
		if h.free[p] < take {
			spill += take - h.free[p]
			take = h.free[p]
		}
		if take > 0 {
			h.free[p] -= take
			pages[n] += take
			h.account(p, p, task, true)
		} else {
			h.stats[p].NumaForeign++
		}
	}
	// Spill overflow to the emptiest nodes.
	for spill > 0 {
		p := h.emptiestPosWith(1)
		if p < 0 {
			// Roll back.
			for node, sz := range pages {
				h.free[h.pos(node)] += sz
			}
			h.releaseBuffer(b)
			return nil, fmt.Errorf("simhost: interleave cannot place %v", req.Size)
		}
		take := spill
		if h.free[p] < take {
			take = h.free[p]
		}
		h.free[p] -= take
		pages[h.ids[p]] += take
		h.stats[p].NumaMiss++
		spill -= take
	}
	return b, nil
}

// emptiestPosWith returns the position of the node with the most free
// memory that can hold size, or -1. Ties break toward the lowest node ID
// (ids is ascending), matching the historical map-iteration-free behaviour.
func (h *Host) emptiestPosWith(size units.Size) int32 {
	best := int32(-1)
	var bestFree units.Size = -1
	for p := range h.free {
		if h.free[p] >= size && h.free[p] > bestFree {
			best, bestFree = int32(p), h.free[p]
		}
	}
	return best
}

// account updates numastat counters for a placement decision (positions).
func (h *Host) account(want, got, task int32, interleave bool) {
	if got == want {
		h.stats[got].NumaHit++
		if interleave {
			h.stats[got].InterleaveHit++
		}
	} else {
		h.stats[got].NumaMiss++
		h.stats[want].NumaForeign++
	}
	if got == task {
		h.stats[got].LocalNode++
	} else {
		h.stats[got].OtherNode++
	}
}

// takeBuffer pops a pooled buffer (reusing its Pages map) or builds a fresh
// one. Caller holds h.mu.
func (h *Host) takeBuffer(size units.Size) *Buffer {
	h.nextID++
	if n := len(h.bufPool); n > 0 {
		b := h.bufPool[n-1]
		h.bufPool[n-1] = nil
		h.bufPool = h.bufPool[:n-1]
		clear(b.Pages)
		b.ID = h.nextID
		b.Size = size
		b.freed = false
		return b
	}
	return &Buffer{ID: h.nextID, Size: size, Pages: make(map[topology.NodeID]units.Size, 1)}
}

// releaseBuffer parks a buffer for reuse. Caller holds h.mu.
func (h *Host) releaseBuffer(b *Buffer) {
	b.freed = true
	if len(h.bufPool) < maxPooledBuffers {
		h.bufPool = append(h.bufPool, b)
	}
}

// Free releases a buffer. Freeing twice is an error. The buffer (and its
// Pages map) may be recycled by a later Alloc, so callers must not retain
// references past the Free.
func (h *Host) Free(b *Buffer) error {
	if b == nil {
		return fmt.Errorf("simhost: Free(nil)")
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if b.freed {
		return fmt.Errorf("simhost: double free of buffer %d", b.ID)
	}
	for n, sz := range b.Pages {
		if p := h.pos(n); p >= 0 {
			h.free[p] += sz
		}
	}
	h.releaseBuffer(b)
	return nil
}

// Hardware renders "numactl --hardware"-style output.
func (h *Host) Hardware() string {
	h.mu.Lock()
	ids := h.ids
	out := fmt.Sprintf("available: %d nodes (0-%d)\n", len(ids), int(ids[len(ids)-1]))
	for pos, id := range ids {
		n := h.M.MustNode(id)
		cores := make([]string, 0, n.Cores)
		for c := 0; c < n.Cores; c++ {
			cores = append(cores, fmt.Sprintf("%d", int(id)*n.Cores+c))
		}
		out += fmt.Sprintf("node %d cpus:", int(id))
		for _, c := range cores {
			out += " " + c
		}
		out += "\n"
		out += fmt.Sprintf("node %d size: %d MB\n", int(id), n.Memory/units.MiB)
		out += fmt.Sprintf("node %d free: %d MB\n", int(id), h.free[pos]/units.MiB)
	}
	h.mu.Unlock()

	slit, err := h.M.SLIT()
	if err != nil {
		return out
	}
	out += "node distances:\nnode "
	for _, id := range ids {
		out += fmt.Sprintf("%4d", int(id))
	}
	out += "\n"
	for i, id := range ids {
		out += fmt.Sprintf("%4d:", int(id))
		for j := range ids {
			out += fmt.Sprintf("%4d", slit[i][j])
		}
		out += "\n"
	}
	return out
}
