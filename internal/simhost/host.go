// Package simhost turns a static topology.Machine into a runnable simulated
// host: a NUMA-aware memory allocator with the Linux allocation policies and
// numastat-style counters, deterministic measurement jitter, and a fluid
// transfer executor that advances concurrent transfers through the fabric
// solver until completion.
//
// This package substitutes for the real DL585 G7 testbed (see DESIGN.md):
// programs written against it exercise the same decisions — where threads
// run, where buffers live — that libnuma/numactl control on real hardware.
package simhost

import (
	"fmt"
	"sort"
	"sync"

	"numaio/internal/topology"
	"numaio/internal/units"
)

// Policy is a NUMA memory allocation policy, mirroring Linux mempolicy.
type Policy int

// Policies.
const (
	// PolicyLocalPreferred allocates on the requesting task's node when
	// possible and falls back to the emptiest other node (the Linux 2.6
	// default, Sec. II-B).
	PolicyLocalPreferred Policy = iota
	// PolicyBind allocates strictly on the given node and fails when it
	// is full.
	PolicyBind
	// PolicyPreferred allocates on the given node when possible, falling
	// back like local-preferred.
	PolicyPreferred
	// PolicyInterleave spreads the allocation evenly across the given
	// nodes (or all nodes when none are specified).
	PolicyInterleave
)

func (p Policy) String() string {
	switch p {
	case PolicyLocalPreferred:
		return "local-preferred"
	case PolicyBind:
		return "bind"
	case PolicyPreferred:
		return "preferred"
	case PolicyInterleave:
		return "interleave"
	default:
		return fmt.Sprintf("Policy(%d)", int(p))
	}
}

// NodeStats are numastat-style counters for one node.
type NodeStats struct {
	NumaHit       int64 // allocations that landed on the intended node
	NumaMiss      int64 // allocations placed here though intended elsewhere
	NumaForeign   int64 // allocations intended here but placed elsewhere
	InterleaveHit int64 // interleaved allocations that landed as intended
	LocalNode     int64 // allocations on the requesting task's node
	OtherNode     int64 // allocations on this node for tasks running elsewhere
}

// Buffer is an allocated simulated memory region. Pages records how the
// buffer is spread across nodes (a single entry except for interleaving).
type Buffer struct {
	ID    int
	Size  units.Size
	Pages map[topology.NodeID]units.Size
	freed bool
}

// HomeNode returns the node holding the largest share of the buffer, which
// for non-interleaved buffers is the only node. Ties break toward the
// lowest node ID.
func (b *Buffer) HomeNode() topology.NodeID {
	if len(b.Pages) == 1 {
		for n := range b.Pages {
			return n
		}
	}
	var best topology.NodeID
	var bestSize units.Size = -1
	ids := make([]topology.NodeID, 0, len(b.Pages))
	for n := range b.Pages {
		ids = append(ids, n)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, n := range ids {
		if b.Pages[n] > bestSize {
			best, bestSize = n, b.Pages[n]
		}
	}
	return best
}

// DefaultOSReservation is the memory the OS pins on node 0 at boot. The
// paper observes ~2.5 GB in use on node 0 of an otherwise idle 4 GB/node
// host ("numactl --hardware" shows 1.5 GB free, Sec. IV-A).
const DefaultOSReservation = units.Size(2.5 * float64(units.GiB))

// Host is a runnable simulated NUMA host.
type Host struct {
	M *topology.Machine

	mu     sync.Mutex
	free   map[topology.NodeID]units.Size
	stats  map[topology.NodeID]*NodeStats
	nextID int
}

// Option configures a Host.
type Option func(*hostConfig)

type hostConfig struct {
	osReservation units.Size
}

// WithOSReservation overrides the boot-time OS memory reserved on node 0.
func WithOSReservation(s units.Size) Option {
	return func(c *hostConfig) { c.osReservation = s }
}

// NewHost validates the machine and boots a host on it.
func NewHost(m *topology.Machine, opts ...Option) (*Host, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	cfg := hostConfig{osReservation: DefaultOSReservation}
	for _, o := range opts {
		o(&cfg)
	}
	h := &Host{
		M:     m,
		free:  make(map[topology.NodeID]units.Size),
		stats: make(map[topology.NodeID]*NodeStats),
	}
	for _, n := range m.Nodes {
		h.free[n.ID] = n.Memory
		h.stats[n.ID] = &NodeStats{}
	}
	// The OS boots on node 0 (or the lowest node).
	ids := m.NodeIDs()
	boot := ids[0]
	res := cfg.osReservation
	if res > h.free[boot] {
		res = h.free[boot]
	}
	h.free[boot] -= res
	return h, nil
}

// FreeMem returns the free memory on a node.
func (h *Host) FreeMem(n topology.NodeID) units.Size {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.free[n]
}

// Stats returns a copy of a node's numastat counters.
func (h *Host) Stats(n topology.NodeID) NodeStats {
	h.mu.Lock()
	defer h.mu.Unlock()
	if s, ok := h.stats[n]; ok {
		return *s
	}
	return NodeStats{}
}

// AllocRequest describes an allocation.
type AllocRequest struct {
	Size   units.Size
	Policy Policy
	// Target is the bind/preferred node (ignored for local-preferred and
	// interleave).
	Target topology.NodeID
	// TaskNode is the node the requesting task runs on.
	TaskNode topology.NodeID
	// InterleaveNodes restricts interleaving; empty means all nodes.
	InterleaveNodes []topology.NodeID
}

// Alloc allocates a simulated buffer under the given policy.
func (h *Host) Alloc(req AllocRequest) (*Buffer, error) {
	if req.Size <= 0 {
		return nil, fmt.Errorf("simhost: nonpositive allocation size %v", req.Size)
	}
	h.mu.Lock()
	defer h.mu.Unlock()

	if _, ok := h.free[req.TaskNode]; !ok {
		return nil, fmt.Errorf("simhost: unknown task node %d", int(req.TaskNode))
	}

	switch req.Policy {
	case PolicyBind:
		return h.allocOn(req.Target, req, true)
	case PolicyPreferred:
		return h.allocOn(req.Target, req, false)
	case PolicyLocalPreferred:
		return h.allocOn(req.TaskNode, req, false)
	case PolicyInterleave:
		return h.allocInterleaved(req)
	default:
		return nil, fmt.Errorf("simhost: unknown policy %v", req.Policy)
	}
}

// allocOn places the buffer on node want, falling back to the emptiest node
// unless strict.
func (h *Host) allocOn(want topology.NodeID, req AllocRequest, strict bool) (*Buffer, error) {
	if _, ok := h.free[want]; !ok {
		return nil, fmt.Errorf("simhost: unknown node %d", int(want))
	}
	got := want
	if h.free[want] < req.Size {
		if strict {
			return nil, fmt.Errorf("simhost: node %d has %v free, need %v",
				int(want), h.free[want], req.Size)
		}
		got = h.emptiestNodeWith(req.Size)
		if got < 0 {
			return nil, fmt.Errorf("simhost: no node can hold %v", req.Size)
		}
	}
	h.free[got] -= req.Size
	h.account(want, got, req.TaskNode, false)
	return h.newBuffer(req.Size, map[topology.NodeID]units.Size{got: req.Size}), nil
}

func (h *Host) allocInterleaved(req AllocRequest) (*Buffer, error) {
	nodes := req.InterleaveNodes
	if len(nodes) == 0 {
		nodes = h.M.NodeIDs()
	}
	for _, n := range nodes {
		if _, ok := h.free[n]; !ok {
			return nil, fmt.Errorf("simhost: unknown interleave node %d", int(n))
		}
	}
	pages := make(map[topology.NodeID]units.Size)
	share := req.Size / units.Size(len(nodes))
	rem := req.Size - share*units.Size(len(nodes))
	type need struct {
		node topology.NodeID
		want units.Size
	}
	var needs []need
	for i, n := range nodes {
		w := share
		if units.Size(i) < rem {
			w++
		}
		needs = append(needs, need{n, w})
	}
	var spill units.Size
	for _, nd := range needs {
		take := nd.want
		if h.free[nd.node] < take {
			spill += take - h.free[nd.node]
			take = h.free[nd.node]
		}
		if take > 0 {
			h.free[nd.node] -= take
			pages[nd.node] += take
			h.account(nd.node, nd.node, req.TaskNode, true)
		} else {
			h.stats[nd.node].NumaForeign++
		}
	}
	// Spill overflow to the emptiest nodes.
	for spill > 0 {
		n := h.emptiestNodeWith(1)
		if n < 0 {
			// Roll back.
			for node, sz := range pages {
				h.free[node] += sz
			}
			return nil, fmt.Errorf("simhost: interleave cannot place %v", req.Size)
		}
		take := spill
		if h.free[n] < take {
			take = h.free[n]
		}
		h.free[n] -= take
		pages[n] += take
		h.stats[n].NumaMiss++
		spill -= take
	}
	return h.newBuffer(req.Size, pages), nil
}

func (h *Host) emptiestNodeWith(size units.Size) topology.NodeID {
	best := topology.NodeID(-1)
	var bestFree units.Size = -1
	for _, n := range h.M.NodeIDs() {
		if h.free[n] >= size && h.free[n] > bestFree {
			best, bestFree = n, h.free[n]
		}
	}
	return best
}

// account updates numastat counters for a placement decision.
func (h *Host) account(want, got, task topology.NodeID, interleave bool) {
	if got == want {
		h.stats[got].NumaHit++
		if interleave {
			h.stats[got].InterleaveHit++
		}
	} else {
		h.stats[got].NumaMiss++
		h.stats[want].NumaForeign++
	}
	if got == task {
		h.stats[got].LocalNode++
	} else {
		h.stats[got].OtherNode++
	}
}

func (h *Host) newBuffer(size units.Size, pages map[topology.NodeID]units.Size) *Buffer {
	h.nextID++
	return &Buffer{ID: h.nextID, Size: size, Pages: pages}
}

// Free releases a buffer. Freeing twice is an error.
func (h *Host) Free(b *Buffer) error {
	if b == nil {
		return fmt.Errorf("simhost: Free(nil)")
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if b.freed {
		return fmt.Errorf("simhost: double free of buffer %d", b.ID)
	}
	for n, sz := range b.Pages {
		h.free[n] += sz
	}
	b.freed = true
	return nil
}

// Hardware renders "numactl --hardware"-style output.
func (h *Host) Hardware() string {
	h.mu.Lock()
	ids := h.M.NodeIDs()
	out := fmt.Sprintf("available: %d nodes (0-%d)\n", len(ids), int(ids[len(ids)-1]))
	for _, id := range ids {
		n := h.M.MustNode(id)
		cores := make([]string, 0, n.Cores)
		for c := 0; c < n.Cores; c++ {
			cores = append(cores, fmt.Sprintf("%d", int(id)*n.Cores+c))
		}
		out += fmt.Sprintf("node %d cpus:", int(id))
		for _, c := range cores {
			out += " " + c
		}
		out += "\n"
		out += fmt.Sprintf("node %d size: %d MB\n", int(id), n.Memory/units.MiB)
		out += fmt.Sprintf("node %d free: %d MB\n", int(id), h.free[id]/units.MiB)
	}
	h.mu.Unlock()

	slit, err := h.M.SLIT()
	if err != nil {
		return out
	}
	out += "node distances:\nnode "
	for _, id := range ids {
		out += fmt.Sprintf("%4d", int(id))
	}
	out += "\n"
	for i, id := range ids {
		out += fmt.Sprintf("%4d:", int(id))
		for j := range ids {
			out += fmt.Sprintf("%4d", slit[i][j])
		}
		out += "\n"
	}
	return out
}
