package cli

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"numaio/internal/report"
	"numaio/internal/telemetry"
)

// TraceFlags is the shared observability flag pair every measuring tool
// carries: -trace <file> records the run as Chrome trace-event JSON
// (chrome://tracing / Perfetto), -stage-report prints a per-stage time
// breakdown after the run. Either flag turns the tracer on; with neither,
// Tracer() stays nil and instrumentation is a no-op.
type TraceFlags struct {
	path        *string
	stageReport *bool
	tr          *telemetry.Tracer
}

// NewTraceFlags registers -trace and -stage-report on fs.
func NewTraceFlags(fs *flag.FlagSet) *TraceFlags {
	t := &TraceFlags{}
	t.path = fs.String("trace", "", "write the run as Chrome trace-event JSON to this file")
	t.stageReport = fs.Bool("stage-report", false, "print a per-stage time breakdown after the run")
	return t
}

// Tracer returns the tracer the run should record onto — nil (a no-op)
// unless -trace or -stage-report was given. Call after Parse.
func (t *TraceFlags) Tracer() *telemetry.Tracer {
	if t.tr == nil && (*t.path != "" || *t.stageReport) {
		t.tr = telemetry.NewTracer()
	}
	return t.tr
}

// Finish writes the trace file and prints the stage report, as requested.
// A no-op when neither flag was given.
func (t *TraceFlags) Finish(out io.Writer) error {
	if t.tr == nil {
		return nil
	}
	if *t.path != "" {
		f, err := os.Create(*t.path)
		if err != nil {
			return err
		}
		if err := t.tr.WriteJSON(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(out, "trace: %d events written to %s\n", t.tr.Len(), *t.path)
	}
	if *t.stageReport {
		wall := t.tr.WallTime()
		tbl := report.NewTable(
			fmt.Sprintf("per-stage time breakdown (wall %v)", wall.Round(time.Microsecond)),
			"stage", "spans", "total", "share of wall")
		for _, row := range t.tr.StageReport() {
			share := "-"
			if wall > 0 {
				share = fmt.Sprintf("%.1f%%", 100*row.Total.Seconds()/wall.Seconds())
			}
			tbl.AddRow(row.Stage, fmt.Sprintf("%d", row.Spans),
				row.Total.Round(time.Microsecond).String(), share)
		}
		if _, err := fmt.Fprint(out, tbl.Render()); err != nil {
			return err
		}
	}
	return nil
}
