// Package cli holds small helpers shared by the command-line tools.
package cli

import (
	"io"
	"os"

	"numaio/internal/topology"
)

// Machine resolves the -machine flag: a canned profile name, or a path to
// a machine JSON file (anything ending in .json, see topology.DecodeJSON).
func Machine(nameOrPath string) (*topology.Machine, error) {
	return topology.LoadMachine(nameOrPath, func(p string) (io.ReadCloser, error) {
		return os.Open(p)
	})
}
