// Package cli holds small helpers shared by the command-line tools: machine
// resolution for the -machine flag (also reused by the numaiod server for
// request bodies) and the exit-code contract every binary follows.
package cli

import (
	"bytes"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"

	"numaio/internal/topology"
)

// Machine resolves the -machine flag: a canned profile name, or a path to
// a machine JSON file (anything ending in .json, see topology.DecodeJSON).
func Machine(nameOrPath string) (*topology.Machine, error) {
	return topology.LoadMachine(nameOrPath, func(p string) (io.ReadCloser, error) {
		return os.Open(p)
	})
}

// ResolveMachine resolves a machine from a JSON value that is either a
// string (profile name or .json path, like the -machine flag) or an inline
// machine object (the topology.EncodeJSON format). It is the resolution
// the numaiod request bodies share with the command-line tools.
func ResolveMachine(raw json.RawMessage) (*topology.Machine, error) {
	if len(raw) == 0 {
		return Machine("")
	}
	var name string
	if err := json.Unmarshal(raw, &name); err == nil {
		return Machine(name)
	}
	m, err := topology.DecodeJSON(bytes.NewReader(raw))
	if err != nil {
		return nil, fmt.Errorf("cli: machine must be a profile name or an inline machine object: %w", err)
	}
	return m, nil
}

// Exit-code contract for the cmd/* binaries:
//
//	0 — success (including -h / -help)
//	1 — runtime failure (bad input data, I/O error, model error)
//	2 — usage error (unparseable flags, missing or contradictory arguments)
//
// run() functions wrap usage problems with Usage/Usagef; main() funnels the
// returned error through Main, which prints to stderr and picks the code.

// usageError marks an error as a command-line usage problem.
type usageError struct{ err error }

func (u *usageError) Error() string { return u.err.Error() }
func (u *usageError) Unwrap() error { return u.err }

// Usage marks err as a usage error (exit code 2). A nil err stays nil.
func Usage(err error) error {
	if err == nil {
		return nil
	}
	return &usageError{err: err}
}

// Usagef builds a usage error (exit code 2) from a format string.
func Usagef(format string, args ...any) error {
	return &usageError{err: fmt.Errorf(format, args...)}
}

// IsUsage reports whether err is marked as a usage error. Flag-parse
// failures count as usage errors even when not explicitly wrapped.
func IsUsage(err error) bool {
	var u *usageError
	return errors.As(err, &u)
}

// ExitCode maps an error returned by a tool's run() to its process exit
// code under the contract above.
func ExitCode(err error) int {
	switch {
	case err == nil, errors.Is(err, flag.ErrHelp):
		return 0
	case IsUsage(err):
		return 2
	default:
		return 1
	}
}

// Main finalises a tool invocation: prints the error (if any, and unless it
// is the help pseudo-error, which flag already printed) prefixed with the
// tool name to stderr, and returns the exit code for os.Exit.
func Main(tool string, err error) int {
	if err != nil && !errors.Is(err, flag.ErrHelp) {
		fmt.Fprintf(os.Stderr, "%s: %v\n", tool, err)
	}
	return ExitCode(err)
}

// Parse runs fs.Parse and marks any failure as a usage error (-h/-help
// passes through as flag.ErrHelp, which ExitCode maps to 0).
func Parse(fs *flag.FlagSet, args []string) error {
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return err
		}
		return Usage(err)
	}
	return nil
}
