package blocksim

import (
	"math"
	"testing"

	"numaio/internal/fabric"
	"numaio/internal/simhost"
	"numaio/internal/topology"
	"numaio/internal/units"
)

func gbps(b units.Bandwidth) float64 { return b.Gbps() }

func TestSingleFlowSaturatesBottleneck(t *testing.T) {
	res := []fabric.Resource{
		{ID: "a", Capacity: 40 * units.Gbps},
		{ID: "b", Capacity: 10 * units.Gbps},
	}
	out, err := Run(res, []Transfer{{
		ID: "f", Bytes: 256 * units.MiB,
		Stages: []Stage{{Resource: "a", Weight: 1}, {Resource: "b", Weight: 1}},
	}}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	got := gbps(out["f"].Throughput)
	// The pipeline saturates the 10 Gb/s stage (within pipeline fill/drain
	// effects on a short transfer).
	if math.Abs(got-10) > 1 {
		t.Errorf("throughput = %.2f, want ~10", got)
	}
	if len(out["f"].Latencies) != 2048 { // 256 MiB / 128 KiB
		t.Errorf("blocks = %d", len(out["f"].Latencies))
	}
}

func TestEqualFlowsShare(t *testing.T) {
	res := []fabric.Resource{{ID: "l", Capacity: 20 * units.Gbps}}
	tr := func(id string) Transfer {
		return Transfer{ID: id, Bytes: 128 * units.MiB,
			Stages: []Stage{{Resource: "l", Weight: 1}}}
	}
	out, err := Run(res, []Transfer{tr("a"), tr("b")}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	a, b := gbps(out["a"].Throughput), gbps(out["b"].Throughput)
	if math.Abs(a-b) > 0.5 {
		t.Errorf("unequal shares: %.2f vs %.2f", a, b)
	}
	if math.Abs(a-10) > 1 {
		t.Errorf("share = %.2f, want ~10", a)
	}
}

// Cross-validation: blocksim and the fluid model agree on a contended fio-
// like scenario (two flows over the DL585G7 fabric toward node 7).
func TestAgreesWithFluidModel(t *testing.T) {
	m := topology.DL585G7()
	resources := fabric.MachineResources(m)

	usagesOf := func(src topology.NodeID) []fabric.Usage {
		u, err := fabric.CopyFlowUsages(m, src, 7)
		if err != nil {
			t.Fatal(err)
		}
		return u
	}

	fluid, err := simhost.RunFluid(resources, []simhost.Transfer{
		{ID: "a", Bytes: 256 * units.MiB, Usages: usagesOf(0)},
		{ID: "b", Bytes: 256 * units.MiB, Usages: usagesOf(1)},
	})
	if err != nil {
		t.Fatal(err)
	}

	des, err := Run(resources, []Transfer{
		{ID: "a", Bytes: 256 * units.MiB, Stages: FromUsages(usagesOf(0)), Window: 8},
		{ID: "b", Bytes: 256 * units.MiB, Stages: FromUsages(usagesOf(1)), Window: 8},
	}, Config{})
	if err != nil {
		t.Fatal(err)
	}

	for _, id := range []string{"a", "b"} {
		fluidRate := float64(fluid.Transfers[id].InitialRate)
		desRate := float64(des[id].Throughput)
		if rel := math.Abs(fluidRate-desRate) / fluidRate; rel > 0.15 {
			t.Errorf("%s: fluid %.2f vs blocksim %.2f Gb/s (off %.0f%%)",
				id, fluidRate/1e9, desRate/1e9, rel*100)
		}
	}
}

// Block latency percentiles: ordered, and wider under contention —
// validating the shape assumed by fio.LatencyStats.
func TestLatencyDistribution(t *testing.T) {
	res := []fabric.Resource{{ID: "l", Capacity: 10 * units.Gbps}}
	single, err := Run(res, []Transfer{{
		ID: "s", Bytes: 64 * units.MiB, Stages: []Stage{{Resource: "l", Weight: 1}},
		Window: 1,
	}}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	sres := single["s"]
	p50, p99 := sres.LatencyPercentile(0.5), sres.LatencyPercentile(0.99)
	if p50 > p99 {
		t.Errorf("p50 %v > p99 %v", p50, p99)
	}
	// Uncontended window-1 blocks all take the same time: bs/cap.
	want := (128 * units.KiB).Bits() / 10e9
	if math.Abs(p50.Seconds()-want) > 0.01*want {
		t.Errorf("p50 = %v, want %v", p50.Seconds(), want)
	}

	contended, err := Run(res, []Transfer{
		{ID: "a", Bytes: 64 * units.MiB, Stages: []Stage{{Resource: "l", Weight: 1}}, Window: 1},
		{ID: "b", Bytes: 64 * units.MiB, Stages: []Stage{{Resource: "l", Weight: 1}}, Window: 1},
	}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	cp50 := contended["a"].LatencyPercentile(0.5)
	if !(cp50 > p50) {
		t.Errorf("contended p50 %v should exceed solo p50 %v", cp50, p50)
	}
}

func TestWeightedStageSlowsBlock(t *testing.T) {
	res := []fabric.Resource{{ID: "m", Capacity: 10 * units.Gbps}}
	out, err := Run(res, []Transfer{{
		ID: "local", Bytes: 64 * units.MiB,
		Stages: []Stage{{Resource: "m", Weight: 2}}, // local copy: double charge
		Window: 1,
	}}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if got := gbps(out["local"].Throughput); math.Abs(got-5) > 0.2 {
		t.Errorf("double-weighted throughput = %.2f, want ~5", got)
	}
}

func TestFromUsagesMergesDuplicates(t *testing.T) {
	stages := FromUsages([]fabric.Usage{
		{Resource: "m", Weight: 1},
		{Resource: "l", Weight: 1},
		{Resource: "m", Weight: 1},
	})
	if len(stages) != 2 {
		t.Fatalf("stages = %+v", stages)
	}
	if stages[0].Resource != "m" || stages[0].Weight != 2 {
		t.Errorf("merged stage = %+v", stages[0])
	}
}

func TestRunValidation(t *testing.T) {
	res := []fabric.Resource{{ID: "l", Capacity: units.Gbps}}
	ok := []Stage{{Resource: "l", Weight: 1}}
	if _, err := Run([]fabric.Resource{{ID: "x", Capacity: 0}}, nil, Config{}); err == nil {
		t.Error("bad resource should fail")
	}
	if _, err := Run(res, []Transfer{{ID: "t", Bytes: 0, Stages: ok}}, Config{}); err == nil {
		t.Error("zero size should fail")
	}
	if _, err := Run(res, []Transfer{{ID: "t", Bytes: units.MiB}}, Config{}); err == nil {
		t.Error("no stages should fail")
	}
	if _, err := Run(res, []Transfer{
		{ID: "t", Bytes: units.MiB, Stages: ok},
		{ID: "t", Bytes: units.MiB, Stages: ok},
	}, Config{}); err == nil {
		t.Error("duplicate IDs should fail")
	}
	if _, err := Run(res, []Transfer{{ID: "t", Bytes: units.MiB,
		Stages: []Stage{{Resource: "ghost", Weight: 1}}}}, Config{}); err == nil {
		t.Error("unknown resource should fail")
	}
	if _, err := Run(res, []Transfer{{ID: "t", Bytes: units.MiB,
		Stages: []Stage{{Resource: "l", Weight: 0}}}}, Config{}); err == nil {
		t.Error("zero weight should fail")
	}
	if _, err := Run(res, []Transfer{{ID: "t", Bytes: units.GiB, Stages: ok}},
		Config{MaxEvents: 10}); err == nil {
		t.Error("event budget should trip")
	}
	if (&Result{}).LatencyPercentile(0.5) != 0 {
		t.Error("empty result percentile should be 0")
	}
}

// A weighted shared server (the DMA-engine abstraction): FIFO service with
// per-class block costs yields equal byte rates per flow and the harmonic
// aggregate — the same behaviour the fluid solver produces for Eq. 1.
func TestWeightedServerHarmonicAggregate(t *testing.T) {
	res := []fabric.Resource{{ID: "eng", Capacity: 22 * units.Gbps}}
	out, err := Run(res, []Transfer{
		{ID: "fast", Bytes: 64 * units.MiB,
			Stages: []Stage{{Resource: "eng", Weight: 1.0}}},
		{ID: "slow", Bytes: 64 * units.MiB,
			Stages: []Stage{{Resource: "eng", Weight: 22.0 / 18.0}}},
	}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	fast, slow := out["fast"].Throughput.Gbps(), out["slow"].Throughput.Gbps()
	// While both run, bytes alternate fairly; the fast flow finishes its
	// bytes first only because the slow one's blocks cost more time.
	agg := 2 / (1/22.0 + 1/18.0) // harmonic aggregate of the two class rates
	perFlow := agg / 2
	if math.Abs(slow-perFlow) > 0.6 {
		t.Errorf("slow flow = %.2f, want ~%.2f", slow, perFlow)
	}
	if !(fast >= slow) {
		t.Errorf("fast (%.2f) should finish no slower than slow (%.2f)", fast, slow)
	}
}
