// Package blocksim is a discrete-event, block-granular simulator used to
// cross-validate the analytic fluid model (internal/simhost) and the
// latency approximation (internal/fio): transfers split into blocks that
// traverse their resources as a pipeline of FIFO servers (store-and-forward
// queueing), with a bounded number of outstanding blocks per transfer (the
// I/O queue depth). Steady throughputs must agree with the fluid
// allocation; per-block sojourn times give an empirical latency
// distribution.
//
// The fluid model answers "what rate does each transfer get"; blocksim
// answers "and does a block-by-block execution actually behave that way".
package blocksim

import (
	"container/heap"
	"fmt"
	"math"
	"sort"

	"numaio/internal/fabric"
	"numaio/internal/units"
)

// Stage is one service station of a transfer's pipeline.
type Stage struct {
	Resource fabric.ResourceID
	// Weight scales the block's service demand on this resource (same
	// semantics as fabric.Usage.Weight).
	Weight float64
}

// Transfer is a block stream to simulate.
type Transfer struct {
	ID     string
	Bytes  units.Size
	Stages []Stage
	// Window bounds outstanding blocks (queue depth); 0 means 4.
	Window int
}

// Result reports one transfer's outcome.
type Result struct {
	ID         string
	Bytes      units.Size
	Duration   units.Duration
	Throughput units.Bandwidth
	// Latencies are the sojourn times of every block, issue to completion,
	// in completion order.
	Latencies []units.Duration
}

// LatencyPercentile returns the p-quantile (0..1) of the block latencies.
func (r *Result) LatencyPercentile(p float64) units.Duration {
	if len(r.Latencies) == 0 {
		return 0
	}
	sorted := append([]units.Duration(nil), r.Latencies...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	idx := int(p * float64(len(sorted)-1))
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// Config tunes a simulation run.
type Config struct {
	// BlockSize is the unit of transfer; 0 means 128 KiB.
	BlockSize units.Size
	// MaxEvents bounds the event loop as a runaway guard; 0 means 10M.
	MaxEvents int
}

// block is one in-flight unit of work.
type block struct {
	ts       *transferState
	issuedAt float64
	stage    int
}

type transferState struct {
	def       Transfer
	remaining int64 // blocks not yet issued
	inFlight  int
	result    *Result
}

// server is a FIFO service station.
type server struct {
	cap   float64 // bits per second
	queue []*block
	busy  bool
}

// event is a service completion.
type event struct {
	at  float64
	seq int64
	res fabric.ResourceID
	b   *block
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() any     { old := *h; n := len(old); e := old[n-1]; *h = old[:n-1]; return e }

// Run simulates the transfers to completion over the given resources.
func Run(resources []fabric.Resource, transfers []Transfer, cfg Config) (map[string]*Result, error) {
	if cfg.BlockSize <= 0 {
		cfg.BlockSize = 128 * units.KiB
	}
	if cfg.MaxEvents <= 0 {
		cfg.MaxEvents = 10_000_000
	}
	servers := make(map[fabric.ResourceID]*server)
	for _, r := range resources {
		if r.Capacity <= 0 {
			return nil, fmt.Errorf("blocksim: resource %q: nonpositive capacity", r.ID)
		}
		servers[r.ID] = &server{cap: float64(r.Capacity)}
	}

	states := make([]*transferState, 0, len(transfers))
	results := make(map[string]*Result, len(transfers))
	for _, tr := range transfers {
		if tr.Bytes <= 0 {
			return nil, fmt.Errorf("blocksim: transfer %q: nonpositive size", tr.ID)
		}
		if len(tr.Stages) == 0 {
			return nil, fmt.Errorf("blocksim: transfer %q: no stages", tr.ID)
		}
		if _, dup := results[tr.ID]; dup {
			return nil, fmt.Errorf("blocksim: duplicate transfer %q", tr.ID)
		}
		for _, st := range tr.Stages {
			if _, ok := servers[st.Resource]; !ok {
				return nil, fmt.Errorf("blocksim: transfer %q: unknown resource %q", tr.ID, st.Resource)
			}
			if st.Weight <= 0 {
				return nil, fmt.Errorf("blocksim: transfer %q: nonpositive weight", tr.ID)
			}
		}
		if tr.Window <= 0 {
			tr.Window = 4
		}
		nblocks := int64(math.Ceil(float64(tr.Bytes) / float64(cfg.BlockSize)))
		st := &transferState{
			def:       tr,
			remaining: nblocks,
			result:    &Result{ID: tr.ID, Bytes: tr.Bytes},
		}
		states = append(states, st)
		results[tr.ID] = st.result
	}

	blockBits := cfg.BlockSize.Bits()
	var evts eventHeap
	var seq int64
	now := 0.0

	// startService begins serving b at its current stage if the server is
	// idle, otherwise enqueues it.
	startService := func(b *block) {
		st := b.ts.def.Stages[b.stage]
		srv := servers[st.Resource]
		if srv.busy {
			srv.queue = append(srv.queue, b)
			return
		}
		srv.busy = true
		seq++
		heap.Push(&evts, event{
			at:  now + blockBits*st.Weight/srv.cap,
			seq: seq, res: st.Resource, b: b,
		})
	}

	issue := func(ts *transferState) {
		for ts.remaining > 0 && ts.inFlight < ts.def.Window {
			ts.remaining--
			ts.inFlight++
			b := &block{ts: ts, issuedAt: now, stage: 0}
			startService(b)
		}
	}
	for _, ts := range states {
		issue(ts)
	}

	for events := 0; evts.Len() > 0; events++ {
		if events > cfg.MaxEvents {
			return nil, fmt.Errorf("blocksim: event budget exhausted (%d)", cfg.MaxEvents)
		}
		e := heap.Pop(&evts).(event)
		now = e.at
		srv := servers[e.res]

		// Start the next queued block on this server.
		srv.busy = false
		if len(srv.queue) > 0 {
			nb := srv.queue[0]
			srv.queue = srv.queue[1:]
			startService(nb)
		}

		// Move the finished block along its pipeline.
		b := e.b
		b.stage++
		if b.stage < len(b.ts.def.Stages) {
			startService(b)
			continue
		}
		ts := b.ts
		ts.inFlight--
		ts.result.Latencies = append(ts.result.Latencies, units.Duration(now-b.issuedAt))
		if ts.remaining > 0 {
			issue(ts)
		} else if ts.inFlight == 0 {
			ts.result.Duration = units.Duration(now)
			ts.result.Throughput = units.Rate(ts.result.Bytes, ts.result.Duration)
		}
	}
	return results, nil
}

// FromUsages converts a fabric usage list into pipeline stages, preserving
// order and merging repeated resources by summing weights (a local copy's
// double controller charge becomes one heavier stage).
func FromUsages(usages []fabric.Usage) []Stage {
	idx := make(map[fabric.ResourceID]int)
	var out []Stage
	for _, u := range usages {
		if i, ok := idx[u.Resource]; ok {
			out[i].Weight += u.Weight
			continue
		}
		idx[u.Resource] = len(out)
		out = append(out, Stage{Resource: u.Resource, Weight: u.Weight})
	}
	return out
}
