// Package workload composes the paper's motivating application: bulk data
// movers on a multi-user NUMA host. A mover task reads from the PCIe SSDs
// and simultaneously ships the data out through the NIC, so its steady
// throughput is capped by the weaker of its two I/O legs — and the two legs
// follow *different* performance models (device read vs device write),
// which is why placement needs both halves of the characterization.
package workload

import (
	"fmt"
	"sort"

	"numaio/internal/device"
	"numaio/internal/fio"
	"numaio/internal/numa"
	"numaio/internal/sched"
	"numaio/internal/topology"
	"numaio/internal/units"
)

// Spec describes a data-mover fleet.
type Spec struct {
	// Movers is the number of concurrent mover tasks.
	Movers int
	// SizePerStage is the bytes each task moves per leg; 0 means 4 GiB.
	SizePerStage units.Size
	// ReadEngine ingests data (default ssd_read).
	ReadEngine string
	// SendEngine ships data out (default tcp_send).
	SendEngine string
}

func (s Spec) withDefaults() Spec {
	if s.SizePerStage == 0 {
		s.SizePerStage = 4 * units.GiB
	}
	if s.ReadEngine == "" {
		s.ReadEngine = device.EngineSSDRead
	}
	if s.SendEngine == "" {
		s.SendEngine = device.EngineTCPSend
	}
	return s
}

func (s Spec) validate() error {
	if s.Movers <= 0 {
		return fmt.Errorf("workload: movers must be positive")
	}
	return nil
}

// Result reports a data-mover run.
type Result struct {
	ReadAggregate units.Bandwidth
	SendAggregate units.Bandwidth
	// Throughput is the pipeline's steady rate: the weaker leg.
	Throughput units.Bandwidth
	Report     *fio.Report
}

// Run executes the fleet with the given placement (one mover per entry):
// both legs of every mover run concurrently on the fabric, so they contend
// for the same links, controllers and cores.
func Run(sys *numa.System, spec Spec, placement []topology.NodeID) (*Result, error) {
	if err := spec.validate(); err != nil {
		return nil, err
	}
	spec = spec.withDefaults()
	if len(placement) != spec.Movers {
		return nil, fmt.Errorf("workload: placement has %d entries for %d movers",
			len(placement), spec.Movers)
	}

	counts := make(map[topology.NodeID]int)
	for _, n := range placement {
		counts[n]++
	}
	nodes := make([]topology.NodeID, 0, len(counts))
	for n := range counts {
		nodes = append(nodes, n)
	}
	sort.Slice(nodes, func(i, j int) bool { return nodes[i] < nodes[j] })

	var jobs []fio.Job
	for _, n := range nodes {
		jobs = append(jobs,
			fio.Job{
				Name: fmt.Sprintf("read-n%d", int(n)), Engine: spec.ReadEngine,
				Node: n, NumJobs: counts[n], Size: spec.SizePerStage,
			},
			fio.Job{
				Name: fmt.Sprintf("send-n%d", int(n)), Engine: spec.SendEngine,
				Node: n, NumJobs: counts[n], Size: spec.SizePerStage,
			},
		)
	}
	runner := fio.NewRunner(sys)
	runner.Sigma = 0
	rep, err := runner.Run(jobs)
	if err != nil {
		return nil, err
	}

	out := &Result{Report: rep}
	for name, bw := range rep.PerJob {
		if len(name) >= 4 && name[:4] == "read" {
			out.ReadAggregate += bw
		} else {
			out.SendAggregate += bw
		}
	}
	out.Throughput = out.ReadAggregate
	if out.SendAggregate < out.Throughput {
		out.Throughput = out.SendAggregate
	}
	return out, nil
}

// Placement derives a mover placement from both directional models: a node
// qualifies only when it is in the eligible (top-equivalent-class) set of
// BOTH legs, because a mover is throttled by its weaker leg. Movers spread
// round-robin over the qualified nodes; if the intersection is empty the
// scheduler's class-balanced placement for the send leg is used as a
// fallback.
func Placement(s *sched.Scheduler, spec Spec, count int) ([]topology.NodeID, error) {
	if count <= 0 {
		return nil, fmt.Errorf("workload: count must be positive")
	}
	spec = spec.withDefaults()
	readNodes, err := s.EligibleNodes(spec.ReadEngine)
	if err != nil {
		return nil, err
	}
	sendNodes, err := s.EligibleNodes(spec.SendEngine)
	if err != nil {
		return nil, err
	}
	inSend := make(map[topology.NodeID]bool, len(sendNodes))
	for _, n := range sendNodes {
		inSend[n] = true
	}
	var both []topology.NodeID
	for _, n := range readNodes {
		if inSend[n] {
			both = append(both, n)
		}
	}
	if len(both) == 0 {
		return s.Place(spec.SendEngine, count, sched.ClassBalanced)
	}
	out := make([]topology.NodeID, count)
	for i := range out {
		out[i] = both[i%len(both)]
	}
	return out, nil
}

// Compare runs the fleet under the naive all-local placement and under the
// model-driven Placement, returning both results.
func Compare(sys *numa.System, s *sched.Scheduler, spec Spec) (local, modelDriven *Result, err error) {
	if err := spec.validate(); err != nil {
		return nil, nil, err
	}
	localPlace := make([]topology.NodeID, spec.Movers)
	for i := range localPlace {
		localPlace[i] = s.Target()
	}
	local, err = Run(sys, spec, localPlace)
	if err != nil {
		return nil, nil, err
	}
	place, err := Placement(s, spec, spec.Movers)
	if err != nil {
		return nil, nil, err
	}
	modelDriven, err = Run(sys, spec, place)
	if err != nil {
		return nil, nil, err
	}
	return local, modelDriven, nil
}
