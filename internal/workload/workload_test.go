package workload

import (
	"testing"

	"numaio/internal/core"
	"numaio/internal/device"
	"numaio/internal/numa"
	"numaio/internal/sched"
	"numaio/internal/topology"
	"numaio/internal/units"
)

func newEnv(t *testing.T) (*numa.System, *sched.Scheduler) {
	t.Helper()
	sys, err := numa.NewSystem(topology.DL585G7())
	if err != nil {
		t.Fatal(err)
	}
	c, err := core.NewCharacterizer(sys, core.Config{Sigma: -1, Repeats: 1, BytesPerThread: units.GiB})
	if err != nil {
		t.Fatal(err)
	}
	write, err := c.Characterize(7, core.ModeWrite)
	if err != nil {
		t.Fatal(err)
	}
	read, err := c.Characterize(7, core.ModeRead)
	if err != nil {
		t.Fatal(err)
	}
	s, err := sched.New(sys, write, read)
	if err != nil {
		t.Fatal(err)
	}
	return sys, s
}

func TestSpecValidation(t *testing.T) {
	sys, s := newEnv(t)
	if _, err := Run(sys, Spec{Movers: 0}, nil); err == nil {
		t.Error("zero movers should fail")
	}
	if _, err := Run(sys, Spec{Movers: 2}, []topology.NodeID{7}); err == nil {
		t.Error("placement length mismatch should fail")
	}
	if _, err := Placement(s, Spec{}, 0); err == nil {
		t.Error("zero count should fail")
	}
	if _, _, err := Compare(sys, s, Spec{Movers: 0}); err == nil {
		t.Error("invalid spec should fail in Compare")
	}
	if _, err := Run(sys, Spec{Movers: 1, ReadEngine: "warp"}, []topology.NodeID{7}); err == nil {
		t.Error("unknown engine should fail")
	}
}

// The qualified set is the intersection of both legs' eligible nodes: it
// must exclude the send-starved nodes {2,3} and the read-starved node {4}.
func TestPlacementIntersectsModels(t *testing.T) {
	_, s := newEnv(t)
	place, err := Placement(s, Spec{}, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(place) != 10 {
		t.Fatalf("placement = %v", place)
	}
	for _, n := range place {
		if n == 2 || n == 3 || n == 4 {
			t.Errorf("placement uses starved node %d: %v", n, place)
		}
	}
}

// A mover pipeline runs at the weaker leg's rate.
func TestPipelineThroughputIsWeakerLeg(t *testing.T) {
	sys, _ := newEnv(t)
	res, err := Run(sys, Spec{Movers: 2}, []topology.NodeID{6, 6})
	if err != nil {
		t.Fatal(err)
	}
	if res.Throughput != res.ReadAggregate && res.Throughput != res.SendAggregate {
		t.Errorf("throughput %v matches neither leg (%v / %v)",
			res.Throughput, res.ReadAggregate, res.SendAggregate)
	}
	if res.Throughput > res.ReadAggregate || res.Throughput > res.SendAggregate {
		t.Errorf("throughput must be the min of the legs")
	}
	// On node 6 both legs are near their ceilings: SSD read >> TCP send, so
	// TCP is the cap.
	if res.Throughput != res.SendAggregate {
		t.Errorf("TCP should cap the node-6 pipeline: %+v", res)
	}
}

// The model-driven placement beats piling every mover on the device node.
func TestModelDrivenBeatsLocal(t *testing.T) {
	sys, s := newEnv(t)
	local, model, err := Compare(sys, s, Spec{Movers: 8})
	if err != nil {
		t.Fatal(err)
	}
	if !(model.Throughput > local.Throughput) {
		t.Errorf("model-driven %.2f should beat all-local %.2f",
			model.Throughput.Gbps(), local.Throughput.Gbps())
	}
}

// RDMA movers exercise the fallback-free path with a different send model.
func TestRDMAMovers(t *testing.T) {
	sys, s := newEnv(t)
	spec := Spec{Movers: 4, SendEngine: device.EngineRDMAWrite}
	place, err := Placement(s, spec, 4)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(sys, spec, place)
	if err != nil {
		t.Fatal(err)
	}
	if res.Throughput <= 0 {
		t.Error("no throughput")
	}
}

// Both legs really share the fabric: movers on the starved node 2 lose on
// the send leg.
func TestStarvedNodeCapsPipeline(t *testing.T) {
	sys, _ := newEnv(t)
	good, err := Run(sys, Spec{Movers: 4}, []topology.NodeID{6, 6, 6, 6})
	if err != nil {
		t.Fatal(err)
	}
	bad, err := Run(sys, Spec{Movers: 4}, []topology.NodeID{2, 2, 2, 2})
	if err != nil {
		t.Fatal(err)
	}
	if !(bad.Throughput < good.Throughput*0.9) {
		t.Errorf("node-2 movers %.2f should clearly trail node-6 movers %.2f",
			bad.Throughput.Gbps(), good.Throughput.Gbps())
	}
}
