package topology

import (
	"testing"

	"numaio/internal/units"
)

// The cache-key contract: identical encodings share a fingerprint, any
// observable change breaks it.
func TestFingerprintStable(t *testing.T) {
	a := DL585G7()
	b := DL585G7()
	fa, err := Fingerprint(a)
	if err != nil {
		t.Fatal(err)
	}
	fb, err := Fingerprint(b)
	if err != nil {
		t.Fatal(err)
	}
	if fa != fb {
		t.Errorf("two identically-built machines fingerprint differently: %s vs %s", fa, fb)
	}
	if len(fa) != 32 {
		t.Errorf("fingerprint %q has length %d, want 32 hex chars", fa, len(fa))
	}

	clone := a.Clone()
	fc, err := Fingerprint(clone)
	if err != nil {
		t.Fatal(err)
	}
	if fc != fa {
		t.Errorf("clone fingerprints differently: %s vs %s", fc, fa)
	}
}

func TestFingerprintSensitivity(t *testing.T) {
	base := DL585G7()
	fBase, err := Fingerprint(base)
	if err != nil {
		t.Fatal(err)
	}

	// A single changed link capacity must change the fingerprint.
	mutant := base.Clone()
	if err := mutant.SetLinkCapacity(0, 1*units.Gbps); err != nil {
		t.Fatal(err)
	}
	fMutant, err := Fingerprint(mutant)
	if err != nil {
		t.Fatal(err)
	}
	if fMutant == fBase {
		t.Error("changed link capacity did not change the fingerprint")
	}

	// Distinct profiles must not collide.
	other := MagnyCours4P(VariantA)
	fOther, err := Fingerprint(other)
	if err != nil {
		t.Fatal(err)
	}
	if fOther == fBase {
		t.Error("distinct profiles share a fingerprint")
	}
}
