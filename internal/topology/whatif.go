package topology

import (
	"fmt"

	"numaio/internal/units"
)

// This file supports what-if analysis and failure injection: clone a
// machine, degrade or repair links, and re-derive models on the mutant —
// the workflow behind re-characterizing after hardware changes, which the
// paper's methodology makes cheap (no I/O benchmarks needed).

// Clone returns a deep copy of the machine; mutations on the copy leave the
// original untouched.
func (m *Machine) Clone() *Machine {
	out := &Machine{
		Name:             m.Name,
		Nodes:            append([]Node(nil), m.Nodes...),
		OSMemoryFraction: m.OSMemoryFraction,
		vertices:         make(map[string]*Vertex, len(m.vertices)),
		vorder:           append([]string(nil), m.vorder...),
		links:            append([]Link(nil), m.links...),
		adj:              make(map[string][]int, len(m.adj)),
		devices:          append([]Device(nil), m.devices...),
		routes:           make(map[routeKey][]int, len(m.routes)),
	}
	for id, v := range m.vertices {
		vv := *v
		out.vertices[id] = &vv
	}
	for id, idxs := range m.adj {
		out.adj[id] = append([]int(nil), idxs...)
	}
	for k, r := range m.routes {
		out.routes[k] = append([]int(nil), r...)
	}
	return out
}

// SetLinkCapacity overrides one directed link's capacity (failure
// injection / upgrade modelling). The capacity must stay positive.
func (m *Machine) SetLinkCapacity(idx int, cap units.Bandwidth) error {
	if idx < 0 || idx >= len(m.links) {
		return fmt.Errorf("topology: SetLinkCapacity: link %d out of range", idx)
	}
	if cap <= 0 {
		return fmt.Errorf("topology: SetLinkCapacity: nonpositive capacity %v", cap)
	}
	m.links[idx].Capacity = cap
	return nil
}

// ScaleLink multiplies one directed link's capacity by factor (> 0).
func (m *Machine) ScaleLink(idx int, factor float64) error {
	if idx < 0 || idx >= len(m.links) {
		return fmt.Errorf("topology: ScaleLink: link %d out of range", idx)
	}
	if factor <= 0 {
		return fmt.Errorf("topology: ScaleLink: nonpositive factor %v", factor)
	}
	m.links[idx].Capacity = units.Bandwidth(float64(m.links[idx].Capacity) * factor)
	return nil
}

// DegradeLinkBetween scales both directions between two vertices; it is the
// common failure-injection entry point ("this cable renegotiated to half
// width").
func (m *Machine) DegradeLinkBetween(a, b string, factor float64) error {
	ab := m.FindLink(a, b)
	ba := m.FindLink(b, a)
	if ab < 0 || ba < 0 {
		return fmt.Errorf("topology: no duplex link between %s and %s", a, b)
	}
	if err := m.ScaleLink(ab, factor); err != nil {
		return err
	}
	return m.ScaleLink(ba, factor)
}
