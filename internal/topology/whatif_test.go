package topology

import (
	"testing"

	"numaio/internal/units"
)

func TestCloneIsDeep(t *testing.T) {
	m := DL585G7()
	c := m.Clone()
	if err := c.Validate(); err != nil {
		t.Fatalf("clone invalid: %v", err)
	}

	// Mutating the clone's links must not touch the original.
	li := c.FindLink("node0", "node7")
	if li < 0 {
		t.Fatal("missing link")
	}
	orig := m.Link(li).Capacity
	if err := c.SetLinkCapacity(li, 5*units.Gbps); err != nil {
		t.Fatal(err)
	}
	if m.Link(li).Capacity != orig {
		t.Error("clone mutation leaked into the original")
	}
	if c.Link(li).Capacity != 5*units.Gbps {
		t.Error("clone mutation did not apply")
	}

	// Nodes, devices and routes are copied too.
	c.Nodes[0].Cores = 99
	if m.Nodes[0].Cores == 99 {
		t.Error("node mutation leaked")
	}
	if len(c.Devices()) != len(m.Devices()) {
		t.Error("devices not copied")
	}
	r1, err := m.RouteNodes(3, 7)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := c.RouteNodes(3, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(r1) != len(r2) {
		t.Error("pinned routes not copied")
	}
}

func TestSetLinkCapacityValidation(t *testing.T) {
	m := DL585G7()
	if err := m.SetLinkCapacity(-1, units.Gbps); err == nil {
		t.Error("negative index should fail")
	}
	if err := m.SetLinkCapacity(10_000, units.Gbps); err == nil {
		t.Error("out-of-range index should fail")
	}
	if err := m.SetLinkCapacity(0, 0); err == nil {
		t.Error("zero capacity should fail")
	}
}

func TestScaleLink(t *testing.T) {
	m := DL585G7()
	li := m.FindLink("node0", "node7")
	before := m.Link(li).Capacity
	if err := m.ScaleLink(li, 0.5); err != nil {
		t.Fatal(err)
	}
	if got := m.Link(li).Capacity; got != before/2 {
		t.Errorf("scaled capacity = %v, want %v", got, before/2)
	}
	if err := m.ScaleLink(li, 0); err == nil {
		t.Error("zero factor should fail")
	}
	if err := m.ScaleLink(-1, 0.5); err == nil {
		t.Error("bad index should fail")
	}
}

func TestDegradeLinkBetween(t *testing.T) {
	m := DL585G7()
	ab := m.FindLink("node0", "node7")
	ba := m.FindLink("node7", "node0")
	capAB, capBA := m.Link(ab).Capacity, m.Link(ba).Capacity
	if err := m.DegradeLinkBetween("node0", "node7", 0.25); err != nil {
		t.Fatal(err)
	}
	if m.Link(ab).Capacity != capAB/4 || m.Link(ba).Capacity != capBA/4 {
		t.Error("degradation not applied to both directions")
	}
	if err := m.DegradeLinkBetween("node0", "node4", 0.5); err == nil {
		t.Error("missing duplex link should fail")
	}
	if err := m.DegradeLinkBetween("node0", "node7", -1); err == nil {
		t.Error("negative factor should fail")
	}
}
