package topology

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzDecodeJSON: the machine decoder must never panic and must only
// produce machines that pass validation.
func FuzzDecodeJSON(f *testing.F) {
	var seed bytes.Buffer
	if err := DL585G7().EncodeJSON(&seed); err != nil {
		f.Fatal(err)
	}
	f.Add(seed.String())
	f.Add(`{"name":"x","nodes":[{"ID":0,"Cores":1,"Memory":1073741824,"MemBandwidth":1e9}],"links":[]}`)
	f.Add(`{`)
	f.Add(`{"name":"x","nodes":[],"links":[]}`)
	f.Fuzz(func(t *testing.T, input string) {
		m, err := DecodeJSON(strings.NewReader(input))
		if err != nil {
			return
		}
		if err := m.Validate(); err != nil {
			t.Errorf("decoder returned invalid machine: %v", err)
		}
	})
}
