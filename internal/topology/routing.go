package topology

import (
	"fmt"
	"math"
	"sort"

	"numaio/internal/units"
)

// Route returns the link indices of the route from one vertex to another.
// If an explicit route was configured with SetRoute it wins; otherwise the
// route is the widest-shortest path: among all minimum-hop paths, the one
// with the largest bottleneck capacity (ties broken deterministically by
// link index). This mirrors real HT routing tables, which are hop-minimal
// but can prefer wider links.
//
// A route from a vertex to itself is the empty path.
func (m *Machine) Route(from, to string) ([]int, error) {
	if r, ok := m.routes[routeKey{from, to}]; ok {
		return append([]int(nil), r...), nil
	}
	if _, ok := m.vertices[from]; !ok {
		return nil, fmt.Errorf("route: unknown vertex %q", from)
	}
	if _, ok := m.vertices[to]; !ok {
		return nil, fmt.Errorf("route: unknown vertex %q", to)
	}
	if from == to {
		return nil, nil
	}

	dist := m.bfsDistances(from)
	dTo, ok := dist[to]
	if !ok {
		return nil, fmt.Errorf("route: no path from %q to %q", from, to)
	}

	// Dynamic program over BFS levels, computing for each vertex on a
	// shortest path the best (widest) bottleneck and the predecessor link
	// achieving it.
	type best struct {
		width units.Bandwidth
		prev  int // link index into vertex, -1 at source
	}
	bests := map[string]best{from: {width: units.Bandwidth(math.Inf(1)), prev: -1}}
	frontier := []string{from}
	for level := 0; level < dTo; level++ {
		next := make(map[string]bool)
		// Deterministic order: sort frontier.
		sort.Strings(frontier)
		for _, v := range frontier {
			bv := bests[v]
			for _, li := range m.adj[v] {
				l := m.links[li]
				if dist[l.To] != level+1 {
					continue
				}
				w := bv.width
				if l.Capacity < w {
					w = l.Capacity
				}
				cur, seen := bests[l.To]
				if !seen || w > cur.width || (w == cur.width && li < cur.prev) {
					bests[l.To] = best{width: w, prev: li}
				}
				next[l.To] = true
			}
		}
		frontier = frontier[:0]
		for v := range next {
			frontier = append(frontier, v)
		}
	}

	// Walk back from to.
	var rev []int
	cur := to
	for cur != from {
		b, ok := bests[cur]
		if !ok || b.prev < 0 {
			return nil, fmt.Errorf("route: internal: broken predecessor chain at %q", cur)
		}
		rev = append(rev, b.prev)
		cur = m.links[b.prev].From
	}
	path := make([]int, len(rev))
	for i := range rev {
		path[i] = rev[len(rev)-1-i]
	}
	return path, nil
}

// bfsDistances returns hop distances from the given vertex to every
// reachable vertex.
func (m *Machine) bfsDistances(from string) map[string]int {
	dist := map[string]int{from: 0}
	queue := []string{from}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, li := range m.adj[v] {
			to := m.links[li].To
			if _, ok := dist[to]; !ok {
				dist[to] = dist[v] + 1
				queue = append(queue, to)
			}
		}
	}
	return dist
}

// RouteNodes returns the route between two NUMA nodes' vertices.
func (m *Machine) RouteNodes(a, b NodeID) ([]int, error) {
	return m.Route(NodeVertexID(a), NodeVertexID(b))
}

// HopDistance returns the number of links on the route between two nodes
// (0 for a node to itself). This is the metric the paper argues is NOT a
// reliable NUMA cost indicator; it is provided as the baseline.
func (m *Machine) HopDistance(a, b NodeID) (int, error) {
	r, err := m.RouteNodes(a, b)
	if err != nil {
		return 0, err
	}
	return len(r), nil
}

// PathCapacity returns the bottleneck capacity along a route. An empty route
// (vertex to itself) has infinite capacity.
func (m *Machine) PathCapacity(route []int) units.Bandwidth {
	cap := units.Bandwidth(math.Inf(1))
	for _, li := range route {
		if c := m.links[li].Capacity; c < cap {
			cap = c
		}
	}
	return cap
}

// PathLatency returns the summed link latency along a route.
func (m *Machine) PathLatency(route []int) units.Duration {
	var lat units.Duration
	for _, li := range route {
		lat += m.links[li].Latency
	}
	return lat
}

// AccessLatency returns the latency for a core on node c to fetch a cache
// line from memory on node mem: the memory latency of mem plus the request
// and response link traversal.
func (m *Machine) AccessLatency(c, mem NodeID) (units.Duration, error) {
	n := m.MustNode(mem)
	if c == mem {
		return n.MemLatency, nil
	}
	req, err := m.RouteNodes(c, mem)
	if err != nil {
		return 0, err
	}
	resp, err := m.RouteNodes(mem, c)
	if err != nil {
		return 0, err
	}
	return n.MemLatency + m.PathLatency(req) + m.PathLatency(resp), nil
}

// NUMAFactor returns the machine's NUMA factor as defined in Table I of the
// paper: the ratio of the average remote access latency to the average
// local access latency, over all ordered node pairs.
func (m *Machine) NUMAFactor() (float64, error) {
	var localSum, remoteSum float64
	var localN, remoteN int
	for _, a := range m.Nodes {
		for _, b := range m.Nodes {
			lat, err := m.AccessLatency(a.ID, b.ID)
			if err != nil {
				return 0, err
			}
			if a.ID == b.ID {
				localSum += lat.Seconds()
				localN++
			} else {
				remoteSum += lat.Seconds()
				remoteN++
			}
		}
	}
	if localN == 0 || remoteN == 0 || localSum == 0 {
		return 0, fmt.Errorf("topology: NUMAFactor: degenerate machine %q", m.Name)
	}
	return (remoteSum / float64(remoteN)) / (localSum / float64(localN)), nil
}

// SLIT returns an ACPI SLIT-style distance matrix: 10 on the diagonal and
// 10 + 10*hops off it. numactl prints this table; the paper notes it is
// "often inaccurate" as a performance model, which the experiments
// demonstrate.
func (m *Machine) SLIT() ([][]int, error) {
	ids := m.NodeIDs()
	out := make([][]int, len(ids))
	for i, a := range ids {
		out[i] = make([]int, len(ids))
		for j, b := range ids {
			if a == b {
				out[i][j] = 10
				continue
			}
			h, err := m.HopDistance(a, b)
			if err != nil {
				return nil, err
			}
			out[i][j] = 10 + 10*h
		}
	}
	return out, nil
}

// DevicePath describes the two directed routes between a device and a NUMA
// node's memory, as traversed by the device's DMA engine.
type DevicePath struct {
	ToMemory   []int // device -> node (device writes host memory: reads)
	FromMemory []int // node -> device (device reads host memory: writes)
}

// DeviceRoutes returns the DMA routes between a device and a node. DMA
// traffic physically enters and leaves the fabric through the device's
// owning node, so the node-to-node leg uses the machine's (possibly pinned)
// inter-node routes rather than a fresh shortest path past the hub.
func (m *Machine) DeviceRoutes(deviceID string, node NodeID) (DevicePath, error) {
	dev, ok := m.DeviceByID(deviceID)
	if !ok {
		return DevicePath{}, fmt.Errorf("topology: unknown device %q", deviceID)
	}
	devToOwner, err := m.Route(deviceID, NodeVertexID(dev.Node))
	if err != nil {
		return DevicePath{}, err
	}
	ownerToDev, err := m.Route(NodeVertexID(dev.Node), deviceID)
	if err != nil {
		return DevicePath{}, err
	}
	ownerToNode, err := m.RouteNodes(dev.Node, node)
	if err != nil {
		return DevicePath{}, err
	}
	nodeToOwner, err := m.RouteNodes(node, dev.Node)
	if err != nil {
		return DevicePath{}, err
	}
	toMem := append(append([]int(nil), devToOwner...), ownerToNode...)
	fromMem := append(append([]int(nil), nodeToOwner...), ownerToDev...)
	return DevicePath{ToMemory: toMem, FromMemory: fromMem}, nil
}
