// Package topology models NUMA machine topologies: NUMA nodes with cores and
// memory controllers, directed interconnect links (HyperTransport, PCIe),
// I/O hubs and PCIe devices, plus routing over the resulting directed graph.
//
// A Machine is a static description; the bandwidth behaviour that emerges
// from it is computed by internal/fabric and internal/simhost. Directed links
// carry independent capacities, which is how the request/response-buffer and
// link-width asymmetries reported by the paper (Sec. IV-A) are expressed.
package topology

import (
	"fmt"
	"sort"

	"numaio/internal/units"
)

// NodeID identifies a NUMA node within a machine.
type NodeID int

// VertexKind distinguishes the kinds of routing-graph vertices.
type VertexKind int

// Vertex kinds.
const (
	VertexNode VertexKind = iota // a NUMA node (CPU die + memory controller)
	VertexIOHub
	VertexDevice
)

func (k VertexKind) String() string {
	switch k {
	case VertexNode:
		return "node"
	case VertexIOHub:
		return "iohub"
	case VertexDevice:
		return "device"
	default:
		return fmt.Sprintf("VertexKind(%d)", int(k))
	}
}

// Vertex is a point in the routing graph.
type Vertex struct {
	ID   string
	Kind VertexKind
	// Node is the NUMA node this vertex belongs to (for VertexNode) or is
	// attached to (for hubs and devices).
	Node NodeID
}

// LinkKind distinguishes interconnect technologies.
type LinkKind int

// Link kinds.
const (
	LinkHT LinkKind = iota // HyperTransport (node-to-node or node-to-hub)
	LinkPCIe
	LinkInternal // on-package or on-chip connection
)

func (k LinkKind) String() string {
	switch k {
	case LinkHT:
		return "HT"
	case LinkPCIe:
		return "PCIe"
	case LinkInternal:
		return "internal"
	default:
		return fmt.Sprintf("LinkKind(%d)", int(k))
	}
}

// Link is a directed interconnect edge. Capacities are per direction; the
// reverse direction is a separate Link and may be configured differently
// (the paper ascribes its measured asymmetries to request/response buffer
// counts and per-direction link-width configuration).
type Link struct {
	From, To  string
	Kind      LinkKind
	WidthBits int // physical link width (8 or 16 for HT)
	Capacity  units.Bandwidth
	Latency   units.Duration
	// PIOResponsePenalty scales the usable capacity of this link when it
	// carries programmed-I/O read-response (cache-coherent data return)
	// traffic. DMA traffic is not affected. 0 means 1 (no penalty).
	PIOResponsePenalty float64
}

// PIOResponseFactor returns the effective PIO response multiplier.
func (l Link) PIOResponseFactor() float64 {
	if l.PIOResponsePenalty <= 0 {
		return 1
	}
	return l.PIOResponsePenalty
}

// Node describes one NUMA node: a CPU die with its cores and directly
// attached memory.
type Node struct {
	ID      NodeID
	Package int // physical CPU package (socket) index
	Die     int // die index within the package
	Cores   int
	Memory  units.Size
	LLC     units.Size // last-level cache size of the die
	// MemBandwidth is the node's memory-controller capacity. A copy that
	// both reads and writes the same node's memory consumes the controller
	// twice.
	MemBandwidth units.Bandwidth
	// MemLatency is the idle local-access latency (used for the NUMA
	// factor, Table I).
	MemLatency units.Duration
	// CoreIssueBandwidth is the aggregate data rate the node's cores can
	// drive with programmed I/O when all cores participate.
	CoreIssueBandwidth units.Bandwidth
	// CoreMultiplier derates the node's effective core throughput (for
	// example, the node handling device interrupts loses some capacity).
	// 0 means 1.
	CoreMultiplier float64
}

// EffectiveCoreMultiplier returns the node's core derating factor.
func (n Node) EffectiveCoreMultiplier() float64 {
	if n.CoreMultiplier <= 0 {
		return 1
	}
	return n.CoreMultiplier
}

// DeviceKind distinguishes PCIe device models.
type DeviceKind int

// Device kinds.
const (
	DeviceNIC DeviceKind = iota
	DeviceSSD
)

func (k DeviceKind) String() string {
	switch k {
	case DeviceNIC:
		return "nic"
	case DeviceSSD:
		return "ssd"
	default:
		return fmt.Sprintf("DeviceKind(%d)", int(k))
	}
}

// Device describes a PCIe device and its attachment point.
type Device struct {
	ID   string
	Kind DeviceKind
	Node NodeID // NUMA node whose I/O hub the device hangs off
	Hub  string // vertex ID of the I/O hub
}

// Machine is a complete static topology.
type Machine struct {
	Name  string
	Nodes []Node

	// OSMemoryFraction is the fraction of an application's nominally-local
	// memory references that actually land on node 0 (shared libraries, OS
	// buffers). Node 0 itself is unaffected. Sec. IV-A of the paper.
	OSMemoryFraction float64

	vertices map[string]*Vertex
	vorder   []string // insertion order, for deterministic iteration
	links    []Link
	adj      map[string][]int // vertex -> outgoing link indices
	devices  []Device

	routes map[routeKey][]int // optional explicit routing table
}

type routeKey struct{ from, to string }

// NodeVertexID returns the routing-graph vertex ID for a NUMA node.
func NodeVertexID(n NodeID) string { return fmt.Sprintf("node%d", int(n)) }

// New creates an empty machine with the given name and NUMA nodes. A vertex
// is created for every node.
func New(name string, nodes []Node) *Machine {
	m := &Machine{
		Name:     name,
		Nodes:    append([]Node(nil), nodes...),
		vertices: make(map[string]*Vertex),
		adj:      make(map[string][]int),
		routes:   make(map[routeKey][]int),
	}
	for _, n := range m.Nodes {
		m.addVertex(Vertex{ID: NodeVertexID(n.ID), Kind: VertexNode, Node: n.ID})
	}
	return m
}

func (m *Machine) addVertex(v Vertex) {
	if _, ok := m.vertices[v.ID]; ok {
		return
	}
	vv := v
	m.vertices[v.ID] = &vv
	m.vorder = append(m.vorder, v.ID)
}

// AddIOHub adds an I/O hub vertex attached to the given node and links it to
// the node in both directions with the supplied per-direction capacity.
func (m *Machine) AddIOHub(id string, node NodeID, cap units.Bandwidth, lat units.Duration) {
	m.addVertex(Vertex{ID: id, Kind: VertexIOHub, Node: node})
	m.AddDuplexLink(NodeVertexID(node), id, LinkHT, 16, cap, lat)
}

// AddSwitch adds an intermediate fan-out vertex (a PCIe switch or a
// multi-port card's shared bus) under an existing parent vertex.
func (m *Machine) AddSwitch(id, parent string, cap units.Bandwidth, lat units.Duration) {
	pv, ok := m.vertices[parent]
	if !ok {
		panic(fmt.Sprintf("topology: AddSwitch %q: unknown parent %q", id, parent))
	}
	m.addVertex(Vertex{ID: id, Kind: VertexIOHub, Node: pv.Node})
	m.AddDuplexLink(parent, id, LinkPCIe, 8, cap, lat)
}

// AddDevice adds a PCIe device vertex attached to hub and links it with the
// supplied per-direction PCIe capacity.
func (m *Machine) AddDevice(id string, kind DeviceKind, hub string, cap units.Bandwidth, lat units.Duration) {
	hv, ok := m.vertices[hub]
	if !ok {
		panic(fmt.Sprintf("topology: AddDevice %q: unknown hub %q", id, hub))
	}
	m.addVertex(Vertex{ID: id, Kind: VertexDevice, Node: hv.Node})
	m.AddDuplexLink(hub, id, LinkPCIe, 8, cap, lat)
	m.devices = append(m.devices, Device{ID: id, Kind: kind, Node: hv.Node, Hub: hub})
}

// AddLink adds a single directed link.
func (m *Machine) AddLink(l Link) {
	if _, ok := m.vertices[l.From]; !ok {
		panic(fmt.Sprintf("topology: AddLink: unknown vertex %q", l.From))
	}
	if _, ok := m.vertices[l.To]; !ok {
		panic(fmt.Sprintf("topology: AddLink: unknown vertex %q", l.To))
	}
	m.links = append(m.links, l)
	m.adj[l.From] = append(m.adj[l.From], len(m.links)-1)
	// Any cached/explicit routes may be stale; callers configure routes
	// after the graph is complete, so nothing to invalidate here.
}

// AddDuplexLink adds a symmetric pair of directed links.
func (m *Machine) AddDuplexLink(a, b string, kind LinkKind, width int, cap units.Bandwidth, lat units.Duration) {
	m.AddLink(Link{From: a, To: b, Kind: kind, WidthBits: width, Capacity: cap, Latency: lat})
	m.AddLink(Link{From: b, To: a, Kind: kind, WidthBits: width, Capacity: cap, Latency: lat})
}

// AddAsymLink adds a pair of directed links with independent capacities.
func (m *Machine) AddAsymLink(a, b string, kind LinkKind, width int, capAB, capBA units.Bandwidth, lat units.Duration) {
	m.AddLink(Link{From: a, To: b, Kind: kind, WidthBits: width, Capacity: capAB, Latency: lat})
	m.AddLink(Link{From: b, To: a, Kind: kind, WidthBits: width, Capacity: capBA, Latency: lat})
}

// SetRoute pins an explicit route (a list of link indices, validated to form
// a connected path from from to to). Most machines rely on computed routing;
// explicit routes model firmware routing tables that deviate from shortest
// paths.
func (m *Machine) SetRoute(from, to string, linkIdx []int) error {
	if err := m.validatePath(from, to, linkIdx); err != nil {
		return err
	}
	m.routes[routeKey{from, to}] = append([]int(nil), linkIdx...)
	return nil
}

func (m *Machine) validatePath(from, to string, path []int) error {
	cur := from
	for _, li := range path {
		if li < 0 || li >= len(m.links) {
			return fmt.Errorf("topology: route %s->%s: link index %d out of range", from, to, li)
		}
		l := m.links[li]
		if l.From != cur {
			return fmt.Errorf("topology: route %s->%s: link %d starts at %s, expected %s", from, to, li, l.From, cur)
		}
		cur = l.To
	}
	if cur != to {
		return fmt.Errorf("topology: route %s->%s: path ends at %s", from, to, cur)
	}
	return nil
}

// Vertex returns the vertex with the given ID.
func (m *Machine) Vertex(id string) (Vertex, bool) {
	v, ok := m.vertices[id]
	if !ok {
		return Vertex{}, false
	}
	return *v, true
}

// Vertices returns all vertex IDs in insertion order.
func (m *Machine) Vertices() []string { return append([]string(nil), m.vorder...) }

// Links returns a copy of all directed links.
func (m *Machine) Links() []Link { return append([]Link(nil), m.links...) }

// Link returns the directed link with the given index.
func (m *Machine) Link(i int) Link { return m.links[i] }

// NumLinks returns the number of directed links.
func (m *Machine) NumLinks() int { return len(m.links) }

// Devices returns the machine's PCIe devices.
func (m *Machine) Devices() []Device { return append([]Device(nil), m.devices...) }

// DeviceByID returns the named device.
func (m *Machine) DeviceByID(id string) (Device, bool) {
	for _, d := range m.devices {
		if d.ID == id {
			return d, true
		}
	}
	return Device{}, false
}

// Node returns the node with the given ID.
func (m *Machine) Node(id NodeID) (Node, bool) {
	for _, n := range m.Nodes {
		if n.ID == id {
			return n, true
		}
	}
	return Node{}, false
}

// MustNode is Node but panics on unknown IDs; for internal wiring where the
// ID provably exists.
func (m *Machine) MustNode(id NodeID) Node {
	n, ok := m.Node(id)
	if !ok {
		panic(fmt.Sprintf("topology: unknown node %d in machine %q", int(id), m.Name))
	}
	return n
}

// NumNodes returns the number of NUMA nodes.
func (m *Machine) NumNodes() int { return len(m.Nodes) }

// NodeIDs returns all node IDs in ascending order.
func (m *Machine) NodeIDs() []NodeID {
	ids := make([]NodeID, 0, len(m.Nodes))
	for _, n := range m.Nodes {
		ids = append(ids, n.ID)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// PackageOf returns the package index of a node.
func (m *Machine) PackageOf(id NodeID) int { return m.MustNode(id).Package }

// Neighbors reports whether a and b are distinct dies in the same package.
func (m *Machine) Neighbors(a, b NodeID) bool {
	if a == b {
		return false
	}
	return m.PackageOf(a) == m.PackageOf(b)
}

// Relationship classifies b as seen from a, following the paper's
// terminology (Sec. II-A).
type Relationship int

// Relationship values.
const (
	Local Relationship = iota
	Neighbor
	Remote
)

func (r Relationship) String() string {
	switch r {
	case Local:
		return "local"
	case Neighbor:
		return "neighbor"
	case Remote:
		return "remote"
	default:
		return fmt.Sprintf("Relationship(%d)", int(r))
	}
}

// Relation classifies node b relative to node a.
func (m *Machine) Relation(a, b NodeID) Relationship {
	switch {
	case a == b:
		return Local
	case m.Neighbors(a, b):
		return Neighbor
	default:
		return Remote
	}
}

// Validate checks structural consistency: unique node IDs, positive
// capacities, link endpoints exist, and mutual reachability of all node
// vertices.
func (m *Machine) Validate() error {
	if len(m.Nodes) == 0 {
		return fmt.Errorf("topology: machine %q has no nodes", m.Name)
	}
	seen := make(map[NodeID]bool)
	for _, n := range m.Nodes {
		if seen[n.ID] {
			return fmt.Errorf("topology: machine %q: duplicate node %d", m.Name, int(n.ID))
		}
		seen[n.ID] = true
		if n.Cores <= 0 {
			return fmt.Errorf("topology: node %d: nonpositive core count", int(n.ID))
		}
		if n.MemBandwidth <= 0 {
			return fmt.Errorf("topology: node %d: nonpositive memory bandwidth", int(n.ID))
		}
		if n.Memory <= 0 {
			return fmt.Errorf("topology: node %d: nonpositive memory size", int(n.ID))
		}
	}
	for i, l := range m.links {
		if l.Capacity <= 0 {
			return fmt.Errorf("topology: link %d (%s->%s): nonpositive capacity", i, l.From, l.To)
		}
		if l.Latency < 0 {
			return fmt.Errorf("topology: link %d (%s->%s): negative latency", i, l.From, l.To)
		}
	}
	for _, a := range m.Nodes {
		for _, b := range m.Nodes {
			if a.ID == b.ID {
				continue
			}
			if _, err := m.Route(NodeVertexID(a.ID), NodeVertexID(b.ID)); err != nil {
				return fmt.Errorf("topology: machine %q: %v", m.Name, err)
			}
		}
	}
	if m.OSMemoryFraction < 0 || m.OSMemoryFraction >= 1 {
		return fmt.Errorf("topology: machine %q: OSMemoryFraction %v out of [0,1)", m.Name, m.OSMemoryFraction)
	}
	return nil
}
