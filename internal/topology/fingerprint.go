package topology

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
)

// Fingerprint returns a stable content hash of the machine's canonical JSON
// encoding. Two machines that encode identically share a fingerprint; any
// observable change — a node, a link capacity, a pinned route — yields a
// different one. It is the cache key the model-serving daemon (numaiod)
// uses to recognise a topology it has already characterized.
func Fingerprint(m *Machine) (string, error) {
	var buf bytes.Buffer
	if err := m.EncodeJSON(&buf); err != nil {
		return "", fmt.Errorf("topology: fingerprinting machine: %w", err)
	}
	sum := sha256.Sum256(buf.Bytes())
	return hex.EncodeToString(sum[:16]), nil
}
