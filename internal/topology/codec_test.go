package topology

import (
	"bytes"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// Round trip: every canned profile survives encode/decode with identical
// routing behaviour and NUMA factor.
func TestCodecRoundTrip(t *testing.T) {
	profiles := []*Machine{DL585G7(), MagnyCours4P(VariantB), Intel4S4N(), HPBlade32()}
	for _, orig := range profiles {
		var buf bytes.Buffer
		if err := orig.EncodeJSON(&buf); err != nil {
			t.Fatalf("%s: %v", orig.Name, err)
		}
		back, err := DecodeJSON(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("%s: %v", orig.Name, err)
		}
		if back.Name != orig.Name || back.NumNodes() != orig.NumNodes() ||
			back.NumLinks() != orig.NumLinks() || len(back.Devices()) != len(orig.Devices()) {
			t.Errorf("%s: structure changed over round trip", orig.Name)
		}
		// Routing behaviour identical (including pinned routes).
		for _, a := range orig.NodeIDs() {
			for _, b := range orig.NodeIDs() {
				r1, err1 := orig.RouteNodes(a, b)
				r2, err2 := back.RouteNodes(a, b)
				if (err1 == nil) != (err2 == nil) || len(r1) != len(r2) {
					t.Errorf("%s: route %d->%d changed", orig.Name, a, b)
				}
				for i := range r1 {
					if orig.Link(r1[i]) != back.Link(r2[i]) {
						t.Errorf("%s: route %d->%d link %d changed", orig.Name, a, b, i)
					}
				}
			}
		}
		f1, err := orig.NUMAFactor()
		if err != nil {
			t.Fatal(err)
		}
		f2, err := back.NUMAFactor()
		if err != nil {
			t.Fatal(err)
		}
		if f1 != f2 {
			t.Errorf("%s: NUMA factor changed %v -> %v", orig.Name, f1, f2)
		}
	}
}

func TestDecodeJSONErrors(t *testing.T) {
	cases := []string{
		`{`,
		`{"name":"x","nodes":[],"links":[]}`, // no nodes
		`{"name":"x","nodes":[{"ID":0,"Cores":1,"Memory":1073741824,"MemBandwidth":1e9}],
		  "links":[{"From":"node0","To":"ghost","Capacity":1e9}]}`, // unknown vertex
		`{"name":"x","nodes":[{"ID":0,"Cores":1,"Memory":1073741824,"MemBandwidth":1e9}],
		  "vertices":[{"ID":"node0","Kind":0,"Node":0}],"links":[]}`, // node vertex in vertices
		`{"name":"x","nodes":[{"ID":0,"Cores":1,"Memory":1073741824,"MemBandwidth":1e9}],
		  "links":[],"devices":[{"ID":"d","Kind":0,"Node":0,"Hub":"missing"}]}`, // unknown hub
		`{"name":"x","bogus":1,"nodes":[],"links":[]}`, // unknown field
	}
	for _, src := range cases {
		if _, err := DecodeJSON(strings.NewReader(src)); err == nil {
			t.Errorf("expected error for %s", src)
		}
	}
}

func TestDecodeJSONDeviceNodeMismatch(t *testing.T) {
	var buf bytes.Buffer
	if err := DL585G7().EncodeJSON(&buf); err != nil {
		t.Fatal(err)
	}
	// Corrupt the first device's node.
	s := strings.Replace(buf.String(), `"ID": "nic0",
      "Kind": 0,
      "Node": 7,`, `"ID": "nic0",
      "Kind": 0,
      "Node": 3,`, 1)
	if s == buf.String() {
		t.Skip("device JSON layout changed; mismatch case not exercised")
	}
	if _, err := DecodeJSON(strings.NewReader(s)); err == nil {
		t.Error("device/hub node mismatch should fail")
	}
}

func TestLoadMachine(t *testing.T) {
	// Profile path.
	m, err := LoadMachine("intel-4s4n", nil)
	if err != nil || m.Name != "intel-4s-4n" {
		t.Errorf("profile load failed: %v, %v", m, err)
	}

	// File path.
	dir := t.TempDir()
	path := filepath.Join(dir, "machine.json")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := DL585G7().EncodeJSON(f); err != nil {
		t.Fatal(err)
	}
	f.Close()
	opener := func(p string) (io.ReadCloser, error) { return os.Open(p) }
	m, err = LoadMachine(path, opener)
	if err != nil || m.Name != "hp-dl585-g7" {
		t.Errorf("file load failed: %v", err)
	}
	if _, err := LoadMachine(filepath.Join(dir, "missing.json"), opener); err == nil {
		t.Error("missing file should fail")
	}
	if _, err := LoadMachine("warp", nil); err == nil {
		t.Error("unknown profile should fail")
	}
}

func TestEncodeDOT(t *testing.T) {
	var buf bytes.Buffer
	if err := DL585G7().EncodeDOT(&buf); err != nil {
		t.Fatal(err)
	}
	s := buf.String()
	for _, want := range []string{
		`digraph "hp-dl585-g7"`,
		`subgraph cluster_pkg3`,
		`"node7" [label="node 7`,
		`"nic0" [shape=ellipse, style=dashed]`,
		// The asymmetric 2<->7 pair must appear as two single edges.
		`"node2" -> "node7" [label="26.50Gb/s"]`,
		`"node7" -> "node2" [label="49.50Gb/s"]`,
		// A symmetric pair collapses into one double-headed edge.
		`dir=both`,
	} {
		if !strings.Contains(s, want) {
			t.Errorf("DOT missing %q:\n%s", want, s[:400])
		}
	}
}
