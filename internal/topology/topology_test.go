package topology

import (
	"math"
	"testing"

	"numaio/internal/units"
)

func TestNewMachineCreatesNodeVertices(t *testing.T) {
	m := New("test", magnyNodes())
	for i := 0; i < 8; i++ {
		v, ok := m.Vertex(NodeVertexID(NodeID(i)))
		if !ok {
			t.Fatalf("vertex for node %d missing", i)
		}
		if v.Kind != VertexNode || v.Node != NodeID(i) {
			t.Errorf("vertex %d = %+v", i, v)
		}
	}
	if got := m.NumNodes(); got != 8 {
		t.Errorf("NumNodes = %d, want 8", got)
	}
}

func TestAddLinkUnknownVertexPanics(t *testing.T) {
	m := New("test", magnyNodes())
	defer func() {
		if recover() == nil {
			t.Error("expected panic for unknown vertex")
		}
	}()
	m.AddLink(Link{From: "node0", To: "nowhere", Capacity: units.Gbps})
}

func TestRelations(t *testing.T) {
	m := MagnyCours4P(VariantA)
	cases := []struct {
		a, b NodeID
		want Relationship
	}{
		{7, 7, Local},
		{7, 6, Neighbor},
		{6, 7, Neighbor},
		{7, 0, Remote},
		{0, 3, Remote},
		{2, 3, Neighbor},
	}
	for _, c := range cases {
		if got := m.Relation(c.a, c.b); got != c.want {
			t.Errorf("Relation(%d,%d) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

// Fig. 1(a) example from Sec. II-A: node 7 is one hop from {0,2,4} and two
// hops from {1,3,5}.
func TestVariantAHopDistances(t *testing.T) {
	m := MagnyCours4P(VariantA)
	wantOne := []NodeID{0, 2, 4, 6}
	wantTwo := []NodeID{1, 3, 5}
	for _, n := range wantOne {
		if h, err := m.HopDistance(7, n); err != nil || h != 1 {
			t.Errorf("HopDistance(7,%d) = %d, %v; want 1", n, h, err)
		}
	}
	for _, n := range wantTwo {
		if h, err := m.HopDistance(7, n); err != nil || h != 2 {
			t.Errorf("HopDistance(7,%d) = %d, %v; want 2", n, h, err)
		}
	}
	if h, _ := m.HopDistance(7, 7); h != 0 {
		t.Errorf("HopDistance(7,7) = %d, want 0", h)
	}
}

func TestAllProfilesValidate(t *testing.T) {
	machines := []*Machine{
		MagnyCours4P(VariantA), MagnyCours4P(VariantB),
		MagnyCours4P(VariantC), MagnyCours4P(VariantD),
		DL585G7(), Intel4S4N(), AMD4S8N(), AMD8S8N(), HPBlade32(),
	}
	for _, m := range machines {
		if err := m.Validate(); err != nil {
			t.Errorf("%s: %v", m.Name, err)
		}
	}
}

func TestValidateRejectsBadMachines(t *testing.T) {
	if err := New("empty", nil).Validate(); err == nil {
		t.Error("empty machine should fail validation")
	}

	dup := New("dup", []Node{
		{ID: 0, Cores: 1, Memory: units.GiB, MemBandwidth: units.Gbps},
		{ID: 0, Cores: 1, Memory: units.GiB, MemBandwidth: units.Gbps},
	})
	if err := dup.Validate(); err == nil {
		t.Error("duplicate node IDs should fail validation")
	}

	island := New("island", []Node{
		{ID: 0, Cores: 1, Memory: units.GiB, MemBandwidth: units.Gbps},
		{ID: 1, Cores: 1, Memory: units.GiB, MemBandwidth: units.Gbps},
	})
	if err := island.Validate(); err == nil {
		t.Error("disconnected nodes should fail validation")
	}

	badCap := New("badcap", []Node{
		{ID: 0, Cores: 1, Memory: units.GiB, MemBandwidth: units.Gbps},
	})
	badCap.AddLink(Link{From: "node0", To: "node0", Capacity: 0})
	if err := badCap.Validate(); err == nil {
		t.Error("zero-capacity link should fail validation")
	}
}

func TestRouteSelfIsEmpty(t *testing.T) {
	m := DL585G7()
	r, err := m.Route("node3", "node3")
	if err != nil || len(r) != 0 {
		t.Errorf("Route(self) = %v, %v; want empty", r, err)
	}
	if c := m.PathCapacity(r); !math.IsInf(float64(c), 1) {
		t.Errorf("empty path capacity = %v, want +Inf", c)
	}
	if l := m.PathLatency(r); l != 0 {
		t.Errorf("empty path latency = %v, want 0", l)
	}
}

func TestRouteUnknownVertex(t *testing.T) {
	m := DL585G7()
	if _, err := m.Route("node0", "nowhere"); err == nil {
		t.Error("expected error for unknown destination")
	}
	if _, err := m.Route("nowhere", "node0"); err == nil {
		t.Error("expected error for unknown source")
	}
}

// Routes must be connected paths whose length equals the BFS hop distance
// (except where firmware routes are pinned, which are also hop-minimal in
// the DL585G7 profile).
func TestRoutesAreConnectedShortestPaths(t *testing.T) {
	for _, m := range []*Machine{MagnyCours4P(VariantA), MagnyCours4P(VariantC), DL585G7(), AMD8S8N(), HPBlade32()} {
		for _, a := range m.NodeIDs() {
			dist := m.bfsDistances(NodeVertexID(a))
			for _, b := range m.NodeIDs() {
				route, err := m.RouteNodes(a, b)
				if err != nil {
					t.Fatalf("%s: route %d->%d: %v", m.Name, a, b, err)
				}
				if err := m.validatePath(NodeVertexID(a), NodeVertexID(b), route); err != nil {
					t.Errorf("%s: %v", m.Name, err)
				}
				if want := dist[NodeVertexID(b)]; len(route) != want {
					t.Errorf("%s: route %d->%d has %d hops, BFS distance %d",
						m.Name, a, b, len(route), want)
				}
			}
		}
	}
}

// Among equal-hop paths the router must prefer the widest bottleneck.
func TestRoutePrefersWidestShortest(t *testing.T) {
	nodes := []Node{
		{ID: 0, Cores: 1, Memory: units.GiB, MemBandwidth: units.Gbps},
		{ID: 1, Cores: 1, Memory: units.GiB, MemBandwidth: units.Gbps},
		{ID: 2, Cores: 1, Memory: units.GiB, MemBandwidth: units.Gbps},
		{ID: 3, Cores: 1, Memory: units.GiB, MemBandwidth: units.Gbps},
	}
	m := New("diamond", nodes)
	// Two 2-hop paths 0->3: via 1 (narrow) and via 2 (wide).
	m.AddDuplexLink("node0", "node1", LinkHT, 8, 10*units.Gbps, 0)
	m.AddDuplexLink("node1", "node3", LinkHT, 8, 10*units.Gbps, 0)
	m.AddDuplexLink("node0", "node2", LinkHT, 16, 40*units.Gbps, 0)
	m.AddDuplexLink("node2", "node3", LinkHT, 16, 40*units.Gbps, 0)
	route, err := m.RouteNodes(0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if got := m.PathCapacity(route); got != 40*units.Gbps {
		t.Errorf("bottleneck = %v, want 40Gb/s (router must pick wide path)", got)
	}
}

func TestSetRouteValidation(t *testing.T) {
	m := DL585G7()
	// Broken path: single link that does not reach the destination.
	li := m.FindLink("node0", "node1")
	if li < 0 {
		t.Fatal("missing link node0->node1")
	}
	if err := m.SetRoute("node0", "node7", []int{li}); err == nil {
		t.Error("expected error for path ending at wrong vertex")
	}
	if err := m.SetRoute("node0", "node1", []int{9999}); err == nil {
		t.Error("expected error for out-of-range link index")
	}
	if err := m.SetRoute("node0", "node1", []int{li}); err != nil {
		t.Errorf("valid route rejected: %v", err)
	}
}

func TestRouteViaPinning(t *testing.T) {
	m := DL585G7()
	// The profile pins 3->7 via node 2, landing on the starved 2->7 link.
	route, err := m.RouteNodes(3, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(route) != 2 {
		t.Fatalf("route 3->7 has %d hops, want 2", len(route))
	}
	if mid := m.Link(route[0]).To; mid != "node2" {
		t.Errorf("route 3->7 passes %s, want node2", mid)
	}
	if got := m.PathCapacity(route); got != 26.5*units.Gbps {
		t.Errorf("route 3->7 bottleneck = %v, want 26.5Gb/s", got)
	}
	if err := m.RouteVia("node0"); err == nil {
		t.Error("RouteVia with one vertex should error")
	}
	if err := m.RouteVia("node0", "node7", "node6"); err != nil {
		t.Errorf("RouteVia along existing links failed: %v", err)
	}
	if err := m.RouteVia("node0", "node4"); err == nil {
		t.Error("RouteVia over missing link should error")
	}
}

func TestSLIT(t *testing.T) {
	m := MagnyCours4P(VariantA)
	slit, err := m.SLIT()
	if err != nil {
		t.Fatal(err)
	}
	if len(slit) != 8 {
		t.Fatalf("SLIT has %d rows", len(slit))
	}
	for i := range slit {
		if slit[i][i] != 10 {
			t.Errorf("SLIT[%d][%d] = %d, want 10", i, i, slit[i][i])
		}
	}
	if slit[7][6] != 20 {
		t.Errorf("SLIT[7][6] = %d, want 20 (neighbor, 1 hop)", slit[7][6])
	}
	if slit[7][1] != 30 {
		t.Errorf("SLIT[7][1] = %d, want 30 (2 hops)", slit[7][1])
	}
}

// Table I of the paper: NUMA factors of the four server configurations.
// The calibrated profiles must land within 10% of the published values.
func TestTableINUMAFactors(t *testing.T) {
	for _, row := range TableIMachines() {
		got, err := row.Machine.NUMAFactor()
		if err != nil {
			t.Errorf("%s: %v", row.Machine.Name, err)
			continue
		}
		if rel := math.Abs(got-row.Paper) / row.Paper; rel > 0.10 {
			t.Errorf("%s: NUMA factor %.2f, paper %.2f (off by %.0f%%)",
				row.Machine.Name, got, row.Paper, rel*100)
		}
	}
}

func TestAccessLatencyLocalVsRemote(t *testing.T) {
	m := AMD4S8N()
	local, err := m.AccessLatency(7, 7)
	if err != nil {
		t.Fatal(err)
	}
	neighbor, err := m.AccessLatency(7, 6)
	if err != nil {
		t.Fatal(err)
	}
	remote2, err := m.AccessLatency(7, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !(local < neighbor && neighbor < remote2) {
		t.Errorf("latency ordering violated: local %v, neighbor %v, 2-hop %v",
			local, neighbor, remote2)
	}
}

// DL585G7 calibration: the path capacities into and out of node 7 must
// reproduce the class structure of Tables IV and V.
func TestDL585G7PathCapacityClasses(t *testing.T) {
	m := DL585G7()
	into := func(n NodeID) float64 {
		r, err := m.RouteNodes(n, 7)
		if err != nil {
			t.Fatal(err)
		}
		return m.PathCapacity(r).Gbps()
	}
	outof := func(n NodeID) float64 {
		r, err := m.RouteNodes(7, n)
		if err != nil {
			t.Fatal(err)
		}
		return m.PathCapacity(r).Gbps()
	}

	// Write model (data toward node 7): {6} > {0,1,4,5} > {2,3}.
	for _, mid := range []NodeID{0, 1, 4, 5} {
		if !(into(6) > into(mid)) {
			t.Errorf("into(6)=%v should exceed into(%d)=%v", into(6), mid, into(mid))
		}
		for _, low := range []NodeID{2, 3} {
			if !(into(mid) > into(low)+10) {
				t.Errorf("into(%d)=%v should exceed into(%d)=%v by a wide gap",
					mid, into(mid), low, into(low))
			}
		}
	}

	// Read model (data away from node 7): {6} ~ {2,3} > {0,1,5} > {4}.
	for _, high := range []NodeID{6, 2, 3} {
		for _, mid := range []NodeID{0, 1, 5} {
			if !(outof(high) > outof(mid)) {
				t.Errorf("outof(%d)=%v should exceed outof(%d)=%v",
					high, outof(high), mid, outof(mid))
			}
		}
	}
	for _, mid := range []NodeID{0, 1, 5} {
		if !(outof(mid) > outof(4)+10) {
			t.Errorf("outof(%d)=%v should exceed outof(4)=%v by a wide gap",
				mid, outof(mid), outof(4))
		}
	}
}

func TestDevices(t *testing.T) {
	m := DL585G7()
	devs := m.Devices()
	if len(devs) != 3 {
		t.Fatalf("got %d devices, want 3", len(devs))
	}
	nic, ok := m.DeviceByID(NIC0)
	if !ok {
		t.Fatal("nic0 missing")
	}
	if nic.Kind != DeviceNIC || nic.Node != 7 || nic.Hub != IOHub7 {
		t.Errorf("nic0 = %+v", nic)
	}
	if _, ok := m.DeviceByID("nope"); ok {
		t.Error("DeviceByID should fail for unknown device")
	}

	dp, err := m.DeviceRoutes(NIC0, 3)
	if err != nil {
		t.Fatal(err)
	}
	// Device -> memory of node 3 must leave through the hub and node 7.
	if m.Link(dp.ToMemory[0]).From != NIC0 {
		t.Errorf("device path does not start at device")
	}
	if last := m.Link(dp.FromMemory[len(dp.FromMemory)-1]).To; last != NIC0 {
		t.Errorf("from-memory path ends at %s, want %s", last, NIC0)
	}
	if _, err := m.DeviceRoutes("nope", 3); err == nil {
		t.Error("DeviceRoutes should fail for unknown device")
	}
}

// DMA routes between the NIC and node memories must inherit the directed
// node-7 asymmetries: reading host memory on nodes 2,3 (device write path
// toward the device) is starved; writing host memory on node 4 is starved.
func TestDeviceRoutesInheritAsymmetry(t *testing.T) {
	m := DL585G7()
	for _, n := range []NodeID{2, 3} {
		dp, err := m.DeviceRoutes(NIC0, n)
		if err != nil {
			t.Fatal(err)
		}
		if got := m.PathCapacity(dp.FromMemory).Gbps(); got > 27 {
			t.Errorf("NIC read from node %d memory: path %v Gb/s, want starved (<27)", n, got)
		}
	}
	dp, err := m.DeviceRoutes(NIC0, 4)
	if err != nil {
		t.Fatal(err)
	}
	if got := m.PathCapacity(dp.ToMemory).Gbps(); got > 29 {
		t.Errorf("NIC write to node 4 memory: path %v Gb/s, want starved (<29)", got)
	}
}

func TestKindStrings(t *testing.T) {
	if VertexNode.String() != "node" || VertexIOHub.String() != "iohub" || VertexDevice.String() != "device" {
		t.Error("vertex kind strings")
	}
	if LinkHT.String() != "HT" || LinkPCIe.String() != "PCIe" || LinkInternal.String() != "internal" {
		t.Error("link kind strings")
	}
	if DeviceNIC.String() != "nic" || DeviceSSD.String() != "ssd" {
		t.Error("device kind strings")
	}
	if Local.String() != "local" || Neighbor.String() != "neighbor" || Remote.String() != "remote" {
		t.Error("relationship strings")
	}
	if VertexKind(99).String() == "" || LinkKind(99).String() == "" ||
		DeviceKind(99).String() == "" || Relationship(99).String() == "" ||
		MagnyVariant(99).String() == "" {
		t.Error("fallback strings must be nonempty")
	}
}

func TestMustNodePanics(t *testing.T) {
	m := DL585G7()
	defer func() {
		if recover() == nil {
			t.Error("MustNode should panic for unknown node")
		}
	}()
	m.MustNode(42)
}

func TestNodeAccessors(t *testing.T) {
	m := DL585G7()
	n, ok := m.Node(7)
	if !ok || n.ID != 7 || n.Package != 3 || n.Cores != 4 {
		t.Errorf("Node(7) = %+v, %v", n, ok)
	}
	if _, ok := m.Node(99); ok {
		t.Error("Node(99) should not exist")
	}
	ids := m.NodeIDs()
	for i, id := range ids {
		if int(id) != i {
			t.Errorf("NodeIDs[%d] = %d", i, id)
		}
	}
	if m.NumLinks() == 0 || len(m.Links()) != m.NumLinks() {
		t.Error("link accessors inconsistent")
	}
	if len(m.Vertices()) < 8+4 {
		t.Errorf("expected at least 12 vertices, got %d", len(m.Vertices()))
	}
}

func TestEffectiveCoreMultiplier(t *testing.T) {
	if (Node{}).EffectiveCoreMultiplier() != 1 {
		t.Error("zero CoreMultiplier should default to 1")
	}
	if (Node{CoreMultiplier: 0.5}).EffectiveCoreMultiplier() != 0.5 {
		t.Error("explicit CoreMultiplier ignored")
	}
}

func TestLinkPIOResponseFactor(t *testing.T) {
	if (Link{}).PIOResponseFactor() != 1 {
		t.Error("default PIO response factor should be 1")
	}
	if (Link{PIOResponsePenalty: 0.78}).PIOResponseFactor() != 0.78 {
		t.Error("explicit PIO response factor ignored")
	}
}

func TestProfileByName(t *testing.T) {
	for _, name := range []string{"", "dl585g7", "dl585g7-dualport", "testbed",
		"magny-a", "magny-b", "magny-c", "magny-d", "intel-4s4n", "amd-4s8n",
		"amd-8s8n", "hp-blade32"} {
		m, err := ProfileByName(name)
		if err != nil || m == nil {
			t.Errorf("ProfileByName(%q): %v", name, err)
			continue
		}
		if err := m.Validate(); err != nil {
			t.Errorf("ProfileByName(%q): invalid machine: %v", name, err)
		}
	}
	if _, err := ProfileByName("warp"); err == nil {
		t.Error("unknown profile should fail")
	}
}
