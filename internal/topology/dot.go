package topology

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// EncodeDOT writes the machine as a Graphviz digraph: one box per NUMA node
// (grouped into package clusters), ellipses for hubs and devices, and one
// edge per directed link labelled with its capacity. Asymmetric pairs are
// immediately visible as differing labels — render with `dot -Tsvg`.
func (m *Machine) EncodeDOT(w io.Writer) error {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n", m.Name)
	b.WriteString("  rankdir=LR;\n  node [shape=box];\n")

	// Package clusters.
	byPackage := make(map[int][]Node)
	for _, n := range m.Nodes {
		byPackage[n.Package] = append(byPackage[n.Package], n)
	}
	pkgs := make([]int, 0, len(byPackage))
	for p := range byPackage {
		pkgs = append(pkgs, p)
	}
	sort.Ints(pkgs)
	for _, p := range pkgs {
		fmt.Fprintf(&b, "  subgraph cluster_pkg%d {\n    label=\"package %d\";\n", p, p)
		nodes := byPackage[p]
		sort.Slice(nodes, func(i, j int) bool { return nodes[i].ID < nodes[j].ID })
		for _, n := range nodes {
			fmt.Fprintf(&b, "    %q [label=\"node %d\\n%d cores, %s\"];\n",
				NodeVertexID(n.ID), int(n.ID), n.Cores, n.Memory)
		}
		b.WriteString("  }\n")
	}

	// Hubs and devices.
	for _, id := range m.vorder {
		v := m.vertices[id]
		switch v.Kind {
		case VertexIOHub:
			fmt.Fprintf(&b, "  %q [shape=ellipse];\n", v.ID)
		case VertexDevice:
			fmt.Fprintf(&b, "  %q [shape=ellipse, style=dashed];\n", v.ID)
		}
	}

	// Directed links. Symmetric pairs collapse into one double-headed edge
	// to keep the drawing readable; asymmetric pairs stay as two edges.
	drawn := make(map[[2]string]bool)
	for _, l := range m.links {
		if drawn[[2]string{l.From, l.To}] {
			continue
		}
		rev := m.FindLink(l.To, l.From)
		if rev >= 0 && m.links[rev].Capacity == l.Capacity {
			fmt.Fprintf(&b, "  %q -> %q [dir=both, label=%q];\n",
				l.From, l.To, l.Capacity.String())
			drawn[[2]string{l.From, l.To}] = true
			drawn[[2]string{l.To, l.From}] = true
			continue
		}
		fmt.Fprintf(&b, "  %q -> %q [label=%q];\n", l.From, l.To, l.Capacity.String())
		drawn[[2]string{l.From, l.To}] = true
	}
	b.WriteString("}\n")
	_, err := io.WriteString(w, b.String())
	return err
}
