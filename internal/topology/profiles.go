package topology

import (
	"fmt"

	"numaio/internal/units"
)

// Profile-wide default parameters for the AMD Magny-Cours generation.
const (
	defaultCoresPerNode = 4
	defaultLLC          = 5 * units.MiB
	defaultNodeMemory   = 4 * units.GiB

	// ht16 and ht8 are the usable per-direction capacities of 16-bit and
	// 8-bit HT 3.0 links in this calibration.
	ht16 = 46 * units.Gbps
	ht8  = 26 * units.Gbps

	// memBW is the per-node memory controller capacity: a node-local copy
	// (read + write on the same controller) achieves half of this.
	memBW = 106 * units.Gbps

	// coreIssueBW is the aggregate PIO rate four cores can drive.
	coreIssueBW = 37 * units.Gbps

	// Latencies calibrated so the AMD 4P/8-node machine lands at the
	// Table I NUMA factor of ~2.7.
	memLat       = units.Duration(100e-9)
	onPackageLat = units.Duration(25e-9)
	htLat        = units.Duration(82.5e-9)
	hubLat       = units.Duration(30e-9)
	pcieLat      = units.Duration(250e-9)
)

// MagnyVariant selects one of the four published 4P Magny-Cours topology
// variants from Fig. 1 of the paper.
type MagnyVariant int

// Topology variants of Fig. 1.
const (
	VariantA MagnyVariant = iota // Fig. 1(a): twisted ladder, all 16-bit
	VariantB                     // Fig. 1(b): same wiring, diagonal links 8-bit
	VariantC                     // Fig. 1(c): straight ladder
	VariantD                     // Fig. 1(d): package ring + two 8-bit diagonals
)

func (v MagnyVariant) String() string {
	switch v {
	case VariantA:
		return "variant-a"
	case VariantB:
		return "variant-b"
	case VariantC:
		return "variant-c"
	case VariantD:
		return "variant-d"
	default:
		return fmt.Sprintf("MagnyVariant(%d)", int(v))
	}
}

// magnyNodes builds the eight NUMA nodes of a 4P Magny-Cours host:
// package i holds dies 2i and 2i+1.
func magnyNodes() []Node {
	nodes := make([]Node, 8)
	for i := range nodes {
		nodes[i] = Node{
			ID:                 NodeID(i),
			Package:            i / 2,
			Die:                i % 2,
			Cores:              defaultCoresPerNode,
			Memory:             defaultNodeMemory,
			LLC:                defaultLLC,
			MemBandwidth:       memBW,
			MemLatency:         memLat,
			CoreIssueBandwidth: coreIssueBW,
		}
	}
	return nodes
}

type pair struct{ a, b int }

// interPackageWiring returns the inter-package HT link pairs of a variant.
func interPackageWiring(v MagnyVariant) []pair {
	switch v {
	case VariantA, VariantB:
		// Twisted ladder: every package pair connected by two crossed links.
		return []pair{
			{0, 3}, {1, 2}, // A-B
			{0, 5}, {1, 4}, // A-C
			{0, 7}, {1, 6}, // A-D
			{2, 5}, {3, 4}, // B-C
			{2, 7}, {3, 6}, // B-D
			{4, 7}, {5, 6}, // C-D
		}
	case VariantC:
		// Straight ladder: like-numbered dies connect.
		return []pair{
			{0, 2}, {1, 3},
			{0, 4}, {1, 5},
			{0, 6}, {1, 7},
			{2, 4}, {3, 5},
			{2, 6}, {3, 7},
			{4, 6}, {5, 7},
		}
	case VariantD:
		// Package ring with two diagonals.
		return []pair{
			{0, 2}, {1, 3}, // A-B
			{2, 4}, {3, 5}, // B-C
			{4, 6}, {5, 7}, // C-D
			{6, 0}, {7, 1}, // D-A
			{0, 4}, // A-C diagonal
			{3, 6}, // B-D diagonal
		}
	default:
		panic(fmt.Sprintf("topology: unknown variant %v", v))
	}
}

// eightBitLinks returns, for a variant, the set of inter-package pairs that
// use 8-bit instead of 16-bit HT lanes.
func eightBitLinks(v MagnyVariant) map[pair]bool {
	out := make(map[pair]bool)
	switch v {
	case VariantB:
		for _, p := range []pair{{0, 5}, {1, 4}, {2, 7}, {3, 6}} {
			out[p] = true
		}
	case VariantD:
		out[pair{0, 4}] = true
		out[pair{3, 6}] = true
	}
	return out
}

// MagnyCours4P builds one of the Fig. 1 4P Magny-Cours topology variants
// with uniform per-width link capacities. These machines are used to show
// that hop-distance-derived expectations do not match measured bandwidth.
func MagnyCours4P(v MagnyVariant) *Machine {
	m := New("magny-cours-4p-"+v.String(), magnyNodes())
	for p := 0; p < 4; p++ {
		m.AddDuplexLink(NodeVertexID(NodeID(2*p)), NodeVertexID(NodeID(2*p+1)),
			LinkInternal, 16, ht16, onPackageLat)
	}
	narrow := eightBitLinks(v)
	for _, p := range interPackageWiring(v) {
		width, cap := 16, units.Bandwidth(ht16)
		if narrow[p] {
			width, cap = 8, ht8
		}
		m.AddDuplexLink(NodeVertexID(NodeID(p.a)), NodeVertexID(NodeID(p.b)),
			LinkHT, width, cap, htLat)
	}
	return m
}

// Device and hub identifiers of the characterization testbed (Fig. 2).
const (
	IOHub7 = "iohub7"
	NIC0   = "nic0"
	SSD0   = "ssd0"
	SSD1   = "ssd1"
)

// DL585G7 builds the calibrated model of the paper's testbed: an HP ProLiant
// DL585 G7 with four Opteron 6136 packages (8 NUMA nodes), a dual-port
// 40 GbE RoCE NIC and two LSI Nytro SSDs on the I/O hub of node 7.
//
// The wiring follows Fig. 1(a); per-direction capacities and three firmware
// routing-table entries are calibrated so the emergent bandwidth model
// reproduces the measured class structure of Tables IV and V:
//
//   - links into node 7 from package B (nodes 2,3) are response-buffer
//     starved (≈26.5 Gb/s usable) while the opposite direction is full
//     width, giving the write-model class 3 = {2,3};
//   - the 7→4 direction is half-width (≈28 Gb/s), giving the read-model
//     class 4 = {4};
//   - PIO read-response penalties on 7→4 and 2→7 reproduce the STREAM
//     asymmetries of Fig. 3 (21.34 vs 18.45 Gb/s).
func DL585G7() *Machine {
	m := New("hp-dl585-g7", magnyNodes())
	m.OSMemoryFraction = 0.05

	// Intra-package links.
	m.AddAsymLink(NodeVertexID(0), NodeVertexID(1), LinkInternal, 16, 46*units.Gbps, 46*units.Gbps, onPackageLat)
	m.AddAsymLink(NodeVertexID(2), NodeVertexID(3), LinkInternal, 16, 48.5*units.Gbps, 48.5*units.Gbps, onPackageLat)
	m.AddAsymLink(NodeVertexID(4), NodeVertexID(5), LinkInternal, 16, 46*units.Gbps, 46*units.Gbps, onPackageLat)
	m.AddAsymLink(NodeVertexID(6), NodeVertexID(7), LinkInternal, 16, 47*units.Gbps, 47.5*units.Gbps, onPackageLat)

	type dlink struct {
		from, to int
		cap      units.Bandwidth
		width    int
		pioPen   float64
	}
	directed := []dlink{
		// A-B
		{0, 3, 45 * units.Gbps, 16, 0}, {3, 0, 45 * units.Gbps, 16, 0},
		{1, 2, 45 * units.Gbps, 16, 0}, {2, 1, 45 * units.Gbps, 16, 0},
		// A-C
		{0, 5, 44 * units.Gbps, 16, 0}, {5, 0, 44 * units.Gbps, 16, 0},
		{1, 4, 44 * units.Gbps, 16, 0}, {4, 1, 44 * units.Gbps, 16, 0},
		// A-D
		{0, 7, 45.5 * units.Gbps, 16, 0}, {7, 0, 41 * units.Gbps, 16, 0},
		{1, 6, 40 * units.Gbps, 16, 0}, {6, 1, 40.5 * units.Gbps, 16, 0},
		// B-C
		{2, 5, 44 * units.Gbps, 16, 0}, {5, 2, 44 * units.Gbps, 16, 0},
		{3, 4, 44 * units.Gbps, 16, 0}, {4, 3, 44 * units.Gbps, 16, 0},
		// B-D: into node 7 response-buffer starved; out of node 7 full.
		{2, 7, 26.5 * units.Gbps, 16, 0.92}, {7, 2, 49.5 * units.Gbps, 16, 0},
		{3, 6, 26 * units.Gbps, 16, 0}, {6, 3, 44 * units.Gbps, 16, 0},
		// C-D: 7→4 half width.
		{4, 7, 44 * units.Gbps, 16, 0}, {7, 4, 28 * units.Gbps, 8, 0.78},
		{5, 6, 43.5 * units.Gbps, 16, 0}, {6, 5, 40.5 * units.Gbps, 16, 0},
	}
	for _, d := range directed {
		m.AddLink(Link{
			From: NodeVertexID(NodeID(d.from)), To: NodeVertexID(NodeID(d.to)),
			Kind: LinkHT, WidthBits: d.width, Capacity: d.cap, Latency: htLat,
			PIOResponsePenalty: d.pioPen,
		})
	}

	// I/O hub and PCIe devices on node 7 (Fig. 2). The hub-to-node HT link
	// is wide enough not to bottleneck a single adapter; PCIe Gen2 x8
	// yields 32 Gb/s of data bandwidth after 8b/10b encoding.
	m.AddIOHub(IOHub7, 7, 50*units.Gbps, hubLat)
	m.AddDevice(NIC0, DeviceNIC, IOHub7, 32*units.Gbps, pcieLat)
	m.AddDevice(SSD0, DeviceSSD, IOHub7, 32*units.Gbps, pcieLat)
	m.AddDevice(SSD1, DeviceSSD, IOHub7, 32*units.Gbps, pcieLat)

	// Firmware routing-table entries (hop-minimal but not widest): traffic
	// from node 3 to node 7 goes via its package mate; node 7 reaches
	// nodes 1 and 5 via nodes 0 and 6 respectively.
	mustRouteVia(m, NodeVertexID(3), NodeVertexID(2), NodeVertexID(7))
	mustRouteVia(m, NodeVertexID(7), NodeVertexID(0), NodeVertexID(1))
	mustRouteVia(m, NodeVertexID(7), NodeVertexID(6), NodeVertexID(5))
	return m
}

// Dual-port variant identifiers.
const (
	NICCard = "nic0card"
	NIC0P0  = "nic0p0"
	NIC0P1  = "nic0p1"
)

// DL585G7DualPort builds the testbed with both ports of the ConnectX-3
// adapter wired up. The two 40 GbE ports share the card's single PCIe Gen2
// x8 interface (32 Gb/s of data bandwidth), so driving both ports cannot
// exceed the card's host attachment — the adapter-level bottleneck the
// paper's single-port experiments sidestep.
func DL585G7DualPort() *Machine {
	m := DL585G7()
	m.Name = "hp-dl585-g7-dualport"
	m.AddSwitch(NICCard, IOHub7, 32*units.Gbps, pcieLat)
	m.AddDevice(NIC0P0, DeviceNIC, NICCard, 40*units.Gbps, units.Duration(50e-9))
	m.AddDevice(NIC0P1, DeviceNIC, NICCard, 40*units.Gbps, units.Duration(50e-9))
	return m
}

// FindLink returns the index of the first directed link from one vertex to
// another, or -1.
func (m *Machine) FindLink(from, to string) int {
	for _, li := range m.adj[from] {
		if m.links[li].To == to {
			return li
		}
	}
	return -1
}

// RouteVia pins the route along the listed vertices (each consecutive pair
// must be directly linked).
func (m *Machine) RouteVia(vertices ...string) error {
	if len(vertices) < 2 {
		return fmt.Errorf("topology: RouteVia needs at least two vertices")
	}
	var path []int
	for i := 0; i+1 < len(vertices); i++ {
		li := m.FindLink(vertices[i], vertices[i+1])
		if li < 0 {
			return fmt.Errorf("topology: RouteVia: no link %s->%s", vertices[i], vertices[i+1])
		}
		path = append(path, li)
	}
	return m.SetRoute(vertices[0], vertices[len(vertices)-1], path)
}

func mustRouteVia(m *Machine, vertices ...string) {
	if err := m.RouteVia(vertices...); err != nil {
		panic(err)
	}
}

// Intel4S4N builds the 4-socket/4-node Intel machine of Table I
// (NUMA factor ≈ 1.5): a full QPI mesh.
func Intel4S4N() *Machine {
	nodes := make([]Node, 4)
	for i := range nodes {
		nodes[i] = Node{
			ID: NodeID(i), Package: i, Cores: 8,
			Memory: 16 * units.GiB, LLC: 20 * units.MiB,
			MemBandwidth: 180 * units.Gbps, MemLatency: memLat,
			CoreIssueBandwidth: 60 * units.Gbps,
		}
	}
	m := New("intel-4s-4n", nodes)
	for i := 0; i < 4; i++ {
		for j := i + 1; j < 4; j++ {
			m.AddDuplexLink(NodeVertexID(NodeID(i)), NodeVertexID(NodeID(j)),
				LinkHT, 16, 80*units.Gbps, units.Duration(25e-9))
		}
	}
	return m
}

// AMD4S8N builds the 4-socket/8-node AMD machine of Table I (NUMA factor
// ≈ 2.7); it is the Fig. 1(a) wiring with the calibrated latencies.
func AMD4S8N() *Machine {
	m := MagnyCours4P(VariantA)
	m.Name = "amd-4s-8n"
	return m
}

// AMD8S8N builds the 8-socket/8-node AMD machine of Table I (NUMA factor
// ≈ 2.8): eight single-die sockets in a ring with cross links.
func AMD8S8N() *Machine {
	nodes := make([]Node, 8)
	for i := range nodes {
		nodes[i] = Node{
			ID: NodeID(i), Package: i, Cores: 4,
			Memory: defaultNodeMemory, LLC: defaultLLC,
			MemBandwidth: memBW, MemLatency: memLat,
			CoreIssueBandwidth: coreIssueBW,
		}
	}
	m := New("amd-8s-8n", nodes)
	lat := units.Duration(57.3e-9)
	for i := 0; i < 8; i++ {
		m.AddDuplexLink(NodeVertexID(NodeID(i)), NodeVertexID(NodeID((i+1)%8)),
			LinkHT, 16, ht16, lat)
	}
	for i := 0; i < 4; i++ {
		m.AddDuplexLink(NodeVertexID(NodeID(i)), NodeVertexID(NodeID(i+4)),
			LinkHT, 16, ht16, lat)
	}
	return m
}

// HPBlade32 builds the 32-node HP blade system of Table I (NUMA factor
// ≈ 5.5): eight blades of four fully-meshed nodes, blades joined by a ring
// of backplane switches.
func HPBlade32() *Machine {
	const blades, perBlade = 8, 4
	nodes := make([]Node, blades*perBlade)
	for i := range nodes {
		nodes[i] = Node{
			ID: NodeID(i), Package: i / perBlade, Die: i % perBlade, Cores: 4,
			Memory: defaultNodeMemory, LLC: defaultLLC,
			MemBandwidth: memBW, MemLatency: memLat,
			CoreIssueBandwidth: coreIssueBW,
		}
	}
	m := New("hp-blade-32n", nodes)
	// Intra-blade full mesh.
	for b := 0; b < blades; b++ {
		for i := 0; i < perBlade; i++ {
			for j := i + 1; j < perBlade; j++ {
				m.AddDuplexLink(
					NodeVertexID(NodeID(b*perBlade+i)),
					NodeVertexID(NodeID(b*perBlade+j)),
					LinkHT, 16, ht16, units.Duration(30e-9))
			}
		}
	}
	// Backplane: one switch per blade, switches in a ring.
	for b := 0; b < blades; b++ {
		sw := fmt.Sprintf("bswitch%d", b)
		m.addVertex(Vertex{ID: sw, Kind: VertexIOHub, Node: NodeID(b * perBlade)})
		for i := 0; i < perBlade; i++ {
			m.AddDuplexLink(NodeVertexID(NodeID(b*perBlade+i)), sw,
				LinkHT, 16, 40*units.Gbps, units.Duration(40e-9))
		}
	}
	for b := 0; b < blades; b++ {
		m.AddDuplexLink(fmt.Sprintf("bswitch%d", b), fmt.Sprintf("bswitch%d", (b+1)%blades),
			LinkHT, 16, 60*units.Gbps, units.Duration(72e-9))
	}
	return m
}

// ProfileByName returns a canned machine profile by name. Known names:
// dl585g7 (default testbed), dl585g7-dualport, magny-a .. magny-d (Fig. 1 variants),
// intel-4s4n, amd-4s8n, amd-8s8n, hp-blade32.
func ProfileByName(name string) (*Machine, error) {
	switch name {
	case "", "dl585g7", "testbed":
		return DL585G7(), nil
	case "dl585g7-dualport":
		return DL585G7DualPort(), nil
	case "magny-a":
		return MagnyCours4P(VariantA), nil
	case "magny-b":
		return MagnyCours4P(VariantB), nil
	case "magny-c":
		return MagnyCours4P(VariantC), nil
	case "magny-d":
		return MagnyCours4P(VariantD), nil
	case "intel-4s4n":
		return Intel4S4N(), nil
	case "amd-4s8n":
		return AMD4S8N(), nil
	case "amd-8s8n":
		return AMD8S8N(), nil
	case "hp-blade32":
		return HPBlade32(), nil
	default:
		return nil, fmt.Errorf("topology: unknown profile %q (try dl585g7, magny-a..d, intel-4s4n, amd-4s8n, amd-8s8n, hp-blade32)", name)
	}
}

// TableIMachines returns the four server configurations of Table I together
// with the NUMA factor the paper reports for them.
func TableIMachines() []struct {
	Machine *Machine
	Paper   float64
} {
	return []struct {
		Machine *Machine
		Paper   float64
	}{
		{Intel4S4N(), 1.5},
		{AMD4S8N(), 2.7},
		{AMD8S8N(), 2.8},
		{HPBlade32(), 5.5},
	}
}
