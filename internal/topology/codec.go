package topology

import (
	"encoding/json"
	"fmt"
	"io"
)

// JSON codec for machines, so users can model their own hosts and feed them
// to every tool via -machine-file. The on-disk format is explicit about
// vertices, directed links and pinned routes — exactly the information the
// calibrated profiles encode in Go.

type machineJSON struct {
	Name             string      `json:"name"`
	OSMemoryFraction float64     `json:"os_memory_fraction,omitempty"`
	Nodes            []Node      `json:"nodes"`
	Vertices         []Vertex    `json:"vertices,omitempty"` // non-node vertices only
	Links            []Link      `json:"links"`
	Devices          []Device    `json:"devices,omitempty"`
	Routes           []routeJSON `json:"routes,omitempty"`
}

type routeJSON struct {
	From string `json:"from"`
	To   string `json:"to"`
	Path []int  `json:"path"`
}

// EncodeJSON writes the machine in the portable JSON format.
func (m *Machine) EncodeJSON(w io.Writer) error {
	mj := machineJSON{
		Name:             m.Name,
		OSMemoryFraction: m.OSMemoryFraction,
		Nodes:            append([]Node(nil), m.Nodes...),
		Links:            append([]Link(nil), m.links...),
		Devices:          append([]Device(nil), m.devices...),
	}
	for _, id := range m.vorder {
		v := m.vertices[id]
		if v.Kind != VertexNode {
			mj.Vertices = append(mj.Vertices, *v)
		}
	}
	for k, path := range m.routes {
		mj.Routes = append(mj.Routes, routeJSON{From: k.from, To: k.to, Path: append([]int(nil), path...)})
	}
	// Deterministic route order for reproducible files.
	sortRoutes(mj.Routes)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(mj); err != nil {
		return fmt.Errorf("topology: encoding machine: %w", err)
	}
	return nil
}

func sortRoutes(rs []routeJSON) {
	for i := 1; i < len(rs); i++ {
		for j := i; j > 0; j-- {
			a, b := rs[j-1], rs[j]
			if a.From < b.From || (a.From == b.From && a.To <= b.To) {
				break
			}
			rs[j-1], rs[j] = b, a
		}
	}
}

// DecodeJSON reads a machine written by EncodeJSON (or hand-authored) and
// validates it.
func DecodeJSON(r io.Reader) (*Machine, error) {
	var mj machineJSON
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&mj); err != nil {
		return nil, fmt.Errorf("topology: decoding machine: %w", err)
	}
	m := New(mj.Name, mj.Nodes)
	m.OSMemoryFraction = mj.OSMemoryFraction
	for _, v := range mj.Vertices {
		if v.Kind == VertexNode {
			return nil, fmt.Errorf("topology: vertex %q: node vertices are implied by nodes", v.ID)
		}
		m.addVertex(v)
	}
	for i, l := range mj.Links {
		if _, ok := m.vertices[l.From]; !ok {
			return nil, fmt.Errorf("topology: link %d: unknown vertex %q", i, l.From)
		}
		if _, ok := m.vertices[l.To]; !ok {
			return nil, fmt.Errorf("topology: link %d: unknown vertex %q", i, l.To)
		}
		m.AddLink(l)
	}
	for _, d := range mj.Devices {
		hv, ok := m.vertices[d.Hub]
		if !ok {
			return nil, fmt.Errorf("topology: device %q: unknown hub %q", d.ID, d.Hub)
		}
		if _, ok := m.vertices[d.ID]; !ok {
			return nil, fmt.Errorf("topology: device %q has no vertex", d.ID)
		}
		if d.Node != hv.Node {
			return nil, fmt.Errorf("topology: device %q: node %d does not match hub's node %d",
				d.ID, int(d.Node), int(hv.Node))
		}
		m.devices = append(m.devices, d)
	}
	for _, rt := range mj.Routes {
		if err := m.SetRoute(rt.From, rt.To, rt.Path); err != nil {
			return nil, err
		}
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return m, nil
}

// LoadMachine resolves a machine from either a canned profile name or,
// when the name ends in ".json", a machine file.
func LoadMachine(nameOrPath string, open func(string) (io.ReadCloser, error)) (*Machine, error) {
	if len(nameOrPath) > 5 && nameOrPath[len(nameOrPath)-5:] == ".json" {
		f, err := open(nameOrPath)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return DecodeJSON(f)
	}
	return ProfileByName(nameOrPath)
}
