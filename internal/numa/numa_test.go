package numa

import (
	"strings"
	"testing"

	"numaio/internal/simhost"
	"numaio/internal/topology"
	"numaio/internal/units"
)

func newSys(t *testing.T) *System {
	t.Helper()
	s, err := NewSystem(topology.DL585G7())
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestNewSystemValidates(t *testing.T) {
	if _, err := NewSystem(topology.New("bad", nil)); err == nil {
		t.Error("invalid machine should be rejected")
	}
}

func TestSystemCounts(t *testing.T) {
	s := newSys(t)
	if got := s.NumConfiguredNodes(); got != 8 {
		t.Errorf("NumConfiguredNodes = %d, want 8", got)
	}
	if got := s.NumConfiguredCores(); got != 32 {
		t.Errorf("NumConfiguredCores = %d, want 32", got)
	}
	c, err := s.CoresPerNode(3)
	if err != nil || c != 4 {
		t.Errorf("CoresPerNode(3) = %d, %v", c, err)
	}
	if _, err := s.CoresPerNode(42); err == nil {
		t.Error("unknown node should error")
	}
}

func TestDistance(t *testing.T) {
	s := newSys(t)
	if d, err := s.Distance(7, 7); err != nil || d != 10 {
		t.Errorf("Distance(7,7) = %d, %v", d, err)
	}
	if d, err := s.Distance(7, 6); err != nil || d != 20 {
		t.Errorf("Distance(7,6) = %d, %v", d, err)
	}
	if d, err := s.Distance(7, 1); err != nil || d != 30 {
		t.Errorf("Distance(7,1) = %d, %v", d, err)
	}
	if _, err := s.Distance(7, 42); err == nil {
		t.Error("unknown node should error")
	}
}

func TestHardwarePassthrough(t *testing.T) {
	s := newSys(t)
	if !strings.Contains(s.Hardware(), "available: 8 nodes") {
		t.Error("Hardware output malformed")
	}
	if s.Machine().Name != "hp-dl585-g7" {
		t.Error("Machine accessor broken")
	}
	if s.Host() == nil {
		t.Error("Host accessor broken")
	}
}

func TestTaskPinning(t *testing.T) {
	s := newSys(t)
	task := s.NewTask("worker")
	if task.Name() != "worker" {
		t.Error("task name")
	}
	if task.Bound() {
		t.Error("fresh task should be unbound")
	}
	if task.Node() != 0 {
		t.Errorf("fresh task node = %d, want 0", task.Node())
	}
	if err := task.RunOn(5); err != nil {
		t.Fatal(err)
	}
	if !task.Bound() || task.Node() != 5 {
		t.Errorf("after RunOn(5): bound=%v node=%d", task.Bound(), task.Node())
	}
	if err := task.RunOn(99); err == nil {
		t.Error("RunOn unknown node should fail")
	}
}

func TestTaskPolicies(t *testing.T) {
	s := newSys(t)
	task := s.NewTask("t")
	if task.Policy() != simhost.PolicyLocalPreferred {
		t.Error("default policy should be local-preferred")
	}
	if err := task.SetMemPolicy(simhost.PolicyBind, 3); err != nil {
		t.Fatal(err)
	}
	if task.Policy() != simhost.PolicyBind {
		t.Error("policy not applied")
	}
	b, err := task.Alloc(units.GiB)
	if err != nil {
		t.Fatal(err)
	}
	if b.HomeNode() != 3 {
		t.Errorf("bind alloc on %d, want 3", b.HomeNode())
	}
	if err := task.Free(b); err != nil {
		t.Fatal(err)
	}

	// Policy argument validation.
	if err := task.SetMemPolicy(simhost.PolicyBind); err == nil {
		t.Error("bind without node should fail")
	}
	if err := task.SetMemPolicy(simhost.PolicyBind, 1, 2); err == nil {
		t.Error("bind with two nodes should fail")
	}
	if err := task.SetMemPolicy(simhost.PolicyLocalPreferred, 1); err == nil {
		t.Error("local-preferred with node should fail")
	}
	if err := task.SetMemPolicy(simhost.PolicyBind, 99); err == nil {
		t.Error("unknown node should fail")
	}
	if err := task.SetMemPolicy(simhost.Policy(42)); err == nil {
		t.Error("unknown policy should fail")
	}
	if err := task.SetMemPolicy(simhost.PolicyInterleave, 1, 2); err != nil {
		t.Errorf("interleave subset should work: %v", err)
	}
	b, err = task.Alloc(2 * units.GiB)
	if err != nil {
		t.Fatal(err)
	}
	if len(b.Pages) != 2 || b.Pages[1] != units.GiB || b.Pages[2] != units.GiB {
		t.Errorf("interleaved pages = %+v", b.Pages)
	}
}

func TestTaskAllocHelpers(t *testing.T) {
	s := newSys(t)
	task := s.NewTask("t")
	if err := task.RunOn(6); err != nil {
		t.Fatal(err)
	}

	b, err := task.AllocLocal(units.GiB)
	if err != nil {
		t.Fatal(err)
	}
	if b.HomeNode() != 6 {
		t.Errorf("AllocLocal landed on %d, want 6", b.HomeNode())
	}

	b2, err := task.AllocOnNode(units.GiB, 2)
	if err != nil {
		t.Fatal(err)
	}
	if b2.HomeNode() != 2 {
		t.Errorf("AllocOnNode landed on %d", b2.HomeNode())
	}

	b3, err := task.AllocInterleaved(8 * units.GiB)
	if err != nil {
		t.Fatal(err)
	}
	if len(b3.Pages) != 8 {
		t.Errorf("AllocInterleaved spread over %d nodes", len(b3.Pages))
	}

	for _, b := range []*simhost.Buffer{b, b2, b3} {
		if err := task.Free(b); err != nil {
			t.Fatal(err)
		}
	}
	if got := s.FreeMem(6); got != 4*units.GiB {
		t.Errorf("node 6 free = %v after frees", got)
	}
}

// The paper's default-policy scenario: a task running remote from the I/O
// device still allocates locally, so its I/O must cross the fabric.
func TestLocalPreferredStatsFlow(t *testing.T) {
	s := newSys(t)
	task := s.NewTask("app")
	if err := task.RunOn(2); err != nil {
		t.Fatal(err)
	}
	b, err := task.Alloc(512 * units.MiB)
	if err != nil {
		t.Fatal(err)
	}
	if b.HomeNode() != 2 {
		t.Errorf("local-preferred landed on %d, want 2", b.HomeNode())
	}
	st := s.Stats(2)
	if st.NumaHit != 1 || st.LocalNode != 1 {
		t.Errorf("stats(2) = %+v", st)
	}
}

// Concurrent tasks hammer the allocator from many goroutines; run with
// -race to verify the locking.
func TestConcurrentAllocations(t *testing.T) {
	s := newSys(t)
	const workers = 16
	done := make(chan error, workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			task := s.NewTask("worker")
			if err := task.RunOn(topology.NodeID(w % 8)); err != nil {
				done <- err
				return
			}
			for i := 0; i < 50; i++ {
				b, err := task.AllocLocal(units.MiB)
				if err != nil {
					done <- err
					return
				}
				if err := task.Free(b); err != nil {
					done <- err
					return
				}
			}
			done <- nil
		}(w)
	}
	for w := 0; w < workers; w++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	for n := topology.NodeID(1); n < 8; n++ {
		if got := s.FreeMem(n); got != 4*units.GiB {
			t.Errorf("node %d free = %v after concurrent churn", n, got)
		}
	}
}

func TestCoreNodeMapping(t *testing.T) {
	s := newSys(t)
	cases := map[int]topology.NodeID{0: 0, 3: 0, 4: 1, 31: 7, 28: 7, 12: 3}
	for core, want := range cases {
		got, err := s.CoreNode(core)
		if err != nil || got != want {
			t.Errorf("CoreNode(%d) = %d, %v; want %d", core, got, err, want)
		}
	}
	if _, err := s.CoreNode(-1); err == nil {
		t.Error("negative core should fail")
	}
	if _, err := s.CoreNode(32); err == nil {
		t.Error("out-of-range core should fail")
	}
}

func TestRunOnCore(t *testing.T) {
	s := newSys(t)
	task := s.NewTask("pin")
	if err := task.RunOnCore(30); err != nil {
		t.Fatal(err)
	}
	if task.Node() != 7 {
		t.Errorf("core 30 should pin to node 7, got %d", task.Node())
	}
	if err := task.RunOnCore(99); err == nil {
		t.Error("bad core should fail")
	}
}
