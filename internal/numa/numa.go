// Package numa is a libnuma-style user API over the simulated host: tasks
// pin themselves to nodes, set memory policies and allocate buffers exactly
// as a libnuma client would (Sec. II-B of the paper). It is the layer the
// benchmarks (stream, fio) and the characterization tool (core) program
// against.
package numa

import (
	"fmt"
	"sync"

	"numaio/internal/simhost"
	"numaio/internal/topology"
	"numaio/internal/units"
)

// System wraps a simulated host with libnuma-flavoured calls.
type System struct {
	host *simhost.Host
}

// NewSystem boots a system on the given machine.
func NewSystem(m *topology.Machine, opts ...simhost.Option) (*System, error) {
	h, err := simhost.NewHost(m, opts...)
	if err != nil {
		return nil, err
	}
	return &System{host: h}, nil
}

// Host exposes the underlying simulated host.
func (s *System) Host() *simhost.Host { return s.host }

// Machine exposes the underlying machine topology.
func (s *System) Machine() *topology.Machine { return s.host.M }

// NumConfiguredNodes mirrors numa_num_configured_nodes().
func (s *System) NumConfiguredNodes() int { return s.host.M.NumNodes() }

// NumConfiguredCores mirrors numa_num_configured_cpus().
func (s *System) NumConfiguredCores() int {
	total := 0
	for _, n := range s.host.M.Nodes {
		total += n.Cores
	}
	return total
}

// CoresPerNode returns the core count of one node.
func (s *System) CoresPerNode(n topology.NodeID) (int, error) {
	node, ok := s.host.M.Node(n)
	if !ok {
		return 0, fmt.Errorf("numa: unknown node %d", int(n))
	}
	return node.Cores, nil
}

// Distance mirrors numa_distance(): the SLIT entry for (a, b).
func (s *System) Distance(a, b topology.NodeID) (int, error) {
	if a == b {
		return 10, nil
	}
	h, err := s.host.M.HopDistance(a, b)
	if err != nil {
		return 0, err
	}
	return 10 + 10*h, nil
}

// Hardware mirrors "numactl --hardware".
func (s *System) Hardware() string { return s.host.Hardware() }

// FreeMem returns the free memory on a node.
func (s *System) FreeMem(n topology.NodeID) units.Size { return s.host.FreeMem(n) }

// Stats returns the numastat counters of a node.
func (s *System) Stats(n topology.NodeID) simhost.NodeStats { return s.host.Stats(n) }

// Task is a schedulable entity with a CPU binding and a memory policy,
// mirroring a process under numactl control.
type Task struct {
	sys  *System
	name string

	mu          sync.Mutex
	node        topology.NodeID
	bound       bool
	policy      simhost.Policy
	prefNode    topology.NodeID
	interleaved []topology.NodeID
}

// NewTask creates an unbound task (default policy: local-preferred,
// initially running on the lowest node, like a freshly forked process).
func (s *System) NewTask(name string) *Task {
	return &Task{
		sys:    s,
		name:   name,
		node:   s.host.M.NodeIDs()[0],
		policy: simhost.PolicyLocalPreferred,
	}
}

// Name returns the task's name.
func (t *Task) Name() string { return t.name }

// RunOn pins the task's CPU affinity to a node (numactl --cpunodebind).
func (t *Task) RunOn(n topology.NodeID) error {
	if _, ok := t.sys.host.M.Node(n); !ok {
		return fmt.Errorf("numa: task %q: unknown node %d", t.name, int(n))
	}
	t.mu.Lock()
	t.node, t.bound = n, true
	t.mu.Unlock()
	return nil
}

// Node returns the node the task currently runs on.
func (t *Task) Node() topology.NodeID {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.node
}

// Bound reports whether the task was explicitly pinned.
func (t *Task) Bound() bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.bound
}

// SetMemPolicy sets the task's allocation policy. For PolicyBind and
// PolicyPreferred exactly one node must be given; for PolicyInterleave any
// number (none means all nodes); PolicyLocalPreferred takes none.
func (t *Task) SetMemPolicy(p simhost.Policy, nodes ...topology.NodeID) error {
	for _, n := range nodes {
		if _, ok := t.sys.host.M.Node(n); !ok {
			return fmt.Errorf("numa: task %q: unknown node %d", t.name, int(n))
		}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	switch p {
	case simhost.PolicyBind, simhost.PolicyPreferred:
		if len(nodes) != 1 {
			return fmt.Errorf("numa: policy %v needs exactly one node", p)
		}
		t.policy, t.prefNode = p, nodes[0]
	case simhost.PolicyLocalPreferred:
		if len(nodes) != 0 {
			return fmt.Errorf("numa: policy %v takes no nodes", p)
		}
		t.policy = p
	case simhost.PolicyInterleave:
		t.policy = p
		t.interleaved = append([]topology.NodeID(nil), nodes...)
	default:
		return fmt.Errorf("numa: unknown policy %v", p)
	}
	return nil
}

// Policy returns the task's current memory policy.
func (t *Task) Policy() simhost.Policy {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.policy
}

// Alloc allocates a buffer under the task's current policy
// (numa_alloc / malloc under numactl).
func (t *Task) Alloc(size units.Size) (*simhost.Buffer, error) {
	t.mu.Lock()
	req := simhost.AllocRequest{
		Size:            size,
		Policy:          t.policy,
		Target:          t.prefNode,
		TaskNode:        t.node,
		InterleaveNodes: append([]topology.NodeID(nil), t.interleaved...),
	}
	t.mu.Unlock()
	return t.sys.host.Alloc(req)
}

// AllocOnNode allocates strictly on the given node
// (numa_alloc_onnode with a bind policy).
func (t *Task) AllocOnNode(size units.Size, n topology.NodeID) (*simhost.Buffer, error) {
	return t.sys.host.Alloc(simhost.AllocRequest{
		Size: size, Policy: simhost.PolicyBind, Target: n, TaskNode: t.Node(),
	})
}

// AllocLocal allocates on the task's current node, falling back if full
// (numa_alloc_local).
func (t *Task) AllocLocal(size units.Size) (*simhost.Buffer, error) {
	return t.sys.host.Alloc(simhost.AllocRequest{
		Size: size, Policy: simhost.PolicyLocalPreferred, TaskNode: t.Node(),
	})
}

// AllocInterleaved allocates round-robin across all nodes
// (numa_alloc_interleaved).
func (t *Task) AllocInterleaved(size units.Size) (*simhost.Buffer, error) {
	return t.sys.host.Alloc(simhost.AllocRequest{
		Size: size, Policy: simhost.PolicyInterleave, TaskNode: t.Node(),
	})
}

// Free releases a buffer (numa_free).
func (t *Task) Free(b *simhost.Buffer) error { return t.sys.host.Free(b) }

// CoreNode maps a global core index (as printed by Hardware) to its node.
func (s *System) CoreNode(core int) (topology.NodeID, error) {
	if core < 0 {
		return 0, fmt.Errorf("numa: negative core %d", core)
	}
	next := 0
	for _, id := range s.host.M.NodeIDs() {
		n := s.host.M.MustNode(id)
		if core < next+n.Cores {
			return id, nil
		}
		next += n.Cores
	}
	return 0, fmt.Errorf("numa: core %d out of range (%d cores)", core, next)
}

// RunOnCore pins the task via a physical core index (numactl
// --physcpubind). Cores of a node perform identically for memory and I/O
// bandwidth (Sec. IV-A), so core pinning collapses to pinning on the
// owning node.
func (t *Task) RunOnCore(core int) error {
	node, err := t.sys.CoreNode(core)
	if err != nil {
		return fmt.Errorf("numa: task %q: %w", t.name, err)
	}
	return t.RunOn(node)
}
