package units

import (
	"math"
	"testing"
	"testing/quick"
)

func TestBandwidthConversions(t *testing.T) {
	b := 40 * Gbps
	if got := b.Gbps(); got != 40 {
		t.Errorf("Gbps() = %v, want 40", got)
	}
	if got := b.Mbps(); got != 40000 {
		t.Errorf("Mbps() = %v, want 40000", got)
	}
	if got := b.BytesPerSecond(); got != 5e9 {
		t.Errorf("BytesPerSecond() = %v, want 5e9", got)
	}
}

func TestBandwidthString(t *testing.T) {
	cases := []struct {
		in   Bandwidth
		want string
	}{
		{0, "0.00b/s"},
		{512, "512.00b/s"},
		{2 * Kbps, "2.00Kb/s"},
		{25 * Mbps, "25.00Mb/s"},
		{23.3 * Gbps, "23.30Gb/s"},
		{1.5 * Tbps, "1.50Tb/s"},
		{-2 * Gbps, "-2.00Gb/s"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("(%v).String() = %q, want %q", float64(c.in), got, c.want)
		}
	}
}

func TestParseBandwidth(t *testing.T) {
	cases := []struct {
		in   string
		want Bandwidth
	}{
		{"40Gbps", 40 * Gbps},
		{"40 Gb/s", 40 * Gbps},
		{"25gbps", 25 * Gbps},
		{"128Mbps", 128 * Mbps},
		{"9.6 Kb/s", 9.6 * Kbps},
		{"1e9", Gbps},
		{"17bps", 17},
	}
	for _, c := range cases {
		got, err := ParseBandwidth(c.in)
		if err != nil {
			t.Errorf("ParseBandwidth(%q): %v", c.in, err)
			continue
		}
		if math.Abs(float64(got-c.want)) > 1e-6*float64(c.want)+1e-9 {
			t.Errorf("ParseBandwidth(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestParseBandwidthErrors(t *testing.T) {
	for _, in := range []string{"", "fast", "-3Gbps", "Gbps"} {
		if _, err := ParseBandwidth(in); err == nil {
			t.Errorf("ParseBandwidth(%q): expected error", in)
		}
	}
}

func TestSizeConversions(t *testing.T) {
	s := 128 * KiB
	if got := s.Bytes(); got != 131072 {
		t.Errorf("Bytes() = %d, want 131072", got)
	}
	if got := s.Bits(); got != 1048576 {
		t.Errorf("Bits() = %v, want 1048576", got)
	}
	if got := (20 * MiB).MiBf(); got != 20 {
		t.Errorf("MiBf() = %v, want 20", got)
	}
	if got := (400 * GiB).GiBf(); got != 400 {
		t.Errorf("GiBf() = %v, want 400", got)
	}
}

func TestSizeString(t *testing.T) {
	cases := []struct {
		in   Size
		want string
	}{
		{0, "0B"},
		{512, "512B"},
		{128 * KiB, "128.00KiB"},
		{20 * MiB, "20.00MiB"},
		{400 * GiB, "400.00GiB"},
		{2 * TiB, "2.00TiB"},
		{-KiB, "-1.00KiB"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("(%d).String() = %q, want %q", int64(c.in), got, c.want)
		}
	}
}

func TestParseSize(t *testing.T) {
	cases := []struct {
		in   string
		want Size
	}{
		{"128KiB", 128 * KiB},
		{"128k", 128 * KiB},
		{"400GB", 400 * GiB},
		{"20MB", 20 * MiB},
		{"4096", 4096},
		{"1.5m", Size(1.5 * float64(MiB))},
		{"9000b", 9000},
		{"2TiB", 2 * TiB},
	}
	for _, c := range cases {
		got, err := ParseSize(c.in)
		if err != nil {
			t.Errorf("ParseSize(%q): %v", c.in, err)
			continue
		}
		if got != c.want {
			t.Errorf("ParseSize(%q) = %d, want %d", c.in, got, c.want)
		}
	}
}

func TestParseSizeErrors(t *testing.T) {
	for _, in := range []string{"", "big", "-1k", "KiB"} {
		if _, err := ParseSize(in); err == nil {
			t.Errorf("ParseSize(%q): expected error", in)
		}
	}
}

func TestTransferTime(t *testing.T) {
	d := TransferTime(GiB, 8*Gbps)
	want := float64(GiB) * 8 / 8e9
	if math.Abs(d.Seconds()-want) > 1e-12 {
		t.Errorf("TransferTime = %v, want %v", d.Seconds(), want)
	}
	if !math.IsInf(TransferTime(GiB, 0).Seconds(), 1) {
		t.Error("TransferTime at zero bandwidth should be +Inf")
	}
}

func TestRate(t *testing.T) {
	bw := Rate(GiB, Duration(1))
	if got := bw.Gbps(); math.Abs(got-float64(GiB)*8/1e9) > 1e-9 {
		t.Errorf("Rate = %v Gbps", got)
	}
	if Rate(0, 0) != 0 {
		t.Error("Rate(0,0) should be 0")
	}
	if !math.IsInf(float64(Rate(GiB, 0)), 1) {
		t.Error("Rate with zero duration should be +Inf")
	}
}

func TestDurationString(t *testing.T) {
	cases := []struct {
		in   Duration
		want string
	}{
		{0, "0s"},
		{1.5, "1.500s"},
		{5e-3, "5.000ms"},
		{5e-6, "5.000us"},
		{5e-9, "5.000ns"},
		{-2, "-2.000s"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("(%v).String() = %q, want %q", float64(c.in), got, c.want)
		}
	}
}

// Property: TransferTime and Rate are inverses for positive inputs.
func TestTransferRateRoundTrip(t *testing.T) {
	f := func(sz uint32, bwMbps uint16) bool {
		size := Size(int64(sz) + 1)
		bw := Bandwidth(float64(bwMbps)+1) * Mbps
		d := TransferTime(size, bw)
		back := Rate(size, d)
		return math.Abs(float64(back-bw)) < 1e-6*float64(bw)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: String/Parse round-trips for bandwidth at Gb/s granularity.
func TestBandwidthStringParseRoundTrip(t *testing.T) {
	f := func(g uint16) bool {
		bw := Bandwidth(g) * Gbps
		parsed, err := ParseBandwidth(bw.String())
		if err != nil {
			return false
		}
		return math.Abs(float64(parsed-bw)) <= 0.005*float64(bw)+1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
