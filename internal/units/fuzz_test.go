package units

import (
	"math"
	"testing"
)

// FuzzParseSize: the parser must never panic and never return negatives.
func FuzzParseSize(f *testing.F) {
	f.Add("128KiB")
	f.Add("400g")
	f.Add("-3m")
	f.Add("1e18")
	f.Add("kib")
	f.Fuzz(func(t *testing.T, input string) {
		s, err := ParseSize(input)
		if err != nil {
			return
		}
		if s < 0 {
			t.Errorf("ParseSize(%q) = %d, negative", input, s)
		}
	})
}

// FuzzParseBandwidth: same guarantees for bandwidth strings.
func FuzzParseBandwidth(f *testing.F) {
	f.Add("40Gbps")
	f.Add("25 Gb/s")
	f.Add("NaNbps")
	f.Add("")
	f.Fuzz(func(t *testing.T, input string) {
		b, err := ParseBandwidth(input)
		if err != nil {
			return
		}
		if b < 0 || math.IsNaN(float64(b)) {
			t.Errorf("ParseBandwidth(%q) = %v", input, b)
		}
	})
}
