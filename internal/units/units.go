// Package units provides the value types used throughout numaio for
// bandwidth, data size and duration, together with parsing and formatting
// helpers. All bandwidths in the library are carried as Bandwidth (bits per
// second) and all sizes as Size (bytes), so conversions happen exactly once
// at the API boundary.
package units

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Bandwidth is a data rate in bits per second.
type Bandwidth float64

// Common bandwidth units.
const (
	BitPerSecond Bandwidth = 1
	Kbps                   = 1e3 * BitPerSecond
	Mbps                   = 1e6 * BitPerSecond
	Gbps                   = 1e9 * BitPerSecond
	Tbps                   = 1e12 * BitPerSecond
)

// Gbps reports the bandwidth in gigabits per second.
func (b Bandwidth) Gbps() float64 { return float64(b) / 1e9 }

// Mbps reports the bandwidth in megabits per second.
func (b Bandwidth) Mbps() float64 { return float64(b) / 1e6 }

// BytesPerSecond reports the bandwidth in bytes per second.
func (b Bandwidth) BytesPerSecond() float64 { return float64(b) / 8 }

// IsZero reports whether b is exactly zero.
func (b Bandwidth) IsZero() bool { return b == 0 }

// String formats the bandwidth with an auto-selected unit, e.g. "23.30Gb/s".
func (b Bandwidth) String() string {
	v := float64(b)
	neg := ""
	if v < 0 {
		neg = "-"
		v = -v
	}
	switch {
	case v >= 1e12:
		return fmt.Sprintf("%s%.2fTb/s", neg, v/1e12)
	case v >= 1e9:
		return fmt.Sprintf("%s%.2fGb/s", neg, v/1e9)
	case v >= 1e6:
		return fmt.Sprintf("%s%.2fMb/s", neg, v/1e6)
	case v >= 1e3:
		return fmt.Sprintf("%s%.2fKb/s", neg, v/1e3)
	default:
		return fmt.Sprintf("%s%.2fb/s", neg, v)
	}
}

// ParseBandwidth parses strings such as "40Gbps", "25 Gb/s", "128Mb/s",
// "1.5e9" (bare numbers are bits per second).
func ParseBandwidth(s string) (Bandwidth, error) {
	t := strings.TrimSpace(s)
	if t == "" {
		return 0, fmt.Errorf("units: empty bandwidth")
	}
	lower := strings.ToLower(strings.ReplaceAll(t, " ", ""))
	mult := 1.0
	for _, suf := range []struct {
		name string
		mult float64
	}{
		{"tbps", 1e12}, {"tb/s", 1e12},
		{"gbps", 1e9}, {"gb/s", 1e9},
		{"mbps", 1e6}, {"mb/s", 1e6},
		{"kbps", 1e3}, {"kb/s", 1e3},
		{"bps", 1}, {"b/s", 1},
	} {
		if strings.HasSuffix(lower, suf.name) {
			lower = strings.TrimSuffix(lower, suf.name)
			mult = suf.mult
			break
		}
	}
	v, err := strconv.ParseFloat(lower, 64)
	if err != nil {
		return 0, fmt.Errorf("units: parse bandwidth %q: %v", s, err)
	}
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0, fmt.Errorf("units: non-finite bandwidth %q", s)
	}
	if v < 0 {
		return 0, fmt.Errorf("units: negative bandwidth %q", s)
	}
	return Bandwidth(v * mult), nil
}

// Size is a data size in bytes.
type Size int64

// Common size units (binary).
const (
	Byte Size = 1
	KiB       = 1024 * Byte
	MiB       = 1024 * KiB
	GiB       = 1024 * MiB
	TiB       = 1024 * GiB
)

// Bytes reports the size as an int64 byte count.
func (s Size) Bytes() int64 { return int64(s) }

// Bits reports the size in bits.
func (s Size) Bits() float64 { return float64(s) * 8 }

// MiBf reports the size in mebibytes as a float.
func (s Size) MiBf() float64 { return float64(s) / float64(MiB) }

// GiBf reports the size in gibibytes as a float.
func (s Size) GiBf() float64 { return float64(s) / float64(GiB) }

// String formats the size with an auto-selected binary unit, e.g. "128KiB".
func (s Size) String() string {
	v := float64(s)
	neg := ""
	if v < 0 {
		neg = "-"
		v = -v
	}
	switch {
	case v >= float64(TiB):
		return fmt.Sprintf("%s%.2fTiB", neg, v/float64(TiB))
	case v >= float64(GiB):
		return fmt.Sprintf("%s%.2fGiB", neg, v/float64(GiB))
	case v >= float64(MiB):
		return fmt.Sprintf("%s%.2fMiB", neg, v/float64(MiB))
	case v >= float64(KiB):
		return fmt.Sprintf("%s%.2fKiB", neg, v/float64(KiB))
	default:
		return fmt.Sprintf("%s%.0fB", neg, v)
	}
}

// ParseSize parses strings such as "128KiB", "400GB", "20MB", "4096".
// Decimal suffixes (KB/MB/GB/TB) are treated as their binary counterparts,
// matching the conventions of fio job files.
func ParseSize(s string) (Size, error) {
	t := strings.ToLower(strings.ReplaceAll(strings.TrimSpace(s), " ", ""))
	if t == "" {
		return 0, fmt.Errorf("units: empty size")
	}
	mult := int64(1)
	for _, suf := range []struct {
		name string
		mult int64
	}{
		{"tib", int64(TiB)}, {"tb", int64(TiB)}, {"t", int64(TiB)},
		{"gib", int64(GiB)}, {"gb", int64(GiB)}, {"g", int64(GiB)},
		{"mib", int64(MiB)}, {"mb", int64(MiB)}, {"m", int64(MiB)},
		{"kib", int64(KiB)}, {"kb", int64(KiB)}, {"k", int64(KiB)},
		{"b", 1},
	} {
		if strings.HasSuffix(t, suf.name) {
			t = strings.TrimSuffix(t, suf.name)
			mult = suf.mult
			break
		}
	}
	v, err := strconv.ParseFloat(t, 64)
	if err != nil {
		return 0, fmt.Errorf("units: parse size %q: %v", s, err)
	}
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0, fmt.Errorf("units: non-finite size %q", s)
	}
	if v < 0 {
		return 0, fmt.Errorf("units: negative size %q", s)
	}
	return Size(math.Round(v * float64(mult))), nil
}

// Duration is simulated time in seconds. The simulator is analytic, so a
// plain float64 second count is simpler and faster than time.Duration and
// avoids overflow for the paper's 400 GB transfers at low rates.
type Duration float64

// Seconds reports the duration in seconds.
func (d Duration) Seconds() float64 { return float64(d) }

// Milliseconds reports the duration in milliseconds.
func (d Duration) Milliseconds() float64 { return float64(d) * 1e3 }

// Microseconds reports the duration in microseconds.
func (d Duration) Microseconds() float64 { return float64(d) * 1e6 }

// String formats the duration with an auto-selected unit.
func (d Duration) String() string {
	v := float64(d)
	neg := ""
	if v < 0 {
		neg = "-"
		v = -v
	}
	switch {
	case v >= 1:
		return fmt.Sprintf("%s%.3fs", neg, v)
	case v >= 1e-3:
		return fmt.Sprintf("%s%.3fms", neg, v*1e3)
	case v >= 1e-6:
		return fmt.Sprintf("%s%.3fus", neg, v*1e6)
	case v == 0:
		return "0s"
	default:
		return fmt.Sprintf("%s%.3fns", neg, v*1e9)
	}
}

// TransferTime reports how long moving size at rate bw takes.
// A zero bandwidth yields +Inf.
func TransferTime(size Size, bw Bandwidth) Duration {
	if bw <= 0 {
		return Duration(math.Inf(1))
	}
	return Duration(size.Bits() / float64(bw))
}

// Rate reports the bandwidth achieved moving size in d.
// A non-positive duration yields +Inf bandwidth for a positive size.
func Rate(size Size, d Duration) Bandwidth {
	if d <= 0 {
		if size <= 0 {
			return 0
		}
		return Bandwidth(math.Inf(1))
	}
	return Bandwidth(size.Bits() / float64(d))
}
