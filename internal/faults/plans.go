package faults

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strings"
)

// Named built-in fault plans, the -chaos presets of cmd/iomodel and
// cmd/paperbench. Link faults reference the DL585 G7 testbed's vertex
// names (Fig. 2), since that is the machine the paper's sweeps run on.
var namedPlans = map[string]Plan{
	// flaky-measurements: no topology damage, only unreliable measurement
	// machinery — transient failures, hangs and outliers the retry/timeout/
	// MAD pipeline must absorb.
	"flaky-measurements": {
		Name: "flaky-measurements",
		Seed: 1,
		Measurement: MeasurementFault{
			FailureRate: 0.08,
			HangRate:    0.04,
			OutlierRate: 0.08,
			Noise:       0.03,
		},
	},
	// degraded-ht: the on-package HT link of the target node's package runs
	// at half width (a re-seated socket, a BIOS link-speed downgrade), plus
	// the usual measurement noise. Classes re-order — the survival report
	// shows which.
	"degraded-ht": {
		Name: "degraded-ht",
		Seed: 1,
		Links: []LinkFault{
			{A: "node6", B: "node7", Factor: 0.5},
		},
		Measurement: MeasurementFault{Noise: 0.02},
	},
	// slow-devices: every DMA engine at 60% for a third of measurements —
	// a thermally throttled NIC/SSD. Memcpy characterization is unaffected
	// (Algorithm 1's point: no device involved); device-backed fio runs see
	// it.
	"slow-devices": {
		Name: "slow-devices",
		Seed: 1,
		Devices: []DeviceFault{
			{Factor: 0.6, Probability: 0.33},
		},
		Measurement: MeasurementFault{Noise: 0.02},
	},
	// chaos: everything at once — the full resilience gauntlet.
	"chaos": {
		Name: "chaos",
		Seed: 1,
		Links: []LinkFault{
			{A: "node6", B: "node7", Factor: 0.6},
			{A: "node0", B: "node1", Factor: 0.8},
		},
		Devices: []DeviceFault{
			{Factor: 0.5, Probability: 0.25},
		},
		Measurement: MeasurementFault{
			FailureRate: 0.10,
			HangRate:    0.05,
			OutlierRate: 0.10,
			Noise:       0.05,
		},
	},
}

// PlanNames lists the built-in plan names in stable order.
func PlanNames() []string {
	names := make([]string, 0, len(namedPlans))
	for n := range namedPlans {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Named returns a built-in plan by name.
func Named(name string) (Plan, error) {
	p, ok := namedPlans[name]
	if !ok {
		return Plan{}, fmt.Errorf("faults: unknown plan %q (have %s)",
			name, strings.Join(PlanNames(), ", "))
	}
	return p, nil
}

// Load resolves a plan reference: a built-in name, or a path to a JSON
// plan file (anything containing a path separator or ending in .json).
func Load(ref string) (Plan, error) {
	if strings.ContainsAny(ref, "/\\") || strings.HasSuffix(ref, ".json") {
		return LoadPlan(ref)
	}
	if p, err := Named(ref); err == nil {
		return p, nil
	} else if _, statErr := os.Stat(ref); statErr != nil {
		return Plan{}, err
	}
	return LoadPlan(ref)
}

// Resolve resolves a raw JSON plan value: a string — a Load reference
// (built-in name or plan-file path) — or an inline plan object, strictly
// decoded and validated. It is the form scenario suite files embed.
func Resolve(raw json.RawMessage) (Plan, error) {
	var ref string
	if err := json.Unmarshal(raw, &ref); err == nil {
		return Load(ref)
	}
	var p Plan
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&p); err != nil {
		return Plan{}, fmt.Errorf("faults: plan must be a name, a .json path or an inline plan object: %w", err)
	}
	if err := p.Validate(); err != nil {
		return Plan{}, err
	}
	return p, nil
}
