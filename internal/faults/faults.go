// Package faults injects deterministic, seedable faults into the simulated
// testbed: degraded interconnect links, slowed or failed device DMA
// engines, and flaky measurements (transient failures, hangs, outliers,
// extra noise). A Plan names the faults; an Injector answers, for any
// measurement key, whether and how that measurement is disturbed.
//
// Every decision is a pure function of (plan seed, decision kind, key) via
// an avalanched FNV hash (see roll). Nothing depends on wall
// time, operation order or which worker runs a measurement, so a chaos
// characterization is bit-identical at any core.Config.Parallelism — the
// property the chaos determinism tests assert. "Failure windows" are
// therefore expressed in key space (a probability over measurement keys),
// not in time. See docs/RESILIENCE.md for the full contract.
package faults

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"os"

	"numaio/internal/fabric"
	"numaio/internal/resilience"
	"numaio/internal/topology"
)

// Injected fault errors. Both are marked transient (resilience.IsTransient)
// because a retry re-rolls under a new attempt key and may well succeed —
// exactly how flaky hardware behaves.
var (
	// ErrInjectedFailure is returned by a measurement the plan fails.
	ErrInjectedFailure = resilience.MarkTransient(errors.New("faults: injected measurement failure"))
	// ErrDeviceOffline is returned when the plan takes a device offline.
	ErrDeviceOffline = resilience.MarkTransient(errors.New("faults: injected device failure"))
)

// LinkFault degrades the interconnect link(s) between two topology
// vertices (both directions when a duplex pair exists), like
// topology.DegradeLinkBetween but applied at solve time so the machine
// itself stays pristine.
type LinkFault struct {
	// A and B are vertex names, e.g. "node2" and "node7".
	A string `json:"a"`
	B string `json:"b"`
	// Factor scales the link capacity; (0, 1] — 0.5 halves the link.
	Factor float64 `json:"factor"`
}

// DeviceFault slows or fails a device's DMA engine.
type DeviceFault struct {
	// Device is the device ID; "" matches every device.
	Device string `json:"device,omitempty"`
	// Factor scales the engine ceiling; 0 takes the device offline
	// (measurements against it fail with ErrDeviceOffline).
	Factor float64 `json:"factor"`
	// Probability is the fraction of measurement keys the fault applies to;
	// 0 means 1 (always). This is the key-space analogue of a failure
	// window: with 0.3, a deterministic 30% of measurements see the fault.
	Probability float64 `json:"probability,omitempty"`
}

// MeasurementFault makes individual measurements misbehave.
type MeasurementFault struct {
	// FailureRate is the probability a measurement attempt fails
	// transiently (ErrInjectedFailure).
	FailureRate float64 `json:"failure_rate,omitempty"`
	// HangRate is the probability an attempt hangs until its context
	// deadline — exercising the per-measurement timeout machinery.
	HangRate float64 `json:"hang_rate,omitempty"`
	// OutlierRate is the probability a reported sample is scaled by
	// OutlierFactor — the bad data the MAD rejection must catch.
	OutlierRate float64 `json:"outlier_rate,omitempty"`
	// OutlierFactor scales outlier samples; 0 means 0.5.
	OutlierFactor float64 `json:"outlier_factor,omitempty"`
	// Noise is extra multiplicative measurement noise (a sigma, like
	// core.Config.Sigma) applied on top of the runner's own jitter.
	Noise float64 `json:"noise,omitempty"`
}

// Plan is a named, seeded set of faults.
type Plan struct {
	Name string `json:"name,omitempty"`
	// Seed decorrelates the fault draws of otherwise identical plans; the
	// same seed always produces the same faults.
	Seed        uint64           `json:"seed,omitempty"`
	Links       []LinkFault      `json:"links,omitempty"`
	Devices     []DeviceFault    `json:"devices,omitempty"`
	Measurement MeasurementFault `json:"measurement,omitempty"`
}

// Validate checks every rate and factor is in range.
func (p Plan) Validate() error {
	for _, l := range p.Links {
		if l.A == "" || l.B == "" {
			return fmt.Errorf("faults: link fault needs both vertex names, got %q-%q", l.A, l.B)
		}
		if l.Factor <= 0 || l.Factor > 1 {
			return fmt.Errorf("faults: link %s-%s factor %v out of (0,1]", l.A, l.B, l.Factor)
		}
	}
	for _, d := range p.Devices {
		if d.Factor < 0 || d.Factor > 1 {
			return fmt.Errorf("faults: device %q factor %v out of [0,1]", d.Device, d.Factor)
		}
		if d.Probability < 0 || d.Probability > 1 {
			return fmt.Errorf("faults: device %q probability %v out of [0,1]", d.Device, d.Probability)
		}
	}
	m := p.Measurement
	for _, r := range []struct {
		name string
		v    float64
	}{
		{"failure_rate", m.FailureRate},
		{"hang_rate", m.HangRate},
		{"outlier_rate", m.OutlierRate},
	} {
		if r.v < 0 || r.v > 1 {
			return fmt.Errorf("faults: measurement %s %v out of [0,1]", r.name, r.v)
		}
	}
	if m.OutlierFactor < 0 {
		return fmt.Errorf("faults: negative outlier factor %v", m.OutlierFactor)
	}
	if m.Noise < 0 || m.Noise >= 1 {
		return fmt.Errorf("faults: measurement noise %v out of [0,1)", m.Noise)
	}
	return nil
}

// Injector answers fault questions for measurement keys under one plan.
// It is stateless after construction and safe for concurrent use.
type Injector struct {
	plan Plan
}

// New validates the plan and builds its injector.
func New(plan Plan) (*Injector, error) {
	if err := plan.Validate(); err != nil {
		return nil, err
	}
	return &Injector{plan: plan}, nil
}

// Plan returns the injector's plan.
func (i *Injector) Plan() Plan { return i.plan }

// roll is the deterministic uniform draw behind every decision: a pure
// function of (seed, decision kind, key). The FNV sum is finalized with a
// splitmix64 avalanche: raw FNV-1a ends in (hash ^ byte) * prime, so keys
// differing only in a trailing digit — adjacent repeats of one cell —
// land within ~2^-12 of each other and would cross a probability
// threshold together. The finalizer decorrelates them.
func (i *Injector) roll(kind, key string) float64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "faults:%d:%s:%s", i.plan.Seed, kind, key)
	x := h.Sum64()
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return float64(x%(1<<52)) / float64(int64(1)<<52)
}

// FailAttempt reports whether the measurement attempt identified by key is
// failed by the plan.
func (i *Injector) FailAttempt(key string) bool {
	r := i.plan.Measurement.FailureRate
	return r > 0 && i.roll("fail", key) < r
}

// HangAttempt reports whether the attempt hangs until its deadline.
func (i *Injector) HangAttempt(key string) bool {
	r := i.plan.Measurement.HangRate
	return r > 0 && i.roll("hang", key) < r
}

// SampleFactor returns the multiplicative disturbance of a reported
// sample: outlier scaling (with probability OutlierRate) plus extra noise.
// 1 means the sample is untouched.
func (i *Injector) SampleFactor(key string) float64 {
	f := 1.0
	m := i.plan.Measurement
	if m.OutlierRate > 0 && i.roll("outlier", key) < m.OutlierRate {
		of := m.OutlierFactor
		if of == 0 {
			of = 0.5
		}
		f *= of
	}
	if m.Noise > 0 {
		f *= 1 + m.Noise*(2*i.roll("noise", key)-1)
	}
	return f
}

// DeviceFactor returns the capacity scale of a device's DMA engine for the
// measurement identified by key, or ErrDeviceOffline when a matching fault
// takes the device down. Matching faults compose multiplicatively.
func (i *Injector) DeviceFactor(deviceID, key string) (float64, error) {
	f := 1.0
	for idx, d := range i.plan.Devices {
		if d.Device != "" && d.Device != deviceID {
			continue
		}
		if d.Probability > 0 && d.Probability < 1 {
			if i.roll(fmt.Sprintf("dev%d", idx), deviceID+"|"+key) >= d.Probability {
				continue
			}
		}
		if d.Factor == 0 {
			return 0, fmt.Errorf("faults: device %q offline for %q: %w", deviceID, key, ErrDeviceOffline)
		}
		f *= d.Factor
	}
	return f, nil
}

// LinkScales resolves the plan's link faults against a machine into
// capacity factors for fabric link resources, scaling both directions of a
// duplex pair like topology.DegradeLinkBetween. Unknown vertex pairs are
// an error.
func (i *Injector) LinkScales(m *topology.Machine) (map[fabric.ResourceID]float64, error) {
	if len(i.plan.Links) == 0 {
		return nil, nil
	}
	scales := make(map[fabric.ResourceID]float64)
	for _, l := range i.plan.Links {
		found := false
		if idx := m.FindLink(l.A, l.B); idx >= 0 {
			scales[fabric.LinkResource(idx)] = scaleFor(scales, fabric.LinkResource(idx)) * l.Factor
			found = true
		}
		if idx := m.FindLink(l.B, l.A); idx >= 0 {
			scales[fabric.LinkResource(idx)] = scaleFor(scales, fabric.LinkResource(idx)) * l.Factor
			found = true
		}
		if !found {
			return nil, fmt.Errorf("faults: no link between %q and %q on %s", l.A, l.B, m.Name)
		}
	}
	return scales, nil
}

func scaleFor(scales map[fabric.ResourceID]float64, id fabric.ResourceID) float64 {
	if f, ok := scales[id]; ok {
		return f
	}
	return 1
}

// LoadPlan reads a plan from a JSON file (strict: unknown fields are an
// error) and validates it.
func LoadPlan(path string) (Plan, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Plan{}, fmt.Errorf("faults: %w", err)
	}
	var p Plan
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&p); err != nil {
		return Plan{}, fmt.Errorf("faults: parsing %s: %w", path, err)
	}
	if err := p.Validate(); err != nil {
		return Plan{}, fmt.Errorf("faults: %s: %w", path, err)
	}
	return p, nil
}
