package faults

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"numaio/internal/fabric"
	"numaio/internal/resilience"
	"numaio/internal/topology"
)

func mustInjector(t *testing.T, p Plan) *Injector {
	t.Helper()
	inj, err := New(p)
	if err != nil {
		t.Fatal(err)
	}
	return inj
}

func TestPlanValidate(t *testing.T) {
	cases := []struct {
		name string
		plan Plan
		ok   bool
	}{
		{"empty plan", Plan{}, true},
		{"full valid plan", Plan{
			Links:       []LinkFault{{A: "node0", B: "node1", Factor: 0.5}},
			Devices:     []DeviceFault{{Factor: 0.5, Probability: 0.5}},
			Measurement: MeasurementFault{FailureRate: 0.1, HangRate: 0.1, OutlierRate: 0.1, Noise: 0.1},
		}, true},
		{"offline device", Plan{Devices: []DeviceFault{{Device: "ssd0", Factor: 0}}}, true},
		{"link factor zero", Plan{Links: []LinkFault{{A: "a", B: "b", Factor: 0}}}, false},
		{"link factor above one", Plan{Links: []LinkFault{{A: "a", B: "b", Factor: 1.5}}}, false},
		{"link missing vertex", Plan{Links: []LinkFault{{A: "a", Factor: 0.5}}}, false},
		{"negative failure rate", Plan{Measurement: MeasurementFault{FailureRate: -0.1}}, false},
		{"hang rate above one", Plan{Measurement: MeasurementFault{HangRate: 1.5}}, false},
		{"noise of one", Plan{Measurement: MeasurementFault{Noise: 1}}, false},
		{"device probability above one", Plan{Devices: []DeviceFault{{Factor: 0.5, Probability: 2}}}, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.plan.Validate()
			if (err == nil) != tc.ok {
				t.Fatalf("Validate() = %v, want ok=%v", err, tc.ok)
			}
		})
	}
}

// TestDecisionsAreDeterministic is the heart of the package: every decision
// is a pure function of (seed, kind, key), so repeated asks — from any
// goroutine, in any order — agree.
func TestDecisionsAreDeterministic(t *testing.T) {
	plan := Plan{
		Seed: 42,
		Measurement: MeasurementFault{
			FailureRate: 0.3, HangRate: 0.2, OutlierRate: 0.3, Noise: 0.1,
		},
		Devices: []DeviceFault{{Factor: 0.5, Probability: 0.5}},
	}
	a, b := mustInjector(t, plan), mustInjector(t, plan)
	for i := 0; i < 200; i++ {
		key := fmt.Sprintf("iomodel-write-t7-n%d-r%d", i%8, i/8)
		if a.FailAttempt(key) != b.FailAttempt(key) {
			t.Fatalf("FailAttempt(%q) disagrees between identical injectors", key)
		}
		if a.HangAttempt(key) != b.HangAttempt(key) {
			t.Fatalf("HangAttempt(%q) disagrees", key)
		}
		if a.SampleFactor(key) != b.SampleFactor(key) {
			t.Fatalf("SampleFactor(%q) disagrees", key)
		}
		fa, errA := a.DeviceFactor("nic0", key)
		fb, errB := b.DeviceFactor("nic0", key)
		if fa != fb || (errA == nil) != (errB == nil) {
			t.Fatalf("DeviceFactor(%q) disagrees", key)
		}
	}
}

// TestAdjacentKeysDecorrelate guards the roll finalizer: raw FNV-1a maps
// keys that differ only in a trailing digit — adjacent repeats of one
// measurement cell — to nearly identical values, so a whole cell would
// cross a probability threshold together (and a uniformly scaled row is
// invisible to MAD rejection). With the avalanche, per-repeat draws are
// independent.
func TestAdjacentKeysDecorrelate(t *testing.T) {
	inj := mustInjector(t, Plan{Seed: 3, Measurement: MeasurementFault{OutlierRate: 0.2, OutlierFactor: 0.3}})
	for n := 0; n < 16; n++ {
		hot := 0
		const reps = 8
		for r := 0; r < reps; r++ {
			if inj.SampleFactor(fmt.Sprintf("m/iomodel-write-t7-n%d-r%d", n, r)) != 1 {
				hot++
			}
		}
		if hot == reps {
			t.Fatalf("node %d: all %d repeats drew the outlier at rate 0.2 — trailing-digit keys are correlated", n, reps)
		}
	}
}

func TestSeedDecorrelates(t *testing.T) {
	mk := func(seed uint64) *Injector {
		return mustInjector(t, Plan{Seed: seed, Measurement: MeasurementFault{FailureRate: 0.5}})
	}
	a, b := mk(1), mk(2)
	same := 0
	const n = 256
	for i := 0; i < n; i++ {
		key := fmt.Sprintf("cell-%d", i)
		if a.FailAttempt(key) == b.FailAttempt(key) {
			same++
		}
	}
	if same == n {
		t.Fatal("different seeds produced identical fault draws")
	}
}

func TestRatesRoughlyHold(t *testing.T) {
	inj := mustInjector(t, Plan{Measurement: MeasurementFault{FailureRate: 0.25}})
	fails := 0
	const n = 2000
	for i := 0; i < n; i++ {
		if inj.FailAttempt(fmt.Sprintf("key-%d", i)) {
			fails++
		}
	}
	got := float64(fails) / n
	if got < 0.15 || got > 0.35 {
		t.Fatalf("failure rate %v over %d keys, want ~0.25", got, n)
	}
}

func TestInjectedErrorsAreTransient(t *testing.T) {
	if !resilience.IsTransient(ErrInjectedFailure) {
		t.Fatal("ErrInjectedFailure must be transient")
	}
	if !resilience.IsTransient(ErrDeviceOffline) {
		t.Fatal("ErrDeviceOffline must be transient")
	}
}

func TestDeviceFactor(t *testing.T) {
	inj := mustInjector(t, Plan{Devices: []DeviceFault{
		{Device: "ssd0", Factor: 0.5},
		{Factor: 0.8},
	}})
	f, err := inj.DeviceFactor("ssd0", "run1")
	if err != nil {
		t.Fatal(err)
	}
	if want := 0.5 * 0.8; f != want {
		t.Fatalf("ssd0 factor %v, want %v (specific and wildcard compose)", f, want)
	}
	f, err = inj.DeviceFactor("nic0", "run1")
	if err != nil {
		t.Fatal(err)
	}
	if f != 0.8 {
		t.Fatalf("nic0 factor %v, want 0.8 (wildcard only)", f)
	}

	off := mustInjector(t, Plan{Devices: []DeviceFault{{Device: "nic0", Factor: 0}}})
	if _, err := off.DeviceFactor("nic0", "run1"); !errors.Is(err, ErrDeviceOffline) {
		t.Fatalf("offline device error = %v, want ErrDeviceOffline", err)
	}
	if _, err := off.DeviceFactor("ssd0", "run1"); err != nil {
		t.Fatalf("unmatched device errored: %v", err)
	}
}

func TestLinkScales(t *testing.T) {
	m := topology.DL585G7()
	inj := mustInjector(t, Plan{Links: []LinkFault{{A: "node6", B: "node7", Factor: 0.5}}})
	scales, err := inj.LinkScales(m)
	if err != nil {
		t.Fatal(err)
	}
	// Both directions of the duplex pair must be scaled.
	fwd, rev := m.FindLink("node6", "node7"), m.FindLink("node7", "node6")
	if fwd < 0 || rev < 0 {
		t.Fatalf("testbed lost its node6-node7 links (%d, %d)", fwd, rev)
	}
	for _, idx := range []int{fwd, rev} {
		if f := scales[fabric.LinkResource(idx)]; f != 0.5 {
			t.Fatalf("link %d scale %v, want 0.5", idx, f)
		}
	}

	bad := mustInjector(t, Plan{Links: []LinkFault{{A: "node0", B: "nowhere", Factor: 0.5}}})
	if _, err := bad.LinkScales(m); err == nil {
		t.Fatal("unknown link pair must error")
	}
}

func TestScaleResourcesAppliesFactors(t *testing.T) {
	res := []fabric.Resource{
		{ID: fabric.LinkResource(0), Capacity: 100},
		{ID: fabric.LinkResource(1), Capacity: 100},
	}
	fabric.ScaleResources(res, map[fabric.ResourceID]float64{fabric.LinkResource(1): 0.25})
	if res[0].Capacity != 100 || res[1].Capacity != 25 {
		t.Fatalf("capacities %v/%v, want 100/25", res[0].Capacity, res[1].Capacity)
	}
}

func TestNamedPlansValidate(t *testing.T) {
	names := PlanNames()
	if len(names) == 0 {
		t.Fatal("no built-in plans")
	}
	m := topology.DL585G7()
	for _, name := range names {
		p, err := Named(name)
		if err != nil {
			t.Fatal(err)
		}
		if p.Name != name {
			t.Fatalf("plan %q carries name %q", name, p.Name)
		}
		inj, err := New(p)
		if err != nil {
			t.Fatalf("plan %q invalid: %v", name, err)
		}
		// Every built-in link fault must resolve on the paper's testbed.
		if _, err := inj.LinkScales(m); err != nil {
			t.Fatalf("plan %q does not apply to the testbed: %v", name, err)
		}
	}
	if _, err := Named("no-such-plan"); err == nil {
		t.Fatal("unknown plan name must error")
	}
}

func TestLoadPlanJSON(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "plan.json")
	body := `{
		"name": "custom",
		"seed": 7,
		"links": [{"a": "node0", "b": "node1", "factor": 0.5}],
		"measurement": {"failure_rate": 0.1}
	}`
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	p, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if p.Name != "custom" || p.Seed != 7 || len(p.Links) != 1 || p.Measurement.FailureRate != 0.1 {
		t.Fatalf("loaded plan %+v", p)
	}

	// Built-in names resolve through Load too.
	if _, err := Load("chaos"); err != nil {
		t.Fatal(err)
	}

	// Strict decoding: unknown fields are an error.
	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte(`{"nope": 1}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(bad); err == nil {
		t.Fatal("unknown plan field must error")
	}
	// Out-of-range values are rejected at load time.
	invalid := filepath.Join(dir, "invalid.json")
	if err := os.WriteFile(invalid, []byte(`{"measurement": {"failure_rate": 2}}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(invalid); err == nil {
		t.Fatal("invalid plan must fail validation at load")
	}
}
