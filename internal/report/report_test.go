package report

import (
	"strings"
	"testing"

	"numaio/internal/units"
)

func TestTableRender(t *testing.T) {
	tb := NewTable("Demo", "Node", "BW")
	tb.AddRow("0", "23.3")
	tb.AddRow("1") // short row padded
	out := tb.Render()
	if !strings.Contains(out, "Demo") || !strings.Contains(out, "Node") ||
		!strings.Contains(out, "23.3") {
		t.Errorf("render missing content:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // title, header, separator, two rows
		t.Errorf("render has %d lines:\n%s", len(lines), out)
	}
	// Columns aligned: header and row share the separator width.
	if !strings.Contains(lines[2], "----") {
		t.Errorf("separator missing: %q", lines[2])
	}
}

func TestTableMarkdown(t *testing.T) {
	tb := NewTable("T", "A", "B")
	tb.AddRow("1", "2")
	md := tb.Markdown()
	for _, want := range []string{"**T**", "| A | B |", "| --- | --- |", "| 1 | 2 |"} {
		if !strings.Contains(md, want) {
			t.Errorf("markdown missing %q:\n%s", want, md)
		}
	}
}

func TestTableCSV(t *testing.T) {
	tb := NewTable("", "A", "B")
	tb.AddRow("plain", `with,comma and "quote"`)
	csv := tb.CSV()
	if !strings.Contains(csv, `"with,comma and ""quote"""`) {
		t.Errorf("CSV quoting broken:\n%s", csv)
	}
	if !strings.HasPrefix(csv, "A,B\n") {
		t.Errorf("CSV header broken:\n%s", csv)
	}
}

func TestFormatters(t *testing.T) {
	if Gbps(23.34*units.Gbps) != "23.3" {
		t.Error("Gbps")
	}
	if Gbps2(23.345*units.Gbps) != "23.35" && Gbps2(23.345*units.Gbps) != "23.34" {
		t.Errorf("Gbps2 = %q", Gbps2(23.345*units.Gbps))
	}
	if Range(26*units.Gbps, 27.3*units.Gbps) != "26.0 – 27.3" {
		t.Errorf("Range = %q", Range(26*units.Gbps, 27.3*units.Gbps))
	}
}

func TestSeriesTable(t *testing.T) {
	s1 := Series{Name: "node6", Labels: []string{"1", "2"}, Values: []units.Bandwidth{5 * units.Gbps, 10 * units.Gbps}}
	s2 := Series{Name: "node7", Labels: []string{"1", "2"}, Values: []units.Bandwidth{4 * units.Gbps, 9 * units.Gbps}}
	tb, err := SeriesTable("Fig", "streams", s1, s2)
	if err != nil {
		t.Fatal(err)
	}
	out := tb.Render()
	for _, want := range []string{"streams", "node6", "node7", "10.00", "9.00"} {
		if !strings.Contains(out, want) {
			t.Errorf("series table missing %q:\n%s", want, out)
		}
	}
	if _, err := SeriesTable("x", "l"); err == nil {
		t.Error("no series should fail")
	}
	bad := Series{Name: "bad", Labels: []string{"1"}, Values: nil}
	if _, err := SeriesTable("x", "l", s1, bad); err == nil {
		t.Error("inconsistent series should fail")
	}
}

func TestBarChart(t *testing.T) {
	var c BarChart
	c.Title = "Fig. 10"
	c.Add("node7", 53*units.Gbps)
	c.Add("node2", 26.5*units.Gbps)
	c.Add("tiny", 0.01*units.Gbps)
	out, err := c.Render()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "Fig. 10") || !strings.Contains(out, "53.00") {
		t.Errorf("chart missing content:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// Largest value fills the bar; the smaller one is shorter but nonzero.
	full := strings.Count(lines[1], "#")
	half := strings.Count(lines[2], "#")
	tiny := strings.Count(lines[3], "#")
	if full != 40 {
		t.Errorf("max bar = %d chars, want 40", full)
	}
	if half >= full || half < 15 {
		t.Errorf("half bar = %d chars", half)
	}
	if tiny != 1 {
		t.Errorf("tiny bar = %d chars, want 1 (visibility floor)", tiny)
	}

	bad := BarChart{Labels: []string{"a"}}
	if _, err := bad.Render(); err == nil {
		t.Error("mismatched chart should fail")
	}
	empty := BarChart{}
	if _, err := empty.Render(); err == nil {
		t.Error("empty chart should fail")
	}
	neg := BarChart{Labels: []string{"a"}, Values: []units.Bandwidth{-1}}
	if _, err := neg.Render(); err == nil {
		t.Error("negative value should fail")
	}
	zero := BarChart{Labels: []string{"a"}, Values: []units.Bandwidth{0}, Width: 10}
	out, err = zero.Render()
	if err != nil || strings.Count(out, "#") != 0 {
		t.Errorf("all-zero chart should render empty bars: %q, %v", out, err)
	}
}
