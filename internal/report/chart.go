package report

import (
	"fmt"
	"strings"

	"numaio/internal/units"
)

// BarChart renders a horizontal ASCII bar chart — the terminal stand-in for
// the paper's bar figures (Figs. 4, 10). Bars scale to the largest value;
// each row shows the label, the bar and the numeric value in Gb/s.
type BarChart struct {
	Title  string
	Width  int // bar width in characters; 0 means 40
	Labels []string
	Values []units.Bandwidth
}

// Add appends one bar.
func (b *BarChart) Add(label string, v units.Bandwidth) {
	b.Labels = append(b.Labels, label)
	b.Values = append(b.Values, v)
}

// Render draws the chart.
func (b *BarChart) Render() (string, error) {
	if len(b.Labels) != len(b.Values) {
		return "", fmt.Errorf("report: chart has %d labels for %d values",
			len(b.Labels), len(b.Values))
	}
	if len(b.Values) == 0 {
		return "", fmt.Errorf("report: empty chart")
	}
	width := b.Width
	if width <= 0 {
		width = 40
	}
	var max units.Bandwidth
	labelW := 0
	for i, v := range b.Values {
		if v < 0 {
			return "", fmt.Errorf("report: negative value %v", v)
		}
		if v > max {
			max = v
		}
		if len(b.Labels[i]) > labelW {
			labelW = len(b.Labels[i])
		}
	}
	var out strings.Builder
	if b.Title != "" {
		fmt.Fprintf(&out, "%s\n", b.Title)
	}
	for i, v := range b.Values {
		n := 0
		if max > 0 {
			n = int(float64(v) / float64(max) * float64(width))
		}
		if v > 0 && n == 0 {
			n = 1 // keep tiny values visible
		}
		fmt.Fprintf(&out, "%-*s |%s%s %6.2f\n",
			labelW, b.Labels[i],
			strings.Repeat("#", n), strings.Repeat(" ", width-n),
			v.Gbps())
	}
	return out.String(), nil
}
