// Package report renders experiment results as aligned ASCII tables, CSV
// and Markdown — the output layer of the paperbench harness and the
// EXPERIMENTS.md generator.
package report

import (
	"fmt"
	"strings"

	"numaio/internal/units"
)

// Table is a simple rectangular table.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// NewTable creates a table with the given title and headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends a row; short rows are padded with empty cells.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(t.Headers))
	for i := range row {
		if i < len(cells) {
			row[i] = cells[i]
		}
	}
	t.Rows = append(t.Rows, row)
}

// widths returns the per-column display widths.
func (t *Table) widths() []int {
	w := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		w[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(w) && len(c) > w[i] {
				w[i] = len(c)
			}
		}
	}
	return w
}

// Render produces an aligned ASCII rendering.
func (t *Table) Render() string {
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	w := t.widths()
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", w[i], c)
		}
		b.WriteString("\n")
	}
	line(t.Headers)
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", w[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	return b.String()
}

// Markdown produces a GitHub-flavoured Markdown rendering.
func (t *Table) Markdown() string {
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "**%s**\n\n", t.Title)
	}
	b.WriteString("| " + strings.Join(t.Headers, " | ") + " |\n")
	seps := make([]string, len(t.Headers))
	for i := range seps {
		seps[i] = "---"
	}
	b.WriteString("| " + strings.Join(seps, " | ") + " |\n")
	for _, row := range t.Rows {
		b.WriteString("| " + strings.Join(row, " | ") + " |\n")
	}
	return b.String()
}

// CSV produces a comma-separated rendering (naive quoting: cells containing
// commas or quotes are double-quoted).
func (t *Table) CSV() string {
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			if strings.ContainsAny(c, ",\"\n") {
				c = "\"" + strings.ReplaceAll(c, "\"", "\"\"") + "\""
			}
			b.WriteString(c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Headers)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// Gbps formats a bandwidth as a bare Gb/s number with one decimal.
func Gbps(bw units.Bandwidth) string { return fmt.Sprintf("%.1f", bw.Gbps()) }

// Gbps2 formats a bandwidth with two decimals.
func Gbps2(bw units.Bandwidth) string { return fmt.Sprintf("%.2f", bw.Gbps()) }

// Range formats a min-max bandwidth range like the paper's tables.
func Range(min, max units.Bandwidth) string {
	return fmt.Sprintf("%.1f – %.1f", min.Gbps(), max.Gbps())
}

// Series is a named sequence of (label, value) points, used for the
// figure-style outputs (bandwidth vs. stream count, per-node bars).
type Series struct {
	Name   string
	Labels []string
	Values []units.Bandwidth
}

// SeriesTable renders several series sharing the same labels as one table:
// first column the label, then one column per series.
func SeriesTable(title, labelHeader string, series ...Series) (*Table, error) {
	if len(series) == 0 {
		return nil, fmt.Errorf("report: no series")
	}
	n := len(series[0].Labels)
	headers := []string{labelHeader}
	for _, s := range series {
		if len(s.Labels) != n || len(s.Values) != n {
			return nil, fmt.Errorf("report: series %q has inconsistent length", s.Name)
		}
		headers = append(headers, s.Name)
	}
	t := NewTable(title, headers...)
	for i := 0; i < n; i++ {
		row := []string{series[0].Labels[i]}
		for _, s := range series {
			row = append(row, Gbps2(s.Values[i]))
		}
		t.AddRow(row...)
	}
	return t, nil
}
