package experiments

import (
	"encoding/json"
	"testing"

	"numaio/internal/faults"
)

// TestChaosSurvivalDeterministic: the -chaos report is a function of the
// plan's seed only — the serialized chaos models are byte-identical at any
// Parallelism, the acceptance bar for the fault-injection layer.
func TestChaosSurvivalDeterministic(t *testing.T) {
	plan, err := faults.Named("chaos")
	if err != nil {
		t.Fatal(err)
	}
	var want []byte
	for _, p := range []int{1, 8} {
		l := newLab(t)
		l.Parallelism = p
		r, err := l.ChaosSurvival(plan)
		if err != nil {
			t.Fatal(err)
		}
		if len(r.Modes) != 2 {
			t.Fatalf("got %d modes, want 2", len(r.Modes))
		}
		for _, m := range r.Modes {
			if m.Chaos.Resilience == nil {
				t.Errorf("%s chaos model carries no resilience report", m.Mode)
			}
		}
		got, err := json.Marshal([]any{r.Modes[0].Chaos, r.Modes[1].Chaos})
		if err != nil {
			t.Fatal(err)
		}
		if want == nil {
			want = got
		} else if string(got) != string(want) {
			t.Errorf("chaos models differ between parallelism 1 and %d", p)
		}
	}
}

// TestChaosSurvivalFlakyMeasurements: a plan that only disturbs the
// measurement machinery — no topology damage — must not change the class
// structure of Tables IV/V; that is what the retry/timeout/MAD pipeline
// is for.
func TestChaosSurvivalFlakyMeasurements(t *testing.T) {
	plan, err := faults.Named("flaky-measurements")
	if err != nil {
		t.Fatal(err)
	}
	l := newLab(t)
	l.Parallelism = 4
	r, err := l.ChaosSurvival(plan)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range r.Modes {
		if !m.Survived {
			t.Errorf("%s classes did not survive %s: clean %s vs chaos %s",
				m.Mode, plan.Name, ClassSets(m.Clean), ClassSets(m.Chaos))
		}
	}
}
