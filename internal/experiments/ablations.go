package experiments

import (
	"fmt"

	"numaio/internal/core"
	"numaio/internal/device"
	"numaio/internal/fio"
	"numaio/internal/report"
	"numaio/internal/stream"
	"numaio/internal/topology"
	"numaio/internal/units"
)

// Ablation experiments isolate the design choices DESIGN.md calls out: the
// PIO/DMA routing split (the paper's Sec. IV-C root cause), the interrupt
// load on the device's node, and the choice of model (iomodel vs the
// hop-distance and STREAM baselines).

// PIOvsDMARow contrasts the two transfer modes for one node pair.
type PIOvsDMARow struct {
	CPU, Mem topology.NodeID
	PIO      units.Bandwidth // STREAM-style, CPU-driven
	DMA      units.Bandwidth // memcpy engine, DMA-path
}

// PIOvsDMAResult is ablation A1.
type PIOvsDMAResult struct {
	Rows []PIOvsDMARow
}

// AblationPIOvsDMA measures the same node pairs with PIO (STREAM) and DMA
// (memcpy engine) semantics. The orderings disagree — the reason STREAM
// models cannot predict I/O (Sec. IV-C).
func (l *Lab) AblationPIOvsDMA() (*PIOvsDMAResult, error) {
	sr, err := stream.New(l.Sys, stream.Config{Sigma: -1})
	if err != nil {
		return nil, err
	}
	runner := fio.NewRunner(l.Sys)
	runner.Sigma = 0

	pairs := []struct{ cpu, mem topology.NodeID }{
		{7, 4}, {4, 7}, {7, 2}, {2, 7}, {7, 7},
	}
	out := &PIOvsDMAResult{}
	for _, p := range pairs {
		pio, err := sr.Measure(p.cpu, p.mem)
		if err != nil {
			return nil, err
		}
		src, dst := p.mem, p.cpu // DMA analog: data flows mem -> cpu-side sink
		rep, err := runner.Run([]fio.Job{{
			Name: fmt.Sprintf("a1-%d-%d", int(p.cpu), int(p.mem)), Engine: device.EngineMemcpy,
			Node: p.cpu, NumJobs: 4, Size: ioSize, SrcNode: &src, DstNode: &dst,
		}})
		if err != nil {
			return nil, err
		}
		out.Rows = append(out.Rows, PIOvsDMARow{CPU: p.cpu, Mem: p.mem, PIO: pio, DMA: rep.Aggregate})
	}
	return out, nil
}

// Table renders ablation A1.
func (r *PIOvsDMAResult) Table() *report.Table {
	t := report.NewTable("Ablation A1 — PIO (STREAM) vs DMA (memcpy) routing (Gb/s)",
		"CPU node", "MEM node", "PIO", "DMA")
	for _, row := range r.Rows {
		t.AddRow(fmt.Sprintf("%d", int(row.CPU)), fmt.Sprintf("%d", int(row.Mem)),
			report.Gbps2(row.PIO), report.Gbps2(row.DMA))
	}
	return t
}

// IRQResult is ablation A2: TCP send with and without the interrupt load.
type IRQResult struct {
	WithIRQ    map[topology.NodeID]units.Bandwidth
	WithoutIRQ map[topology.NodeID]units.Bandwidth
}

// AblationIRQ quantifies the interrupt tax on the device's local node by
// rerunning TCP send with IRQWeight zeroed. Without interrupts, local node
// 7 matches neighbour node 6; with them it loses — the paper's
// neighbour-beats-local effect (Sec. IV-B1).
func (l *Lab) AblationIRQ() (*IRQResult, error) {
	out := &IRQResult{
		WithIRQ:    make(map[topology.NodeID]units.Bandwidth),
		WithoutIRQ: make(map[topology.NodeID]units.Bandwidth),
	}
	for _, irq := range []bool{true, false} {
		runner := fio.NewRunner(l.Sys)
		runner.Sigma = 0
		if !irq {
			spec, err := device.SpecFor(device.EngineTCPSend)
			if err != nil {
				return nil, err
			}
			spec.IRQWeight = 0
			runner.SetSpec(spec)
		}
		for _, n := range []topology.NodeID{6, 7} {
			rep, err := runner.Run([]fio.Job{{
				Name: fmt.Sprintf("a2-%v-%d", irq, int(n)), Engine: device.EngineTCPSend,
				Node: n, NumJobs: 4, Size: ioSize,
			}})
			if err != nil {
				return nil, err
			}
			if irq {
				out.WithIRQ[n] = rep.Aggregate
			} else {
				out.WithoutIRQ[n] = rep.Aggregate
			}
		}
	}
	return out, nil
}

// Table renders ablation A2.
func (r *IRQResult) Table() *report.Table {
	t := report.NewTable("Ablation A2 — interrupt load on the device's node (TCP send, 4 streams, Gb/s)",
		"binding", "with IRQ load", "without IRQ load")
	for _, n := range []topology.NodeID{6, 7} {
		t.AddRow(fmt.Sprintf("node%d", int(n)),
			report.Gbps2(r.WithIRQ[n]), report.Gbps2(r.WithoutIRQ[n]))
	}
	return t
}

// BaselineRow is one model's rank agreement with measured I/O.
type BaselineRow struct {
	Model    string
	Spearman float64
}

// BaselinesResult is ablation A3.
type BaselinesResult struct {
	Rows []BaselineRow
}

// AblationBaselines ranks the iomodel against hop-distance and the two
// STREAM models by Spearman correlation with measured per-node RDMA_READ
// rates.
func (l *Lab) AblationBaselines() (*BaselinesResult, error) {
	ioModel, err := l.characterize(core.ModeRead)
	if err != nil {
		return nil, err
	}
	hop, err := core.HopDistanceModel(l.Sys.Machine(), Target)
	if err != nil {
		return nil, err
	}
	sr, err := stream.New(l.Sys, stream.Config{Sigma: -1})
	if err != nil {
		return nil, err
	}
	mx, err := sr.Matrix()
	if err != nil {
		return nil, err
	}
	cpu, err := core.StreamModel(mx, l.Sys.Machine(), Target, core.CPUCentric, 0.2)
	if err != nil {
		return nil, err
	}
	mem, err := core.StreamModel(mx, l.Sys.Machine(), Target, core.MemCentric, 0.2)
	if err != nil {
		return nil, err
	}

	runner := fio.NewRunner(l.Sys)
	runner.Sigma = 0
	var measured []core.Sample
	for _, n := range l.Sys.Machine().NodeIDs() {
		rep, err := runner.Run([]fio.Job{{
			Name: fmt.Sprintf("a3-%d", int(n)), Engine: device.EngineRDMARead,
			Node: n, NumJobs: 2, Size: ioSize,
		}})
		if err != nil {
			return nil, err
		}
		measured = append(measured, core.Sample{Node: n, Bandwidth: rep.Aggregate})
	}

	out := &BaselinesResult{}
	for _, entry := range []struct {
		name  string
		model *core.Model
	}{
		{"proposed iomodel (memcpy)", ioModel},
		{"hop distance", hop},
		{"STREAM CPU-centric", cpu},
		{"STREAM memory-centric", mem},
	} {
		rho, err := core.SpearmanRank(entry.model, measured)
		if err != nil {
			return nil, err
		}
		out.Rows = append(out.Rows, BaselineRow{Model: entry.name, Spearman: rho})
	}
	return out, nil
}

// Table renders ablation A3.
func (r *BaselinesResult) Table() *report.Table {
	t := report.NewTable("Ablation A3 — model rank agreement with measured RDMA_READ rates",
		"Model", "Spearman rho")
	for _, row := range r.Rows {
		t.AddRow(row.Model, fmt.Sprintf("%.3f", row.Spearman))
	}
	return t
}
