package experiments

import (
	"fmt"

	"numaio/internal/cluster"
	"numaio/internal/device"
	"numaio/internal/report"
	"numaio/internal/topology"
	"numaio/internal/units"
)

// ClusterResult is experiment C1: RDMA writers distributed over a
// three-host cluster under each cluster policy.
type ClusterResult struct {
	Hosts  int
	Tasks  int
	Pack   units.Bandwidth
	Spread units.Bandwidth
	Greedy units.Bandwidth
}

// ClusterScaleOut builds a three-host cluster and measures the aggregate of
// nine RDMA writers under pack-first, spread-even and model-greedy
// distribution.
func ClusterScaleOut() (*ClusterResult, error) {
	c, err := cluster.New(topology.DL585G7, Target, "host-a", "host-b", "host-c")
	if err != nil {
		return nil, err
	}
	const tasks = 9
	out := &ClusterResult{Hosts: len(c.Hosts), Tasks: tasks}
	for _, p := range []cluster.Policy{cluster.PackFirst, cluster.SpreadEven, cluster.ModelGreedy} {
		placement, err := c.Place(device.EngineRDMAWrite, tasks, p)
		if err != nil {
			return nil, err
		}
		eval, err := c.Evaluate(device.EngineRDMAWrite, placement, 4*units.GiB)
		if err != nil {
			return nil, err
		}
		switch p {
		case cluster.PackFirst:
			out.Pack = eval.Aggregate
		case cluster.SpreadEven:
			out.Spread = eval.Aggregate
		case cluster.ModelGreedy:
			out.Greedy = eval.Aggregate
		}
	}
	return out, nil
}

// Table renders experiment C1.
func (r *ClusterResult) Table() *report.Table {
	t := report.NewTable(
		fmt.Sprintf("C1 — %d RDMA writers over a %d-host cluster (aggregate Gb/s)", r.Tasks, r.Hosts),
		"policy", "aggregate")
	t.AddRow("pack-first", report.Gbps(r.Pack))
	t.AddRow("spread-even", report.Gbps(r.Spread))
	t.AddRow("model-greedy", report.Gbps(r.Greedy))
	return t
}
