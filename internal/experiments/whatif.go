package experiments

import (
	"fmt"

	"numaio/internal/core"
	"numaio/internal/numa"
	"numaio/internal/report"
	"numaio/internal/stream"
	"numaio/internal/topoinfer"
	"numaio/internal/topology"
	"numaio/internal/units"
)

// InferResult is ablation A4: the Sec. IV-A topology-inference exercise.
type InferResult struct {
	Matches    []topoinfer.VariantMatch
	Conclusive bool
	IdealScore float64 // sanity: inference on hop-governed synthetic data
}

// AblationTopologyInference tries to recover the testbed's wiring from the
// measured STREAM matrix. On synthetic hop-governed data the inference is
// exact; on measured data no Fig. 1 variant matches — the paper's argument
// that physical distance cannot be read off bandwidth.
func (l *Lab) AblationTopologyInference() (*InferResult, error) {
	r, err := stream.New(l.Sys, stream.Config{Sigma: -1})
	if err != nil {
		return nil, err
	}
	smx, err := r.Matrix()
	if err != nil {
		return nil, err
	}
	mx := &topoinfer.Matrix{Nodes: smx.Nodes, BW: smx.BW}
	matches, err := topoinfer.MatchVariants(mx, 4)
	if err != nil {
		return nil, err
	}

	// Sanity branch: a hop-governed matrix over variant A must be exactly
	// recoverable.
	ideal := topology.MagnyCours4P(topology.VariantA)
	imx := &topoinfer.Matrix{Nodes: ideal.NodeIDs()}
	for i, a := range imx.Nodes {
		row := make([]units.Bandwidth, len(imx.Nodes))
		for j, b := range imx.Nodes {
			h, err := ideal.HopDistance(a, b)
			if err != nil {
				return nil, err
			}
			row[j] = units.Bandwidth(60-15*h) * units.Gbps
		}
		imx.BW = append(imx.BW, row)
		_ = i
	}
	inferred, err := topoinfer.InferAdjacency(imx, 4)
	if err != nil {
		return nil, err
	}
	idealScore := topoinfer.Score(inferred, topoinfer.TrueAdjacency(ideal))

	return &InferResult{
		Matches:    matches,
		Conclusive: topoinfer.Conclusive(matches),
		IdealScore: idealScore,
	}, nil
}

// Table renders ablation A4.
func (r *InferResult) Table() *report.Table {
	t := report.NewTable("Ablation A4 — topology inference from measured bandwidth (Sec. IV-A)",
		"candidate wiring", "Jaccard score")
	for _, m := range r.Matches {
		t.AddRow(m.Variant.String(), fmt.Sprintf("%.2f", m.Score))
	}
	verdict := "inconclusive (as the paper argues)"
	if r.Conclusive {
		verdict = "conclusive"
	}
	t.AddRow("verdict", verdict)
	t.AddRow("sanity: hop-governed data", fmt.Sprintf("%.2f", r.IdealScore))
	return t
}

// DegradeResult is ablation A5: re-characterization after a link failure.
type DegradeResult struct {
	Before, After     *core.Model
	Node0ClassBefore  int
	Node0ClassAfter   int
	DegradedBandwidth units.Bandwidth
}

// AblationLinkDegradation halves the 0↔7 link (a renegotiated cable) and
// re-runs Algorithm 1 on the mutated machine: node 0 (and node 1, routed
// through it) fall out of their class, demonstrating that the model tracks
// hardware state — cheaply, since no I/O benchmark is needed.
func (l *Lab) AblationLinkDegradation() (*DegradeResult, error) {
	before, err := l.characterize(core.ModeWrite)
	if err != nil {
		return nil, err
	}
	mutant := l.Sys.Machine().Clone()
	if err := mutant.DegradeLinkBetween(
		topology.NodeVertexID(0), topology.NodeVertexID(7), 0.35); err != nil {
		return nil, err
	}
	sys, err := numa.NewSystem(mutant)
	if err != nil {
		return nil, err
	}
	c, err := core.NewCharacterizer(sys, core.Config{Parallelism: l.Parallelism, Tracer: l.Tracer})
	if err != nil {
		return nil, err
	}
	after, err := c.Characterize(Target, core.ModeWrite)
	if err != nil {
		return nil, err
	}
	cb, err := before.ClassOf(0)
	if err != nil {
		return nil, err
	}
	ca, err := after.ClassOf(0)
	if err != nil {
		return nil, err
	}
	bw, err := after.SampleOf(0)
	if err != nil {
		return nil, err
	}
	return &DegradeResult{
		Before: before, After: after,
		Node0ClassBefore: cb.Rank, Node0ClassAfter: ca.Rank,
		DegradedBandwidth: bw,
	}, nil
}

// Table renders ablation A5.
func (r *DegradeResult) Table() *report.Table {
	t := report.NewTable("Ablation A5 — re-characterization after degrading the 0↔7 link to 35%",
		"quantity", "before", "after")
	t.AddRow("node 0 class", fmt.Sprintf("%d", r.Node0ClassBefore), fmt.Sprintf("%d", r.Node0ClassAfter))
	bb, _ := r.Before.SampleOf(0)
	t.AddRow("node 0 memcpy Gb/s", report.Gbps(bb), report.Gbps(r.DegradedBandwidth))
	t.AddRow("write classes", fmt.Sprintf("%d", r.Before.NumClasses()), fmt.Sprintf("%d", r.After.NumClasses()))
	return t
}
