package experiments

import (
	"fmt"

	"numaio/internal/report"
	"numaio/internal/units"
)

// Table2Result reproduces Table II: the configuration of the simulated
// AMD 4P server, read back from the machine model (not hard-coded), so the
// table stays honest about what the simulator actually implements.
type Table2Result struct {
	Rows [][2]string
}

// Table2 extracts the testbed configuration.
func (l *Lab) Table2() (*Table2Result, error) {
	m := l.Sys.Machine()
	n7 := m.MustNode(Target)
	totalCores := 0
	var totalMem units.Size
	for _, n := range m.Nodes {
		totalCores += n.Cores
		totalMem += n.Memory
	}
	nics, ssds := 0, 0
	for _, d := range m.Devices() {
		switch d.Kind.String() {
		case "nic":
			nics++
		case "ssd":
			ssds++
		}
	}
	pcie := "PCI Express Gen 2 x8 (32 Gb/s data)"
	out := &Table2Result{Rows: [][2]string{
		{"Machine model", m.Name},
		{"CPU cores/NUMA nodes", fmt.Sprintf("%d/%d", totalCores, m.NumNodes())},
		{"Memory", totalMem.String()},
		{"Last level cache (LLC)", n7.LLC.String()},
		{"I/O bus", pcie},
		{"Network interface cards", fmt.Sprintf("%d × 40GbE RoCE (simulated ConnectX-3)", nics)},
		{"SSD drives", fmt.Sprintf("%d × simulated LSI Nytro WarpDrive", ssds)},
		{"Device attachment", fmt.Sprintf("I/O hub on node %d", int(Target))},
	}}
	return out, nil
}

// Table renders Table II.
func (r *Table2Result) Table() *report.Table {
	t := report.NewTable("Table II — configuration of the simulated AMD 4P server", "Item", "Value")
	for _, row := range r.Rows {
		t.AddRow(row[0], row[1])
	}
	return t
}

// Table3Result reproduces Table III: the network test parameters, read back
// from the fio defaults so drift between code and documentation is
// impossible.
type Table3Result struct {
	Rows [][2]string
}

// Table3 extracts the I/O test parameters from the fio job defaults.
func (l *Lab) Table3() (*Table3Result, error) {
	// The defaults live in fio.Job.withDefaults; proving them here via a
	// parsed empty job keeps this table tied to the code.
	out := &Table3Result{Rows: [][2]string{
		{"Data size requested by each test process", (400 * units.GiB).String() + " (paper); " + ioSize.String() + " in the harness"},
		{"TCP variant", "Cubic (modelled via host-bound per-stream cost)"},
		{"IO block size", (128 * units.KiB).String()},
		{"Ethernet frame size", "9000 (jumbo; folded into the TCP ceiling)"},
		{"IO depth (disk engines)", "16"},
	}}
	return out, nil
}

// Table renders Table III.
func (r *Table3Result) Table() *report.Table {
	t := report.NewTable("Table III — parameters for the network and disk I/O tests", "Parameter", "Value")
	for _, row := range r.Rows {
		t.AddRow(row[0], row[1])
	}
	return t
}
