package experiments

import (
	"fmt"
	"strings"
	"time"

	"numaio/internal/core"
	"numaio/internal/faults"
	"numaio/internal/report"
	"numaio/internal/resilience"
)

// ChaosResult is the chaos-survival report behind the -chaos flags of
// cmd/paperbench and cmd/iomodel: the class structure of Tables IV and V
// re-derived under a fault plan, next to the clean structure.
type ChaosResult struct {
	Plan  faults.Plan
	Modes []ChaosMode
}

// ChaosMode compares one direction's clean and chaos-hardened models.
type ChaosMode struct {
	Mode  core.Mode
	Clean *core.Model
	Chaos *core.Model
	// Survived reports rank-by-rank identical class memberships: despite
	// the injected faults, the hardened sweep recovered the same
	// performance classes as the clean run.
	Survived bool
}

// ChaosSurvival characterizes the target twice per direction — once clean,
// once under the fault plan with the resilience machinery on — and reports
// whether the performance classes of Tables IV and V survive. Chaos runs
// use double the default retry budget so every shipped plan's sweep
// converges, and an auto-advancing clock so induced hangs cost no wall
// time; like clean runs, the result is identical at any Parallelism.
func (l *Lab) ChaosSurvival(plan faults.Plan) (*ChaosResult, error) {
	out := &ChaosResult{Plan: plan}
	for _, mode := range []core.Mode{core.ModeWrite, core.ModeRead} {
		clean, err := l.characterize(mode)
		if err != nil {
			return nil, err
		}
		c, err := core.NewCharacterizer(l.Sys, core.Config{
			Parallelism: l.Parallelism,
			Faults:      &plan,
			MaxRetries:  10,
			Clock:       resilience.NewAutoClock(time.Unix(0, 0)),
		})
		if err != nil {
			return nil, err
		}
		chaos, err := c.Characterize(Target, mode)
		if err != nil {
			return nil, fmt.Errorf("chaos characterization (%s, plan %s): %w", mode, plan.Name, err)
		}
		out.Modes = append(out.Modes, ChaosMode{
			Mode: mode, Clean: clean, Chaos: chaos,
			Survived: sameClasses(clean, chaos),
		})
	}
	return out, nil
}

// sameClasses reports whether two models agree on every class's rank and
// membership. Class bandwidths are allowed to differ — under a degraded
// link they must — so survival is about structure, not absolute rates.
func sameClasses(a, b *core.Model) bool {
	if len(a.Classes) != len(b.Classes) {
		return false
	}
	for i := range a.Classes {
		if a.Classes[i].Rank != b.Classes[i].Rank ||
			len(a.Classes[i].Nodes) != len(b.Classes[i].Nodes) {
			return false
		}
		for j := range a.Classes[i].Nodes {
			if a.Classes[i].Nodes[j] != b.Classes[i].Nodes[j] {
				return false
			}
		}
	}
	return true
}

// ClassSets formats a model's class memberships like "{6,7} | {0,1,4,5}".
func ClassSets(m *core.Model) string {
	var parts []string
	for _, c := range m.Classes {
		ns := make([]string, 0, len(c.Nodes))
		for _, n := range c.Nodes {
			ns = append(ns, fmt.Sprintf("%d", int(n)))
		}
		parts = append(parts, "{"+strings.Join(ns, ",")+"}")
	}
	return strings.Join(parts, " | ")
}

// Table renders the clean-vs-chaos class comparison.
func (r *ChaosResult) Table() *report.Table {
	t := report.NewTable(
		fmt.Sprintf("Chaos survival — Tables IV/V class structure under plan %q (seed %d)",
			r.Plan.Name, r.Plan.Seed),
		"model", "clean classes", "chaos classes", "survived")
	for _, m := range r.Modes {
		verdict := "yes"
		if !m.Survived {
			verdict = "NO"
		}
		t.AddRow(m.Mode.String(), ClassSets(m.Clean), ClassSets(m.Chaos), verdict)
	}
	return t
}

// ResilienceTable renders what the fault-tolerance machinery absorbed while
// rebuilding each model under the plan.
func (r *ChaosResult) ResilienceTable() *report.Table {
	t := report.NewTable("Faults absorbed during the chaos sweeps",
		"model", "retries", "timeouts", "failures", "outliers rejected")
	for _, m := range r.Modes {
		res := m.Chaos.Resilience
		if res == nil {
			res = &core.ResilienceReport{}
		}
		t.AddRow(m.Mode.String(),
			fmt.Sprintf("%d", res.Retries), fmt.Sprintf("%d", res.Timeouts),
			fmt.Sprintf("%d", res.Failures), fmt.Sprintf("%d", res.Outliers))
	}
	return t
}

// Summary is the one-line shape: which class structures survived.
func (r *ChaosResult) Summary() string {
	var parts []string
	for _, m := range r.Modes {
		verdict := "classes survive"
		if !m.Survived {
			verdict = fmt.Sprintf("classes change to %s", ClassSets(m.Chaos))
		}
		parts = append(parts, fmt.Sprintf("%s: %s", m.Mode, verdict))
	}
	return strings.Join(parts, "; ") + "."
}
