package experiments

import (
	"fmt"
	"strings"

	"numaio/internal/core"
	"numaio/internal/device"
	"numaio/internal/fio"
	"numaio/internal/report"
	"numaio/internal/sched"
	"numaio/internal/topology"
	"numaio/internal/units"
)

// characterize runs Algorithm 1 for the target in the given mode.
func (l *Lab) characterize(mode core.Mode) (*core.Model, error) {
	c, err := core.NewCharacterizer(l.Sys, core.Config{Parallelism: l.Parallelism, Tracer: l.Tracer})
	if err != nil {
		return nil, err
	}
	return c.Characterize(Target, mode)
}

// Fig10Result holds the proposed methodology's write and read models.
type Fig10Result struct {
	Write *core.Model
	Read  *core.Model
}

// Figure10 runs Algorithm 1 in both directions.
func (l *Lab) Figure10() (*Fig10Result, error) {
	w, err := l.characterize(core.ModeWrite)
	if err != nil {
		return nil, err
	}
	r, err := l.characterize(core.ModeRead)
	if err != nil {
		return nil, err
	}
	return &Fig10Result{Write: w, Read: r}, nil
}

// Table renders per-node write/read bandwidths of the proposed model.
func (r *Fig10Result) Table() *report.Table {
	t := report.NewTable("Fig. 10 — proposed memcpy model of node 7 (Gb/s)",
		"node", "device write", "device read")
	for _, s := range r.Write.Samples {
		rb, _ := r.Read.SampleOf(s.Node)
		t.AddRow(fmt.Sprintf("node%d", int(s.Node)), report.Gbps2(s.Bandwidth), report.Gbps2(rb))
	}
	return t
}

// MinMaxAvg summarizes measurements over the nodes of one class.
type MinMaxAvg struct {
	Min, Max, Avg units.Bandwidth
}

func summarize(vals []units.Bandwidth) MinMaxAvg {
	var out MinMaxAvg
	var sum float64
	for i, v := range vals {
		if i == 0 || v < out.Min {
			out.Min = v
		}
		if v > out.Max {
			out.Max = v
		}
		sum += float64(v)
	}
	if len(vals) > 0 {
		out.Avg = units.Bandwidth(sum / float64(len(vals)))
	}
	return out
}

// ClassRow is one class of Table IV or V: the proposed model's statistics
// next to the measured I/O statistics of every operation.
type ClassRow struct {
	Rank  int
	Nodes []topology.NodeID
	Stats map[string]MinMaxAvg // keyed by operation name
}

// Table45Result reproduces Table IV (write) or Table V (read).
type Table45Result struct {
	Mode  core.Mode
	Model *core.Model
	Ops   []string // operation display order
	Rows  []ClassRow
}

// opConfig describes how an I/O operation is measured per node for the
// class tables.
type opConfig struct {
	name    string
	engine  string
	numJobs int
}

func writeOps() []opConfig {
	return []opConfig{
		{"Proposed memcpy", device.EngineMemcpy, 4},
		{"TCP sender", device.EngineTCPSend, 4},
		{"RDMA_WRITE", device.EngineRDMAWrite, 2},
		{"SSD write", device.EngineSSDWrite, 2},
	}
}

func readOps() []opConfig {
	return []opConfig{
		{"Proposed memcpy", device.EngineMemcpy, 4},
		{"TCP receiver", device.EngineTCPRecv, 4},
		{"RDMA_READ", device.EngineRDMARead, 2},
		{"SSD read", device.EngineSSDRead, 2},
	}
}

// classTable builds Table IV or V: classify with the proposed model, then
// measure every operation on every node and summarize per class.
func (l *Lab) classTable(mode core.Mode) (*Table45Result, error) {
	model, err := l.characterize(mode)
	if err != nil {
		return nil, err
	}
	ops := writeOps()
	if mode == core.ModeRead {
		ops = readOps()
	}
	runner := fio.NewRunner(l.Sys)

	measure := func(op opConfig, n topology.NodeID) (units.Bandwidth, error) {
		if op.engine == device.EngineMemcpy {
			return model.SampleOf(n)
		}
		rep, err := runner.Run([]fio.Job{{
			Name:    fmt.Sprintf("t45-%s-n%d", op.engine, int(n)),
			Engine:  op.engine,
			Node:    n,
			NumJobs: op.numJobs,
			Size:    ioSize,
		}})
		if err != nil {
			return 0, err
		}
		return rep.Aggregate, nil
	}

	out := &Table45Result{Mode: mode, Model: model}
	for _, op := range ops {
		out.Ops = append(out.Ops, op.name)
	}
	for _, cls := range model.Classes {
		row := ClassRow{Rank: cls.Rank, Nodes: cls.Nodes, Stats: make(map[string]MinMaxAvg)}
		for _, op := range ops {
			var vals []units.Bandwidth
			for _, n := range cls.Nodes {
				bw, err := measure(op, n)
				if err != nil {
					return nil, err
				}
				vals = append(vals, bw)
			}
			row.Stats[op.name] = summarize(vals)
		}
		out.Rows = append(out.Rows, row)
	}
	return out, nil
}

// Table4 reproduces Table IV: the device-write performance model.
func (l *Lab) Table4() (*Table45Result, error) { return l.classTable(core.ModeWrite) }

// Table5 reproduces Table V: the device-read performance model.
func (l *Lab) Table5() (*Table45Result, error) { return l.classTable(core.ModeRead) }

// Table renders the class table in the paper's layout.
func (r *Table45Result) Table() *report.Table {
	title := "Table IV — NUMA I/O bandwidth performance model for device write (Gb/s)"
	if r.Mode == core.ModeRead {
		title = "Table V — NUMA I/O bandwidth performance model for device read (Gb/s)"
	}
	headers := []string{"Operation", "Stat"}
	for _, row := range r.Rows {
		ns := make([]string, 0, len(row.Nodes))
		for _, n := range row.Nodes {
			ns = append(ns, fmt.Sprintf("%d", int(n)))
		}
		headers = append(headers, fmt.Sprintf("Class %d: {%s}", row.Rank, strings.Join(ns, ",")))
	}
	t := report.NewTable(title, headers...)
	for _, op := range r.Ops {
		rangeRow := []string{op, "Range"}
		avgRow := []string{"", "Avg"}
		for _, row := range r.Rows {
			st := row.Stats[op]
			rangeRow = append(rangeRow, report.Range(st.Min, st.Max))
			avgRow = append(avgRow, report.Gbps(st.Avg))
		}
		t.AddRow(rangeRow...)
		t.AddRow(avgRow...)
	}
	return t
}

// Eq1Result validates the mixture prediction (Sec. V-B).
type Eq1Result struct {
	Model      *core.Model
	ClassRates map[int]units.Bandwidth
	Mix        map[topology.NodeID]int
	Predicted  units.Bandwidth
	Measured   units.Bandwidth
	RelErr     float64
}

// Eq1 reproduces the paper's worked example: two RDMA_READ processes on
// node 2 and two on node 0 against single-class calibration runs.
func (l *Lab) Eq1() (*Eq1Result, error) {
	model, err := l.characterize(core.ModeRead)
	if err != nil {
		return nil, err
	}
	runner := fio.NewRunner(l.Sys)
	rates := make(map[int]units.Bandwidth)
	for _, rep := range model.RepresentativeNodes() {
		cls, err := model.ClassOf(rep)
		if err != nil {
			return nil, err
		}
		run, err := runner.Run([]fio.Job{{
			Name: fmt.Sprintf("eq1-cal-%d", cls.Rank), Engine: device.EngineRDMARead,
			Node: rep, NumJobs: 2, Size: ioSize,
		}})
		if err != nil {
			return nil, err
		}
		rates[cls.Rank] = run.Aggregate
	}

	mix := map[topology.NodeID]int{2: 2, 0: 2}
	predicted, err := model.PredictCounts(mix, rates)
	if err != nil {
		return nil, err
	}
	measured, err := runner.Run([]fio.Job{
		{Name: "eq1-c2", Engine: device.EngineRDMARead, Node: 2, NumJobs: 2, Size: ioSize},
		{Name: "eq1-c3", Engine: device.EngineRDMARead, Node: 0, NumJobs: 2, Size: ioSize},
	})
	if err != nil {
		return nil, err
	}
	return &Eq1Result{
		Model:      model,
		ClassRates: rates,
		Mix:        mix,
		Predicted:  predicted,
		Measured:   measured.Aggregate,
		RelErr:     core.RelativeError(predicted, measured.Aggregate),
	}, nil
}

// Table renders the Eq. 1 validation.
func (r *Eq1Result) Table() *report.Table {
	t := report.NewTable("Eq. 1 — multi-user aggregate prediction (RDMA_READ, 2 procs on node 2 + 2 on node 0)",
		"Quantity", "Gb/s")
	t.AddRow("Predicted (Eq. 1)", report.Gbps2(r.Predicted))
	t.AddRow("Measured (fio)", report.Gbps2(r.Measured))
	t.AddRow("Relative error", fmt.Sprintf("%.1f%% (paper: 3.1%%)", r.RelErr*100))
	return t
}

// SchedResult is the scheduler application experiment (Sec. V-B).
type SchedResult struct {
	TCP       *sched.Comparison
	Memcpy    *sched.Comparison
	Sweep     []sched.SweepPoint
	Crossover int
}

// Scheduler compares placement policies for 8 parallel tasks and sweeps the
// locality-versus-contention tradeoff for memcpy staging.
func (l *Lab) Scheduler() (*SchedResult, error) {
	write, err := l.characterize(core.ModeWrite)
	if err != nil {
		return nil, err
	}
	read, err := l.characterize(core.ModeRead)
	if err != nil {
		return nil, err
	}
	s, err := sched.New(l.Sys, write, read)
	if err != nil {
		return nil, err
	}

	tcp, err := s.Compare(device.EngineTCPSend, 8, ioSize)
	if err != nil {
		return nil, err
	}
	s.Tolerance = 0.15
	mc, err := s.Compare(device.EngineMemcpy, 8, ioSize)
	if err != nil {
		return nil, err
	}
	sweep, err := s.Sweep(device.EngineMemcpy, 6, ioSize)
	if err != nil {
		return nil, err
	}
	return &SchedResult{
		TCP: tcp, Memcpy: mc, Sweep: sweep, Crossover: sched.Crossover(sweep),
	}, nil
}

// Table renders the policy comparison.
func (r *SchedResult) Table() *report.Table {
	t := report.NewTable("Sec. V-B — scheduler placement comparison, 8 tasks (aggregate Gb/s)",
		"Policy", "TCP send", "memcpy staging")
	for _, p := range []sched.Policy{sched.LocalOnly, sched.HopDistance, sched.RoundRobin, sched.ClassBalanced} {
		t.AddRow(p.String(),
			report.Gbps2(r.TCP.Aggregate[p]),
			report.Gbps2(r.Memcpy.Aggregate[p]))
	}
	return t
}

// SweepTable renders the locality-versus-contention sweep.
func (r *SchedResult) SweepTable() *report.Table {
	t := report.NewTable(
		fmt.Sprintf("Locality vs contention sweep (memcpy staging; spreading wins from %d tasks)", r.Crossover),
		"tasks", "local-only", "class-balanced")
	for _, p := range r.Sweep {
		t.AddRow(fmt.Sprintf("%d", p.Tasks), report.Gbps2(p.LocalOnly), report.Gbps2(p.ClassBalanced))
	}
	return t
}
