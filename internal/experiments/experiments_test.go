package experiments

import (
	"math"
	"strings"
	"testing"

	"numaio/internal/core"
	"numaio/internal/sched"
	"numaio/internal/topology"
)

func newLab(t *testing.T) *Lab {
	t.Helper()
	l, err := NewLab()
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func TestTable1WithinTolerance(t *testing.T) {
	res, err := Table1()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	for _, row := range res.Rows {
		if rel := math.Abs(row.Measured-row.Paper) / row.Paper; rel > 0.10 {
			t.Errorf("%s: measured %.2f vs paper %.1f", row.Server, row.Measured, row.Paper)
		}
	}
	out := res.Table().Render()
	if !strings.Contains(out, "NUMA factor") {
		t.Error("table render broken")
	}
}

func TestFigure3Shape(t *testing.T) {
	l := newLab(t)
	res, err := l.Figure3()
	if err != nil {
		t.Fatal(err)
	}
	mx := res.Matrix
	// The headline asymmetry of Sec. IV-A.
	if !(mx.BW[7][4] > mx.BW[7][2]) {
		t.Errorf("BW[7][4]=%.2f should beat BW[7][2]=%.2f",
			mx.BW[7][4].Gbps(), mx.BW[7][2].Gbps())
	}
	if !(mx.BW[4][7] < mx.BW[2][7]) {
		t.Errorf("BW[4][7]=%.2f should lose to BW[2][7]=%.2f",
			mx.BW[4][7].Gbps(), mx.BW[2][7].Gbps())
	}
	// Node 0's local advantage.
	for n := 1; n < 8; n++ {
		if !(mx.BW[0][0] > mx.BW[n][n]) {
			t.Errorf("BW[0][0]=%.2f should beat BW[%d][%d]=%.2f",
				mx.BW[0][0].Gbps(), n, n, mx.BW[n][n].Gbps())
		}
	}
	if !strings.Contains(res.Table().Render(), "CPU7") {
		t.Error("figure 3 table render broken")
	}
}

func TestFigure4Models(t *testing.T) {
	l := newLab(t)
	res, err := l.Figure4()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.CPUCentric) != 8 || len(res.MemCentric) != 8 {
		t.Fatal("model lengths wrong")
	}
	// Both models agree on node 7 (the local cell).
	if res.CPUCentric[7] != res.MemCentric[7] {
		t.Error("models disagree on the local cell")
	}
	tbl, err := res.Table()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(tbl.Render(), "CPU centric") {
		t.Error("figure 4 table render broken")
	}
}

func TestFigure5Shape(t *testing.T) {
	l := newLab(t)
	res, err := l.Figure5()
	if err != nil {
		t.Fatal(err)
	}
	one, err := res.Send.BWFor(6, 1)
	if err != nil {
		t.Fatal(err)
	}
	four, err := res.Send.BWFor(6, 4)
	if err != nil {
		t.Fatal(err)
	}
	sixteen, err := res.Send.BWFor(6, 16)
	if err != nil {
		t.Fatal(err)
	}
	if !(four > 3*one) {
		t.Errorf("send: 4 streams %.2f should be ~4x 1 stream %.2f", four.Gbps(), one.Gbps())
	}
	if math.Abs(float64(sixteen-four))/float64(four) > 0.08 {
		t.Errorf("send: 16 streams %.2f should plateau near 4-stream %.2f",
			sixteen.Gbps(), four.Gbps())
	}
	// Neighbour node 6 beats local node 7 at 4 streams (interrupts).
	s7, _ := res.Send.BWFor(7, 4)
	if !(four > s7) {
		t.Errorf("send: node6 %.2f should beat node7 %.2f", four.Gbps(), s7.Gbps())
	}
	// Class 3 send bindings are starved.
	s2, _ := res.Send.BWFor(2, 4)
	if !(s2 < s7*0.9) {
		t.Errorf("send: node2 %.2f should clearly trail node7 %.2f", s2.Gbps(), s7.Gbps())
	}
	// Receive side: node 4 is the read-model's class 4.
	r4, _ := res.Recv.BWFor(4, 4)
	r0, _ := res.Recv.BWFor(0, 4)
	if !(r4 < r0*0.85) {
		t.Errorf("recv: node4 %.2f should clearly trail node0 %.2f", r4.Gbps(), r0.Gbps())
	}
	tbl, err := res.Send.Table()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(tbl.Render(), "node7") {
		t.Error("figure 5 table render broken")
	}
	if _, err := res.Send.BWFor(42, 4); err == nil {
		t.Error("unknown cell should fail")
	}
}

func TestFigure6Shape(t *testing.T) {
	l := newLab(t)
	res, err := l.Figure6()
	if err != nil {
		t.Fatal(err)
	}
	// RDMA is offloaded: a single stream nearly saturates (stable rates).
	w1, _ := res.Write.BWFor(7, 1)
	w8, _ := res.Write.BWFor(7, 8)
	if !(w1 > 0.9*w8) {
		t.Errorf("rdma_write single stream %.2f should nearly match 8 streams %.2f",
			w1.Gbps(), w8.Gbps())
	}
	// Write classes: node 2 starved vs node 0.
	w2, _ := res.Write.BWFor(2, 2)
	w0, _ := res.Write.BWFor(0, 2)
	if !(w2 < w0*0.85) {
		t.Errorf("rdma_write node2 %.2f should trail node0 %.2f", w2.Gbps(), w0.Gbps())
	}
	// Read classes: {2,3} beat {0,1}; node 4 worst.
	r2, _ := res.Read.BWFor(2, 2)
	r0, _ := res.Read.BWFor(0, 2)
	r4, _ := res.Read.BWFor(4, 2)
	if !(r2 > r0 && r0 > r4) {
		t.Errorf("rdma_read ordering broken: n2=%.2f n0=%.2f n4=%.2f",
			r2.Gbps(), r0.Gbps(), r4.Gbps())
	}
}

func TestFigure7Shape(t *testing.T) {
	l := newLab(t)
	res, err := l.Figure7()
	if err != nil {
		t.Fatal(err)
	}
	w7, _ := res.Write.BWFor(7, 2)
	w2, _ := res.Write.BWFor(2, 2)
	if !(w7.Gbps() > 27 && w7.Gbps() < 31) {
		t.Errorf("ssd write node7 = %.2f, want ~29", w7.Gbps())
	}
	if !(w2 < w7*0.75) {
		t.Errorf("ssd write node2 %.2f should clearly trail node7 %.2f", w2.Gbps(), w7.Gbps())
	}
	r7, _ := res.Read.BWFor(7, 2)
	r4, _ := res.Read.BWFor(4, 2)
	if !(r7.Gbps() > 32 && r7.Gbps() < 37) {
		t.Errorf("ssd read node7 = %.2f, want ~34.8", r7.Gbps())
	}
	if !(r4 < r7*0.75) {
		t.Errorf("ssd read node4 %.2f should clearly trail node7 %.2f", r4.Gbps(), r7.Gbps())
	}
	// Read beats write where the NUMA leg is unstarved (class 1) — on node
	// 4 the starved 7->4 direction makes writes faster than reads, exactly
	// as in the paper's Tables IV/V (28.5 vs 18.5 Gb/s).
	for _, n := range []topology.NodeID{6, 7} {
		r, _ := res.Read.BWFor(n, 2)
		w, _ := res.Write.BWFor(n, 2)
		if !(r > w) {
			t.Errorf("ssd read (%.2f) should beat write (%.2f) on node %d", r.Gbps(), w.Gbps(), n)
		}
	}
	w4, _ := res.Write.BWFor(4, 2)
	if !(r4 < w4) {
		t.Errorf("on node 4, write (%.2f) should beat read (%.2f) as in the paper", w4.Gbps(), r4.Gbps())
	}
}

func TestFigure10AndClassTables(t *testing.T) {
	l := newLab(t)
	f10, err := l.Figure10()
	if err != nil {
		t.Fatal(err)
	}
	if f10.Write.NumClasses() != 3 || f10.Read.NumClasses() != 4 {
		t.Fatalf("class counts: write %d read %d", f10.Write.NumClasses(), f10.Read.NumClasses())
	}
	if !strings.Contains(f10.Table().Render(), "device write") {
		t.Error("figure 10 render broken")
	}

	t4, err := l.Table4()
	if err != nil {
		t.Fatal(err)
	}
	if len(t4.Rows) != 3 || len(t4.Ops) != 4 {
		t.Fatalf("table IV shape: %d rows, %d ops", len(t4.Rows), len(t4.Ops))
	}
	// RDMA_WRITE class averages: classes 1,2 at the ceiling, class 3 at ~17.
	c1 := t4.Rows[0].Stats["RDMA_WRITE"].Avg.Gbps()
	c3 := t4.Rows[2].Stats["RDMA_WRITE"].Avg.Gbps()
	if math.Abs(c1-23.3) > 1.2 {
		t.Errorf("rdma_write class1 avg = %.2f, want ~23.3", c1)
	}
	if math.Abs(c3-17.1) > 1.2 {
		t.Errorf("rdma_write class3 avg = %.2f, want ~17.1", c3)
	}
	// The proposed memcpy row dominates the I/O rows (memory runs faster
	// than any PCIe device — why Tables IV/V show memcpy up at 26-56).
	for _, row := range t4.Rows {
		mc := row.Stats["Proposed memcpy"].Avg
		for _, op := range []string{"TCP sender", "RDMA_WRITE", "SSD write"} {
			if !(mc > row.Stats[op].Avg) {
				t.Errorf("memcpy row should dominate %s in class %d", op, row.Rank)
			}
		}
	}
	out := t4.Table().Render()
	if !strings.Contains(out, "Class 3: {2,3}") {
		t.Errorf("table IV headers missing class membership:\n%s", out)
	}

	t5, err := l.Table5()
	if err != nil {
		t.Fatal(err)
	}
	if len(t5.Rows) != 4 {
		t.Fatalf("table V rows = %d", len(t5.Rows))
	}
	if !strings.Contains(t5.Table().Render(), "Class 4: {4}") {
		t.Error("table V missing class 4")
	}
	// SSD read class 4 clearly trails class 3 (18.5 vs 30.1 in the paper).
	s3 := t5.Rows[2].Stats["SSD read"].Avg.Gbps()
	s4 := t5.Rows[3].Stats["SSD read"].Avg.Gbps()
	if !(s4 < s3*0.8) {
		t.Errorf("ssd read class4 %.2f should clearly trail class3 %.2f", s4, s3)
	}
}

func TestEq1(t *testing.T) {
	l := newLab(t)
	res, err := l.Eq1()
	if err != nil {
		t.Fatal(err)
	}
	if res.RelErr > 0.05 {
		t.Errorf("Eq.1 relative error %.1f%% exceeds 5%%", res.RelErr*100)
	}
	if res.Predicted < res.Measured {
		t.Errorf("Eq.1 prediction %.2f should not undercut measurement %.2f",
			res.Predicted.Gbps(), res.Measured.Gbps())
	}
	if !strings.Contains(res.Table().Render(), "Relative error") {
		t.Error("eq1 render broken")
	}
}

func TestSchedulerExperiment(t *testing.T) {
	l := newLab(t)
	res, err := l.Scheduler()
	if err != nil {
		t.Fatal(err)
	}
	if !(res.TCP.Aggregate[sched.ClassBalanced] > res.TCP.Aggregate[sched.LocalOnly]) {
		t.Error("class-balanced TCP should beat local-only")
	}
	if !(res.Memcpy.Aggregate[sched.ClassBalanced] > 1.3*res.Memcpy.Aggregate[sched.LocalOnly]) {
		t.Error("class-balanced memcpy staging should beat local-only by >30%")
	}
	if res.Crossover == 0 {
		t.Error("sweep never crossed over")
	}
	if !strings.Contains(res.Table().Render(), "class-balanced") {
		t.Error("scheduler render broken")
	}
	if !strings.Contains(res.SweepTable().Render(), "local-only") {
		t.Error("sweep render broken")
	}
}

func TestAblationPIOvsDMA(t *testing.T) {
	l := newLab(t)
	res, err := l.AblationPIOvsDMA()
	if err != nil {
		t.Fatal(err)
	}
	cell := func(cpu, mem topology.NodeID) PIOvsDMARow {
		for _, r := range res.Rows {
			if r.CPU == cpu && r.Mem == mem {
				return r
			}
		}
		t.Fatalf("missing row %d/%d", cpu, mem)
		return PIOvsDMARow{}
	}
	// DMA always extracts more than PIO from the same pair.
	for _, r := range res.Rows {
		if !(r.DMA > r.PIO) {
			t.Errorf("DMA (%.2f) should beat PIO (%.2f) for %d/%d",
				r.DMA.Gbps(), r.PIO.Gbps(), r.CPU, r.Mem)
		}
	}
	// The modes route differently: the DMA/PIO ratio for (7,2) is far from
	// the one for (7,4) because PIO pays the starved 2->7 response path
	// while DMA reads 2->7 data directly.
	r72, r74 := cell(7, 2), cell(7, 4)
	ratio72 := float64(r72.DMA) / float64(r72.PIO)
	ratio74 := float64(r74.DMA) / float64(r74.PIO)
	if math.Abs(ratio72-ratio74) < 0.2 {
		t.Errorf("PIO and DMA should diverge per pair: ratios %.2f vs %.2f", ratio72, ratio74)
	}
	if !strings.Contains(res.Table().Render(), "DMA") {
		t.Error("A1 render broken")
	}
}

func TestAblationIRQ(t *testing.T) {
	l := newLab(t)
	res, err := l.AblationIRQ()
	if err != nil {
		t.Fatal(err)
	}
	if !(res.WithIRQ[6] > res.WithIRQ[7]) {
		t.Errorf("with IRQ, node 6 (%.2f) should beat node 7 (%.2f)",
			res.WithIRQ[6].Gbps(), res.WithIRQ[7].Gbps())
	}
	diff := math.Abs(float64(res.WithoutIRQ[6] - res.WithoutIRQ[7]))
	if diff > 0.02*float64(res.WithoutIRQ[6]) {
		t.Errorf("without IRQ, nodes 6 and 7 should match: %.2f vs %.2f",
			res.WithoutIRQ[6].Gbps(), res.WithoutIRQ[7].Gbps())
	}
	if !(res.WithoutIRQ[7] > res.WithIRQ[7]) {
		t.Error("removing the IRQ load should raise node 7's rate")
	}
	if !strings.Contains(res.Table().Render(), "IRQ") {
		t.Error("A2 render broken")
	}
}

func TestAblationBaselines(t *testing.T) {
	l := newLab(t)
	res, err := l.AblationBaselines()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	io := res.Rows[0]
	if !strings.Contains(io.Model, "iomodel") {
		t.Fatalf("first row should be the iomodel: %+v", io)
	}
	for _, row := range res.Rows[1:] {
		if !(io.Spearman > row.Spearman+0.1) {
			t.Errorf("iomodel rho %.2f should clearly beat %s rho %.2f",
				io.Spearman, row.Model, row.Spearman)
		}
	}
	if !strings.Contains(res.Table().Render(), "Spearman") {
		t.Error("A3 render broken")
	}
}

// The experiments must leave the lab's memory intact (no leaked buffers).
func TestExperimentsConserveMemory(t *testing.T) {
	l := newLab(t)
	var before [8]int64
	for n := 0; n < 8; n++ {
		before[n] = int64(l.Sys.FreeMem(topology.NodeID(n)))
	}
	if _, err := l.Eq1(); err != nil {
		t.Fatal(err)
	}
	if _, err := l.characterize(core.ModeWrite); err != nil {
		t.Fatal(err)
	}
	for n := 0; n < 8; n++ {
		if after := int64(l.Sys.FreeMem(topology.NodeID(n))); after != before[n] {
			t.Errorf("node %d free changed: %d -> %d", n, before[n], after)
		}
	}
}

func TestAblationTopologyInference(t *testing.T) {
	l := newLab(t)
	res, err := l.AblationTopologyInference()
	if err != nil {
		t.Fatal(err)
	}
	if res.Conclusive {
		t.Errorf("measured STREAM data should not identify a wiring: %+v", res.Matches)
	}
	if res.IdealScore != 1 {
		t.Errorf("hop-governed sanity inference score = %v, want 1", res.IdealScore)
	}
	if len(res.Matches) != 4 {
		t.Errorf("matches = %d, want 4", len(res.Matches))
	}
	if !strings.Contains(res.Table().Render(), "inconclusive") {
		t.Error("A4 render broken")
	}
}

func TestAblationLinkDegradation(t *testing.T) {
	l := newLab(t)
	res, err := l.AblationLinkDegradation()
	if err != nil {
		t.Fatal(err)
	}
	if !(res.Node0ClassAfter > res.Node0ClassBefore) {
		t.Errorf("node 0 should drop classes: %d -> %d",
			res.Node0ClassBefore, res.Node0ClassAfter)
	}
	if res.DegradedBandwidth.Gbps() > 18 {
		t.Errorf("degraded node 0 bandwidth = %.2f, want < 18", res.DegradedBandwidth.Gbps())
	}
	// Node 1 must survive by rerouting through node 4 (widest-shortest).
	c1, err := res.After.ClassOf(1)
	if err != nil {
		t.Fatal(err)
	}
	if c1.Rank != 2 {
		t.Errorf("node 1 class after degradation = %d, want 2 (rerouted)", c1.Rank)
	}
	// The original lab machine must be untouched.
	verify, err := l.characterize(core.ModeWrite)
	if err != nil {
		t.Fatal(err)
	}
	c0, err := verify.ClassOf(0)
	if err != nil {
		t.Fatal(err)
	}
	if c0.Rank != res.Node0ClassBefore {
		t.Error("degradation leaked into the lab machine")
	}
	if !strings.Contains(res.Table().Render(), "node 0 class") {
		t.Error("A5 render broken")
	}
}

func TestNetPairExperiment(t *testing.T) {
	l := newLab(t)
	res, err := l.NetPair()
	if err != nil {
		t.Fatal(err)
	}
	if res.Penalty < 0.2 || res.Penalty > 0.45 {
		t.Errorf("penalty = %.0f%%, want ~30%%", res.Penalty*100)
	}
	if !strings.Contains(res.Table().Render(), "end-to-end TCP") {
		t.Error("N1 render broken")
	}
}

func TestValidationCrossCheck(t *testing.T) {
	l := newLab(t)
	res, err := l.Validation()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	if res.MaxRelErr > 0.15 {
		t.Errorf("fluid/block-sim deviation %.0f%% exceeds 15%%", res.MaxRelErr*100)
	}
	if !strings.Contains(res.Table().Render(), "block-sim") {
		t.Error("V1 render broken")
	}
}

func TestAblationGapThreshold(t *testing.T) {
	l := newLab(t)
	res, err := l.AblationGapThreshold()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 8 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	// The default threshold (0.2) must produce the paper's class counts,
	// and the stable range must include it.
	var at02 ThresholdRow
	for _, row := range res.Rows {
		if row.Threshold == 0.20 {
			at02 = row
		}
	}
	if at02.WriteClasses != 3 || at02.ReadClasses != 4 {
		t.Errorf("threshold 0.2: %d write / %d read classes", at02.WriteClasses, at02.ReadClasses)
	}
	if !(res.StableLo <= 0.2 && res.StableHi >= 0.2) {
		t.Errorf("stable range [%.2f, %.2f] should include 0.2", res.StableLo, res.StableHi)
	}
	if res.StableHi-res.StableLo < 0.1 {
		t.Errorf("class structure too sensitive: stable only over [%.2f, %.2f]",
			res.StableLo, res.StableHi)
	}
	// Monotonicity: more classes at smaller thresholds.
	if !(res.Rows[0].ReadClasses >= res.Rows[len(res.Rows)-1].ReadClasses) {
		t.Error("class count should not increase with the threshold")
	}
	if !strings.Contains(res.Table().Render(), "gap-threshold") {
		t.Error("A6 render broken")
	}
}

func TestClusterScaleOut(t *testing.T) {
	res, err := ClusterScaleOut()
	if err != nil {
		t.Fatal(err)
	}
	if ratio := float64(res.Greedy) / float64(res.Pack); ratio < 2.5 {
		t.Errorf("greedy/pack = %.2f, want ~3 (three adapters)", ratio)
	}
	if float64(res.Spread) < float64(res.Greedy)*0.99 {
		t.Errorf("spread %.1f should match greedy %.1f on identical hosts",
			res.Spread.Gbps(), res.Greedy.Gbps())
	}
	if !strings.Contains(res.Table().Render(), "model-greedy") {
		t.Error("C1 render broken")
	}
}

func TestCostReduction(t *testing.T) {
	l := newLab(t)
	res, err := l.CostReduction()
	if err != nil {
		t.Fatal(err)
	}
	if res.FullRuns != 8 || res.RepRuns != 4 {
		t.Errorf("runs = %d/%d, want 8/4", res.FullRuns, res.RepRuns)
	}
	if res.Saved != 0.5 {
		t.Errorf("saved = %.2f, want 0.5 (the paper's 50%%)", res.Saved)
	}
	if res.MaxRelErr > 0.05 {
		t.Errorf("extrapolation error %.1f%% exceeds 5%%", res.MaxRelErr*100)
	}
	if !strings.Contains(res.Table().Render(), "extrapolated") {
		t.Error("R1 render broken")
	}
}

func TestConfigTables(t *testing.T) {
	l := newLab(t)
	t2, err := l.Table2()
	if err != nil {
		t.Fatal(err)
	}
	out := t2.Table().Render()
	for _, want := range []string{"32/8", "32.00GiB", "5.00MiB", "I/O hub on node 7"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table II missing %q:\n%s", want, out)
		}
	}
	t3, err := l.Table3()
	if err != nil {
		t.Fatal(err)
	}
	out = t3.Table().Render()
	for _, want := range []string{"400.00GiB", "128.00KiB", "Cubic", "16"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table III missing %q:\n%s", want, out)
		}
	}
}
