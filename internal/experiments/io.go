package experiments

import (
	"fmt"

	"numaio/internal/device"
	"numaio/internal/fio"
	"numaio/internal/report"
	"numaio/internal/topology"
	"numaio/internal/units"
)

// ioSize is the bytes-per-process used by the I/O figures. The paper moves
// 400 GB per stream for measurement stability; the simulator's rates are
// time-invariant, so a smaller transfer yields identical steady bandwidth.
const ioSize = 8 * units.GiB

// IOScaling is one figure of the Fig. 5/6/7 family: aggregate bandwidth
// versus concurrency for every NUMA binding of the benchmark processes.
type IOScaling struct {
	Engine  string
	Counts  []int             // concurrent streams/processes
	Nodes   []topology.NodeID // process binding per series
	BW      [][]units.Bandwidth
	Caption string
}

// runScaling measures one engine across (node, count) combinations.
func (l *Lab) runScaling(engine, caption string, counts []int) (*IOScaling, error) {
	nodes := l.Sys.Machine().NodeIDs()
	out := &IOScaling{Engine: engine, Counts: counts, Nodes: nodes, Caption: caption}
	runner := fio.NewRunner(l.Sys)
	for _, n := range nodes {
		var row []units.Bandwidth
		for _, c := range counts {
			rep, err := runner.Run([]fio.Job{{
				Name:    fmt.Sprintf("%s-n%d-c%d", engine, int(n), c),
				Engine:  engine,
				Node:    n,
				NumJobs: c,
				Size:    ioSize,
			}})
			if err != nil {
				return nil, err
			}
			row = append(row, rep.Aggregate)
		}
		out.BW = append(out.BW, row)
	}
	return out, nil
}

// Table renders the scaling result with one series per node binding.
func (s *IOScaling) Table() (*report.Table, error) {
	labels := make([]string, len(s.Counts))
	for i, c := range s.Counts {
		labels[i] = fmt.Sprintf("%d", c)
	}
	series := make([]report.Series, 0, len(s.Nodes))
	for i, n := range s.Nodes {
		series = append(series, report.Series{
			Name: fmt.Sprintf("node%d", int(n)), Labels: labels, Values: s.BW[i],
		})
	}
	return report.SeriesTable(s.Caption, "streams", series...)
}

// BWFor returns the bandwidth of one (node, count) cell.
func (s *IOScaling) BWFor(n topology.NodeID, count int) (units.Bandwidth, error) {
	ni, ci := -1, -1
	for i, id := range s.Nodes {
		if id == n {
			ni = i
		}
	}
	for i, c := range s.Counts {
		if c == count {
			ci = i
		}
	}
	if ni < 0 || ci < 0 {
		return 0, fmt.Errorf("experiments: no cell for node %d count %d", int(n), count)
	}
	return s.BW[ni][ci], nil
}

// Fig5Result holds both halves of Fig. 5.
type Fig5Result struct {
	Send *IOScaling
	Recv *IOScaling
}

// Figure5 measures TCP send/receive aggregate bandwidth for 1–16 parallel
// streams under every NUMA binding.
func (l *Lab) Figure5() (*Fig5Result, error) {
	counts := []int{1, 2, 4, 8, 16}
	send, err := l.runScaling(device.EngineTCPSend,
		"Fig. 5(a) — TCP send bandwidth vs streams (Gb/s)", counts)
	if err != nil {
		return nil, err
	}
	recv, err := l.runScaling(device.EngineTCPRecv,
		"Fig. 5(b) — TCP receive bandwidth vs streams (Gb/s)", counts)
	if err != nil {
		return nil, err
	}
	return &Fig5Result{Send: send, Recv: recv}, nil
}

// Fig6Result holds both halves of Fig. 6.
type Fig6Result struct {
	Write *IOScaling
	Read  *IOScaling
}

// Figure6 measures RDMA_WRITE/RDMA_READ aggregate bandwidth.
func (l *Lab) Figure6() (*Fig6Result, error) {
	counts := []int{1, 2, 4, 8}
	w, err := l.runScaling(device.EngineRDMAWrite,
		"Fig. 6(a) — RDMA_WRITE bandwidth vs streams (Gb/s)", counts)
	if err != nil {
		return nil, err
	}
	r, err := l.runScaling(device.EngineRDMARead,
		"Fig. 6(b) — RDMA_READ bandwidth vs streams (Gb/s)", counts)
	if err != nil {
		return nil, err
	}
	return &Fig6Result{Write: w, Read: r}, nil
}

// Fig7Result holds both halves of Fig. 7.
type Fig7Result struct {
	Write *IOScaling
	Read  *IOScaling
}

// Figure7 measures SSD write/read aggregate bandwidth over both cards
// (processes striped across cards, iodepth 16, 128 KiB blocks).
func (l *Lab) Figure7() (*Fig7Result, error) {
	counts := []int{2, 4, 8}
	w, err := l.runScaling(device.EngineSSDWrite,
		"Fig. 7(a) — SSD write bandwidth vs processes (Gb/s)", counts)
	if err != nil {
		return nil, err
	}
	r, err := l.runScaling(device.EngineSSDRead,
		"Fig. 7(b) — SSD read bandwidth vs processes (Gb/s)", counts)
	if err != nil {
		return nil, err
	}
	return &Fig7Result{Write: w, Read: r}, nil
}
