package experiments

import (
	"fmt"

	"numaio/internal/netpair"
	"numaio/internal/report"
	"numaio/internal/topology"
	"numaio/internal/units"
)

// NetPairResult is experiment N1: the two-host end-to-end TCP matrix over
// the Fig. 2 testbed (sender binding × receiver binding).
type NetPairResult struct {
	Nodes   []topology.NodeID
	BW      [][]units.Bandwidth
	Penalty float64
}

// NetPair measures every binding combination across two cabled hosts. The
// worst-case penalty reproduces the ~30% misplacement loss reported for
// 40 GbE NUMA hosts (reference [3] of the paper).
func (l *Lab) NetPair() (*NetPairResult, error) {
	p, err := netpair.New(topology.DL585G7)
	if err != nil {
		return nil, err
	}
	nodes, bw, err := p.Matrix(4, 2*units.GiB)
	if err != nil {
		return nil, err
	}
	return &NetPairResult{Nodes: nodes, BW: bw, Penalty: netpair.WorstPenalty(bw)}, nil
}

// Table renders the end-to-end matrix.
func (r *NetPairResult) Table() *report.Table {
	headers := []string{"send\\recv"}
	for _, n := range r.Nodes {
		headers = append(headers, fmt.Sprintf("n%d", int(n)))
	}
	t := report.NewTable(
		fmt.Sprintf("N1 — end-to-end TCP over two hosts, 4 streams (Gb/s); worst-case penalty %.0f%%", r.Penalty*100),
		headers...)
	for i, sn := range r.Nodes {
		row := []string{fmt.Sprintf("n%d", int(sn))}
		for j := range r.Nodes {
			row = append(row, report.Gbps(r.BW[i][j]))
		}
		t.AddRow(row...)
	}
	return t
}
