package experiments

import (
	"fmt"
	"math"

	"numaio/internal/core"
	"numaio/internal/device"
	"numaio/internal/fio"
	"numaio/internal/report"
	"numaio/internal/topology"
	"numaio/internal/units"
)

// CostReductionRow compares the full sweep against the class extrapolation
// for one node.
type CostReductionRow struct {
	Node         topology.NodeID
	Class        int
	Measured     units.Bandwidth // from the full per-node sweep
	Extrapolated units.Bandwidth // representative of the node's class
	RelErr       float64
}

// CostReductionResult is experiment R1: the paper's first application claim
// (Sec. V-B) — benchmarking one node per class predicts the whole sweep.
type CostReductionResult struct {
	Engine    string
	FullRuns  int
	RepRuns   int
	Rows      []CostReductionRow
	MaxRelErr float64
	// Saved is the fraction of I/O benchmark runs avoided (50% for the
	// 4-class read model of the 8-node host).
	Saved float64
}

// CostReduction measures every node's RDMA_READ rate (the expensive full
// sweep), then redoes the exercise the paper's way: benchmark only the
// class representatives and extrapolate classmates. The two tables must
// agree.
func (l *Lab) CostReduction() (*CostReductionResult, error) {
	model, err := l.characterize(core.ModeRead)
	if err != nil {
		return nil, err
	}
	runner := fio.NewRunner(l.Sys)
	runner.Sigma = 0

	measure := func(n topology.NodeID) (units.Bandwidth, error) {
		rep, err := runner.Run([]fio.Job{{
			Name: fmt.Sprintf("r1-%d", int(n)), Engine: device.EngineRDMARead,
			Node: n, NumJobs: 2, Size: ioSize,
		}})
		if err != nil {
			return 0, err
		}
		return rep.Aggregate, nil
	}

	// The cheap path: one run per class.
	repRate := make(map[int]units.Bandwidth)
	reps := model.RepresentativeNodes()
	for _, rn := range reps {
		cls, err := model.ClassOf(rn)
		if err != nil {
			return nil, err
		}
		bw, err := measure(rn)
		if err != nil {
			return nil, err
		}
		repRate[cls.Rank] = bw
	}

	// The expensive path: every node.
	out := &CostReductionResult{
		Engine:   device.EngineRDMARead,
		FullRuns: len(model.Samples),
		RepRuns:  len(reps),
	}
	for _, s := range model.Samples {
		cls, err := model.ClassOf(s.Node)
		if err != nil {
			return nil, err
		}
		full, err := measure(s.Node)
		if err != nil {
			return nil, err
		}
		row := CostReductionRow{
			Node: s.Node, Class: cls.Rank,
			Measured: full, Extrapolated: repRate[cls.Rank],
		}
		if full > 0 {
			row.RelErr = math.Abs(float64(row.Extrapolated-full)) / float64(full)
		}
		out.Rows = append(out.Rows, row)
		if row.RelErr > out.MaxRelErr {
			out.MaxRelErr = row.RelErr
		}
	}
	out.Saved = 1 - float64(out.RepRuns)/float64(out.FullRuns)
	return out, nil
}

// Table renders experiment R1.
func (r *CostReductionResult) Table() *report.Table {
	t := report.NewTable(
		fmt.Sprintf("R1 — class representatives predict the full %s sweep (%d runs instead of %d: %.0f%% saved, max error %.1f%%)",
			r.Engine, r.RepRuns, r.FullRuns, r.Saved*100, r.MaxRelErr*100),
		"node", "class", "full sweep Gb/s", "extrapolated Gb/s", "error")
	for _, row := range r.Rows {
		t.AddRow(fmt.Sprintf("%d", int(row.Node)), fmt.Sprintf("%d", row.Class),
			report.Gbps2(row.Measured), report.Gbps2(row.Extrapolated),
			fmt.Sprintf("%.1f%%", row.RelErr*100))
	}
	return t
}
