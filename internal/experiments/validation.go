package experiments

import (
	"fmt"
	"math"

	"numaio/internal/blocksim"
	"numaio/internal/core"
	"numaio/internal/fabric"
	"numaio/internal/report"
	"numaio/internal/simhost"
	"numaio/internal/topology"
	"numaio/internal/units"
)

// CrossValRow compares the two simulators for one transfer.
type CrossValRow struct {
	ID     string
	Fluid  units.Bandwidth
	Blocks units.Bandwidth
	RelErr float64
}

// CrossValResult is experiment V1: agreement between the analytic fluid
// model and the discrete block-level simulation on a contended scenario.
type CrossValResult struct {
	Rows      []CrossValRow
	MaxRelErr float64
}

// Validation runs four concurrent copies toward node 7 (two per source
// class) through both simulators and compares per-transfer rates.
func (l *Lab) Validation() (*CrossValResult, error) {
	m := l.Sys.Machine()
	resources := fabric.MachineResources(m)
	srcs := []topology.NodeID{0, 1, 2, 6}

	var fluidTr []simhost.Transfer
	var blockTr []blocksim.Transfer
	for i, src := range srcs {
		usages, err := fabric.CopyFlowUsages(m, src, Target)
		if err != nil {
			return nil, err
		}
		id := fmt.Sprintf("copy-n%d-%d", int(src), i)
		fluidTr = append(fluidTr, simhost.Transfer{ID: id, Bytes: 256 * units.MiB, Usages: usages})
		blockTr = append(blockTr, blocksim.Transfer{
			ID: id, Bytes: 256 * units.MiB, Stages: blocksim.FromUsages(usages), Window: 8,
		})
	}

	fluid, err := simhost.RunFluid(resources, fluidTr)
	if err != nil {
		return nil, err
	}
	blocks, err := blocksim.Run(resources, blockTr, blocksim.Config{})
	if err != nil {
		return nil, err
	}

	out := &CrossValResult{}
	for _, tr := range fluidTr {
		f := fluid.Transfers[tr.ID].InitialRate
		b := blocks[tr.ID].Throughput
		rel := math.Abs(float64(f-b)) / float64(f)
		out.Rows = append(out.Rows, CrossValRow{ID: tr.ID, Fluid: f, Blocks: b, RelErr: rel})
		if rel > out.MaxRelErr {
			out.MaxRelErr = rel
		}
	}
	return out, nil
}

// Table renders experiment V1.
func (r *CrossValResult) Table() *report.Table {
	t := report.NewTable(
		fmt.Sprintf("V1 — fluid model vs block-level simulation (max deviation %.0f%%)", r.MaxRelErr*100),
		"transfer", "fluid Gb/s", "block-sim Gb/s", "deviation")
	for _, row := range r.Rows {
		t.AddRow(row.ID, report.Gbps2(row.Fluid), report.Gbps2(row.Blocks),
			fmt.Sprintf("%.1f%%", row.RelErr*100))
	}
	return t
}

// ThresholdRow is one gap-threshold setting of ablation A6.
type ThresholdRow struct {
	Threshold    float64
	WriteClasses int
	ReadClasses  int
}

// ThresholdResult is ablation A6: how the classification reacts to the gap
// threshold, the one free parameter of the clustering.
type ThresholdResult struct {
	Rows []ThresholdRow
	// StableRange is the widest contiguous run of thresholds that yields
	// the paper's class counts (3 write, 4 read).
	StableLo, StableHi float64
}

// AblationGapThreshold sweeps the classification threshold.
func (l *Lab) AblationGapThreshold() (*ThresholdResult, error) {
	write, err := l.characterize(core.ModeWrite)
	if err != nil {
		return nil, err
	}
	read, err := l.characterize(core.ModeRead)
	if err != nil {
		return nil, err
	}
	m := l.Sys.Machine()
	out := &ThresholdResult{}
	inStable := false
	for _, th := range []float64{0.05, 0.10, 0.15, 0.20, 0.25, 0.30, 0.40, 0.50} {
		wc, err := core.Classify(m, Target, write.Samples, th)
		if err != nil {
			return nil, err
		}
		rc, err := core.Classify(m, Target, read.Samples, th)
		if err != nil {
			return nil, err
		}
		out.Rows = append(out.Rows, ThresholdRow{
			Threshold: th, WriteClasses: len(wc), ReadClasses: len(rc),
		})
		stable := len(wc) == 3 && len(rc) == 4
		if stable && !inStable {
			out.StableLo, inStable = th, true
		}
		if stable {
			out.StableHi = th
		} else if inStable && out.StableHi > 0 {
			inStable = false
		}
	}
	return out, nil
}

// Table renders ablation A6.
func (r *ThresholdResult) Table() *report.Table {
	t := report.NewTable(
		fmt.Sprintf("Ablation A6 — gap-threshold sensitivity (paper's class counts stable over [%.2f, %.2f])",
			r.StableLo, r.StableHi),
		"threshold", "write classes", "read classes")
	for _, row := range r.Rows {
		t.AddRow(fmt.Sprintf("%.2f", row.Threshold),
			fmt.Sprintf("%d", row.WriteClasses), fmt.Sprintf("%d", row.ReadClasses))
	}
	return t
}
