// Package experiments regenerates every table and figure of the paper's
// evaluation on the simulated testbed. Each experiment returns structured
// data plus a rendered table; cmd/paperbench prints them all and writes the
// EXPERIMENTS.md comparison, and the repository-root benchmarks wrap each
// one as a testing.B target.
//
// The per-experiment index lives in DESIGN.md §4.
package experiments

import (
	"fmt"

	"numaio/internal/numa"
	"numaio/internal/report"
	"numaio/internal/stream"
	"numaio/internal/telemetry"
	"numaio/internal/topology"
	"numaio/internal/units"
)

// Lab is a fresh simulated testbed (Fig. 2): the DL585 G7 with the NIC and
// SSDs on node 7, plus a numa system booted on it.
type Lab struct {
	Sys *numa.System
	// Parallelism is forwarded to every characterization the experiments
	// run (core.Config.Parallelism); 0 keeps them serial. Results are
	// identical at any setting, so EXPERIMENTS.md does not depend on it.
	Parallelism int
	// Tracer, when non-nil, records every characterization the experiments
	// run (core.Config.Tracer). Tracing shapes no results.
	Tracer *telemetry.Tracer
}

// NewLab boots the testbed.
func NewLab() (*Lab, error) {
	sys, err := numa.NewSystem(topology.DL585G7())
	if err != nil {
		return nil, err
	}
	return &Lab{Sys: sys}, nil
}

// Target is the NUMA node the I/O devices are attached to.
const Target = topology.NodeID(7)

// Table1Row is one server configuration of Table I.
type Table1Row struct {
	Server   string
	Paper    float64
	Measured float64
}

// Table1Result reproduces Table I: NUMA factors of four server types.
type Table1Result struct {
	Rows []Table1Row
}

// Table1 measures the NUMA factor of the four canned machines.
func Table1() (*Table1Result, error) {
	out := &Table1Result{}
	for _, row := range topology.TableIMachines() {
		f, err := row.Machine.NUMAFactor()
		if err != nil {
			return nil, err
		}
		out.Rows = append(out.Rows, Table1Row{
			Server: row.Machine.Name, Paper: row.Paper, Measured: f,
		})
	}
	return out, nil
}

// Table renders the result.
func (r *Table1Result) Table() *report.Table {
	t := report.NewTable("Table I — NUMA factor of different server configurations",
		"Server type", "Paper", "Measured")
	for _, row := range r.Rows {
		t.AddRow(row.Server, fmt.Sprintf("%.1f", row.Paper), fmt.Sprintf("%.2f", row.Measured))
	}
	return t
}

// Fig3Result is the full STREAM bandwidth matrix of Fig. 3.
type Fig3Result struct {
	Matrix *stream.Matrix
}

// Figure3 measures the 8×8 STREAM Copy matrix (4 threads, 20 MiB arrays,
// max of 100 runs).
func (l *Lab) Figure3() (*Fig3Result, error) {
	r, err := stream.New(l.Sys, stream.Config{})
	if err != nil {
		return nil, err
	}
	mx, err := r.Matrix()
	if err != nil {
		return nil, err
	}
	return &Fig3Result{Matrix: mx}, nil
}

// Table renders the matrix with CPU rows and MEM columns, like Fig. 3.
func (r *Fig3Result) Table() *report.Table {
	headers := []string{"CPU\\MEM"}
	for _, n := range r.Matrix.Nodes {
		headers = append(headers, fmt.Sprintf("MEM%d", int(n)))
	}
	t := report.NewTable("Fig. 3 — STREAM Copy bandwidth matrix (Gb/s)", headers...)
	for i, cpu := range r.Matrix.Nodes {
		row := []string{fmt.Sprintf("CPU%d", int(cpu))}
		for j := range r.Matrix.Nodes {
			row = append(row, report.Gbps2(r.Matrix.BW[i][j]))
		}
		t.AddRow(row...)
	}
	return t
}

// Fig4Result holds the two STREAM-derived models of the target node.
type Fig4Result struct {
	Nodes      []topology.NodeID
	CPUCentric []units.Bandwidth // threads on target, data sweeping
	MemCentric []units.Bandwidth // data on target, threads sweeping
}

// Figure4 builds the CPU-centric and memory-centric models of node 7.
func (l *Lab) Figure4() (*Fig4Result, error) {
	r, err := stream.New(l.Sys, stream.Config{})
	if err != nil {
		return nil, err
	}
	mx, err := r.Matrix()
	if err != nil {
		return nil, err
	}
	cpu, err := mx.CPUCentric(Target)
	if err != nil {
		return nil, err
	}
	mem, err := mx.MemCentric(Target)
	if err != nil {
		return nil, err
	}
	return &Fig4Result{Nodes: mx.Nodes, CPUCentric: cpu, MemCentric: mem}, nil
}

// Table renders both models side by side.
func (r *Fig4Result) Table() (*report.Table, error) {
	labels := make([]string, len(r.Nodes))
	for i, n := range r.Nodes {
		labels[i] = fmt.Sprintf("node%d", int(n))
	}
	return report.SeriesTable(
		"Fig. 4 — STREAM models of node 7 (Gb/s)", "node",
		report.Series{Name: "CPU centric", Labels: labels, Values: r.CPUCentric},
		report.Series{Name: "memory centric", Labels: labels, Values: r.MemCentric},
	)
}
