package fabric

import (
	"encoding/json"
	"fmt"
	"reflect"
	"strconv"
	"testing"

	"numaio/internal/topology"
	"numaio/internal/units"
)

// internMachines are the reference topologies the interned solver must
// reproduce exactly (same set reuse_test.go's contract covers for RunFluid).
var internMachines = []string{"dl585g7", "magny-a", "intel-4s4n"}

// machineWorkload builds a contended copy workload over a machine: four
// flows from every node into the highest node, with per-node core budgets
// so demand- and resource-frozen flows both occur.
func machineWorkload(t *testing.T, name string) ([]Resource, []Flow) {
	t.Helper()
	m, err := topology.ProfileByName(name)
	if err != nil {
		t.Fatal(err)
	}
	resources := MachineResources(m)
	for _, n := range m.Nodes {
		resources = append(resources, Resource{
			ID:       CoreResource(n.ID),
			Capacity: units.Bandwidth(float64(n.Cores)) * units.Gbps,
		})
	}
	dst := m.Nodes[len(m.Nodes)-1].ID
	var flows []Flow
	for _, n := range m.Nodes {
		usages, err := CopyFlowUsages(m, n.ID, dst)
		if err != nil {
			t.Fatal(err)
		}
		for k := 0; k < 4; k++ {
			f := Flow{ID: fmt.Sprintf("f%d-%d", int(n.ID), k), Usages: usages}
			if k == 3 {
				// One demand-capped flow per node exercises demand freezing.
				f.Demand = units.Bandwidth(float64(n.ID)+1) * units.Gbps / 4
			}
			flows = append(flows, f)
		}
	}
	return resources, flows
}

// allocJSON canonicalizes an Allocation for byte-level comparison.
func allocJSON(t *testing.T, a *Allocation) []byte {
	t.Helper()
	b, err := json.Marshal(a)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestSolveIndexedMatchesSolve: the indexed fast path must produce an
// Allocation byte-identical to the string-keyed Solve on every reference
// machine — rates, bottlenecks and utilization all included.
func TestSolveIndexedMatchesSolve(t *testing.T) {
	for _, name := range internMachines {
		t.Run(name, func(t *testing.T) {
			resources, flows := machineWorkload(t, name)
			build := func() *Solver {
				s := NewSolver()
				for _, r := range resources {
					mustSetResource(t, s, r)
				}
				for _, f := range flows {
					mustAddFlow(t, s, f)
				}
				return s
			}
			want, err := build().Solve()
			if err != nil {
				t.Fatal(err)
			}
			ia, err := build().SolveIndexed()
			if err != nil {
				t.Fatal(err)
			}
			got := ia.Allocation()
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("indexed allocation differs from Solve:\n got %v\nwant %v", got, want)
			}
			if g, w := allocJSON(t, got), allocJSON(t, want); string(g) != string(w) {
				t.Fatalf("serialized allocations differ:\n got %s\nwant %s", g, w)
			}
			// The indexed accessors agree with the materialized maps.
			for i := 0; i < ia.NumFlows(); i++ {
				id := ia.FlowID(i)
				if ia.Rate(i) != want.Rates[id] {
					t.Errorf("Rate(%d)=%v, want %v", i, ia.Rate(i), want.Rates[id])
				}
				if ia.Bottleneck(i) != want.Bottlenecks[id] {
					t.Errorf("Bottleneck(%d)=%q, want %q", i, ia.Bottleneck(i), want.Bottlenecks[id])
				}
			}
			for ri := 0; ri < ia.NumResources(); ri++ {
				if ia.Utilization(ri) != want.Utilization[ia.ResourceID(ri)] {
					t.Errorf("Utilization(%d) mismatch", ri)
				}
			}
		})
	}
}

// TestPooledSolverMatchesFresh: a recycled pooled solver must behave exactly
// like a freshly constructed one, including across machines of different
// sizes, so the request path can pool solvers without changing any output.
func TestPooledSolverMatchesFresh(t *testing.T) {
	// Dirty the pool with a solve of each machine first, then re-solve every
	// machine on pooled solvers and compare against fresh ones.
	for _, name := range internMachines {
		resources, flows := machineWorkload(t, name)
		s := AcquireSolver()
		for _, r := range resources {
			mustSetResource(t, s, r)
		}
		for _, f := range flows {
			mustAddFlow(t, s, f)
		}
		if _, err := s.Solve(); err != nil {
			t.Fatal(err)
		}
		ReleaseSolver(s)
	}
	for _, name := range internMachines {
		t.Run(name, func(t *testing.T) {
			resources, flows := machineWorkload(t, name)
			fresh := NewSolver()
			pooled := AcquireSolver()
			defer ReleaseSolver(pooled)
			for _, s := range []*Solver{fresh, pooled} {
				for _, r := range resources {
					mustSetResource(t, s, r)
				}
				for _, f := range flows {
					mustAddFlow(t, s, f)
				}
			}
			want, err := fresh.Solve()
			if err != nil {
				t.Fatal(err)
			}
			got, err := pooled.Solve()
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("pooled allocation differs from fresh:\n got %v\nwant %v", got, want)
			}
		})
	}
}

// TestInternedResourceIDs: the interned constructors must spell IDs exactly
// like the historical fmt.Sprintf forms, inside and outside the interned
// range.
func TestInternedResourceIDs(t *testing.T) {
	for _, i := range []int{0, 1, 7, internedIDs - 1, internedIDs, 1000} {
		if got, want := LinkResource(i), ResourceID("link:"+strconv.Itoa(i)); got != want {
			t.Errorf("LinkResource(%d) = %q, want %q", i, got, want)
		}
		n := topology.NodeID(i)
		if got, want := MemResource(n), ResourceID("mem:"+strconv.Itoa(i)); got != want {
			t.Errorf("MemResource(%d) = %q, want %q", i, got, want)
		}
		if got, want := CoreResource(n), ResourceID("core:"+strconv.Itoa(i)); got != want {
			t.Errorf("CoreResource(%d) = %q, want %q", i, got, want)
		}
	}
	if got := DeviceResource("nic0", "tcp_send"); got != "dev:nic0:tcp_send" {
		t.Errorf("DeviceResource = %q", got)
	}
}

// TestSolverReusedAddFlowKeepsUsageOrder: after Reset, reused usage-slice
// capacity must not leak stale entries or misorder fresh usages.
func TestSolverReusedAddFlowKeepsUsageOrder(t *testing.T) {
	s := NewSolver()
	for _, id := range []ResourceID{"a", "b", "c", "d"} {
		mustSetResource(t, s, Resource{ID: id, Capacity: 10 * units.Gbps})
	}
	mustAddFlow(t, s, Flow{ID: "f", Usages: []Usage{
		{Resource: "d", Weight: 1}, {Resource: "a", Weight: 1},
		{Resource: "c", Weight: 1}, {Resource: "b", Weight: 1},
	}})
	s.Reset()
	// Fewer usages than before: the parked capacity is longer than needed.
	mustAddFlow(t, s, Flow{ID: "g", Usages: []Usage{
		{Resource: "c", Weight: 2}, {Resource: "a", Weight: 1},
	}})
	a, err := s.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if got := a.Rate("g").Gbps(); got != 5 {
		t.Errorf("rate = %v, want 5 (bottleneck c at weight 2)", got)
	}
	if got := a.Bottlenecks["g"]; got != "c" {
		t.Errorf("bottleneck = %q, want c", got)
	}
}
