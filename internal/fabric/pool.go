package fabric

import "sync"

// solverPool recycles Solvers — with their grown flow, index and scratch
// buffers — across independent solves. The request-serving path builds a
// solver per fluid run (one per /v1/place evaluation, for example); pooling
// keeps those runs from re-growing every buffer each time.
var solverPool = sync.Pool{New: func() any {
	statPoolNews.Add(1)
	return NewSolver()
}}

// AcquireSolver returns an empty solver from the package pool. Its resource
// and flow sets are clear, but previously grown internal buffers are
// retained, so repeated acquire/solve/release cycles over similarly sized
// problems stop allocating. Pair with ReleaseSolver.
func AcquireSolver() *Solver {
	statPoolGets.Add(1)
	return solverPool.Get().(*Solver)
}

// ReleaseSolver clears the solver and returns it to the pool. The solver —
// and any IndexedAllocation viewing it — must not be used afterwards.
func ReleaseSolver(s *Solver) {
	if s == nil {
		return
	}
	s.clearAll()
	solverPool.Put(s)
}

// clearAll empties both the resource and flow sets while keeping every
// backing array for reuse.
func (s *Solver) clearAll() {
	s.resList = s.resList[:0]
	clear(s.resIndex)
	s.sorted = s.sorted[:0]
	s.rank = s.rank[:0]
	s.ckptValid = false // checkpointed usages index a dead resource table
	s.Reset()
}
