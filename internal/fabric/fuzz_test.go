package fabric

import (
	"testing"

	"numaio/internal/topology"
	"numaio/internal/units"
)

// FuzzIncrementalOps decodes an arbitrary byte string into an add/remove/
// retune/solve op sequence against the DL585 G7 fabric and checks, at every
// solve and at the end, that the incremental solver's allocation is
// bit-identical to a solver rebuilt from scratch. The seed corpus pins the
// dirty-set corner cases: removal splitting a component, back-to-back
// solves (the nothing-changed fast path), capacity retunes, demand-frozen
// flows, and interleaved add/remove bursts. `go test` runs the seeds as
// part of tier-1; `go test -fuzz FuzzIncrementalOps ./internal/fabric`
// explores further.
func FuzzIncrementalOps(f *testing.F) {
	const (
		opAdd     = 0 // + src, dst, demand selector
		opRemove  = 1 // + index selector
		opSolve   = 2
		opRetune  = 3 // + resource selector, factor selector
		opBatch   = 4 // + count selector, count index selectors (RemoveFlowsAt)
		opCkpt    = 5 // checkpoint, drop everything, restore
		opModulus = 6
	)
	f.Add([]byte{opAdd, 0, 7, 0, opAdd, 3, 7, 0, opSolve, opRemove, 0, opSolve})
	f.Add([]byte{opAdd, 0, 0, 0, opAdd, 1, 1, 0, opAdd, 2, 2, 0, opSolve, opRemove, 1, opSolve, opSolve})
	f.Add([]byte{opAdd, 0, 3, 1, opAdd, 3, 0, 2, opSolve, opRetune, 5, 1, opSolve})
	f.Add([]byte{opAdd, 4, 5, 0, opAdd, 5, 6, 0, opAdd, 6, 7, 0, opSolve, opRemove, 1, opSolve, opAdd, 1, 2, 3, opSolve})
	f.Add([]byte{opSolve, opAdd, 7, 0, 0, opSolve, opRemove, 0, opSolve, opSolve})
	f.Add([]byte{
		opAdd, 0, 7, 0, opAdd, 1, 7, 0, opAdd, 2, 7, 0, opAdd, 3, 7, 0,
		opSolve, opRetune, 0, 0, opRemove, 2, opSolve, opRemove, 0, opRemove, 0, opSolve,
	})
	// Batch removal compacting a solved table, mid-run and to empty.
	f.Add([]byte{
		opAdd, 0, 7, 0, opAdd, 1, 7, 0, opAdd, 2, 7, 0, opAdd, 3, 7, 0,
		opSolve, opBatch, 2, 0, 2, opSolve, opBatch, 2, 0, 1, opSolve,
	})
	// Checkpoint/restore round-trips: solved and unsolved tables, plus a
	// retune between restore cycles.
	f.Add([]byte{opAdd, 0, 7, 0, opAdd, 5, 2, 1, opSolve, opCkpt, opSolve, opCkpt, opRetune, 3, 2, opSolve})
	f.Add([]byte{opAdd, 2, 2, 0, opCkpt, opSolve, opRemove, 0, opSolve})

	machine := topology.DL585G7()
	nodes := machine.NodeIDs()
	f.Fuzz(func(t *testing.T, ops []byte) {
		h := newIncrementalHarness(t, MachineResources(machine))
		const maxFlows = 24
		solves := 0
		for pc := 0; pc < len(ops) && solves < 64; {
			switch ops[pc] % opModulus {
			case opAdd:
				if pc+3 >= len(ops) || len(h.flows) >= maxFlows {
					pc++
					continue
				}
				src := nodes[int(ops[pc+1])%len(nodes)]
				dst := nodes[int(ops[pc+2])%len(nodes)]
				usages, err := CopyFlowUsages(machine, src, dst)
				if err != nil {
					t.Fatal(err)
				}
				fl := Flow{Usages: usages}
				if d := ops[pc+3] % 8; d > 0 {
					fl.Demand = units.Bandwidth(d) * units.Gbps
				}
				h.add(t, fl)
				pc += 4
			case opRemove:
				if pc+1 >= len(ops) || len(h.flows) == 0 {
					pc++
					continue
				}
				h.removeAt(int(ops[pc+1]) % len(h.flows))
				pc += 2
			case opSolve:
				assertSameAllocation(t, "fuzz solve", h.inc, h.fresh(t))
				solves++
				pc++
			case opRetune:
				if pc+2 >= len(ops) {
					pc++
					continue
				}
				factors := []float64{0.5, 0.75, 1.5, 2}
				h.scaleResource(t, int(ops[pc+1])%len(h.resources), factors[int(ops[pc+2])%len(factors)])
				pc += 3
			case opBatch:
				if pc+1 >= len(ops) || len(h.flows) == 0 {
					pc++
					continue
				}
				k := 1 + int(ops[pc+1])%4
				if pc+1+k >= len(ops) {
					pc += 2
					continue
				}
				pick := map[int]bool{}
				for j := 0; j < k; j++ {
					pick[int(ops[pc+2+j])%len(h.flows)] = true
				}
				var idx []int32
				for i := range h.flows {
					if pick[i] {
						idx = append(idx, int32(i))
					}
				}
				h.removeBatch(idx)
				pc += 2 + k
			case opCkpt:
				if len(h.flows) > 0 {
					h.checkpointCycle(t)
				}
				pc++
			}
		}
		if len(h.flows) > 0 {
			assertSameAllocation(t, "fuzz final", h.inc, h.fresh(t))
		}
	})
}
