package fabric

import (
	"fmt"

	"numaio/internal/topology"
)

// MachineResources returns the standing resources of a machine: one per
// directed link ("link:<i>") and one per node memory controller
// ("mem:<n>"). Core budgets and device engines are scenario-dependent and
// are registered by callers.
func MachineResources(m *topology.Machine) []Resource {
	var out []Resource
	for i, l := range m.Links() {
		out = append(out, Resource{ID: LinkResource(i), Capacity: l.Capacity})
	}
	for _, n := range m.Nodes {
		out = append(out, Resource{ID: MemResource(n.ID), Capacity: n.MemBandwidth})
	}
	return out
}

// NewMachineSolver returns a solver pre-loaded with MachineResources.
func NewMachineSolver(m *topology.Machine) (*Solver, error) {
	s := NewSolver()
	for _, r := range MachineResources(m) {
		if err := s.SetResource(r); err != nil {
			return nil, fmt.Errorf("fabric: machine %q: %w", m.Name, err)
		}
	}
	return s, nil
}

// PathUsages converts a route (link indices) into link usages with the
// given weight.
func PathUsages(route []int, weight float64) []Usage {
	out := make([]Usage, 0, len(route))
	for _, li := range route {
		out = append(out, Usage{Resource: LinkResource(li), Weight: weight})
	}
	return out
}

// CopyFlowUsages returns the resource usages of a bulk memory copy from
// src's memory to dst's memory performed by a DMA-style engine: the
// directed links of the src→dst route, plus one controller read at src and
// one controller write at dst. When src == dst the controller is charged
// twice, which halves the achievable local copy rate — the behaviour the
// paper relies on for the target node's "local" class.
func CopyFlowUsages(m *topology.Machine, src, dst topology.NodeID) ([]Usage, error) {
	route, err := m.RouteNodes(src, dst)
	if err != nil {
		return nil, err
	}
	usages := PathUsages(route, 1)
	usages = append(usages,
		Usage{Resource: MemResource(src), Weight: 1},
		Usage{Resource: MemResource(dst), Weight: 1},
	)
	return usages, nil
}

// FillFlowUsages returns the usages of a write-only PIO stream (memset):
// the cores on node c stream stores toward memory on node mem. Only the
// outbound direction carries data and the controller is charged once, which
// is why memset runs faster than copy on real hosts.
func FillFlowUsages(m *topology.Machine, c, mem topology.NodeID, p PIOUsageParams) ([]Usage, error) {
	if c == mem {
		return []Usage{{Resource: MemResource(mem), Weight: 1}}, nil
	}
	outbound, err := m.RouteNodes(c, mem)
	if err != nil {
		return nil, err
	}
	var usages []Usage
	for _, li := range outbound {
		usages = append(usages, Usage{Resource: LinkResource(li), Weight: 1 + p.RequestOverhead})
	}
	usages = append(usages, Usage{Resource: MemResource(mem), Weight: 1})
	return usages, nil
}

// PIOUsageParams tunes how a programmed-I/O (CPU-driven) access pattern
// loads the fabric. STREAM-style kernels issue read requests toward the
// memory node and write data back; both directions carry data plus command
// overhead, and read responses can be penalized per link
// (Link.PIOResponsePenalty), modelling the cache-coherent buffer
// asymmetries of Sec. IV-A.
type PIOUsageParams struct {
	RequestOverhead  float64 // extra load on core→memory links (commands, writes)
	ResponseOverhead float64 // extra load on memory→core links (probes)
}

// DefaultPIOParams are the calibrated defaults.
func DefaultPIOParams() PIOUsageParams {
	return PIOUsageParams{RequestOverhead: 0.15, ResponseOverhead: 0.05}
}

// PIOFlowUsages returns the usages of a PIO stream running on the cores of
// node c against memory of node mem. Both the outbound (write data +
// requests) and inbound (read data + responses) directions are loaded; the
// memory controller of mem is charged twice (the kernel both reads and
// writes its arrays there).
//
// Read-response capacity penalties are expressed by inflating the flow's
// weight on penalized links (a penalty p < 1 becomes weight 1/p).
func PIOFlowUsages(m *topology.Machine, c, mem topology.NodeID, p PIOUsageParams) ([]Usage, error) {
	if c == mem {
		return []Usage{{Resource: MemResource(mem), Weight: 2}}, nil
	}
	outbound, err := m.RouteNodes(c, mem)
	if err != nil {
		return nil, err
	}
	inbound, err := m.RouteNodes(mem, c)
	if err != nil {
		return nil, err
	}
	var usages []Usage
	for _, li := range outbound {
		usages = append(usages, Usage{Resource: LinkResource(li), Weight: 1 + p.RequestOverhead})
	}
	for _, li := range inbound {
		l := m.Link(li)
		w := (1 + p.ResponseOverhead) / l.PIOResponseFactor()
		usages = append(usages, Usage{Resource: LinkResource(li), Weight: w})
	}
	usages = append(usages, Usage{Resource: MemResource(mem), Weight: 2})
	return usages, nil
}
