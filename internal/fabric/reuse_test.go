package fabric

import (
	"fmt"
	"math"
	"reflect"
	"testing"

	"numaio/internal/units"
)

// TestSolverResetKeepsResources: after Reset the flow set is empty but the
// resources survive, and a fresh round over the same fabric solves cleanly.
func TestSolverResetKeepsResources(t *testing.T) {
	s := NewSolver()
	mustSetResource(t, s, Resource{ID: "l", Capacity: 30 * units.Gbps})
	mustAddFlow(t, s, Flow{ID: "f0", Usages: []Usage{{Resource: "l", Weight: 1}}})
	if _, err := s.Solve(); err != nil {
		t.Fatal(err)
	}
	s.Reset()
	if got := s.NumFlows(); got != 0 {
		t.Fatalf("flows after Reset = %d, want 0", got)
	}
	if _, ok := s.Resource("l"); !ok {
		t.Fatal("resource lost across Reset")
	}
	// The old flow ID is free again.
	mustAddFlow(t, s, Flow{ID: "f0", Usages: []Usage{{Resource: "l", Weight: 1}}})
	mustAddFlow(t, s, Flow{ID: "f1", Usages: []Usage{{Resource: "l", Weight: 1}}})
	a, err := s.Solve()
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"f0", "f1"} {
		if got := a.Rate(id).Gbps(); math.Abs(got-15) > 1e-6 {
			t.Errorf("rate[%s] = %v, want 15", id, got)
		}
	}
}

// TestSolverRemoveFlow: removing a flow frees its share and its ID, and
// removing an unknown flow reports false.
func TestSolverRemoveFlow(t *testing.T) {
	s := NewSolver()
	mustSetResource(t, s, Resource{ID: "l", Capacity: 30 * units.Gbps})
	for i := 0; i < 3; i++ {
		mustAddFlow(t, s, Flow{ID: fmt.Sprintf("f%d", i),
			Usages: []Usage{{Resource: "l", Weight: 1}}})
	}
	if !s.RemoveFlow("f1") {
		t.Fatal("RemoveFlow(f1) = false, want true")
	}
	if s.RemoveFlow("f1") {
		t.Fatal("second RemoveFlow(f1) = true, want false")
	}
	if got := s.NumFlows(); got != 2 {
		t.Fatalf("flows = %d, want 2", got)
	}
	a, err := s.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := a.Rates["f1"]; ok {
		t.Error("removed flow still allocated")
	}
	for _, id := range []string{"f0", "f2"} {
		if got := a.Rate(id).Gbps(); math.Abs(got-15) > 1e-6 {
			t.Errorf("rate[%s] = %v, want 15", id, got)
		}
	}
	// The removed ID can be re-added.
	mustAddFlow(t, s, Flow{ID: "f1", Usages: []Usage{{Resource: "l", Weight: 1}}})
	if got := s.NumFlows(); got != 3 {
		t.Fatalf("flows after re-add = %d, want 3", got)
	}
}

// TestSolverReuseMatchesFresh: a reused solver (shrinking flow set via
// RemoveFlow) must produce exactly the allocation a freshly built solver
// produces for the same flow subset — this is the contract RunFluid's
// fast path depends on.
func TestSolverReuseMatchesFresh(t *testing.T) {
	res := []Resource{
		{ID: "a", Capacity: 20 * units.Gbps},
		{ID: "b", Capacity: 35 * units.Gbps},
		{ID: "c", Capacity: 50 * units.Gbps},
	}
	flows := []Flow{
		{ID: "f0", Usages: []Usage{{Resource: "a", Weight: 1}, {Resource: "c", Weight: 1}}},
		{ID: "f1", Usages: []Usage{{Resource: "a", Weight: 1}, {Resource: "b", Weight: 1}}},
		{ID: "f2", Demand: 4 * units.Gbps, Usages: []Usage{{Resource: "b", Weight: 2}}},
		{ID: "f3", Usages: []Usage{{Resource: "b", Weight: 1}, {Resource: "c", Weight: 1}}},
		{ID: "f4", Usages: []Usage{{Resource: "c", Weight: 1}}},
	}
	build := func(fs []Flow) *Solver {
		s := NewSolver()
		for _, r := range res {
			mustSetResource(t, s, r)
		}
		for _, f := range fs {
			mustAddFlow(t, s, f)
		}
		return s
	}

	reused := build(flows)
	// Remove flows one at a time; after each removal the reused solver must
	// match a solver built from scratch with the surviving flows.
	live := append([]Flow(nil), flows...)
	for len(live) > 0 {
		gotA, err := reused.Solve()
		if err != nil {
			t.Fatal(err)
		}
		wantA, err := build(live).Solve()
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(gotA.Rates, wantA.Rates) {
			t.Fatalf("reused rates %v != fresh rates %v (live=%d)", gotA.Rates, wantA.Rates, len(live))
		}
		if !reflect.DeepEqual(gotA.Bottlenecks, wantA.Bottlenecks) {
			t.Fatalf("reused bottlenecks %v != fresh %v (live=%d)", gotA.Bottlenecks, wantA.Bottlenecks, len(live))
		}
		if !reflect.DeepEqual(gotA.Utilization, wantA.Utilization) {
			t.Fatalf("reused utilization %v != fresh %v (live=%d)", gotA.Utilization, wantA.Utilization, len(live))
		}
		// Drop the middle survivor to exercise non-edge splices.
		victim := live[len(live)/2].ID
		if !reused.RemoveFlow(victim) {
			t.Fatalf("RemoveFlow(%s) = false", victim)
		}
		for i := range live {
			if live[i].ID == victim {
				live = append(live[:i], live[i+1:]...)
				break
			}
		}
	}
}

// TestSolverSetResourceReplaces: re-registering a resource updates its
// capacity in place without duplicating it.
func TestSolverSetResourceReplaces(t *testing.T) {
	s := NewSolver()
	mustSetResource(t, s, Resource{ID: "l", Capacity: 10 * units.Gbps})
	mustAddFlow(t, s, Flow{ID: "f", Usages: []Usage{{Resource: "l", Weight: 1}}})
	mustSetResource(t, s, Resource{ID: "l", Capacity: 40 * units.Gbps})
	a, err := s.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if got := a.Rate("f").Gbps(); math.Abs(got-40) > 1e-6 {
		t.Errorf("rate = %v, want 40 after capacity update", got)
	}
}
