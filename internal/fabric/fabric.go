// Package fabric computes bandwidth allocations for concurrent transfers
// over a shared machine fabric.
//
// The model is flow-based: every transfer is a Flow that consumes a set of
// Resources (directed interconnect links, memory controllers, device DMA
// engines, core budgets) with per-resource weights. A weight of 1 means the
// flow loads the resource with its full data rate; a local memory copy loads
// its node's controller with weight 2 (read + write); a device engine that
// serves a slow path charges more engine time per byte, expressed as a
// weight above 1.
//
// Solve performs weighted max-min fair allocation by progressive filling
// (water-filling): all unfrozen flows rise at the same rate, a flow freezes
// when one of its resources saturates or its demand is met. This yields the
// equal-share contention behaviour of real interconnects and, for weighted
// device engines, the harmonic-mean aggregate the paper observes in its
// multi-user experiment (Sec. V-B).
package fabric

import (
	"fmt"
	"math"
	"sort"

	"numaio/internal/topology"
	"numaio/internal/units"
)

// ResourceID names a capacity-constrained resource.
type ResourceID string

// Conventional resource ID constructors.
func LinkResource(linkIdx int) ResourceID {
	return ResourceID(fmt.Sprintf("link:%d", linkIdx))
}
func MemResource(n topology.NodeID) ResourceID {
	return ResourceID(fmt.Sprintf("mem:%d", int(n)))
}
func CoreResource(n topology.NodeID) ResourceID {
	return ResourceID(fmt.Sprintf("core:%d", int(n)))
}
func DeviceResource(deviceID, engine string) ResourceID {
	return ResourceID(fmt.Sprintf("dev:%s:%s", deviceID, engine))
}

// Resource is a shared capacity.
type Resource struct {
	ID       ResourceID
	Capacity units.Bandwidth
}

// Usage couples a flow to a resource: the flow's rate times Weight counts
// against the resource's capacity.
type Usage struct {
	Resource ResourceID
	Weight   float64
}

// Flow is a single transfer competing for resources.
type Flow struct {
	ID     string
	Demand units.Bandwidth // <= 0 means unbounded
	Usages []Usage
}

// unbounded reports whether the flow has no demand cap.
func (f Flow) unbounded() bool {
	return f.Demand <= 0 || math.IsInf(float64(f.Demand), 1)
}

// Allocation is the result of Solve.
type Allocation struct {
	// Rates maps flow ID to allocated bandwidth.
	Rates map[string]units.Bandwidth
	// Bottlenecks maps flow ID to the resource that froze it, or "" if the
	// flow was frozen by its own demand.
	Bottlenecks map[string]ResourceID
	// Utilization maps resource ID to the fraction of capacity in use.
	Utilization map[ResourceID]float64
}

// Rate returns the allocated rate of a flow (0 if unknown).
func (a *Allocation) Rate(flowID string) units.Bandwidth { return a.Rates[flowID] }

// Aggregate returns the sum of all allocated rates.
func (a *Allocation) Aggregate() units.Bandwidth {
	var sum units.Bandwidth
	for _, r := range a.Rates {
		sum += r
	}
	return sum
}

// Solver accumulates resources and flows for one allocation round.
type Solver struct {
	resources map[ResourceID]Resource
	flows     []Flow
	flowIDs   map[string]bool
}

// NewSolver returns an empty solver.
func NewSolver() *Solver {
	return &Solver{
		resources: make(map[ResourceID]Resource),
		flowIDs:   make(map[string]bool),
	}
}

// SetResource registers (or replaces) a resource. Capacity must be positive.
func (s *Solver) SetResource(r Resource) error {
	if r.Capacity <= 0 {
		return fmt.Errorf("fabric: resource %q: nonpositive capacity %v", r.ID, r.Capacity)
	}
	s.resources[r.ID] = r
	return nil
}

// Resource returns a registered resource.
func (s *Solver) Resource(id ResourceID) (Resource, bool) {
	r, ok := s.resources[id]
	return r, ok
}

// AddFlow registers a flow. Duplicate usages of the same resource are merged
// by summing weights. Every referenced resource must already be registered.
func (s *Solver) AddFlow(f Flow) error {
	if f.ID == "" {
		return fmt.Errorf("fabric: flow with empty ID")
	}
	if s.flowIDs[f.ID] {
		return fmt.Errorf("fabric: duplicate flow %q", f.ID)
	}
	merged := make(map[ResourceID]float64)
	for _, u := range f.Usages {
		if u.Weight <= 0 {
			return fmt.Errorf("fabric: flow %q: nonpositive weight %v on %q", f.ID, u.Weight, u.Resource)
		}
		if _, ok := s.resources[u.Resource]; !ok {
			return fmt.Errorf("fabric: flow %q: unknown resource %q", f.ID, u.Resource)
		}
		merged[u.Resource] += u.Weight
	}
	ids := make([]ResourceID, 0, len(merged))
	for id := range merged {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	ff := Flow{ID: f.ID, Demand: f.Demand}
	for _, id := range ids {
		ff.Usages = append(ff.Usages, Usage{Resource: id, Weight: merged[id]})
	}
	s.flows = append(s.flows, ff)
	s.flowIDs[f.ID] = true
	return nil
}

// NumFlows returns the number of registered flows.
func (s *Solver) NumFlows() int { return len(s.flows) }

const eps = 1e-9

// Solve computes the weighted max-min fair allocation.
func (s *Solver) Solve() (*Allocation, error) { return s.solve() }

func (s *Solver) solve() (*Allocation, error) {
	n := len(s.flows)
	rates := make([]float64, n)
	frozen := make([]bool, n)
	bottleneck := make([]ResourceID, n)
	active := n

	// Per-resource frozen load and active weight, recomputed each round
	// (rounds <= flows, resources bounded; fine for our sizes).
	for active > 0 {
		frozenLoad := make(map[ResourceID]float64)
		activeWeight := make(map[ResourceID]float64)
		for i, f := range s.flows {
			for _, u := range f.Usages {
				if frozen[i] {
					frozenLoad[u.Resource] += u.Weight * rates[i]
				} else {
					activeWeight[u.Resource] += u.Weight
				}
			}
		}

		// All active flows currently sit at the common level x (they rise
		// together from zero each round is incremental: rates of active
		// flows are equal by construction).
		x := 0.0
		for i := range s.flows {
			if !frozen[i] {
				x = rates[i]
				break
			}
		}

		// Next stop: the smallest level at which a resource saturates or
		// an active flow reaches demand.
		nextX := math.Inf(1)
		var bindRes ResourceID
		for id, w := range activeWeight {
			if w <= 0 {
				continue
			}
			cap := float64(s.resources[id].Capacity)
			lvl := (cap - frozenLoad[id]) / w
			if lvl < x-eps {
				lvl = x // resource already (numerically) saturated
			}
			if lvl < nextX-eps || (math.Abs(lvl-nextX) <= eps && (bindRes == "" || id < bindRes)) {
				nextX = lvl
				bindRes = id
			}
		}
		demandBound := false
		for i, f := range s.flows {
			if frozen[i] || f.unbounded() {
				continue
			}
			d := float64(f.Demand)
			if d < nextX-eps {
				nextX = d
				demandBound = true
				bindRes = ""
			} else if math.Abs(d-nextX) <= eps {
				demandBound = true
			}
		}
		if math.IsInf(nextX, 1) {
			// No binding resource and no demand: unbounded allocation.
			return nil, fmt.Errorf("fabric: unbounded flow(s) with no constraining resource")
		}

		// Raise all active flows to nextX and freeze the bound ones.
		frozeAny := false
		for i, f := range s.flows {
			if frozen[i] {
				continue
			}
			rates[i] = nextX
			// Demand freeze.
			if !f.unbounded() && float64(f.Demand) <= nextX+eps {
				frozen[i] = true
				bottleneck[i] = ""
				active--
				frozeAny = true
				continue
			}
			// Resource freeze: any saturated resource in the usage set.
			for _, u := range f.Usages {
				cap := float64(s.resources[u.Resource].Capacity)
				load := frozenLoad[u.Resource] + activeWeight[u.Resource]*nextX
				if load >= cap-1e-6*math.Max(cap, 1) {
					frozen[i] = true
					bottleneck[i] = u.Resource
					active--
					frozeAny = true
					break
				}
			}
		}
		if !frozeAny {
			// Defensive: should be impossible, but never loop forever.
			if demandBound || bindRes != "" {
				return nil, fmt.Errorf("fabric: solver stalled at level %v", nextX)
			}
			return nil, fmt.Errorf("fabric: solver made no progress")
		}
	}

	out := &Allocation{
		Rates:       make(map[string]units.Bandwidth, n),
		Bottlenecks: make(map[string]ResourceID, n),
		Utilization: make(map[ResourceID]float64, len(s.resources)),
	}
	load := make(map[ResourceID]float64)
	for i, f := range s.flows {
		out.Rates[f.ID] = units.Bandwidth(rates[i])
		out.Bottlenecks[f.ID] = bottleneck[i]
		for _, u := range f.Usages {
			load[u.Resource] += u.Weight * rates[i]
		}
	}
	for id, r := range s.resources {
		out.Utilization[id] = load[id] / float64(r.Capacity)
	}
	return out, nil
}

// SingleFlowRate is a convenience: the rate one flow would get alone, i.e.
// the bottleneck capacity over its (weighted) usages, capped by demand.
func SingleFlowRate(resources []Resource, f Flow) (units.Bandwidth, error) {
	s := NewSolver()
	for _, r := range resources {
		if err := s.SetResource(r); err != nil {
			return 0, err
		}
	}
	if err := s.AddFlow(f); err != nil {
		return 0, err
	}
	a, err := s.Solve()
	if err != nil {
		return 0, err
	}
	return a.Rate(f.ID), nil
}
