// Package fabric computes bandwidth allocations for concurrent transfers
// over a shared machine fabric.
//
// The model is flow-based: every transfer is a Flow that consumes a set of
// Resources (directed interconnect links, memory controllers, device DMA
// engines, core budgets) with per-resource weights. A weight of 1 means the
// flow loads the resource with its full data rate; a local memory copy loads
// its node's controller with weight 2 (read + write); a device engine that
// serves a slow path charges more engine time per byte, expressed as a
// weight above 1.
//
// Solve performs weighted max-min fair allocation by progressive filling
// (water-filling): all unfrozen flows rise at the same rate, a flow freezes
// when one of its resources saturates or its demand is met. This yields the
// equal-share contention behaviour of real interconnects and, for weighted
// device engines, the harmonic-mean aggregate the paper observes in its
// multi-user experiment (Sec. V-B).
package fabric

import (
	"fmt"
	"math"
	"sort"
	"strconv"

	"numaio/internal/topology"
	"numaio/internal/units"
)

// ResourceID names a capacity-constrained resource.
type ResourceID string

// internedIDs bounds the precomputed small-index resource-ID tables below:
// the conventional constructors are on the per-request serving path (every
// flow build names its links, controllers and core budgets), so the common
// indices are built once at init instead of fmt.Sprintf-ing per call.
const internedIDs = 64

var (
	linkIDs [internedIDs]ResourceID
	memIDs  [internedIDs]ResourceID
	coreIDs [internedIDs]ResourceID
)

func init() {
	for i := range linkIDs {
		s := strconv.Itoa(i)
		linkIDs[i] = ResourceID("link:" + s)
		memIDs[i] = ResourceID("mem:" + s)
		coreIDs[i] = ResourceID("core:" + s)
	}
}

// Conventional resource ID constructors.
func LinkResource(linkIdx int) ResourceID {
	if linkIdx >= 0 && linkIdx < internedIDs {
		return linkIDs[linkIdx]
	}
	return ResourceID("link:" + strconv.Itoa(linkIdx))
}
func MemResource(n topology.NodeID) ResourceID {
	if n >= 0 && int(n) < internedIDs {
		return memIDs[n]
	}
	return ResourceID("mem:" + strconv.Itoa(int(n)))
}
func CoreResource(n topology.NodeID) ResourceID {
	if n >= 0 && int(n) < internedIDs {
		return coreIDs[n]
	}
	return ResourceID("core:" + strconv.Itoa(int(n)))
}
func DeviceResource(deviceID, engine string) ResourceID {
	return ResourceID("dev:" + deviceID + ":" + engine)
}

// Resource is a shared capacity.
type Resource struct {
	ID       ResourceID
	Capacity units.Bandwidth
}

// ScaleResources multiplies the capacity of every listed resource by its
// factor, in place, and returns the slice. Resources absent from scale are
// untouched. Fault plans (internal/faults) use this to degrade links and
// device engines without mutating the topology itself.
func ScaleResources(resources []Resource, scale map[ResourceID]float64) []Resource {
	if len(scale) == 0 {
		return resources
	}
	for i := range resources {
		if f, ok := scale[resources[i].ID]; ok {
			resources[i].Capacity = units.Bandwidth(float64(resources[i].Capacity) * f)
		}
	}
	return resources
}

// Usage couples a flow to a resource: the flow's rate times Weight counts
// against the resource's capacity.
type Usage struct {
	Resource ResourceID
	Weight   float64
}

// Flow is a single transfer competing for resources.
type Flow struct {
	ID     string
	Demand units.Bandwidth // <= 0 means unbounded
	Usages []Usage
}

// unbounded reports whether the flow has no demand cap.
func (f Flow) unbounded() bool {
	return f.Demand <= 0 || math.IsInf(float64(f.Demand), 1)
}

// Allocation is the result of Solve.
type Allocation struct {
	// Rates maps flow ID to allocated bandwidth.
	Rates map[string]units.Bandwidth
	// Bottlenecks maps flow ID to the resource that froze it, or "" if the
	// flow was frozen by its own demand.
	Bottlenecks map[string]ResourceID
	// Utilization maps resource ID to the fraction of capacity in use.
	Utilization map[ResourceID]float64
}

// Rate returns the allocated rate of a flow (0 if unknown).
func (a *Allocation) Rate(flowID string) units.Bandwidth { return a.Rates[flowID] }

// Aggregate returns the sum of all allocated rates.
func (a *Allocation) Aggregate() units.Bandwidth {
	var sum units.Bandwidth
	for _, r := range a.Rates {
		sum += r
	}
	return sum
}

// indexedUsage is a Usage resolved to a resource index, so the solve loops
// run on slices instead of maps.
type indexedUsage struct {
	res    int
	weight float64
}

// indexedFlow is a registered flow with index-resolved usages.
type indexedFlow struct {
	id     string
	demand units.Bandwidth
	usages []indexedUsage
}

func (f indexedFlow) unbounded() bool {
	return f.demand <= 0 || math.IsInf(float64(f.demand), 1)
}

// Solver accumulates resources and flows for allocation rounds. It is
// reusable: Reset clears the flows while keeping the registered resources,
// and RemoveFlow drops a single flow, so callers that re-solve a shrinking
// flow set (the fluid executor) do not rebuild the resource table each
// round. A Solver is not safe for concurrent use.
type Solver struct {
	resList  []Resource // registration order
	resIndex map[ResourceID]int
	sorted   []int // resource indices in ascending ID order
	rank     []int // rank[resIdx] = position of the resource in sorted order
	flows    []indexedFlow
	flowIdx  map[string]int // flow ID -> index into flows

	// Scratch buffers reused across Solve calls.
	rates        []float64
	frozen       []bool
	bottleneck   []int // resource index, -1 = demand-frozen
	frozenLoad   []float64
	activeWeight []float64
	util         []float64 // final per-resource utilization (SolveIndexed)
}

// NewSolver returns an empty solver.
func NewSolver() *Solver {
	return &Solver{
		resIndex: make(map[ResourceID]int),
		flowIdx:  make(map[string]int),
	}
}

// SetResource registers (or replaces) a resource. Capacity must be positive.
func (s *Solver) SetResource(r Resource) error {
	if r.Capacity <= 0 {
		return fmt.Errorf("fabric: resource %q: nonpositive capacity %v", r.ID, r.Capacity)
	}
	if i, ok := s.resIndex[r.ID]; ok {
		s.resList[i] = r
		return nil
	}
	i := len(s.resList)
	s.resList = append(s.resList, r)
	s.resIndex[r.ID] = i
	// Keep the ID-sorted index order incrementally (insertion into a
	// sorted slice; resource counts are small), and refresh the rank table
	// so flow registration can order usages by integer compare.
	pos := sort.Search(len(s.sorted), func(k int) bool {
		return s.resList[s.sorted[k]].ID >= r.ID
	})
	s.sorted = append(s.sorted, 0)
	copy(s.sorted[pos+1:], s.sorted[pos:])
	s.sorted[pos] = i
	for len(s.rank) < len(s.resList) {
		s.rank = append(s.rank, 0)
	}
	for k, ri := range s.sorted {
		s.rank[ri] = k
	}
	return nil
}

// Resource returns a registered resource.
func (s *Solver) Resource(id ResourceID) (Resource, bool) {
	i, ok := s.resIndex[id]
	if !ok {
		return Resource{}, false
	}
	return s.resList[i], true
}

// spareUsages returns a zero-length usage slice for the next registered
// flow, reusing the capacity parked past len(s.flows) by an earlier Reset
// so steady-state rounds over a stable fabric register flows alloc-free.
func (s *Solver) spareUsages() []indexedUsage {
	if len(s.flows) < cap(s.flows) {
		return s.flows[:cap(s.flows)][len(s.flows)].usages[:0]
	}
	return nil
}

// AddFlow registers a flow. Duplicate usages of the same resource are merged
// by summing weights. Every referenced resource must already be registered.
func (s *Solver) AddFlow(f Flow) error {
	if f.ID == "" {
		return fmt.Errorf("fabric: flow with empty ID")
	}
	if _, dup := s.flowIdx[f.ID]; dup {
		return fmt.Errorf("fabric: duplicate flow %q", f.ID)
	}
	usages := s.spareUsages()
	for _, u := range f.Usages {
		if u.Weight <= 0 {
			return fmt.Errorf("fabric: flow %q: nonpositive weight %v on %q", f.ID, u.Weight, u.Resource)
		}
		ri, ok := s.resIndex[u.Resource]
		if !ok {
			return fmt.Errorf("fabric: flow %q: unknown resource %q", f.ID, u.Resource)
		}
		merged := false
		for k := range usages {
			if usages[k].res == ri {
				usages[k].weight += u.Weight
				merged = true
				break
			}
		}
		if merged {
			continue
		}
		// Insert in ascending resource-ID order (via the precomputed rank,
		// so ordering is an integer compare); usage lists are tiny.
		pos := len(usages)
		for pos > 0 && s.rank[usages[pos-1].res] > s.rank[ri] {
			pos--
		}
		usages = append(usages, indexedUsage{})
		copy(usages[pos+1:], usages[pos:])
		usages[pos] = indexedUsage{res: ri, weight: u.Weight}
	}
	s.flowIdx[f.ID] = len(s.flows)
	s.flows = append(s.flows, indexedFlow{id: f.ID, demand: f.Demand, usages: usages})
	return nil
}

// Reset drops every flow while keeping the registered resources, readying
// the solver for a fresh round over the same fabric. The usage slices of
// the dropped flows stay parked in the backing array for reuse.
func (s *Solver) Reset() {
	statResets.Add(1)
	s.flows = s.flows[:0]
	clear(s.flowIdx)
}

// RemoveFlow unregisters one flow, preserving the relative order of the
// rest. It reports whether the flow was present.
func (s *Solver) RemoveFlow(id string) bool {
	i, ok := s.flowIdx[id]
	if !ok {
		return false
	}
	copy(s.flows[i:], s.flows[i+1:])
	last := len(s.flows) - 1
	// The vacated tail slot still aliases the shifted-down last flow's
	// usages; sever it so a later spareUsages cannot corrupt a live flow.
	s.flows[last].usages = nil
	s.flows = s.flows[:last]
	delete(s.flowIdx, id)
	for k := i; k < len(s.flows); k++ {
		s.flowIdx[s.flows[k].id] = k
	}
	return true
}

// NumFlows returns the number of registered flows.
func (s *Solver) NumFlows() int { return len(s.flows) }

// FlowIndex returns the dense index of a registered flow — the handle into
// IndexedAllocation. Indices shift when earlier flows are removed.
func (s *Solver) FlowIndex(id string) (int, bool) {
	i, ok := s.flowIdx[id]
	return i, ok
}

const eps = 1e-9

// Solve computes the weighted max-min fair allocation and materializes the
// string-keyed Allocation maps. Hot paths that re-solve the same fabric
// (the fluid executor) use SolveIndexed instead and stay on dense indices.
func (s *Solver) Solve() (*Allocation, error) {
	ia, err := s.SolveIndexed()
	if err != nil {
		return nil, err
	}
	return ia.Allocation(), nil
}

// IndexedAllocation is the result of SolveIndexed: rates, bottlenecks and
// utilization addressed by the solver's dense flow and resource indices,
// with string IDs only at the accessor edge. It views the solver's scratch
// buffers, so it is valid until the next Solve/SolveIndexed call or any
// flow-set change on the solver.
type IndexedAllocation struct {
	s *Solver
	n int
}

// SolveIndexed computes the weighted max-min fair allocation without
// materializing any string-keyed map.
func (s *Solver) SolveIndexed() (IndexedAllocation, error) {
	if err := s.timedSolve(); err != nil {
		return IndexedAllocation{}, err
	}
	return IndexedAllocation{s: s, n: len(s.flows)}, nil
}

// NumFlows returns the number of allocated flows.
func (a IndexedAllocation) NumFlows() int { return a.n }

// FlowID returns the string ID of flow index i.
func (a IndexedAllocation) FlowID(i int) string { return a.s.flows[i].id }

// Rate returns the allocated rate of flow index i.
func (a IndexedAllocation) Rate(i int) units.Bandwidth {
	return units.Bandwidth(a.s.rates[i])
}

// Bottleneck returns the resource that froze flow i, or "" if the flow was
// frozen by its own demand.
func (a IndexedAllocation) Bottleneck(i int) ResourceID {
	if ri := a.s.bottleneck[i]; ri >= 0 {
		return a.s.resList[ri].ID
	}
	return ""
}

// NumResources returns the number of registered resources.
func (a IndexedAllocation) NumResources() int { return len(a.s.resList) }

// ResourceID returns the string ID of resource index ri.
func (a IndexedAllocation) ResourceID(ri int) ResourceID { return a.s.resList[ri].ID }

// Utilization returns the fraction of resource ri's capacity in use.
func (a IndexedAllocation) Utilization(ri int) float64 { return a.s.util[ri] }

// Allocation materializes the string-keyed Allocation maps.
func (a IndexedAllocation) Allocation() *Allocation {
	s := a.s
	out := &Allocation{
		Rates:       make(map[string]units.Bandwidth, a.n),
		Bottlenecks: make(map[string]ResourceID, a.n),
		Utilization: make(map[ResourceID]float64, len(s.resList)),
	}
	for i := 0; i < a.n; i++ {
		out.Rates[s.flows[i].id] = units.Bandwidth(s.rates[i])
		out.Bottlenecks[s.flows[i].id] = a.Bottleneck(i)
	}
	for ri := range s.resList {
		out.Utilization[s.resList[ri].ID] = s.util[ri]
	}
	return out
}

// grow resizes the scratch buffers for n flows over the current resources.
func (s *Solver) grow(n int) {
	if cap(s.rates) < n {
		s.rates = make([]float64, n)
		s.frozen = make([]bool, n)
		s.bottleneck = make([]int, n)
	}
	s.rates = s.rates[:n]
	s.frozen = s.frozen[:n]
	s.bottleneck = s.bottleneck[:n]
	for i := 0; i < n; i++ {
		s.rates[i] = 0
		s.frozen[i] = false
		s.bottleneck[i] = -1
	}
	nr := len(s.resList)
	if cap(s.frozenLoad) < nr {
		s.frozenLoad = make([]float64, nr)
		s.activeWeight = make([]float64, nr)
		s.util = make([]float64, nr)
	}
	s.frozenLoad = s.frozenLoad[:nr]
	s.activeWeight = s.activeWeight[:nr]
	s.util = s.util[:nr]
}

func (s *Solver) solve() error {
	n := len(s.flows)
	s.grow(n)
	rates, frozen, bottleneck := s.rates, s.frozen, s.bottleneck
	active := n

	// Per-resource frozen load and active weight, recomputed each round
	// (rounds <= flows, resources bounded; fine for our sizes).
	for active > 0 {
		frozenLoad, activeWeight := s.frozenLoad, s.activeWeight
		for i := range frozenLoad {
			frozenLoad[i], activeWeight[i] = 0, 0
		}
		for i := range s.flows {
			for _, u := range s.flows[i].usages {
				if frozen[i] {
					frozenLoad[u.res] += u.weight * rates[i]
				} else {
					activeWeight[u.res] += u.weight
				}
			}
		}

		// All active flows currently sit at the common level x (they rise
		// together from zero each round is incremental: rates of active
		// flows are equal by construction).
		x := 0.0
		for i := range s.flows {
			if !frozen[i] {
				x = rates[i]
				break
			}
		}

		// Next stop: the smallest level at which a resource saturates or
		// an active flow reaches demand. Resources are visited in ID order
		// so eps-close ties resolve to the smallest resource ID
		// deterministically.
		nextX := math.Inf(1)
		bindRes := -1
		for _, ri := range s.sorted {
			w := activeWeight[ri]
			if w <= 0 {
				continue
			}
			cap := float64(s.resList[ri].Capacity)
			lvl := (cap - frozenLoad[ri]) / w
			if lvl < x-eps {
				lvl = x // resource already (numerically) saturated
			}
			if lvl < nextX-eps {
				nextX = lvl
				bindRes = ri
			}
		}
		demandBound := false
		for i := range s.flows {
			f := &s.flows[i]
			if frozen[i] || f.unbounded() {
				continue
			}
			d := float64(f.demand)
			if d < nextX-eps {
				nextX = d
				demandBound = true
				bindRes = -1
			} else if math.Abs(d-nextX) <= eps {
				demandBound = true
			}
		}
		if math.IsInf(nextX, 1) {
			// No binding resource and no demand: unbounded allocation.
			return fmt.Errorf("fabric: unbounded flow(s) with no constraining resource")
		}

		// Raise all active flows to nextX and freeze the bound ones.
		frozeAny := false
		for i := range s.flows {
			f := &s.flows[i]
			if frozen[i] {
				continue
			}
			rates[i] = nextX
			// Demand freeze.
			if !f.unbounded() && float64(f.demand) <= nextX+eps {
				frozen[i] = true
				bottleneck[i] = -1
				active--
				frozeAny = true
				continue
			}
			// Resource freeze: any saturated resource in the usage set.
			for _, u := range f.usages {
				cap := float64(s.resList[u.res].Capacity)
				load := frozenLoad[u.res] + activeWeight[u.res]*nextX
				if load >= cap-1e-6*math.Max(cap, 1) {
					frozen[i] = true
					bottleneck[i] = u.res
					active--
					frozeAny = true
					break
				}
			}
		}
		if !frozeAny {
			// Defensive: should be impossible, but never loop forever.
			if demandBound || bindRes >= 0 {
				return fmt.Errorf("fabric: solver stalled at level %v", nextX)
			}
			return fmt.Errorf("fabric: solver made no progress")
		}
	}

	load := s.frozenLoad // reuse as the final-load scratch
	for i := range load {
		load[i] = 0
	}
	for i := range s.flows {
		for _, u := range s.flows[i].usages {
			load[u.res] += u.weight * rates[i]
		}
	}
	for ri := range s.resList {
		s.util[ri] = load[ri] / float64(s.resList[ri].Capacity)
	}
	return nil
}

// SingleFlowRate is a convenience: the rate one flow would get alone, i.e.
// the bottleneck capacity over its (weighted) usages, capped by demand.
func SingleFlowRate(resources []Resource, f Flow) (units.Bandwidth, error) {
	s := NewSolver()
	for _, r := range resources {
		if err := s.SetResource(r); err != nil {
			return 0, err
		}
	}
	if err := s.AddFlow(f); err != nil {
		return 0, err
	}
	a, err := s.Solve()
	if err != nil {
		return 0, err
	}
	return a.Rate(f.ID), nil
}
