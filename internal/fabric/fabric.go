// Package fabric computes bandwidth allocations for concurrent transfers
// over a shared machine fabric.
//
// The model is flow-based: every transfer is a Flow that consumes a set of
// Resources (directed interconnect links, memory controllers, device DMA
// engines, core budgets) with per-resource weights. A weight of 1 means the
// flow loads the resource with its full data rate; a local memory copy loads
// its node's controller with weight 2 (read + write); a device engine that
// serves a slow path charges more engine time per byte, expressed as a
// weight above 1.
//
// Solve performs weighted max-min fair allocation by progressive filling
// (water-filling): all unfrozen flows rise at the same rate, a flow freezes
// when one of its resources saturates or its demand is met. This yields the
// equal-share contention behaviour of real interconnects and, for weighted
// device engines, the harmonic-mean aggregate the paper observes in its
// multi-user experiment (Sec. V-B).
//
// The solver is incremental: it keeps the converged allocation between
// solves and, after AddFlow/RemoveFlow, re-levels only the connected
// components of the flow/resource graph that actually changed (see solve).
// Components whose flow and resource sets are untouched keep their stored
// rates, which is bit-identical to re-solving them — within a component the
// water-filling arithmetic depends only on that component's flows and
// capacities.
package fabric

import (
	"fmt"
	"math"
	"sort"
	"strconv"

	"numaio/internal/topology"
	"numaio/internal/units"
)

// ResourceID names a capacity-constrained resource.
type ResourceID string

// internedIDs bounds the precomputed small-index resource-ID tables below:
// the conventional constructors are on the per-request serving path (every
// flow build names its links, controllers and core budgets), so the common
// indices are built once at init instead of fmt.Sprintf-ing per call.
const internedIDs = 64

var (
	linkIDs [internedIDs]ResourceID
	memIDs  [internedIDs]ResourceID
	coreIDs [internedIDs]ResourceID
)

func init() {
	for i := range linkIDs {
		s := strconv.Itoa(i)
		linkIDs[i] = ResourceID("link:" + s)
		memIDs[i] = ResourceID("mem:" + s)
		coreIDs[i] = ResourceID("core:" + s)
	}
}

// Conventional resource ID constructors.
func LinkResource(linkIdx int) ResourceID {
	if linkIdx >= 0 && linkIdx < internedIDs {
		return linkIDs[linkIdx]
	}
	return ResourceID("link:" + strconv.Itoa(linkIdx))
}
func MemResource(n topology.NodeID) ResourceID {
	if n >= 0 && int(n) < internedIDs {
		return memIDs[n]
	}
	return ResourceID("mem:" + strconv.Itoa(int(n)))
}
func CoreResource(n topology.NodeID) ResourceID {
	if n >= 0 && int(n) < internedIDs {
		return coreIDs[n]
	}
	return ResourceID("core:" + strconv.Itoa(int(n)))
}
func DeviceResource(deviceID, engine string) ResourceID {
	return ResourceID("dev:" + deviceID + ":" + engine)
}

// Resource is a shared capacity.
type Resource struct {
	ID       ResourceID
	Capacity units.Bandwidth
}

// ScaleResources multiplies the capacity of every listed resource by its
// factor, in place, and returns the slice. Resources absent from scale are
// untouched. Fault plans (internal/faults) use this to degrade links and
// device engines without mutating the topology itself.
func ScaleResources(resources []Resource, scale map[ResourceID]float64) []Resource {
	if len(scale) == 0 {
		return resources
	}
	for i := range resources {
		if f, ok := scale[resources[i].ID]; ok {
			resources[i].Capacity = units.Bandwidth(float64(resources[i].Capacity) * f)
		}
	}
	return resources
}

// Usage couples a flow to a resource: the flow's rate times Weight counts
// against the resource's capacity.
type Usage struct {
	Resource ResourceID
	Weight   float64
}

// Flow is a single transfer competing for resources.
type Flow struct {
	ID     string
	Demand units.Bandwidth // <= 0 means unbounded
	Usages []Usage
}

// unbounded reports whether the flow has no demand cap.
func (f Flow) unbounded() bool {
	return f.Demand <= 0 || math.IsInf(float64(f.Demand), 1)
}

// Allocation is the result of Solve.
type Allocation struct {
	// Rates maps flow ID to allocated bandwidth.
	Rates map[string]units.Bandwidth
	// Bottlenecks maps flow ID to the resource that froze it, or "" if the
	// flow was frozen by its own demand.
	Bottlenecks map[string]ResourceID
	// Utilization maps resource ID to the fraction of capacity in use.
	Utilization map[ResourceID]float64
}

// Rate returns the allocated rate of a flow (0 if unknown).
func (a *Allocation) Rate(flowID string) units.Bandwidth { return a.Rates[flowID] }

// Aggregate returns the sum of all allocated rates.
func (a *Allocation) Aggregate() units.Bandwidth {
	var sum units.Bandwidth
	for _, r := range a.Rates {
		sum += r
	}
	return sum
}

// indexedUsage is a Usage resolved to a resource index, so the solve loops
// run on slices instead of maps.
type indexedUsage struct {
	res    int32
	weight float64
}

// bnUnsolved marks a flow added since the last converged solve; bnDemand
// marks a flow frozen by its own demand.
const (
	bnUnsolved int32 = -2
	bnDemand   int32 = -1
)

// indexedFlow is a registered flow with index-resolved usages. rate and bn
// carry the flow's converged allocation between solves; frozen is scratch
// for the water-filling pass.
type indexedFlow struct {
	id     string
	demand units.Bandwidth
	usages []indexedUsage
	rate   float64
	bn     int32 // bottleneck resource index, bnDemand or bnUnsolved
	frozen bool
}

func (f *indexedFlow) unbounded() bool {
	return f.demand <= 0 || math.IsInf(float64(f.demand), 1)
}

// Solver accumulates resources and flows for allocation rounds. It is
// reusable: Reset clears the flows while keeping the registered resources,
// and RemoveFlow/RemoveFlowAt drop a single flow, so callers that re-solve
// a shrinking flow set (the fluid executor) do not rebuild the resource
// table each round. Between solves the Solver keeps the converged
// allocation plus a dirty set of resources whose usage changed, so a solve
// after a small add/remove delta re-levels only the affected connected
// components. A Solver is not safe for concurrent use.
type Solver struct {
	resList  []Resource // registration order
	resIndex map[ResourceID]int
	sorted   []int32 // resource indices in ascending ID order
	rank     []int32 // rank[resIdx] = position of the resource in sorted order
	flows    []indexedFlow
	flowIdx  map[string]int // flow ID -> index into flows; stale if idxStale

	// idxStale marks flowIdx values as outdated after an index-based
	// removal; by-ID lookups rebuild the map lazily (ensureIdx).
	idxStale bool

	// solved reports that every flow with bn != bnUnsolved carries its
	// converged rate and bottleneck from the last successful solve.
	solved bool
	// pendingAdds counts registered flows not yet covered by a solve
	// (bn == bnUnsolved).
	pendingAdds int
	// dirtyRes lists resources whose usage set or capacity changed since
	// the last solve; dirtyMark dedupes it.
	dirtyRes  []int32
	dirtyMark []bool

	// Scratch buffers reused across Solve calls.
	frozenLoad   []float64
	activeWeight []float64
	util         []float64 // final per-resource utilization (SolveIndexed)

	// Component-labeling scratch (see labelComponents).
	resStart  []int32 // per-resource offsets into resFlows (len nr+1)
	resFlows  []int32 // flow indices grouped by resource
	compFlow  []int32 // per-flow component id
	compRes   []int32 // per-resource component id (-1 = unused)
	compDirty []bool  // component contains a dirty resource or new flow
	queue     []int32 // BFS worklist
	compStart []int32 // per-component offsets into compFlows (len comps+1)
	compFlows []int32 // flow indices grouped by component, ascending

	// labelsValid reports that compFlow/compRes still describe the current
	// flow set: removals splice compFlow alongside flows (a stale coarse
	// grouping after a split is still a valid solve unit), while any add or
	// new resource forces a relabel. labeledComps/labeledNR pin the label
	// generation. With valid labels a removal-only delta re-solves without
	// the BFS pass — the fluid executor's steady state.
	labelsValid  bool
	labeledComps int
	labeledNR    int
	// compResList is solveComponent's per-call scratch: the component's
	// resources in ID order, so water-filling rounds iterate only them
	// instead of filtering the whole sorted table every round.
	compResList []int32
	// parkScratch stages the usage slices of batch-removed flows until
	// RemoveFlows re-parks them past the compacted tail.
	parkScratch [][]indexedUsage

	// Flow-table checkpoint (Checkpoint/RestoreCheckpoint): a deep copy of
	// the registered flows with already index-resolved usages, so a caller
	// that re-runs the exact same flow set (the fluid executor repeating a
	// measurement) skips re-validating and re-resolving every flow through
	// AddFlow. Invalidated when a new resource registers — that reshuffles
	// the rank order the checkpointed usage lists were sorted by.
	ckptValid   bool
	ckptFlows   []indexedFlow
	ckptUsages  []indexedUsage // arena backing ckptFlows' usage slices
	ckptPending int
}

// NewSolver returns an empty solver.
func NewSolver() *Solver {
	return &Solver{
		resIndex: make(map[ResourceID]int),
		flowIdx:  make(map[string]int),
	}
}

// SetResource registers (or replaces) a resource. Capacity must be positive.
func (s *Solver) SetResource(r Resource) error {
	if r.Capacity <= 0 {
		return fmt.Errorf("fabric: resource %q: nonpositive capacity %v", r.ID, r.Capacity)
	}
	if i, ok := s.resIndex[r.ID]; ok {
		s.resList[i] = r
		s.markDirtyRes(int32(i)) // capacity change re-levels its component
		return nil
	}
	i := len(s.resList)
	s.resList = append(s.resList, r)
	s.resIndex[r.ID] = i
	// A new resource reshuffles the rank order checkpointed usage lists
	// were sorted by; drop the snapshot rather than re-sort it.
	s.ckptValid = false
	// Keep the ID-sorted index order incrementally (insertion into a
	// sorted slice; resource counts are small), and refresh the rank table
	// so flow registration can order usages by integer compare.
	pos := sort.Search(len(s.sorted), func(k int) bool {
		return s.resList[s.sorted[k]].ID >= r.ID
	})
	s.sorted = append(s.sorted, 0)
	copy(s.sorted[pos+1:], s.sorted[pos:])
	s.sorted[pos] = int32(i)
	for len(s.rank) < len(s.resList) {
		s.rank = append(s.rank, 0)
	}
	for k, ri := range s.sorted {
		s.rank[ri] = int32(k)
	}
	return nil
}

// Resource returns a registered resource.
func (s *Solver) Resource(id ResourceID) (Resource, bool) {
	i, ok := s.resIndex[id]
	if !ok {
		return Resource{}, false
	}
	return s.resList[i], true
}

// markDirtyRes queues a resource for re-leveling at the next solve. Without
// a converged allocation everything re-levels anyway, so the mark is only
// kept while solved.
func (s *Solver) markDirtyRes(ri int32) {
	if !s.solved {
		return
	}
	for len(s.dirtyMark) < len(s.resList) {
		s.dirtyMark = append(s.dirtyMark, false)
	}
	if !s.dirtyMark[ri] {
		s.dirtyMark[ri] = true
		s.dirtyRes = append(s.dirtyRes, ri)
	}
}

// clearDirty unmarks every queued resource.
func (s *Solver) clearDirty() {
	for _, ri := range s.dirtyRes {
		s.dirtyMark[ri] = false
	}
	s.dirtyRes = s.dirtyRes[:0]
}

// Invalidate discards the converged allocation, forcing the next solve to
// re-level every flow. Callers that change solver inputs behind its back
// (or want to compare against a from-scratch pass) use it; normal
// AddFlow/RemoveFlow/SetResource deltas are tracked automatically.
func (s *Solver) Invalidate() {
	if !s.solved {
		return
	}
	s.clearDirty()
	s.solved = false
}

// ensureIdx rebuilds the flow index map after index-based removals made the
// stored indices stale.
func (s *Solver) ensureIdx() {
	if !s.idxStale {
		return
	}
	// Rebuild from scratch: once the index is stale, removals stop deleting
	// their entries eagerly (see RemoveFlowAt), so leftover keys must go.
	clear(s.flowIdx)
	for i := range s.flows {
		s.flowIdx[s.flows[i].id] = i
	}
	s.idxStale = false
}

// spareUsages returns a zero-length usage slice for the next registered
// flow, reusing the capacity parked past len(s.flows) by an earlier Reset
// or removal so steady-state rounds over a stable fabric register flows
// alloc-free.
func (s *Solver) spareUsages() []indexedUsage {
	if len(s.flows) < cap(s.flows) {
		return s.flows[:cap(s.flows)][len(s.flows)].usages[:0]
	}
	return nil
}

// AddFlow registers a flow. Duplicate usages of the same resource are merged
// by summing weights. Every referenced resource must already be registered.
func (s *Solver) AddFlow(f Flow) error {
	if f.ID == "" {
		return fmt.Errorf("fabric: flow with empty ID")
	}
	s.ensureIdx()
	if _, dup := s.flowIdx[f.ID]; dup {
		return fmt.Errorf("fabric: duplicate flow %q", f.ID)
	}
	usages := s.spareUsages()
	for _, u := range f.Usages {
		if u.Weight <= 0 {
			return fmt.Errorf("fabric: flow %q: nonpositive weight %v on %q", f.ID, u.Weight, u.Resource)
		}
		ri, ok := s.resIndex[u.Resource]
		if !ok {
			return fmt.Errorf("fabric: flow %q: unknown resource %q", f.ID, u.Resource)
		}
		merged := false
		for k := range usages {
			if usages[k].res == int32(ri) {
				usages[k].weight += u.Weight
				merged = true
				break
			}
		}
		if merged {
			continue
		}
		// Insert in ascending resource-ID order (via the precomputed rank,
		// so ordering is an integer compare); usage lists are tiny.
		pos := len(usages)
		for pos > 0 && s.rank[usages[pos-1].res] > s.rank[ri] {
			pos--
		}
		usages = append(usages, indexedUsage{})
		copy(usages[pos+1:], usages[pos:])
		usages[pos] = indexedUsage{res: int32(ri), weight: u.Weight}
	}
	s.flowIdx[f.ID] = len(s.flows)
	s.flows = append(s.flows, indexedFlow{id: f.ID, demand: f.Demand, usages: usages, bn: bnUnsolved})
	s.pendingAdds++
	return nil
}

// Reset drops every flow while keeping the registered resources, readying
// the solver for a fresh round over the same fabric. The usage slices of
// the dropped flows stay parked in the backing array for reuse.
func (s *Solver) Reset() {
	statResets.Add(1)
	s.flows = s.flows[:0]
	clear(s.flowIdx)
	s.idxStale = false
	s.solved = false
	s.pendingAdds = 0
	s.labelsValid = false
	s.clearDirty()
}

// RemoveFlow unregisters one flow, preserving the relative order of the
// rest. It reports whether the flow was present.
func (s *Solver) RemoveFlow(id string) bool {
	s.ensureIdx()
	i, ok := s.flowIdx[id]
	if !ok {
		return false
	}
	s.RemoveFlowAt(i)
	return true
}

// RemoveFlowAt unregisters the flow at dense index i (see FlowIndex),
// preserving the relative order — and therefore the dense indices — of the
// flows before it; flows after it shift down by one. Index-based removal is
// the fluid executor's fast path: it skips the by-ID map lookup and defers
// the index-map rebuild until somebody actually asks for an ID.
func (s *Solver) RemoveFlowAt(i int) {
	f := &s.flows[i]
	// The flows sharing this flow's resources must re-level (transitively:
	// their whole components, which labeling expands the marks to).
	for _, u := range f.usages {
		s.markDirtyRes(u.res)
	}
	if f.bn == bnUnsolved {
		s.pendingAdds--
	}
	removed := f.usages[:0]
	// A stale index is rebuilt wholesale by ensureIdx, so the per-entry
	// delete only pays off while the map is still authoritative.
	if !s.idxStale {
		delete(s.flowIdx, f.id)
	}
	copy(s.flows[i:], s.flows[i+1:])
	// Keep the component labels parallel to the flow slice. Flows past the
	// labeled region (added since the last labeling) carry garbage labels,
	// which is fine: pendingAdds > 0 blocks label reuse until they are
	// either labeled or removed again.
	if s.labelsValid && i < len(s.compFlow) {
		copy(s.compFlow[i:len(s.compFlow)-1], s.compFlow[i+1:])
	}
	last := len(s.flows) - 1
	// The vacated tail slot still aliases the shifted-down last flow's
	// usages; re-park the removed flow's slice there so spareUsages keeps
	// recycling it instead of corrupting a live flow.
	s.flows[last].usages = removed
	s.flows = s.flows[:last]
	if i < last {
		s.idxStale = true
	}
}

// RemoveFlowsAt unregisters the flows at the given current dense indices,
// preserving the relative order of the rest. idx must be ascending, unique
// and in range. One compaction pass replaces k RemoveFlowAt splices — k tail
// memmoves of pointer-bearing flow records collapse into a single sweep,
// which is what the fluid executor's completion step wants.
func (s *Solver) RemoveFlowsAt(idx []int32) {
	if len(idx) == 0 {
		return
	}
	n := len(s.flows)
	park := s.parkScratch[:0]
	labeled := 0
	if s.labelsValid {
		labeled = len(s.compFlow)
	}
	w, di := 0, 0
	for r := 0; r < n; r++ {
		f := &s.flows[r]
		if di >= len(idx) || int(idx[di]) != r {
			if w != r {
				s.flows[w] = *f
				if r < labeled {
					s.compFlow[w] = s.compFlow[r]
				}
				s.idxStale = true
			}
			w++
			continue
		}
		di++
		for _, u := range f.usages {
			s.markDirtyRes(u.res)
		}
		if f.bn == bnUnsolved {
			s.pendingAdds--
		}
		if !s.idxStale {
			delete(s.flowIdx, f.id)
		}
		park = append(park, f.usages[:0])
	}
	// Re-park the removed flows' usage capacity in the vacated tail slots so
	// spareUsages keeps recycling it.
	for k := range park {
		s.flows[w+k].usages = park[k]
	}
	s.parkScratch = park[:0]
	s.flows = s.flows[:w]
}

// Checkpoint snapshots the current flow table (IDs, demands and resolved
// usages). A later RestoreCheckpoint brings the exact same table back
// without going through AddFlow's validation, resolution and index
// maintenance — the fast path for callers that run the same flow set to
// completion over and over. The snapshot stays valid across Reset and
// removals; registering a new resource discards it.
func (s *Solver) Checkpoint() {
	s.ckptFlows = append(s.ckptFlows[:0], s.flows...)
	total := 0
	for i := range s.flows {
		total += len(s.flows[i].usages)
	}
	if cap(s.ckptUsages) < total {
		s.ckptUsages = make([]indexedUsage, 0, total)
	}
	arena := s.ckptUsages[:0]
	for i := range s.flows {
		arena = append(arena, s.flows[i].usages...)
	}
	s.ckptUsages = arena
	off := 0
	for i := range s.ckptFlows {
		n := len(s.ckptFlows[i].usages)
		s.ckptFlows[i].usages = arena[off : off+n : off+n]
		off += n
	}
	s.ckptPending = 0
	for i := range s.ckptFlows {
		if s.ckptFlows[i].bn == bnUnsolved {
			s.ckptPending++
		}
	}
	s.ckptValid = true
}

// RestoreCheckpoint replaces an empty flow table with the last Checkpoint
// and reports whether it did. It refuses (returning false, leaving the
// solver untouched) when there is no valid checkpoint or flows are still
// registered — callers fall back to Reset plus AddFlow. The restored table
// re-solves from scratch on the next Solve, which the blob fast path makes
// a single labeling-free water-fill.
func (s *Solver) RestoreCheckpoint() bool {
	if !s.ckptValid || len(s.flows) != 0 {
		return false
	}
	n := len(s.ckptFlows)
	if cap(s.flows) < n {
		return false // table shrank underneath us; rebuild via AddFlow
	}
	// Slots [0, n) past the current zero length still park the usage slices
	// recycled by earlier removals; refill them from the checkpoint arena.
	s.flows = s.flows[:n]
	for i := range s.ckptFlows {
		src := &s.ckptFlows[i]
		u := append(s.flows[i].usages[:0], src.usages...)
		f := *src
		f.usages = u
		s.flows[i] = f
	}
	s.pendingAdds = s.ckptPending
	s.solved = false
	s.labelsValid = false
	s.idxStale = true // rebuilt lazily; restored flows never touched the map
	s.clearDirty()
	return true
}

// NumFlows returns the number of registered flows.
func (s *Solver) NumFlows() int { return len(s.flows) }

// FlowIndex returns the dense index of a registered flow — the handle into
// IndexedAllocation. Indices shift when earlier flows are removed.
func (s *Solver) FlowIndex(id string) (int, bool) {
	s.ensureIdx()
	i, ok := s.flowIdx[id]
	return i, ok
}

const eps = 1e-9

// Solve computes the weighted max-min fair allocation and materializes the
// string-keyed Allocation maps. Hot paths that re-solve the same fabric
// (the fluid executor) use SolveIndexed instead and stay on dense indices.
func (s *Solver) Solve() (*Allocation, error) {
	ia, err := s.SolveIndexed()
	if err != nil {
		return nil, err
	}
	return ia.Allocation(), nil
}

// IndexedAllocation is the result of SolveIndexed: rates, bottlenecks and
// utilization addressed by the solver's dense flow and resource indices,
// with string IDs only at the accessor edge. It views the solver's state,
// so it is valid until the next Solve/SolveIndexed call or any flow-set
// change on the solver.
type IndexedAllocation struct {
	s *Solver
	n int
}

// SolveIndexed computes the weighted max-min fair allocation without
// materializing any string-keyed map.
func (s *Solver) SolveIndexed() (IndexedAllocation, error) {
	if err := s.timedSolve(); err != nil {
		return IndexedAllocation{}, err
	}
	return IndexedAllocation{s: s, n: len(s.flows)}, nil
}

// NumFlows returns the number of allocated flows.
func (a IndexedAllocation) NumFlows() int { return a.n }

// FlowID returns the string ID of flow index i.
func (a IndexedAllocation) FlowID(i int) string { return a.s.flows[i].id }

// Rate returns the allocated rate of flow index i.
func (a IndexedAllocation) Rate(i int) units.Bandwidth {
	return units.Bandwidth(a.s.flows[i].rate)
}

// Bottleneck returns the resource that froze flow i, or "" if the flow was
// frozen by its own demand.
func (a IndexedAllocation) Bottleneck(i int) ResourceID {
	if ri := a.s.flows[i].bn; ri >= 0 {
		return a.s.resList[ri].ID
	}
	return ""
}

// NumResources returns the number of registered resources.
func (a IndexedAllocation) NumResources() int { return len(a.s.resList) }

// ResourceID returns the string ID of resource index ri.
func (a IndexedAllocation) ResourceID(ri int) ResourceID { return a.s.resList[ri].ID }

// Utilization returns the fraction of resource ri's capacity in use.
func (a IndexedAllocation) Utilization(ri int) float64 { return a.s.util[ri] }

// Allocation materializes the string-keyed Allocation maps.
func (a IndexedAllocation) Allocation() *Allocation {
	s := a.s
	out := &Allocation{
		Rates:       make(map[string]units.Bandwidth, a.n),
		Bottlenecks: make(map[string]ResourceID, a.n),
		Utilization: make(map[ResourceID]float64, len(s.resList)),
	}
	for i := 0; i < a.n; i++ {
		out.Rates[s.flows[i].id] = units.Bandwidth(s.flows[i].rate)
		out.Bottlenecks[s.flows[i].id] = a.Bottleneck(i)
	}
	for ri := range s.resList {
		out.Utilization[s.resList[ri].ID] = s.util[ri]
	}
	return out
}

// grow resizes the per-resource scratch buffers.
func (s *Solver) grow() {
	nr := len(s.resList)
	if cap(s.resStart) < nr+1 {
		s.frozenLoad = make([]float64, nr)
		s.activeWeight = make([]float64, nr)
		s.util = make([]float64, nr)
		s.compRes = make([]int32, nr)
		s.resStart = make([]int32, nr+1)
	}
	s.frozenLoad = s.frozenLoad[:nr]
	s.activeWeight = s.activeWeight[:nr]
	s.util = s.util[:nr]
	s.compRes = s.compRes[:nr]
	s.resStart = s.resStart[:nr+1]

	n := len(s.flows)
	if cap(s.compFlow) < n {
		s.compFlow = make([]int32, n)
		s.queue = make([]int32, n)
		s.compFlows = make([]int32, n)
	}
	s.compFlow = s.compFlow[:n]
	s.compFlows = s.compFlows[:n]
}

// labelComponents groups the flow/resource bipartite graph into connected
// components: compFlow/compRes label every flow and used resource, the
// flows of component c are compFlows[compStart[c]:compStart[c+1]] in
// ascending flow-index order, and compDirty[c] reports whether the
// component contains a dirty resource or a flow added since the last solve.
// tracked reports whether the dirty set was maintained against a converged
// allocation; when false every component is dirty (full solve). Runs
// entirely on pre-grown scratch.
func (s *Solver) labelComponents(tracked bool) int {
	n := len(s.flows)
	nr := len(s.resList)

	// Per-resource flow lists by counting sort: resFlows holds the indices
	// of the flows using each resource, grouped by resource, in ascending
	// flow order.
	cnt := s.resStart
	for i := range cnt {
		cnt[i] = 0
	}
	totalUsages := 0
	for i := range s.flows {
		totalUsages += len(s.flows[i].usages)
		for _, u := range s.flows[i].usages {
			cnt[u.res+1]++
		}
	}
	for i := 0; i < nr; i++ {
		cnt[i+1] += cnt[i]
	}
	if cap(s.resFlows) < totalUsages {
		s.resFlows = make([]int32, totalUsages)
	}
	s.resFlows = s.resFlows[:totalUsages]
	// cnt now holds start offsets; advance them while filling, then they
	// have become the end offsets (resStart[ri] = end of ri-1 = start of ri
	// shifted by one): restore by noting start(ri) = cnt[ri] - count(ri) is
	// awkward, so fill via a moving cursor and rebuild the starts after.
	for i := range s.flows {
		for _, u := range s.flows[i].usages {
			s.resFlows[cnt[u.res]] = int32(i)
			cnt[u.res]++
		}
	}
	// cnt[ri] is now the END of resource ri's span; the start is the
	// previous resource's end (0 for the first).

	for i := range s.compFlow {
		s.compFlow[i] = -1
	}
	for i := 0; i < nr; i++ {
		s.compRes[i] = -1
	}
	comps := 0
	for i := 0; i < n; i++ {
		if s.compFlow[i] >= 0 {
			continue
		}
		c := int32(comps)
		comps++
		for len(s.compDirty) < comps {
			s.compDirty = append(s.compDirty, false)
		}
		dirty := !tracked
		q := s.queue[:0]
		q = append(q, int32(i))
		s.compFlow[i] = c
		for len(q) > 0 {
			fi := q[len(q)-1]
			q = q[:len(q)-1]
			f := &s.flows[fi]
			if f.bn == bnUnsolved {
				dirty = true
			}
			for _, u := range f.usages {
				if s.compRes[u.res] >= 0 {
					continue
				}
				s.compRes[u.res] = c
				if len(s.dirtyMark) > int(u.res) && s.dirtyMark[u.res] {
					dirty = true
				}
				start := int32(0)
				if u.res > 0 {
					start = cnt[u.res-1]
				}
				for k := start; k < cnt[u.res]; k++ {
					g := s.resFlows[k]
					if s.compFlow[g] < 0 {
						s.compFlow[g] = c
						q = append(q, g)
					}
				}
			}
		}
		s.compDirty[c] = dirty
	}

	// Group flow indices by component (counting sort again, so members are
	// in ascending flow order — the order the water-filling accumulations
	// must run in to stay bit-identical to a global pass).
	if cap(s.compStart) < comps+1 {
		s.compStart = make([]int32, comps+1)
	}
	s.compStart = s.compStart[:comps+1]
	for i := range s.compStart {
		s.compStart[i] = 0
	}
	for i := 0; i < n; i++ {
		s.compStart[s.compFlow[i]+1]++
	}
	for c := 0; c < comps; c++ {
		s.compStart[c+1] += s.compStart[c]
	}
	cur := s.queue[:comps]
	for c := 0; c < comps; c++ {
		cur[c] = s.compStart[c]
	}
	for i := 0; i < n; i++ {
		c := s.compFlow[i]
		s.compFlows[cur[c]] = int32(i)
		cur[c]++
	}
	s.labelsValid = true
	s.labeledComps = comps
	s.labeledNR = nr
	return comps
}

// regroupComponents rebuilds compStart/compFlows from still-valid labels and
// recomputes compDirty from the dirty resources alone — the removal-only
// steady state, where a BFS over every usage would rediscover what the labels
// already say. Requires labelsValid, no pending adds, and an unchanged
// resource count.
func (s *Solver) regroupComponents() int {
	n := len(s.flows)
	comps := s.labeledComps
	for c := 0; c < comps; c++ {
		s.compDirty[c] = false
	}
	for _, ri := range s.dirtyRes {
		if c := s.compRes[ri]; c >= 0 {
			s.compDirty[c] = true
		}
	}
	s.compStart = s.compStart[:comps+1]
	for i := range s.compStart {
		s.compStart[i] = 0
	}
	for i := 0; i < n; i++ {
		s.compStart[s.compFlow[i]+1]++
	}
	for c := 0; c < comps; c++ {
		s.compStart[c+1] += s.compStart[c]
	}
	cur := s.queue[:comps]
	for c := 0; c < comps; c++ {
		cur[c] = s.compStart[c]
	}
	for i := 0; i < n; i++ {
		c := s.compFlow[i]
		s.compFlows[cur[c]] = int32(i)
		cur[c]++
	}
	return comps
}

// solve brings the stored allocation up to date. With a converged prior
// allocation it re-levels only the connected components containing a dirty
// resource or a new flow; clean components keep their stored rates and
// bottlenecks, which a full pass would reproduce bit for bit. Without prior
// state (first solve, Reset, Invalidate, or after an error) every
// component re-levels — the full solve.
func (s *Solver) solve() error {
	n := len(s.flows)
	s.grow()
	if s.solved && s.pendingAdds == 0 && len(s.dirtyRes) == 0 {
		statIncremental.Add(1) // nothing changed; the allocation stands
		return nil
	}
	wasSolved := s.solved
	s.solved = false // invalid until this pass completes
	releveled := 0
	if !wasSolved {
		// No converged state to preserve: everything re-levels, so skip the
		// labeling BFS and water-fill the whole graph as one pseudo-component.
		// Iteration orders (flows ascending, resources in ID order) are those
		// of the labeled pass, so the result is bit-identical.
		s.labelsValid = false
		nr := len(s.resList)
		for i := 0; i < nr; i++ {
			s.compRes[i] = -1
		}
		for i := range s.flows {
			s.compFlows[i] = int32(i)
			for _, u := range s.flows[i].usages {
				s.compRes[u.res] = 0
			}
		}
		if err := s.solveComponent(0, s.compFlows[:n]); err != nil {
			return err
		}
		releveled = n
	} else {
		var comps int
		if s.labelsValid && s.pendingAdds == 0 && s.labeledNR == len(s.resList) {
			comps = s.regroupComponents()
		} else {
			comps = s.labelComponents(true)
		}
		for c := 0; c < comps; c++ {
			if !s.compDirty[c] {
				continue
			}
			members := s.compFlows[s.compStart[c]:s.compStart[c+1]]
			if err := s.solveComponent(int32(c), members); err != nil {
				return err
			}
			releveled += len(members)
		}
	}

	// Final utilization, recomputed globally in flow-index order — the same
	// accumulation a full pass runs, whichever components re-leveled.
	load := s.frozenLoad // reuse as the final-load scratch
	for i := range load {
		load[i] = 0
	}
	for i := range s.flows {
		f := &s.flows[i]
		for _, u := range f.usages {
			load[u.res] += u.weight * f.rate
		}
	}
	for ri := range s.resList {
		s.util[ri] = load[ri] / float64(s.resList[ri].Capacity)
	}

	s.solved = true
	s.pendingAdds = 0
	s.clearDirty()
	if wasSolved && releveled < n {
		statIncremental.Add(1)
	} else {
		statFull.Add(1)
	}
	return nil
}

// solveComponent runs the water-filling pass over one connected component.
// members lists the component's flow indices in ascending order; c is its
// label in compRes. The accumulation and visit orders — flows ascending,
// resources in ID order — match the global pass exactly, so the computed
// rates are bit-identical to solving the whole graph at once.
func (s *Solver) solveComponent(c int32, members []int32) error {
	for _, fi := range members {
		f := &s.flows[fi]
		f.rate, f.bn, f.frozen = 0, bnDemand, false
	}
	active := len(members)

	// The component's resources, collected once in ID order (the pass's
	// deterministic visit order) so each round iterates them directly instead
	// of filtering the full sorted table.
	resOrder := s.compResList[:0]
	for _, ri := range s.sorted {
		if s.compRes[ri] == c {
			resOrder = append(resOrder, ri)
		}
	}
	s.compResList = resOrder

	// Per-resource frozen load and active weight, recomputed each round
	// (rounds <= flows, resources bounded; fine for our sizes).
	for active > 0 {
		// Zero the scratch through resOrder, not member usages: under label
		// reuse the component may list resources whose last user was removed,
		// and those must read as unloaded, not as stale garbage.
		frozenLoad, activeWeight := s.frozenLoad, s.activeWeight
		for _, ri := range resOrder {
			frozenLoad[ri], activeWeight[ri] = 0, 0
		}
		for _, fi := range members {
			f := &s.flows[fi]
			for _, u := range f.usages {
				if f.frozen {
					frozenLoad[u.res] += u.weight * f.rate
				} else {
					activeWeight[u.res] += u.weight
				}
			}
		}

		// All active flows currently sit at the common level x (they rise
		// together; rates of active flows are equal by construction).
		x := 0.0
		for _, fi := range members {
			if !s.flows[fi].frozen {
				x = s.flows[fi].rate
				break
			}
		}

		// Next stop: the smallest level at which a resource saturates or
		// an active flow reaches demand. Resources are visited in ID order
		// so eps-close ties resolve to the smallest resource ID
		// deterministically.
		nextX := math.Inf(1)
		bindRes := int32(-1)
		for _, ri := range resOrder {
			w := activeWeight[ri]
			if w <= 0 {
				continue
			}
			cap := float64(s.resList[ri].Capacity)
			lvl := (cap - frozenLoad[ri]) / w
			if lvl < x-eps {
				lvl = x // resource already (numerically) saturated
			}
			if lvl < nextX-eps {
				nextX = lvl
				bindRes = ri
			}
		}
		demandBound := false
		for _, fi := range members {
			f := &s.flows[fi]
			if f.frozen || f.unbounded() {
				continue
			}
			d := float64(f.demand)
			if d < nextX-eps {
				nextX = d
				demandBound = true
				bindRes = -1
			} else if math.Abs(d-nextX) <= eps {
				demandBound = true
			}
		}
		if math.IsInf(nextX, 1) {
			// No binding resource and no demand: unbounded allocation.
			return fmt.Errorf("fabric: unbounded flow(s) with no constraining resource")
		}

		// Raise all active flows to nextX and freeze the bound ones.
		frozeAny := false
		for _, fi := range members {
			f := &s.flows[fi]
			if f.frozen {
				continue
			}
			f.rate = nextX
			// Demand freeze.
			if !f.unbounded() && float64(f.demand) <= nextX+eps {
				f.frozen = true
				f.bn = bnDemand
				active--
				frozeAny = true
				continue
			}
			// Resource freeze: any saturated resource in the usage set.
			for _, u := range f.usages {
				cap := float64(s.resList[u.res].Capacity)
				load := frozenLoad[u.res] + activeWeight[u.res]*nextX
				if load >= cap-1e-6*math.Max(cap, 1) {
					f.frozen = true
					f.bn = u.res
					active--
					frozeAny = true
					break
				}
			}
		}
		if !frozeAny {
			// Defensive: should be impossible, but never loop forever.
			if demandBound || bindRes >= 0 {
				return fmt.Errorf("fabric: solver stalled at level %v", nextX)
			}
			return fmt.Errorf("fabric: solver made no progress")
		}
	}
	return nil
}

// SingleFlowRate is a convenience: the rate one flow would get alone, i.e.
// the bottleneck capacity over its (weighted) usages, capped by demand.
func SingleFlowRate(resources []Resource, f Flow) (units.Bandwidth, error) {
	s := NewSolver()
	for _, r := range resources {
		if err := s.SetResource(r); err != nil {
			return 0, err
		}
	}
	if err := s.AddFlow(f); err != nil {
		return 0, err
	}
	a, err := s.Solve()
	if err != nil {
		return 0, err
	}
	return a.Rate(f.ID), nil
}
