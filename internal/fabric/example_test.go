package fabric_test

import (
	"fmt"
	"log"

	"numaio/internal/fabric"
	"numaio/internal/units"
)

// ExampleSolver shows the water-filling behaviour: a capped flow frees
// capacity for an unbounded competitor on the shared link.
func ExampleSolver() {
	s := fabric.NewSolver()
	if err := s.SetResource(fabric.Resource{ID: "link", Capacity: 30 * units.Gbps}); err != nil {
		log.Fatal(err)
	}
	if err := s.AddFlow(fabric.Flow{ID: "capped", Demand: 5 * units.Gbps,
		Usages: []fabric.Usage{{Resource: "link", Weight: 1}}}); err != nil {
		log.Fatal(err)
	}
	if err := s.AddFlow(fabric.Flow{ID: "greedy",
		Usages: []fabric.Usage{{Resource: "link", Weight: 1}}}); err != nil {
		log.Fatal(err)
	}
	alloc, err := s.Solve()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("capped: %.0f Gb/s\n", alloc.Rate("capped").Gbps())
	fmt.Printf("greedy: %.0f Gb/s\n", alloc.Rate("greedy").Gbps())
	// Output:
	// capped: 5 Gb/s
	// greedy: 25 Gb/s
}
