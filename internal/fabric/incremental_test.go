package fabric

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"numaio/internal/topology"
	"numaio/internal/units"
)

// assertSameAllocation compares two solved solvers bit for bit: rates,
// bottlenecks and per-resource utilization. Both solvers must hold the same
// flows (same dense order) over the same resources (same registration
// order).
func assertSameAllocation(t *testing.T, label string, inc, fresh *Solver) {
	t.Helper()
	ia, err := inc.SolveIndexed()
	if err != nil {
		t.Fatalf("%s: incremental solve: %v", label, err)
	}
	fa, err := fresh.SolveIndexed()
	if err != nil {
		t.Fatalf("%s: fresh solve: %v", label, err)
	}
	if ia.NumFlows() != fa.NumFlows() {
		t.Fatalf("%s: flow count %d != %d", label, ia.NumFlows(), fa.NumFlows())
	}
	for i := 0; i < ia.NumFlows(); i++ {
		if ia.FlowID(i) != fa.FlowID(i) {
			t.Fatalf("%s: flow %d ID %q != %q", label, i, ia.FlowID(i), fa.FlowID(i))
		}
		ir, fr := float64(ia.Rate(i)), float64(fa.Rate(i))
		if math.Float64bits(ir) != math.Float64bits(fr) {
			t.Fatalf("%s: flow %q rate %v (bits %x) != fresh %v (bits %x)",
				label, ia.FlowID(i), ir, math.Float64bits(ir), fr, math.Float64bits(fr))
		}
		if ia.Bottleneck(i) != fa.Bottleneck(i) {
			t.Fatalf("%s: flow %q bottleneck %q != fresh %q",
				label, ia.FlowID(i), ia.Bottleneck(i), fa.Bottleneck(i))
		}
	}
	if ia.NumResources() != fa.NumResources() {
		t.Fatalf("%s: resource count %d != %d", label, ia.NumResources(), fa.NumResources())
	}
	for ri := 0; ri < ia.NumResources(); ri++ {
		iu, fu := ia.Utilization(ri), fa.Utilization(ri)
		if math.Float64bits(iu) != math.Float64bits(fu) {
			t.Fatalf("%s: resource %q utilization %v != fresh %v",
				label, ia.ResourceID(ri), iu, fu)
		}
	}
}

// incrementalHarness drives one incremental solver alongside a shadow flow
// list, building a from-scratch reference solver on demand.
type incrementalHarness struct {
	resources []Resource // current capacities, registration order
	inc       *Solver
	flows     []Flow // shadow of the incremental solver's dense order
	nextID    int
}

func newIncrementalHarness(t testing.TB, resources []Resource) *incrementalHarness {
	t.Helper()
	h := &incrementalHarness{resources: append([]Resource(nil), resources...)}
	h.inc = NewSolver()
	for _, r := range h.resources {
		if err := h.inc.SetResource(r); err != nil {
			t.Fatal(err)
		}
	}
	return h
}

func (h *incrementalHarness) fresh(t testing.TB) *Solver {
	t.Helper()
	s := NewSolver()
	for _, r := range h.resources {
		if err := s.SetResource(r); err != nil {
			t.Fatal(err)
		}
	}
	for _, f := range h.flows {
		if err := s.AddFlow(f); err != nil {
			t.Fatal(err)
		}
	}
	return s
}

func (h *incrementalHarness) add(t testing.TB, f Flow) {
	t.Helper()
	f.ID = fmt.Sprintf("f%d", h.nextID)
	h.nextID++
	if err := h.inc.AddFlow(f); err != nil {
		t.Fatal(err)
	}
	h.flows = append(h.flows, f)
}

func (h *incrementalHarness) removeAt(i int) {
	h.inc.RemoveFlowAt(i)
	h.flows = append(h.flows[:i], h.flows[i+1:]...)
}

// removeBatch drops the flows at the given ascending unique indices via the
// solver's one-pass compaction, mirroring it on the shadow list.
func (h *incrementalHarness) removeBatch(idx []int32) {
	h.inc.RemoveFlowsAt(idx)
	w, di := 0, 0
	for r := range h.flows {
		if di < len(idx) && int(idx[di]) == r {
			di++
			continue
		}
		h.flows[w] = h.flows[r]
		w++
	}
	h.flows = h.flows[:w]
}

// checkpointCycle snapshots the flow table, batch-removes every flow, then
// restores the snapshot — the fluid executor's repeat pattern. The shadow
// list is unchanged, so the next comparison checks that a restored table
// solves bit-identically to a fresh build.
func (h *incrementalHarness) checkpointCycle(t testing.TB) {
	t.Helper()
	h.inc.Checkpoint()
	all := make([]int32, h.inc.NumFlows())
	for i := range all {
		all[i] = int32(i)
	}
	h.inc.RemoveFlowsAt(all)
	if h.inc.NumFlows() != 0 {
		t.Fatalf("RemoveFlowsAt(all): %d flows left", h.inc.NumFlows())
	}
	if !h.inc.RestoreCheckpoint() {
		t.Fatal("RestoreCheckpoint refused after full removal")
	}
}

func (h *incrementalHarness) scaleResource(t testing.TB, ri int, factor float64) {
	t.Helper()
	h.resources[ri].Capacity = units.Bandwidth(float64(h.resources[ri].Capacity) * factor)
	if err := h.inc.SetResource(h.resources[ri]); err != nil {
		t.Fatal(err)
	}
}

// propertyMachines are the topologies the incremental == full bit-identity
// property is pinned on (the same set the parallel-characterization and
// interning tests use).
func propertyMachines() map[string]*topology.Machine {
	return map[string]*topology.Machine{
		"dl585g7":    topology.DL585G7(),
		"magny-a":    topology.MagnyCours4P(topology.VariantA),
		"intel-4s4n": topology.Intel4S4N(),
	}
}

// TestIncrementalMatchesFreshRandomOps: a long randomized add/remove/
// retune/solve sequence on each reference machine must keep the
// incremental solver byte-identical — rates, bottlenecks, utilization — to
// a solver rebuilt from scratch at every solve point.
func TestIncrementalMatchesFreshRandomOps(t *testing.T) {
	for name, m := range propertyMachines() {
		t.Run(name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(42))
			nodes := m.NodeIDs()
			h := newIncrementalHarness(t, MachineResources(m))
			copyFlow := func() Flow {
				src := nodes[rng.Intn(len(nodes))]
				dst := nodes[rng.Intn(len(nodes))]
				usages, err := CopyFlowUsages(m, src, dst)
				if err != nil {
					t.Fatal(err)
				}
				f := Flow{Usages: usages}
				if rng.Intn(4) == 0 {
					f.Demand = units.Bandwidth(1+rng.Float64()*20) * units.Gbps
				}
				return f
			}
			for step := 0; step < 400; step++ {
				switch op := rng.Intn(12); {
				case op < 4 || len(h.flows) == 0: // add
					h.add(t, copyFlow())
				case op < 6: // remove one
					h.removeAt(rng.Intn(len(h.flows)))
				case op < 7: // batch remove a random ascending subset
					pick := map[int]bool{}
					for j := 1 + rng.Intn(3); j > 0; j-- {
						pick[rng.Intn(len(h.flows))] = true
					}
					var idx []int32
					for i := range h.flows {
						if pick[i] {
							idx = append(idx, int32(i))
						}
					}
					h.removeBatch(idx)
				case op < 8: // retune one resource's capacity
					ri := rng.Intn(len(h.resources))
					factors := []float64{0.5, 0.8, 1.25, 2}
					h.scaleResource(t, ri, factors[rng.Intn(len(factors))])
				case op < 9: // checkpoint, drop everything, restore
					h.checkpointCycle(t)
				default: // solve and compare against a fresh build
					assertSameAllocation(t, fmt.Sprintf("%s step %d", name, step), h.inc, h.fresh(t))
				}
			}
			assertSameAllocation(t, name+" final", h.inc, h.fresh(t))
		})
	}
}

// TestIncrementalPhaseRemovalMatchesFresh mirrors the fluid executor's
// pattern: build a full flow set, then repeatedly solve and remove a batch
// of flows, checking bit-identity against a from-scratch solver at every
// phase boundary.
func TestIncrementalPhaseRemovalMatchesFresh(t *testing.T) {
	for name, m := range propertyMachines() {
		t.Run(name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(7))
			nodes := m.NodeIDs()
			h := newIncrementalHarness(t, MachineResources(m))
			for _, n := range nodes {
				for k := 0; k < 4; k++ {
					usages, err := CopyFlowUsages(m, n, nodes[len(nodes)-1])
					if err != nil {
						t.Fatal(err)
					}
					h.add(t, Flow{Usages: usages})
				}
			}
			phase := 0
			for len(h.flows) > 0 {
				assertSameAllocation(t, fmt.Sprintf("%s phase %d", name, phase), h.inc, h.fresh(t))
				for drop := 1 + rng.Intn(3); drop > 0 && len(h.flows) > 0; drop-- {
					h.removeAt(rng.Intn(len(h.flows)))
				}
				phase++
			}
		})
	}
}

// TestIncrementalDisjointComponents: per-node local copies form disjoint
// components; removing one flow must re-level only its own component and
// count as an incremental solve, while first solves count as full.
func TestIncrementalDisjointComponents(t *testing.T) {
	m := topology.DL585G7()
	s := NewSolver()
	for _, r := range MachineResources(m) {
		if err := s.SetResource(r); err != nil {
			t.Fatal(err)
		}
	}
	nodes := m.NodeIDs()
	for _, n := range nodes {
		usages, err := CopyFlowUsages(m, n, n) // local copy: only mem:<n>
		if err != nil {
			t.Fatal(err)
		}
		for k := 0; k < 2; k++ {
			if err := s.AddFlow(Flow{ID: fmt.Sprintf("n%d-%d", int(n), k), Usages: usages}); err != nil {
				t.Fatal(err)
			}
		}
	}
	before := ReadStats()
	if _, err := s.SolveIndexed(); err != nil {
		t.Fatal(err)
	}
	mid := ReadStats()
	if got := mid.FullSolves - before.FullSolves; got != 1 {
		t.Errorf("first solve: full solves += %d, want 1", got)
	}
	rateBefore := make([]float64, s.NumFlows())
	for i := range rateBefore {
		rateBefore[i] = s.flows[i].rate
	}

	// Remove one node-0 flow: node 0's survivor re-levels, everyone else's
	// stored rate must be untouched (same backing floats, not recomputed).
	if !s.RemoveFlow("n0-1") {
		t.Fatal("RemoveFlow(n0-1) = false")
	}
	ia, err := s.SolveIndexed()
	if err != nil {
		t.Fatal(err)
	}
	after := ReadStats()
	if got := after.IncrementalSolves - mid.IncrementalSolves; got != 1 {
		t.Errorf("delta solve: incremental solves += %d, want 1", got)
	}
	if got := after.FullSolves - mid.FullSolves; got != 0 {
		t.Errorf("delta solve: full solves += %d, want 0", got)
	}
	// n0-0 now owns all of mem:0 (weight 2): rate doubles.
	if got, want := float64(ia.Rate(0)), 2*rateBefore[0]; got != want {
		t.Errorf("n0-0 rate after removal = %v, want %v", got, want)
	}
	// Flows of the untouched nodes keep their converged bits.
	for i := 1; i < ia.NumFlows(); i++ {
		if math.Float64bits(s.flows[i].rate) != math.Float64bits(rateBefore[i+1]) {
			t.Errorf("flow %s re-leveled: %v != %v", ia.FlowID(i), s.flows[i].rate, rateBefore[i+1])
		}
	}

	// Invalidate forces the next solve to re-level everything.
	s.Invalidate()
	if _, err := s.SolveIndexed(); err != nil {
		t.Fatal(err)
	}
	end := ReadStats()
	if got := end.FullSolves - after.FullSolves; got != 1 {
		t.Errorf("post-Invalidate solve: full solves += %d, want 1", got)
	}
}

// TestCheckpointRestoreMatchesRebuild drives the fluid executor's repeat
// pattern at the solver level: register a flow set, checkpoint, run it down
// to empty in phases, restore, and require the restored table to solve
// bit-identically to a from-scratch build. Also pins the invalidation rules:
// by-ID lookups still work on a restored table (the lazily rebuilt index
// must shed entries from before the restore), and registering a new
// resource discards the snapshot.
func TestCheckpointRestoreMatchesRebuild(t *testing.T) {
	m := topology.DL585G7()
	h := newIncrementalHarness(t, MachineResources(m))
	nodes := m.NodeIDs()
	for _, n := range nodes {
		usages, err := CopyFlowUsages(m, n, 7)
		if err != nil {
			t.Fatal(err)
		}
		h.add(t, Flow{Usages: usages})
	}
	h.inc.Checkpoint()

	// Run the set down to empty in batches, solving at each phase boundary.
	for h.inc.NumFlows() > 0 {
		assertSameAllocation(t, "drain", h.inc, h.fresh(t))
		drop := []int32{0}
		if h.inc.NumFlows() > 2 {
			drop = append(drop, 2)
		}
		h.removeBatch(drop[:min(len(drop), h.inc.NumFlows())])
	}

	if !h.inc.RestoreCheckpoint() {
		t.Fatal("RestoreCheckpoint refused on empty solver")
	}
	// Rebuild the shadow: the restored table holds f0..f7 again.
	h.flows = h.flows[:0]
	h.nextID = 0
	for _, n := range nodes {
		usages, err := CopyFlowUsages(m, n, 7)
		if err != nil {
			t.Fatal(err)
		}
		f := Flow{ID: fmt.Sprintf("f%d", h.nextID), Usages: usages}
		h.nextID++
		h.flows = append(h.flows, f)
	}
	assertSameAllocation(t, "restored", h.inc, h.fresh(t))

	// The restored table's by-ID index rebuilds cleanly: the middle flow is
	// found, removed, and a duplicate add of a live ID still errors.
	if !h.inc.RemoveFlow("f3") {
		t.Fatal("RemoveFlow(f3) = false on restored table")
	}
	h.flows = append(h.flows[:3], h.flows[4:]...)
	if err := h.inc.AddFlow(Flow{ID: "f5", Usages: h.flows[0].Usages}); err == nil {
		t.Fatal("duplicate AddFlow(f5) succeeded on restored table")
	}
	assertSameAllocation(t, "restored+removed", h.inc, h.fresh(t))

	// Restore refuses while flows are registered...
	if h.inc.RestoreCheckpoint() {
		t.Fatal("RestoreCheckpoint succeeded on non-empty solver")
	}
	// ...and after a new resource registers (rank order changed).
	h.inc.Checkpoint()
	h.inc.Reset()
	if err := h.inc.SetResource(Resource{ID: ResourceID("zz:new"), Capacity: units.Gbps}); err != nil {
		t.Fatal(err)
	}
	if h.inc.RestoreCheckpoint() {
		t.Fatal("RestoreCheckpoint succeeded after new resource registration")
	}
}

// TestIncrementalSteadyStateZeroAlloc: once grown, the add/remove/solve
// cycle of a steady-state fluid run allocates nothing.
func TestIncrementalSteadyStateZeroAlloc(t *testing.T) {
	m := topology.DL585G7()
	resources := MachineResources(m)
	s := NewSolver()
	for _, r := range resources {
		if err := s.SetResource(r); err != nil {
			t.Fatal(err)
		}
	}
	nodes := m.NodeIDs()
	var flows []Flow
	for _, n := range nodes {
		usages, err := CopyFlowUsages(m, n, 7)
		if err != nil {
			t.Fatal(err)
		}
		for k := 0; k < 4; k++ {
			flows = append(flows, Flow{ID: fmt.Sprintf("t%d-%d", int(n), k), Usages: usages})
		}
	}
	for _, f := range flows {
		if err := s.AddFlow(f); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := s.SolveIndexed(); err != nil {
		t.Fatal(err)
	}

	// Unchanged flow set: the converged allocation is returned as is.
	if allocs := testing.AllocsPerRun(100, func() {
		if _, err := s.SolveIndexed(); err != nil {
			t.Fatal(err)
		}
	}); allocs != 0 {
		t.Errorf("nothing-changed solve: %v allocs/op, want 0", allocs)
	}

	// Churn one flow per round (remove + re-add + solve): parked usage
	// slices and grown scratch make the steady state alloc-free.
	flowByID := make(map[string]Flow, len(flows))
	for _, f := range flows {
		flowByID[f.ID] = f
	}
	if allocs := testing.AllocsPerRun(100, func() {
		victim := s.flows[0].id
		s.RemoveFlowAt(0)
		if err := s.AddFlow(flowByID[victim]); err != nil {
			t.Fatal(err)
		}
		if _, err := s.SolveIndexed(); err != nil {
			t.Fatal(err)
		}
	}); allocs != 0 {
		t.Errorf("remove/re-add/solve churn: %v allocs/op, want 0", allocs)
	}

	// Full re-level via Reset + re-add (the fluid executor's run prologue).
	if allocs := testing.AllocsPerRun(100, func() {
		s.Reset()
		for _, f := range flows {
			if err := s.AddFlow(f); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := s.SolveIndexed(); err != nil {
			t.Fatal(err)
		}
	}); allocs != 0 {
		t.Errorf("reset/re-add/solve: %v allocs/op, want 0", allocs)
	}
}
