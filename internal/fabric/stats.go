package fabric

import (
	"math/rand/v2"
	"sync/atomic"
	"time"
)

// counterShards fixes the fan-out of the sharded counters below. 16 padded
// slots cover typical server core counts without bloating each counter past
// 1 KiB (same layout as telemetry.Counter — fabric stays leaf-level and
// cannot import it).
const counterShards = 16

// paddedInt64 occupies a full cache line so adjacent shards never
// false-share.
type paddedInt64 struct {
	v atomic.Int64
	_ [56]byte
}

// shardedCounter is a monotonically increasing counter spread over
// cache-line-padded shards. The solver counters sit on every solve — with
// CharacterizeAll fanning sweeps over a worker pool, a single atomic would
// be a contended cache line shared by all workers.
type shardedCounter struct {
	shards [counterShards]paddedInt64
}

// Add increments the counter by delta, picking a shard via the per-thread
// math/rand/v2 fast path (lock-free and allocation-free).
func (c *shardedCounter) Add(delta int64) {
	c.shards[rand.Uint64()%counterShards].v.Add(delta)
}

// Load sums the shards.
func (c *shardedCounter) Load() int64 {
	var total int64
	for i := range c.shards {
		total += c.shards[i].v.Load()
	}
	return total
}

// Package-wide solver statistics, exported to numaiod's /metrics. They are
// plain (sharded) atomics — no telemetry dependency, fabric stays
// leaf-level — counted across every solver in the process, pooled or not.
var (
	statSolves      shardedCounter
	statSolveNanos  shardedCounter
	statResets      shardedCounter
	statIncremental shardedCounter
	statFull        shardedCounter
	statPoolGets    atomic.Int64
	statPoolNews    atomic.Int64
)

// Stats is a snapshot of the package-wide solver counters.
type Stats struct {
	// Solves counts successful SolveIndexed/Solve calls; SolveNanos is the
	// wall time they took in total.
	Solves     int64
	SolveNanos int64
	// Resets counts Solver.Reset calls (flow-set reuse between fluid runs).
	Resets int64
	// IncrementalSolves counts solves served from the converged allocation:
	// at least one connected component kept its stored rates (including the
	// nothing-changed fast path). FullSolves counts solves that re-leveled
	// every flow — no prior state, or a dirty frontier spanning the whole
	// graph. IncrementalSolves + FullSolves == Solves.
	IncrementalSolves int64
	FullSolves        int64
	// PoolGets counts AcquireSolver calls; PoolNews counts the ones that had
	// to construct a fresh solver. PoolGets - PoolNews is the pool hit count.
	PoolGets int64
	PoolNews int64
}

// ReadStats snapshots the solver counters.
func ReadStats() Stats {
	return Stats{
		Solves:            statSolves.Load(),
		SolveNanos:        statSolveNanos.Load(),
		Resets:            statResets.Load(),
		IncrementalSolves: statIncremental.Load(),
		FullSolves:        statFull.Load(),
		PoolGets:          statPoolGets.Load(),
		PoolNews:          statPoolNews.Load(),
	}
}

// PoolHits returns the number of AcquireSolver calls served from the pool.
func (s Stats) PoolHits() int64 { return s.PoolGets - s.PoolNews }

// timedSolve wraps the core water-filling pass with the stats counters.
func (s *Solver) timedSolve() error {
	start := time.Now()
	err := s.solve()
	statSolveNanos.Add(time.Since(start).Nanoseconds())
	if err == nil {
		statSolves.Add(1)
	}
	return err
}
