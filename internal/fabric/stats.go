package fabric

import (
	"sync/atomic"
	"time"
)

// Package-wide solver statistics, exported to numaiod's /metrics. They are
// plain atomics (no telemetry dependency — fabric stays leaf-level) counted
// across every solver in the process, pooled or not.
var (
	statSolves     atomic.Int64
	statSolveNanos atomic.Int64
	statResets     atomic.Int64
	statPoolGets   atomic.Int64
	statPoolNews   atomic.Int64
)

// Stats is a snapshot of the package-wide solver counters.
type Stats struct {
	// Solves counts successful SolveIndexed/Solve calls; SolveNanos is the
	// wall time they took in total.
	Solves     int64
	SolveNanos int64
	// Resets counts Solver.Reset calls (flow-set reuse between fluid runs).
	Resets int64
	// PoolGets counts AcquireSolver calls; PoolNews counts the ones that had
	// to construct a fresh solver. PoolGets - PoolNews is the pool hit count.
	PoolGets int64
	PoolNews int64
}

// ReadStats snapshots the solver counters.
func ReadStats() Stats {
	return Stats{
		Solves:     statSolves.Load(),
		SolveNanos: statSolveNanos.Load(),
		Resets:     statResets.Load(),
		PoolGets:   statPoolGets.Load(),
		PoolNews:   statPoolNews.Load(),
	}
}

// PoolHits returns the number of AcquireSolver calls served from the pool.
func (s Stats) PoolHits() int64 { return s.PoolGets - s.PoolNews }

// timedSolve wraps the core water-filling pass with the stats counters.
func (s *Solver) timedSolve() error {
	start := time.Now()
	err := s.solve()
	statSolveNanos.Add(time.Since(start).Nanoseconds())
	if err == nil {
		statSolves.Add(1)
	}
	return err
}
