package fabric

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"numaio/internal/topology"
	"numaio/internal/units"
)

func mustSetResource(t *testing.T, s *Solver, r Resource) {
	t.Helper()
	if err := s.SetResource(r); err != nil {
		t.Fatal(err)
	}
}

func mustAddFlow(t *testing.T, s *Solver, f Flow) {
	t.Helper()
	if err := s.AddFlow(f); err != nil {
		t.Fatal(err)
	}
}

func TestSingleFlowGetsBottleneck(t *testing.T) {
	s := NewSolver()
	mustSetResource(t, s, Resource{ID: "a", Capacity: 40 * units.Gbps})
	mustSetResource(t, s, Resource{ID: "b", Capacity: 25 * units.Gbps})
	mustAddFlow(t, s, Flow{ID: "f", Usages: []Usage{
		{Resource: "a", Weight: 1}, {Resource: "b", Weight: 1},
	}})
	a, err := s.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if got := a.Rate("f").Gbps(); math.Abs(got-25) > 1e-6 {
		t.Errorf("rate = %v, want 25", got)
	}
	if a.Bottlenecks["f"] != "b" {
		t.Errorf("bottleneck = %q, want b", a.Bottlenecks["f"])
	}
	if u := a.Utilization["b"]; math.Abs(u-1) > 1e-6 {
		t.Errorf("utilization of b = %v, want 1", u)
	}
	if u := a.Utilization["a"]; math.Abs(u-25.0/40) > 1e-6 {
		t.Errorf("utilization of a = %v, want 0.625", u)
	}
}

func TestEqualFlowsShareEqually(t *testing.T) {
	s := NewSolver()
	mustSetResource(t, s, Resource{ID: "l", Capacity: 30 * units.Gbps})
	for i := 0; i < 3; i++ {
		mustAddFlow(t, s, Flow{ID: fmt.Sprintf("f%d", i),
			Usages: []Usage{{Resource: "l", Weight: 1}}})
	}
	a, err := s.Solve()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if got := a.Rate(fmt.Sprintf("f%d", i)).Gbps(); math.Abs(got-10) > 1e-6 {
			t.Errorf("f%d rate = %v, want 10", i, got)
		}
	}
}

func TestDemandFreezeReleasesCapacity(t *testing.T) {
	s := NewSolver()
	mustSetResource(t, s, Resource{ID: "l", Capacity: 30 * units.Gbps})
	mustAddFlow(t, s, Flow{ID: "small", Demand: 5 * units.Gbps,
		Usages: []Usage{{Resource: "l", Weight: 1}}})
	mustAddFlow(t, s, Flow{ID: "big",
		Usages: []Usage{{Resource: "l", Weight: 1}}})
	a, err := s.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if got := a.Rate("small").Gbps(); math.Abs(got-5) > 1e-6 {
		t.Errorf("small rate = %v, want 5", got)
	}
	if got := a.Rate("big").Gbps(); math.Abs(got-25) > 1e-6 {
		t.Errorf("big rate = %v, want 25 (leftover)", got)
	}
	if a.Bottlenecks["small"] != "" {
		t.Errorf("small should be demand-frozen, got %q", a.Bottlenecks["small"])
	}
}

// A device engine that charges slow paths more engine time per byte yields
// the harmonic-mean aggregate of Sec. V-B: two streams to an 18.036 Gb/s
// class and two to a 21.998 Gb/s class aggregate to ~19.8 Gb/s, slightly
// below the paper's arithmetic-mean prediction of 20.017 Gb/s.
func TestWeightedEngineHarmonicAggregate(t *testing.T) {
	const base = 22.0
	s := NewSolver()
	mustSetResource(t, s, Resource{ID: "eng", Capacity: base * units.Gbps})
	rates := []float64{18.036, 18.036, 21.998, 21.998}
	for i, r := range rates {
		mustAddFlow(t, s, Flow{ID: fmt.Sprintf("f%d", i),
			Usages: []Usage{{Resource: "eng", Weight: base / r}}})
	}
	a, err := s.Solve()
	if err != nil {
		t.Fatal(err)
	}
	want := 4 / (2/18.036 + 2/21.998)
	if got := a.Aggregate().Gbps(); math.Abs(got-want) > 1e-6 {
		t.Errorf("aggregate = %v, want %v", got, want)
	}
	arithmetic := 0.5*18.036 + 0.5*21.998
	if got := a.Aggregate().Gbps(); got >= arithmetic {
		t.Errorf("aggregate %v should undercut the arithmetic mean %v", got, arithmetic)
	}
}

func TestDuplicateUsagesMerge(t *testing.T) {
	s := NewSolver()
	mustSetResource(t, s, Resource{ID: "m", Capacity: 100 * units.Gbps})
	// Local copy: same controller charged twice.
	mustAddFlow(t, s, Flow{ID: "copy", Usages: []Usage{
		{Resource: "m", Weight: 1}, {Resource: "m", Weight: 1},
	}})
	a, err := s.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if got := a.Rate("copy").Gbps(); math.Abs(got-50) > 1e-6 {
		t.Errorf("rate = %v, want 50 (controller charged twice)", got)
	}
}

func TestSolverErrors(t *testing.T) {
	s := NewSolver()
	if err := s.SetResource(Resource{ID: "z", Capacity: 0}); err == nil {
		t.Error("zero capacity should be rejected")
	}
	mustSetResource(t, s, Resource{ID: "a", Capacity: units.Gbps})
	if err := s.AddFlow(Flow{ID: ""}); err == nil {
		t.Error("empty flow ID should be rejected")
	}
	if err := s.AddFlow(Flow{ID: "f", Usages: []Usage{{Resource: "nope", Weight: 1}}}); err == nil {
		t.Error("unknown resource should be rejected")
	}
	if err := s.AddFlow(Flow{ID: "f", Usages: []Usage{{Resource: "a", Weight: 0}}}); err == nil {
		t.Error("zero weight should be rejected")
	}
	mustAddFlow(t, s, Flow{ID: "f", Usages: []Usage{{Resource: "a", Weight: 1}}})
	if err := s.AddFlow(Flow{ID: "f", Usages: []Usage{{Resource: "a", Weight: 1}}}); err == nil {
		t.Error("duplicate flow ID should be rejected")
	}
	if s.NumFlows() != 1 {
		t.Errorf("NumFlows = %d, want 1", s.NumFlows())
	}
	if _, ok := s.Resource("a"); !ok {
		t.Error("Resource lookup failed")
	}
}

func TestUnboundedUnconstrainedFlowErrors(t *testing.T) {
	s := NewSolver()
	if err := s.AddFlow(Flow{ID: "free"}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Solve(); err == nil {
		t.Error("unbounded unconstrained flow should error")
	}
}

func TestDemandOnlyFlow(t *testing.T) {
	s := NewSolver()
	mustAddFlow(t, s, Flow{ID: "d", Demand: 3 * units.Gbps})
	a, err := s.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if got := a.Rate("d").Gbps(); math.Abs(got-3) > 1e-9 {
		t.Errorf("rate = %v, want 3", got)
	}
}

func TestEmptySolve(t *testing.T) {
	a, err := NewSolver().Solve()
	if err != nil {
		t.Fatal(err)
	}
	if a.Aggregate() != 0 {
		t.Error("empty allocation should aggregate to 0")
	}
}

func TestSingleFlowRateHelper(t *testing.T) {
	res := []Resource{{ID: "a", Capacity: 10 * units.Gbps}}
	bw, err := SingleFlowRate(res, Flow{ID: "x", Usages: []Usage{{Resource: "a", Weight: 2}}})
	if err != nil {
		t.Fatal(err)
	}
	if got := bw.Gbps(); math.Abs(got-5) > 1e-6 {
		t.Errorf("rate = %v, want 5", got)
	}
	if _, err := SingleFlowRate([]Resource{{ID: "a", Capacity: -1}}, Flow{ID: "x"}); err == nil {
		t.Error("bad resource should error")
	}
	if _, err := SingleFlowRate(res, Flow{ID: "x", Usages: []Usage{{Resource: "b", Weight: 1}}}); err == nil {
		t.Error("unknown resource should error")
	}
}

// randomScenario builds a reproducible random solver instance.
func randomScenario(seed int64) (*Solver, []Flow, []Resource) {
	rng := rand.New(rand.NewSource(seed))
	nRes := 1 + rng.Intn(6)
	nFlows := 1 + rng.Intn(8)
	s := NewSolver()
	var resources []Resource
	for i := 0; i < nRes; i++ {
		r := Resource{ID: ResourceID(fmt.Sprintf("r%d", i)),
			Capacity: units.Bandwidth(1+rng.Float64()*99) * units.Gbps}
		resources = append(resources, r)
		if err := s.SetResource(r); err != nil {
			panic(err)
		}
	}
	var flows []Flow
	for i := 0; i < nFlows; i++ {
		f := Flow{ID: fmt.Sprintf("f%d", i)}
		k := 1 + rng.Intn(nRes)
		perm := rng.Perm(nRes)[:k]
		for _, ri := range perm {
			f.Usages = append(f.Usages, Usage{
				Resource: resources[ri].ID,
				Weight:   0.5 + rng.Float64()*2,
			})
		}
		if rng.Intn(2) == 0 {
			f.Demand = units.Bandwidth(1+rng.Float64()*49) * units.Gbps
		}
		flows = append(flows, f)
		if err := s.AddFlow(f); err != nil {
			panic(err)
		}
	}
	return s, flows, resources
}

// Property: allocations are feasible (no resource overloaded) and demands
// are never exceeded.
func TestSolveFeasibilityProperty(t *testing.T) {
	f := func(seed int64) bool {
		s, flows, resources := randomScenario(seed)
		a, err := s.Solve()
		if err != nil {
			return false
		}
		load := make(map[ResourceID]float64)
		for _, fl := range flows {
			r := float64(a.Rate(fl.ID))
			if r < -eps {
				return false
			}
			if !fl.unbounded() && r > float64(fl.Demand)*(1+1e-6)+eps {
				return false
			}
			seen := make(map[ResourceID]float64)
			for _, u := range fl.Usages {
				seen[u.Resource] += u.Weight
			}
			for id, w := range seen {
				load[id] += w * r
			}
		}
		for _, res := range resources {
			if load[res.ID] > float64(res.Capacity)*(1+1e-5) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: max-min fairness — every flow below its demand has a saturated
// bottleneck resource on which no competing flow holds a higher rate.
func TestSolveMaxMinProperty(t *testing.T) {
	f := func(seed int64) bool {
		s, flows, resources := randomScenario(seed)
		a, err := s.Solve()
		if err != nil {
			return false
		}
		caps := make(map[ResourceID]float64)
		for _, r := range resources {
			caps[r.ID] = float64(r.Capacity)
		}
		load := make(map[ResourceID]float64)
		usedBy := make(map[ResourceID][]string)
		for _, fl := range flows {
			r := float64(a.Rate(fl.ID))
			seen := make(map[ResourceID]bool)
			for _, u := range fl.Usages {
				load[u.Resource] += u.Weight * r
				if !seen[u.Resource] {
					usedBy[u.Resource] = append(usedBy[u.Resource], fl.ID)
					seen[u.Resource] = true
				}
			}
		}
		for _, fl := range flows {
			r := float64(a.Rate(fl.ID))
			if !fl.unbounded() && r >= float64(fl.Demand)*(1-1e-6) {
				continue // demand-satisfied
			}
			ok := false
			for _, u := range fl.Usages {
				if load[u.Resource] < caps[u.Resource]*(1-1e-4) {
					continue // not saturated
				}
				// No flow sharing this saturated resource may exceed ours.
				higher := false
				for _, other := range usedBy[u.Resource] {
					if float64(a.Rate(other)) > r*(1+1e-4)+eps {
						higher = true
						break
					}
				}
				if !higher {
					ok = true
					break
				}
			}
			if !ok {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: scaling all capacities and demands scales all rates.
func TestSolveScaleInvariance(t *testing.T) {
	f := func(seed int64) bool {
		const k = 3.5
		s1, flows, resources := randomScenario(seed)
		a1, err := s1.Solve()
		if err != nil {
			return false
		}
		s2 := NewSolver()
		for _, r := range resources {
			if err := s2.SetResource(Resource{ID: r.ID, Capacity: r.Capacity * k}); err != nil {
				return false
			}
		}
		for _, fl := range flows {
			scaled := fl
			scaled.Demand = fl.Demand * k
			if err := s2.AddFlow(scaled); err != nil {
				return false
			}
		}
		a2, err := s2.Solve()
		if err != nil {
			return false
		}
		for _, fl := range flows {
			r1, r2 := float64(a1.Rate(fl.ID)), float64(a2.Rate(fl.ID))
			if math.Abs(r2-k*r1) > 1e-4*(1+k*r1) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestMachineResourcesAndCopyUsages(t *testing.T) {
	m := topology.DL585G7()
	s, err := NewMachineSolver(m)
	if err != nil {
		t.Fatal(err)
	}

	// Local copy on node 7: controller charged twice -> memBW/2 = 53.
	usages, err := CopyFlowUsages(m, 7, 7)
	if err != nil {
		t.Fatal(err)
	}
	mustAddFlow(t, s, Flow{ID: "local", Usages: usages})
	a, err := s.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if got := a.Rate("local").Gbps(); math.Abs(got-53) > 0.01 {
		t.Errorf("local copy = %v, want 53", got)
	}

	// Remote copy 2->7 is starved at 26.5.
	s2, _ := NewMachineSolver(m)
	usages, err = CopyFlowUsages(m, 2, 7)
	if err != nil {
		t.Fatal(err)
	}
	mustAddFlow(t, s2, Flow{ID: "r", Usages: usages})
	a2, err := s2.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if got := a2.Rate("r").Gbps(); math.Abs(got-26.5) > 0.01 {
		t.Errorf("copy 2->7 = %v, want 26.5", got)
	}

	if _, err := CopyFlowUsages(m, 99, 7); err == nil {
		t.Error("unknown node should error")
	}
}

func TestPIOFlowUsages(t *testing.T) {
	m := topology.DL585G7()
	p := DefaultPIOParams()

	// Local PIO: only the controller, charged twice.
	u, err := PIOFlowUsages(m, 7, 7, p)
	if err != nil {
		t.Fatal(err)
	}
	if len(u) != 1 || u[0].Weight != 2 {
		t.Errorf("local PIO usages = %+v", u)
	}

	// Remote PIO 4 on 7: the 7->4 return direction is PIO-penalized, so its
	// usage weight must exceed the plain response overhead.
	u, err = PIOFlowUsages(m, 4, 7, p)
	if err != nil {
		t.Fatal(err)
	}
	var sawPenalized bool
	for _, us := range u {
		if us.Weight > 1.3 && us.Resource != MemResource(7) {
			sawPenalized = true
		}
	}
	if !sawPenalized {
		t.Errorf("expected a penalized response link in %+v", u)
	}

	if _, err := PIOFlowUsages(m, 99, 7, p); err != nil {
		// unknown core node: route lookup fails
	} else {
		t.Error("unknown node should error")
	}
}

func TestResourceIDConstructors(t *testing.T) {
	if LinkResource(3) != "link:3" {
		t.Error("LinkResource")
	}
	if MemResource(topology.NodeID(7)) != "mem:7" {
		t.Error("MemResource")
	}
	if CoreResource(topology.NodeID(2)) != "core:2" {
		t.Error("CoreResource")
	}
	if DeviceResource("nic0", "tcp") != "dev:nic0:tcp" {
		t.Error("DeviceResource")
	}
}
