// Package topoinfer attempts to recover a machine's interconnect topology
// from a measured node-to-node bandwidth matrix — the exercise of Sec. IV-A
// of the paper. If hop distance governed bandwidth, the best-performing
// peers of each node would be its direct neighbours and the inferred graph
// would match one of the published wirings (Fig. 1). The paper finds (and
// the experiments here confirm) that the inference fails on real
// measurements, which is the first argument for measurement-driven models.
package topoinfer

import (
	"fmt"
	"sort"

	"numaio/internal/topology"
	"numaio/internal/units"
)

// Matrix is a square node-to-node bandwidth matrix (BW[i][j] is the rate
// from Nodes[i] to Nodes[j] under some workload).
type Matrix struct {
	Nodes []topology.NodeID
	BW    [][]units.Bandwidth
}

// Validate checks the matrix shape.
func (m *Matrix) Validate() error {
	if len(m.Nodes) == 0 {
		return fmt.Errorf("topoinfer: empty matrix")
	}
	if len(m.BW) != len(m.Nodes) {
		return fmt.Errorf("topoinfer: %d rows for %d nodes", len(m.BW), len(m.Nodes))
	}
	for i, row := range m.BW {
		if len(row) != len(m.Nodes) {
			return fmt.Errorf("topoinfer: row %d has %d columns", i, len(row))
		}
	}
	return nil
}

// Edge is an undirected inferred link.
type Edge struct {
	A, B topology.NodeID // A < B
}

// edge normalizes the order.
func edge(a, b topology.NodeID) Edge {
	if a > b {
		a, b = b, a
	}
	return Edge{a, b}
}

// InferAdjacency guesses each node's direct neighbours as its degree best
// peers by symmetric bandwidth (min of the two directions — a real link
// helps both). An edge is kept when both endpoints nominate each other.
func InferAdjacency(m *Matrix, degree int) (map[Edge]bool, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	if degree < 1 || degree >= len(m.Nodes) {
		return nil, fmt.Errorf("topoinfer: degree %d out of range", degree)
	}
	type peer struct {
		n  topology.NodeID
		bw float64
	}
	nominations := make(map[topology.NodeID][]topology.NodeID)
	for i, a := range m.Nodes {
		var peers []peer
		for j, b := range m.Nodes {
			if i == j {
				continue
			}
			sym := float64(m.BW[i][j])
			if back := float64(m.BW[j][i]); back < sym {
				sym = back
			}
			peers = append(peers, peer{b, sym})
		}
		sort.Slice(peers, func(x, y int) bool {
			if peers[x].bw != peers[y].bw {
				return peers[x].bw > peers[y].bw
			}
			return peers[x].n < peers[y].n
		})
		for k := 0; k < degree && k < len(peers); k++ {
			nominations[a] = append(nominations[a], peers[k].n)
		}
	}
	edges := make(map[Edge]bool)
	for a, ps := range nominations {
		for _, b := range ps {
			mutual := false
			for _, back := range nominations[b] {
				if back == a {
					mutual = true
					break
				}
			}
			if mutual {
				edges[edge(a, b)] = true
			}
		}
	}
	return edges, nil
}

// TrueAdjacency extracts a machine's actual node-to-node links.
func TrueAdjacency(mach *topology.Machine) map[Edge]bool {
	edges := make(map[Edge]bool)
	for _, l := range mach.Links() {
		av, aok := mach.Vertex(l.From)
		bv, bok := mach.Vertex(l.To)
		if !aok || !bok {
			continue
		}
		if av.Kind != topology.VertexNode || bv.Kind != topology.VertexNode {
			continue
		}
		edges[edge(av.Node, bv.Node)] = true
	}
	return edges
}

// Score compares an inferred edge set against a reference: the Jaccard
// similarity |∩| / |∪|. 1 means the topologies match exactly.
func Score(inferred, reference map[Edge]bool) float64 {
	if len(inferred) == 0 && len(reference) == 0 {
		return 1
	}
	inter, union := 0, 0
	seen := make(map[Edge]bool)
	for e := range inferred {
		seen[e] = true
		union++
		if reference[e] {
			inter++
		}
	}
	for e := range reference {
		if !seen[e] {
			union++
		}
	}
	if union == 0 {
		return 1
	}
	return float64(inter) / float64(union)
}

// VariantMatch is the inference outcome against one candidate wiring.
type VariantMatch struct {
	Variant topology.MagnyVariant
	Score   float64
}

// MatchVariants scores the inferred adjacency against all four Fig. 1
// wirings, best first. Conclusive identification needs a score near 1; the
// paper's point is that measured bandwidth yields no such match.
func MatchVariants(m *Matrix, degree int) ([]VariantMatch, error) {
	inferred, err := InferAdjacency(m, degree)
	if err != nil {
		return nil, err
	}
	var out []VariantMatch
	for _, v := range []topology.MagnyVariant{
		topology.VariantA, topology.VariantB, topology.VariantC, topology.VariantD,
	} {
		ref := TrueAdjacency(topology.MagnyCours4P(v))
		out = append(out, VariantMatch{Variant: v, Score: Score(inferred, ref)})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].Variant < out[j].Variant
	})
	return out, nil
}

// Conclusive reports whether the best match is trustworthy: a near-perfect
// score with a clear margin over the runner-up.
func Conclusive(matches []VariantMatch) bool {
	if len(matches) == 0 {
		return false
	}
	if matches[0].Score < 0.9 {
		return false
	}
	if len(matches) > 1 && matches[0].Score-matches[1].Score < 0.1 {
		return false
	}
	return true
}
