package topoinfer

import (
	"math/rand"
	"testing"
	"testing/quick"

	"numaio/internal/numa"
	"numaio/internal/stream"
	"numaio/internal/topology"
	"numaio/internal/units"
)

// idealMatrix builds a matrix where bandwidth perfectly reflects hop
// distance on the given machine: direct neighbours get 40, 2 hops 20,
// 3 hops 10 Gb/s — the world in which hop-based inference *would* work.
func idealMatrix(t *testing.T, m *topology.Machine) *Matrix {
	t.Helper()
	ids := m.NodeIDs()
	out := &Matrix{Nodes: ids, BW: make([][]units.Bandwidth, len(ids))}
	for i, a := range ids {
		out.BW[i] = make([]units.Bandwidth, len(ids))
		for j, b := range ids {
			h, err := m.HopDistance(a, b)
			if err != nil {
				t.Fatal(err)
			}
			switch h {
			case 0:
				out.BW[i][j] = 60 * units.Gbps
			case 1:
				out.BW[i][j] = 40 * units.Gbps
			case 2:
				out.BW[i][j] = 20 * units.Gbps
			default:
				out.BW[i][j] = 10 * units.Gbps
			}
		}
	}
	return out
}

func TestValidate(t *testing.T) {
	if err := (&Matrix{}).Validate(); err == nil {
		t.Error("empty matrix should fail")
	}
	bad := &Matrix{Nodes: []topology.NodeID{0, 1}, BW: [][]units.Bandwidth{{1, 2}}}
	if err := bad.Validate(); err == nil {
		t.Error("row count mismatch should fail")
	}
	ragged := &Matrix{Nodes: []topology.NodeID{0, 1}, BW: [][]units.Bandwidth{{1, 2}, {1}}}
	if err := ragged.Validate(); err == nil {
		t.Error("ragged matrix should fail")
	}
}

// On an ideal hop-governed matrix, inference recovers the true wiring
// exactly for every Fig. 1 variant.
func TestInferRecoversIdealTopology(t *testing.T) {
	for _, v := range []topology.MagnyVariant{
		topology.VariantA, topology.VariantC,
	} {
		m := topology.MagnyCours4P(v)
		mx := idealMatrix(t, m)
		inferred, err := InferAdjacency(mx, 4)
		if err != nil {
			t.Fatal(err)
		}
		truth := TrueAdjacency(m)
		if got := Score(inferred, truth); got != 1 {
			t.Errorf("%v: ideal inference score = %v, want 1", v, got)
		}
	}
}

func TestInferAdjacencyValidation(t *testing.T) {
	m := topology.MagnyCours4P(topology.VariantA)
	mx := idealMatrix(t, m)
	if _, err := InferAdjacency(mx, 0); err == nil {
		t.Error("degree 0 should fail")
	}
	if _, err := InferAdjacency(mx, 8); err == nil {
		t.Error("degree >= nodes should fail")
	}
	if _, err := InferAdjacency(&Matrix{}, 2); err == nil {
		t.Error("invalid matrix should fail")
	}
}

func TestScoreEdgeCases(t *testing.T) {
	if Score(nil, nil) != 1 {
		t.Error("two empty sets should score 1")
	}
	a := map[Edge]bool{{0, 1}: true}
	if Score(a, nil) != 0 {
		t.Error("disjoint sets should score 0")
	}
	if Score(a, a) != 1 {
		t.Error("identical sets should score 1")
	}
	// Order normalization: (1,0) equals (0,1).
	b := map[Edge]bool{edge(1, 0): true}
	if Score(a, b) != 1 {
		t.Error("edge order should not matter")
	}
}

func TestMatchVariantsOnIdealData(t *testing.T) {
	m := topology.MagnyCours4P(topology.VariantC)
	mx := idealMatrix(t, m)
	matches, err := MatchVariants(mx, 4)
	if err != nil {
		t.Fatal(err)
	}
	if matches[0].Variant != topology.VariantC || matches[0].Score != 1 {
		t.Errorf("best match = %+v, want variant-c at 1.0", matches[0])
	}
	if !Conclusive(matches) {
		t.Errorf("ideal data should identify the variant conclusively: %+v", matches)
	}
}

// The paper's Sec. IV-A result: inference from the *measured* STREAM matrix
// of the testbed identifies no Fig. 1 variant conclusively — bandwidth does
// not encode hop distance.
func TestMeasuredMatrixIsInconclusive(t *testing.T) {
	sys, err := numa.NewSystem(topology.DL585G7())
	if err != nil {
		t.Fatal(err)
	}
	r, err := stream.New(sys, stream.Config{Sigma: -1})
	if err != nil {
		t.Fatal(err)
	}
	smx, err := r.Matrix()
	if err != nil {
		t.Fatal(err)
	}
	mx := &Matrix{Nodes: smx.Nodes, BW: smx.BW}
	matches, err := MatchVariants(mx, 4)
	if err != nil {
		t.Fatal(err)
	}
	if Conclusive(matches) {
		t.Errorf("measured data should NOT identify a variant: %+v", matches)
	}
	if matches[0].Score >= 0.9 {
		t.Errorf("best score %.2f suspiciously high for measured data", matches[0].Score)
	}
}

func TestConclusiveEdgeCases(t *testing.T) {
	if Conclusive(nil) {
		t.Error("no matches cannot be conclusive")
	}
	if Conclusive([]VariantMatch{{Score: 0.5}}) {
		t.Error("low score cannot be conclusive")
	}
	if Conclusive([]VariantMatch{{Score: 0.95}, {Score: 0.94}}) {
		t.Error("narrow margin cannot be conclusive")
	}
	if !Conclusive([]VariantMatch{{Score: 0.95}, {Score: 0.5}}) {
		t.Error("high score with margin should be conclusive")
	}
	if !Conclusive([]VariantMatch{{Score: 1}}) {
		t.Error("single perfect match should be conclusive")
	}
}

func TestTrueAdjacencyIgnoresDevices(t *testing.T) {
	m := topology.DL585G7()
	edges := TrueAdjacency(m)
	// 4 intra-package + 12 inter-package node links; hub/device links must
	// not appear.
	if len(edges) != 16 {
		t.Errorf("edges = %d, want 16", len(edges))
	}
	for e := range edges {
		if e.A < 0 || e.B > 7 {
			t.Errorf("unexpected edge %+v", e)
		}
	}
}

// Property: inference never panics and scores stay in [0, 1] for random
// matrices over the variant-A node set.
func TestInferenceProperties(t *testing.T) {
	f := func(seed int64, degree uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		m := topology.MagnyCours4P(topology.VariantA)
		mx := &Matrix{Nodes: m.NodeIDs()}
		for range mx.Nodes {
			row := make([]units.Bandwidth, len(mx.Nodes))
			for j := range row {
				row[j] = units.Bandwidth(1+rng.Float64()*50) * units.Gbps
			}
			mx.BW = append(mx.BW, row)
		}
		d := 1 + int(degree)%6
		edges, err := InferAdjacency(mx, d)
		if err != nil {
			return false
		}
		score := Score(edges, TrueAdjacency(m))
		if score < 0 || score > 1 {
			return false
		}
		matches, err := MatchVariants(mx, d)
		if err != nil {
			return false
		}
		for i := 1; i < len(matches); i++ {
			if matches[i-1].Score < matches[i].Score {
				return false // must be sorted best-first
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
