package fio

import (
	"math"

	"numaio/internal/units"
)

// LatencyStats approximates fio's completion-latency (clat) report for one
// instance. The model is first-order but mechanistic:
//
//   - a block's base completion time is its propagation delay along the
//     route plus its transmission time at the instance's achieved rate
//     (which already reflects fair sharing);
//   - the spread comes from round-robin interleaving with the other
//     instances at the shared bottleneck: with k concurrent instances a
//     block occasionally waits behind up to k-1 foreign blocks, so the
//     upper percentiles widen as 1 - 1/k.
type LatencyStats struct {
	Mean units.Duration
	P50  units.Duration
	P90  units.Duration
	P99  units.Duration
}

// blockLatency computes the statistics for one instance.
func blockLatency(pathLat units.Duration, blockSize units.Size, rate units.Bandwidth, competitors int) LatencyStats {
	if rate <= 0 || blockSize <= 0 {
		return LatencyStats{}
	}
	if competitors < 1 {
		competitors = 1
	}
	service := units.Duration(blockSize.Bits() / float64(rate))
	base := pathLat + service
	spread := 1 - 1/float64(competitors)
	return LatencyStats{
		Mean: units.Duration(float64(base) * (1 + 0.10*spread)),
		P50:  base,
		P90:  units.Duration(float64(base) * (1 + 0.25*spread)),
		P99:  units.Duration(float64(base) * (1 + 0.50*spread)),
	}
}

// wellFormed reports whether the percentiles are ordered; used by tests and
// kept here so the invariant is stated next to the model.
func (l LatencyStats) wellFormed() bool {
	return l.P50 <= l.P90 && l.P90 <= l.P99 &&
		!math.IsNaN(float64(l.Mean)) && l.Mean >= l.P50
}

// JobLatency aggregates the completion-latency statistics of a job's
// instances (fio's group_reporting): means average, percentiles take the
// worst instance. The second return is false when the job is unknown.
func (r *Report) JobLatency(job string) (LatencyStats, bool) {
	var out LatencyStats
	n := 0
	for _, in := range r.Instances {
		if in.Job != job {
			continue
		}
		n++
		out.Mean += in.Latency.Mean
		if in.Latency.P50 > out.P50 {
			out.P50 = in.Latency.P50
		}
		if in.Latency.P90 > out.P90 {
			out.P90 = in.Latency.P90
		}
		if in.Latency.P99 > out.P99 {
			out.P99 = in.Latency.P99
		}
	}
	if n == 0 {
		return LatencyStats{}, false
	}
	out.Mean /= units.Duration(n)
	return out, true
}
