// Package fio is a Flexible-I/O-Tester-style benchmark engine for the
// simulated host (Sec. III-B2 of the paper). Jobs mirror fio semantics —
// ioengine, numjobs, size, bs, iodepth, NUMA binding — and run either
// against the simulated devices (tcp_send/tcp_recv, rdma_write/rdma_read/
// rdma_send, ssd_write/ssd_read), as pure memory copies (memcpy, the
// engine the paper adds for its proposed methodology), or natively against
// real Go memory/sockets (native_memcpy, native_tcp; see natives.go).
//
// Simulated engines build flows through internal/fabric, so concurrent jobs
// contend for links, memory controllers, cores and device DMA engines the
// way the paper's measurements do: TCP is host-bound and suffers the
// interrupt load on the device's node, RDMA is offloaded and stable, disk
// rates scale with cards and queue depth.
package fio

import (
	"context"
	"fmt"
	"sort"
	"strconv"

	"numaio/internal/device"
	"numaio/internal/fabric"
	"numaio/internal/faults"
	"numaio/internal/numa"
	"numaio/internal/simhost"
	"numaio/internal/telemetry"
	"numaio/internal/topology"
	"numaio/internal/units"
)

// Job is one fio job definition (one section of a job file).
type Job struct {
	Name   string
	Engine string
	// Device pins the job to one device ("" = pick by engine kind;
	// SSD engines stripe instances across all cards like the paper's
	// two-card setup).
	Device string
	// Node is the CPU binding of the job's processes (numactl
	// --cpunodebind). Buffers are allocated local-preferred on this node
	// unless MemNode overrides it.
	Node topology.NodeID
	// MemNode, when non-nil, binds buffers to this node (--membind).
	MemNode *topology.NodeID
	// NumJobs is the number of processes (parallel streams); default 1.
	NumJobs int
	// Size is the bytes each process transfers; default 400 GiB (Table III).
	Size units.Size
	// BlockSize is the I/O block size; default 128 KiB (Table III).
	BlockSize units.Size
	// IODepth is the async queue depth (disk engines); default 16.
	IODepth int
	// Interleave spreads the job's buffers round-robin over all nodes
	// (numactl --interleave=all); the DMA traffic then fans out
	// proportionally to the page placement. Mutually exclusive with
	// MemNode.
	Interleave bool
	// Rate caps each process's transfer rate (fio's rate= option); <= 0
	// means unlimited.
	Rate units.Bandwidth
	// Runtime makes the job time-based (fio's runtime= option): instances
	// run for exactly this long at their steady rate and report the bytes
	// they managed, instead of running a fixed Size to completion.
	Runtime units.Duration
	// SrcNode/DstNode configure the memcpy engine (Algorithm 1); the
	// copying threads run on Node.
	SrcNode, DstNode *topology.NodeID
}

// withDefaults fills fio's defaults (Table III of the paper).
func (j Job) withDefaults(idx int) Job {
	if j.Name == "" {
		j.Name = fmt.Sprintf("job%d", idx)
	}
	if j.NumJobs == 0 {
		j.NumJobs = 1
	}
	if j.Size == 0 {
		j.Size = 400 * units.GiB
	}
	if j.BlockSize == 0 {
		j.BlockSize = 128 * units.KiB
	}
	if j.IODepth == 0 {
		j.IODepth = 16
	}
	return j
}

// InstanceResult is the outcome of one process of a job.
type InstanceResult struct {
	Job        string
	Instance   int
	Node       topology.NodeID
	BufferNode topology.NodeID
	Bandwidth  units.Bandwidth // steady rate while all jobs were running
	AvgRate    units.Bandwidth // lifetime average
	Duration   units.Duration
	// Latency approximates fio's completion-latency percentiles for the
	// instance's blocks (see LatencyStats).
	Latency LatencyStats
}

// Report is the outcome of a run.
type Report struct {
	Instances []InstanceResult
	// PerJob sums the steady bandwidth of each job's instances.
	PerJob map[string]units.Bandwidth
	// Aggregate is the steady aggregate over all instances, the figure the
	// paper reports for equal-sized concurrent streams.
	Aggregate units.Bandwidth
	// Makespan is the completion time of the slowest instance.
	Makespan units.Duration
	// Timeline is the phase-by-phase record of the underlying fluid run
	// (rates and resource utilization between completions).
	Timeline simhost.Timeline
}

// Runner executes fio jobs on a system. It caches the per-machine flow
// plumbing (base resource table, copy routes, a reusable fluid session), so
// repeated Runs — the characterization sweep's inner loop — skip the
// rebuild. A Runner is not safe for concurrent use; spawn one per worker.
type Runner struct {
	sys   *numa.System
	specs map[string]device.Spec
	// Sigma is the reporting jitter; 0 disables it.
	Sigma float64
	// Tracer, when set, records the underlying fluid runs (one span per run
	// plus one per phase) on track TraceTID; see internal/telemetry. Tracing
	// shapes no results.
	Tracer   *telemetry.Tracer
	TraceTID int
	// LeanTimeline skips recording the Report.Timeline for device-free
	// (memcpy) runs. Bandwidths, durations and latencies are unchanged; the
	// characterization sweep turns this on because it only reads aggregates
	// and the per-phase maps dominate a run's allocations.
	LeanTimeline bool

	// baseRes is the machine + per-node core resource table, invariant
	// across runs (capacity-clamped so appends cannot alias it).
	baseRes []fabric.Resource
	// memSession reuses one solver for device-free runs, whose resource set
	// is exactly baseRes every time.
	memSession *simhost.FluidSession
	// copyCache memoizes the usages and path latency of memcpy flows per
	// (src, dst) node pair.
	copyCache map[copyKey]copyEntry

	// faults, when set, disturbs runs per the plan: linkScale degrades the
	// base resource table, device engines are slowed or failed per run, and
	// jobs can fail, hang or report outliers — all keyed by job name, so
	// faults are deterministic regardless of scheduling.
	faults    *faults.Injector
	linkScale map[fabric.ResourceID]float64

	// insts and transfers are per-run scratch reused across runs, and names
	// memoizes instance IDs and jitter keys per job shape, so the
	// characterization sweep's inner loop stays off the allocator.
	insts     []instance
	transfers []simhost.Transfer
	names     map[nameKey]*instNames
}

type copyKey struct{ src, dst topology.NodeID }

type copyEntry struct {
	usages  []fabric.Usage
	pathLat units.Duration
}

// NewRunner returns a runner with the default device specs and a small
// reporting jitter.
func NewRunner(sys *numa.System) *Runner {
	return &Runner{sys: sys, specs: device.DefaultSpecs(), Sigma: 0.015}
}

// SetSpec overrides one engine's device spec — used by ablation experiments
// (e.g. disabling the interrupt load to isolate its effect).
func (r *Runner) SetSpec(s device.Spec) { r.specs[s.Name] = s }

// SetFaults puts the runner under a fault plan (nil clears it), resolving
// the plan's link faults against the machine up front — an unknown link
// pair errors here, not mid-measurement. The cached resource table and
// fluid session are dropped so the degraded capacities take effect.
func (r *Runner) SetFaults(inj *faults.Injector) error {
	r.faults, r.linkScale = nil, nil
	r.baseRes, r.memSession = nil, nil
	if inj == nil {
		return nil
	}
	scales, err := inj.LinkScales(r.sys.Machine())
	if err != nil {
		return err
	}
	r.faults, r.linkScale = inj, scales
	return nil
}

// instance identifies one process while building flows.
type instance struct {
	job       Job
	idx       int
	id        string
	jitterKey string
	buffer    *simhost.Buffer
	bufNode   topology.NodeID
	devID     string
	isDevice  bool
	pathLat   units.Duration
}

// Run executes the jobs concurrently to completion and reports bandwidths.
func (r *Runner) Run(jobs []Job) (*Report, error) {
	return r.RunContext(context.Background(), jobs)
}

// RunContext is Run with a context gating injected hangs: a job the fault
// plan hangs blocks until ctx is done and returns its cause (typically
// context.DeadlineExceeded — callers set per-measurement timeouts). The
// simulated engines themselves complete instantly, so without a fault plan
// the context is never consulted and Run and RunContext are identical.
func (r *Runner) RunContext(ctx context.Context, jobs []Job) (*Report, error) {
	fluid, err := r.runFluid(ctx, jobs)
	defer r.freeBuffers()
	if err != nil {
		return nil, err
	}
	m := r.sys.Machine()
	insts := r.insts
	rep := &Report{
		Instances: make([]InstanceResult, 0, len(insts)),
		PerJob:    make(map[string]units.Bandwidth, len(jobs)),
		Timeline:  fluid.Timeline,
	}
	for i := range insts {
		in := &insts[i]
		res := fluid.Transfers[in.id]
		jitter := simhost.Jitter(in.jitterKey, r.effectiveSigma(in.job))
		if r.faults != nil {
			// Outliers and extra noise, keyed per job: every instance of a
			// measurement is disturbed together, producing the clean
			// whole-measurement outliers the MAD rejection is built for.
			jitter *= r.faults.SampleFactor(m.Name + "/" + in.job.Name)
		}
		ir := InstanceResult{
			Job:        in.job.Name,
			Instance:   in.idx,
			Node:       in.job.Node,
			BufferNode: in.bufNode,
			Bandwidth:  units.Bandwidth(float64(res.InitialRate) * jitter),
			AvgRate:    units.Bandwidth(float64(res.Bandwidth) * jitter),
			Duration:   res.Duration,
		}
		if in.job.Runtime > 0 {
			// Time-based job: it ran for exactly Runtime at its steady rate.
			ir.Duration = in.job.Runtime
			ir.AvgRate = ir.Bandwidth
		}
		ir.Latency = blockLatency(in.pathLat, in.job.BlockSize,
			ir.Bandwidth, len(insts))
		rep.Instances = append(rep.Instances, ir)
		rep.PerJob[in.job.Name] += ir.Bandwidth
		rep.Aggregate += ir.Bandwidth
		if ir.Duration > rep.Makespan {
			rep.Makespan = ir.Duration
		}
	}
	sortInstances(rep.Instances)
	return rep, nil
}

// RunAggregate is RunContext reduced to the steady aggregate: same jobs,
// same jitter and fault draws, same float accumulation order — but no
// Report, per-job map, latency stats or sort. The characterization sweep's
// inner loop reads only the aggregate, and this path keeps a measurement
// cell allocation-free.
func (r *Runner) RunAggregate(ctx context.Context, jobs []Job) (units.Bandwidth, error) {
	fluid, err := r.runFluid(ctx, jobs)
	defer r.freeBuffers()
	if err != nil {
		return 0, err
	}
	m := r.sys.Machine()
	var agg units.Bandwidth
	for i := range r.insts {
		in := &r.insts[i]
		res := fluid.Transfers[in.id]
		jitter := simhost.Jitter(in.jitterKey, r.effectiveSigma(in.job))
		if r.faults != nil {
			jitter *= r.faults.SampleFactor(m.Name + "/" + in.job.Name)
		}
		agg += units.Bandwidth(float64(res.InitialRate) * jitter)
	}
	return agg, nil
}

// runFluid expands jobs into r.insts (reused scratch), allocates buffers,
// builds the resource table and transfers, and runs the fluid solve. The
// caller owns freeing the buffers (freeBuffers), including on error. For
// lean device-free runs the returned result is session-owned and only
// valid until the next run.
func (r *Runner) runFluid(ctx context.Context, jobs []Job) (*simhost.SessionResult, error) {
	if len(jobs) == 0 {
		return nil, fmt.Errorf("fio: no jobs")
	}
	m := r.sys.Machine()
	r.insts = r.insts[:0]

	ssdRR := 0
	var runKey string
	for ji, j := range jobs {
		j = j.withDefaults(ji)
		if _, ok := m.Node(j.Node); !ok {
			return nil, fmt.Errorf("fio: job %q: unknown node %d", j.Name, int(j.Node))
		}
		if runKey != "" {
			runKey += "+"
		}
		runKey += j.Name
		if r.faults != nil {
			fkey := m.Name + "/" + j.Name
			if r.faults.HangAttempt(fkey) {
				// The induced hang: block until the caller's deadline.
				<-ctx.Done()
				return nil, fmt.Errorf("fio: injected hang in job %q: %w", j.Name, context.Cause(ctx))
			}
			if r.faults.FailAttempt(fkey) {
				return nil, fmt.Errorf("fio: job %q: %w", j.Name, faults.ErrInjectedFailure)
			}
		}
		for k := 0; k < j.NumJobs; k++ {
			id, jkey := r.instStrings(m, &j, k)
			r.insts = append(r.insts, instance{job: j, idx: k, id: id, jitterKey: jkey})
			in := &r.insts[len(r.insts)-1]
			switch j.Engine {
			case device.EngineMemcpy:
				if j.SrcNode == nil || j.DstNode == nil {
					return nil, fmt.Errorf("fio: job %q: memcpy engine needs src/dst nodes", j.Name)
				}
				if _, ok := m.Node(*j.SrcNode); !ok {
					return nil, fmt.Errorf("fio: job %q: unknown src node %d", j.Name, int(*j.SrcNode))
				}
				if _, ok := m.Node(*j.DstNode); !ok {
					return nil, fmt.Errorf("fio: job %q: unknown dst node %d", j.Name, int(*j.DstNode))
				}
			default:
				spec, err := r.spec(j.Engine)
				if err != nil {
					return nil, fmt.Errorf("fio: job %q: %w", j.Name, err)
				}
				in.isDevice = true
				devID, err := r.pickDevice(j, spec, &ssdRR)
				if err != nil {
					return nil, fmt.Errorf("fio: job %q: %w", j.Name, err)
				}
				in.devID = devID
			}
			if err := r.allocBuffer(in); err != nil {
				return nil, fmt.Errorf("fio: job %q: %w", j.Name, err)
			}
		}
	}

	resources, hasDevice, err := r.buildResources(r.insts, runKey)
	if err != nil {
		return nil, err
	}
	r.transfers = r.transfers[:0]
	for i := range r.insts {
		tr, err := r.buildTransfer(&r.insts[i])
		if err != nil {
			return nil, err
		}
		r.transfers = append(r.transfers, tr)
	}

	if hasDevice {
		return simhost.RunFluidTraced(resources, r.transfers, r.Tracer, r.TraceTID)
	}
	// Device-free runs (the memcpy characterization path) always solve
	// over exactly the base resource table — reuse one session.
	if r.memSession == nil {
		r.memSession, err = simhost.NewFluidSession(resources)
		if err != nil {
			return nil, err
		}
	}
	r.memSession.SetTracer(r.Tracer, r.TraceTID)
	r.memSession.SetLeanTimeline(r.LeanTimeline)
	if r.LeanTimeline {
		// Lean callers only read scalar results before the next run, so the
		// session-owned result avoids a SessionResult per measurement.
		return r.memSession.RunShared(r.transfers)
	}
	return r.memSession.Run(r.transfers)
}

// freeBuffers releases every buffer the last runFluid allocated.
func (r *Runner) freeBuffers() {
	for i := range r.insts {
		if b := r.insts[i].buffer; b != nil {
			_ = r.sys.Host().Free(b)
			r.insts[i].buffer = nil
		}
	}
}

// maxInstNames bounds the Runner's instance-name cache; past it (huge
// generated sweeps with per-attempt renames) names are computed per run
// instead of cached.
const maxInstNames = 8192

// instStrings returns the instance ID ("name/k") and jitter key
// ("machine/engine/id/nNode" — byte-identical to the format these keys have
// always used, so draws are unchanged) for process k of a job, memoized per
// (name, engine, node): the characterization sweep re-runs every cell name
// repeatedly and the concatenations were a top allocation site.
func (r *Runner) instStrings(m *topology.Machine, j *Job, k int) (id, jitterKey string) {
	key := nameKey{name: j.Name, engine: j.Engine, node: j.Node}
	n := r.names[key]
	if n == nil {
		if len(r.names) >= maxInstNames {
			id = j.Name + "/" + strconv.Itoa(k)
			return id, m.Name + "/" + j.Engine + "/" + id + "/n" + strconv.Itoa(int(j.Node))
		}
		if r.names == nil {
			r.names = make(map[nameKey]*instNames)
		}
		n = &instNames{}
		r.names[key] = n
	}
	for len(n.ids) <= k {
		kk := len(n.ids)
		idk := j.Name + "/" + strconv.Itoa(kk)
		n.ids = append(n.ids, idk)
		n.jitterKeys = append(n.jitterKeys,
			m.Name+"/"+j.Engine+"/"+idk+"/n"+strconv.Itoa(int(j.Node)))
	}
	return n.ids[k], n.jitterKeys[k]
}

type nameKey struct {
	name, engine string
	node         topology.NodeID
}

type instNames struct {
	ids, jitterKeys []string
}

// sortInstances orders results by (Job, Instance) with an insertion sort:
// expansion order is already nearly sorted, and sort.Slice's reflection
// swapper allocates on every call.
func sortInstances(s []InstanceResult) {
	for i := 1; i < len(s); i++ {
		for k := i; k > 0 && (s[k].Job < s[k-1].Job ||
			(s[k].Job == s[k-1].Job && s[k].Instance < s[k-1].Instance)); k-- {
			s[k], s[k-1] = s[k-1], s[k]
		}
	}
}

// effectiveSigma grows the reporting noise once streams oversubscribe the
// cores, reproducing the "unexpected behaviour" the paper sees at 8 and 16
// TCP streams (Sec. IV-B1).
func (r *Runner) effectiveSigma(j Job) float64 {
	sigma := r.Sigma
	node, ok := r.sys.Machine().Node(j.Node)
	if ok && j.NumJobs > node.Cores {
		sigma *= 1 + 0.5*float64(j.NumJobs-node.Cores)/float64(node.Cores)
	}
	return sigma
}

func (r *Runner) spec(engine string) (device.Spec, error) {
	s, ok := r.specs[engine]
	if !ok {
		return device.Spec{}, fmt.Errorf("unknown ioengine %q", engine)
	}
	return s, nil
}

// pickDevice selects the device for an instance: an explicit one, the only
// NIC, or the next SSD card round-robin (the paper drives both cards).
func (r *Runner) pickDevice(j Job, spec device.Spec, ssdRR *int) (string, error) {
	if j.Device != "" {
		d, ok := r.sys.Machine().DeviceByID(j.Device)
		if !ok {
			return "", fmt.Errorf("unknown device %q", j.Device)
		}
		if d.Kind != spec.Kind {
			return "", fmt.Errorf("device %q is a %v, engine %s needs a %v",
				j.Device, d.Kind, spec.Name, spec.Kind)
		}
		return d.ID, nil
	}
	devs := spec.DevicesOfKind(r.sys.Machine())
	if len(devs) == 0 {
		return "", fmt.Errorf("no %v device on machine", spec.Kind)
	}
	if spec.Kind == topology.DeviceSSD {
		d := devs[*ssdRR%len(devs)]
		*ssdRR++
		return d.ID, nil
	}
	return devs[0].ID, nil
}

// allocBuffer allocates the instance's transfer buffer the way fio under
// numactl does: bound when --membind is given, local-preferred otherwise.
func (r *Runner) allocBuffer(in *instance) error {
	j := in.job
	bufSize := j.BlockSize * units.Size(maxInt(j.IODepth, 1))
	req := simhost.AllocRequest{
		Size: bufSize, Policy: simhost.PolicyLocalPreferred, TaskNode: j.Node,
	}
	switch {
	case j.Engine == device.EngineMemcpy:
		// Algorithm 1 allocates the source and sink explicitly; account the
		// source here (the flow usages charge both nodes).
		req.Policy, req.Target = simhost.PolicyBind, *j.SrcNode
	case j.Interleave && j.MemNode != nil:
		return fmt.Errorf("interleave and membind are mutually exclusive")
	case j.Interleave:
		req.Policy = simhost.PolicyInterleave
	case j.MemNode != nil:
		req.Policy, req.Target = simhost.PolicyBind, *j.MemNode
	}
	b, err := r.sys.Host().Alloc(req)
	if err != nil {
		return err
	}
	in.buffer = b
	in.bufNode = b.HomeNode()
	if j.Engine == device.EngineMemcpy {
		in.bufNode = *j.DstNode
	}
	return nil
}

// baseResources returns the run-invariant resource table: machine resources
// plus per-node core budgets (in TCP processing units). Built once per
// Runner; the slice's capacity is clamped so appending device resources
// allocates rather than aliasing the cache.
func (r *Runner) baseResources() []fabric.Resource {
	if r.baseRes == nil {
		m := r.sys.Machine()
		resources := fabric.MachineResources(m)
		for _, n := range m.Nodes {
			resources = append(resources, fabric.Resource{
				ID: fabric.CoreResource(n.ID),
				Capacity: units.Bandwidth(float64(n.Cores) *
					float64(device.TCPHostCostPerStream) * n.EffectiveCoreMultiplier()),
			})
		}
		// Fault plans degrade links at solve time; the topology stays
		// pristine (same effect as topology.DegradeLinkBetween for flows).
		resources = fabric.ScaleResources(resources, r.linkScale)
		r.baseRes = resources[:len(resources):len(resources)]
	}
	return r.baseRes
}

// buildResources returns the base table plus one DMA-engine resource per
// (device, engine) pair in use, and reports whether any device instance is
// present. Under a fault plan the engine capacity is scaled per (device,
// run) — or the run fails outright when the plan takes the device offline.
func (r *Runner) buildResources(insts []instance, runKey string) ([]fabric.Resource, bool, error) {
	resources := r.baseResources()
	hasDevice := false
	var seen map[fabric.ResourceID]bool
	for i := range insts {
		in := &insts[i]
		if !in.isDevice {
			continue
		}
		hasDevice = true
		spec, err := r.spec(in.job.Engine)
		if err != nil {
			return nil, false, err
		}
		id := fabric.DeviceResource(in.devID, spec.Name)
		if seen == nil {
			seen = make(map[fabric.ResourceID]bool)
		}
		if !seen[id] {
			capacity := spec.Ceiling
			if r.faults != nil {
				f, err := r.faults.DeviceFactor(in.devID, runKey)
				if err != nil {
					return nil, false, fmt.Errorf("fio: job %q: %w", in.job.Name, err)
				}
				capacity = units.Bandwidth(float64(capacity) * f)
			}
			resources = append(resources, fabric.Resource{ID: id, Capacity: capacity})
			seen[id] = true
		}
	}
	return resources, hasDevice, nil
}

// buildTransfer turns an instance into a fluid transfer with its resource
// usages.
func (r *Runner) buildTransfer(in *instance) (simhost.Transfer, error) {
	m := r.sys.Machine()
	j := in.job
	tr := simhost.Transfer{ID: in.id, Bytes: j.Size}

	if j.Engine == device.EngineMemcpy {
		key := copyKey{src: *j.SrcNode, dst: *j.DstNode}
		ce, ok := r.copyCache[key]
		if !ok {
			usages, err := fabric.CopyFlowUsages(m, key.src, key.dst)
			if err != nil {
				return tr, err
			}
			route, err := m.RouteNodes(key.src, key.dst)
			if err != nil {
				return tr, err
			}
			ce = copyEntry{usages: usages, pathLat: m.PathLatency(route)}
			if r.copyCache == nil {
				r.copyCache = make(map[copyKey]copyEntry)
			}
			r.copyCache[key] = ce
		}
		tr.Usages = ce.usages
		in.pathLat = ce.pathLat
		applyRateCap(&tr, j.Rate)
		return tr, nil
	}

	spec, err := r.spec(j.Engine)
	if err != nil {
		return tr, err
	}
	dev, _ := m.DeviceByID(in.devID)

	// Bulk DMA between the device and the buffer pages: usually one node,
	// but interleaved buffers fan the traffic out proportionally to the
	// page placement, so every leg and controller is charged its share.
	total := float64(in.buffer.Size)
	engineWeight := 0.0
	pageNodes := make([]topology.NodeID, 0, len(in.buffer.Pages))
	for n := range in.buffer.Pages {
		pageNodes = append(pageNodes, n)
	}
	sort.Slice(pageNodes, func(a, b int) bool { return pageNodes[a] < pageNodes[b] })
	for _, n := range pageNodes {
		frac := float64(in.buffer.Pages[n]) / total
		if frac <= 0 {
			continue
		}
		dp, err := m.DeviceRoutes(in.devID, n)
		if err != nil {
			return tr, err
		}
		route := dp.FromMemory
		if spec.Direction == device.FromDevice {
			route = dp.ToMemory
		}
		tr.Usages = append(tr.Usages, fabric.PathUsages(route, frac)...)
		tr.Usages = append(tr.Usages, fabric.Usage{
			Resource: fabric.MemResource(n), Weight: frac,
		})
		in.pathLat += units.Duration(frac * float64(m.PathLatency(route)))

		// DMA engine time, weighted by how expensive this page's class is
		// to serve (Eq. 1's per-class rates; harmonic mixing under
		// contention).
		classRate, err := spec.ClassRate(m, in.devID, n)
		if err != nil {
			return tr, err
		}
		classRate = units.Bandwidth(float64(classRate) * r.depthFactor(spec, j))
		if classRate <= 0 {
			return tr, fmt.Errorf("fio: job %q: zero class rate", j.Name)
		}
		engineWeight += frac * float64(spec.Ceiling) / float64(classRate)
	}
	tr.Usages = append(tr.Usages, fabric.Usage{
		Resource: fabric.DeviceResource(in.devID, spec.Name),
		Weight:   engineWeight,
	})

	// Host-driven protocols: per-stream core cost on the job's node and a
	// per-stream ceiling (one thread cannot exceed one core's rate).
	if spec.PerStreamHost > 0 {
		tr.Usages = append(tr.Usages, fabric.Usage{
			Resource: fabric.CoreResource(j.Node), Weight: 1,
		})
		tr.Demand = spec.PerStreamHost
	}
	// Interrupts land on the device's local node.
	if spec.IRQWeight > 0 {
		tr.Usages = append(tr.Usages, fabric.Usage{
			Resource: fabric.CoreResource(dev.Node), Weight: spec.IRQWeight,
		})
	}
	applyRateCap(&tr, j.Rate)
	return tr, nil
}

// applyRateCap folds fio's rate= option into the transfer's demand.
func applyRateCap(tr *simhost.Transfer, rate units.Bandwidth) {
	if rate <= 0 {
		return
	}
	if tr.Demand <= 0 || rate < tr.Demand {
		tr.Demand = rate
	}
}

// depthFactor models libaio queue-depth scaling for the disk engines: the
// paper's depth of 16 saturates the cards; shallow queues leave the flash
// idle between completions.
func (r *Runner) depthFactor(spec device.Spec, j Job) float64 {
	if spec.Kind != topology.DeviceSSD {
		return 1
	}
	d := float64(maxInt(j.IODepth, 1))
	// Normalized so the paper's depth of 16 is full speed.
	f := (d / (d + 2)) / (16.0 / 18.0)
	if f > 1 {
		f = 1
	}
	return f
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Engines lists every ioengine value Run accepts, in stable order: the
// simulated device engines plus the memcpy engine of Algorithm 1.
func Engines() []string {
	specs := device.DefaultSpecs()
	names := make([]string, 0, len(specs)+1)
	for name := range specs {
		names = append(names, name)
	}
	sort.Strings(names)
	return append(names, device.EngineMemcpy)
}
