package fio

import (
	"strings"
	"testing"
)

// FuzzParseJobFile exercises the job-file parser with arbitrary input: it
// must never panic, and any successfully parsed job set must be non-empty
// with engines set.
func FuzzParseJobFile(f *testing.F) {
	f.Add("[global]\nioengine=tcp_send\n[j]\nnode=3\n")
	f.Add("[j]\nioengine=memcpy\nsrc=0\ndst=7\n")
	f.Add("# comment only\n")
	f.Add("[j]\nioengine=rdma_read\nsize=400g\nbs=128k\niodepth=16\nrate=2Gbps\ninterleave=yes\n")
	f.Add("][")
	f.Fuzz(func(t *testing.T, input string) {
		jobs, err := ParseJobFile(strings.NewReader(input))
		if err != nil {
			return
		}
		if len(jobs) == 0 {
			t.Error("nil error but no jobs")
		}
		for _, j := range jobs {
			if j.Engine == "" {
				t.Errorf("parsed job %q without engine", j.Name)
			}
		}
	})
}
