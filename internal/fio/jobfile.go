package fio

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
	"time"

	"numaio/internal/topology"
	"numaio/internal/units"
)

// ParseJobFile parses a fio-style INI job file. A [global] section supplies
// defaults inherited by every job section. Recognized keys:
//
//	ioengine = tcp_send | tcp_recv | rdma_write | rdma_read | rdma_send |
//	           ssd_write | ssd_read | memcpy
//	numjobs  = <int>
//	size     = <size>       (e.g. 400g, 128k)
//	bs       = <size>
//	iodepth  = <int>
//	node     = <int>        CPU node binding (numactl --cpunodebind)
//	membind  = <int>        memory node binding (numactl --membind)
//	interleave = <bool>     spread buffers over all nodes (--interleave=all)
//	rate     = <bandwidth>  per-process rate cap (e.g. 2Gbps)
//	runtime  = <duration>   time-based run (e.g. 30s) instead of size-based
//	device   = <id>         explicit device (nic0, ssd0, ssd1)
//	src      = <int>        memcpy source node (Algorithm 1)
//	dst      = <int>        memcpy sink node
//
// Lines starting with '#' or ';' are comments. Keys are case-insensitive.
func ParseJobFile(r io.Reader) ([]Job, error) {
	type section struct {
		name string
		kv   map[string]string
	}
	var sections []*section
	var cur *section
	sc := bufio.NewScanner(r)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") || strings.HasPrefix(line, ";") {
			continue
		}
		if strings.HasPrefix(line, "[") {
			if !strings.HasSuffix(line, "]") {
				return nil, fmt.Errorf("fio: line %d: malformed section %q", lineNo, line)
			}
			cur = &section{name: strings.TrimSpace(line[1 : len(line)-1]), kv: map[string]string{}}
			if cur.name == "" {
				return nil, fmt.Errorf("fio: line %d: empty section name", lineNo)
			}
			sections = append(sections, cur)
			continue
		}
		if cur == nil {
			return nil, fmt.Errorf("fio: line %d: key outside any section", lineNo)
		}
		eq := strings.IndexByte(line, '=')
		if eq < 0 {
			return nil, fmt.Errorf("fio: line %d: expected key=value, got %q", lineNo, line)
		}
		key := strings.ToLower(strings.TrimSpace(line[:eq]))
		val := strings.TrimSpace(line[eq+1:])
		if i := strings.IndexAny(val, "#;"); i >= 0 {
			val = strings.TrimSpace(val[:i])
		}
		if key == "" {
			return nil, fmt.Errorf("fio: line %d: empty key", lineNo)
		}
		cur.kv[key] = val
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("fio: reading job file: %w", err)
	}

	global := map[string]string{}
	var jobs []Job
	for _, s := range sections {
		if strings.EqualFold(s.name, "global") {
			for k, v := range s.kv {
				global[k] = v
			}
			continue
		}
		merged := map[string]string{}
		for k, v := range global {
			merged[k] = v
		}
		for k, v := range s.kv {
			merged[k] = v
		}
		j, err := jobFromKV(s.name, merged)
		if err != nil {
			return nil, err
		}
		jobs = append(jobs, j)
	}
	if len(jobs) == 0 {
		return nil, fmt.Errorf("fio: job file defines no jobs")
	}
	return jobs, nil
}

func jobFromKV(name string, kv map[string]string) (Job, error) {
	j := Job{Name: name}
	for key, val := range kv {
		var err error
		switch key {
		case "ioengine":
			j.Engine = val
		case "device":
			j.Device = val
		case "numjobs":
			j.NumJobs, err = atoi(val)
		case "iodepth":
			j.IODepth, err = atoi(val)
		case "size":
			j.Size, err = units.ParseSize(val)
		case "bs", "blocksize":
			j.BlockSize, err = units.ParseSize(val)
		case "node", "cpunodebind":
			var n int
			n, err = atoi(val)
			j.Node = topology.NodeID(n)
		case "membind":
			var n int
			n, err = atoi(val)
			nn := topology.NodeID(n)
			j.MemNode = &nn
		case "interleave":
			j.Interleave, err = parseBool(val)
		case "rate":
			j.Rate, err = units.ParseBandwidth(val)
		case "runtime":
			var d time.Duration
			d, err = time.ParseDuration(val)
			if err == nil && d <= 0 {
				err = fmt.Errorf("nonpositive runtime %q", val)
			}
			j.Runtime = units.Duration(d.Seconds())
		case "src":
			var n int
			n, err = atoi(val)
			nn := topology.NodeID(n)
			j.SrcNode = &nn
		case "dst":
			var n int
			n, err = atoi(val)
			nn := topology.NodeID(n)
			j.DstNode = &nn
		default:
			return j, fmt.Errorf("fio: job %q: unknown key %q", name, key)
		}
		if err != nil {
			return j, fmt.Errorf("fio: job %q: key %q: %v", name, key, err)
		}
	}
	if j.Engine == "" {
		return j, fmt.Errorf("fio: job %q: missing ioengine", name)
	}
	return j, nil
}

func parseBool(s string) (bool, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "1", "true", "yes", "on":
		return true, nil
	case "0", "false", "no", "off":
		return false, nil
	default:
		return false, fmt.Errorf("not a boolean: %q", s)
	}
}

func atoi(s string) (int, error) {
	v, err := strconv.Atoi(strings.TrimSpace(s))
	if err != nil {
		return 0, err
	}
	if v < 0 {
		return 0, fmt.Errorf("negative value %d", v)
	}
	return v, nil
}
