package fio

import (
	"fmt"
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"numaio/internal/blocksim"
	"numaio/internal/device"
	"numaio/internal/fabric"
	"numaio/internal/numa"
	"numaio/internal/simhost"
	"numaio/internal/topology"
	"numaio/internal/units"
)

func newRunner(t *testing.T) (*numa.System, *Runner) {
	t.Helper()
	sys, err := numa.NewSystem(topology.DL585G7())
	if err != nil {
		t.Fatal(err)
	}
	r := NewRunner(sys)
	r.Sigma = 0 // deterministic for assertions
	return sys, r
}

func nid(n int) *topology.NodeID {
	v := topology.NodeID(n)
	return &v
}

// small keeps simulated transfers quick to converge.
const small = 4 * units.GiB

func tcpJob(node topology.NodeID, streams int) Job {
	return Job{Name: "tcp", Engine: device.EngineTCPSend, Node: node,
		NumJobs: streams, Size: small}
}

func TestRunErrors(t *testing.T) {
	_, r := newRunner(t)
	if _, err := r.Run(nil); err == nil {
		t.Error("no jobs should fail")
	}
	if _, err := r.Run([]Job{{Engine: "warp", Node: 0, Size: small}}); err == nil {
		t.Error("unknown engine should fail")
	}
	if _, err := r.Run([]Job{{Engine: device.EngineTCPSend, Node: 42, Size: small}}); err == nil {
		t.Error("unknown node should fail")
	}
	if _, err := r.Run([]Job{{Engine: device.EngineMemcpy, Node: 7, Size: small}}); err == nil {
		t.Error("memcpy without src/dst should fail")
	}
	if _, err := r.Run([]Job{{Engine: device.EngineMemcpy, Node: 7, Size: small,
		SrcNode: nid(42), DstNode: nid(7)}}); err == nil {
		t.Error("unknown src should fail")
	}
	if _, err := r.Run([]Job{{Engine: device.EngineMemcpy, Node: 7, Size: small,
		SrcNode: nid(0), DstNode: nid(42)}}); err == nil {
		t.Error("unknown dst should fail")
	}
	if _, err := r.Run([]Job{{Engine: device.EngineTCPSend, Node: 0, Size: small,
		Device: "nope"}}); err == nil {
		t.Error("unknown device should fail")
	}
	if _, err := r.Run([]Job{{Engine: device.EngineTCPSend, Node: 0, Size: small,
		Device: topology.SSD0}}); err == nil {
		t.Error("device kind mismatch should fail")
	}
}

func TestBuffersFreedAfterRun(t *testing.T) {
	sys, r := newRunner(t)
	var before [8]units.Size
	for n := 0; n < 8; n++ {
		before[n] = sys.FreeMem(topology.NodeID(n))
	}
	if _, err := r.Run([]Job{tcpJob(3, 4)}); err != nil {
		t.Fatal(err)
	}
	for n := 0; n < 8; n++ {
		if after := sys.FreeMem(topology.NodeID(n)); after != before[n] {
			t.Errorf("node %d free changed %v -> %v", n, before[n], after)
		}
	}
}

// Fig. 5(a): TCP send bandwidth grows with streams until four parallel
// streams, then plateaus.
func TestTCPStreamScaling(t *testing.T) {
	_, r := newRunner(t)
	var prev float64
	rates := map[int]float64{}
	for _, n := range []int{1, 2, 4, 8, 16} {
		rep, err := r.Run([]Job{tcpJob(6, n)})
		if err != nil {
			t.Fatal(err)
		}
		rates[n] = rep.Aggregate.Gbps()
		if rates[n] < prev-0.01 {
			t.Errorf("aggregate dropped with more streams: %d -> %.2f", n, rates[n])
		}
		prev = rates[n]
	}
	if math.Abs(rates[1]-5.3) > 0.1 {
		t.Errorf("1 stream = %.2f, want ~5.3 (per-core TCP cost)", rates[1])
	}
	if !(rates[4] > 3.5*rates[1]) {
		t.Errorf("4 streams (%.2f) should be ~4x one stream (%.2f)", rates[4], rates[1])
	}
	if math.Abs(rates[16]-rates[4]) > 0.05*rates[4] {
		t.Errorf("16 streams (%.2f) should plateau at the 4-stream rate (%.2f)", rates[16], rates[4])
	}
}

// Sec. IV-B1: binding to neighbour node 6 beats the device-local node 7,
// because node 7's cores also service the NIC interrupts.
func TestNeighborBeatsLocalUnderInterrupts(t *testing.T) {
	_, r := newRunner(t)
	rep6, err := r.Run([]Job{tcpJob(6, 4)})
	if err != nil {
		t.Fatal(err)
	}
	rep7, err := r.Run([]Job{tcpJob(7, 4)})
	if err != nil {
		t.Fatal(err)
	}
	if !(rep6.Aggregate > rep7.Aggregate) {
		t.Errorf("node 6 (%.2f) should beat node 7 (%.2f)",
			rep6.Aggregate.Gbps(), rep7.Aggregate.Gbps())
	}
	// Both are class 1: within ~10% of each other.
	if rel := (rep6.Aggregate - rep7.Aggregate).Gbps() / rep6.Aggregate.Gbps(); rel > 0.10 {
		t.Errorf("node 7 penalty too large: %.0f%%", rel*100)
	}
}

// Table IV: TCP send from class 3 nodes {2,3} is starved to ~16.2 Gb/s.
func TestTCPSendClass3(t *testing.T) {
	_, r := newRunner(t)
	for _, n := range []topology.NodeID{2, 3} {
		rep, err := r.Run([]Job{tcpJob(n, 4)})
		if err != nil {
			t.Fatal(err)
		}
		if got := rep.Aggregate.Gbps(); math.Abs(got-16.2) > 1.0 {
			t.Errorf("TCP send node %d = %.2f, want ~16.2", n, got)
		}
	}
}

// Table IV: RDMA_WRITE reaches its 23.3 Gb/s ceiling from class 1/2 nodes
// with a single offloaded stream and ~17.1 from class 3.
func TestRDMAWriteClasses(t *testing.T) {
	_, r := newRunner(t)
	for n, want := range map[topology.NodeID]float64{
		7: 23.3, 6: 23.3, 0: 23.3, 5: 23.3, 2: 17.2, 3: 17.2,
	} {
		rep, err := r.Run([]Job{{Name: "w", Engine: device.EngineRDMAWrite,
			Node: n, NumJobs: 2, Size: small}})
		if err != nil {
			t.Fatal(err)
		}
		if got := rep.Aggregate.Gbps(); math.Abs(got-want) > 0.08*want {
			t.Errorf("rdma_write node %d = %.2f, want ~%.1f", n, got, want)
		}
	}
}

// Table V: RDMA_READ classes — {6,7,2,3} at the 22 Gb/s ceiling, {0,1,5}
// around 18-19, {4} lowest.
func TestRDMAReadClasses(t *testing.T) {
	_, r := newRunner(t)
	get := func(n topology.NodeID) float64 {
		rep, err := r.Run([]Job{{Name: "r", Engine: device.EngineRDMARead,
			Node: n, NumJobs: 2, Size: small}})
		if err != nil {
			t.Fatal(err)
		}
		return rep.Aggregate.Gbps()
	}
	for _, n := range []topology.NodeID{7, 6, 2, 3} {
		if got := get(n); math.Abs(got-22.0) > 1.0 {
			t.Errorf("rdma_read node %d = %.2f, want ~22", n, got)
		}
	}
	mid := get(0)
	if math.Abs(mid-19.0) > 1.3 {
		t.Errorf("rdma_read node 0 = %.2f, want ~18-19", mid)
	}
	low := get(4)
	if !(low < mid-1) {
		t.Errorf("rdma_read node 4 (%.2f) should trail class 3 (%.2f)", low, mid)
	}
	if math.Abs(low-17.0) > 1.5 {
		t.Errorf("rdma_read node 4 = %.2f, want ~16-17", low)
	}
}

// Paper footnote on RDMA_READ vs STREAM: nodes {2,3} beat {0,1} for device
// reads although the STREAM models say the opposite — the key mismatch the
// proposed methodology resolves.
func TestRDMAReadInvertsStreamModel(t *testing.T) {
	_, r := newRunner(t)
	get := func(n topology.NodeID) float64 {
		rep, err := r.Run([]Job{{Name: "r", Engine: device.EngineRDMARead,
			Node: n, NumJobs: 2, Size: small}})
		if err != nil {
			t.Fatal(err)
		}
		return rep.Aggregate.Gbps()
	}
	if !(get(2) > get(0)*1.1) {
		t.Errorf("rdma_read node 2 (%.2f) should clearly beat node 0 (%.2f)", get(2), get(0))
	}
}

// Fig. 7: two-card SSD rates. Write ~29 from class 1, ~18 from class 3;
// read ~34.8 local and clearly degraded on node 4.
func TestSSDClasses(t *testing.T) {
	_, r := newRunner(t)
	run := func(engine string, n topology.NodeID, procs int) float64 {
		rep, err := r.Run([]Job{{Name: "d", Engine: engine, Node: n,
			NumJobs: procs, Size: small}})
		if err != nil {
			t.Fatal(err)
		}
		return rep.Aggregate.Gbps()
	}
	if got := run(device.EngineSSDWrite, 7, 2); math.Abs(got-29.0) > 1.5 {
		t.Errorf("ssd_write node 7 = %.2f, want ~29", got)
	}
	if got := run(device.EngineSSDWrite, 2, 2); math.Abs(got-18.0) > 1.5 {
		t.Errorf("ssd_write node 2 = %.2f, want ~18", got)
	}
	if got := run(device.EngineSSDRead, 7, 2); math.Abs(got-34.8) > 1.5 {
		t.Errorf("ssd_read node 7 = %.2f, want ~34.8", got)
	}
	lo := run(device.EngineSSDRead, 4, 2)
	hi := run(device.EngineSSDRead, 0, 2)
	if !(lo < hi-4) {
		t.Errorf("ssd_read node 4 (%.2f) should trail node 0 (%.2f) by a wide gap", lo, hi)
	}
	// More processes than cards plateaus.
	if got := run(device.EngineSSDWrite, 7, 4); math.Abs(got-29.0) > 1.5 {
		t.Errorf("ssd_write with 4 procs = %.2f, want ~29", got)
	}
}

// Shallow queues leave the flash idle (libaio iodepth, Sec. IV-B3).
func TestSSDQueueDepth(t *testing.T) {
	_, r := newRunner(t)
	deep, err := r.Run([]Job{{Name: "d", Engine: device.EngineSSDRead, Node: 7,
		NumJobs: 2, Size: small, IODepth: 16}})
	if err != nil {
		t.Fatal(err)
	}
	shallow, err := r.Run([]Job{{Name: "d", Engine: device.EngineSSDRead, Node: 7,
		NumJobs: 2, Size: small, IODepth: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if !(shallow.Aggregate < deep.Aggregate/2) {
		t.Errorf("iodepth 1 (%.2f) should be far below iodepth 16 (%.2f)",
			shallow.Aggregate.Gbps(), deep.Aggregate.Gbps())
	}
}

// The memcpy engine (Algorithm 1's primitive): four threads on node 7
// copying from a source node reproduce the calibrated path capacities.
func TestMemcpyEngine(t *testing.T) {
	_, r := newRunner(t)
	run := func(src, dst topology.NodeID) float64 {
		rep, err := r.Run([]Job{{Name: "m", Engine: device.EngineMemcpy, Node: dst,
			NumJobs: 4, Size: small, SrcNode: &src, DstNode: &dst}})
		if err != nil {
			t.Fatal(err)
		}
		return rep.Aggregate.Gbps()
	}
	if got := run(7, 7); math.Abs(got-53) > 0.5 {
		t.Errorf("local memcpy = %.2f, want ~53", got)
	}
	if got := run(0, 7); math.Abs(got-45.5) > 0.5 {
		t.Errorf("memcpy 0->7 = %.2f, want ~45.5", got)
	}
	if got := run(2, 7); math.Abs(got-26.5) > 0.5 {
		t.Errorf("memcpy 2->7 = %.2f, want ~26.5", got)
	}
	if got := run(7, 4); math.Abs(got-28) > 0.5 {
		t.Errorf("memcpy 7->4 = %.2f, want ~28", got)
	}
}

// Sec. V-B multi-user validation: two RDMA_READ processes on node 2
// (class 2, ~22) plus two on node 0 (class 3, ~19) aggregate slightly
// below the Eq. 1 arithmetic-mean prediction.
func TestMultiUserHarmonicAggregate(t *testing.T) {
	_, r := newRunner(t)
	rep, err := r.Run([]Job{
		{Name: "c2", Engine: device.EngineRDMARead, Node: 2, NumJobs: 2, Size: small},
		{Name: "c3", Engine: device.EngineRDMARead, Node: 0, NumJobs: 2, Size: small},
	})
	if err != nil {
		t.Fatal(err)
	}
	single := func(n topology.NodeID) float64 {
		rr, err := r.Run([]Job{{Name: "s", Engine: device.EngineRDMARead,
			Node: n, NumJobs: 2, Size: small}})
		if err != nil {
			t.Fatal(err)
		}
		return rr.Aggregate.Gbps()
	}
	predicted := 0.5*single(2) + 0.5*single(0) // Eq. 1
	measured := rep.Aggregate.Gbps()
	if !(measured <= predicted+0.01) {
		t.Errorf("measured %.3f should not exceed Eq.1 prediction %.3f", measured, predicted)
	}
	if rel := math.Abs(predicted-measured) / measured; rel > 0.05 {
		t.Errorf("Eq.1 relative error %.1f%% exceeds 5%% (paper: 3.1%%)", rel*100)
	}
	if len(rep.Instances) != 4 {
		t.Errorf("expected 4 instances, got %d", len(rep.Instances))
	}
	// The DMA engine serves streams round-robin: equal byte rates per
	// stream, with the class mix expressed in the (harmonic) aggregate.
	if diff := math.Abs((rep.PerJob["c2"] - rep.PerJob["c3"]).Gbps()); diff > 0.01 {
		t.Errorf("round-robin engine should equalize per-job rates, diff %.3f", diff)
	}
}

func TestMembindOverride(t *testing.T) {
	_, r := newRunner(t)
	rep, err := r.Run([]Job{{Name: "b", Engine: device.EngineRDMAWrite, Node: 7,
		NumJobs: 1, Size: small, MemNode: nid(2)}})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Instances[0].BufferNode != 2 {
		t.Errorf("buffer node = %d, want 2", rep.Instances[0].BufferNode)
	}
	// Buffer on class-3 node 2 throttles the write even though the task
	// runs on node 7: placement follows the memory, not the CPU.
	if got := rep.Aggregate.Gbps(); math.Abs(got-17.2) > 1.5 {
		t.Errorf("membind-2 rdma_write = %.2f, want ~17.2", got)
	}
}

func TestReportJitterGrowsWithOversubscription(t *testing.T) {
	sys, _ := newRunner(t)
	r := NewRunner(sys)
	r.Sigma = 0.015
	if got := r.effectiveSigma(Job{Node: 6, NumJobs: 4}); got != 0.015 {
		t.Errorf("sigma at 4 jobs = %v", got)
	}
	if got := r.effectiveSigma(Job{Node: 6, NumJobs: 16}); got <= 0.015 {
		t.Errorf("sigma at 16 jobs = %v, want > base", got)
	}
}

func TestParseJobFile(t *testing.T) {
	src := `
# Fig. 5 style job file
[global]
ioengine=tcp_send
size=4g
bs=128k
iodepth=16

[senders]
node=6
numjobs=4

[readers]
ioengine=rdma_read
node=2
numjobs=2
membind=2
device=nic0

[copy]
ioengine=memcpy
node=7
src=0
dst=7
`
	jobs, err := ParseJobFile(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 3 {
		t.Fatalf("parsed %d jobs, want 3", len(jobs))
	}
	s := jobs[0]
	if s.Name != "senders" || s.Engine != "tcp_send" || s.Node != 6 ||
		s.NumJobs != 4 || s.Size != 4*units.GiB || s.BlockSize != 128*units.KiB {
		t.Errorf("senders = %+v", s)
	}
	rd := jobs[1]
	if rd.Engine != "rdma_read" || rd.MemNode == nil || *rd.MemNode != 2 || rd.Device != "nic0" {
		t.Errorf("readers = %+v", rd)
	}
	cp := jobs[2]
	if cp.Engine != "memcpy" || cp.SrcNode == nil || *cp.SrcNode != 0 ||
		cp.DstNode == nil || *cp.DstNode != 7 {
		t.Errorf("copy = %+v", cp)
	}

	// The parsed jobs must actually run.
	_, r := newRunner(t)
	if _, err := r.Run(jobs); err != nil {
		t.Errorf("running parsed jobs: %v", err)
	}
}

func TestParseJobFileErrors(t *testing.T) {
	cases := []string{
		"",                                     // no jobs
		"key=value\n",                          // key outside section
		"[broken\nk=v\n",                       // malformed section header
		"[]\n",                                 // empty section name
		"[j]\nnonsense\n",                      // not key=value
		"[j]\n=v\n",                            // empty key
		"[j]\nioengine=tcp_send\nwhat=1\n",     // unknown key
		"[j]\nnumjobs=-2\nioengine=tcp_send\n", // negative int
		"[j]\nsize=goofy\nioengine=tcp_send\n", // bad size
		"[j]\nnode=two\nioengine=tcp_send\n",   // bad int
		"[j]\nbs=128k\n",                       // missing ioengine
	}
	for _, src := range cases {
		if _, err := ParseJobFile(strings.NewReader(src)); err == nil {
			t.Errorf("expected error for %q", src)
		}
	}
}

func TestParseJobFileInlineComments(t *testing.T) {
	jobs, err := ParseJobFile(strings.NewReader("[j]\nioengine=tcp_send ; stream test\nnode=3 # bind\n"))
	if err != nil {
		t.Fatal(err)
	}
	if jobs[0].Engine != "tcp_send" || jobs[0].Node != 3 {
		t.Errorf("job = %+v", jobs[0])
	}
}

func TestNativeMemcpy(t *testing.T) {
	res, err := NativeMemcpy(64*units.MiB, 256*units.KiB, 2)
	if err != nil {
		t.Fatal(err)
	}
	if res.Bandwidth <= 0 || res.Bytes < 64*units.MiB {
		t.Errorf("result = %+v", res)
	}
	if _, err := NativeMemcpy(0, units.KiB, 1); err == nil {
		t.Error("zero size should fail")
	}
	if _, err := NativeMemcpy(units.MiB, 0, 1); err == nil {
		t.Error("zero block should fail")
	}
	// Threads default and block clamp paths.
	if res, err := NativeMemcpy(units.MiB, 16*units.MiB, 0); err != nil || res.Threads <= 0 {
		t.Errorf("defaulted run failed: %+v, %v", res, err)
	}
}

func TestNativeTCP(t *testing.T) {
	res, err := NativeTCP(4*units.MiB, 64*units.KiB, 2)
	if err != nil {
		t.Fatal(err)
	}
	if res.Bandwidth <= 0 || res.Bytes != 8*units.MiB || res.Streams != 2 {
		t.Errorf("result = %+v", res)
	}
	if _, err := NativeTCP(0, units.KiB, 1); err == nil {
		t.Error("zero size should fail")
	}
	if _, err := NativeTCP(units.MiB, 0, 1); err == nil {
		t.Error("zero block should fail")
	}
	if res, err := NativeTCP(units.MiB, 4*units.MiB, 0); err != nil || res.Streams != 1 {
		t.Errorf("defaulted run failed: %+v, %v", res, err)
	}
}

// An interleaved buffer fans DMA traffic over every node: its rate lands
// between the best and worst single-node classes.
func TestInterleavedBuffer(t *testing.T) {
	_, r := newRunner(t)
	run := func(job Job) float64 {
		rep, err := r.Run([]Job{job})
		if err != nil {
			t.Fatal(err)
		}
		return rep.Aggregate.Gbps()
	}
	best := run(Job{Name: "b", Engine: device.EngineRDMAWrite, Node: 7, NumJobs: 1, Size: small})
	worst := run(Job{Name: "w", Engine: device.EngineRDMAWrite, Node: 7, NumJobs: 1,
		Size: small, MemNode: nid(2)})
	inter := run(Job{Name: "i", Engine: device.EngineRDMAWrite, Node: 7, NumJobs: 1,
		Size: small, Interleave: true})
	if !(inter > worst && inter < best) {
		t.Errorf("interleaved %.2f should lie between worst %.2f and best %.2f",
			inter, worst, best)
	}
	// The interleaved instance reports its majority node via HomeNode; more
	// importantly the run must free all pages.
	if _, err := r.Run([]Job{{Name: "i2", Engine: device.EngineRDMAWrite, Node: 7,
		NumJobs: 2, Size: small, Interleave: true}}); err != nil {
		t.Fatal(err)
	}
}

func TestInterleaveMembindConflict(t *testing.T) {
	_, r := newRunner(t)
	if _, err := r.Run([]Job{{Name: "x", Engine: device.EngineRDMAWrite, Node: 7,
		Size: small, Interleave: true, MemNode: nid(2)}}); err == nil {
		t.Error("interleave+membind should fail")
	}
}

// fio's rate= option caps each process.
func TestRateCap(t *testing.T) {
	_, r := newRunner(t)
	rep, err := r.Run([]Job{{Name: "capped", Engine: device.EngineRDMAWrite, Node: 7,
		NumJobs: 2, Size: small, Rate: 3 * units.Gbps}})
	if err != nil {
		t.Fatal(err)
	}
	if got := rep.Aggregate.Gbps(); math.Abs(got-6) > 0.01 {
		t.Errorf("aggregate = %.2f, want 6 (2 x 3 Gb/s)", got)
	}
	// Rate also caps the memcpy engine.
	src, dst := topology.NodeID(0), topology.NodeID(7)
	rep, err = r.Run([]Job{{Name: "mc", Engine: device.EngineMemcpy, Node: 7,
		NumJobs: 1, Size: small, Rate: 2 * units.Gbps, SrcNode: &src, DstNode: &dst}})
	if err != nil {
		t.Fatal(err)
	}
	if got := rep.Aggregate.Gbps(); math.Abs(got-2) > 0.01 {
		t.Errorf("memcpy aggregate = %.2f, want 2", got)
	}
}

func TestParseJobFileInterleaveAndRate(t *testing.T) {
	jobs, err := ParseJobFile(strings.NewReader(`
[j]
ioengine=rdma_write
node=7
interleave=yes
rate=2Gbps
`))
	if err != nil {
		t.Fatal(err)
	}
	if !jobs[0].Interleave || jobs[0].Rate != 2*units.Gbps {
		t.Errorf("job = %+v", jobs[0])
	}
	if _, err := ParseJobFile(strings.NewReader("[j]\nioengine=tcp_send\ninterleave=maybe\n")); err == nil {
		t.Error("bad boolean should fail")
	}
	if _, err := ParseJobFile(strings.NewReader("[j]\nioengine=tcp_send\nrate=goofy\n")); err == nil {
		t.Error("bad rate should fail")
	}
}

// Completion-latency percentiles: ordered, wider with more competitors,
// longer on remote paths.
func TestLatencyStats(t *testing.T) {
	_, r := newRunner(t)
	single, err := r.Run([]Job{{Name: "s", Engine: device.EngineRDMAWrite, Node: 7,
		NumJobs: 1, Size: small}})
	if err != nil {
		t.Fatal(err)
	}
	lat1 := single.Instances[0].Latency
	if !lat1.wellFormed() {
		t.Errorf("latency stats malformed: %+v", lat1)
	}
	// A single instance has no RR competitors: p99 == p50.
	if lat1.P99 != lat1.P50 {
		t.Errorf("single instance p99 %v != p50 %v", lat1.P99, lat1.P50)
	}

	many, err := r.Run([]Job{{Name: "m", Engine: device.EngineRDMAWrite, Node: 7,
		NumJobs: 4, Size: small}})
	if err != nil {
		t.Fatal(err)
	}
	latN := many.Instances[0].Latency
	if !latN.wellFormed() {
		t.Errorf("latency stats malformed: %+v", latN)
	}
	if !(latN.P99 > latN.P50) {
		t.Error("contended run should widen the tail")
	}
	// Four ways slower per stream -> roughly 4x the block time.
	if !(latN.P50 > 3*lat1.P50) {
		t.Errorf("4-way block time %v should be ~4x single %v", latN.P50, lat1.P50)
	}

	// Remote buffers add propagation delay.
	local, err := r.Run([]Job{{Name: "l", Engine: device.EngineRDMAWrite, Node: 7,
		NumJobs: 1, Size: small, Rate: 10 * units.Gbps}})
	if err != nil {
		t.Fatal(err)
	}
	remote, err := r.Run([]Job{{Name: "r", Engine: device.EngineRDMAWrite, Node: 7,
		NumJobs: 1, Size: small, Rate: 10 * units.Gbps, MemNode: nid(1)}})
	if err != nil {
		t.Fatal(err)
	}
	if !(remote.Instances[0].Latency.P50 > local.Instances[0].Latency.P50) {
		t.Errorf("remote p50 %v should exceed local p50 %v",
			remote.Instances[0].Latency.P50, local.Instances[0].Latency.P50)
	}
}

func TestBlockLatencyEdgeCases(t *testing.T) {
	if got := blockLatency(0, 0, units.Gbps, 1); got != (LatencyStats{}) {
		t.Error("zero block size should yield zero stats")
	}
	if got := blockLatency(0, units.KiB, 0, 1); got != (LatencyStats{}) {
		t.Error("zero rate should yield zero stats")
	}
	got := blockLatency(0, 128*units.KiB, units.Gbps, 0)
	if !got.wellFormed() {
		t.Errorf("competitors<1 should clamp: %+v", got)
	}
}

// Property: any valid random job mix yields a feasible report — aggregate
// bounded by the involved device ceilings plus memory-path limits, memory
// conserved, every instance reported.
func TestRunFeasibilityProperty(t *testing.T) {
	engines := []string{
		device.EngineTCPSend, device.EngineTCPRecv, device.EngineRDMAWrite,
		device.EngineRDMARead, device.EngineRDMASend, device.EngineSSDWrite,
		device.EngineSSDRead,
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		sys, err := numa.NewSystem(topology.DL585G7())
		if err != nil {
			return false
		}
		r := NewRunner(sys)
		r.Sigma = 0
		nJobs := 1 + rng.Intn(4)
		var jobs []Job
		total := 0
		for i := 0; i < nJobs; i++ {
			j := Job{
				Name:    fmt.Sprintf("j%d", i),
				Engine:  engines[rng.Intn(len(engines))],
				Node:    topology.NodeID(rng.Intn(8)),
				NumJobs: 1 + rng.Intn(4),
				Size:    units.Size(1+rng.Intn(4)) * units.GiB,
			}
			if rng.Intn(3) == 0 {
				j.Interleave = true
			}
			total += j.NumJobs
			jobs = append(jobs, j)
		}
		rep, err := r.Run(jobs)
		if err != nil {
			return false
		}
		if len(rep.Instances) != total {
			return false
		}
		// Ceiling bound: sum of all distinct (device, engine) ceilings.
		specs := device.DefaultSpecs()
		bound := 0.0
		seen := map[string]bool{}
		for _, j := range jobs {
			spec := specs[j.Engine]
			perDev := 1
			if spec.Kind == topology.DeviceSSD {
				perDev = 2
			}
			if !seen[j.Engine] {
				bound += float64(spec.Ceiling) * float64(perDev)
				seen[j.Engine] = true
			}
		}
		if float64(rep.Aggregate) > bound*1.001 {
			return false
		}
		// Memory conserved.
		for n := topology.NodeID(0); n < 8; n++ {
			want := 4 * units.GiB
			if n == 0 {
				want -= simhost.DefaultOSReservation
			}
			if sys.FreeMem(n) != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Cross-model check: the analytic LatencyStats agrees with the block-level
// DES on the p50 block time for an uncontended stream.
func TestLatencyAgainstBlocksim(t *testing.T) {
	sys, r := newRunner(t)
	rep, err := r.Run([]Job{{Name: "x", Engine: device.EngineRDMAWrite, Node: 7,
		NumJobs: 1, Size: small}})
	if err != nil {
		t.Fatal(err)
	}
	analytic := rep.Instances[0].Latency.P50.Seconds()

	// The same flow block by block: single stage at the achieved rate.
	res := []fabric.Resource{{ID: "eng", Capacity: rep.Instances[0].Bandwidth}}
	out, err := blocksim.Run(res, []blocksim.Transfer{{
		ID: "x", Bytes: 64 * units.MiB,
		Stages: []blocksim.Stage{{Resource: "eng", Weight: 1}},
		Window: 1,
	}}, blocksim.Config{})
	if err != nil {
		t.Fatal(err)
	}
	des := out["x"].LatencyPercentile(0.5).Seconds()
	// Analytic includes the propagation delay on top of the service time;
	// both must agree within 10% (propagation is sub-microsecond).
	if rel := math.Abs(analytic-des) / des; rel > 0.10 {
		t.Errorf("analytic p50 %.3gs vs blocksim %.3gs (off %.0f%%)", analytic, des, rel*100)
	}
	_ = sys
}

// runtime= makes a job time-based: fixed duration, rate-derived bytes.
func TestRuntimeJobs(t *testing.T) {
	_, r := newRunner(t)
	rep, err := r.Run([]Job{{Name: "t", Engine: device.EngineRDMAWrite, Node: 7,
		NumJobs: 2, Size: small, Runtime: units.Duration(30)}})
	if err != nil {
		t.Fatal(err)
	}
	for _, in := range rep.Instances {
		if in.Duration != units.Duration(30) {
			t.Errorf("instance duration = %v, want 30s", in.Duration)
		}
		if in.AvgRate != in.Bandwidth {
			t.Error("time-based job should report steady rate as average")
		}
	}
	if rep.Makespan != units.Duration(30) {
		t.Errorf("makespan = %v, want 30s", rep.Makespan)
	}

	jobs, err := ParseJobFile(strings.NewReader("[j]\nioengine=tcp_send\nnode=6\nruntime=45s\n"))
	if err != nil {
		t.Fatal(err)
	}
	if jobs[0].Runtime != units.Duration(45) {
		t.Errorf("parsed runtime = %v", jobs[0].Runtime)
	}
	if _, err := ParseJobFile(strings.NewReader("[j]\nioengine=tcp_send\nruntime=goofy\n")); err == nil {
		t.Error("bad runtime should fail")
	}
	if _, err := ParseJobFile(strings.NewReader("[j]\nioengine=tcp_send\nruntime=-3s\n")); err == nil {
		t.Error("negative runtime should fail")
	}
}

// The dual-port adapter: each port alone reaches the RDMA ceiling, but both
// ports together are capped by the card's shared PCIe Gen2 x8 attachment.
func TestDualPortSharesPCIe(t *testing.T) {
	sys, err := numa.NewSystem(topology.DL585G7DualPort())
	if err != nil {
		t.Fatal(err)
	}
	r := NewRunner(sys)
	r.Sigma = 0

	one, err := r.Run([]Job{{Name: "p0", Engine: device.EngineRDMAWrite, Node: 7,
		NumJobs: 1, Size: small, Device: topology.NIC0P0}})
	if err != nil {
		t.Fatal(err)
	}
	if got := one.Aggregate.Gbps(); math.Abs(got-23.3) > 1 {
		t.Errorf("single port = %.2f, want ~23.3", got)
	}

	both, err := r.Run([]Job{
		{Name: "p0", Engine: device.EngineRDMAWrite, Node: 7, NumJobs: 1, Size: small, Device: topology.NIC0P0},
		{Name: "p1", Engine: device.EngineRDMAWrite, Node: 7, NumJobs: 1, Size: small, Device: topology.NIC0P1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := both.Aggregate.Gbps(); got > 32.01 {
		t.Errorf("dual port aggregate = %.2f, must not exceed the 32 Gb/s PCIe attachment", got)
	}
	if got := both.Aggregate.Gbps(); got < 30 {
		t.Errorf("dual port aggregate = %.2f, should saturate the PCIe attachment", got)
	}
	// Fair split between the ports.
	if d := math.Abs((both.PerJob["p0"] - both.PerJob["p1"]).Gbps()); d > 0.5 {
		t.Errorf("ports should split evenly, diff %.2f", d)
	}
}

func TestJobLatencyAggregation(t *testing.T) {
	_, r := newRunner(t)
	rep, err := r.Run([]Job{{Name: "g", Engine: device.EngineRDMAWrite, Node: 7,
		NumJobs: 3, Size: small}})
	if err != nil {
		t.Fatal(err)
	}
	agg, ok := rep.JobLatency("g")
	if !ok {
		t.Fatal("job latency missing")
	}
	if !agg.wellFormed() {
		t.Errorf("aggregated stats malformed: %+v", agg)
	}
	// Group percentiles must dominate every instance's.
	for _, in := range rep.Instances {
		if in.Latency.P99 > agg.P99 {
			t.Errorf("instance p99 %v exceeds group p99 %v", in.Latency.P99, agg.P99)
		}
	}
	if _, ok := rep.JobLatency("ghost"); ok {
		t.Error("unknown job should report false")
	}
}

// Pinning all SSD processes to one card (fio's filename= analogue) halves
// the two-card aggregate.
func TestExplicitSSDDevicePinning(t *testing.T) {
	_, r := newRunner(t)
	striped, err := r.Run([]Job{{Name: "s", Engine: device.EngineSSDWrite, Node: 7,
		NumJobs: 2, Size: small}})
	if err != nil {
		t.Fatal(err)
	}
	pinned, err := r.Run([]Job{{Name: "p", Engine: device.EngineSSDWrite, Node: 7,
		NumJobs: 2, Size: small, Device: topology.SSD0}})
	if err != nil {
		t.Fatal(err)
	}
	ratio := float64(striped.Aggregate) / float64(pinned.Aggregate)
	if math.Abs(ratio-2) > 0.1 {
		t.Errorf("striped/pinned = %.2f, want ~2 (one card vs two)", ratio)
	}
}

func TestEnginesList(t *testing.T) {
	engines := Engines()
	if len(engines) != 8 {
		t.Fatalf("engines = %v", engines)
	}
	if engines[len(engines)-1] != device.EngineMemcpy {
		t.Errorf("memcpy should close the list: %v", engines)
	}
	// Every listed engine must actually run.
	_, r := newRunner(t)
	for _, e := range engines {
		j := Job{Name: "probe", Engine: e, Node: 6, Size: small}
		if e == device.EngineMemcpy {
			j.SrcNode, j.DstNode = nid(0), nid(7)
		}
		if _, err := r.Run([]Job{j}); err != nil {
			t.Errorf("engine %s failed: %v", e, err)
		}
	}
}
