package fio

import (
	"fmt"
	"io"
	"net"
	"runtime"
	"sync"
	"time"

	"numaio/internal/units"
)

// Native engines exercise real Go memory and network paths end-to-end. In
// this environment there is no multi-node NUMA hardware and the Go runtime
// cannot pin OS threads to cores, so the natives cannot reproduce the
// paper's NUMA effects — they validate that the benchmark harness logic
// (parallel streams, block-sized I/O, bandwidth accounting) is faithful,
// per the substitution notes in DESIGN.md.

// NativeMemcpyResult reports a native memory-copy run.
type NativeMemcpyResult struct {
	Threads   int
	Bytes     units.Size
	Elapsed   time.Duration
	Bandwidth units.Bandwidth
}

// NativeMemcpy copies total bytes between real heap buffers using the given
// number of goroutines, block by block, and reports the achieved rate. It
// is the native twin of the paper's iomodel memcpy loop (Algorithm 1's
// inner copy).
func NativeMemcpy(total, blockSize units.Size, threads int) (*NativeMemcpyResult, error) {
	if total <= 0 || blockSize <= 0 {
		return nil, fmt.Errorf("fio: native memcpy: sizes must be positive")
	}
	if threads <= 0 {
		threads = runtime.NumCPU()
	}
	if blockSize > total {
		blockSize = total
	}
	perThread := int64(total) / int64(threads)
	if perThread < int64(blockSize) {
		perThread = int64(blockSize)
	}

	start := time.Now()
	var wg sync.WaitGroup
	var moved int64 = int64(perThread) * int64(threads)
	for t := 0; t < threads; t++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			src := make([]byte, blockSize)
			dst := make([]byte, blockSize)
			for i := range src {
				src[i] = byte(i)
			}
			var done int64
			for done < perThread {
				copy(dst, src)
				done += int64(blockSize)
			}
			// Keep dst alive so the copy is not elided.
			runtime.KeepAlive(dst)
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	if elapsed <= 0 {
		elapsed = time.Nanosecond
	}
	return &NativeMemcpyResult{
		Threads:   threads,
		Bytes:     units.Size(moved),
		Elapsed:   elapsed,
		Bandwidth: units.Bandwidth(float64(moved) * 8 / elapsed.Seconds()),
	}, nil
}

// NativeTCPResult reports a native loopback TCP run.
type NativeTCPResult struct {
	Streams   int
	Bytes     units.Size
	Elapsed   time.Duration
	Bandwidth units.Bandwidth
}

// NativeTCP moves total bytes per stream over loopback TCP connections with
// the given block size and reports the aggregate rate — the native twin of
// the tcp_send engine.
func NativeTCP(totalPerStream, blockSize units.Size, streams int) (*NativeTCPResult, error) {
	if totalPerStream <= 0 || blockSize <= 0 {
		return nil, fmt.Errorf("fio: native tcp: sizes must be positive")
	}
	if streams <= 0 {
		streams = 1
	}
	if blockSize > totalPerStream {
		blockSize = totalPerStream
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("fio: native tcp: %w", err)
	}
	defer ln.Close()

	errc := make(chan error, 2*streams)
	var recvWG sync.WaitGroup
	recvWG.Add(streams)
	go func() {
		for i := 0; i < streams; i++ {
			conn, err := ln.Accept()
			if err != nil {
				errc <- err
				recvWG.Done()
				continue
			}
			go func(c net.Conn) {
				defer recvWG.Done()
				defer c.Close()
				if _, err := io.Copy(io.Discard, c); err != nil {
					errc <- err
				}
			}(conn)
		}
	}()

	start := time.Now()
	var sendWG sync.WaitGroup
	for i := 0; i < streams; i++ {
		sendWG.Add(1)
		go func() {
			defer sendWG.Done()
			conn, err := net.Dial("tcp", ln.Addr().String())
			if err != nil {
				errc <- err
				return
			}
			defer conn.Close()
			buf := make([]byte, blockSize)
			var sent int64
			for sent < int64(totalPerStream) {
				n := int64(blockSize)
				if rem := int64(totalPerStream) - sent; rem < n {
					n = rem
				}
				if _, err := conn.Write(buf[:n]); err != nil {
					errc <- err
					return
				}
				sent += n
			}
		}()
	}
	sendWG.Wait()
	recvWG.Wait()
	elapsed := time.Since(start)
	select {
	case err := <-errc:
		return nil, fmt.Errorf("fio: native tcp: %w", err)
	default:
	}
	if elapsed <= 0 {
		elapsed = time.Nanosecond
	}
	total := int64(totalPerStream) * int64(streams)
	return &NativeTCPResult{
		Streams:   streams,
		Bytes:     units.Size(total),
		Elapsed:   elapsed,
		Bandwidth: units.Bandwidth(float64(total) * 8 / elapsed.Seconds()),
	}, nil
}
