// Package calibrate solves the inverse problem behind docs/CALIBRATION.md:
// given a measured iomodel of a real host (per-node memcpy bandwidths in
// both directions, e.g. produced by running the paper's Algorithm 1 on
// actual hardware), fit a simulated machine's directed link capacities so
// its emergent model matches. The fitted machine can then drive everything
// the repository offers offline: what-if analysis, scheduling, Eq. 1
// predictions.
//
// The fit is iterative proportional scaling: each round re-characterizes
// the candidate machine, finds every node whose modelled bandwidth misses
// its target, and nudges the bottleneck capacity along that node's route
// toward the target (damped to keep shared links stable).
package calibrate

import (
	"fmt"
	"math"

	"numaio/internal/core"
	"numaio/internal/numa"
	"numaio/internal/topology"
	"numaio/internal/units"
)

// Options tunes the fit.
type Options struct {
	// MaxIterations bounds the outer loop; 0 means 60.
	MaxIterations int
	// Tolerance is the target maximum relative error; 0 means 0.01.
	Tolerance float64
	// Damping softens each capacity update (scale^Damping); 0 means 0.6.
	Damping float64
}

func (o Options) withDefaults() Options {
	if o.MaxIterations == 0 {
		o.MaxIterations = 60
	}
	if o.Tolerance == 0 {
		o.Tolerance = 0.01
	}
	if o.Damping == 0 {
		o.Damping = 0.6
	}
	return o
}

// Report describes the fit outcome.
type Report struct {
	Iterations int
	MaxRelErr  float64
	Converged  bool
}

// Fit clones base and adjusts its capacities until the memcpy models of the
// target node match the given write and read samples. The base machine must
// share the target's routing structure (same vertices and links); the usual
// starting point is the vendor wiring with uniform capacities.
func Fit(base *topology.Machine, target topology.NodeID, write, read []core.Sample, opts Options) (*topology.Machine, *Report, error) {
	opts = opts.withDefaults()
	if _, ok := base.Node(target); !ok {
		return nil, nil, fmt.Errorf("calibrate: unknown target node %d", int(target))
	}
	wantWrite, err := sampleMap(write)
	if err != nil {
		return nil, nil, fmt.Errorf("calibrate: write samples: %w", err)
	}
	wantRead, err := sampleMap(read)
	if err != nil {
		return nil, nil, fmt.Errorf("calibrate: read samples: %w", err)
	}

	m := base.Clone()
	rep := &Report{}
	for iter := 0; iter < opts.MaxIterations; iter++ {
		rep.Iterations = iter + 1
		maxErr, err := fitRound(m, target, wantWrite, wantRead, opts.Damping)
		if err != nil {
			return nil, nil, err
		}
		rep.MaxRelErr = maxErr
		if maxErr <= opts.Tolerance {
			rep.Converged = true
			break
		}
	}
	if err := m.Validate(); err != nil {
		return nil, nil, fmt.Errorf("calibrate: fitted machine invalid: %w", err)
	}
	return m, rep, nil
}

func sampleMap(samples []core.Sample) (map[topology.NodeID]units.Bandwidth, error) {
	if len(samples) == 0 {
		return nil, fmt.Errorf("no samples")
	}
	out := make(map[topology.NodeID]units.Bandwidth, len(samples))
	for _, s := range samples {
		if s.Bandwidth <= 0 {
			return nil, fmt.Errorf("nonpositive bandwidth for node %d", int(s.Node))
		}
		if _, dup := out[s.Node]; dup {
			return nil, fmt.Errorf("duplicate sample for node %d", int(s.Node))
		}
		out[s.Node] = s.Bandwidth
	}
	return out, nil
}

// fitRound runs one characterize-and-adjust pass and returns the maximum
// relative error seen before the adjustments.
func fitRound(m *topology.Machine, target topology.NodeID,
	wantWrite, wantRead map[topology.NodeID]units.Bandwidth, damping float64) (float64, error) {

	sys, err := numa.NewSystem(m)
	if err != nil {
		return 0, err
	}
	c, err := core.NewCharacterizer(sys, core.Config{Sigma: -1, Repeats: 1, BytesPerThread: units.GiB})
	if err != nil {
		return 0, err
	}
	writeModel, err := c.Characterize(target, core.ModeWrite)
	if err != nil {
		return 0, err
	}
	readModel, err := c.Characterize(target, core.ModeRead)
	if err != nil {
		return 0, err
	}

	maxErr := 0.0
	adjust := func(model *core.Model, want map[topology.NodeID]units.Bandwidth, toTarget bool) error {
		for node, target_bw := range want {
			got, err := model.SampleOf(node)
			if err != nil {
				return err
			}
			rel := math.Abs(float64(got-target_bw)) / float64(target_bw)
			if rel > maxErr {
				maxErr = rel
			}
			if rel < 1e-4 {
				continue
			}
			scale := math.Pow(float64(target_bw)/float64(got), damping)
			if node == target {
				// Local copy: bounded by half the controller.
				n := m.MustNode(node)
				updateMem(m, node, units.Bandwidth(float64(n.MemBandwidth)*scale))
				continue
			}
			src, dst := node, target
			if !toTarget {
				src, dst = target, node
			}
			route, err := m.RouteNodes(src, dst)
			if err != nil {
				return err
			}
			// Adjust a link along the route unless the memory controllers
			// bound the copy instead. Raising targets the bottleneck;
			// lowering targets the node's own first/last hop, which no
			// other node's traffic shares — that keeps shared interior
			// links from being pulled in two directions at once.
			pathCap := m.PathCapacity(route)
			srcMem := m.MustNode(src).MemBandwidth
			dstMem := m.MustNode(dst).MemBandwidth
			if pathCap <= srcMem && pathCap <= dstMem {
				var li int
				switch {
				case scale >= 1:
					li = bottleneckLink(m, route)
				case toTarget:
					li = route[0] // the varying node's egress port
				default:
					li = route[len(route)-1] // the varying node's ingress port
				}
				if err := m.SetLinkCapacity(li, units.Bandwidth(float64(m.Link(li).Capacity)*scale)); err != nil {
					return err
				}
				continue
			}
			// A controller binds: grow the smaller one.
			if srcMem < dstMem {
				updateMem(m, src, units.Bandwidth(float64(srcMem)*scale))
			} else {
				updateMem(m, dst, units.Bandwidth(float64(dstMem)*scale))
			}
		}
		return nil
	}
	if err := adjust(writeModel, wantWrite, true); err != nil {
		return 0, err
	}
	if err := adjust(readModel, wantRead, false); err != nil {
		return 0, err
	}
	return maxErr, nil
}

// bottleneckLink returns the route's smallest-capacity link index.
func bottleneckLink(m *topology.Machine, route []int) int {
	best := route[0]
	for _, li := range route[1:] {
		if m.Link(li).Capacity < m.Link(best).Capacity {
			best = li
		}
	}
	return best
}

// updateMem sets a node's memory-controller capacity in place.
func updateMem(m *topology.Machine, id topology.NodeID, bw units.Bandwidth) {
	for i := range m.Nodes {
		if m.Nodes[i].ID == id {
			if bw > 0 {
				m.Nodes[i].MemBandwidth = bw
			}
			return
		}
	}
}
