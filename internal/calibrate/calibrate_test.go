package calibrate

import (
	"reflect"
	"testing"

	"numaio/internal/core"
	"numaio/internal/numa"
	"numaio/internal/topology"
	"numaio/internal/units"
)

// modelsOf characterizes node 7 of a machine in both directions.
func modelsOf(t *testing.T, m *topology.Machine) (*core.Model, *core.Model) {
	t.Helper()
	sys, err := numa.NewSystem(m)
	if err != nil {
		t.Fatal(err)
	}
	c, err := core.NewCharacterizer(sys, core.Config{Sigma: -1, Repeats: 1, BytesPerThread: units.GiB})
	if err != nil {
		t.Fatal(err)
	}
	w, err := c.Characterize(7, core.ModeWrite)
	if err != nil {
		t.Fatal(err)
	}
	r, err := c.Characterize(7, core.ModeRead)
	if err != nil {
		t.Fatal(err)
	}
	return w, r
}

// The well-posed inverse problem: perturb several directed capacities of
// the testbed, then fit the perturbed machine back to the true model. The
// fit must converge and recover the class structure.
func TestFitRecoversPerturbedMachine(t *testing.T) {
	truth := topology.DL585G7()
	wantWrite, wantRead := modelsOf(t, truth)

	perturbed := truth.Clone()
	for i, factor := range map[int]float64{
		perturbed.FindLink("node0", "node7"): 0.7,
		perturbed.FindLink("node7", "node4"): 1.3,
		perturbed.FindLink("node2", "node7"): 1.25,
		perturbed.FindLink("node7", "node2"): 0.8,
		perturbed.FindLink("node6", "node7"): 0.85,
	} {
		if i < 0 {
			t.Fatal("missing link")
		}
		if err := perturbed.ScaleLink(i, factor); err != nil {
			t.Fatal(err)
		}
	}

	fitted, rep, err := Fit(perturbed, 7, wantWrite.Samples, wantRead.Samples, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Converged {
		t.Fatalf("fit did not converge: %+v", rep)
	}
	if rep.MaxRelErr > 0.011 {
		t.Errorf("residual error %.3f", rep.MaxRelErr)
	}

	// The fitted machine reproduces the class memberships of the truth.
	gotWrite, gotRead := modelsOf(t, fitted)
	for i := range wantWrite.Classes {
		if !reflect.DeepEqual(gotWrite.Classes[i].Nodes, wantWrite.Classes[i].Nodes) {
			t.Errorf("write class %d = %v, want %v",
				i+1, gotWrite.Classes[i].Nodes, wantWrite.Classes[i].Nodes)
		}
	}
	for i := range wantRead.Classes {
		if !reflect.DeepEqual(gotRead.Classes[i].Nodes, wantRead.Classes[i].Nodes) {
			t.Errorf("read class %d = %v, want %v",
				i+1, gotRead.Classes[i].Nodes, wantRead.Classes[i].Nodes)
		}
	}
	// The original perturbed machine is untouched.
	if perturbed.Link(perturbed.FindLink("node0", "node7")).Capacity ==
		fitted.Link(fitted.FindLink("node0", "node7")).Capacity {
		t.Error("fit should not mutate its input")
	}
}

// Fitting from the uniform vendor wiring toward the calibrated testbed:
// the big class gaps must be reproduced even if exact convergence is not
// reached (the uniform machine routes differently).
func TestFitFromUniformWiring(t *testing.T) {
	truth := topology.DL585G7()
	wantWrite, wantRead := modelsOf(t, truth)

	base := topology.MagnyCours4P(topology.VariantA)
	fitted, rep, err := Fit(base, 7, wantWrite.Samples, wantRead.Samples,
		Options{MaxIterations: 120, Tolerance: 0.03})
	if err != nil {
		t.Fatal(err)
	}
	if rep.MaxRelErr > 0.25 {
		t.Fatalf("fit diverged: %+v", rep)
	}
	gotWrite, _ := modelsOf(t, fitted)
	// The starved write class {2,3} must emerge on the fitted machine.
	c2, err := gotWrite.ClassOf(2)
	if err != nil {
		t.Fatal(err)
	}
	c3, err := gotWrite.ClassOf(3)
	if err != nil {
		t.Fatal(err)
	}
	if c2.Rank != gotWrite.NumClasses() || c3.Rank != gotWrite.NumClasses() {
		t.Errorf("nodes 2,3 should land in the bottom write class: %+v", gotWrite.Classes)
	}
}

func TestFitValidation(t *testing.T) {
	truth := topology.DL585G7()
	w, r := modelsOf(t, truth)
	if _, _, err := Fit(truth, 42, w.Samples, r.Samples, Options{}); err == nil {
		t.Error("unknown target should fail")
	}
	if _, _, err := Fit(truth, 7, nil, r.Samples, Options{}); err == nil {
		t.Error("missing write samples should fail")
	}
	bad := []core.Sample{{Node: 0, Bandwidth: 0}}
	if _, _, err := Fit(truth, 7, bad, r.Samples, Options{}); err == nil {
		t.Error("nonpositive sample should fail")
	}
	dup := []core.Sample{{Node: 0, Bandwidth: 1}, {Node: 0, Bandwidth: 1}}
	if _, _, err := Fit(truth, 7, dup, r.Samples, Options{}); err == nil {
		t.Error("duplicate sample should fail")
	}
}

// Fitting a machine to its own model converges immediately.
func TestFitIdentity(t *testing.T) {
	truth := topology.DL585G7()
	w, r := modelsOf(t, truth)
	_, rep, err := Fit(truth, 7, w.Samples, r.Samples, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Converged || rep.Iterations != 1 {
		t.Errorf("identity fit should converge in one round: %+v", rep)
	}
}

// A perturbed memory controller (the local sample) is fitted back through
// the controller path, not the links.
func TestFitRecoversMemoryController(t *testing.T) {
	truth := topology.DL585G7()
	wantWrite, wantRead := modelsOf(t, truth)

	perturbed := truth.Clone()
	for i := range perturbed.Nodes {
		if perturbed.Nodes[i].ID == 7 {
			perturbed.Nodes[i].MemBandwidth = units.Bandwidth(0.7 * float64(perturbed.Nodes[i].MemBandwidth))
		}
	}
	fitted, rep, err := Fit(perturbed, 7, wantWrite.Samples, wantRead.Samples, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Converged {
		t.Fatalf("fit did not converge: %+v", rep)
	}
	got := fitted.MustNode(7).MemBandwidth.Gbps()
	want := truth.MustNode(7).MemBandwidth.Gbps()
	if got < want*0.98 || got > want*1.02 {
		t.Errorf("fitted controller = %.1f, want ~%.1f", got, want)
	}
}
