// Package resilience holds the small fault-tolerance primitives the
// characterization pipeline and the numaiod daemon share: a clock
// abstraction (so retry backoff and circuit-breaker cooldowns are testable
// without real sleeps), a deterministic exponential-backoff retry policy,
// transient-error marking, and a closed/open/half-open circuit breaker.
//
// Everything here is deliberately deterministic: Delay carries no random
// jitter, so a chaos characterization retried under a seeded fault plan
// (internal/faults) reproduces bit for bit. See docs/RESILIENCE.md.
package resilience

import (
	"context"
	"errors"
	"sync"
	"time"
)

// Clock abstracts time for retry backoff, breaker cooldowns and
// per-measurement timeouts. Production code uses SystemClock; tests use
// FakeClock and never sleep.
type Clock interface {
	Now() time.Time
	After(d time.Duration) <-chan time.Time
}

// SystemClock is the real time.Now/time.After clock.
type SystemClock struct{}

// Now returns the wall-clock time.
func (SystemClock) Now() time.Time { return time.Now() }

// After waits on the real timer.
func (SystemClock) After(d time.Duration) <-chan time.Time { return time.After(d) }

// FakeClock is a manually advanced clock for tests. With AutoAdvance set,
// every After call advances the clock by the requested duration and returns
// an already-fired channel, so code that sleeps between retries runs
// instantly while still recording how long it would have waited.
type FakeClock struct {
	mu      sync.Mutex
	now     time.Time
	auto    bool
	waiters []fakeWaiter
}

type fakeWaiter struct {
	at time.Time
	ch chan time.Time
}

// NewFakeClock returns a fake clock starting at start.
func NewFakeClock(start time.Time) *FakeClock {
	return &FakeClock{now: start}
}

// NewAutoClock returns a fake clock that auto-advances on every After call.
func NewAutoClock(start time.Time) *FakeClock {
	return &FakeClock{now: start, auto: true}
}

// Now returns the fake time.
func (c *FakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// After returns a channel that fires once the clock is advanced past d.
func (c *FakeClock) After(d time.Duration) <-chan time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	ch := make(chan time.Time, 1)
	if c.auto || d <= 0 {
		c.now = c.now.Add(d)
		ch <- c.now
		return ch
	}
	c.waiters = append(c.waiters, fakeWaiter{at: c.now.Add(d), ch: ch})
	return ch
}

// Advance moves the clock forward, firing every waiter whose deadline has
// passed.
func (c *FakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.now = c.now.Add(d)
	kept := c.waiters[:0]
	for _, w := range c.waiters {
		if !w.at.After(c.now) {
			w.ch <- c.now
		} else {
			kept = append(kept, w)
		}
	}
	c.waiters = kept
}

// orSystem substitutes the system clock for nil.
func orSystem(c Clock) Clock {
	if c == nil {
		return SystemClock{}
	}
	return c
}

// transientError marks an error as retryable.
type transientError struct{ err error }

func (e *transientError) Error() string { return e.err.Error() }
func (e *transientError) Unwrap() error { return e.err }

// MarkTransient wraps err so IsTransient reports it as retryable. A nil err
// stays nil.
func MarkTransient(err error) error {
	if err == nil {
		return nil
	}
	return &transientError{err: err}
}

// IsTransient reports whether err (or anything it wraps) was marked
// transient with MarkTransient.
func IsTransient(err error) bool {
	var t *transientError
	return errors.As(err, &t)
}

// RetryPolicy is a deterministic exponential backoff: attempt n (0-based)
// waits Base * Multiplier^n, capped at Cap. No jitter — chaos runs must
// reproduce.
type RetryPolicy struct {
	// MaxRetries is the number of retry attempts after the first try; 0
	// disables retries.
	MaxRetries int
	// Base is the delay before the first retry; 0 means no waiting.
	Base time.Duration
	// Cap bounds the grown delay; 0 means 64 * Base.
	Cap time.Duration
	// Multiplier is the per-attempt growth factor; values < 1 mean 2.
	Multiplier float64
}

// Delay returns the backoff before retry attempt (0-based: the delay after
// the first failure is Delay(0)).
func (p RetryPolicy) Delay(attempt int) time.Duration {
	if p.Base <= 0 {
		return 0
	}
	mult := p.Multiplier
	if mult < 1 {
		mult = 2
	}
	limit := p.Cap
	if limit <= 0 {
		limit = 64 * p.Base
	}
	d := float64(p.Base)
	for i := 0; i < attempt; i++ {
		d *= mult
		if d >= float64(limit) {
			return limit
		}
	}
	if d > float64(limit) {
		return limit
	}
	return time.Duration(d)
}

// Retry runs fn until it succeeds, returns a non-transient error, or
// exhausts the policy. fn receives the 0-based attempt number. Between
// attempts Retry sleeps the policy delay on the clock, aborting early if
// ctx is done (the last observed error is returned in that case).
func Retry(ctx context.Context, clock Clock, p RetryPolicy, fn func(attempt int) error) error {
	clock = orSystem(clock)
	var err error
	for attempt := 0; ; attempt++ {
		err = fn(attempt)
		if err == nil || attempt >= p.MaxRetries || !IsTransient(err) {
			return err
		}
		if d := p.Delay(attempt); d > 0 {
			select {
			case <-clock.After(d):
			case <-ctx.Done():
				return err
			}
		} else if ctx.Err() != nil {
			return err
		}
	}
}

// ContextWithTimeout derives a context that is cancelled with
// context.DeadlineExceeded as its cause once d elapses on the clock. With
// the system clock this is exactly context.WithTimeout; with a fake clock
// the deadline fires when the test advances time, so timeout paths run
// without real waiting. Use context.Cause to classify the expiry.
func ContextWithTimeout(parent context.Context, clock Clock, d time.Duration) (context.Context, context.CancelFunc) {
	clock = orSystem(clock)
	if _, ok := clock.(SystemClock); ok {
		return context.WithTimeout(parent, d)
	}
	ctx, cancel := context.WithCancelCause(parent)
	timer := clock.After(d)
	go func() {
		select {
		case <-timer:
			cancel(context.DeadlineExceeded)
		case <-ctx.Done():
		}
	}()
	return ctx, func() { cancel(context.Canceled) }
}

// BreakerState is a circuit breaker's position.
type BreakerState int

// Breaker states.
const (
	// BreakerClosed admits every call.
	BreakerClosed BreakerState = iota
	// BreakerOpen rejects calls until the cooldown elapses.
	BreakerOpen
	// BreakerHalfOpen admits a single probe call.
	BreakerHalfOpen
)

func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	default:
		return "unknown"
	}
}

// Breaker is a circuit breaker: after Threshold consecutive failures it
// opens and rejects calls; once the cooldown elapses it half-opens and
// admits one probe, whose outcome either closes it or re-opens it for
// another cooldown.
type Breaker struct {
	mu        sync.Mutex
	threshold int
	cooldown  time.Duration
	clock     Clock
	state     BreakerState
	failures  int
	openedAt  time.Time
	probing   bool
	onChange  func(from, to BreakerState)
}

// SetTransitionHook installs fn to be called on every state change
// (telemetry taps breaker transitions onto the active trace). fn runs with
// the breaker's lock held, so it must not call back into the breaker; nil
// clears the hook.
func (b *Breaker) SetTransitionHook(fn func(from, to BreakerState)) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.onChange = fn
}

// setState moves the breaker to state to, firing the transition hook on an
// actual change. Callers hold b.mu.
func (b *Breaker) setState(to BreakerState) {
	from := b.state
	b.state = to
	if from != to && b.onChange != nil {
		b.onChange(from, to)
	}
}

// NewBreaker builds a breaker tripping after threshold consecutive
// failures and cooling down for cooldown before a probe. threshold < 1
// means 5; cooldown <= 0 means 30s; a nil clock means the system clock.
func NewBreaker(threshold int, cooldown time.Duration, clock Clock) *Breaker {
	if threshold < 1 {
		threshold = 5
	}
	if cooldown <= 0 {
		cooldown = 30 * time.Second
	}
	return &Breaker{threshold: threshold, cooldown: cooldown, clock: orSystem(clock)}
}

// Allow reports whether a call may proceed, transitioning open breakers to
// half-open when their cooldown has elapsed. In half-open state only one
// probe is admitted until its Success or Failure is recorded.
func (b *Breaker) Allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		return true
	case BreakerOpen:
		if b.clock.Now().Sub(b.openedAt) < b.cooldown {
			return false
		}
		b.setState(BreakerHalfOpen)
		b.probing = true
		return true
	case BreakerHalfOpen:
		if b.probing {
			return false
		}
		b.probing = true
		return true
	}
	return false
}

// Success records a successful call, closing the breaker.
func (b *Breaker) Success() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.setState(BreakerClosed)
	b.failures = 0
	b.probing = false
}

// Failure records a failed call: in closed state it counts toward the
// threshold; in half-open state it re-opens immediately.
func (b *Breaker) Failure() {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerHalfOpen:
		b.open()
	case BreakerClosed:
		b.failures++
		if b.failures >= b.threshold {
			b.open()
		}
	}
}

func (b *Breaker) open() {
	b.setState(BreakerOpen)
	b.openedAt = b.clock.Now()
	b.failures = 0
	b.probing = false
}

// State returns the breaker's current position (open breakers whose
// cooldown has elapsed still report open until the next Allow).
func (b *Breaker) State() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}
