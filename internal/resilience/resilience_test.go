package resilience

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestRetryPolicyDelay(t *testing.T) {
	cases := []struct {
		name    string
		policy  RetryPolicy
		attempt int
		want    time.Duration
	}{
		{"no base means no wait", RetryPolicy{MaxRetries: 3}, 0, 0},
		{"first retry waits base", RetryPolicy{Base: time.Millisecond}, 0, time.Millisecond},
		{"doubles by default", RetryPolicy{Base: time.Millisecond}, 1, 2 * time.Millisecond},
		{"third attempt quadruples", RetryPolicy{Base: time.Millisecond}, 2, 4 * time.Millisecond},
		{"capped at Cap", RetryPolicy{Base: time.Millisecond, Cap: 3 * time.Millisecond}, 5, 3 * time.Millisecond},
		{"default cap is 64x base", RetryPolicy{Base: time.Millisecond}, 20, 64 * time.Millisecond},
		{"custom multiplier", RetryPolicy{Base: time.Millisecond, Multiplier: 10, Cap: time.Second}, 2, 100 * time.Millisecond},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := tc.policy.Delay(tc.attempt); got != tc.want {
				t.Fatalf("Delay(%d) = %v, want %v", tc.attempt, got, tc.want)
			}
		})
	}
}

func TestRetry(t *testing.T) {
	transient := MarkTransient(errors.New("flaky"))
	permanent := errors.New("permanent")
	cases := []struct {
		name      string
		policy    RetryPolicy
		failures  int   // calls that fail before success
		failWith  error // error returned by failing calls
		wantCalls int
		wantErr   error
	}{
		{"immediate success", RetryPolicy{MaxRetries: 3}, 0, nil, 1, nil},
		{"recovers within budget", RetryPolicy{MaxRetries: 3, Base: time.Millisecond}, 2, transient, 3, nil},
		{"exhausts budget", RetryPolicy{MaxRetries: 2, Base: time.Millisecond}, 5, transient, 3, transient},
		{"permanent error stops retries", RetryPolicy{MaxRetries: 3, Base: time.Millisecond}, 5, permanent, 1, permanent},
		{"zero retries", RetryPolicy{}, 1, transient, 1, transient},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			clock := NewAutoClock(time.Unix(0, 0))
			calls := 0
			err := Retry(context.Background(), clock, tc.policy, func(attempt int) error {
				if attempt != calls {
					t.Fatalf("attempt %d on call %d", attempt, calls)
				}
				calls++
				if calls <= tc.failures {
					return tc.failWith
				}
				return nil
			})
			if calls != tc.wantCalls {
				t.Fatalf("fn called %d times, want %d", calls, tc.wantCalls)
			}
			if !errors.Is(err, tc.wantErr) {
				t.Fatalf("Retry = %v, want %v", err, tc.wantErr)
			}
		})
	}
}

func TestRetryBacksOffOnClock(t *testing.T) {
	clock := NewAutoClock(time.Unix(0, 0))
	start := clock.Now()
	err := Retry(context.Background(), clock, RetryPolicy{MaxRetries: 3, Base: time.Second}, func(int) error {
		return MarkTransient(errors.New("flaky"))
	})
	if err == nil {
		t.Fatal("want error after exhausting retries")
	}
	// Delays are 1s + 2s + 4s, all taken on the fake clock.
	if got, want := clock.Now().Sub(start), 7*time.Second; got != want {
		t.Fatalf("slept %v on the clock, want %v", got, want)
	}
}

func TestRetryHonoursContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	clock := NewFakeClock(time.Unix(0, 0)) // no auto-advance: a real wait would hang
	calls := 0
	err := Retry(ctx, clock, RetryPolicy{MaxRetries: 5, Base: time.Second}, func(int) error {
		calls++
		return MarkTransient(errors.New("flaky"))
	})
	if calls != 1 {
		t.Fatalf("fn called %d times under cancelled ctx, want 1", calls)
	}
	if !IsTransient(err) {
		t.Fatalf("want last transient error back, got %v", err)
	}
}

func TestTransientMarking(t *testing.T) {
	base := errors.New("boom")
	if IsTransient(base) {
		t.Fatal("unmarked error reported transient")
	}
	marked := MarkTransient(base)
	if !IsTransient(marked) {
		t.Fatal("marked error not reported transient")
	}
	wrapped := fmt.Errorf("outer: %w", marked)
	if !IsTransient(wrapped) {
		t.Fatal("wrapping lost the transient mark")
	}
	if !errors.Is(wrapped, base) {
		t.Fatal("marking broke errors.Is")
	}
	if MarkTransient(nil) != nil {
		t.Fatal("MarkTransient(nil) must stay nil")
	}
}

func TestBreakerStateMachine(t *testing.T) {
	type step struct {
		op        string // "fail", "ok", "allow", "deny"
		wantState BreakerState
		advance   time.Duration
	}
	cases := []struct {
		name  string
		steps []step
	}{
		{"stays closed under sparse failures", []step{
			{op: "fail", wantState: BreakerClosed},
			{op: "ok", wantState: BreakerClosed},
			{op: "fail", wantState: BreakerClosed},
			{op: "allow", wantState: BreakerClosed},
		}},
		{"opens at threshold and rejects", []step{
			{op: "fail", wantState: BreakerClosed},
			{op: "fail", wantState: BreakerOpen},
			{op: "deny", wantState: BreakerOpen},
		}},
		{"half-opens after cooldown, probe success closes", []step{
			{op: "fail", wantState: BreakerClosed},
			{op: "fail", wantState: BreakerOpen},
			{op: "deny", wantState: BreakerOpen, advance: 5 * time.Second},
			{op: "allow", wantState: BreakerHalfOpen, advance: 6 * time.Second},
			{op: "deny", wantState: BreakerHalfOpen}, // single probe only
			{op: "ok", wantState: BreakerClosed},
			{op: "allow", wantState: BreakerClosed},
		}},
		{"probe failure re-opens", []step{
			{op: "fail", wantState: BreakerClosed},
			{op: "fail", wantState: BreakerOpen},
			{op: "allow", wantState: BreakerHalfOpen, advance: 11 * time.Second},
			{op: "fail", wantState: BreakerOpen},
			{op: "deny", wantState: BreakerOpen},
			{op: "allow", wantState: BreakerHalfOpen, advance: 11 * time.Second},
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			clock := NewFakeClock(time.Unix(0, 0))
			b := NewBreaker(2, 10*time.Second, clock)
			for i, s := range tc.steps {
				clock.Advance(s.advance)
				switch s.op {
				case "fail":
					b.Failure()
				case "ok":
					b.Success()
				case "allow":
					if !b.Allow() {
						t.Fatalf("step %d: Allow() = false, want true", i)
					}
				case "deny":
					if b.Allow() {
						t.Fatalf("step %d: Allow() = true, want false", i)
					}
				}
				if got := b.State(); got != s.wantState {
					t.Fatalf("step %d (%s): state %v, want %v", i, s.op, got, s.wantState)
				}
			}
		})
	}
}

func TestBreakerConcurrentProbe(t *testing.T) {
	clock := NewFakeClock(time.Unix(0, 0))
	b := NewBreaker(1, time.Second, clock)
	b.Failure()
	clock.Advance(2 * time.Second)
	var admitted int64
	var mu sync.Mutex
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if b.Allow() {
				mu.Lock()
				admitted++
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	if admitted != 1 {
		t.Fatalf("half-open breaker admitted %d probes, want exactly 1", admitted)
	}
}

func TestContextWithTimeoutFakeClock(t *testing.T) {
	clock := NewFakeClock(time.Unix(0, 0))
	ctx, cancel := ContextWithTimeout(context.Background(), clock, time.Second)
	defer cancel()
	select {
	case <-ctx.Done():
		t.Fatal("context done before the clock advanced")
	default:
	}
	clock.Advance(2 * time.Second)
	select {
	case <-ctx.Done():
	case <-time.After(5 * time.Second):
		t.Fatal("context never expired after clock advance")
	}
	if cause := context.Cause(ctx); !errors.Is(cause, context.DeadlineExceeded) {
		t.Fatalf("cause = %v, want DeadlineExceeded", cause)
	}
}

func TestFakeClockAdvanceFiresDueWaiters(t *testing.T) {
	clock := NewFakeClock(time.Unix(0, 0))
	early := clock.After(time.Second)
	late := clock.After(time.Minute)
	clock.Advance(2 * time.Second)
	select {
	case <-early:
	default:
		t.Fatal("1s waiter did not fire after 2s advance")
	}
	select {
	case <-late:
		t.Fatal("1m waiter fired after only 2s")
	default:
	}
}
