package telemetry

import (
	"encoding/json"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

func flightEvent(i int) FlightEvent {
	return FlightEvent{
		Time:   int64(1000 + i),
		Dur:    time.Duration(i) * time.Microsecond,
		Status: 200,
		Name:   fmt.Sprintf("/v1/predict#%d", i),
		Cat:    "http",
		RID:    fmt.Sprintf("rid-%d", i),
	}
}

// TestFlightRecorderWraparound pins the ring behavior at the exact
// capacity boundaries: capacity-1, capacity, capacity+1 and a full
// second lap.
func TestFlightRecorderWraparound(t *testing.T) {
	const capacity = 8
	cases := []struct {
		records     int
		wantLen     int
		wantDropped uint64
		wantFirst   int // index of the oldest surviving event
	}{
		{records: capacity - 1, wantLen: capacity - 1, wantDropped: 0, wantFirst: 0},
		{records: capacity, wantLen: capacity, wantDropped: 0, wantFirst: 0},
		{records: capacity + 1, wantLen: capacity, wantDropped: 1, wantFirst: 1},
		{records: 2 * capacity, wantLen: capacity, wantDropped: capacity, wantFirst: capacity},
		{records: 2*capacity + 1, wantLen: capacity, wantDropped: capacity + 1, wantFirst: capacity + 1},
	}
	for _, tc := range cases {
		r := NewFlightRecorder(capacity)
		for i := 0; i < tc.records; i++ {
			r.Record(flightEvent(i))
		}
		events, dropped := r.Snapshot()
		if len(events) != tc.wantLen || r.Len() != tc.wantLen {
			t.Errorf("%d records: len = %d (Len %d), want %d", tc.records, len(events), r.Len(), tc.wantLen)
		}
		if dropped != tc.wantDropped {
			t.Errorf("%d records: dropped = %d, want %d", tc.records, dropped, tc.wantDropped)
		}
		if r.Total() != uint64(tc.records) {
			t.Errorf("%d records: total = %d", tc.records, r.Total())
		}
		for i, e := range events {
			if want := flightEvent(tc.wantFirst + i).Name; e.Name != want {
				t.Errorf("%d records: event %d = %q, want %q", tc.records, i, e.Name, want)
			}
		}
	}
}

// TestFlightRecorderNil checks the nil recorder honors the no-op contract
// instrumented code relies on.
func TestFlightRecorderNil(t *testing.T) {
	var r *FlightRecorder
	r.Record(flightEvent(0))
	if r.Len() != 0 || r.Cap() != 0 || r.Total() != 0 {
		t.Fatal("nil recorder reports non-zero sizes")
	}
	events, dropped := r.Snapshot()
	if events != nil || dropped != 0 {
		t.Fatal("nil recorder returned a snapshot")
	}
	if err := r.WriteJSON(&strings.Builder{}); err != nil {
		t.Fatalf("nil WriteJSON: %v", err)
	}
}

// TestFlightRecorderJSON checks the dump shape: valid JSON, oldest-first,
// optional fields omitted when empty.
func TestFlightRecorderJSON(t *testing.T) {
	r := NewFlightRecorder(4)
	r.Record(FlightEvent{Time: 1, Name: "a", Cat: "http", Status: 200, RID: "rid-1", TraceID: "0123", Dur: 1500 * time.Nanosecond})
	r.Record(FlightEvent{Time: 2, Name: "b", Cat: "breaker", Detail: "open"})
	var sb strings.Builder
	if err := r.WriteJSON(&sb); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	var doc struct {
		Dropped uint64 `json:"dropped"`
		Events  []struct {
			Time    int64   `json:"time_unix_ns"`
			Name    string  `json:"name"`
			Cat     string  `json:"cat"`
			DurUS   float64 `json:"dur_us"`
			Status  int     `json:"status"`
			RID     string  `json:"request_id"`
			TraceID string  `json:"trace_id"`
			Detail  string  `json:"detail"`
		} `json:"events"`
	}
	if err := json.Unmarshal([]byte(sb.String()), &doc); err != nil {
		t.Fatalf("dump is not valid JSON: %v\n%s", err, sb.String())
	}
	if doc.Dropped != 0 || len(doc.Events) != 2 {
		t.Fatalf("dropped %d, %d events; want 0, 2", doc.Dropped, len(doc.Events))
	}
	first := doc.Events[0]
	if first.Name != "a" || first.RID != "rid-1" || first.TraceID != "0123" || first.DurUS != 1.5 {
		t.Errorf("first event mismatch: %+v", first)
	}
	if doc.Events[1].Detail != "open" || doc.Events[1].RID != "" {
		t.Errorf("second event mismatch: %+v", doc.Events[1])
	}
	if strings.Contains(sb.String(), `"request_id":""`) {
		t.Error("empty optional fields must be omitted")
	}

	// Equal snapshots dump equal bytes.
	var again strings.Builder
	if err := r.WriteJSON(&again); err != nil {
		t.Fatalf("second WriteJSON: %v", err)
	}
	if again.String() != sb.String() {
		t.Error("dump is not byte-deterministic for an unchanged ring")
	}
}

// TestFlightRecorderConcurrent races writers against snapshots; run under
// -race in CI. Every writer's last event must be accounted for either in
// the final snapshot or the dropped count.
func TestFlightRecorderConcurrent(t *testing.T) {
	const workers, per, capacity = 8, 200, 64
	r := NewFlightRecorder(capacity)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				r.Record(flightEvent(w*per + i))
			}
		}(w)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			r.Snapshot()
		}
	}()
	wg.Wait()
	<-done

	events, dropped := r.Snapshot()
	if got := uint64(len(events)) + dropped; got != workers*per {
		t.Fatalf("events %d + dropped %d = %d, want %d", len(events), dropped, got, workers*per)
	}
	if len(events) != capacity {
		t.Fatalf("retained %d events, want %d", len(events), capacity)
	}
}

// TestFlightRecorderRecordAllocs is the bounded-memory contract: the
// steady-state Record path allocates nothing.
func TestFlightRecorderRecordAllocs(t *testing.T) {
	r := NewFlightRecorder(16)
	ev := flightEvent(1)
	if allocs := testing.AllocsPerRun(1000, func() { r.Record(ev) }); allocs != 0 {
		t.Fatalf("Record allocates %.1f objects per call, want 0", allocs)
	}
}

// TestFlightRecorderTruncation: over-budget string fields are truncated
// at the slot's fixed byte caps rather than retained — the pointer-free
// slot contract — while in-budget fields round-trip exactly.
func TestFlightRecorderTruncation(t *testing.T) {
	r := NewFlightRecorder(4)
	long := strings.Repeat("x", 200)
	r.Record(FlightEvent{
		Time: 1, Status: 200,
		Name: long, Cat: long, RID: long, TraceID: long, Detail: long,
	})
	r.Record(FlightEvent{
		Time: 2, Name: "/v1/characterize", Cat: "http",
		RID: "gw-000042", TraceID: strings.Repeat("ab", 16),
		Detail: "key=dl585g7:1:-1 from=closed",
	})
	events, _ := r.Snapshot()
	if len(events) != 2 {
		t.Fatalf("retained %d events, want 2", len(events))
	}
	truncated := events[0]
	for _, f := range []struct {
		name  string
		got   string
		limit int
	}{
		{"Name", truncated.Name, flightNameCap},
		{"Cat", truncated.Cat, flightCatCap},
		{"RID", truncated.RID, flightRIDCap},
		{"TraceID", truncated.TraceID, flightTraceCap},
		{"Detail", truncated.Detail, flightDetailCap},
	} {
		if len(f.got) != f.limit || f.got != long[:f.limit] {
			t.Errorf("%s = %q (%d bytes), want the first %d bytes", f.name, f.got, len(f.got), f.limit)
		}
	}
	exact := events[1]
	if exact.Name != "/v1/characterize" || exact.Cat != "http" ||
		exact.RID != "gw-000042" || exact.TraceID != strings.Repeat("ab", 16) ||
		exact.Detail != "key=dl585g7:1:-1 from=closed" {
		t.Errorf("in-budget event did not round-trip: %+v", exact)
	}
}

// TestTraceControlLifecycle covers the start/stop/current transitions the
// /debug/trace endpoints are built on.
func TestTraceControlLifecycle(t *testing.T) {
	var c TraceControl
	if c.Active() != nil || c.Current() != nil || c.Tracing() {
		t.Fatal("fresh control is not idle")
	}
	if c.Stop() != nil {
		t.Fatal("stop with no history returned a tracer")
	}
	t1 := c.Start()
	if c.Active() != t1 || !c.Tracing() || c.Current() != t1 {
		t.Fatal("start did not install the tracer")
	}
	t2 := c.Start() // restart while active: t1 becomes the last trace
	if c.Active() != t2 || c.Current() != t2 {
		t.Fatal("restart did not swap the active tracer")
	}
	if got := c.Stop(); got != t2 {
		t.Fatalf("stop returned %p, want %p", got, t2)
	}
	if c.Active() != nil || c.Tracing() {
		t.Fatal("stop left the control active")
	}
	if c.Current() != t2 {
		t.Fatal("stopped trace is not downloadable")
	}
	if got := c.Stop(); got != t2 {
		t.Fatal("redundant stop lost the last trace")
	}
}
