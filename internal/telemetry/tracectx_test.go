package telemetry

import (
	"context"
	"strings"
	"testing"
	"time"
)

func TestTraceContextRoundTrip(t *testing.T) {
	tc := NewTraceContext()
	if !tc.Valid() {
		t.Fatal("fresh context is invalid")
	}
	if len(tc.TraceID) != 32 || len(tc.SpanID) != 16 {
		t.Fatalf("ID lengths: trace %d, span %d", len(tc.TraceID), len(tc.SpanID))
	}
	got, ok := ParseTraceContext(tc.String())
	if !ok || got != tc {
		t.Fatalf("round trip %q -> %+v ok=%v, want %+v", tc.String(), got, ok, tc)
	}
}

func TestTraceContextChild(t *testing.T) {
	tc := NewTraceContext()
	child := tc.Child()
	if child.TraceID != tc.TraceID {
		t.Error("child changed the trace ID")
	}
	if child.SpanID == tc.SpanID {
		t.Error("child kept the parent span ID")
	}
	if _, ok := ParseTraceContext(child.String()); !ok {
		t.Errorf("child renders unparseable: %q", child.String())
	}
}

func TestParseTraceContextRejects(t *testing.T) {
	valid := NewTraceContext().String()
	bad := []string{
		"",
		"garbage",
		valid[:len(valid)-1],                // truncated
		valid + "0",                         // too long
		"01" + valid[2:],                    // unknown version
		strings.Replace(valid, "-", "_", 1), // wrong separator
		strings.ToUpper(valid),              // uppercase hex
		"00-" + strings.Repeat("0", 32) + "-" + valid[36:], // all-zero trace ID
		valid[:36] + strings.Repeat("0", 16) + "-01",       // all-zero span ID
		"00-" + strings.Repeat("zz", 16) + valid[35:],      // non-hex trace ID
	}
	for _, s := range bad {
		if _, ok := ParseTraceContext(s); ok {
			t.Errorf("ParseTraceContext(%q) accepted a malformed value", s)
		}
	}
}

func TestTraceContextInContext(t *testing.T) {
	if _, ok := TraceFromContext(context.Background()); ok {
		t.Fatal("empty context yielded a trace context")
	}
	tc := NewTraceContext()
	ctx := ContextWithTrace(context.Background(), tc)
	got, ok := TraceFromContext(ctx)
	if !ok || got != tc {
		t.Fatalf("TraceFromContext = %+v ok=%v, want %+v", got, ok, tc)
	}
}

func TestStagesHeaderAndAttrs(t *testing.T) {
	var nilStages *Stages
	nilStages.Add("queue", time.Second) // must not panic
	if nilStages.Header() != "" || nilStages.Len() != 0 {
		t.Fatal("nil stages are not empty")
	}

	s := NewStages()
	s.Add("queue", 132*time.Microsecond)
	s.Add("solve", 5210*time.Microsecond)
	s.Add("queue", 868*time.Microsecond) // accumulates, keeps first-add order
	if got := s.Header(); got != "queue;dur=1.000, solve;dur=5.210" {
		t.Errorf("Header() = %q", got)
	}
	if got := s.Get("queue"); got != time.Millisecond {
		t.Errorf("Get(queue) = %v", got)
	}
	attrs := s.AppendLogAttrs([]any{"endpoint", "/v1/predict"})
	if len(attrs) != 6 || attrs[2] != "stage_queue" || attrs[4] != "stage_solve" {
		t.Errorf("AppendLogAttrs = %v", attrs)
	}

	// Past the bound, extra stages are dropped, not grown.
	for i := 0; i < 2*maxStages; i++ {
		s.Add(strings.Repeat("x", i+1), time.Millisecond)
	}
	if s.Len() != maxStages {
		t.Errorf("Len() = %d after overflow, want %d", s.Len(), maxStages)
	}
}

func TestStagesObserveAndContext(t *testing.T) {
	s := NewStages()
	s.Observe("solve", func() {})
	if s.Len() != 1 || s.Get("solve") < 0 {
		t.Fatal("Observe did not record the stage")
	}
	if StagesFromContext(context.Background()) != nil {
		t.Fatal("empty context yielded stages")
	}
	ctx := ContextWithStages(context.Background(), s)
	if StagesFromContext(ctx) != s {
		t.Fatal("stages lost in context round trip")
	}
}
