package telemetry

import (
	"bytes"
	"math"
	"sync"
	"testing"
)

func TestCounterAndGauge(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(41)
	if c.Value() != 42 {
		t.Errorf("counter = %d, want 42", c.Value())
	}
	var g Gauge
	g.Set(7)
	if g.Add(-3) != 4 || g.Value() != 4 {
		t.Errorf("gauge = %d, want 4", g.Value())
	}
}

func TestIntCounterVec(t *testing.T) {
	v := NewIntCounterVec()
	v.With(200).Add(3)
	v.With(404).Inc()
	v.With(200).Inc()
	if got := v.Value(200); got != 4 {
		t.Errorf("Value(200) = %d, want 4", got)
	}
	if got := v.Value(500); got != 0 {
		t.Errorf("Value(500) = %d, want 0", got)
	}
	keys := v.Keys()
	if len(keys) != 2 || keys[0] != 200 || keys[1] != 404 {
		t.Errorf("Keys = %v", keys)
	}
}

func TestBucketHistogram(t *testing.T) {
	h := NewBucketHistogram([]float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.1, 0.5, 5, 100} {
		h.Observe(v)
	}
	counts := h.Counts()
	// 0.05 and 0.1 land in le=0.1 (SearchFloat64s returns the first bound
	// >= v, matching the old "s <= le" loop); 0.5 in le=1; 5 in le=10; 100
	// overflows.
	want := []int64{2, 1, 1, 1}
	for i, w := range want {
		if counts[i] != w {
			t.Errorf("bucket %d = %d, want %d (all: %v)", i, counts[i], w, counts)
		}
	}
	if h.Total() != 5 {
		t.Errorf("total = %d", h.Total())
	}
	if diff := math.Abs(h.Sum() - 105.65); diff > 1e-9 {
		t.Errorf("sum = %g, want 105.65", h.Sum())
	}
}

func TestRegistryRendersInOrder(t *testing.T) {
	r := NewRegistry()
	var c Counter
	c.Add(5)
	var g Gauge
	g.Set(2)
	r.CounterSeries("demo_total", "A demo counter.", &c)
	r.GaugeSeries("demo_gauge", "A demo gauge.", &g)
	r.IntCounterFunc("demo_func_total", "A derived counter.", func() int64 { return 9 })
	r.FloatCounterFunc("demo_seconds_total", "A float counter.", func() float64 { return 0.25 })

	var buf bytes.Buffer
	r.Render(&buf)
	want := "# HELP demo_total A demo counter.\n" +
		"# TYPE demo_total counter\n" +
		"demo_total 5\n" +
		"# HELP demo_gauge A demo gauge.\n" +
		"# TYPE demo_gauge gauge\n" +
		"demo_gauge 2\n" +
		"# HELP demo_func_total A derived counter.\n" +
		"# TYPE demo_func_total counter\n" +
		"demo_func_total 9\n" +
		"# HELP demo_seconds_total A float counter.\n" +
		"# TYPE demo_seconds_total counter\n" +
		"demo_seconds_total 0.25\n"
	if buf.String() != want {
		t.Errorf("render mismatch:\n got: %q\nwant: %q", buf.String(), want)
	}
}

// TestMetricsConcurrent hammers every primitive from 32 goroutines; run
// under the -race CI leg it proves the sharded/atomic paths are clean,
// and the final totals prove no increment was lost.
func TestMetricsConcurrent(t *testing.T) {
	const workers, per = 32, 1000
	var c Counter
	var g Gauge
	vec := NewIntCounterVec()
	hist := NewBucketHistogram([]float64{1, 2, 4})
	reg := NewRegistry()
	reg.CounterSeries("stress_total", "stress", &c)
	reg.GaugeSeries("stress_gauge", "stress", &g)

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Inc()
				g.Add(1)
				vec.With(200 + w%3).Inc()
				hist.Observe(float64(i % 5))
				if i%100 == 0 {
					var buf bytes.Buffer
					reg.Render(&buf) // render concurrently with updates
					_ = c.Value()
					_ = vec.Keys()
					_ = hist.Counts()
				}
			}
		}(w)
	}
	wg.Wait()

	if c.Value() != workers*per {
		t.Errorf("counter = %d, want %d", c.Value(), workers*per)
	}
	if g.Value() != workers*per {
		t.Errorf("gauge = %d, want %d", g.Value(), workers*per)
	}
	var vecTotal int64
	for _, k := range vec.Keys() {
		vecTotal += vec.Value(k)
	}
	if vecTotal != workers*per {
		t.Errorf("vec total = %d, want %d", vecTotal, workers*per)
	}
	if hist.Total() != workers*per {
		t.Errorf("hist total = %d, want %d", hist.Total(), workers*per)
	}
	var histSum int64
	for _, n := range hist.Counts() {
		histSum += n
	}
	if histSum != workers*per {
		t.Errorf("hist bucket sum = %d, want %d", histSum, workers*per)
	}
	// Each goroutine observed i%5 over per iterations: per/5 full cycles
	// of 0+1+2+3+4.
	wantSum := float64(workers) * float64(per/5) * (0 + 1 + 2 + 3 + 4)
	if math.Abs(hist.Sum()-wantSum) > 1e-6 {
		t.Errorf("hist sum = %g, want %g", hist.Sum(), wantSum)
	}
}
