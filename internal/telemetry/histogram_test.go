package telemetry

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"sort"
	"testing"
	"time"
)

// TestBucketIndexMonotone: the log-linear mapping must be monotone and
// contiguous, and every value must fall at or below its bucket's upper
// edge.
func TestBucketIndexMonotone(t *testing.T) {
	prev := -1
	for v := int64(0); v < 1<<14; v++ {
		i := bucketIndex(v)
		if i != prev && i != prev+1 {
			t.Fatalf("bucketIndex(%d) = %d jumps from %d", v, i, prev)
		}
		prev = i
		if up := bucketUpper(i); v > up {
			t.Fatalf("value %d above its bucket %d upper edge %d", v, i, up)
		}
	}
	// Spot-check large magnitudes (seconds to minutes in nanoseconds).
	for _, v := range []int64{1e6, 1e9, 6e10, 36e11} {
		i := bucketIndex(v)
		up := bucketUpper(i)
		if v > up {
			t.Errorf("value %d above bucket upper %d", v, up)
		}
		// Log-linear relative error bound: the bucket spans < 2/subCount of
		// the value.
		if lo := bucketUpper(i - 1); float64(up-lo) > float64(v)*2/subCount {
			t.Errorf("bucket span %d too wide for value %d", up-lo, v)
		}
	}
}

// TestHistogramQuantiles: quantiles of a known uniform distribution land
// within the histogram's resolution of the exact order statistics.
func TestHistogramQuantiles(t *testing.T) {
	h := NewHistogram()
	rng := rand.New(rand.NewSource(7))
	vals := make([]int64, 10000)
	for i := range vals {
		vals[i] = rng.Int63n(int64(10 * time.Millisecond))
		h.Record(time.Duration(vals[i]))
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
	if h.Count() != int64(len(vals)) {
		t.Fatalf("count = %d", h.Count())
	}
	if h.Max() != time.Duration(vals[len(vals)-1]) {
		t.Errorf("max = %v, want %v", h.Max(), time.Duration(vals[len(vals)-1]))
	}
	for _, q := range []float64{0.5, 0.95, 0.99} {
		exact := float64(vals[int(q*float64(len(vals)))])
		got := float64(h.Quantile(q))
		if got < exact*(1-4.0/subCount) || got > exact*(1+4.0/subCount) {
			t.Errorf("q%.2f = %v, exact %v: outside resolution bound", q, got, exact)
		}
	}
}

// TestHistogramMerge: merging per-worker histograms equals recording
// everything into one.
func TestHistogramMerge(t *testing.T) {
	whole, a, b := NewHistogram(), NewHistogram(), NewHistogram()
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 5000; i++ {
		d := time.Duration(rng.Int63n(int64(time.Second)))
		whole.Record(d)
		if i%2 == 0 {
			a.Record(d)
		} else {
			b.Record(d)
		}
	}
	a.Merge(b)
	if a.Count() != whole.Count() || a.Max() != whole.Max() || a.Mean() != whole.Mean() {
		t.Fatalf("merge mismatch: count %d/%d max %v/%v", a.Count(), whole.Count(), a.Max(), whole.Max())
	}
	for _, q := range []float64{0.5, 0.9, 0.99, 1} {
		if a.Quantile(q) != whole.Quantile(q) {
			t.Errorf("q%g: merged %v != whole %v", q, a.Quantile(q), whole.Quantile(q))
		}
	}
}

func TestHistogramEmpty(t *testing.T) {
	h := NewHistogram()
	if h.Quantile(0.99) != 0 || h.Max() != 0 || h.Mean() != 0 || h.Count() != 0 {
		t.Error("empty histogram should report zeros")
	}
}

// TestHistogramWriteJSON: the dump is valid JSON whose bucket counts sum
// to the recorded total, and equal histograms dump byte-identically.
func TestHistogramWriteJSON(t *testing.T) {
	h := NewHistogram()
	for _, d := range []time.Duration{0, time.Microsecond, time.Millisecond, time.Millisecond, time.Second} {
		h.Record(d)
	}
	var buf bytes.Buffer
	if err := h.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var dump struct {
		Count   int64 `json:"count"`
		SumNs   int64 `json:"sum_ns"`
		MaxNs   int64 `json:"max_ns"`
		Buckets []struct {
			UpperNs int64 `json:"upper_ns"`
			Count   int64 `json:"count"`
		} `json:"buckets"`
	}
	if err := json.Unmarshal(buf.Bytes(), &dump); err != nil {
		t.Fatalf("dump is not valid JSON: %v\n%s", err, buf.String())
	}
	if dump.Count != h.Count() || dump.MaxNs != int64(h.Max()) {
		t.Errorf("dump header %+v disagrees with histogram (count %d max %d)", dump, h.Count(), h.Max())
	}
	var sum int64
	for _, b := range dump.Buckets {
		if b.Count == 0 {
			t.Errorf("dump contains empty bucket at upper_ns=%d", b.UpperNs)
		}
		sum += b.Count
	}
	if sum != dump.Count {
		t.Errorf("bucket counts sum to %d, want %d", sum, dump.Count)
	}

	var again bytes.Buffer
	if err := h.WriteJSON(&again); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), again.Bytes()) {
		t.Error("repeated dumps of the same histogram differ")
	}

	var empty bytes.Buffer
	if err := NewHistogram().WriteJSON(&empty); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(empty.Bytes(), &dump); err != nil {
		t.Fatalf("empty dump is not valid JSON: %v\n%s", err, empty.String())
	}
}
