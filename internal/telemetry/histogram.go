package telemetry

import (
	"bufio"
	"fmt"
	"io"
	"math/bits"
	"time"
)

// Histogram is an HDR-style log-linear latency histogram over nanosecond
// values: each power-of-two magnitude is split into 2^subBits/2 linear
// sub-buckets, bounding the relative quantile error at ~2/2^subBits
// (≈3% at subBits = 6) across the full range with a few KiB of counters.
// Recording is O(1) and allocation-free; buckets grow lazily with the
// largest observed value. Not safe for concurrent use — give each worker
// its own and Merge.
//
// This is the single latency-histogram implementation shared by the
// numaioload driver (p50/p95/p99 report, -hist-dump) and anything else
// that needs full-range quantiles without preconfigured bounds.
type Histogram struct {
	counts []int64
	ex     []string // lazily sized; last exemplar ID per bucket
	total  int64
	sum    int64
	max    int64
}

const (
	subBits  = 6
	subCount = 1 << subBits
)

// bucketIndex maps a nanosecond value to its log-linear bucket. Values
// below subCount get exact unit buckets; above, value>>exp lands in
// [subCount/2, subCount), giving subCount/2 linear sub-buckets per octave.
func bucketIndex(v int64) int {
	if v < 0 {
		v = 0
	}
	if v < subCount {
		return int(v)
	}
	exp := bits.Len64(uint64(v)) - subBits
	return exp*subCount/2 + int(v>>uint(exp))
}

// bucketUpper returns the largest value mapping to bucket i — the
// conservative representative reported for quantiles in that bucket.
func bucketUpper(i int) int64 {
	if i < subCount {
		return int64(i)
	}
	exp := i/(subCount/2) - 1
	base := int64(i - exp*subCount/2)
	return base<<uint(exp) + (1 << uint(exp)) - 1
}

// NewHistogram builds an empty histogram.
func NewHistogram() *Histogram {
	return &Histogram{counts: make([]int64, subCount)}
}

// Record adds one latency observation.
func (h *Histogram) Record(d time.Duration) {
	v := int64(d)
	if v < 0 {
		v = 0
	}
	i := bucketIndex(v)
	for i >= len(h.counts) {
		h.counts = append(h.counts, make([]int64, len(h.counts))...)
	}
	h.counts[i]++
	h.total++
	h.sum += v
	if v > h.max {
		h.max = v
	}
}

// RecordExemplar records d and remembers id as the bucket's latest
// exemplar, linking the bucket back to a concrete request ID. An empty id
// degrades to a plain Record.
func (h *Histogram) RecordExemplar(d time.Duration, id string) {
	h.Record(d)
	if id == "" {
		return
	}
	v := int64(d)
	if v < 0 {
		v = 0
	}
	i := bucketIndex(v)
	for i >= len(h.ex) {
		if len(h.ex) == 0 {
			h.ex = make([]string, subCount)
			continue
		}
		h.ex = append(h.ex, make([]string, len(h.ex))...)
	}
	h.ex[i] = id
}

// Merge folds another histogram into this one. Exemplars from o overwrite
// this histogram's where o has one — merge order decides ties, which is
// fine for "a concrete example per bucket".
func (h *Histogram) Merge(o *Histogram) {
	if o == nil {
		return
	}
	for len(h.counts) < len(o.counts) {
		h.counts = append(h.counts, make([]int64, len(h.counts))...)
	}
	for i, c := range o.counts {
		h.counts[i] += c
	}
	if len(o.ex) > 0 {
		for len(h.ex) < len(o.ex) {
			if len(h.ex) == 0 {
				h.ex = make([]string, subCount)
				continue
			}
			h.ex = append(h.ex, make([]string, len(h.ex))...)
		}
		for i, id := range o.ex {
			if id != "" {
				h.ex[i] = id
			}
		}
	}
	h.total += o.total
	h.sum += o.sum
	if o.max > h.max {
		h.max = o.max
	}
}

// Count returns the number of recorded observations.
func (h *Histogram) Count() int64 { return h.total }

// Max returns the largest recorded observation.
func (h *Histogram) Max() time.Duration { return time.Duration(h.max) }

// Mean returns the arithmetic mean of the recorded observations.
func (h *Histogram) Mean() time.Duration {
	if h.total == 0 {
		return 0
	}
	return time.Duration(h.sum / h.total)
}

// Quantile returns the latency at quantile q in [0, 1]: the upper edge of
// the bucket containing the q-th observation, clamped to the recorded
// maximum. Zero observations yield zero.
func (h *Histogram) Quantile(q float64) time.Duration {
	if h.total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := int64(q * float64(h.total))
	if rank >= h.total {
		rank = h.total - 1
	}
	var seen int64
	for i, c := range h.counts {
		seen += c
		if seen > rank {
			v := bucketUpper(i)
			if v > h.max {
				v = h.max
			}
			return time.Duration(v)
		}
	}
	return time.Duration(h.max)
}

// Exemplar is one bucket's request-ID exemplar: the bucket's upper edge,
// its observation count, and the last recorded ID.
type Exemplar struct {
	Upper time.Duration
	Count int64
	ID    string
}

// ExemplarsAbove returns the exemplars recorded at or above the bucket
// containing quantile q, fastest-first — "name a concrete request from
// the slowest decile" is ExemplarsAbove(0.9). Buckets without a recorded
// ID are skipped.
func (h *Histogram) ExemplarsAbove(q float64) []Exemplar {
	if h.total == 0 || len(h.ex) == 0 {
		return nil
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := int64(q * float64(h.total))
	if rank >= h.total {
		rank = h.total - 1
	}
	start := len(h.counts) - 1
	var seen int64
	for i, c := range h.counts {
		seen += c
		if seen > rank {
			start = i
			break
		}
	}
	var out []Exemplar
	for i := start; i < len(h.counts) && i < len(h.ex); i++ {
		if h.counts[i] == 0 || h.ex[i] == "" {
			continue
		}
		out = append(out, Exemplar{
			Upper: time.Duration(bucketUpper(i)),
			Count: h.counts[i],
			ID:    h.ex[i],
		})
	}
	return out
}

// WriteJSON dumps the raw histogram as JSON: total count, nanosecond sum
// and max, and every non-empty bucket with its upper edge. The encoding
// is hand-rolled (ordered, no reflection) so dumps of equal histograms
// are byte-identical.
func (h *Histogram) WriteJSON(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "{\n  \"count\": %d,\n  \"sum_ns\": %d,\n  \"max_ns\": %d,\n  \"buckets\": [",
		h.total, h.sum, h.max)
	first := true
	for i, c := range h.counts {
		if c == 0 {
			continue
		}
		if !first {
			fmt.Fprint(bw, ",")
		}
		first = false
		fmt.Fprintf(bw, "\n    {\"upper_ns\": %d, \"count\": %d}", bucketUpper(i), c)
	}
	if !first {
		fmt.Fprint(bw, "\n  ")
	}
	fmt.Fprint(bw, "]\n}\n")
	return bw.Flush()
}
