package telemetry

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// FlightEvent is one record in the always-on flight recorder: a completed
// request, a resilience transition, or any other event worth still having
// around when something goes wrong. All fields are plain values — Record
// copies them byte-wise into a preallocated pointer-free slot and
// allocates nothing; string fields longer than the slot's fixed budgets
// (40 bytes for Name and RID, 32 for TraceID, 64 for Detail) are
// truncated rather than retained.
type FlightEvent struct {
	Time    int64         // wall-clock unix nanoseconds
	Dur     time.Duration // 0 for point events
	Status  int           // HTTP status for request events, else 0
	Name    string        // endpoint pattern, transition name, ...
	Cat     string        // "http", "breaker", ...
	RID     string        // request ID, "" when none
	TraceID string        // trace ID from X-Trace-Ctx, "" when none
	Detail  string        // free-form: error summary, breaker state, ...
}

// Per-field byte budgets for a ring slot. Values are copied in truncated
// to these caps; they are sized for the repo's actual identifiers (v1
// endpoint paths, 32-hex trace IDs, gateway request IDs, breaker detail
// strings) with headroom.
const (
	flightNameCap   = 40
	flightCatCap    = 12
	flightRIDCap    = 40
	flightTraceCap  = 32
	flightDetailCap = 64
)

// flightSlot is one ring entry. Writers claim a slot index with a single
// atomic add on the ring cursor, then take only this slot's mutex for the
// copy — two writers contend only when they land on the same slot (the
// ring has wrapped a full capacity between them), so the steady state is
// an uncontended lock around a plain struct copy.
//
// The slot is deliberately pointer-free: string fields are copied into
// fixed byte arrays rather than retained. A ring that held string
// references would extend the lifetime of every recent request's IDs and
// give the garbage collector thousands of extra pointers to mark on each
// cycle — a tax charged to the request path the recorder is supposed to
// observe, not perturb. With value-only slots the GC skips the ring
// entirely.
type flightSlot struct {
	mu                                           sync.Mutex
	idx                                          uint64 // 1-based claim index; 0 = never written
	time                                         int64
	dur                                          time.Duration
	status                                       int32
	nameLen, catLen, ridLen, traceLen, detailLen uint8
	name                                         [flightNameCap]byte
	cat                                          [flightCatCap]byte
	rid                                          [flightRIDCap]byte
	trace                                        [flightTraceCap]byte
	detail                                       [flightDetailCap]byte
}

// capped copies s into the fixed buffer, truncating at its cap.
func capped(dst []byte, s string) uint8 {
	return uint8(copy(dst, s))
}

// event reconstructs the slot's FlightEvent (allocating its strings —
// snapshot/dump path only).
func (s *flightSlot) event() FlightEvent {
	return FlightEvent{
		Time:    s.time,
		Dur:     s.dur,
		Status:  int(s.status),
		Name:    string(s.name[:s.nameLen]),
		Cat:     string(s.cat[:s.catLen]),
		RID:     string(s.rid[:s.ridLen]),
		TraceID: string(s.trace[:s.traceLen]),
		Detail:  string(s.detail[:s.detailLen]),
	}
}

// FlightRecorder is a fixed-size, lock-light ring of recent events — the
// always-on black box behind /debug/flightrecorder. Memory is bounded at
// construction, recording is allocation-free, and a nil *FlightRecorder
// no-ops so instrumentation is unconditional.
type FlightRecorder struct {
	next  atomic.Uint64 // claim cursor: total events ever recorded
	slots []flightSlot
}

// NewFlightRecorder builds a recorder retaining the last capacity events.
// Capacities below 1 are clamped to 1.
func NewFlightRecorder(capacity int) *FlightRecorder {
	if capacity < 1 {
		capacity = 1
	}
	return &FlightRecorder{slots: make([]flightSlot, capacity)}
}

// Record appends ev, overwriting the oldest entry once the ring is full.
func (r *FlightRecorder) Record(ev FlightEvent) {
	if r == nil {
		return
	}
	i := r.next.Add(1)
	s := &r.slots[(i-1)%uint64(len(r.slots))]
	s.mu.Lock()
	s.idx = i
	s.time, s.dur, s.status = ev.Time, ev.Dur, int32(ev.Status)
	s.nameLen = capped(s.name[:], ev.Name)
	s.catLen = capped(s.cat[:], ev.Cat)
	s.ridLen = capped(s.rid[:], ev.RID)
	s.traceLen = capped(s.trace[:], ev.TraceID)
	s.detailLen = capped(s.detail[:], ev.Detail)
	s.mu.Unlock()
}

// Cap returns the ring capacity.
func (r *FlightRecorder) Cap() int {
	if r == nil {
		return 0
	}
	return len(r.slots)
}

// Total returns the number of events ever recorded.
func (r *FlightRecorder) Total() uint64 {
	if r == nil {
		return 0
	}
	return r.next.Load()
}

// Len returns the number of events currently retained.
func (r *FlightRecorder) Len() int {
	if r == nil {
		return 0
	}
	if n := r.next.Load(); n < uint64(len(r.slots)) {
		return int(n)
	}
	return len(r.slots)
}

// Snapshot returns the retained events oldest-first plus the number of
// older events already overwritten. It is safe against concurrent Record;
// a recording that races the snapshot lands in either the snapshot or the
// dropped count, never half in both.
func (r *FlightRecorder) Snapshot() ([]FlightEvent, uint64) {
	if r == nil {
		return nil, 0
	}
	type rec struct {
		idx uint64
		ev  FlightEvent
	}
	recs := make([]rec, 0, len(r.slots))
	for i := range r.slots {
		s := &r.slots[i]
		s.mu.Lock()
		if s.idx > 0 {
			recs = append(recs, rec{s.idx, s.event()})
		}
		s.mu.Unlock()
	}
	sort.Slice(recs, func(a, b int) bool { return recs[a].idx < recs[b].idx })
	events := make([]FlightEvent, len(recs))
	var dropped uint64
	for i, rc := range recs {
		events[i] = rc.ev
		if i == 0 && rc.idx > 1 {
			dropped = rc.idx - 1
		}
	}
	return events, dropped
}

// WriteJSON dumps the retained events as one JSON document:
//
//	{"dropped":N,"events":[{...},...]}
//
// Events are oldest-first; optional fields (request_id, trace_id, detail)
// are omitted when empty. The encoding is hand-ordered, so equal
// snapshots yield equal bytes.
func (r *FlightRecorder) WriteJSON(w io.Writer) error {
	events, dropped := r.Snapshot()
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "{\"dropped\":%d,\"events\":[", dropped)
	for i, e := range events {
		if i > 0 {
			bw.WriteString(",\n")
		}
		fmt.Fprintf(bw, "{\"time_unix_ns\":%d,\"name\":%s,\"cat\":%s,\"dur_us\":%.3f,\"status\":%d",
			e.Time, jsonString(e.Name), jsonString(e.Cat), float64(e.Dur)/1e3, e.Status)
		if e.RID != "" {
			fmt.Fprintf(bw, ",\"request_id\":%s", jsonString(e.RID))
		}
		if e.TraceID != "" {
			fmt.Fprintf(bw, ",\"trace_id\":%s", jsonString(e.TraceID))
		}
		if e.Detail != "" {
			fmt.Fprintf(bw, ",\"detail\":%s", jsonString(e.Detail))
		}
		bw.WriteByte('}')
	}
	if _, err := bw.WriteString("]}\n"); err != nil {
		return err
	}
	return bw.Flush()
}

// jsonString renders s as a JSON string literal (json.Marshal escaping,
// which %q does not guarantee for control bytes).
func jsonString(s string) []byte {
	b, err := json.Marshal(s)
	if err != nil { // cannot happen for a string
		return []byte(`""`)
	}
	return b
}
