package telemetry

import (
	"context"
	"strconv"
	"sync"
	"time"
)

// maxStages bounds the per-request stage table. Requests have a handful
// of well-known stages (queue, cache, solve, encode; route, forward,
// failover on the gateway); anything past the bound is dropped rather
// than grown.
const maxStages = 8

// Stages accumulates one request's per-stage latency breakdown in
// first-Add order. It is the attribution side of the paper's question —
// where did this request's wall time go — and renders either as a
// Server-Timing response header or as structured-log fields. A nil
// *Stages no-ops on every method, so instrumented code records
// unconditionally. Safe for concurrent use.
type Stages struct {
	mu    sync.Mutex
	n     int
	names [maxStages]string
	durs  [maxStages]time.Duration
}

// NewStages returns an empty breakdown.
func NewStages() *Stages { return &Stages{} }

// Add folds d into the named stage, creating it on first use. Repeated
// names accumulate — e.g. the response-cache probe and fill of one
// request both land in "cache".
func (s *Stages) Add(name string, d time.Duration) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for i := 0; i < s.n; i++ {
		if s.names[i] == name {
			s.durs[i] += d
			return
		}
	}
	if s.n < maxStages {
		s.names[s.n] = name
		s.durs[s.n] = d
		s.n++
	}
}

// Observe runs fn and attributes its wall time to the named stage.
func (s *Stages) Observe(name string, fn func()) {
	if s == nil {
		fn()
		return
	}
	start := time.Now()
	fn()
	s.Add(name, time.Since(start))
}

// Len returns the number of distinct stages recorded.
func (s *Stages) Len() int {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.n
}

// Get returns the accumulated duration for name (0 if absent).
func (s *Stages) Get(name string) time.Duration {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for i := 0; i < s.n; i++ {
		if s.names[i] == name {
			return s.durs[i]
		}
	}
	return 0
}

// Header renders the breakdown as a Server-Timing header value —
// "queue;dur=0.132, solve;dur=5.210" — durations in milliseconds with
// microsecond precision, stages in first-Add order. Empty when nothing
// was recorded.
func (s *Stages) Header() string {
	if s == nil {
		return ""
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.n == 0 {
		return ""
	}
	b := make([]byte, 0, 24*s.n)
	for i := 0; i < s.n; i++ {
		if i > 0 {
			b = append(b, ',', ' ')
		}
		b = append(b, s.names[i]...)
		b = append(b, ";dur="...)
		b = strconv.AppendFloat(b, float64(s.durs[i])/1e6, 'f', 3, 64)
	}
	return string(b)
}

// AppendLogAttrs appends alternating "stage_<name>", duration pairs to
// attrs for the structured request log.
func (s *Stages) AppendLogAttrs(attrs []any) []any {
	if s == nil {
		return attrs
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for i := 0; i < s.n; i++ {
		attrs = append(attrs, "stage_"+s.names[i], s.durs[i])
	}
	return attrs
}

type stagesKey struct{}

// ContextWithStages returns ctx carrying s, so code deep in the handler
// chain (pools, caches, solvers) can attribute time without threading a
// parameter through every signature.
func ContextWithStages(ctx context.Context, s *Stages) context.Context {
	return context.WithValue(ctx, stagesKey{}, s)
}

// StagesFromContext returns the breakdown stored by ContextWithStages,
// or nil — which every Stages method accepts.
func StagesFromContext(ctx context.Context) *Stages {
	s, _ := ctx.Value(stagesKey{}).(*Stages)
	return s
}
