package telemetry

import (
	"testing"
	"time"
)

// TestHistogramExemplars checks RecordExemplar keeps the last ID per
// bucket and ExemplarsAbove surfaces only the slow tail.
func TestHistogramExemplars(t *testing.T) {
	h := NewHistogram()
	if got := h.ExemplarsAbove(0.9); got != nil {
		t.Fatalf("empty histogram exemplars = %v", got)
	}
	// 90 fast observations without IDs, 10 slow ones with.
	for i := 0; i < 90; i++ {
		h.Record(time.Millisecond)
	}
	for i := 0; i < 10; i++ {
		h.RecordExemplar(time.Second+time.Duration(i)*time.Millisecond, "slow-9")
	}
	ex := h.ExemplarsAbove(0.9)
	if len(ex) == 0 {
		t.Fatal("no exemplars above p90")
	}
	var total int64
	for _, e := range ex {
		if e.ID != "slow-9" {
			t.Errorf("exemplar ID %q, want slow-9", e.ID)
		}
		if e.Upper < time.Second/2 {
			t.Errorf("exemplar bucket %v is not in the slow tail", e.Upper)
		}
		total += e.Count
	}
	if total != 10 {
		t.Errorf("exemplar buckets cover %d observations, want 10", total)
	}
	// The fast buckets carry no IDs, so p0 surfaces the same slow set.
	if got := len(h.ExemplarsAbove(0)); got != len(ex) {
		t.Errorf("ExemplarsAbove(0) = %d buckets, want %d", got, len(ex))
	}
}

// TestHistogramExemplarMerge checks per-worker exemplars survive the
// loadgen merge.
func TestHistogramExemplarMerge(t *testing.T) {
	a, b := NewHistogram(), NewHistogram()
	a.RecordExemplar(10*time.Millisecond, "a-1")
	b.RecordExemplar(10*time.Second, "b-1")
	a.Merge(b)
	ex := a.ExemplarsAbove(0)
	if len(ex) != 2 {
		t.Fatalf("merged exemplars = %d, want 2", len(ex))
	}
	if ex[0].ID != "a-1" || ex[1].ID != "b-1" {
		t.Errorf("merged exemplars = %+v", ex)
	}
	if a.Count() != 2 {
		t.Errorf("merged count = %d", a.Count())
	}
}

// TestBucketHistogramExemplars checks the /metrics-side histogram keeps
// the latest request ID per bucket.
func TestBucketHistogramExemplars(t *testing.T) {
	h := NewBucketHistogram([]float64{0.01, 0.1, 1})
	if got := h.Exemplar(0); got != "" {
		t.Fatalf("fresh exemplar = %q", got)
	}
	h.ObserveExemplar(0.005, "fast-1")
	h.ObserveExemplar(0.005, "fast-2") // latest wins
	h.ObserveExemplar(0.5, "mid-1")
	h.ObserveExemplar(50, "inf-1") // +Inf overflow bucket
	h.Observe(0.5)                 // plain Observe leaves exemplars alone
	if got := h.Exemplar(0); got != "fast-2" {
		t.Errorf("bucket 0 exemplar = %q, want fast-2", got)
	}
	if got := h.Exemplar(2); got != "mid-1" {
		t.Errorf("bucket 2 exemplar = %q, want mid-1", got)
	}
	if got := h.Exemplar(3); got != "inf-1" {
		t.Errorf("+Inf exemplar = %q, want inf-1", got)
	}
	if got := h.Exemplar(99); got != "" {
		t.Errorf("out-of-range exemplar = %q", got)
	}
	if h.Total() != 5 {
		t.Errorf("total = %d, want 5", h.Total())
	}
}
