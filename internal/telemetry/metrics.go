package telemetry

import (
	"fmt"
	"io"
	"math"
	"math/rand/v2"
	"sort"
	"sync"
	"sync/atomic"
)

// numShards fixes the fan-out of sharded counters. 16 padded slots cover
// typical server core counts without bloating each counter past 1 KiB.
const numShards = 16

// paddedInt64 occupies a full cache line so adjacent shards never
// false-share.
type paddedInt64 struct {
	v atomic.Int64
	_ [56]byte
}

// Counter is a monotonically increasing sharded atomic counter. Add picks
// a shard via the per-thread math/rand/v2 fast path (lock-free and
// allocation-free), spreading contended increments across cache lines;
// Value sums the shards. The zero value is ready to use.
type Counter struct {
	shards [numShards]paddedInt64
}

// Add increments the counter by delta.
func (c *Counter) Add(delta int64) {
	c.shards[rand.Uint64()%numShards].v.Add(delta)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current total.
func (c *Counter) Value() int64 {
	var total int64
	for i := range c.shards {
		total += c.shards[i].v.Load()
	}
	return total
}

// Gauge is an instantaneous value set and read atomically. The zero value
// is ready to use.
type Gauge struct {
	v atomic.Int64
}

// Set stores v.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adjusts the gauge by delta and returns the new value.
func (g *Gauge) Add(delta int64) int64 { return g.v.Add(delta) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// IntCounterVec is a family of Counters keyed by a small integer label
// (e.g. HTTP status). The hot path — With on an existing key — takes only
// a read lock and allocates nothing.
type IntCounterVec struct {
	mu sync.RWMutex
	m  map[int]*Counter
}

// NewIntCounterVec builds an empty family.
func NewIntCounterVec() *IntCounterVec {
	return &IntCounterVec{m: make(map[int]*Counter)}
}

// With returns the counter for key, creating it on first use.
func (v *IntCounterVec) With(key int) *Counter {
	v.mu.RLock()
	c, ok := v.m[key]
	v.mu.RUnlock()
	if ok {
		return c
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if c, ok = v.m[key]; ok {
		return c
	}
	c = new(Counter)
	v.m[key] = c
	return c
}

// Keys returns the registered keys in ascending order.
func (v *IntCounterVec) Keys() []int {
	v.mu.RLock()
	defer v.mu.RUnlock()
	keys := make([]int, 0, len(v.m))
	for k := range v.m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	return keys
}

// Value returns the total for key (0 if never observed).
func (v *IntCounterVec) Value(key int) int64 {
	v.mu.RLock()
	c := v.m[key]
	v.mu.RUnlock()
	if c == nil {
		return 0
	}
	return c.Value()
}

// BucketHistogram is a fixed-bounds histogram in the Prometheus style:
// explicit upper bounds plus a +Inf overflow, an observation sum and a
// total count, all updated atomically so Observe takes no lock.
type BucketHistogram struct {
	bounds    []float64
	counts    []atomic.Int64           // len(bounds)+1; last is +Inf
	exemplars []atomic.Pointer[string] // len(bounds)+1; latest request ID per bucket
	sum       atomic.Uint64            // float64 bits, updated by CAS
	total     atomic.Int64
}

// NewBucketHistogram builds a histogram over the given ascending upper
// bounds.
func NewBucketHistogram(bounds []float64) *BucketHistogram {
	b := make([]float64, len(bounds))
	copy(b, bounds)
	return &BucketHistogram{
		bounds:    b,
		counts:    make([]atomic.Int64, len(b)+1),
		exemplars: make([]atomic.Pointer[string], len(b)+1),
	}
}

// Observe records one value into the first bucket whose bound contains it.
func (h *BucketHistogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.total.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// ObserveExemplar records v and keeps id as the bucket's latest exemplar,
// so a /metrics bucket links to a concrete request in the flight recorder
// (OpenMetrics-style). An empty id degrades to a plain Observe.
func (h *BucketHistogram) ObserveExemplar(v float64, id string) {
	if id != "" {
		i := sort.SearchFloat64s(h.bounds, v)
		h.exemplars[i].Store(&id)
	}
	h.Observe(v)
}

// Exemplar returns the latest exemplar ID recorded for bucket i ("" when
// none). Bucket indexing matches Counts: the final index is +Inf.
func (h *BucketHistogram) Exemplar(i int) string {
	if i < 0 || i >= len(h.exemplars) {
		return ""
	}
	if p := h.exemplars[i].Load(); p != nil {
		return *p
	}
	return ""
}

// Bounds returns the configured upper bounds.
func (h *BucketHistogram) Bounds() []float64 { return h.bounds }

// Counts returns a snapshot of per-bucket (non-cumulative) counts; the
// final element is the +Inf overflow bucket.
func (h *BucketHistogram) Counts() []int64 {
	out := make([]int64, len(h.counts))
	for i := range h.counts {
		out[i] = h.counts[i].Load()
	}
	return out
}

// Sum returns the sum of observed values.
func (h *BucketHistogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// Total returns the number of observations.
func (h *BucketHistogram) Total() int64 { return h.total.Load() }

// Series is one named metric family the Registry renders: HELP and TYPE
// lines followed by whatever samples Collect writes.
type Series struct {
	Name    string
	Type    string // "counter" or "gauge"
	Help    string
	Collect func(w io.Writer)
}

// Registry renders registered metric families in registration order, in
// the Prometheus text exposition format. Registration is expected at
// startup; Render may be called concurrently with metric updates.
type Registry struct {
	mu     sync.Mutex
	series []Series
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry { return &Registry{} }

// Register appends a metric family. Collect must be non-nil.
func (r *Registry) Register(s Series) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.series = append(r.series, s)
}

// Render renders every registered family in registration order.
func (r *Registry) Render(w io.Writer) {
	r.mu.Lock()
	series := r.series
	r.mu.Unlock()
	for _, s := range series {
		fmt.Fprintf(w, "# HELP %s %s\n", s.Name, s.Help)
		fmt.Fprintf(w, "# TYPE %s %s\n", s.Name, s.Type)
		s.Collect(w)
	}
}

// CounterSeries registers a sharded counter as a single-sample family.
func (r *Registry) CounterSeries(name, help string, c *Counter) {
	r.Register(Series{Name: name, Type: "counter", Help: help, Collect: func(w io.Writer) {
		fmt.Fprintf(w, "%s %d\n", name, c.Value())
	}})
}

// GaugeSeries registers a gauge as a single-sample family.
func (r *Registry) GaugeSeries(name, help string, g *Gauge) {
	r.Register(Series{Name: name, Type: "gauge", Help: help, Collect: func(w io.Writer) {
		fmt.Fprintf(w, "%s %d\n", name, g.Value())
	}})
}

// IntCounterFunc registers a counter family whose sample is read from fn
// at render time.
func (r *Registry) IntCounterFunc(name, help string, fn func() int64) {
	r.Register(Series{Name: name, Type: "counter", Help: help, Collect: func(w io.Writer) {
		fmt.Fprintf(w, "%s %d\n", name, fn())
	}})
}

// IntGaugeFunc registers a gauge family whose sample is read from fn at
// render time.
func (r *Registry) IntGaugeFunc(name, help string, fn func() int64) {
	r.Register(Series{Name: name, Type: "gauge", Help: help, Collect: func(w io.Writer) {
		fmt.Fprintf(w, "%s %d\n", name, fn())
	}})
}

// FloatCounterFunc registers a float-valued counter family (rendered %g)
// whose sample is read from fn at render time.
func (r *Registry) FloatCounterFunc(name, help string, fn func() float64) {
	r.Register(Series{Name: name, Type: "counter", Help: help, Collect: func(w io.Writer) {
		fmt.Fprintf(w, "%s %g\n", name, fn())
	}})
}
