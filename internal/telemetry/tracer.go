// Package telemetry is the repo's unified observability layer: a
// dependency-free span tracer exporting Chrome trace-event JSON
// (chrome://tracing / Perfetto), a generalized metrics registry (sharded
// counters, gauges, bucket histograms) behind numaiod's /metrics, and the
// HDR-style log-linear latency histogram shared by the daemon and the
// load generator.
//
// The tracer answers the paper's core question — *where* does the
// bandwidth time go — at the systems level: characterization sweeps,
// (node, repeat) measurement cells, fluid solver phases and resilience
// events all land on one timeline, stage-attributed by category. See
// docs/OBSERVABILITY.md.
package telemetry

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
	"sync"
	"time"
)

// Attr is one key/value span attribute. Values are pre-rendered strings so
// event recording never reflects and the JSON export is deterministic.
type Attr struct {
	Key   string
	Value string
}

// String builds a string attribute.
func String(key, value string) Attr { return Attr{Key: key, Value: value} }

// Int builds an integer attribute.
func Int(key string, v int) Attr { return Attr{Key: key, Value: strconv.Itoa(v)} }

// Float builds a float attribute (shortest round-trip formatting, so equal
// values always render equal bytes).
func Float(key string, v float64) Attr {
	return Attr{Key: key, Value: strconv.FormatFloat(v, 'g', -1, 64)}
}

// Event is one recorded trace event. Phase follows the Chrome trace-event
// format: 'X' complete span, 'i' instant, 'C' counter.
type Event struct {
	Name  string
	Cat   string
	Phase byte
	TID   int
	Start time.Duration // since the tracer's epoch
	Dur   time.Duration // complete spans only
	Value float64       // counter samples only
	Args  []Attr
}

// Tracer records spans, instants and counter samples, goroutine-safely,
// and exports them as Chrome trace-event JSON. A nil *Tracer is a valid
// no-op — instrumented code calls it unconditionally and pays one nil
// check when tracing is off.
//
// Timestamps come from a monotonic now function measured from the
// tracer's construction; tests inject a deterministic step function so
// identical runs serialize byte-identically.
type Tracer struct {
	now   func() time.Duration
	epoch int64 // wall-clock unix ns at construction; 0 for fake clocks

	mu     sync.Mutex
	events []Event
}

// NewTracer returns a tracer stamping events with real monotonic time
// since construction. The construction wall-clock instant is kept as the
// trace epoch so numaiotrace can align dumps from different processes.
func NewTracer() *Tracer {
	start := time.Now()
	return &Tracer{
		now:   func() time.Duration { return time.Since(start) },
		epoch: start.UnixNano(),
	}
}

// NewTracerFunc returns a tracer whose timestamps come from now — a fake
// clock for deterministic tests. now must be safe for concurrent use when
// the traced code is.
func NewTracerFunc(now func() time.Duration) *Tracer {
	return &Tracer{now: now}
}

// StepClock returns a now function that advances by step on every call —
// the canonical deterministic clock for golden trace tests.
func StepClock(step time.Duration) func() time.Duration {
	var mu sync.Mutex
	var t time.Duration
	return func() time.Duration {
		mu.Lock()
		defer mu.Unlock()
		t += step
		return t
	}
}

// Span is an in-flight interval; End records it. A nil *Span (from a nil
// tracer) no-ops on every method.
type Span struct {
	t     *Tracer
	name  string
	cat   string
	tid   int
	start time.Duration
	attrs []Attr
}

// StartSpan opens a span on track 0. cat is the stage label the
// per-stage breakdown aggregates by (e.g. "characterize", "measure",
// "fluid").
func (t *Tracer) StartSpan(name, cat string, attrs ...Attr) *Span {
	return t.StartSpanOn(0, name, cat, attrs...)
}

// StartSpanOn opens a span on an explicit track (trace-viewer "thread");
// worker pools give each worker its own track so concurrent cells render
// side by side instead of stacked.
func (t *Tracer) StartSpanOn(tid int, name, cat string, attrs ...Attr) *Span {
	if t == nil {
		return nil
	}
	return &Span{t: t, name: name, cat: cat, tid: tid, start: t.now(), attrs: attrs}
}

// StartSpan opens a child span on the parent's track.
func (s *Span) StartSpan(name, cat string, attrs ...Attr) *Span {
	if s == nil {
		return nil
	}
	return s.t.StartSpanOn(s.tid, name, cat, attrs...)
}

// SetAttr appends attributes to the span (recorded at End).
func (s *Span) SetAttr(attrs ...Attr) {
	if s == nil {
		return
	}
	s.attrs = append(s.attrs, attrs...)
}

// End records the span as a complete ('X') event.
func (s *Span) End() {
	if s == nil {
		return
	}
	end := s.t.now()
	s.t.append(Event{
		Name: s.name, Cat: s.cat, Phase: 'X', TID: s.tid,
		Start: s.start, Dur: end - s.start, Args: s.attrs,
	})
}

// Instant records a point-in-time ('i') event on track 0.
func (t *Tracer) Instant(name, cat string, attrs ...Attr) {
	t.InstantOn(0, name, cat, attrs...)
}

// InstantOn records a point-in-time event on an explicit track.
func (t *Tracer) InstantOn(tid int, name, cat string, attrs ...Attr) {
	if t == nil {
		return
	}
	t.append(Event{Name: name, Cat: cat, Phase: 'i', TID: tid, Start: t.now(), Args: attrs})
}

// Count records a counter ('C') sample — trace viewers render these as a
// stacked time series (e.g. worker-pool occupancy).
func (t *Tracer) Count(name string, value float64) {
	if t == nil {
		return
	}
	t.append(Event{Name: name, Phase: 'C', Start: t.now(), Value: value})
}

func (t *Tracer) append(e Event) {
	t.mu.Lock()
	t.events = append(t.events, e)
	t.mu.Unlock()
}

// Epoch returns the wall-clock unix-nanosecond instant of the tracer's
// construction, or 0 for fake-clock tracers.
func (t *Tracer) Epoch() int64 {
	if t == nil {
		return 0
	}
	return t.epoch
}

// Len returns the number of recorded events.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.events)
}

// Events returns a copy of the recorded events in recording order.
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Event, len(t.events))
	copy(out, t.events)
	return out
}

// WriteJSON exports the trace in the Chrome trace-event JSON format,
// loadable by chrome://tracing and https://ui.perfetto.dev. Output is a
// pure function of the recorded events: args maps marshal with sorted
// keys, so identical event sequences yield identical bytes.
func (t *Tracer) WriteJSON(w io.Writer) error {
	events := t.Events()
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(`{"displayTimeUnit":"ms",`); err != nil {
		return err
	}
	// The epoch is emitted as a string: unix nanoseconds exceed float64's
	// integer range, and trace tooling must not round it. Fake-clock
	// tracers (golden tests) have no epoch and keep their historical
	// byte-exact output.
	if t != nil && t.epoch != 0 {
		if _, err := fmt.Fprintf(bw, `"epochNanos":"%d",`, t.epoch); err != nil {
			return err
		}
	}
	if _, err := bw.WriteString(`"traceEvents":[`); err != nil {
		return err
	}
	for i, e := range events {
		if i > 0 {
			if _, err := bw.WriteString(",\n"); err != nil {
				return err
			}
		}
		b, err := json.Marshal(e.jsonMap())
		if err != nil {
			return fmt.Errorf("telemetry: encoding trace event %q: %w", e.Name, err)
		}
		if _, err := bw.Write(b); err != nil {
			return err
		}
	}
	if _, err := bw.WriteString("]}\n"); err != nil {
		return err
	}
	return bw.Flush()
}

// jsonMap renders one event as the trace-event object. Timestamps and
// durations are microseconds (the format's unit) with sub-microsecond
// fractions preserved.
func (e Event) jsonMap() map[string]any {
	m := map[string]any{
		"name": e.Name,
		"ph":   string(e.Phase),
		"ts":   float64(e.Start) / 1e3,
		"pid":  1,
		"tid":  e.TID,
	}
	if e.Cat != "" {
		m["cat"] = e.Cat
	}
	switch e.Phase {
	case 'X':
		m["dur"] = float64(e.Dur) / 1e3
	case 'i':
		m["s"] = "t" // thread-scoped instant
	case 'C':
		m["args"] = map[string]any{e.Name: e.Value}
		return m
	}
	if len(e.Args) > 0 {
		args := make(map[string]any, len(e.Args))
		for _, a := range e.Args {
			args[a.Key] = a.Value
		}
		m["args"] = args
	}
	return m
}

// StageRow is one line of the per-stage breakdown: all complete spans of
// one category, aggregated.
type StageRow struct {
	Stage string // the spans' category
	Spans int
	Total time.Duration
}

// StageReport aggregates complete spans by category, ordered by total
// time descending (ties by name). Categories nest — a "characterize"
// sweep contains its "measure" cells — so rows are hierarchical shares of
// the wall time, not disjoint ones.
func (t *Tracer) StageReport() []StageRow {
	if t == nil {
		return nil
	}
	totals := make(map[string]*StageRow)
	for _, e := range t.Events() {
		if e.Phase != 'X' {
			continue
		}
		cat := e.Cat
		if cat == "" {
			cat = e.Name
		}
		row, ok := totals[cat]
		if !ok {
			row = &StageRow{Stage: cat}
			totals[cat] = row
		}
		row.Spans++
		row.Total += e.Dur
	}
	out := make([]StageRow, 0, len(totals))
	for _, row := range totals {
		out = append(out, *row)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Total != out[j].Total {
			return out[i].Total > out[j].Total
		}
		return out[i].Stage < out[j].Stage
	})
	return out
}

// WallTime is the extent of the trace: last span end minus first span
// start over all complete events (0 when none were recorded).
func (t *Tracer) WallTime() time.Duration {
	if t == nil {
		return 0
	}
	var first, last time.Duration
	seen := false
	for _, e := range t.Events() {
		if e.Phase != 'X' {
			continue
		}
		if !seen || e.Start < first {
			first = e.Start
		}
		if end := e.Start + e.Dur; !seen || end > last {
			last = end
		}
		seen = true
	}
	if !seen {
		return 0
	}
	return last - first
}
