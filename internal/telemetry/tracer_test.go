package telemetry

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestNilTracerNoop: every entry point must be safe on a nil tracer and
// the spans it hands out.
func TestNilTracerNoop(t *testing.T) {
	var tr *Tracer
	sp := tr.StartSpan("x", "cat", Int("k", 1))
	sp.SetAttr(String("a", "b"))
	child := sp.StartSpan("y", "cat")
	child.End()
	sp.End()
	tr.Instant("i", "cat")
	tr.Count("c", 1)
	if tr.Len() != 0 || tr.Events() != nil || tr.StageReport() != nil || tr.WallTime() != 0 {
		t.Error("nil tracer recorded something")
	}
	var buf bytes.Buffer
	if err := NewTracer().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if !json.Valid(buf.Bytes()) {
		t.Errorf("empty trace is not valid JSON: %s", buf.String())
	}
}

// TestTraceShape: spans, instants and counters round-trip through the
// Chrome trace-event JSON with the expected fields.
func TestTraceShape(t *testing.T) {
	tr := NewTracerFunc(StepClock(time.Millisecond))
	outer := tr.StartSpan("sweep", "characterize", String("mode", "write"))
	inner := outer.StartSpan("cell", "measure", Int("node", 3))
	inner.SetAttr(Int("attempts", 1))
	inner.End()
	tr.InstantOn(2, "measure-timeout", "resilience")
	tr.Count("workers-busy", 4)
	outer.End()

	if tr.Len() != 4 {
		t.Fatalf("Len = %d, want 4", tr.Len())
	}

	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		DisplayTimeUnit string           `json:"displayTimeUnit"`
		TraceEvents     []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v\n%s", err, buf.String())
	}
	if doc.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit = %q", doc.DisplayTimeUnit)
	}
	if len(doc.TraceEvents) != 4 {
		t.Fatalf("got %d events, want 4", len(doc.TraceEvents))
	}
	byName := make(map[string]map[string]any)
	for _, e := range doc.TraceEvents {
		byName[e["name"].(string)] = e
	}
	cell := byName["cell"]
	if cell["ph"] != "X" || cell["cat"] != "measure" {
		t.Errorf("cell event malformed: %v", cell)
	}
	if cell["dur"].(float64) <= 0 {
		t.Errorf("cell span has no duration: %v", cell)
	}
	args := cell["args"].(map[string]any)
	if args["node"] != "3" || args["attempts"] != "1" {
		t.Errorf("cell args = %v", args)
	}
	if inst := byName["measure-timeout"]; inst["ph"] != "i" || inst["s"] != "t" || inst["tid"].(float64) != 2 {
		t.Errorf("instant malformed: %v", inst)
	}
	if cnt := byName["workers-busy"]; cnt["ph"] != "C" || cnt["args"].(map[string]any)["workers-busy"].(float64) != 4 {
		t.Errorf("counter malformed: %v", cnt)
	}
	// Nesting: the inner span must lie within the outer span's interval.
	sweep := byName["sweep"]
	so, do := sweep["ts"].(float64), sweep["dur"].(float64)
	si, di := cell["ts"].(float64), cell["dur"].(float64)
	if si < so || si+di > so+do {
		t.Errorf("inner span [%g,%g] escapes outer [%g,%g]", si, si+di, so, so+do)
	}
}

// TestTraceDeterministic: two identical instrumented runs under the fake
// clock serialize byte-identically.
func TestTraceDeterministic(t *testing.T) {
	run := func() []byte {
		tr := NewTracerFunc(StepClock(time.Microsecond))
		for i := 0; i < 3; i++ {
			sp := tr.StartSpan("outer", "a", Int("i", i))
			in := sp.StartSpan("inner", "b", Float("f", 0.125))
			in.End()
			sp.End()
		}
		tr.Instant("done", "a")
		var buf bytes.Buffer
		if err := tr.WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	a, b := run(), run()
	if !bytes.Equal(a, b) {
		t.Errorf("identical runs produced different traces:\n%s\n---\n%s", a, b)
	}
}

// TestStageReportAndWallTime: aggregation by category, ordering by total
// descending, and wall time as the span extent.
func TestStageReportAndWallTime(t *testing.T) {
	var now time.Duration
	tr := NewTracerFunc(func() time.Duration { return now })
	span := func(cat string, start, dur time.Duration) {
		now = start
		s := tr.StartSpan("s", cat)
		now = start + dur
		s.End()
	}
	span("measure", 0, 10*time.Millisecond)
	span("measure", 10*time.Millisecond, 10*time.Millisecond)
	span("classify", 20*time.Millisecond, 5*time.Millisecond)
	tr.Instant("noise", "resilience") // instants don't count

	rows := tr.StageReport()
	if len(rows) != 2 {
		t.Fatalf("rows = %+v, want 2", rows)
	}
	if rows[0].Stage != "measure" || rows[0].Spans != 2 || rows[0].Total != 20*time.Millisecond {
		t.Errorf("rows[0] = %+v", rows[0])
	}
	if rows[1].Stage != "classify" || rows[1].Total != 5*time.Millisecond {
		t.Errorf("rows[1] = %+v", rows[1])
	}
	if got := tr.WallTime(); got != 25*time.Millisecond {
		t.Errorf("WallTime = %v, want 25ms", got)
	}
}

// TestTracerConcurrent: hammer the tracer from 32 goroutines under -race;
// every recorded event must survive intact.
func TestTracerConcurrent(t *testing.T) {
	tr := NewTracer()
	const workers, per = 32, 50
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				sp := tr.StartSpanOn(w, "work", "stress", Int("i", i))
				sp.StartSpan("child", "stress").End()
				sp.End()
				tr.InstantOn(w, "tick", "stress")
				tr.Count("busy", float64(w))
			}
		}(w)
	}
	wg.Wait()
	if got, want := tr.Len(), workers*per*4; got != want {
		t.Fatalf("Len = %d, want %d", got, want)
	}
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if !json.Valid(buf.Bytes()) {
		t.Error("concurrent trace is not valid JSON")
	}
	if n := strings.Count(buf.String(), `"ph":"X"`); n != workers*per*2 {
		t.Errorf("trace has %d complete spans, want %d", n, workers*per*2)
	}
}
