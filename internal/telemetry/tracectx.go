package telemetry

import (
	"context"
	"crypto/rand"
	"encoding/hex"
)

// TraceCtxHeader is the HTTP header carrying the trace context across
// process hops: numaioload → numaiogw → numaiod, including proxy failover
// and model-pull hops. The value follows the W3C traceparent shape,
//
//	00-<32 hex trace id>-<16 hex span id>-01
//
// with the version and flags fields fixed; only the trace and span IDs
// are meaningful here.
const TraceCtxHeader = "X-Trace-Ctx"

// TraceContext identifies one request's position in a fleet-wide trace:
// the trace ID shared by every hop, and the span ID of the hop that sent
// it (the receiver's parent). The zero value means "no context".
type TraceContext struct {
	TraceID string // 32 lowercase hex digits
	SpanID  string // 16 lowercase hex digits
}

// NewTraceContext mints a root context with random trace and span IDs.
func NewTraceContext() TraceContext {
	var b [24]byte
	mustRandRead(b[:])
	return TraceContext{
		TraceID: hex.EncodeToString(b[:16]),
		SpanID:  hex.EncodeToString(b[16:]),
	}
}

// Child keeps the trace ID and mints a fresh span ID — the context a hop
// attaches to its own span and forwards downstream, so the downstream
// span's parent is this hop rather than this hop's caller.
func (c TraceContext) Child() TraceContext {
	var b [8]byte
	mustRandRead(b[:])
	return TraceContext{TraceID: c.TraceID, SpanID: hex.EncodeToString(b[:])}
}

// Valid reports whether the context carries both IDs.
func (c TraceContext) Valid() bool { return c.TraceID != "" && c.SpanID != "" }

// String renders the context as the TraceCtxHeader value. The zero
// context renders an invalid value; callers guard with Valid.
func (c TraceContext) String() string {
	return "00-" + c.TraceID + "-" + c.SpanID + "-01"
}

// ParseTraceContext parses a TraceCtxHeader value. Malformed or all-zero
// values are rejected, so propagation degrades to a fresh trace instead
// of failing the request.
func ParseTraceContext(s string) (TraceContext, bool) {
	// 00-<32 hex>-<16 hex>-<2 hex>
	if len(s) != 55 || s[0] != '0' || s[1] != '0' || s[2] != '-' || s[35] != '-' || s[52] != '-' {
		return TraceContext{}, false
	}
	tid, sid := s[3:35], s[36:52]
	if !isLowerHex(tid) || !isLowerHex(sid) || !isLowerHex(s[53:]) {
		return TraceContext{}, false
	}
	if allZero(tid) || allZero(sid) {
		return TraceContext{}, false
	}
	return TraceContext{TraceID: tid, SpanID: sid}, true
}

func isLowerHex(s string) bool {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

func allZero(s string) bool {
	for i := 0; i < len(s); i++ {
		if s[i] != '0' {
			return false
		}
	}
	return true
}

// mustRandRead fills b from crypto/rand. Read never fails on supported
// platforms; if it somehow does, the zero bytes yield an all-zero (and
// therefore invalid, unparseable) context rather than a panic in the
// request path.
func mustRandRead(b []byte) {
	_, _ = rand.Read(b)
}

type traceCtxKey struct{}

// ContextWithTrace returns ctx carrying tc, so outbound hops made on
// behalf of the request (e.g. a model-pull) can propagate the context.
func ContextWithTrace(ctx context.Context, tc TraceContext) context.Context {
	return context.WithValue(ctx, traceCtxKey{}, tc)
}

// TraceFromContext returns the trace context stored by ContextWithTrace.
func TraceFromContext(ctx context.Context) (TraceContext, bool) {
	tc, ok := ctx.Value(traceCtxKey{}).(TraceContext)
	return tc, ok && tc.Valid()
}
