package telemetry

import "sync/atomic"

// TraceControl owns a process's /debug/trace lifecycle: at most one
// active tracer, plus the most recently stopped one so a completed
// recording stays downloadable after tracing ends. All methods are safe
// for concurrent use — start, stop and download may race each other and
// live requests. numaiod and numaiogw each embed one behind their
// /debug/trace endpoints.
type TraceControl struct {
	active atomic.Pointer[Tracer]
	last   atomic.Pointer[Tracer]
}

// Start installs a fresh tracer and returns it. A recording already in
// progress is stopped and becomes the last trace.
func (c *TraceControl) Start() *Tracer {
	t := NewTracer()
	if old := c.active.Swap(t); old != nil {
		c.last.Store(old)
	}
	return t
}

// Stop halts recording and returns the stopped tracer, or the previous
// last trace when nothing was active (nil if there has never been one) —
// so a stop response can always report the frozen recording's size.
func (c *TraceControl) Stop() *Tracer {
	if old := c.active.Swap(nil); old != nil {
		c.last.Store(old)
		return old
	}
	return c.last.Load()
}

// Active returns the tracer currently recording, or nil. Request paths
// call this once per request; the nil-tracer no-op contract keeps the
// untraced path to a single atomic load.
func (c *TraceControl) Active() *Tracer { return c.active.Load() }

// Tracing reports whether a recording is in progress.
func (c *TraceControl) Tracing() bool { return c.active.Load() != nil }

// Current returns the active tracer, else the last stopped one, else nil
// — the recording /debug/trace serves.
func (c *TraceControl) Current() *Tracer {
	if t := c.active.Load(); t != nil {
		return t
	}
	return c.last.Load()
}
