package service

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"numaio/internal/core"
)

func model(fp string) *core.MachineModel {
	return &core.MachineModel{Machine: "m", Fingerprint: fp}
}

func TestCacheTTLExpiry(t *testing.T) {
	c := NewModelCache(4, time.Minute)
	now := time.Unix(1000, 0)
	c.now = func() time.Time { return now }

	computes := 0
	get := func() (*core.MachineModel, bool, error) {
		return c.GetOrCompute("k", func() (*core.MachineModel, error) {
			computes++
			return model("fp"), nil
		})
	}

	if _, cached, _ := get(); cached {
		t.Error("first lookup claims a hit")
	}
	if _, cached, _ := get(); !cached {
		t.Error("second lookup within TTL missed")
	}
	now = now.Add(2 * time.Minute)
	// The expired entry is a miss for Get, but is retained as the stale
	// fallback until recomputed or evicted by capacity pressure.
	if _, ok := c.Get("k"); ok {
		t.Error("Get returned an expired entry")
	}
	if mm, ok := c.GetStale("k"); !ok || mm == nil {
		t.Error("expired entry not retained for GetStale")
	}
	if s := c.Stats(); s.Stale != 1 || s.Evictions != 0 {
		t.Errorf("stats after expiry = %+v, want 1 stale and 0 evictions", s)
	}
	if _, cached, _ := get(); cached {
		t.Error("lookup after TTL still hit")
	}
	if computes != 2 {
		t.Errorf("computed %d times, want 2", computes)
	}
	// The recompute refreshed the entry: no longer stale.
	if s := c.Stats(); s.Stale != 0 {
		t.Errorf("stale = %d after refresh, want 0", s.Stale)
	}
	if _, ok := c.GetStale("missing"); ok {
		t.Error("GetStale invented an entry")
	}
}

func TestCacheLRUEviction(t *testing.T) {
	c := NewModelCache(2, 0) // no TTL
	add := func(key string) {
		c.GetOrCompute(key, func() (*core.MachineModel, error) { return model(key), nil })
	}
	add("a")
	add("b")
	// Touch "a" so "b" is the LRU victim.
	if _, ok := c.Get("a"); !ok {
		t.Fatal("a missing before eviction")
	}
	add("c")
	if c.Len() != 2 {
		t.Errorf("cache holds %d entries, want 2", c.Len())
	}
	if _, ok := c.Get("b"); ok {
		t.Error("LRU entry b survived eviction")
	}
	if _, ok := c.Get("a"); !ok {
		t.Error("recently-used entry a was evicted")
	}
	if _, ok := c.FindByFingerprint("c"); !ok {
		t.Error("FindByFingerprint misses live entry c")
	}
	if _, ok := c.FindByFingerprint("b"); ok {
		t.Error("FindByFingerprint returns evicted entry b")
	}
}

func TestCacheCoalescing(t *testing.T) {
	c := NewModelCache(4, time.Minute)
	started := make(chan struct{})
	release := make(chan struct{})
	var computes int
	var wg sync.WaitGroup

	wg.Add(1)
	go func() {
		defer wg.Done()
		c.GetOrCompute("k", func() (*core.MachineModel, error) {
			computes++
			close(started)
			<-release
			return model("fp"), nil
		})
	}()
	<-started

	const followers = 4
	for i := 0; i < followers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			mm, cached, err := c.GetOrCompute("k", func() (*core.MachineModel, error) {
				t.Error("follower computed despite in-flight leader")
				return model("fp"), nil
			})
			if err != nil || mm == nil || !cached {
				t.Errorf("follower got (%v, %v, %v)", mm, cached, err)
			}
		}()
	}
	// Give the followers a moment to attach to the flight, then let the
	// leader finish.
	time.Sleep(10 * time.Millisecond)
	close(release)
	wg.Wait()

	if computes != 1 {
		t.Errorf("computed %d times, want 1", computes)
	}
	if s := c.Stats(); s.Misses != 1 || s.Coalesced == 0 {
		t.Errorf("stats = %+v, want 1 miss and >0 coalesced", s)
	}
}

func TestCacheComputeErrorNotCached(t *testing.T) {
	c := NewModelCache(4, time.Minute)
	computes := 0
	fail := func() (*core.MachineModel, error) {
		computes++
		return nil, fmt.Errorf("boom")
	}
	if _, _, err := c.GetOrCompute("k", fail); err == nil {
		t.Fatal("error swallowed")
	}
	if _, _, err := c.GetOrCompute("k", fail); err == nil {
		t.Fatal("error cached as success")
	}
	if computes != 2 {
		t.Errorf("failed computes cached: ran %d times, want 2", computes)
	}
	if c.Len() != 0 {
		t.Errorf("failed compute left %d entries", c.Len())
	}
}

func TestPoolBoundsAndDrain(t *testing.T) {
	p := NewPool(1)

	// The single slot serializes: a second Acquire must wait for Release.
	if err := p.Acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if err := p.Acquire(ctx); err == nil {
		t.Fatal("second Acquire succeeded with the slot held")
	}
	if got := p.InFlight(); got != 1 {
		t.Errorf("InFlight = %d, want 1", got)
	}
	p.Release()

	// Drain waits for submitted jobs, then refuses new work.
	done := make(chan struct{})
	if err := p.Submit(func() {
		if err := p.Acquire(context.Background()); err != nil {
			t.Error(err)
			return
		}
		defer p.Release()
		time.Sleep(20 * time.Millisecond)
		close(done)
	}); err != nil {
		t.Fatal(err)
	}
	ctx2, cancel2 := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel2()
	if err := p.Drain(ctx2); err != nil {
		t.Fatal(err)
	}
	select {
	case <-done:
	default:
		t.Error("Drain returned before the submitted job finished")
	}
	if err := p.Submit(func() {}); err == nil {
		t.Error("Submit accepted work after Drain")
	}
}
