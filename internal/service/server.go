// Package service is the model-serving daemon behind cmd/numaiod: an HTTP
// JSON API (stdlib net/http only) that characterizes machines with
// Algorithm 1 once, caches the resulting models by topology fingerprint,
// and serves predictions (Eq. 1), placements (internal/sched and
// internal/cluster policies) and what-if diffs hot.
//
// The paper's Sec. V-B point is that characterization is expensive and
// should be amortized; the cache plus singleflight coalescing in this
// package is the systems embodiment of that: a fleet of identical requests
// costs one characterization.
package service

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"time"

	"numaio/internal/core"
	"numaio/internal/numa"
	"numaio/internal/topology"
)

// CharacterizeFunc runs Algorithm 1 for a whole machine. The daemon uses
// the real characterizer; tests inject counters or stubs.
type CharacterizeFunc func(m *topology.Machine, cfg core.Config) (*core.MachineModel, error)

// DefaultCharacterize boots a simulated system on the machine and runs the
// whole-host characterization.
func DefaultCharacterize(m *topology.Machine, cfg core.Config) (*core.MachineModel, error) {
	sys, err := numa.NewSystem(m)
	if err != nil {
		return nil, err
	}
	c, err := core.NewCharacterizer(sys, cfg)
	if err != nil {
		return nil, err
	}
	return c.CharacterizeAll()
}

// Config tunes the daemon.
type Config struct {
	// Workers bounds concurrent characterizations; 0 means 4.
	Workers int
	// Parallelism is the worker-pool width each characterization fans its
	// (target, mode) sweeps over (core.Config.Parallelism); 0 means the
	// pool width (Workers). Parallelism changes wall time only, never the
	// model, so it is excluded from cache keys.
	Parallelism int
	// CacheEntries bounds the model cache; 0 means 64.
	CacheEntries int
	// CacheTTL expires cached models; 0 means 1 hour, negative disables
	// expiry.
	CacheTTL time.Duration
	// Logger receives structured request logs; nil discards them.
	Logger *slog.Logger
	// Characterize overrides the Algorithm 1 runner (tests); nil uses
	// DefaultCharacterize.
	Characterize CharacterizeFunc
}

// Server is the daemon state: cache, worker pool, job registry, metrics
// and the HTTP handler tree.
type Server struct {
	log          *slog.Logger
	cache        *ModelCache
	pool         *Pool
	jobs         *JobRegistry
	metrics      *Metrics
	mux          *http.ServeMux
	characterize CharacterizeFunc
	parallelism  int
}

// New builds a server from the config.
func New(cfg Config) *Server {
	ttl := cfg.CacheTTL
	if ttl == 0 {
		ttl = time.Hour
	}
	logger := cfg.Logger
	if logger == nil {
		logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	ch := cfg.Characterize
	if ch == nil {
		ch = DefaultCharacterize
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = 4
	}
	parallelism := cfg.Parallelism
	if parallelism <= 0 {
		parallelism = workers
	}
	s := &Server{
		log:          logger,
		cache:        NewModelCache(cfg.CacheEntries, ttl),
		pool:         NewPool(workers),
		jobs:         NewJobRegistry(),
		metrics:      NewMetrics(),
		mux:          http.NewServeMux(),
		characterize: ch,
		parallelism:  parallelism,
	}
	s.metrics.SetParallelism(parallelism)
	s.routes()
	return s
}

func (s *Server) routes() {
	s.handle("GET /healthz", "/healthz", s.handleHealthz)
	s.handle("GET /metrics", "/metrics", s.handleMetrics)
	s.handle("POST /v1/characterize", "/v1/characterize", s.handleCharacterize)
	s.handle("GET /v1/models/{fingerprint}", "/v1/models", s.handleModel)
	s.handle("GET /v1/jobs/{id}", "/v1/jobs", s.handleJob)
	s.handle("POST /v1/predict", "/v1/predict", s.handlePredict)
	s.handle("POST /v1/place", "/v1/place", s.handlePlace)
	s.handle("POST /v1/whatif", "/v1/whatif", s.handleWhatif)
}

// handle registers a pattern under the logging/metrics middleware. The
// endpoint label aggregates path parameters (e.g. every /v1/models/{fp}
// request counts under "/v1/models").
func (s *Server) handle(pattern, endpoint string, h http.HandlerFunc) {
	s.mux.HandleFunc(pattern, func(w http.ResponseWriter, r *http.Request) {
		rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		start := time.Now()
		h(rec, r)
		s.metrics.ObserveRequest(endpoint, rec.status)
		s.log.Info("request",
			"method", r.Method,
			"path", r.URL.Path,
			"status", rec.status,
			"duration", time.Since(start),
			"bytes", rec.bytes,
			"remote", r.RemoteAddr)
	})
}

type statusRecorder struct {
	http.ResponseWriter
	status int
	bytes  int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.status = code
	r.ResponseWriter.WriteHeader(code)
}

func (r *statusRecorder) Write(p []byte) (int, error) {
	n, err := r.ResponseWriter.Write(p)
	r.bytes += n
	return n, err
}

// Handler returns the daemon's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Cache exposes the model cache (metrics, tests).
func (s *Server) Cache() *ModelCache { return s.cache }

// Metrics exposes the metrics registry (tests).
func (s *Server) Metrics() *Metrics { return s.metrics }

// Drain stops admitting async work and waits for in-flight jobs, honouring
// ctx as the deadline. Call after http.Server.Shutdown during graceful
// termination.
func (s *Server) Drain(ctx context.Context) error { return s.pool.Drain(ctx) }

// characterizeCached resolves the machine's fingerprint and returns its
// whole-host model, computing it at most once per (fingerprint, config)
// across concurrent callers. The bool reports a cache (or coalesced) hit.
func (s *Server) characterizeCached(ctx context.Context, m *topology.Machine, cfg core.Config) (*core.MachineModel, string, bool, error) {
	fp, err := topology.Fingerprint(m)
	if err != nil {
		return nil, "", false, err
	}
	if cfg.Parallelism == 0 {
		cfg.Parallelism = s.parallelism
	}
	// Parallelism is deliberately absent from the key: parallel and serial
	// characterizations are bit-identical, so they share a cache entry.
	key := fmt.Sprintf("%s|t%d r%d b%d g%g s%g",
		fp, cfg.Threads, cfg.Repeats, int64(cfg.BytesPerThread), cfg.GapThreshold, cfg.Sigma)
	mm, cached, err := s.cache.GetOrCompute(key, func() (*core.MachineModel, error) {
		if err := s.pool.Acquire(ctx); err != nil {
			return nil, err
		}
		defer s.pool.Release()
		start := time.Now()
		mm, err := s.characterize(m, cfg)
		if err != nil {
			return nil, err
		}
		s.metrics.ObserveCharacterization(time.Since(start))
		mm.Fingerprint = fp
		return mm, nil
	})
	return mm, fp, cached, err
}

// writeJSON encodes v with a status code.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// apiError is the uniform error body.
type apiError struct {
	Error string `json:"error"`
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, apiError{Error: fmt.Sprintf(format, args...)})
}

// decodeBody strictly decodes a JSON request body into v.
func decodeBody(r *http.Request, v any) error {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("invalid JSON body: %w", err)
	}
	return nil
}
