// Package service is the model-serving daemon behind cmd/numaiod: an HTTP
// JSON API (stdlib net/http only) that characterizes machines with
// Algorithm 1 once, caches the resulting models by topology fingerprint,
// and serves predictions (Eq. 1), placements (internal/sched and
// internal/cluster policies) and what-if diffs hot.
//
// The paper's Sec. V-B point is that characterization is expensive and
// should be amortized; the cache plus singleflight coalescing in this
// package is the systems embodiment of that: a fleet of identical requests
// costs one characterization.
package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"numaio/internal/core"
	"numaio/internal/fabric"
	"numaio/internal/numa"
	"numaio/internal/resilience"
	"numaio/internal/telemetry"
	"numaio/internal/topology"
)

// ErrCircuitOpen is returned (as a 503) when a model's circuit breaker is
// open after repeated characterization failures and no stale fallback
// exists.
var ErrCircuitOpen = errors.New("service: characterization suspended (circuit open)")

// CharacterizeFunc runs Algorithm 1 for a whole machine. The daemon uses
// the real characterizer; tests inject counters or stubs. The context
// carries the request deadline — implementations should abandon work when
// it is done.
type CharacterizeFunc func(ctx context.Context, m *topology.Machine, cfg core.Config) (*core.MachineModel, error)

// DefaultCharacterize boots a simulated system on the machine and runs the
// whole-host characterization.
func DefaultCharacterize(ctx context.Context, m *topology.Machine, cfg core.Config) (*core.MachineModel, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	sys, err := numa.NewSystem(m)
	if err != nil {
		return nil, err
	}
	c, err := core.NewCharacterizer(sys, cfg)
	if err != nil {
		return nil, err
	}
	return c.CharacterizeAll()
}

// Config tunes the daemon.
type Config struct {
	// Workers bounds concurrent characterizations; 0 means 4.
	Workers int
	// Parallelism is the worker-pool width each characterization fans its
	// (target, mode) sweeps over (core.Config.Parallelism); 0 means the
	// pool width (Workers). Parallelism changes wall time only, never the
	// model, so it is excluded from cache keys.
	Parallelism int
	// CacheEntries bounds the model cache; 0 means 64.
	CacheEntries int
	// CacheTTL expires cached models; 0 means 1 hour, negative disables
	// expiry.
	CacheTTL time.Duration
	// RespCacheEntries bounds the per-endpoint response caches (rendered
	// predict/place bodies keyed by canonical request shape); 0 means 1024,
	// negative disables response caching. Entries share CacheTTL — they are
	// deterministic, so the TTL only bounds memory.
	RespCacheEntries int
	// Logger receives structured request logs; nil discards them.
	Logger *slog.Logger
	// Characterize overrides the Algorithm 1 runner (tests); nil uses
	// DefaultCharacterize.
	Characterize CharacterizeFunc

	// RequestTimeout bounds each request's context; 0 means no limit. A
	// characterization that overruns it is abandoned and reported as 504.
	RequestTimeout time.Duration
	// Retries is the retry budget for a failed characterization, with
	// exponential backoff from RetryBackoff between attempts; 0 disables
	// retrying (the historical behaviour).
	Retries int
	// RetryBackoff is the base backoff between retries; 0 means 100ms.
	RetryBackoff time.Duration
	// BreakerThreshold opens a per-model circuit breaker after this many
	// consecutive characterization failures, so a persistently failing
	// machine stops consuming worker slots; 0 disables the breaker.
	BreakerThreshold int
	// BreakerCooldown is how long an open breaker waits before admitting
	// a probe; 0 means 30s.
	BreakerCooldown time.Duration
	// Clock drives request deadlines, retry backoff and breaker
	// cooldowns; nil means the system clock. Tests inject fakes so
	// resilience paths run without real sleeps.
	Clock resilience.Clock

	// PullClient performs outbound model fetches for the replication pull
	// hook (POST /v1/models/pull); nil means a 30s-timeout client.
	PullClient *http.Client

	// FlightRecorderSize bounds the always-on flight recorder ring (recent
	// request and resilience events, dumped via /debug/flightrecorder and
	// on failures); 0 means 4096 events, negative disables the recorder.
	FlightRecorderSize int
	// FlightDump, when non-nil, receives an automatic flight-recorder dump
	// on request failure (5xx) and breaker-open transitions, rate-limited
	// to one dump per second. cmd/numaiod points it at stderr and also
	// dumps on SIGQUIT via DumpFlightRecorder.
	FlightDump io.Writer
}

// Server is the daemon state: cache, worker pool, job registry, metrics
// and the HTTP handler tree.
type Server struct {
	log          *slog.Logger
	cache        *ModelCache
	predictCache *RespCache
	placeCache   *RespCache
	pool         *Pool
	jobs         *JobRegistry
	metrics      *Metrics
	registry     *telemetry.Registry
	mux          *http.ServeMux
	characterize CharacterizeFunc
	parallelism  int
	pullClient   *http.Client

	// installs counts models installed by the fleet replication hooks
	// (push or pull) — the numaiod_models_installed_total series.
	installs telemetry.Counter

	// traces owns the /debug/trace lifecycle: the active recording plus
	// the last stopped one, both still readable by in-flight spans.
	traces telemetry.TraceControl

	// flight is the always-on flight recorder (nil when disabled);
	// flightDump receives automatic dumps on request failures and
	// breaker-open transitions, rate-limited via lastFlightDump.
	flight         *telemetry.FlightRecorder
	flightDump     io.Writer
	lastFlightDump atomic.Int64

	requestTimeout   time.Duration
	retry            resilience.RetryPolicy
	breakerThreshold int
	breakerCooldown  time.Duration
	clock            resilience.Clock

	brMu     sync.Mutex
	breakers map[string]*resilience.Breaker
}

// New builds a server from the config.
func New(cfg Config) *Server {
	ttl := cfg.CacheTTL
	if ttl == 0 {
		ttl = time.Hour
	}
	logger := cfg.Logger
	if logger == nil {
		logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	ch := cfg.Characterize
	if ch == nil {
		ch = DefaultCharacterize
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = 4
	}
	parallelism := cfg.Parallelism
	if parallelism <= 0 {
		parallelism = workers
	}
	clock := cfg.Clock
	if clock == nil {
		clock = resilience.SystemClock{}
	}
	backoff := cfg.RetryBackoff
	if backoff == 0 {
		backoff = 100 * time.Millisecond
	}
	cooldown := cfg.BreakerCooldown
	if cooldown == 0 {
		cooldown = 30 * time.Second
	}
	pullClient := cfg.PullClient
	if pullClient == nil {
		pullClient = &http.Client{Timeout: 30 * time.Second}
	}
	var flight *telemetry.FlightRecorder
	if cfg.FlightRecorderSize >= 0 {
		size := cfg.FlightRecorderSize
		if size == 0 {
			size = 4096
		}
		flight = telemetry.NewFlightRecorder(size)
	}
	s := &Server{
		log:          logger,
		cache:        NewModelCache(cfg.CacheEntries, ttl),
		predictCache: NewRespCache(cfg.RespCacheEntries, ttl),
		placeCache:   NewRespCache(cfg.RespCacheEntries, ttl),
		pool:         NewPool(workers),
		jobs:         NewJobRegistry(),
		metrics:      NewMetrics(),
		mux:          http.NewServeMux(),
		characterize: ch,
		parallelism:  parallelism,
		pullClient:   pullClient,
		flight:       flight,
		flightDump:   cfg.FlightDump,

		requestTimeout:   cfg.RequestTimeout,
		retry:            resilience.RetryPolicy{MaxRetries: cfg.Retries, Base: backoff},
		breakerThreshold: cfg.BreakerThreshold,
		breakerCooldown:  cooldown,
		clock:            clock,
		breakers:         make(map[string]*resilience.Breaker),
	}
	s.metrics.SetParallelism(parallelism)
	s.registry = newExtraRegistry(s)
	s.routes()
	return s
}

// newExtraRegistry builds the telemetry registry rendered after the
// historical metrics block on /metrics: solver and pool counters from
// internal/fabric, measurement-worker occupancy from internal/core, and
// the trace recorder's state. Pre-existing metric names are untouched —
// these series are strictly additive.
func newExtraRegistry(s *Server) *telemetry.Registry {
	r := telemetry.NewRegistry()
	r.IntCounterFunc("numaiod_solver_solves_total",
		"Successful fabric solver passes (water-filling allocations).",
		func() int64 { return fabric.ReadStats().Solves })
	r.FloatCounterFunc("numaiod_solver_solve_seconds_total",
		"Total wall time spent in fabric solver passes.",
		func() float64 { return float64(fabric.ReadStats().SolveNanos) / 1e9 })
	r.IntCounterFunc("numaiod_solver_resets_total",
		"Solver flow-set resets (fluid-session reuse between runs).",
		func() int64 { return fabric.ReadStats().Resets })
	r.IntCounterFunc("numaiod_solver_incremental_total",
		"Solver passes served from converged state (dirty components only).",
		func() int64 { return fabric.ReadStats().IncrementalSolves })
	r.IntCounterFunc("numaiod_solver_full_total",
		"Solver passes that re-leveled every flow from scratch.",
		func() int64 { return fabric.ReadStats().FullSolves })
	r.IntCounterFunc("numaiod_solver_pool_hits_total",
		"AcquireSolver calls served from the solver pool.",
		func() int64 { return fabric.ReadStats().PoolHits() })
	r.IntCounterFunc("numaiod_solver_pool_misses_total",
		"AcquireSolver calls that constructed a fresh solver.",
		func() int64 { return fabric.ReadStats().PoolNews })
	r.IntCounterFunc("numaiod_models_installed_total",
		"Models installed by the fleet replication hooks (push or pull).",
		s.installs.Value)
	r.IntGaugeFunc("numaiod_measure_workers_busy",
		"Measurement workers currently executing a characterization cell.",
		core.ActiveMeasureWorkers)
	r.IntGaugeFunc("numaiod_trace_active",
		"Whether a /debug/trace recording is in progress.",
		func() int64 {
			if s.traces.Tracing() {
				return 1
			}
			return 0
		})
	r.IntGaugeFunc("numaiod_trace_events",
		"Events recorded by the active (or last stopped) trace.",
		func() int64 { return int64(s.traces.Current().Len()) })
	r.IntGaugeFunc("numaiod_flight_events",
		"Events currently retained by the always-on flight recorder.",
		func() int64 { return int64(s.flight.Len()) })
	r.Register(telemetry.Series{
		Name: "numaiod_request_seconds",
		Type: "histogram",
		Help: "v1 request latency, with the last request ID per bucket as an OpenMetrics-style exemplar.",
		Collect: func(w io.Writer) {
			h := s.metrics.RequestLatency()
			counts := h.Counts()
			bounds := h.Bounds()
			var cum int64
			writeBucket := func(le string, i int) {
				fmt.Fprintf(w, "numaiod_request_seconds_bucket{le=%q} %d", le, cum)
				if ex := h.Exemplar(i); ex != "" {
					fmt.Fprintf(w, " # {request_id=%q}", ex)
				}
				fmt.Fprintln(w)
			}
			for i, le := range bounds {
				cum += counts[i]
				writeBucket(strconv.FormatFloat(le, 'g', -1, 64), i)
			}
			cum += counts[len(bounds)]
			writeBucket("+Inf", len(bounds))
			fmt.Fprintf(w, "numaiod_request_seconds_sum %g\n", h.Sum())
			fmt.Fprintf(w, "numaiod_request_seconds_count %d\n", h.Total())
		},
	})
	return r
}

func (s *Server) routes() {
	s.handle("GET /healthz", "/healthz", s.handleHealthz)
	s.handle("GET /metrics", "/metrics", s.handleMetrics)
	s.handle("POST /v1/characterize", "/v1/characterize", s.handleCharacterize)
	s.handle("GET /v1/models/{fingerprint}", "/v1/models", s.handleModel)
	s.handle("PUT /v1/models/{fingerprint}", "/v1/models", s.handleModelInstall)
	s.handle("POST /v1/models/pull", "/v1/models/pull", s.handleModelPull)
	s.handle("GET /v1/jobs/{id}", "/v1/jobs", s.handleJob)
	s.handle("POST /v1/predict", "/v1/predict", s.handlePredict)
	s.handle("POST /v1/predict/batch", "/v1/predict/batch", s.handlePredictBatch)
	s.handle("POST /v1/place", "/v1/place", s.handlePlace)
	s.handle("POST /v1/whatif", "/v1/whatif", s.handleWhatif)
	s.handle("POST /debug/trace/start", "/debug/trace/start", s.handleTraceStart)
	s.handle("POST /debug/trace/stop", "/debug/trace/stop", s.handleTraceStop)
	s.handle("GET /debug/trace", "/debug/trace", s.handleTraceDownload)
	s.handle("GET /debug/flightrecorder", "/debug/flightrecorder", s.handleFlightRecorder)
}

// handle registers a pattern under the logging/metrics middleware. The
// endpoint label aggregates path parameters (e.g. every /v1/models/{fp}
// request counts under "/v1/models"). A configured RequestTimeout becomes
// the request context's deadline here, so every handler inherits it.
//
// The middleware also owns trace-context propagation: an inbound
// X-Trace-Ctx header (W3C traceparent syntax) is parsed and a child span
// context derived from it — or a fresh one minted when absent/malformed —
// echoed on the response and threaded through the request context so
// downstream hops (model pulls) carry the same trace ID. v1 endpoints
// additionally get a per-request stage breakdown (Server-Timing header),
// the whole-request latency histogram with request-ID exemplars, and a
// flight-recorder event.
func (s *Server) handle(pattern, endpoint string, h http.HandlerFunc) {
	isV1 := strings.HasPrefix(endpoint, "/v1/")
	s.mux.HandleFunc(pattern, func(w http.ResponseWriter, r *http.Request) {
		rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		start := time.Now()
		// A request ID arriving from the gateway (or any client) is echoed
		// on the response and joined to the request log, so one forwarded
		// request is traceable across hops.
		rid := r.Header.Get("X-Request-Id")
		if rid != "" {
			w.Header().Set("X-Request-Id", rid)
		}
		var tc telemetry.TraceContext
		if in, ok := telemetry.ParseTraceContext(r.Header.Get(telemetry.TraceCtxHeader)); ok {
			tc = in.Child()
		} else {
			tc = telemetry.NewTraceContext()
		}
		w.Header().Set(telemetry.TraceCtxHeader, tc.String())
		r = r.WithContext(telemetry.ContextWithTrace(r.Context(), tc))
		var stg *telemetry.Stages
		if isV1 {
			stg = telemetry.NewStages()
			rec.stages = stg
			r = r.WithContext(telemetry.ContextWithStages(r.Context(), stg))
		}
		if s.requestTimeout > 0 {
			ctx, cancel := resilience.ContextWithTimeout(r.Context(), s.clock, s.requestTimeout)
			defer cancel()
			r = r.WithContext(ctx)
		}
		// One span per request on the active trace. The explicit nil guard
		// (rather than relying on nil-tracer no-ops) keeps the untraced
		// fast path free of the variadic attr allocations.
		var span *telemetry.Span
		if tr := s.traces.Active(); tr != nil {
			span = tr.StartSpan(endpoint, "http",
				telemetry.String("method", r.Method),
				telemetry.String("trace_id", tc.TraceID),
				telemetry.String("span_id", tc.SpanID))
		}
		h(rec, r)
		if span != nil {
			span.SetAttr(telemetry.Int("status", rec.status))
			span.End()
		}
		elapsed := time.Since(start)
		s.metrics.ObserveRequest(endpoint, rec.status)
		if isV1 {
			s.metrics.ObserveRequestLatency(elapsed.Seconds(), rid)
			s.flight.Record(telemetry.FlightEvent{
				Time:    start.UnixNano(),
				Dur:     elapsed,
				Status:  rec.status,
				Name:    endpoint,
				Cat:     "http",
				RID:     rid,
				TraceID: tc.TraceID,
			})
			if rec.status >= http.StatusInternalServerError {
				s.dumpFlight(fmt.Sprintf("status %d on %s", rec.status, endpoint))
			}
		}
		attrs := []any{
			"method", r.Method,
			"path", r.URL.Path,
			"status", rec.status,
			"duration", elapsed,
			"bytes", rec.bytes,
			"remote", r.RemoteAddr,
			"trace_id", tc.TraceID,
		}
		if rid != "" {
			attrs = append(attrs, "request_id", rid)
		}
		attrs = stg.AppendLogAttrs(attrs)
		s.log.Info("request", attrs...)
	})
}

// statusRecorder captures the response status and byte count, and — when
// the middleware attached a stage breakdown — injects the Server-Timing
// header at WriteHeader time, the last moment headers are mutable.
type statusRecorder struct {
	http.ResponseWriter
	status int
	bytes  int
	stages *telemetry.Stages
}

func (r *statusRecorder) WriteHeader(code int) {
	if st := r.stages.Header(); st != "" {
		r.ResponseWriter.Header().Set("Server-Timing", st)
	}
	r.status = code
	r.ResponseWriter.WriteHeader(code)
}

func (r *statusRecorder) Write(p []byte) (int, error) {
	n, err := r.ResponseWriter.Write(p)
	r.bytes += n
	return n, err
}

// dumpFlight writes one flight-recorder dump to the configured FlightDump
// writer, rate-limited to one per second so a failure storm cannot flood
// the log stream.
func (s *Server) dumpFlight(reason string) {
	if s.flightDump == nil || s.flight == nil {
		return
	}
	now := time.Now().UnixNano()
	last := s.lastFlightDump.Load()
	if now-last < int64(time.Second) || !s.lastFlightDump.CompareAndSwap(last, now) {
		return
	}
	fmt.Fprintf(s.flightDump, "numaiod flight recorder dump (%s):\n", reason)
	_ = s.flight.WriteJSON(s.flightDump)
	fmt.Fprintln(s.flightDump)
}

// DumpFlightRecorder writes the flight recorder's JSON snapshot to w —
// cmd/numaiod wires it to SIGQUIT. It reports an error when the recorder
// is disabled.
func (s *Server) DumpFlightRecorder(w io.Writer) error {
	if s.flight == nil {
		return errors.New("service: flight recorder disabled")
	}
	return s.flight.WriteJSON(w)
}

// WriteMetrics renders the full /metrics payload: the historical block
// followed by the additive registry series. Exported so tests can pin the
// exposition format without an HTTP round trip.
func (s *Server) WriteMetrics(w io.Writer) {
	s.metrics.WriteTo(w, s.cache.Stats(), s.predictCache.Stats(), s.placeCache.Stats(),
		s.pool.InFlight(), s.openBreakers())
	s.registry.Render(w)
}

// Handler returns the daemon's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Cache exposes the model cache (metrics, tests).
func (s *Server) Cache() *ModelCache { return s.cache }

// Metrics exposes the metrics registry (tests).
func (s *Server) Metrics() *Metrics { return s.metrics }

// Drain stops admitting async work and waits for in-flight jobs, honouring
// ctx as the deadline. Call after http.Server.Shutdown during graceful
// termination.
func (s *Server) Drain(ctx context.Context) error { return s.pool.Drain(ctx) }

// characterizeCached resolves the machine's fingerprint and returns its
// whole-host model, computing it at most once per (fingerprint, config)
// across concurrent callers. The first bool reports a cache (or coalesced)
// hit; the second reports a stale entry served because recomputation
// failed or its circuit breaker is open (graceful degradation: the last
// good model beats a 500).
func (s *Server) characterizeCached(ctx context.Context, m *topology.Machine, cfg core.Config) (*core.MachineModel, string, bool, bool, error) {
	fp, err := topology.Fingerprint(m)
	if err != nil {
		return nil, "", false, false, err
	}
	if cfg.Parallelism == 0 {
		cfg.Parallelism = s.parallelism
	}
	// Record onto the active /debug/trace, if one is running. The tracer
	// shapes no results and configKey never includes it, so traced and
	// untraced runs share cache entries.
	cfg.Tracer = s.traces.Active()
	key := fp + "|" + configKey(cfg)

	br := s.breakerFor(key)
	if br != nil && !br.Allow() {
		if mm, ok := s.cache.GetStale(key); ok {
			s.metrics.ObserveStaleServed()
			return mm, fp, true, true, nil
		}
		return nil, fp, false, false, fmt.Errorf("%w: model %s", ErrCircuitOpen, fp)
	}

	// Stage attribution: queue is the wait for a worker slot, solve the
	// characterization itself (retries included), and cache whatever is
	// left of the lookup — map access plus coalescing waits. A coalesced
	// follower spends its whole wall time here under "cache", which is
	// accurate: it waited on the cache, not on a solver.
	stg := telemetry.StagesFromContext(ctx)
	cacheStart := time.Now()
	mm, cached, err := s.cache.GetOrCompute(key, func() (*core.MachineModel, error) {
		queueStart := time.Now()
		if err := s.pool.Acquire(ctx); err != nil {
			return nil, err
		}
		stg.Add("queue", time.Since(queueStart))
		defer s.pool.Release()
		start := time.Now()
		var mm *core.MachineModel
		rerr := resilience.Retry(ctx, s.clock, s.retry, func(attempt int) error {
			if attempt > 0 {
				s.metrics.ObserveCharacterizeRetry()
				s.log.Warn("retrying characterization", "fingerprint", fp, "attempt", attempt)
			}
			var cerr error
			mm, cerr = s.characterize(ctx, m, cfg)
			if cerr != nil && ctx.Err() == nil {
				// Everything but a dead request context is worth a retry.
				return resilience.MarkTransient(cerr)
			}
			return cerr
		})
		stg.Add("solve", time.Since(start))
		if rerr != nil {
			return nil, rerr
		}
		s.metrics.ObserveCharacterization(time.Since(start))
		mm.Fingerprint = fp
		return mm, nil
	})
	if stg != nil {
		if d := time.Since(cacheStart) - stg.Get("queue") - stg.Get("solve"); d > 0 {
			stg.Add("cache", d)
		}
	}
	// Only the caller that actually computed (or failed to) moves the
	// breaker; cache hits and coalesced followers say nothing about the
	// machine's health.
	if br != nil && !cached {
		if err != nil {
			br.Failure()
		} else {
			br.Success()
		}
	}
	if err != nil {
		if mm, ok := s.cache.GetStale(key); ok {
			s.log.Warn("serving stale model after failed recomputation",
				"fingerprint", fp, "error", err)
			s.metrics.ObserveStaleServed()
			return mm, fp, true, true, nil
		}
		return nil, fp, false, false, err
	}
	return mm, fp, cached, false, nil
}

// breakerFor returns the circuit breaker guarding one cache key, creating
// it on first use; nil when breakers are disabled.
func (s *Server) breakerFor(key string) *resilience.Breaker {
	if s.breakerThreshold <= 0 {
		return nil
	}
	s.brMu.Lock()
	defer s.brMu.Unlock()
	br, ok := s.breakers[key]
	if !ok {
		br = resilience.NewBreaker(s.breakerThreshold, s.breakerCooldown, s.clock)
		br.SetTransitionHook(func(from, to resilience.BreakerState) {
			s.traces.Active().Instant("breaker-"+to.String(), "resilience",
				telemetry.String("from", from.String()),
				telemetry.String("key", key))
			s.flight.Record(telemetry.FlightEvent{
				Time:   time.Now().UnixNano(),
				Name:   "breaker-" + to.String(),
				Cat:    "resilience",
				Detail: "key=" + key + " from=" + from.String(),
			})
			if to == resilience.BreakerOpen {
				s.dumpFlight("breaker open: " + key)
			}
		})
		s.breakers[key] = br
	}
	return br
}

// openBreakers counts breakers currently open — the numaiod_breaker_open
// gauge.
func (s *Server) openBreakers() int {
	s.brMu.Lock()
	defer s.brMu.Unlock()
	open := 0
	for _, br := range s.breakers {
		if br.State() == resilience.BreakerOpen {
			open++
		}
	}
	return open
}

// errStatus maps a characterization failure to its HTTP status: dead
// deadlines are the gateway's fault (504), an open breaker is explicit
// back-pressure (503), anything else is a plain 500.
func errStatus(err error) int {
	switch {
	case errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled):
		return http.StatusGatewayTimeout
	case errors.Is(err, ErrCircuitOpen):
		return http.StatusServiceUnavailable
	default:
		return http.StatusInternalServerError
	}
}

// configKey canonicalizes the characterization options that shape a model
// — the shared suffix of model- and response-cache keys. Parallelism is
// deliberately absent: parallel and serial characterizations are
// bit-identical, so they share cache entries.
func configKey(cfg core.Config) string {
	return fmt.Sprintf("t%d r%d b%d g%g s%g",
		cfg.Threads, cfg.Repeats, int64(cfg.BytesPerThread), cfg.GapThreshold, cfg.Sigma)
}

// jsonEncoder is a pooled buffer+encoder pair so the hot serving path does
// not rebuild a json.Encoder (and grow a fresh buffer) per response.
type jsonEncoder struct {
	buf bytes.Buffer
	enc *json.Encoder
}

var encPool = sync.Pool{New: func() any {
	e := &jsonEncoder{}
	e.enc = json.NewEncoder(&e.buf)
	e.enc.SetIndent("", "  ")
	return e
}}

// encodeJSON renders v exactly as writeJSON does (two-space indent,
// trailing newline) into a freshly owned byte slice, via the encoder pool.
func encodeJSON(v any) ([]byte, error) {
	e := encPool.Get().(*jsonEncoder)
	e.buf.Reset()
	if err := e.enc.Encode(v); err != nil {
		encPool.Put(e)
		return nil, err
	}
	body := make([]byte, e.buf.Len())
	copy(body, e.buf.Bytes())
	encPool.Put(e)
	return body, nil
}

// writeJSON encodes v with a status code, charging the encode time to the
// request's "encode" stage when the middleware attached one.
func writeJSON(w http.ResponseWriter, status int, v any) {
	start := time.Now()
	e := encPool.Get().(*jsonEncoder)
	e.buf.Reset()
	if err := e.enc.Encode(v); err != nil {
		encPool.Put(e)
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	addEncodeStage(w, time.Since(start))
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_, _ = w.Write(e.buf.Bytes())
	encPool.Put(e)
}

// addEncodeStage attributes one encode duration to the request's stage
// breakdown, reaching the Stages through the middleware's statusRecorder.
func addEncodeStage(w http.ResponseWriter, d time.Duration) {
	if rec, ok := w.(*statusRecorder); ok {
		rec.stages.Add("encode", d)
	}
}

// writeJSONBytes serves an already rendered JSON body (response-cache
// hits).
func writeJSONBytes(w http.ResponseWriter, status int, body []byte) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_, _ = w.Write(body)
}

// writeJSONCached renders v once, serves it, and retains the bytes in
// cache under key when the response is a 200 — the store half of the
// serving fast lane.
func writeJSONCached(w http.ResponseWriter, status int, v any, cache *RespCache, key string) {
	if status != http.StatusOK || cache == nil {
		writeJSON(w, status, v)
		return
	}
	start := time.Now()
	body, err := encodeJSON(v)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	addEncodeStage(w, time.Since(start))
	cache.Put(key, body)
	writeJSONBytes(w, status, body)
}

// apiError is the uniform error body.
type apiError struct {
	Error string `json:"error"`
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, apiError{Error: fmt.Sprintf(format, args...)})
}

// decodeBody strictly decodes a JSON request body into v.
func decodeBody(r *http.Request, v any) error {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("invalid JSON body: %w", err)
	}
	return nil
}
