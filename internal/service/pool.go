package service

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// Pool bounds the number of concurrent characterizations so N simultaneous
// requests don't each spawn an unbounded set of simulation goroutines.
// Synchronous handlers acquire a slot inline; asynchronous jobs run through
// Submit and are tracked for graceful drain.
type Pool struct {
	sem      chan struct{}
	wg       sync.WaitGroup
	mu       sync.Mutex
	closed   bool
	inflight atomic.Int64
}

// NewPool builds a pool admitting up to workers concurrent tasks
// (workers <= 0 means 4).
func NewPool(workers int) *Pool {
	if workers <= 0 {
		workers = 4
	}
	return &Pool{sem: make(chan struct{}, workers)}
}

// Acquire blocks until a worker slot is free (or ctx is done). Callers must
// Release the slot. Acquire stays available during Drain so already-admitted
// jobs can finish; admission control happens in Submit (and in the HTTP
// server shutdown for synchronous requests).
func (p *Pool) Acquire(ctx context.Context) error {
	select {
	case p.sem <- struct{}{}:
		p.inflight.Add(1)
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Release frees a slot taken by Acquire.
func (p *Pool) Release() {
	p.inflight.Add(-1)
	<-p.sem
}

// Submit runs fn in the background, tracked for graceful drain. It returns
// an error only when the pool is draining; otherwise fn is guaranteed to
// run and to finish before Drain returns. fn is expected to Acquire a
// worker slot itself for its bounded section (Submit does not hold one, so
// coalesced or cached work never ties up a slot).
func (p *Pool) Submit(fn func()) error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return fmt.Errorf("service: pool is shutting down")
	}
	p.wg.Add(1)
	p.mu.Unlock()
	go func() {
		defer p.wg.Done()
		fn()
	}()
	return nil
}

// InFlight returns the number of tasks currently holding a worker slot.
func (p *Pool) InFlight() int64 { return p.inflight.Load() }

// Drain stops admitting work and waits for submitted jobs to finish, or
// for ctx to expire.
func (p *Pool) Drain(ctx context.Context) error {
	p.mu.Lock()
	p.closed = true
	p.mu.Unlock()
	done := make(chan struct{})
	go func() {
		p.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("service: drain timed out with %d jobs in flight", p.InFlight())
	}
}

// JobState is the lifecycle phase of an async characterization job.
type JobState string

// Job states.
const (
	JobPending JobState = "pending"
	JobRunning JobState = "running"
	JobDone    JobState = "done"
	JobFailed  JobState = "failed"
)

// Job tracks one asynchronous characterization.
type Job struct {
	ID          string    `json:"id"`
	State       JobState  `json:"state"`
	Fingerprint string    `json:"fingerprint,omitempty"`
	Error       string    `json:"error,omitempty"`
	Created     time.Time `json:"created"`
	Finished    time.Time `json:"finished"`
}

// JobRegistry hands out job IDs and tracks job lifecycles.
type JobRegistry struct {
	mu   sync.Mutex
	next int64
	jobs map[string]*Job
	now  func() time.Time
}

// NewJobRegistry builds an empty registry.
func NewJobRegistry() *JobRegistry {
	return &JobRegistry{jobs: make(map[string]*Job), now: time.Now}
}

// New registers a fresh pending job.
func (r *JobRegistry) New() *Job {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.next++
	j := &Job{ID: fmt.Sprintf("job-%06d", r.next), State: JobPending, Created: r.now()}
	r.jobs[j.ID] = j
	return j
}

// Get returns a snapshot of the job (jobs mutate as they run).
func (r *JobRegistry) Get(id string) (Job, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	j, ok := r.jobs[id]
	if !ok {
		return Job{}, false
	}
	return *j, true
}

// SetState transitions a job, recording fingerprint or error as relevant.
func (r *JobRegistry) SetState(id string, state JobState, fingerprint string, err error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	j, ok := r.jobs[id]
	if !ok {
		return
	}
	j.State = state
	j.Fingerprint = fingerprint
	if err != nil {
		j.Error = err.Error()
	}
	if state == JobDone || state == JobFailed {
		j.Finished = r.now()
	}
}
