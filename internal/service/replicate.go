package service

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"

	"numaio/internal/core"
	"numaio/internal/telemetry"
)

// Replication hooks: the fleet gateway (internal/fleet) replicates hot
// models to ring peers for read availability. A peer can be handed a model
// directly (PUT /v1/models/{fingerprint}) or told to pull it from the
// replica that owns it (POST /v1/models/pull). Installed models land in
// the ordinary model cache — fingerprint-addressed requests (predict,
// place by fingerprint, GET /v1/models) hit them immediately, and TTL and
// LRU pressure age them out like any locally computed entry.

// installKey namespaces replicated entries in the model cache so they can
// never collide with locally computed (fingerprint|config) keys.
func installKey(fp string) string { return "installed|" + fp }

// installModel validates and caches a replicated model.
func (s *Server) installModel(fp string, mm *core.MachineModel) error {
	if fp == "" {
		return fmt.Errorf("fingerprint is required")
	}
	if mm.Fingerprint == "" {
		mm.Fingerprint = fp
	}
	if mm.Fingerprint != fp {
		return fmt.Errorf("model fingerprint %q does not match %q", mm.Fingerprint, fp)
	}
	if len(mm.Models) == 0 {
		return fmt.Errorf("model has no per-target entries")
	}
	s.cache.Install(installKey(fp), mm)
	s.installs.Inc()
	return nil
}

// handleModelInstall is PUT /v1/models/{fingerprint}: install a model
// shipped in the request body (the push half of replication).
func (s *Server) handleModelInstall(w http.ResponseWriter, r *http.Request) {
	fp := r.PathValue("fingerprint")
	var mm core.MachineModel
	if err := decodeBody(r, &mm); err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if err := s.installModel(fp, &mm); err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	s.log.Info("model installed", "fingerprint", fp, "source", "push")
	writeJSON(w, http.StatusOK, map[string]any{"fingerprint": fp, "installed": true})
}

// modelPullRequest is the POST /v1/models/pull body.
type modelPullRequest struct {
	Fingerprint string `json:"fingerprint"`
	// Source is the base URL of the replica holding the model.
	Source string `json:"source"`
}

// handleModelPull is POST /v1/models/pull: fetch the named model from a
// peer replica's GET /v1/models endpoint and install it (the pull half of
// replication, driven by the gateway's hot-model tracking).
func (s *Server) handleModelPull(w http.ResponseWriter, r *http.Request) {
	var req modelPullRequest
	if err := decodeBody(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if req.Fingerprint == "" || req.Source == "" {
		writeError(w, http.StatusBadRequest, "fingerprint and source are required")
		return
	}
	if _, ok := s.cache.FindByFingerprint(req.Fingerprint); ok {
		// Already held (computed locally or previously replicated) — a
		// cheap no-op, not an error, so repeated pulls converge.
		writeJSON(w, http.StatusOK, map[string]any{"fingerprint": req.Fingerprint, "installed": false})
		return
	}
	url := strings.TrimRight(req.Source, "/") + "/v1/models/" + req.Fingerprint
	preq, err := http.NewRequestWithContext(r.Context(), http.MethodGet, url, nil)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	// The outbound fetch is a hop of the same logical operation: carry the
	// request ID and trace context so the source replica's span joins the
	// pulling request's trace.
	if rid := r.Header.Get("X-Request-Id"); rid != "" {
		preq.Header.Set("X-Request-Id", rid)
	}
	if tc, ok := telemetry.TraceFromContext(r.Context()); ok {
		preq.Header.Set(telemetry.TraceCtxHeader, tc.String())
	}
	resp, err := s.pullClient.Do(preq)
	if err != nil {
		writeError(w, http.StatusBadGateway, "pulling model from %s: %v", req.Source, err)
		return
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		writeError(w, http.StatusBadGateway, "source %s returned %d: %s",
			req.Source, resp.StatusCode, strings.TrimSpace(string(body)))
		return
	}
	var mm core.MachineModel
	if err := json.NewDecoder(resp.Body).Decode(&mm); err != nil {
		writeError(w, http.StatusBadGateway, "decoding model from %s: %v", req.Source, err)
		return
	}
	if err := s.installModel(req.Fingerprint, &mm); err != nil {
		writeError(w, http.StatusBadGateway, "%v", err)
		return
	}
	s.log.Info("model installed", "fingerprint", req.Fingerprint, "source", req.Source)
	writeJSON(w, http.StatusOK, map[string]any{"fingerprint": req.Fingerprint, "installed": true})
}
