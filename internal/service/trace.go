package service

import (
	"net/http"
)

// Trace control endpoints. POST /debug/trace/start begins recording every
// request span, characterization cell, solver phase and resilience event
// onto a fresh tracer; POST /debug/trace/stop freezes it; GET /debug/trace
// downloads the recording (active or last stopped) as Chrome trace-event
// JSON loadable in Perfetto or chrome://tracing — or, stitched together
// with recordings from the gateway and other replicas by cmd/numaiotrace,
// as one fleet-wide timeline. GET /debug/flightrecorder dumps the
// always-on flight recorder's recent events.

type traceStateResponse struct {
	Tracing bool `json:"tracing"`
	// Events is the number of trace events captured so far (stop reports
	// the final count of the recording it just froze).
	Events int `json:"events"`
}

func (s *Server) handleTraceStart(w http.ResponseWriter, r *http.Request) {
	// Starting while already tracing discards the in-progress recording
	// and begins a fresh one — idempotent for scripts, and the old tracer
	// stays readable by in-flight spans that captured it.
	s.traces.Start()
	writeJSON(w, http.StatusOK, traceStateResponse{Tracing: true})
}

func (s *Server) handleTraceStop(w http.ResponseWriter, r *http.Request) {
	// Report the frozen recording's size; stop without start answers with
	// whatever was last retained (zero events when nothing ever ran).
	writeJSON(w, http.StatusOK, traceStateResponse{Events: s.traces.Stop().Len()})
}

func (s *Server) handleTraceDownload(w http.ResponseWriter, r *http.Request) {
	tr := s.traces.Current()
	if tr == nil {
		writeError(w, http.StatusNotFound, "no trace recorded: POST /debug/trace/start first")
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Content-Disposition", `attachment; filename="numaiod-trace.json"`)
	if err := tr.WriteJSON(w); err != nil {
		s.log.Error("writing trace", "error", err)
	}
}

func (s *Server) handleFlightRecorder(w http.ResponseWriter, r *http.Request) {
	if s.flight == nil {
		writeError(w, http.StatusNotFound, "flight recorder disabled")
		return
	}
	w.Header().Set("Content-Type", "application/json")
	if err := s.flight.WriteJSON(w); err != nil {
		s.log.Error("writing flight recorder", "error", err)
	}
}
