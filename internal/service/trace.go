package service

import (
	"net/http"

	"numaio/internal/telemetry"
)

// Trace control endpoints. POST /debug/trace/start begins recording every
// request span, characterization cell, solver phase and resilience event
// onto a fresh tracer; POST /debug/trace/stop freezes it; GET /debug/trace
// downloads the recording (active or last stopped) as Chrome trace-event
// JSON loadable in Perfetto or chrome://tracing.

type traceStateResponse struct {
	Tracing bool `json:"tracing"`
	// Events is the number of trace events captured so far (stop reports
	// the final count of the recording it just froze).
	Events int `json:"events"`
}

func (s *Server) handleTraceStart(w http.ResponseWriter, r *http.Request) {
	// Starting while already tracing discards the in-progress recording
	// and begins a fresh one — idempotent for scripts, and the old tracer
	// stays readable by in-flight spans that captured it.
	old := s.activeTracer.Swap(telemetry.NewTracer())
	if old != nil {
		s.lastTrace.Store(old)
	}
	writeJSON(w, http.StatusOK, traceStateResponse{Tracing: true})
}

func (s *Server) handleTraceStop(w http.ResponseWriter, r *http.Request) {
	old := s.activeTracer.Swap(nil)
	if old != nil {
		s.lastTrace.Store(old)
	}
	// Report the frozen recording's size; stop without start answers with
	// whatever was last retained (zero events when nothing ever ran).
	writeJSON(w, http.StatusOK, traceStateResponse{Events: s.lastTrace.Load().Len()})
}

func (s *Server) handleTraceDownload(w http.ResponseWriter, r *http.Request) {
	tr := s.activeTracer.Load()
	if tr == nil {
		tr = s.lastTrace.Load()
	}
	if tr == nil {
		writeError(w, http.StatusNotFound, "no trace recorded: POST /debug/trace/start first")
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Content-Disposition", `attachment; filename="numaiod-trace.json"`)
	if err := tr.WriteJSON(w); err != nil {
		s.log.Error("writing trace", "error", err)
	}
}
