package service_test

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"

	"numaio/internal/core"
	"numaio/internal/service"
	"numaio/internal/telemetry"
	"numaio/internal/topology"
)

func doRequest(t *testing.T, method, url, body string, hdr map[string]string) *http.Response {
	t.Helper()
	var rd io.Reader
	if body != "" {
		rd = strings.NewReader(body)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// TestTraceContextPropagation checks the middleware's X-Trace-Ctx handling:
// a request without the header gets a freshly minted context echoed back,
// and a request carrying one gets a child — same trace ID, new span ID —
// so one trace ID follows a request across fleet hops.
func TestTraceContextPropagation(t *testing.T) {
	var runs atomic.Int64
	ts := newTestServer(t, &runs)

	resp := doRequest(t, http.MethodPost, ts.URL+"/v1/predict", predictBody, nil)
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("predict = %d", resp.StatusCode)
	}
	minted, ok := telemetry.ParseTraceContext(resp.Header.Get(telemetry.TraceCtxHeader))
	if !ok {
		t.Fatalf("response X-Trace-Ctx %q does not parse", resp.Header.Get(telemetry.TraceCtxHeader))
	}

	parent := telemetry.NewTraceContext()
	resp = doRequest(t, http.MethodPost, ts.URL+"/v1/predict", predictBody, map[string]string{
		telemetry.TraceCtxHeader: parent.String(),
		"X-Request-Id":           "prop-rid-1",
	})
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	child, ok := telemetry.ParseTraceContext(resp.Header.Get(telemetry.TraceCtxHeader))
	if !ok {
		t.Fatalf("response X-Trace-Ctx %q does not parse", resp.Header.Get(telemetry.TraceCtxHeader))
	}
	if child.TraceID != parent.TraceID {
		t.Errorf("child trace ID %s, want parent's %s", child.TraceID, parent.TraceID)
	}
	if child.SpanID == parent.SpanID {
		t.Error("child kept the parent span ID")
	}
	if child.TraceID == minted.TraceID {
		t.Error("two unrelated requests share a trace ID")
	}
	if got := resp.Header.Get("X-Request-Id"); got != "prop-rid-1" {
		t.Errorf("X-Request-Id echo = %q", got)
	}
}

// TestServerTimingStages checks v1 responses carry the per-request stage
// breakdown: a characterize-on-miss predict reports solve time, and a
// response-cache hit reports only the cache lookup.
func TestServerTimingStages(t *testing.T) {
	var runs atomic.Int64
	ts := newTestServer(t, &runs)

	resp := doRequest(t, http.MethodPost, ts.URL+"/v1/predict", predictBody, nil)
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	st := resp.Header.Get("Server-Timing")
	for _, stage := range []string{"cache;dur=", "queue;dur=", "solve;dur=", "encode;dur="} {
		if !strings.Contains(st, stage) {
			t.Errorf("miss Server-Timing %q lacks %q", st, stage)
		}
	}

	// Same request again: served from the response cache, so no queue or
	// solve stage — just the lookup.
	resp = doRequest(t, http.MethodPost, ts.URL+"/v1/predict", predictBody, nil)
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	st = resp.Header.Get("Server-Timing")
	if !strings.Contains(st, "cache;dur=") || strings.Contains(st, "solve;dur=") {
		t.Errorf("hit Server-Timing = %q, want cache only", st)
	}
	if runs.Load() != 1 {
		t.Errorf("characterizer ran %d times, want 1", runs.Load())
	}

	// Non-v1 endpoints carry no stage breakdown.
	resp = doRequest(t, http.MethodGet, ts.URL+"/healthz", "", nil)
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if got := resp.Header.Get("Server-Timing"); got != "" {
		t.Errorf("healthz Server-Timing = %q, want none", got)
	}
}

// TestFlightRecorderEndpoint drives a v1 request and checks the always-on
// flight recorder captured it — name, request ID and the trace ID echoed on
// the response — via /debug/flightrecorder.
func TestFlightRecorderEndpoint(t *testing.T) {
	var runs atomic.Int64
	ts := newTestServer(t, &runs)

	resp := doRequest(t, http.MethodPost, ts.URL+"/v1/predict", predictBody, map[string]string{
		"X-Request-Id": "flight-rid-7",
	})
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	tc, ok := telemetry.ParseTraceContext(resp.Header.Get(telemetry.TraceCtxHeader))
	if !ok {
		t.Fatal("no trace context on response")
	}

	status, body := getJSON(t, ts.URL+"/debug/flightrecorder")
	if status != http.StatusOK {
		t.Fatalf("flightrecorder = %d", status)
	}
	var dump struct {
		Dropped uint64 `json:"dropped"`
		Events  []struct {
			Name      string `json:"name"`
			Cat       string `json:"cat"`
			RequestID string `json:"request_id"`
			TraceID   string `json:"trace_id"`
			Status    int    `json:"status"`
		} `json:"events"`
	}
	if err := json.Unmarshal(body, &dump); err != nil {
		t.Fatalf("flight dump is not valid JSON: %v\n%s", err, body)
	}
	found := false
	for _, e := range dump.Events {
		if e.Name == "/v1/predict" && e.RequestID == "flight-rid-7" {
			found = true
			if e.TraceID != tc.TraceID {
				t.Errorf("flight event trace ID %s, want %s", e.TraceID, tc.TraceID)
			}
			if e.Cat != "http" || e.Status != http.StatusOK {
				t.Errorf("flight event cat=%q status=%d", e.Cat, e.Status)
			}
		}
	}
	if !found {
		t.Errorf("no flight event for the predict request:\n%s", body)
	}
}

// TestFlightRecorderDisabled checks a negative FlightRecorderSize turns the
// endpoint into a 404 and DumpFlightRecorder into an error.
func TestFlightRecorderDisabled(t *testing.T) {
	svc := service.New(service.Config{FlightRecorderSize: -1})
	ts := httptest.NewServer(svc.Handler())
	t.Cleanup(ts.Close)
	if status, _ := getJSON(t, ts.URL+"/debug/flightrecorder"); status != http.StatusNotFound {
		t.Errorf("disabled flightrecorder = %d, want 404", status)
	}
	if err := svc.DumpFlightRecorder(io.Discard); err == nil {
		t.Error("DumpFlightRecorder succeeded with the recorder disabled")
	}
}

// TestFlightDumpOnFailure checks a 5xx response triggers an automatic
// flight-recorder dump to the configured writer.
func TestFlightDumpOnFailure(t *testing.T) {
	var dumpBuf bytes.Buffer
	svc := service.New(service.Config{
		Workers: 1,
		Characterize: func(ctx context.Context, m *topology.Machine, cfg core.Config) (*core.MachineModel, error) {
			return nil, errors.New("measurement rig on fire")
		},
		FlightDump: &dumpBuf,
	})
	ts := httptest.NewServer(svc.Handler())
	t.Cleanup(ts.Close)

	status, _ := postJSON(t, ts.URL+"/v1/characterize", fastBody)
	if status != http.StatusInternalServerError {
		t.Fatalf("characterize = %d, want 500", status)
	}
	out := dumpBuf.String()
	if !strings.Contains(out, "flight recorder dump") || !strings.Contains(out, `"/v1/characterize"`) {
		t.Errorf("no automatic flight dump after a 500; got:\n%s", out)
	}
}

// TestModelPullPropagatesTrace checks the outbound hop of a model pull
// carries the pulling request's trace context and request ID.
func TestModelPullPropagatesTrace(t *testing.T) {
	var gotTrace, gotRID atomic.Value
	source := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		gotTrace.Store(r.Header.Get(telemetry.TraceCtxHeader))
		gotRID.Store(r.Header.Get("X-Request-Id"))
		http.NotFound(w, r) // pull fails; only the propagation matters here
	}))
	t.Cleanup(source.Close)

	var runs atomic.Int64
	ts := newTestServer(t, &runs)
	parent := telemetry.NewTraceContext()
	resp := doRequest(t, http.MethodPost, ts.URL+"/v1/models/pull",
		`{"fingerprint": "deadbeef", "source": "`+source.URL+`"}`,
		map[string]string{
			telemetry.TraceCtxHeader: parent.String(),
			"X-Request-Id":           "pull-rid-3",
		})
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()

	hop, ok := telemetry.ParseTraceContext(gotTrace.Load().(string))
	if !ok {
		t.Fatalf("pull hop X-Trace-Ctx %q does not parse", gotTrace.Load())
	}
	if hop.TraceID != parent.TraceID {
		t.Errorf("pull hop trace ID %s, want %s", hop.TraceID, parent.TraceID)
	}
	if gotRID.Load().(string) != "pull-rid-3" {
		t.Errorf("pull hop X-Request-Id = %q", gotRID.Load())
	}
}

// TestMetricsExposition pins the /metrics exposition contract: every family
// has HELP and TYPE lines, the request-latency histogram renders with its
// exemplar suffix, and two back-to-back renders of a quiesced server are
// byte-identical (scrape determinism). The renders go through WriteMetrics
// rather than HTTP so the scrape itself does not perturb the counters.
func TestMetricsExposition(t *testing.T) {
	svc := service.New(service.Config{
		Workers: 2,
		Characterize: func(ctx context.Context, m *topology.Machine, cfg core.Config) (*core.MachineModel, error) {
			return service.DefaultCharacterize(ctx, m, cfg)
		},
	})
	ts := httptest.NewServer(svc.Handler())
	t.Cleanup(ts.Close)

	resp := doRequest(t, http.MethodPost, ts.URL+"/v1/predict", predictBody, map[string]string{
		"X-Request-Id": "exemplar-rid-9",
	})
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()

	var buf bytes.Buffer
	svc.WriteMetrics(&buf)
	body := buf.Bytes()
	text := string(body)
	for _, want := range []string{
		"# HELP numaiod_request_seconds ",
		"# TYPE numaiod_request_seconds histogram",
		"numaiod_request_seconds_bucket{le=\"+Inf\"} 1",
		"numaiod_request_seconds_count 1",
		`# {request_id="exemplar-rid-9"}`,
		"# HELP numaiod_flight_events ",
		"# TYPE numaiod_flight_events gauge",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q", want)
		}
	}

	// Every sample line belongs to a family that declared HELP and TYPE.
	declared := map[string]bool{}
	for _, line := range strings.Split(text, "\n") {
		if rest, ok := strings.CutPrefix(line, "# TYPE "); ok {
			declared[strings.Fields(rest)[0]] = true
		}
	}
	for _, line := range strings.Split(text, "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		name := line
		if i := strings.IndexAny(name, "{ "); i >= 0 {
			name = name[:i]
		}
		base := name
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			if cut, ok := strings.CutSuffix(name, suffix); ok {
				base = cut
			}
		}
		if !declared[name] && !declared[base] {
			t.Errorf("sample %q has no # TYPE declaration", name)
		}
	}

	// Quiesced server: repeated renders are byte-identical.
	var again bytes.Buffer
	svc.WriteMetrics(&again)
	if !bytes.Equal(body, again.Bytes()) {
		t.Error("two back-to-back metrics renders differ on an idle server")
	}
}
