package service

import (
	"container/list"
	"sync"
	"sync/atomic"
	"time"
)

// RespCache is the serving fast lane: an LRU of fully rendered response
// bodies keyed by the canonicalized request shape. Characterization is
// deterministic (the simulated measurements are pure functions of the
// machine and config), so a cached response never goes stale in substance —
// the TTL only bounds memory, mirroring the model cache's policy.
//
// The daemon keeps one RespCache per cached endpoint so hit rates are
// observable per endpoint (numaiod_predict_cache_hits_total vs
// numaiod_place_cache_hits_total).
type RespCache struct {
	mu      sync.Mutex
	max     int
	ttl     time.Duration
	entries map[string]*list.Element
	order   *list.List // front = most recently used

	now func() time.Time

	hits   atomic.Int64
	misses atomic.Int64
}

type respEntry struct {
	key     string
	body    []byte
	expires time.Time
}

// NewRespCache builds a response cache holding up to max rendered bodies,
// each valid for ttl after insertion. max == 0 means 1024 entries; max < 0
// disables caching (every call returns nil). ttl <= 0 means entries never
// expire.
func NewRespCache(max int, ttl time.Duration) *RespCache {
	if max < 0 {
		return nil
	}
	if max == 0 {
		max = 1024
	}
	return &RespCache{
		max:     max,
		ttl:     ttl,
		entries: make(map[string]*list.Element),
		order:   list.New(),
		now:     time.Now,
	}
}

// Get returns the cached body for key, if present and unexpired. Callers
// must not mutate the returned slice. A nil cache always misses without
// counting.
func (c *RespCache) Get(key string) ([]byte, bool) {
	if c == nil {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		c.misses.Add(1)
		return nil, false
	}
	ent := el.Value.(*respEntry)
	if c.ttl > 0 && c.now().After(ent.expires) {
		c.order.Remove(el)
		delete(c.entries, key)
		c.misses.Add(1)
		return nil, false
	}
	c.order.MoveToFront(el)
	c.hits.Add(1)
	return ent.body, true
}

// Put stores a rendered body, evicting the least recently used entry when
// over capacity. The cache takes ownership of body. No-op on a nil cache.
func (c *RespCache) Put(key string, body []byte) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	ent := &respEntry{key: key, body: body, expires: c.now().Add(c.ttl)}
	if el, ok := c.entries[key]; ok {
		el.Value = ent
		c.order.MoveToFront(el)
		return
	}
	c.entries[key] = c.order.PushFront(ent)
	for c.order.Len() > c.max {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.entries, oldest.Value.(*respEntry).key)
	}
}

// RespCacheStats is a snapshot of one response cache's counters.
type RespCacheStats struct {
	Hits, Misses int64
	Entries      int
}

// Stats snapshots the counters; zero-valued on a nil (disabled) cache.
func (c *RespCache) Stats() RespCacheStats {
	if c == nil {
		return RespCacheStats{}
	}
	c.mu.Lock()
	entries := c.order.Len()
	c.mu.Unlock()
	return RespCacheStats{Hits: c.hits.Load(), Misses: c.misses.Load(), Entries: entries}
}
