package service_test

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"

	"numaio/internal/service"
)

const predictBody = `{"machine": "intel-4s4n", "config": {"repeats": 1, "sigma": -1},
 "target": 3, "mode": "write", "mix": {"0": 0.5, "3": 0.5}}`

const placeBody = `{"machine": "intel-4s4n", "config": {"repeats": 1, "sigma": -1},
 "target": 3, "tasks": 4}`

// TestPredictResponseCache: the second identical predict request must be
// served from the response cache — byte-identical body, no extra
// characterization — and the hit must show up on /metrics.
func TestPredictResponseCache(t *testing.T) {
	var runs atomic.Int64
	ts := newTestServer(t, &runs)

	status, first := postJSON(t, ts.URL+"/v1/predict", predictBody)
	if status != http.StatusOK {
		t.Fatalf("first predict = %d %s", status, first)
	}
	status, second := postJSON(t, ts.URL+"/v1/predict", predictBody)
	if status != http.StatusOK {
		t.Fatalf("second predict = %d %s", status, second)
	}
	if !bytes.Equal(first, second) {
		t.Errorf("cached response differs from uncached:\n first %s\nsecond %s", first, second)
	}
	if got := runs.Load(); got != 1 {
		t.Errorf("characterizations = %d, want 1 (second request cached)", got)
	}

	// A request with the same content but different JSON key order hits too.
	reordered := `{"mix": {"3": 0.5, "0": 0.5}, "mode": "write", "target": 3,
 "config": {"sigma": -1, "repeats": 1}, "machine": "intel-4s4n"}`
	status, third := postJSON(t, ts.URL+"/v1/predict", reordered)
	if status != http.StatusOK || !bytes.Equal(first, third) {
		t.Errorf("reordered request = %d, body match %v", status, bytes.Equal(first, third))
	}

	_, metrics := getJSON(t, ts.URL+"/metrics")
	for _, want := range []string{
		"numaiod_predict_cache_hits_total 2",
		"numaiod_predict_cache_misses_total 1",
		"numaiod_predict_cache_entries 1",
	} {
		if !strings.Contains(string(metrics), want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

// TestPlaceResponseCache mirrors the predict contract for /v1/place,
// including the evaluate arm (simulated measurements are deterministic, so
// they cache safely too).
func TestPlaceResponseCache(t *testing.T) {
	var runs atomic.Int64
	ts := newTestServer(t, &runs)

	for _, body := range []string{placeBody,
		`{"machine": "intel-4s4n", "config": {"repeats": 1, "sigma": -1},
 "target": 3, "tasks": 4, "evaluate": true, "size_per_task": 1048576}`} {
		status, first := postJSON(t, ts.URL+"/v1/place", body)
		if status != http.StatusOK {
			t.Fatalf("first place = %d %s", status, first)
		}
		status, second := postJSON(t, ts.URL+"/v1/place", body)
		if status != http.StatusOK {
			t.Fatalf("second place = %d %s", status, second)
		}
		if !bytes.Equal(first, second) {
			t.Errorf("cached place response differs:\n first %s\nsecond %s", first, second)
		}
	}
	if got := runs.Load(); got != 1 {
		t.Errorf("characterizations = %d, want 1", got)
	}
	_, metrics := getJSON(t, ts.URL+"/metrics")
	if !strings.Contains(string(metrics), "numaiod_place_cache_hits_total 2") {
		t.Errorf("metrics missing place cache hits:\n%s", metrics)
	}
}

// TestRespCacheDisabled: RespCacheEntries < 0 turns the fast lane off but
// responses stay correct and identical (determinism, not caching, is what
// makes them equal).
func TestRespCacheDisabled(t *testing.T) {
	svc := service.New(service.Config{Workers: 2, RespCacheEntries: -1})
	ts := httptest.NewServer(svc.Handler())
	t.Cleanup(ts.Close)
	status, first := postJSON(t, ts.URL+"/v1/predict", predictBody)
	if status != http.StatusOK {
		t.Fatalf("predict = %d %s", status, first)
	}
	_, second := postJSON(t, ts.URL+"/v1/predict", predictBody)
	if !bytes.Equal(first, second) {
		t.Errorf("responses differ with cache disabled")
	}
	_, metrics := getJSON(t, ts.URL+"/metrics")
	if !strings.Contains(string(metrics), "numaiod_predict_cache_hits_total 0") {
		t.Errorf("disabled cache should report zero hits")
	}
}

// TestPredictParseErrors covers the request-parsing error paths: bad node
// keys, malformed mix/counts combinations, bad mode. None may trigger a
// characterization.
func TestPredictParseErrors(t *testing.T) {
	var runs atomic.Int64
	ts := newTestServer(t, &runs)

	cases := []struct {
		name string
		body string
		want string
	}{
		{"non-integer mix key",
			`{"machine": "intel-4s4n", "target": 0, "mode": "write", "mix": {"x": 1}}`,
			"not an integer"},
		{"non-integer counts key",
			`{"machine": "intel-4s4n", "target": 0, "mode": "write", "counts": {"1.5": 2}}`,
			"not an integer"},
		{"both mix and counts",
			`{"machine": "intel-4s4n", "target": 0, "mode": "write", "mix": {"0": 1}, "counts": {"0": 1}}`,
			"exactly one of mix or counts"},
		{"neither mix nor counts",
			`{"machine": "intel-4s4n", "target": 0, "mode": "write"}`,
			"exactly one of mix or counts"},
		{"bad mode",
			`{"machine": "intel-4s4n", "target": 0, "mode": "sideways", "mix": {"0": 1}}`,
			"mode"},
		{"unknown field",
			`{"machine": "intel-4s4n", "target": 0, "mode": "write", "mixx": {"0": 1}}`,
			"invalid JSON body"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			status, body := postJSON(t, ts.URL+"/v1/predict", tc.body)
			if status != http.StatusBadRequest {
				t.Fatalf("status = %d, want 400 (%s)", status, body)
			}
			if !strings.Contains(string(body), tc.want) {
				t.Errorf("error %s does not mention %q", body, tc.want)
			}
		})
	}
	// The non-integer key errors surface before any model work; the rest are
	// validated pre-resolution too.
	if got := runs.Load(); got != 0 {
		t.Errorf("parse errors triggered %d characterizations, want 0", got)
	}
}

// TestPredictBatch: one model resolution amortized over many items, bad
// items failing in place, empty batches rejected.
func TestPredictBatch(t *testing.T) {
	var runs atomic.Int64
	ts := newTestServer(t, &runs)

	status, body := postJSON(t, ts.URL+"/v1/predict/batch",
		`{"machine": "intel-4s4n", "config": {"repeats": 1, "sigma": -1}, "items": []}`)
	if status != http.StatusBadRequest || !strings.Contains(string(body), "no items") {
		t.Fatalf("empty batch = %d %s, want 400", status, body)
	}
	if runs.Load() != 0 {
		t.Fatal("empty batch characterized")
	}

	status, body = postJSON(t, ts.URL+"/v1/predict/batch",
		`{"machine": "intel-4s4n", "config": {"repeats": 1, "sigma": -1}, "items": [
		  {"target": 3, "mode": "write", "mix": {"0": 0.5, "3": 0.5}},
		  {"target": 3, "mode": "write", "mix": {"nope": 1}},
		  {"target": 3, "mode": "read", "counts": {"0": 2, "1": 2}}
		]}`)
	if status != http.StatusOK {
		t.Fatalf("batch = %d %s", status, body)
	}
	var resp struct {
		Fingerprint string `json:"fingerprint"`
		Results     []struct {
			PredictedBPS float64 `json:"predicted_bps"`
			Error        string  `json:"error"`
		} `json:"results"`
	}
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Results) != 3 {
		t.Fatalf("results = %d, want 3", len(resp.Results))
	}
	if resp.Results[0].Error != "" || resp.Results[0].PredictedBPS <= 0 {
		t.Errorf("good item 0 = %+v", resp.Results[0])
	}
	if !strings.Contains(resp.Results[1].Error, "not an integer") || resp.Results[1].PredictedBPS != 0 {
		t.Errorf("bad item 1 = %+v", resp.Results[1])
	}
	if resp.Results[2].Error != "" || resp.Results[2].PredictedBPS <= 0 {
		t.Errorf("good item 2 = %+v", resp.Results[2])
	}
	if got := runs.Load(); got != 1 {
		t.Errorf("batch cost %d characterizations, want 1", got)
	}

	// The batch's first item agrees with the single-predict endpoint.
	status, single := postJSON(t, ts.URL+"/v1/predict", predictBody)
	if status != http.StatusOK {
		t.Fatalf("single predict = %d %s", status, single)
	}
	var one struct {
		PredictedBPS float64 `json:"predicted_bps"`
	}
	if err := json.Unmarshal(single, &one); err != nil {
		t.Fatal(err)
	}
	if one.PredictedBPS != resp.Results[0].PredictedBPS {
		t.Errorf("batch item (%v) != single predict (%v)", resp.Results[0].PredictedBPS, one.PredictedBPS)
	}
}
