package service

import (
	"container/list"
	"sync"
	"sync/atomic"
	"time"

	"numaio/internal/core"
)

// ModelCache is the daemon's model store: an LRU with per-entry TTL keyed
// by topology fingerprint (plus characterization options), with
// singleflight-style coalescing so identical concurrent characterize
// requests trigger exactly one Algorithm 1 run.
type ModelCache struct {
	mu      sync.Mutex
	max     int
	ttl     time.Duration
	entries map[string]*list.Element
	order   *list.List // front = most recently used
	flights map[string]*flight

	// now is the clock; injectable for TTL tests.
	now func() time.Time

	hits      atomic.Int64
	misses    atomic.Int64
	coalesced atomic.Int64
	evictions atomic.Int64
}

type cacheEntry struct {
	key     string
	model   *core.MachineModel
	expires time.Time
}

type flight struct {
	done  chan struct{}
	model *core.MachineModel
	err   error
}

// NewModelCache builds a cache holding up to max entries, each valid for
// ttl after insertion. max <= 0 means 64 entries; ttl <= 0 means entries
// never expire.
func NewModelCache(max int, ttl time.Duration) *ModelCache {
	if max <= 0 {
		max = 64
	}
	return &ModelCache{
		max:     max,
		ttl:     ttl,
		entries: make(map[string]*list.Element),
		order:   list.New(),
		flights: make(map[string]*flight),
		now:     time.Now,
	}
}

// Get returns the cached model for key, if present and unexpired.
func (c *ModelCache) Get(key string) (*core.MachineModel, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.getLocked(key)
}

// getLocked reports expired entries as misses but retains them: an
// expired model is the stale fallback the daemon serves (marked as such)
// when recomputation fails. Capacity pressure still evicts stale entries
// LRU-wise like any other.
func (c *ModelCache) getLocked(key string) (*core.MachineModel, bool) {
	el, ok := c.entries[key]
	if !ok {
		return nil, false
	}
	ent := el.Value.(*cacheEntry)
	if c.ttl > 0 && c.now().After(ent.expires) {
		return nil, false
	}
	c.order.MoveToFront(el)
	return ent.model, true
}

// GetStale returns the entry for key even when expired — the last good
// model, for graceful degradation when a fresh characterization fails.
func (c *ModelCache) GetStale(key string) (*core.MachineModel, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		return nil, false
	}
	return el.Value.(*cacheEntry).model, true
}

// put inserts (or refreshes) an entry, evicting the least recently used
// entry when over capacity.
func (c *ModelCache) put(key string, mm *core.MachineModel) {
	ent := &cacheEntry{key: key, model: mm, expires: c.now().Add(c.ttl)}
	if el, ok := c.entries[key]; ok {
		el.Value = ent
		c.order.MoveToFront(el)
		return
	}
	c.entries[key] = c.order.PushFront(ent)
	for c.order.Len() > c.max {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.entries, oldest.Value.(*cacheEntry).key)
		c.evictions.Add(1)
	}
}

// GetOrCompute returns the model for key, computing it at most once across
// concurrent callers. The second return reports whether the model came out
// of the cache (or a coalesced in-flight computation) rather than a fresh
// compute by this caller.
func (c *ModelCache) GetOrCompute(key string, compute func() (*core.MachineModel, error)) (*core.MachineModel, bool, error) {
	c.mu.Lock()
	if mm, ok := c.getLocked(key); ok {
		c.mu.Unlock()
		c.hits.Add(1)
		return mm, true, nil
	}
	if f, ok := c.flights[key]; ok {
		c.mu.Unlock()
		c.coalesced.Add(1)
		<-f.done
		return f.model, true, f.err
	}
	f := &flight{done: make(chan struct{})}
	c.flights[key] = f
	c.mu.Unlock()

	c.misses.Add(1)
	f.model, f.err = compute()

	c.mu.Lock()
	delete(c.flights, key)
	if f.err == nil {
		c.put(key, f.model)
	}
	c.mu.Unlock()
	close(f.done)
	return f.model, false, f.err
}

// Install places an externally supplied model into the cache under key —
// the fleet replication hook. It behaves exactly like a computed entry:
// TTL applies from now and LRU pressure can evict it.
func (c *ModelCache) Install(key string, mm *core.MachineModel) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.put(key, mm)
}

// FindByFingerprint returns the most recently used unexpired entry whose
// model carries the given topology fingerprint, regardless of the
// characterization options in its key — the GET /v1/models lookup.
func (c *ModelCache) FindByFingerprint(fp string) (*core.MachineModel, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for el := c.order.Front(); el != nil; el = el.Next() {
		ent := el.Value.(*cacheEntry)
		if ent.model.Fingerprint != fp {
			continue
		}
		if c.ttl > 0 && c.now().After(ent.expires) {
			continue
		}
		return ent.model, true
	}
	return nil, false
}

// Len returns the number of live entries.
func (c *ModelCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}

// Stats is a snapshot of the cache counters. Stale counts the expired
// entries currently retained as fallbacks.
type CacheStats struct {
	Hits, Misses, Coalesced, Evictions int64
	Entries                            int
	Stale                              int
}

// Stats snapshots the counters.
func (c *ModelCache) Stats() CacheStats {
	c.mu.Lock()
	entries := c.order.Len()
	stale := 0
	if c.ttl > 0 {
		now := c.now()
		for el := c.order.Front(); el != nil; el = el.Next() {
			if now.After(el.Value.(*cacheEntry).expires) {
				stale++
			}
		}
	}
	c.mu.Unlock()
	return CacheStats{
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Coalesced: c.coalesced.Load(),
		Evictions: c.evictions.Load(),
		Entries:   entries,
		Stale:     stale,
	}
}
