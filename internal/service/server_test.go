package service_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"numaio/internal/core"
	"numaio/internal/service"
	"numaio/internal/topology"
)

// newTestServer builds a daemon with a counting characterizer so tests can
// assert exactly how many Algorithm 1 executions a request pattern costs.
func newTestServer(t *testing.T, runs *atomic.Int64) *httptest.Server {
	t.Helper()
	svc := service.New(service.Config{
		Workers: 2,
		Characterize: func(ctx context.Context, m *topology.Machine, cfg core.Config) (*core.MachineModel, error) {
			runs.Add(1)
			return service.DefaultCharacterize(ctx, m, cfg)
		},
	})
	ts := httptest.NewServer(svc.Handler())
	t.Cleanup(ts.Close)
	return ts
}

// fastBody is a characterize request cheap enough for unit tests: one
// repeat, no measurement noise.
const fastBody = `{"machine": "intel-4s4n", "config": {"repeats": 1, "sigma": -1}}`

func postJSON(t *testing.T, url, body string) (int, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, b
}

func getJSON(t *testing.T, url string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, b
}

func TestHealthz(t *testing.T) {
	var runs atomic.Int64
	ts := newTestServer(t, &runs)
	status, body := getJSON(t, ts.URL+"/healthz")
	if status != http.StatusOK || !strings.Contains(string(body), "ok") {
		t.Fatalf("healthz = %d %q", status, body)
	}
}

func TestCharacterizeCacheHitVsMiss(t *testing.T) {
	var runs atomic.Int64
	ts := newTestServer(t, &runs)

	status, body := postJSON(t, ts.URL+"/v1/characterize", fastBody)
	if status != http.StatusOK {
		t.Fatalf("first characterize = %d %s", status, body)
	}
	var first struct {
		Fingerprint   string             `json:"fingerprint"`
		Cached        bool               `json:"cached"`
		CostReduction float64            `json:"cost_reduction"`
		Model         *core.MachineModel `json:"model"`
	}
	if err := json.Unmarshal(body, &first); err != nil {
		t.Fatal(err)
	}
	if first.Cached {
		t.Error("first request claims a cache hit")
	}
	if first.Fingerprint == "" || first.Model == nil || len(first.Model.Models) != 8 {
		t.Fatalf("first response = %+v", first)
	}
	if first.Model.Fingerprint != first.Fingerprint {
		t.Errorf("model fingerprint %q != response fingerprint %q",
			first.Model.Fingerprint, first.Fingerprint)
	}

	// The second identical request must be served from cache: no second
	// Algorithm 1 execution.
	status, body = postJSON(t, ts.URL+"/v1/characterize", fastBody)
	if status != http.StatusOK {
		t.Fatalf("second characterize = %d %s", status, body)
	}
	var second struct {
		Cached bool `json:"cached"`
	}
	if err := json.Unmarshal(body, &second); err != nil {
		t.Fatal(err)
	}
	if !second.Cached {
		t.Error("second identical request was not served from cache")
	}
	if got := runs.Load(); got != 1 {
		t.Errorf("Algorithm 1 ran %d times, want exactly 1", got)
	}

	// Different characterization options miss the cache.
	status, _ = postJSON(t, ts.URL+"/v1/characterize",
		`{"machine": "intel-4s4n", "config": {"repeats": 2, "sigma": -1}}`)
	if status != http.StatusOK {
		t.Fatalf("third characterize = %d", status)
	}
	if got := runs.Load(); got != 2 {
		t.Errorf("Algorithm 1 ran %d times after config change, want 2", got)
	}

	// The cached model is addressable by fingerprint.
	status, body = getJSON(t, ts.URL+"/v1/models/"+first.Fingerprint)
	if status != http.StatusOK {
		t.Fatalf("models/%s = %d %s", first.Fingerprint, status, body)
	}
	status, _ = getJSON(t, ts.URL+"/v1/models/deadbeef")
	if status != http.StatusNotFound {
		t.Errorf("models/deadbeef = %d, want 404", status)
	}
}

func TestConcurrentCoalescing(t *testing.T) {
	var runs atomic.Int64
	ts := newTestServer(t, &runs)

	const clients = 8
	var wg sync.WaitGroup
	errs := make(chan string, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := http.Post(ts.URL+"/v1/characterize", "application/json",
				strings.NewReader(fastBody))
			if err != nil {
				errs <- err.Error()
				return
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				b, _ := io.ReadAll(resp.Body)
				errs <- fmt.Sprintf("status %d: %s", resp.StatusCode, b)
			}
		}()
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Error(e)
	}
	if got := runs.Load(); got != 1 {
		t.Errorf("%d concurrent identical requests ran Algorithm 1 %d times, want 1", clients, got)
	}
}

func TestMalformedJSONIs400(t *testing.T) {
	var runs atomic.Int64
	ts := newTestServer(t, &runs)
	for _, ep := range []string{"/v1/characterize", "/v1/predict", "/v1/place", "/v1/whatif"} {
		status, body := postJSON(t, ts.URL+ep, `{"machine": `)
		if status != http.StatusBadRequest {
			t.Errorf("%s with truncated JSON = %d %s, want 400", ep, status, body)
		}
		var e struct {
			Error string `json:"error"`
		}
		if err := json.Unmarshal(body, &e); err != nil || e.Error == "" {
			t.Errorf("%s error body = %q", ep, body)
		}
	}
	if runs.Load() != 0 {
		t.Errorf("malformed requests triggered %d characterizations", runs.Load())
	}
}

func TestPredict(t *testing.T) {
	var runs atomic.Int64
	ts := newTestServer(t, &runs)

	body := `{"machine": "intel-4s4n", "config": {"repeats": 1, "sigma": -1},
		"target": 0, "mode": "write", "mix": {"0": 0.5, "2": 0.5}}`
	status, out := postJSON(t, ts.URL+"/v1/predict", body)
	if status != http.StatusOK {
		t.Fatalf("predict = %d %s", status, out)
	}
	var resp struct {
		Fingerprint   string  `json:"fingerprint"`
		PredictedBPS  float64 `json:"predicted_bps"`
		PredictedGbps float64 `json:"predicted_gbps"`
	}
	if err := json.Unmarshal(out, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.PredictedBPS <= 0 || resp.Fingerprint == "" {
		t.Errorf("predict response = %+v", resp)
	}

	// The characterization behind the prediction is reusable by
	// fingerprint, with no machine attached.
	byFP := fmt.Sprintf(`{"fingerprint": %q, "target": 0, "mode": "read", "counts": {"1": 2, "3": 2}}`,
		resp.Fingerprint)
	status, out = postJSON(t, ts.URL+"/v1/predict", byFP)
	if status != http.StatusOK {
		t.Fatalf("predict by fingerprint = %d %s", status, out)
	}
	if got := runs.Load(); got != 1 {
		t.Errorf("predictions ran Algorithm 1 %d times, want 1", got)
	}

	// Client errors.
	for name, bad := range map[string]string{
		"bad mode":        `{"machine": "intel-4s4n", "target": 0, "mode": "sideways", "mix": {"0": 1}}`,
		"mix and counts":  `{"machine": "intel-4s4n", "target": 0, "mode": "write", "mix": {"0": 1}, "counts": {"0": 1}}`,
		"neither":         `{"machine": "intel-4s4n", "target": 0, "mode": "write"}`,
		"mix not summing": `{"machine": "intel-4s4n", "config": {"repeats": 1, "sigma": -1}, "target": 0, "mode": "write", "mix": {"0": 0.7}}`,
		"bad node key":    `{"machine": "intel-4s4n", "config": {"repeats": 1, "sigma": -1}, "target": 0, "mode": "write", "mix": {"zero": 1}}`,
	} {
		if status, out := postJSON(t, ts.URL+"/v1/predict", bad); status != http.StatusBadRequest {
			t.Errorf("%s = %d %s, want 400", name, status, out)
		}
	}
	// Unknown fingerprint is 404.
	if status, _ := postJSON(t, ts.URL+"/v1/predict",
		`{"fingerprint": "cafe", "target": 0, "mode": "write", "mix": {"0": 1}}`); status != http.StatusNotFound {
		t.Errorf("unknown fingerprint = %d, want 404", status)
	}
}

func TestPlace(t *testing.T) {
	var runs atomic.Int64
	ts := newTestServer(t, &runs)

	body := `{"machine": "intel-4s4n", "config": {"repeats": 1, "sigma": -1},
		"target": 0, "tasks": 4, "evaluate": true}`
	status, out := postJSON(t, ts.URL+"/v1/place", body)
	if status != http.StatusOK {
		t.Fatalf("place = %d %s", status, out)
	}
	var resp struct {
		Results []struct {
			Policy      string  `json:"policy"`
			Placement   []int   `json:"placement"`
			EstimateBPS float64 `json:"estimate_bps"`
			MeasuredBPS float64 `json:"measured_bps"`
		} `json:"results"`
	}
	if err := json.Unmarshal(out, &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Results) != 4 {
		t.Fatalf("got %d policy results, want 4: %s", len(resp.Results), out)
	}
	for _, res := range resp.Results {
		if len(res.Placement) != 4 {
			t.Errorf("%s placed %d tasks, want 4", res.Policy, len(res.Placement))
		}
		if res.MeasuredBPS <= 0 {
			t.Errorf("%s measured %v, want > 0", res.Policy, res.MeasuredBPS)
		}
	}

	// Cluster mode: replicas share the one cached characterization.
	clusterBody := `{"machine": "intel-4s4n", "config": {"repeats": 1, "sigma": -1},
		"target": 0, "tasks": 6, "replicas": 3, "cluster_policy": "spread-even", "evaluate": true}`
	status, out = postJSON(t, ts.URL+"/v1/place", clusterBody)
	if status != http.StatusOK {
		t.Fatalf("cluster place = %d %s", status, out)
	}
	var cresp struct {
		Assignments []struct {
			Host string `json:"host"`
			Node int    `json:"node"`
		} `json:"assignments"`
		AggregateBPS float64 `json:"aggregate_bps"`
	}
	if err := json.Unmarshal(out, &cresp); err != nil {
		t.Fatal(err)
	}
	if len(cresp.Assignments) != 6 || cresp.AggregateBPS <= 0 {
		t.Errorf("cluster response = %+v", cresp)
	}
	hosts := map[string]bool{}
	for _, a := range cresp.Assignments {
		hosts[a.Host] = true
	}
	if len(hosts) != 3 {
		t.Errorf("spread-even used %d hosts, want 3", len(hosts))
	}
	if got := runs.Load(); got != 1 {
		t.Errorf("placement ran Algorithm 1 %d times, want 1 (shared cache)", got)
	}

	// Client errors.
	for name, bad := range map[string]string{
		"no tasks":       `{"machine": "intel-4s4n", "target": 0}`,
		"bad policy":     `{"machine": "intel-4s4n", "config": {"repeats": 1, "sigma": -1}, "target": 0, "tasks": 2, "policies": ["psychic"]}`,
		"unknown target": `{"machine": "intel-4s4n", "config": {"repeats": 1, "sigma": -1}, "target": 9, "tasks": 2}`,
	} {
		if status, out := postJSON(t, ts.URL+"/v1/place", bad); status != http.StatusBadRequest {
			t.Errorf("%s = %d %s, want 400", name, status, out)
		}
	}
}

func TestWhatif(t *testing.T) {
	var runs atomic.Int64
	ts := newTestServer(t, &runs)

	body := `{"machine": "intel-4s4n", "config": {"repeats": 1, "sigma": -1},
		"target": 3, "degrade": [{"a": "node0", "b": "node3", "factor": 0.2}]}`
	status, out := postJSON(t, ts.URL+"/v1/whatif", body)
	if status != http.StatusOK {
		t.Fatalf("whatif = %d %s", status, out)
	}
	var resp struct {
		BeforeFingerprint string `json:"before_fingerprint"`
		AfterFingerprint  string `json:"after_fingerprint"`
		Results           []struct {
			Mode  string `json:"mode"`
			Diffs []struct {
				Node      int     `json:"node"`
				RelChange float64 `json:"rel_change"`
			} `json:"diffs"`
			ChangedNodes []int `json:"changed_nodes"`
		} `json:"results"`
	}
	if err := json.Unmarshal(out, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.BeforeFingerprint == resp.AfterFingerprint {
		t.Error("degraded machine shares the base fingerprint")
	}
	if len(resp.Results) != 2 {
		t.Fatalf("got %d mode results, want 2", len(resp.Results))
	}
	degradedMoved := false
	for _, res := range resp.Results {
		if len(res.Diffs) != 4 {
			t.Errorf("%s diffed %d nodes, want 4", res.Mode, len(res.Diffs))
		}
		for _, d := range res.Diffs {
			if d.Node == 0 && d.RelChange < -0.05 {
				degradedMoved = true
			}
		}
	}
	if !degradedMoved {
		t.Errorf("degrading node0<->node3 left node0's bandwidth unchanged: %s", out)
	}
	// Base + mutant: exactly two characterizations.
	if got := runs.Load(); got != 2 {
		t.Errorf("whatif ran Algorithm 1 %d times, want 2", got)
	}

	// Empty degrade list and unknown links are client errors.
	if status, _ := postJSON(t, ts.URL+"/v1/whatif",
		`{"machine": "intel-4s4n", "target": 0, "degrade": []}`); status != http.StatusBadRequest {
		t.Errorf("empty degrade = %d, want 400", status)
	}
	if status, _ := postJSON(t, ts.URL+"/v1/whatif",
		`{"machine": "intel-4s4n", "target": 0, "degrade": [{"a": "node0", "b": "warp", "factor": 0.5}]}`); status != http.StatusBadRequest {
		t.Errorf("unknown link = %d, want 400", status)
	}
}

func TestAsyncCharacterizeJob(t *testing.T) {
	var runs atomic.Int64
	ts := newTestServer(t, &runs)

	status, out := postJSON(t, ts.URL+"/v1/characterize",
		`{"machine": "intel-4s4n", "config": {"repeats": 1, "sigma": -1}, "async": true}`)
	if status != http.StatusAccepted {
		t.Fatalf("async characterize = %d %s", status, out)
	}
	var job struct {
		ID    string `json:"id"`
		State string `json:"state"`
	}
	if err := json.Unmarshal(out, &job); err != nil {
		t.Fatal(err)
	}
	if job.ID == "" {
		t.Fatalf("no job ID in %s", out)
	}

	deadline := time.Now().Add(30 * time.Second)
	var final struct {
		State       string `json:"state"`
		Fingerprint string `json:"fingerprint"`
		Error       string `json:"error"`
	}
	for {
		status, out = getJSON(t, ts.URL+"/v1/jobs/"+job.ID)
		if status != http.StatusOK {
			t.Fatalf("jobs/%s = %d %s", job.ID, status, out)
		}
		if err := json.Unmarshal(out, &final); err != nil {
			t.Fatal(err)
		}
		if final.State == "done" || final.State == "failed" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in state %q", final.State)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if final.State != "done" || final.Fingerprint == "" {
		t.Fatalf("job finished as %+v", final)
	}
	if status, _ := getJSON(t, ts.URL+"/v1/models/"+final.Fingerprint); status != http.StatusOK {
		t.Errorf("async result not in model cache")
	}
	if status, _ := getJSON(t, ts.URL+"/v1/jobs/job-999999"); status != http.StatusNotFound {
		t.Errorf("unknown job = %d, want 404", status)
	}
}

func TestMetricsEndpoint(t *testing.T) {
	var runs atomic.Int64
	ts := newTestServer(t, &runs)

	// Generate traffic: one miss, one hit, one 400.
	postJSON(t, ts.URL+"/v1/characterize", fastBody)
	postJSON(t, ts.URL+"/v1/characterize", fastBody)
	postJSON(t, ts.URL+"/v1/characterize", `{`)

	status, body := getJSON(t, ts.URL+"/metrics")
	if status != http.StatusOK {
		t.Fatalf("metrics = %d", status)
	}
	text := string(body)
	for _, want := range []string{
		`numaiod_requests_total{endpoint="/v1/characterize",status="200"} 2`,
		`numaiod_requests_total{endpoint="/v1/characterize",status="400"} 1`,
		`numaiod_model_cache{event="hit"} 1`,
		`numaiod_model_cache{event="miss"} 1`,
		`numaiod_model_cache_entries 1`,
		`numaiod_characterize_seconds_count 1`,
		// Parallelism defaults to the worker-pool width (2 here).
		`numaiod_characterize_parallelism 2`,
		`numaiod_inflight_jobs 0`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics output missing %q:\n%s", want, text)
		}
	}
}

// lockedBuffer serializes writes so the request-log goroutines and the
// test's read don't race.
type lockedBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *lockedBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *lockedBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// TestRequestLogging checks the structured log line of one request.
func TestRequestLogging(t *testing.T) {
	var buf lockedBuffer
	svc := service.New(service.Config{
		Logger: slog.New(slog.NewTextHandler(&buf, nil)),
	})
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()
	getJSON(t, ts.URL+"/healthz")
	logged := buf.String()
	for _, want := range []string{"method=GET", "path=/healthz", "status=200"} {
		if !strings.Contains(logged, want) {
			t.Errorf("log missing %q:\n%s", want, logged)
		}
	}
}
