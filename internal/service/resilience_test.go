package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"numaio/internal/core"
	"numaio/internal/resilience"
	"numaio/internal/topology"
)

const resilienceBody = `{"machine": "intel-4s4n", "config": {"repeats": 1, "sigma": -1}}`

func postBody(t *testing.T, url, body string) (int, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, b
}

func metricsText(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestStaleModelFallback is the graceful-degradation acceptance test:
// when recomputing an expired model fails, the daemon serves the last
// good model marked stale instead of a 500, counts it, and opens the
// model's breaker after repeated failures so later requests skip the
// doomed computation entirely.
func TestStaleModelFallback(t *testing.T) {
	var calls atomic.Int64
	var induceFailure atomic.Bool
	s := New(Config{
		Workers:          1,
		CacheTTL:         time.Minute,
		BreakerThreshold: 2,
		Clock:            resilience.NewAutoClock(time.Unix(0, 0)),
		Characterize: func(ctx context.Context, m *topology.Machine, cfg core.Config) (*core.MachineModel, error) {
			calls.Add(1)
			if induceFailure.Load() {
				return nil, fmt.Errorf("induced characterization failure")
			}
			return DefaultCharacterize(ctx, m, cfg)
		},
	})
	now := time.Unix(1000, 0)
	s.cache.now = func() time.Time { return now }
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// A healthy characterization populates the cache.
	status, body := postBody(t, ts.URL+"/v1/characterize", resilienceBody)
	if status != http.StatusOK {
		t.Fatalf("healthy characterize = %d %s", status, body)
	}
	var fresh characterizeResponse
	if err := json.Unmarshal(body, &fresh); err != nil {
		t.Fatal(err)
	}
	if fresh.Stale {
		t.Fatal("fresh model marked stale")
	}
	if bytes.Contains(body, []byte(`"stale"`)) {
		t.Fatalf("fresh response carries a stale field: %s", body)
	}

	// The model expires and the characterizer starts failing: the daemon
	// must serve the last good model with a stale marker, not a 500.
	now = now.Add(2 * time.Minute)
	induceFailure.Store(true)
	status, body = postBody(t, ts.URL+"/v1/characterize", resilienceBody)
	if status != http.StatusOK {
		t.Fatalf("characterize under failure = %d %s (want 200 stale)", status, body)
	}
	var degraded characterizeResponse
	if err := json.Unmarshal(body, &degraded); err != nil {
		t.Fatal(err)
	}
	if !degraded.Stale || !degraded.Cached {
		t.Fatalf("degraded response = stale %v cached %v, want both true", degraded.Stale, degraded.Cached)
	}
	if degraded.Fingerprint != fresh.Fingerprint || degraded.Model == nil {
		t.Fatalf("stale response lost the model: %+v", degraded)
	}

	text := metricsText(t, ts.URL)
	for _, want := range []string{
		"numaiod_stale_served_total 1",
		"numaiod_stale_models 1",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q:\n%s", want, text)
		}
	}

	// A second failure opens the breaker (threshold 2); the request after
	// that is served stale without invoking the characterizer at all.
	if status, _ := postBody(t, ts.URL+"/v1/characterize", resilienceBody); status != http.StatusOK {
		t.Fatalf("second failing characterize = %d", status)
	}
	before := calls.Load()
	status, body = postBody(t, ts.URL+"/v1/characterize", resilienceBody)
	if status != http.StatusOK {
		t.Fatalf("characterize with open breaker = %d %s", status, body)
	}
	var shorted characterizeResponse
	if err := json.Unmarshal(body, &shorted); err != nil {
		t.Fatal(err)
	}
	if !shorted.Stale {
		t.Fatal("open-breaker response not marked stale")
	}
	if got := calls.Load(); got != before {
		t.Fatalf("open breaker still ran the characterizer (%d -> %d calls)", before, got)
	}
	if text := metricsText(t, ts.URL); !strings.Contains(text, "numaiod_breaker_open 1") {
		t.Errorf("metrics missing open breaker gauge:\n%s", text)
	}
}

// TestBreakerWithoutFallbackIs503: a machine that has never characterized
// successfully has no stale model to fall back on — once its breaker
// opens, requests get an explicit 503, not a hung worker.
func TestBreakerWithoutFallbackIs503(t *testing.T) {
	var calls atomic.Int64
	s := New(Config{
		Workers:          1,
		BreakerThreshold: 1,
		Clock:            resilience.NewAutoClock(time.Unix(0, 0)),
		Characterize: func(ctx context.Context, m *topology.Machine, cfg core.Config) (*core.MachineModel, error) {
			calls.Add(1)
			return nil, fmt.Errorf("always failing")
		},
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	if status, _ := postBody(t, ts.URL+"/v1/characterize", resilienceBody); status != http.StatusInternalServerError {
		t.Fatalf("first failure = %d, want 500", status)
	}
	status, body := postBody(t, ts.URL+"/v1/characterize", resilienceBody)
	if status != http.StatusServiceUnavailable {
		t.Fatalf("open breaker with no fallback = %d %s, want 503", status, body)
	}
	if got := calls.Load(); got != 1 {
		t.Fatalf("breaker admitted %d calls, want 1", got)
	}
}

// TestCharacterizeRetriesRecover: transient failures inside the retry
// budget are invisible to the client, and the retry counter reports them.
// The injected auto-clock absorbs the backoff, so no real sleeping.
func TestCharacterizeRetriesRecover(t *testing.T) {
	var calls atomic.Int64
	s := New(Config{
		Workers: 1,
		Retries: 2,
		Clock:   resilience.NewAutoClock(time.Unix(0, 0)),
		Characterize: func(ctx context.Context, m *topology.Machine, cfg core.Config) (*core.MachineModel, error) {
			if calls.Add(1) < 3 {
				return nil, fmt.Errorf("transient failure %d", calls.Load())
			}
			return DefaultCharacterize(ctx, m, cfg)
		},
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	start := time.Now()
	status, body := postBody(t, ts.URL+"/v1/characterize", resilienceBody)
	if status != http.StatusOK {
		t.Fatalf("characterize with retry budget = %d %s", status, body)
	}
	if got := calls.Load(); got != 3 {
		t.Fatalf("characterizer ran %d times, want 3 (two retries)", got)
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("retries took %v of real time; the fake clock should absorb backoff", elapsed)
	}
	if text := metricsText(t, ts.URL); !strings.Contains(text, "numaiod_characterize_retries_total 2") {
		t.Errorf("metrics missing retry counter:\n%s", text)
	}
}

// TestRequestDeadlineIs504: a characterization that outlives the request
// timeout is abandoned and reported as a gateway timeout. The auto-clock
// fires the deadline immediately, so the test never really waits.
func TestRequestDeadlineIs504(t *testing.T) {
	s := New(Config{
		Workers:        1,
		RequestTimeout: time.Second,
		Clock:          resilience.NewAutoClock(time.Unix(0, 0)),
		Characterize: func(ctx context.Context, m *topology.Machine, cfg core.Config) (*core.MachineModel, error) {
			<-ctx.Done()
			return nil, context.Cause(ctx)
		},
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	status, body := postBody(t, ts.URL+"/v1/characterize", resilienceBody)
	if status != http.StatusGatewayTimeout {
		t.Fatalf("hung characterization = %d %s, want 504", status, body)
	}
}
