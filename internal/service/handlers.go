package service

import (
	"context"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"time"

	"encoding/json"

	"numaio/internal/cli"
	"numaio/internal/cluster"
	"numaio/internal/core"
	"numaio/internal/numa"
	"numaio/internal/sched"
	"numaio/internal/telemetry"
	"numaio/internal/topology"
	"numaio/internal/units"
)

// configJSON is the wire form of core.Config; zero fields take the
// characterizer defaults.
type configJSON struct {
	Threads        int     `json:"threads,omitempty"`
	Repeats        int     `json:"repeats,omitempty"`
	BytesPerThread int64   `json:"bytes_per_thread,omitempty"`
	GapThreshold   float64 `json:"gap_threshold,omitempty"`
	Sigma          float64 `json:"sigma,omitempty"`
	// Parallelism overrides the daemon's measurement worker-pool width for
	// this request; 0 inherits the daemon default. Affects wall time only —
	// the resulting model is identical at any setting.
	Parallelism int `json:"parallelism,omitempty"`
}

func (c *configJSON) toCore() core.Config {
	if c == nil {
		return core.Config{}
	}
	return core.Config{
		Threads:        c.Threads,
		Repeats:        c.Repeats,
		BytesPerThread: units.Size(c.BytesPerThread),
		GapThreshold:   c.GapThreshold,
		Sigma:          c.Sigma,
		Parallelism:    c.Parallelism,
	}
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	// WriteMetrics renders the historical block first, then the additive
	// series (solver, pool, occupancy, trace and flight state) — so the
	// historical bytes, and every scraper grep, stay untouched.
	s.WriteMetrics(w)
}

type characterizeRequest struct {
	Machine json.RawMessage `json:"machine,omitempty"`
	Config  *configJSON     `json:"config,omitempty"`
	Async   bool            `json:"async,omitempty"`
}

type characterizeResponse struct {
	Fingerprint   string  `json:"fingerprint"`
	Cached        bool    `json:"cached"`
	CostReduction float64 `json:"cost_reduction"`
	// Stale marks a model served from an expired cache entry because
	// recomputation failed (or its circuit breaker is open) — the last
	// good model, degraded gracefully rather than a 500.
	Stale bool               `json:"stale,omitempty"`
	Model *core.MachineModel `json:"model"`
}

func (s *Server) handleCharacterize(w http.ResponseWriter, r *http.Request) {
	var req characterizeRequest
	if err := decodeBody(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	m, err := cli.ResolveMachine(req.Machine)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	cfg := req.Config.toCore()

	if req.Async {
		job := s.jobs.New()
		snapshot := *job // the worker goroutine mutates job; respond with a copy
		err := s.pool.Submit(func() {
			s.jobs.SetState(job.ID, JobRunning, "", nil)
			mm, fp, _, _, err := s.characterizeCached(context.Background(), m, cfg)
			if err != nil {
				s.jobs.SetState(job.ID, JobFailed, fp, err)
				return
			}
			s.jobs.SetState(job.ID, JobDone, mm.Fingerprint, nil)
		})
		if err != nil {
			writeError(w, http.StatusServiceUnavailable, "%v", err)
			return
		}
		writeJSON(w, http.StatusAccepted, snapshot)
		return
	}

	mm, fp, cached, stale, err := s.characterizeCached(r.Context(), m, cfg)
	if err != nil {
		writeError(w, errStatus(err), "characterization failed: %v", err)
		return
	}
	writeJSON(w, http.StatusOK, characterizeResponse{
		Fingerprint:   fp,
		Cached:        cached,
		CostReduction: mm.CostReduction(),
		Stale:         stale,
		Model:         mm,
	})
}

func (s *Server) handleModel(w http.ResponseWriter, r *http.Request) {
	fp := r.PathValue("fingerprint")
	mm, ok := s.cache.FindByFingerprint(fp)
	if !ok {
		writeError(w, http.StatusNotFound, "no cached model with fingerprint %q", fp)
		return
	}
	writeJSON(w, http.StatusOK, mm)
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	job, ok := s.jobs.Get(id)
	if !ok {
		writeError(w, http.StatusNotFound, "no job %q", id)
		return
	}
	writeJSON(w, http.StatusOK, job)
}

type predictRequest struct {
	Machine     json.RawMessage `json:"machine,omitempty"`
	Fingerprint string          `json:"fingerprint,omitempty"`
	Config      *configJSON     `json:"config,omitempty"`
	Target      int             `json:"target"`
	Mode        string          `json:"mode"`
	// Mix maps node IDs (as JSON object keys, e.g. "2") to traffic
	// fractions summing to 1; Counts to process counts. Exactly one of
	// the two must be given.
	Mix    map[string]float64 `json:"mix,omitempty"`
	Counts map[string]int     `json:"counts,omitempty"`
}

type predictResponse struct {
	Fingerprint   string  `json:"fingerprint"`
	Target        int     `json:"target"`
	Mode          string  `json:"mode"`
	PredictedBPS  float64 `json:"predicted_bps"`
	PredictedGbps float64 `json:"predicted_gbps"`
}

// modelForRequest resolves the whole-host model behind a request that
// carries either a cached fingerprint or a machine to (re-)characterize.
func (s *Server) modelForRequest(ctx context.Context, fingerprint string, machine json.RawMessage, cfg core.Config) (*core.MachineModel, int, error) {
	if fingerprint != "" {
		mm, ok := s.cache.FindByFingerprint(fingerprint)
		if !ok {
			return nil, http.StatusNotFound, fmt.Errorf("no cached model with fingerprint %q (characterize first or send a machine)", fingerprint)
		}
		return mm, 0, nil
	}
	m, err := cli.ResolveMachine(machine)
	if err != nil {
		return nil, http.StatusBadRequest, err
	}
	mm, _, _, _, err := s.characterizeCached(ctx, m, cfg)
	if err != nil {
		return nil, errStatus(err), err
	}
	return mm, 0, nil
}

// predictOne evaluates Eq. 1 for one (target, mode, mix-or-counts) item
// against an already resolved whole-host model — the shared core of the
// single and batch predict endpoints. All failures are client errors.
func predictOne(mm *core.MachineModel, target int, modeStr string, mixIn map[string]float64, countsIn map[string]int) (units.Bandwidth, error) {
	mode, err := core.ParseMode(modeStr)
	if err != nil {
		return 0, err
	}
	if (len(mixIn) == 0) == (len(countsIn) == 0) {
		return 0, fmt.Errorf("exactly one of mix or counts is required")
	}
	model, err := mm.ModelFor(topology.NodeID(target), mode)
	if err != nil {
		return 0, err
	}
	if len(mixIn) > 0 {
		mix, err := nodeKeys(mixIn)
		if err != nil {
			return 0, err
		}
		return model.Predict(mix, nil)
	}
	counts, err := nodeKeys(countsIn)
	if err != nil {
		return 0, err
	}
	return model.PredictCounts(counts, nil)
}

// predictCacheKey canonicalizes a predict request: machine/fingerprint,
// characterization options, target, mode and the sorted mix or counts.
// Requests that differ only in JSON key order map to the same key.
func predictCacheKey(req *predictRequest, cfg core.Config) string {
	var b strings.Builder
	b.Write(req.Machine)
	b.WriteByte('|')
	b.WriteString(req.Fingerprint)
	b.WriteByte('|')
	b.WriteString(configKey(cfg))
	fmt.Fprintf(&b, "|%d|%s", req.Target, req.Mode)
	appendMixKey(&b, req.Mix, req.Counts)
	return b.String()
}

// appendMixKey appends the sorted canonical form of a mix or counts map.
func appendMixKey(b *strings.Builder, mix map[string]float64, counts map[string]int) {
	if len(mix) > 0 {
		keys := make([]string, 0, len(mix))
		for k := range mix {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		b.WriteString("|mix")
		for _, k := range keys {
			b.WriteByte(',')
			b.WriteString(k)
			b.WriteByte('=')
			b.WriteString(strconv.FormatFloat(mix[k], 'g', -1, 64))
		}
	}
	if len(counts) > 0 {
		keys := make([]string, 0, len(counts))
		for k := range counts {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		b.WriteString("|counts")
		for _, k := range keys {
			b.WriteByte(',')
			b.WriteString(k)
			b.WriteByte('=')
			b.WriteString(strconv.Itoa(counts[k]))
		}
	}
}

func (s *Server) handlePredict(w http.ResponseWriter, r *http.Request) {
	var req predictRequest
	if err := decodeBody(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	// Cheap validation before any model work, so malformed requests cannot
	// trigger a characterization.
	if _, err := core.ParseMode(req.Mode); err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if (len(req.Mix) == 0) == (len(req.Counts) == 0) {
		writeError(w, http.StatusBadRequest, "exactly one of mix or counts is required")
		return
	}
	if err := firstErr(validateNodeKeys(req.Mix), validateNodeKeys(req.Counts)); err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	cfg := req.Config.toCore()
	key := predictCacheKey(&req, cfg)
	lookupStart := time.Now()
	body, hit := s.predictCache.Get(key)
	telemetry.StagesFromContext(r.Context()).Add("cache", time.Since(lookupStart))
	if hit {
		writeJSONBytes(w, http.StatusOK, body)
		return
	}
	mm, status, err := s.modelForRequest(r.Context(), req.Fingerprint, req.Machine, cfg)
	if err != nil {
		writeError(w, status, "%v", err)
		return
	}
	predicted, err := predictOne(mm, req.Target, req.Mode, req.Mix, req.Counts)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	writeJSONCached(w, http.StatusOK, predictResponse{
		Fingerprint:   mm.Fingerprint,
		Target:        req.Target,
		Mode:          req.Mode,
		PredictedBPS:  float64(predicted),
		PredictedGbps: predicted.Gbps(),
	}, s.predictCache, key)
}

// predictBatchRequest amortizes one model resolution over many prediction
// items — POST /v1/predict/batch.
type predictBatchRequest struct {
	Machine     json.RawMessage    `json:"machine,omitempty"`
	Fingerprint string             `json:"fingerprint,omitempty"`
	Config      *configJSON        `json:"config,omitempty"`
	Items       []predictBatchItem `json:"items"`
}

type predictBatchItem struct {
	Target int                `json:"target"`
	Mode   string             `json:"mode"`
	Mix    map[string]float64 `json:"mix,omitempty"`
	Counts map[string]int     `json:"counts,omitempty"`
}

// predictBatchResult is one item's outcome; a bad item reports its error
// in place without failing the batch.
type predictBatchResult struct {
	Target        int     `json:"target"`
	Mode          string  `json:"mode"`
	PredictedBPS  float64 `json:"predicted_bps,omitempty"`
	PredictedGbps float64 `json:"predicted_gbps,omitempty"`
	Error         string  `json:"error,omitempty"`
}

type predictBatchResponse struct {
	Fingerprint string               `json:"fingerprint"`
	Results     []predictBatchResult `json:"results"`
}

func (s *Server) handlePredictBatch(w http.ResponseWriter, r *http.Request) {
	var req predictBatchRequest
	if err := decodeBody(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if len(req.Items) == 0 {
		writeError(w, http.StatusBadRequest, "batch has no items")
		return
	}
	mm, status, err := s.modelForRequest(r.Context(), req.Fingerprint, req.Machine, req.Config.toCore())
	if err != nil {
		writeError(w, status, "%v", err)
		return
	}
	resp := predictBatchResponse{
		Fingerprint: mm.Fingerprint,
		Results:     make([]predictBatchResult, len(req.Items)),
	}
	for i, it := range req.Items {
		res := predictBatchResult{Target: it.Target, Mode: it.Mode}
		if predicted, err := predictOne(mm, it.Target, it.Mode, it.Mix, it.Counts); err != nil {
			res.Error = err.Error()
		} else {
			res.PredictedBPS = float64(predicted)
			res.PredictedGbps = predicted.Gbps()
		}
		resp.Results[i] = res
	}
	writeJSON(w, http.StatusOK, resp)
}

// validateNodeKeys checks that every key parses as a node ID without
// building the converted map — the cheap pre-resolution validation pass.
func validateNodeKeys[V any](in map[string]V) error {
	for k := range in {
		if _, err := strconv.Atoi(k); err != nil {
			return fmt.Errorf("node key %q is not an integer", k)
		}
	}
	return nil
}

// firstErr returns the first non-nil error.
func firstErr(errs ...error) error {
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// nodeKeys converts a JSON object keyed by node-ID strings into a NodeID
// map.
func nodeKeys[V any](in map[string]V) (map[topology.NodeID]V, error) {
	out := make(map[topology.NodeID]V, len(in))
	for k, v := range in {
		n, err := strconv.Atoi(k)
		if err != nil {
			return nil, fmt.Errorf("node key %q is not an integer", k)
		}
		out[topology.NodeID(n)] = v
	}
	return out, nil
}

type placeRequest struct {
	Machine     json.RawMessage `json:"machine,omitempty"`
	Config      *configJSON     `json:"config,omitempty"`
	Target      int             `json:"target"`
	Engine      string          `json:"engine,omitempty"` // default memcpy
	Tasks       int             `json:"tasks"`
	Policies    []string        `json:"policies,omitempty"` // default: all
	Evaluate    bool            `json:"evaluate,omitempty"`
	SizePerTask int64           `json:"size_per_task,omitempty"`
	// Replicas > 1 switches to cluster placement over that many identical
	// hosts under ClusterPolicy (default model-greedy).
	Replicas      int    `json:"replicas,omitempty"`
	ClusterPolicy string `json:"cluster_policy,omitempty"`
}

type placementResult struct {
	Policy      string  `json:"policy"`
	Placement   []int   `json:"placement"`
	EstimateBPS float64 `json:"estimate_bps"`
	MeasuredBPS float64 `json:"measured_bps,omitempty"`
}

type clusterAssignment struct {
	Host string `json:"host"`
	Node int    `json:"node"`
}

type placeResponse struct {
	Fingerprint string            `json:"fingerprint"`
	Target      int               `json:"target"`
	Engine      string            `json:"engine"`
	Tasks       int               `json:"tasks"`
	Results     []placementResult `json:"results,omitempty"`
	// Cluster mode only:
	ClusterPolicy string              `json:"cluster_policy,omitempty"`
	Assignments   []clusterAssignment `json:"assignments,omitempty"`
	AggregateBPS  float64             `json:"aggregate_bps,omitempty"`
}

// placeCacheKey canonicalizes every placement-shaping field of a place
// request. Placements and (simulated) evaluations are deterministic, so
// equal-shaped requests share one rendered response.
func placeCacheKey(req *placeRequest, cfg core.Config) string {
	var b strings.Builder
	b.Write(req.Machine)
	b.WriteByte('|')
	b.WriteString(configKey(cfg))
	fmt.Fprintf(&b, "|%d|%s|%d|%t|%d|%d|%s|",
		req.Target, req.Engine, req.Tasks, req.Evaluate, req.SizePerTask,
		req.Replicas, req.ClusterPolicy)
	b.WriteString(strings.Join(req.Policies, ","))
	return b.String()
}

func (s *Server) handlePlace(w http.ResponseWriter, r *http.Request) {
	var req placeRequest
	if err := decodeBody(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if req.Tasks <= 0 {
		writeError(w, http.StatusBadRequest, "tasks must be positive")
		return
	}
	engine := req.Engine
	if engine == "" {
		engine = "memcpy"
	}
	req.Engine = engine // canonical for the cache key
	cfg := req.Config.toCore()
	key := placeCacheKey(&req, cfg)
	lookupStart := time.Now()
	body, hit := s.placeCache.Get(key)
	telemetry.StagesFromContext(r.Context()).Add("cache", time.Since(lookupStart))
	if hit {
		writeJSONBytes(w, http.StatusOK, body)
		return
	}
	m, err := cli.ResolveMachine(req.Machine)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	mm, _, _, _, err := s.characterizeCached(r.Context(), m, cfg)
	if err != nil {
		writeError(w, errStatus(err), "%v", err)
		return
	}
	target := topology.NodeID(req.Target)
	resp := placeResponse{Fingerprint: mm.Fingerprint, Target: req.Target, Engine: engine, Tasks: req.Tasks}

	if req.Replicas > 1 {
		if err := s.placeCluster(&resp, m, mm, target, engine, req); err != nil {
			writeError(w, http.StatusBadRequest, "%v", err)
			return
		}
		writeJSONCached(w, http.StatusOK, resp, s.placeCache, key)
		return
	}

	sys, err := numa.NewSystem(m.Clone())
	if err != nil {
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	sch, err := sched.FromMachineModel(sys, mm, target)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	policies := req.Policies
	if len(policies) == 0 {
		for _, p := range []sched.Policy{sched.LocalOnly, sched.HopDistance, sched.RoundRobin, sched.ClassBalanced} {
			policies = append(policies, p.String())
		}
	}
	for _, ps := range policies {
		p, err := sched.ParsePolicy(ps)
		if err != nil {
			writeError(w, http.StatusBadRequest, "%v", err)
			return
		}
		placement, err := sch.Place(engine, req.Tasks, p)
		if err != nil {
			writeError(w, http.StatusBadRequest, "%v", err)
			return
		}
		res := placementResult{Policy: ps, Placement: nodeInts(placement)}
		if est, err := sch.Estimate(engine, placement); err == nil {
			res.EstimateBPS = float64(est)
		}
		if req.Evaluate {
			rep, err := sch.Evaluate(engine, placement, units.Size(req.SizePerTask))
			if err != nil {
				writeError(w, http.StatusInternalServerError, "%v", err)
				return
			}
			res.MeasuredBPS = float64(rep.Aggregate)
		}
		resp.Results = append(resp.Results, res)
	}
	writeJSONCached(w, http.StatusOK, resp, s.placeCache, key)
}

// placeCluster handles the replicas > 1 arm: identical hosts sharing the
// cached characterization, placed with the cluster-level policies.
func (s *Server) placeCluster(resp *placeResponse, m *topology.Machine, mm *core.MachineModel, target topology.NodeID, engine string, req placeRequest) error {
	ps := req.ClusterPolicy
	if ps == "" {
		ps = cluster.ModelGreedy.String()
	}
	policy, err := cluster.ParsePolicy(ps)
	if err != nil {
		return err
	}
	var specs []cluster.HostSpec
	for i := 0; i < req.Replicas; i++ {
		sys, err := numa.NewSystem(m.Clone())
		if err != nil {
			return err
		}
		specs = append(specs, cluster.HostSpec{
			Name: fmt.Sprintf("host%d", i), Sys: sys, Models: mm, Target: target,
		})
	}
	cl, err := cluster.FromModels(specs)
	if err != nil {
		return err
	}
	assignments, err := cl.Place(engine, req.Tasks, policy)
	if err != nil {
		return err
	}
	resp.ClusterPolicy = ps
	for _, a := range assignments {
		resp.Assignments = append(resp.Assignments, clusterAssignment{Host: a.Host, Node: int(a.Node)})
	}
	if req.Evaluate {
		ev, err := cl.Evaluate(engine, assignments, units.Size(req.SizePerTask))
		if err != nil {
			return err
		}
		resp.AggregateBPS = float64(ev.Aggregate)
	}
	return nil
}

func nodeInts(nodes []topology.NodeID) []int {
	out := make([]int, len(nodes))
	for i, n := range nodes {
		out[i] = int(n)
	}
	return out
}

type degradeJSON struct {
	A      string  `json:"a"`
	B      string  `json:"b"`
	Factor float64 `json:"factor"`
}

type whatifRequest struct {
	Machine json.RawMessage `json:"machine,omitempty"`
	Config  *configJSON     `json:"config,omitempty"`
	Target  int             `json:"target"`
	Modes   []string        `json:"modes,omitempty"` // default: write and read
	Degrade []degradeJSON   `json:"degrade"`
}

type nodeDiffJSON struct {
	Node         int     `json:"node"`
	BeforeBPS    float64 `json:"before_bps"`
	AfterBPS     float64 `json:"after_bps"`
	ClassBefore  int     `json:"class_before"`
	ClassAfter   int     `json:"class_after"`
	RelChange    float64 `json:"rel_change"`
	ClassChanged bool    `json:"class_changed"`
}

type whatifModeResult struct {
	Mode         string         `json:"mode"`
	Diffs        []nodeDiffJSON `json:"diffs"`
	ChangedNodes []int          `json:"changed_nodes"`
}

type whatifResponse struct {
	BeforeFingerprint string             `json:"before_fingerprint"`
	AfterFingerprint  string             `json:"after_fingerprint"`
	Target            int                `json:"target"`
	Results           []whatifModeResult `json:"results"`
}

func (s *Server) handleWhatif(w http.ResponseWriter, r *http.Request) {
	var req whatifRequest
	if err := decodeBody(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if len(req.Degrade) == 0 {
		writeError(w, http.StatusBadRequest, "degrade list is empty: nothing to re-characterize")
		return
	}
	base, err := cli.ResolveMachine(req.Machine)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	mutant := base.Clone()
	for _, d := range req.Degrade {
		if err := mutant.DegradeLinkBetween(d.A, d.B, d.Factor); err != nil {
			writeError(w, http.StatusBadRequest, "%v", err)
			return
		}
	}
	cfg := req.Config.toCore()
	beforeMM, beforeFP, _, _, err := s.characterizeCached(r.Context(), base, cfg)
	if err != nil {
		writeError(w, errStatus(err), "%v", err)
		return
	}
	afterMM, afterFP, _, _, err := s.characterizeCached(r.Context(), mutant, cfg)
	if err != nil {
		writeError(w, errStatus(err), "%v", err)
		return
	}

	modes := req.Modes
	if len(modes) == 0 {
		modes = []string{core.ModeWrite.String(), core.ModeRead.String()}
	}
	resp := whatifResponse{BeforeFingerprint: beforeFP, AfterFingerprint: afterFP, Target: req.Target}
	for _, ms := range modes {
		mode, err := core.ParseMode(ms)
		if err != nil {
			writeError(w, http.StatusBadRequest, "%v", err)
			return
		}
		before, err := beforeMM.ModelFor(topology.NodeID(req.Target), mode)
		if err != nil {
			writeError(w, http.StatusBadRequest, "%v", err)
			return
		}
		after, err := afterMM.ModelFor(topology.NodeID(req.Target), mode)
		if err != nil {
			writeError(w, http.StatusBadRequest, "%v", err)
			return
		}
		diffs, err := core.Diff(before, after)
		if err != nil {
			writeError(w, http.StatusInternalServerError, "%v", err)
			return
		}
		res := whatifModeResult{Mode: ms}
		for _, d := range diffs {
			res.Diffs = append(res.Diffs, nodeDiffJSON{
				Node:         int(d.Node),
				BeforeBPS:    float64(d.Before),
				AfterBPS:     float64(d.After),
				ClassBefore:  d.ClassBefore,
				ClassAfter:   d.ClassAfter,
				RelChange:    d.RelChange,
				ClassChanged: d.ClassChanged,
			})
			if d.ClassChanged {
				res.ChangedNodes = append(res.ChangedNodes, int(d.Node))
			}
		}
		sort.Ints(res.ChangedNodes)
		resp.Results = append(resp.Results, res)
	}
	writeJSON(w, http.StatusOK, resp)
}
