package service_test

import (
	"encoding/json"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"numaio/internal/service"
)

// TestTraceRoundTrip drives the /debug/trace lifecycle end to end: start,
// run a characterization, stop, download, and check the recording is a
// valid non-empty Chrome trace with both HTTP and measurement spans.
func TestTraceRoundTrip(t *testing.T) {
	var runs atomic.Int64
	ts := newTestServer(t, &runs)

	// Download before anything is recorded: 404.
	if status, _ := getJSON(t, ts.URL+"/debug/trace"); status != http.StatusNotFound {
		t.Fatalf("download with no trace = %d, want 404", status)
	}

	status, body := postJSON(t, ts.URL+"/debug/trace/start", "")
	if status != http.StatusOK {
		t.Fatalf("start = %d %s", status, body)
	}
	var state struct {
		Tracing bool `json:"tracing"`
		Events  int  `json:"events"`
	}
	if err := json.Unmarshal(body, &state); err != nil || !state.Tracing {
		t.Fatalf("start response %s (err %v)", body, err)
	}

	if status, body := postJSON(t, ts.URL+"/v1/characterize", fastBody); status != http.StatusOK {
		t.Fatalf("characterize = %d %s", status, body)
	}

	status, body = postJSON(t, ts.URL+"/debug/trace/stop", "")
	if status != http.StatusOK {
		t.Fatalf("stop = %d %s", status, body)
	}
	if err := json.Unmarshal(body, &state); err != nil || state.Tracing || state.Events == 0 {
		t.Fatalf("stop response %s (err %v): want tracing=false, events>0", body, err)
	}

	// The stopped trace stays downloadable.
	status, body = getJSON(t, ts.URL+"/debug/trace")
	if status != http.StatusOK {
		t.Fatalf("download = %d", status)
	}
	var doc struct {
		DisplayTimeUnit string `json:"displayTimeUnit"`
		TraceEvents     []struct {
			Name string `json:"name"`
			Cat  string `json:"cat"`
			Ph   string `json:"ph"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(body, &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if doc.DisplayTimeUnit != "ms" || len(doc.TraceEvents) == 0 {
		t.Fatalf("trace unit %q with %d events", doc.DisplayTimeUnit, len(doc.TraceEvents))
	}
	cats := make(map[string]int)
	for _, e := range doc.TraceEvents {
		cats[e.Cat]++
	}
	if cats["http"] == 0 {
		t.Error("no http request spans recorded")
	}
	if cats["measure"] == 0 {
		t.Error("no measurement cell spans recorded")
	}
	if cats["characterize"] == 0 {
		t.Error("no characterization sweep spans recorded")
	}

	// A characterization after stop must not grow the frozen recording.
	if status, body := postJSON(t, ts.URL+"/v1/characterize",
		`{"machine": "amd-4s8n", "config": {"repeats": 1, "sigma": -1}}`); status != http.StatusOK {
		t.Fatalf("post-stop characterize = %d %s", status, body)
	}
	_, again := getJSON(t, ts.URL+"/debug/trace")
	if string(again) != string(body) {
		t.Error("stopped trace changed after tracing was disabled")
	}
}

// TestTraceMetricsGauges checks the numaiod_trace_* series follow the
// recorder lifecycle.
func TestTraceMetricsGauges(t *testing.T) {
	var runs atomic.Int64
	ts := newTestServer(t, &runs)

	_, body := getJSON(t, ts.URL+"/metrics")
	if !strings.Contains(string(body), "numaiod_trace_active 0") {
		t.Fatalf("metrics before start missing numaiod_trace_active 0:\n%s", body)
	}
	postJSON(t, ts.URL+"/debug/trace/start", "")
	_, body = getJSON(t, ts.URL+"/metrics")
	if !strings.Contains(string(body), "numaiod_trace_active 1") {
		t.Fatalf("metrics during trace missing numaiod_trace_active 1")
	}
	for _, name := range []string{
		"numaiod_solver_solves_total",
		"numaiod_solver_solve_seconds_total",
		"numaiod_solver_resets_total",
		"numaiod_solver_incremental_total",
		"numaiod_solver_full_total",
		"numaiod_solver_pool_hits_total",
		"numaiod_solver_pool_misses_total",
		"numaiod_measure_workers_busy",
		"numaiod_trace_events",
	} {
		if !strings.Contains(string(body), name) {
			t.Errorf("metrics missing additive series %s", name)
		}
	}
}

// TestTraceLifecycleConcurrent races the /debug/trace control plane —
// start, stop, download — against live characterizations. The trace
// control must never lose the downloadable recording, panic, or hand a
// request span a tracer mid-teardown; every download must be either a 404
// or a well-formed Chrome trace. Run under -race in CI.
func TestTraceLifecycleConcurrent(t *testing.T) {
	var runs atomic.Int64
	ts := newTestServer(t, &runs)

	bodies := []string{
		fastBody,
		`{"machine": "amd-4s8n", "config": {"repeats": 1, "sigma": -1}}`,
	}
	const iters = 20
	var wg sync.WaitGroup
	wg.Add(4)
	go func() {
		defer wg.Done()
		for i := 0; i < iters; i++ {
			if status, body := postJSON(t, ts.URL+"/debug/trace/start", ""); status != http.StatusOK {
				t.Errorf("start = %d %s", status, body)
				return
			}
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < iters; i++ {
			if status, body := postJSON(t, ts.URL+"/debug/trace/stop", ""); status != http.StatusOK {
				t.Errorf("stop = %d %s", status, body)
				return
			}
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < iters; i++ {
			status, body := getJSON(t, ts.URL+"/debug/trace")
			switch status {
			case http.StatusNotFound:
			case http.StatusOK:
				var doc struct {
					TraceEvents []json.RawMessage `json:"traceEvents"`
				}
				if err := json.Unmarshal(body, &doc); err != nil {
					t.Errorf("downloaded trace is not valid JSON: %v", err)
					return
				}
			default:
				t.Errorf("download = %d", status)
				return
			}
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < iters; i++ {
			if status, body := postJSON(t, ts.URL+"/v1/characterize", bodies[i%len(bodies)]); status != http.StatusOK {
				t.Errorf("characterize = %d %s", status, body)
				return
			}
		}
	}()
	wg.Wait()

	// After the dust settles the lifecycle still works end to end.
	postJSON(t, ts.URL+"/debug/trace/start", "")
	postJSON(t, ts.URL+"/v1/characterize", fastBody)
	postJSON(t, ts.URL+"/debug/trace/stop", "")
	if status, _ := getJSON(t, ts.URL+"/debug/trace"); status != http.StatusOK {
		t.Errorf("post-race download = %d, want 200", status)
	}
}

// TestMetricsAndRespCacheConcurrent hammers the request-path counters from
// 32 goroutines — the sharded-counter replacement for the old single-mutex
// Metrics — alongside a RespCache, and checks nothing is lost. Run under
// -race in CI.
func TestMetricsAndRespCacheConcurrent(t *testing.T) {
	m := service.NewMetrics()
	rc := service.NewRespCache(64, time.Minute)
	const workers, per = 32, 500

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				m.ObserveRequest("/v1/predict", 200)
				m.ObserveRequest("/v1/place", 400+w%2)
				m.ObserveCharacterization(time.Duration(i%7) * time.Millisecond)
				m.ObserveCharacterizeRetry()
				m.ObserveStaleServed()
				if _, ok := rc.Get("k"); !ok {
					rc.Put("k", []byte("{}"))
				}
			}
		}(w)
	}
	wg.Wait()

	if got := m.RequestCount("/v1/predict"); got != workers*per {
		t.Errorf("predict requests = %d, want %d", got, workers*per)
	}
	if got := m.RequestCount("/v1/place"); got != workers*per {
		t.Errorf("place requests = %d, want %d", got, workers*per)
	}
	if got := m.StaleServed(); got != workers*per {
		t.Errorf("stale served = %d, want %d", got, workers*per)
	}
	stats := rc.Stats()
	if stats.Hits+stats.Misses != workers*per {
		t.Errorf("resp cache hits+misses = %d, want %d", stats.Hits+stats.Misses, workers*per)
	}
}
