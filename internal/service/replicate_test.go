package service_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"

	"numaio/internal/core"
	"numaio/internal/service"
)

// putJSON issues a PUT with a JSON body.
func putJSON(t *testing.T, url, body string) (int, []byte) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPut, url, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	return resp.StatusCode, buf.Bytes()
}

// characterizedModel runs a cheap characterization on ts and returns the
// resulting model JSON and its fingerprint.
func characterizedModel(t *testing.T, ts *httptest.Server) (string, string) {
	t.Helper()
	status, body := postJSON(t, ts.URL+"/v1/characterize", fastBody)
	if status != http.StatusOK {
		t.Fatalf("characterize = %d: %s", status, body)
	}
	var mm core.MachineModel
	if err := json.Unmarshal(body, &mm); err != nil {
		t.Fatal(err)
	}
	// GET the canonical model: the characterize response wraps it with
	// response-only fields (cached, duration) an install would reject.
	status, body = getJSON(t, ts.URL+"/v1/models/"+mm.Fingerprint)
	if status != http.StatusOK {
		t.Fatalf("model get = %d: %s", status, body)
	}
	return string(body), mm.Fingerprint
}

// TestModelInstallPush: PUT /v1/models/{fp} installs a model that is then
// servable by fingerprint without any local characterization.
func TestModelInstallPush(t *testing.T) {
	var srcRuns, dstRuns atomic.Int64
	src := newTestServer(t, &srcRuns)
	dst := newTestServer(t, &dstRuns)
	model, fp := characterizedModel(t, src)

	status, body := putJSON(t, dst.URL+"/v1/models/"+fp, model)
	if status != http.StatusOK {
		t.Fatalf("install = %d: %s", status, body)
	}
	var out struct {
		Installed bool `json:"installed"`
	}
	if err := json.Unmarshal(body, &out); err != nil || !out.Installed {
		t.Fatalf("install response %s (err %v)", body, err)
	}

	// The installed model serves fingerprint-addressed reads and predicts
	// with zero characterizer runs on the destination.
	if status, _ := getJSON(t, dst.URL+"/v1/models/"+fp); status != http.StatusOK {
		t.Errorf("GET installed model = %d", status)
	}
	byFP := fmt.Sprintf(`{"fingerprint": %q, "target": 0, "mode": "write", "mix": {"0": 1}}`, fp)
	if status, body := postJSON(t, dst.URL+"/v1/predict", byFP); status != http.StatusOK {
		t.Errorf("predict on installed model = %d: %s", status, body)
	}
	if dstRuns.Load() != 0 {
		t.Errorf("destination ran the characterizer %d times for a replicated model", dstRuns.Load())
	}

	// Validation: mismatched fingerprint and empty models are rejected.
	if status, _ := putJSON(t, dst.URL+"/v1/models/other-fp", model); status != http.StatusBadRequest {
		t.Errorf("mismatched fingerprint install = %d, want 400", status)
	}
	if status, _ := putJSON(t, dst.URL+"/v1/models/empty-fp", `{"models": []}`); status != http.StatusBadRequest {
		t.Errorf("empty model install = %d, want 400", status)
	}
}

// TestModelPull: POST /v1/models/pull fetches the model from the source
// replica, is idempotent, and surfaces unreachable sources as 502.
func TestModelPull(t *testing.T) {
	var srcRuns, dstRuns atomic.Int64
	src := newTestServer(t, &srcRuns)
	dst := newTestServer(t, &dstRuns)
	_, fp := characterizedModel(t, src)

	pull := fmt.Sprintf(`{"fingerprint": %q, "source": %q}`, fp, src.URL)
	status, body := postJSON(t, dst.URL+"/v1/models/pull", pull)
	if status != http.StatusOK {
		t.Fatalf("pull = %d: %s", status, body)
	}
	var out struct {
		Installed bool `json:"installed"`
	}
	if err := json.Unmarshal(body, &out); err != nil || !out.Installed {
		t.Fatalf("pull response %s (err %v)", body, err)
	}
	if status, _ := getJSON(t, dst.URL+"/v1/models/"+fp); status != http.StatusOK {
		t.Errorf("GET pulled model = %d", status)
	}

	// Second pull is an installed=false no-op, not a refetch.
	status, body = postJSON(t, dst.URL+"/v1/models/pull", pull)
	if status != http.StatusOK {
		t.Fatalf("repeat pull = %d: %s", status, body)
	}
	if err := json.Unmarshal(body, &out); err != nil || out.Installed {
		t.Errorf("repeat pull response %s (err %v), want installed=false", body, err)
	}
	if dstRuns.Load() != 0 {
		t.Errorf("destination ran the characterizer %d times", dstRuns.Load())
	}

	// Bad requests and dead sources.
	if status, _ := postJSON(t, dst.URL+"/v1/models/pull", `{"fingerprint": ""}`); status != http.StatusBadRequest {
		t.Errorf("empty pull = %d, want 400", status)
	}
	dead := httptest.NewServer(http.HandlerFunc(nil))
	dead.Close()
	deadPull := fmt.Sprintf(`{"fingerprint": "fp-unknown", "source": %q}`, dead.URL)
	if status, _ := postJSON(t, dst.URL+"/v1/models/pull", deadPull); status != http.StatusBadGateway {
		t.Errorf("pull from dead source = %d, want 502", status)
	}
	missing := fmt.Sprintf(`{"fingerprint": "fp-unknown", "source": %q}`, src.URL)
	if status, _ := postJSON(t, dst.URL+"/v1/models/pull", missing); status != http.StatusBadGateway {
		t.Errorf("pull of model the source lacks = %d, want 502", status)
	}
}

// TestRequestIDLogging: an X-Request-Id header shows up in the replica's
// structured request log and is echoed on the response; requests without
// one log no request_id attribute.
func TestRequestIDLogging(t *testing.T) {
	var buf lockedBuffer
	svc := service.New(service.Config{
		Logger: slog.New(slog.NewTextHandler(&buf, nil)),
	})
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	req, err := http.NewRequest(http.MethodGet, ts.URL+"/healthz", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("X-Request-Id", "gw-cafe-7")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get("X-Request-Id"); got != "gw-cafe-7" {
		t.Errorf("response request ID = %q, want gw-cafe-7", got)
	}
	if logged := buf.String(); !strings.Contains(logged, "request_id=gw-cafe-7") {
		t.Errorf("log missing request_id:\n%s", logged)
	}

	// Without the header the attribute is absent entirely.
	getJSON(t, ts.URL+"/healthz")
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	last := lines[len(lines)-1]
	if strings.Contains(last, "request_id") {
		t.Errorf("bare request logged a request_id: %s", last)
	}
}
