package service

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"time"

	"numaio/internal/telemetry"
)

// Metrics is the daemon's request-path metric state, built on the
// telemetry package's sharded atomic primitives: request counting and
// latency observation take no global lock, so the serving fast lane never
// serializes on a metrics mutex. WriteTo renders the historical
// Prometheus-style text byte-for-byte — every pre-existing metric name and
// ordering is preserved (serve-smoke greps and scrapers depend on it).
type Metrics struct {
	// requests maps endpoint -> per-status counters. The endpoint set is
	// tiny and fixed after startup, so lookups take a read lock and the
	// per-status increment is a sharded atomic add.
	epMu     sync.RWMutex
	requests map[string]*telemetry.IntCounterVec

	// lat is the characterization latency histogram (seconds).
	lat *telemetry.BucketHistogram

	// reqLat is the whole-request (v1 endpoints) latency histogram, with
	// the last request ID per bucket kept as an exemplar so a slow bucket
	// in /metrics links to a concrete request in the flight recorder.
	reqLat *telemetry.BucketHistogram

	// parallelism is the daemon's configured measurement worker-pool
	// width, exported as a gauge so latency shifts can be correlated with
	// the setting.
	parallelism telemetry.Gauge

	// Resilience counters: characterization attempts retried after a
	// failure, and responses served from an expired cache entry because
	// recomputation failed (or its breaker was open).
	charRetries telemetry.Counter
	staleServed telemetry.Counter
}

// defaultLatencyBuckets cover sub-millisecond simulated runs up to
// multi-second whole-host characterizations.
var defaultLatencyBuckets = []float64{0.001, 0.005, 0.025, 0.1, 0.5, 1, 2.5, 5, 10, 30}

// requestLatencyBuckets cover cache-hit responses (tens of microseconds)
// up to characterize-on-miss requests.
var requestLatencyBuckets = []float64{0.0001, 0.0005, 0.001, 0.005, 0.025, 0.1, 0.5, 1, 5}

// NewMetrics builds an empty registry.
func NewMetrics() *Metrics {
	return &Metrics{
		requests: make(map[string]*telemetry.IntCounterVec),
		lat:      telemetry.NewBucketHistogram(defaultLatencyBuckets),
		reqLat:   telemetry.NewBucketHistogram(requestLatencyBuckets),
	}
}

// SetParallelism records the daemon's measurement worker-pool width.
func (m *Metrics) SetParallelism(p int) { m.parallelism.Set(int64(p)) }

// ObserveCharacterizeRetry counts one retried characterization attempt.
func (m *Metrics) ObserveCharacterizeRetry() { m.charRetries.Inc() }

// ObserveStaleServed counts one response served from a stale model.
func (m *Metrics) ObserveStaleServed() { m.staleServed.Inc() }

// StaleServed returns the stale-response counter (tests).
func (m *Metrics) StaleServed() int64 { return m.staleServed.Value() }

// ObserveRequest counts one served request. The hot path — an endpoint
// seen before — is a read-locked map lookup plus an atomic increment.
func (m *Metrics) ObserveRequest(endpoint string, status int) {
	m.epMu.RLock()
	vec, ok := m.requests[endpoint]
	m.epMu.RUnlock()
	if !ok {
		m.epMu.Lock()
		if vec, ok = m.requests[endpoint]; !ok {
			vec = telemetry.NewIntCounterVec()
			m.requests[endpoint] = vec
		}
		m.epMu.Unlock()
	}
	vec.With(status).Inc()
}

// ObserveCharacterization records one Algorithm 1 run's wall time.
func (m *Metrics) ObserveCharacterization(d time.Duration) {
	m.lat.Observe(d.Seconds())
}

// ObserveRequestLatency records one v1 request's wall time in seconds,
// keeping rid as the bucket's exemplar.
func (m *Metrics) ObserveRequestLatency(seconds float64, rid string) {
	m.reqLat.ObserveExemplar(seconds, rid)
}

// RequestLatency returns the v1 request latency histogram for rendering.
func (m *Metrics) RequestLatency() *telemetry.BucketHistogram { return m.reqLat }

// RequestCount returns the total requests seen for an endpoint (all
// statuses); handy for tests.
func (m *Metrics) RequestCount(endpoint string) int64 {
	m.epMu.RLock()
	vec := m.requests[endpoint]
	m.epMu.RUnlock()
	if vec == nil {
		return 0
	}
	var total int64
	for _, s := range vec.Keys() {
		total += vec.Value(s)
	}
	return total
}

// WriteTo renders the registry (plus the supplied cache, job and breaker
// gauges) in the Prometheus text exposition format.
func (m *Metrics) WriteTo(w io.Writer, cache CacheStats, predict, place RespCacheStats, inflightJobs int64, openBreakers int) {
	fmt.Fprintln(w, "# HELP numaiod_requests_total Requests served, by endpoint and status.")
	fmt.Fprintln(w, "# TYPE numaiod_requests_total counter")
	m.epMu.RLock()
	endpoints := make([]string, 0, len(m.requests))
	for e := range m.requests {
		endpoints = append(endpoints, e)
	}
	vecs := make(map[string]*telemetry.IntCounterVec, len(endpoints))
	for _, e := range endpoints {
		vecs[e] = m.requests[e]
	}
	m.epMu.RUnlock()
	sort.Strings(endpoints)
	for _, e := range endpoints {
		for _, s := range vecs[e].Keys() {
			fmt.Fprintf(w, "numaiod_requests_total{endpoint=%q,status=\"%d\"} %d\n", e, s, vecs[e].Value(s))
		}
	}

	fmt.Fprintln(w, "# HELP numaiod_characterize_seconds Wall time of Algorithm 1 characterizations.")
	fmt.Fprintln(w, "# TYPE numaiod_characterize_seconds histogram")
	counts := m.lat.Counts()
	bounds := m.lat.Bounds()
	var cum int64
	for i, le := range bounds {
		cum += counts[i]
		fmt.Fprintf(w, "numaiod_characterize_seconds_bucket{le=\"%g\"} %d\n", le, cum)
	}
	cum += counts[len(bounds)]
	fmt.Fprintf(w, "numaiod_characterize_seconds_bucket{le=\"+Inf\"} %d\n", cum)
	fmt.Fprintf(w, "numaiod_characterize_seconds_sum %g\n", m.lat.Sum())
	fmt.Fprintf(w, "numaiod_characterize_seconds_count %d\n", m.lat.Total())

	fmt.Fprintln(w, "# HELP numaiod_characterize_parallelism Configured measurement worker-pool width.")
	fmt.Fprintln(w, "# TYPE numaiod_characterize_parallelism gauge")
	fmt.Fprintf(w, "numaiod_characterize_parallelism %d\n", m.parallelism.Value())

	fmt.Fprintln(w, "# HELP numaiod_model_cache Model cache activity.")
	fmt.Fprintln(w, "# TYPE numaiod_model_cache counter")
	fmt.Fprintf(w, "numaiod_model_cache{event=\"hit\"} %d\n", cache.Hits)
	fmt.Fprintf(w, "numaiod_model_cache{event=\"miss\"} %d\n", cache.Misses)
	fmt.Fprintf(w, "numaiod_model_cache{event=\"coalesced\"} %d\n", cache.Coalesced)
	fmt.Fprintf(w, "numaiod_model_cache{event=\"eviction\"} %d\n", cache.Evictions)
	fmt.Fprintln(w, "# HELP numaiod_model_cache_entries Live model cache entries.")
	fmt.Fprintln(w, "# TYPE numaiod_model_cache_entries gauge")
	fmt.Fprintf(w, "numaiod_model_cache_entries %d\n", cache.Entries)

	fmt.Fprintln(w, "# HELP numaiod_predict_cache_hits_total Predict responses served from the response cache.")
	fmt.Fprintln(w, "# TYPE numaiod_predict_cache_hits_total counter")
	fmt.Fprintf(w, "numaiod_predict_cache_hits_total %d\n", predict.Hits)
	fmt.Fprintln(w, "# HELP numaiod_predict_cache_misses_total Predict requests that missed the response cache.")
	fmt.Fprintln(w, "# TYPE numaiod_predict_cache_misses_total counter")
	fmt.Fprintf(w, "numaiod_predict_cache_misses_total %d\n", predict.Misses)
	fmt.Fprintln(w, "# HELP numaiod_predict_cache_entries Rendered predict responses currently cached.")
	fmt.Fprintln(w, "# TYPE numaiod_predict_cache_entries gauge")
	fmt.Fprintf(w, "numaiod_predict_cache_entries %d\n", predict.Entries)
	fmt.Fprintln(w, "# HELP numaiod_place_cache_hits_total Place responses served from the response cache.")
	fmt.Fprintln(w, "# TYPE numaiod_place_cache_hits_total counter")
	fmt.Fprintf(w, "numaiod_place_cache_hits_total %d\n", place.Hits)
	fmt.Fprintln(w, "# HELP numaiod_place_cache_misses_total Place requests that missed the response cache.")
	fmt.Fprintln(w, "# TYPE numaiod_place_cache_misses_total counter")
	fmt.Fprintf(w, "numaiod_place_cache_misses_total %d\n", place.Misses)
	fmt.Fprintln(w, "# HELP numaiod_place_cache_entries Rendered place responses currently cached.")
	fmt.Fprintln(w, "# TYPE numaiod_place_cache_entries gauge")
	fmt.Fprintf(w, "numaiod_place_cache_entries %d\n", place.Entries)
	fmt.Fprintln(w, "# HELP numaiod_inflight_jobs Characterizations currently holding a worker slot.")
	fmt.Fprintln(w, "# TYPE numaiod_inflight_jobs gauge")
	fmt.Fprintf(w, "numaiod_inflight_jobs %d\n", inflightJobs)

	fmt.Fprintln(w, "# HELP numaiod_characterize_retries_total Characterization attempts retried after a failure.")
	fmt.Fprintln(w, "# TYPE numaiod_characterize_retries_total counter")
	fmt.Fprintf(w, "numaiod_characterize_retries_total %d\n", m.charRetries.Value())
	fmt.Fprintln(w, "# HELP numaiod_stale_served_total Responses served from an expired cache entry after a failed recomputation.")
	fmt.Fprintln(w, "# TYPE numaiod_stale_served_total counter")
	fmt.Fprintf(w, "numaiod_stale_served_total %d\n", m.staleServed.Value())
	fmt.Fprintln(w, "# HELP numaiod_stale_models Expired models retained as stale fallbacks.")
	fmt.Fprintln(w, "# TYPE numaiod_stale_models gauge")
	fmt.Fprintf(w, "numaiod_stale_models %d\n", cache.Stale)
	fmt.Fprintln(w, "# HELP numaiod_breaker_open Characterization circuit breakers currently open.")
	fmt.Fprintln(w, "# TYPE numaiod_breaker_open gauge")
	fmt.Fprintf(w, "numaiod_breaker_open %d\n", openBreakers)
}
