package service

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"time"
)

// Metrics is a small in-process registry rendered as Prometheus-style
// plain text on /metrics: request counters by endpoint and status,
// characterization latency histogram, cache counters and job gauges.
type Metrics struct {
	mu       sync.Mutex
	requests map[string]map[int]int64 // endpoint -> status -> count

	// Characterization latency histogram (seconds).
	latBuckets []float64
	latCounts  []int64 // len(latBuckets)+1; last bucket is +Inf
	latSum     float64
	latTotal   int64

	// parallelism is the daemon's configured measurement worker-pool
	// width, exported as a gauge so latency shifts can be correlated with
	// the setting.
	parallelism int

	// Resilience counters: characterization attempts retried after a
	// failure, and responses served from an expired cache entry because
	// recomputation failed (or its breaker was open).
	charRetries int64
	staleServed int64
}

// defaultLatencyBuckets cover sub-millisecond simulated runs up to
// multi-second whole-host characterizations.
var defaultLatencyBuckets = []float64{0.001, 0.005, 0.025, 0.1, 0.5, 1, 2.5, 5, 10, 30}

// NewMetrics builds an empty registry.
func NewMetrics() *Metrics {
	return &Metrics{
		requests:   make(map[string]map[int]int64),
		latBuckets: defaultLatencyBuckets,
		latCounts:  make([]int64, len(defaultLatencyBuckets)+1),
	}
}

// SetParallelism records the daemon's measurement worker-pool width.
func (m *Metrics) SetParallelism(p int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.parallelism = p
}

// ObserveCharacterizeRetry counts one retried characterization attempt.
func (m *Metrics) ObserveCharacterizeRetry() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.charRetries++
}

// ObserveStaleServed counts one response served from a stale model.
func (m *Metrics) ObserveStaleServed() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.staleServed++
}

// StaleServed returns the stale-response counter (tests).
func (m *Metrics) StaleServed() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.staleServed
}

// ObserveRequest counts one served request.
func (m *Metrics) ObserveRequest(endpoint string, status int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	byStatus, ok := m.requests[endpoint]
	if !ok {
		byStatus = make(map[int]int64)
		m.requests[endpoint] = byStatus
	}
	byStatus[status]++
}

// ObserveCharacterization records one Algorithm 1 run's wall time.
func (m *Metrics) ObserveCharacterization(d time.Duration) {
	s := d.Seconds()
	m.mu.Lock()
	defer m.mu.Unlock()
	m.latSum += s
	m.latTotal++
	for i, le := range m.latBuckets {
		if s <= le {
			m.latCounts[i]++
			return
		}
	}
	m.latCounts[len(m.latBuckets)]++
}

// RequestCount returns the total requests seen for an endpoint (all
// statuses); handy for tests.
func (m *Metrics) RequestCount(endpoint string) int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	var total int64
	for _, n := range m.requests[endpoint] {
		total += n
	}
	return total
}

// WriteTo renders the registry (plus the supplied cache, job and breaker
// gauges) in the Prometheus text exposition format.
func (m *Metrics) WriteTo(w io.Writer, cache CacheStats, predict, place RespCacheStats, inflightJobs int64, openBreakers int) {
	m.mu.Lock()
	defer m.mu.Unlock()

	fmt.Fprintln(w, "# HELP numaiod_requests_total Requests served, by endpoint and status.")
	fmt.Fprintln(w, "# TYPE numaiod_requests_total counter")
	endpoints := make([]string, 0, len(m.requests))
	for e := range m.requests {
		endpoints = append(endpoints, e)
	}
	sort.Strings(endpoints)
	for _, e := range endpoints {
		statuses := make([]int, 0, len(m.requests[e]))
		for s := range m.requests[e] {
			statuses = append(statuses, s)
		}
		sort.Ints(statuses)
		for _, s := range statuses {
			fmt.Fprintf(w, "numaiod_requests_total{endpoint=%q,status=\"%d\"} %d\n", e, s, m.requests[e][s])
		}
	}

	fmt.Fprintln(w, "# HELP numaiod_characterize_seconds Wall time of Algorithm 1 characterizations.")
	fmt.Fprintln(w, "# TYPE numaiod_characterize_seconds histogram")
	var cum int64
	for i, le := range m.latBuckets {
		cum += m.latCounts[i]
		fmt.Fprintf(w, "numaiod_characterize_seconds_bucket{le=\"%g\"} %d\n", le, cum)
	}
	cum += m.latCounts[len(m.latBuckets)]
	fmt.Fprintf(w, "numaiod_characterize_seconds_bucket{le=\"+Inf\"} %d\n", cum)
	fmt.Fprintf(w, "numaiod_characterize_seconds_sum %g\n", m.latSum)
	fmt.Fprintf(w, "numaiod_characterize_seconds_count %d\n", m.latTotal)

	fmt.Fprintln(w, "# HELP numaiod_characterize_parallelism Configured measurement worker-pool width.")
	fmt.Fprintln(w, "# TYPE numaiod_characterize_parallelism gauge")
	fmt.Fprintf(w, "numaiod_characterize_parallelism %d\n", m.parallelism)

	fmt.Fprintln(w, "# HELP numaiod_model_cache Model cache activity.")
	fmt.Fprintln(w, "# TYPE numaiod_model_cache counter")
	fmt.Fprintf(w, "numaiod_model_cache{event=\"hit\"} %d\n", cache.Hits)
	fmt.Fprintf(w, "numaiod_model_cache{event=\"miss\"} %d\n", cache.Misses)
	fmt.Fprintf(w, "numaiod_model_cache{event=\"coalesced\"} %d\n", cache.Coalesced)
	fmt.Fprintf(w, "numaiod_model_cache{event=\"eviction\"} %d\n", cache.Evictions)
	fmt.Fprintln(w, "# HELP numaiod_model_cache_entries Live model cache entries.")
	fmt.Fprintln(w, "# TYPE numaiod_model_cache_entries gauge")
	fmt.Fprintf(w, "numaiod_model_cache_entries %d\n", cache.Entries)

	fmt.Fprintln(w, "# HELP numaiod_predict_cache_hits_total Predict responses served from the response cache.")
	fmt.Fprintln(w, "# TYPE numaiod_predict_cache_hits_total counter")
	fmt.Fprintf(w, "numaiod_predict_cache_hits_total %d\n", predict.Hits)
	fmt.Fprintln(w, "# HELP numaiod_predict_cache_misses_total Predict requests that missed the response cache.")
	fmt.Fprintln(w, "# TYPE numaiod_predict_cache_misses_total counter")
	fmt.Fprintf(w, "numaiod_predict_cache_misses_total %d\n", predict.Misses)
	fmt.Fprintln(w, "# HELP numaiod_predict_cache_entries Rendered predict responses currently cached.")
	fmt.Fprintln(w, "# TYPE numaiod_predict_cache_entries gauge")
	fmt.Fprintf(w, "numaiod_predict_cache_entries %d\n", predict.Entries)
	fmt.Fprintln(w, "# HELP numaiod_place_cache_hits_total Place responses served from the response cache.")
	fmt.Fprintln(w, "# TYPE numaiod_place_cache_hits_total counter")
	fmt.Fprintf(w, "numaiod_place_cache_hits_total %d\n", place.Hits)
	fmt.Fprintln(w, "# HELP numaiod_place_cache_misses_total Place requests that missed the response cache.")
	fmt.Fprintln(w, "# TYPE numaiod_place_cache_misses_total counter")
	fmt.Fprintf(w, "numaiod_place_cache_misses_total %d\n", place.Misses)
	fmt.Fprintln(w, "# HELP numaiod_place_cache_entries Rendered place responses currently cached.")
	fmt.Fprintln(w, "# TYPE numaiod_place_cache_entries gauge")
	fmt.Fprintf(w, "numaiod_place_cache_entries %d\n", place.Entries)
	fmt.Fprintln(w, "# HELP numaiod_inflight_jobs Characterizations currently holding a worker slot.")
	fmt.Fprintln(w, "# TYPE numaiod_inflight_jobs gauge")
	fmt.Fprintf(w, "numaiod_inflight_jobs %d\n", inflightJobs)

	fmt.Fprintln(w, "# HELP numaiod_characterize_retries_total Characterization attempts retried after a failure.")
	fmt.Fprintln(w, "# TYPE numaiod_characterize_retries_total counter")
	fmt.Fprintf(w, "numaiod_characterize_retries_total %d\n", m.charRetries)
	fmt.Fprintln(w, "# HELP numaiod_stale_served_total Responses served from an expired cache entry after a failed recomputation.")
	fmt.Fprintln(w, "# TYPE numaiod_stale_served_total counter")
	fmt.Fprintf(w, "numaiod_stale_served_total %d\n", m.staleServed)
	fmt.Fprintln(w, "# HELP numaiod_stale_models Expired models retained as stale fallbacks.")
	fmt.Fprintln(w, "# TYPE numaiod_stale_models gauge")
	fmt.Fprintf(w, "numaiod_stale_models %d\n", cache.Stale)
	fmt.Fprintln(w, "# HELP numaiod_breaker_open Characterization circuit breakers currently open.")
	fmt.Fprintln(w, "# TYPE numaiod_breaker_open gauge")
	fmt.Fprintf(w, "numaiod_breaker_open %d\n", openBreakers)
}
