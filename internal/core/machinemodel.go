package core

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"sync/atomic"

	"numaio/internal/topology"
)

// MachineModel is the whole-host characterization the paper's Sec. V-B
// generalization calls for: Algorithm 1 run for every node in both
// directions, so a scheduler can reason about devices attached anywhere.
type MachineModel struct {
	Machine string `json:"machine"`
	// Fingerprint is the topology fingerprint of the characterized machine
	// (topology.Fingerprint); model caches key on it to recognise a host
	// they have already characterized.
	Fingerprint string   `json:"fingerprint,omitempty"`
	Models      []*Model `json:"models"`
}

// CharacterizeAll runs Algorithm 1 for every node of the machine in both
// modes. With Config.Parallelism > 1 the (target, mode) sweeps fan out over
// a worker pool of that width — each sweep then measures its cells serially,
// so total concurrency stays bounded by Parallelism — and the models are
// assembled in the same (target, mode) order as the serial run.
func (c *Characterizer) CharacterizeAll() (*MachineModel, error) {
	m := c.sys.Machine()
	// The fingerprint is a pure function of the (immutable) machine; compute
	// it once per Characterizer instead of re-encoding the topology to JSON
	// on every call.
	c.fpOnce.Do(func() { c.fp, c.fpErr = topology.Fingerprint(m) })
	if c.fpErr != nil {
		return nil, c.fpErr
	}
	out := &MachineModel{Machine: m.Name, Fingerprint: c.fp}

	modes := []Mode{ModeWrite, ModeRead}
	targets := m.NodeIDs()
	pairs := len(targets) * len(modes)
	workers := c.workers(pairs)
	out.Models = make([]*Model, pairs)

	if workers <= 1 {
		for ti, target := range targets {
			for mi, mode := range modes {
				model, err := c.Characterize(target, mode)
				if err != nil {
					return nil, fmt.Errorf("core: characterizing node %d (%v): %w",
						int(target), mode, err)
				}
				out.Models[ti*len(modes)+mi] = model
			}
		}
		return out, nil
	}

	// Workers claim (target, mode) pairs off an atomic counter — a sweep is
	// long enough that one claim per sweep is the whole dispatch cost — and
	// write each model at its pair index, so assembly order matches serial.
	var next atomic.Int64
	var wg sync.WaitGroup
	var mu sync.Mutex
	var firstErr error
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(wtid int) {
			defer wg.Done()
			for {
				idx := int(next.Add(1)) - 1
				if idx >= pairs {
					return
				}
				target, mode := targets[idx/len(modes)], modes[idx%len(modes)]
				model, err := c.characterize(target, mode, 1, wtid)
				if err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = fmt.Errorf("core: characterizing node %d (%v): %w",
							int(target), mode, err)
					}
					mu.Unlock()
					continue
				}
				out.Models[idx] = model
			}
		}(w + 1)
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	return out, nil
}

// ModelFor returns the model of one target and direction.
func (mm *MachineModel) ModelFor(target topology.NodeID, mode Mode) (*Model, error) {
	for _, m := range mm.Models {
		if m.Target == target && m.Mode == mode {
			return m, nil
		}
	}
	return nil, fmt.Errorf("core: no %v model for node %d", mode, int(target))
}

// Targets returns the characterized target nodes (deduplicated, in model
// order).
func (mm *MachineModel) Targets() []topology.NodeID {
	seen := make(map[topology.NodeID]bool)
	var out []topology.NodeID
	for _, m := range mm.Models {
		if !seen[m.Target] {
			seen[m.Target] = true
			out = append(out, m.Target)
		}
	}
	return out
}

// CostReduction is the whole-host benchmark saving: the fraction of
// (target, direction, node) cells covered by class representatives.
func (mm *MachineModel) CostReduction() float64 {
	var cells, reps int
	for _, m := range mm.Models {
		cells += len(m.Samples)
		reps += len(m.Classes)
	}
	if cells == 0 {
		return 0
	}
	return 1 - float64(reps)/float64(cells)
}

// SaveJSON writes the machine model as indented JSON.
func (mm *MachineModel) SaveJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(mm); err != nil {
		return fmt.Errorf("core: encoding machine model: %w", err)
	}
	return nil
}

// LoadMachineJSON reads a machine model written by SaveJSON and validates
// every contained model.
func LoadMachineJSON(r io.Reader) (*MachineModel, error) {
	var mm MachineModel
	if err := json.NewDecoder(r).Decode(&mm); err != nil {
		return nil, fmt.Errorf("core: decoding machine model: %w", err)
	}
	if len(mm.Models) == 0 {
		return nil, fmt.Errorf("core: machine model has no models")
	}
	for _, m := range mm.Models {
		if err := m.validate(); err != nil {
			return nil, fmt.Errorf("core: node %d (%v): %w", int(m.Target), m.Mode, err)
		}
	}
	return &mm, nil
}
