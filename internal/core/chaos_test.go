package core

import (
	"bytes"
	"encoding/json"
	"math"
	"reflect"
	"testing"
	"time"

	"numaio/internal/faults"
	"numaio/internal/resilience"
)

// chaosConfig is the fault-plan config the determinism tests share: every
// fault type at once, a fake auto-advancing clock so retries and hang
// timeouts cost no real time, and outlier rejection on.
func chaosConfig(parallelism int) Config {
	return Config{
		Parallelism: parallelism,
		// The all-targets sweep rolls 640 cells; give the deterministic
		// retry machinery enough budget that no cell exhausts it.
		MaxRetries: 10,
		Faults: &faults.Plan{
			Name: "test-chaos",
			Seed: 7,
			Links: []faults.LinkFault{
				{A: "node6", B: "node7", Factor: 0.5},
			},
			Measurement: faults.MeasurementFault{
				FailureRate: 0.10,
				HangRate:    0.05,
				OutlierRate: 0.10,
				Noise:       0.04,
			},
		},
		Clock: resilience.NewAutoClock(time.Unix(0, 0)),
	}
}

// TestChaosDeterministicAcrossParallelism is the acceptance criterion:
// the same fault-plan seed yields byte-identical serialized models at any
// Parallelism, 1 through 64.
func TestChaosDeterministicAcrossParallelism(t *testing.T) {
	sys := sysFor(t, "dl585g7")
	base, err := NewCharacterizer(sys, chaosConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	want, err := base.CharacterizeAll()
	if err != nil {
		t.Fatal(err)
	}
	wantJSON := machineJSON(t, want)

	// The chaos run must actually have exercised the machinery.
	touched := false
	for _, m := range want.Models {
		if m.Resilience == nil {
			t.Fatalf("chaos model %v missing resilience report", m.Mode)
		}
		if m.Resilience.Retries > 0 || m.Resilience.Outliers > 0 {
			touched = true
		}
	}
	if !touched {
		t.Fatal("chaos plan injected nothing: retries and outliers all zero")
	}

	for _, p := range []int{2, 8, 64} {
		c, err := NewCharacterizer(sysFor(t, "dl585g7"), chaosConfig(p))
		if err != nil {
			t.Fatal(err)
		}
		mm, err := c.CharacterizeAll()
		if err != nil {
			t.Fatalf("parallelism %d: %v", p, err)
		}
		if got := machineJSON(t, mm); !bytes.Equal(got, wantJSON) {
			t.Fatalf("parallelism %d: chaos model bytes differ from serial run", p)
		}
		if !reflect.DeepEqual(mm, want) {
			t.Fatalf("parallelism %d: chaos models differ structurally", p)
		}
	}
}

// TestChaosSameSeedSameModel pins that re-running one plan reproduces, and
// a different seed genuinely changes measured bandwidths.
func TestChaosSameSeedSameModel(t *testing.T) {
	run := func(seed uint64) *Model {
		cfg := chaosConfig(4)
		cfg.Faults.Seed = seed
		c, err := NewCharacterizer(sysFor(t, "dl585g7"), cfg)
		if err != nil {
			t.Fatal(err)
		}
		m, err := c.Characterize(7, ModeWrite)
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	a, b := run(7), run(7)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different chaos models")
	}
	other := run(8)
	if reflect.DeepEqual(a.Samples, other.Samples) {
		t.Fatal("different seeds produced identical chaos samples")
	}
}

// TestCleanRunUnchanged guards the EXPERIMENTS.md contract: a config with
// no fault plan leaves the resilience machinery entirely off and the
// serialized model free of the new fields.
func TestCleanRunUnchanged(t *testing.T) {
	c, err := NewCharacterizer(sysFor(t, "dl585g7"), Config{})
	if err != nil {
		t.Fatal(err)
	}
	m, err := c.Characterize(7, ModeWrite)
	if err != nil {
		t.Fatal(err)
	}
	if m.Resilience != nil {
		t.Fatal("clean run grew a resilience report")
	}
	data, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	for _, field := range []string{"resilience", "outliers"} {
		if bytes.Contains(data, []byte(`"`+field+`"`)) {
			t.Fatalf("clean model JSON contains %q: %s", field, data)
		}
	}
}

// TestChaosLinkFaultDegradesBandwidth: halving the node6-node7 link must
// cut the bandwidth measured from node 6 relative to the clean model.
func TestChaosLinkFaultDegradesBandwidth(t *testing.T) {
	clean, err := NewCharacterizer(sysFor(t, "dl585g7"), Config{Sigma: -1})
	if err != nil {
		t.Fatal(err)
	}
	cleanModel, err := clean.Characterize(7, ModeWrite)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		Sigma: -1,
		Faults: &faults.Plan{
			Links: []faults.LinkFault{{A: "node6", B: "node7", Factor: 0.5}},
		},
		Clock: resilience.NewAutoClock(time.Unix(0, 0)),
	}
	degraded, err := NewCharacterizer(sysFor(t, "dl585g7"), cfg)
	if err != nil {
		t.Fatal(err)
	}
	degradedModel, err := degraded.Characterize(7, ModeWrite)
	if err != nil {
		t.Fatal(err)
	}
	before, err := cleanModel.SampleOf(6)
	if err != nil {
		t.Fatal(err)
	}
	after, err := degradedModel.SampleOf(6)
	if err != nil {
		t.Fatal(err)
	}
	if float64(after) >= float64(before)*0.95 {
		t.Fatalf("node6 bandwidth %v not degraded vs clean %v", after, before)
	}
}

func TestChaosUnknownLinkErrorsEarly(t *testing.T) {
	cfg := Config{Faults: &faults.Plan{
		Links: []faults.LinkFault{{A: "node0", B: "nowhere", Factor: 0.5}},
	}}
	if _, err := NewCharacterizer(sysFor(t, "dl585g7"), cfg); err == nil {
		t.Fatal("unknown link fault must fail at construction")
	}
}

// TestChaosRetriesExhausted: with certain failure and no retry budget the
// sweep must surface the injected error.
func TestChaosRetriesExhausted(t *testing.T) {
	cfg := Config{
		MaxRetries: -1,
		Faults: &faults.Plan{
			Measurement: faults.MeasurementFault{FailureRate: 1},
		},
		Clock: resilience.NewAutoClock(time.Unix(0, 0)),
	}
	c, err := NewCharacterizer(sysFor(t, "dl585g7"), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Characterize(7, ModeWrite); err == nil {
		t.Fatal("certain failure with no retries must error")
	}
}

// TestChaosHangsTimeOutAndRetry: a plan that always hangs forces every
// attempt through the measurement timeout; with retries also exhausted the
// error must be a deadline, and the fake clock must have absorbed the
// waiting (no real sleeps).
func TestChaosHangsTimeOutAndRetry(t *testing.T) {
	clock := resilience.NewAutoClock(time.Unix(0, 0))
	cfg := Config{
		Repeats:    1,
		MaxRetries: 1,
		Faults: &faults.Plan{
			Measurement: faults.MeasurementFault{HangRate: 1},
		},
		Clock: clock,
	}
	c, err := NewCharacterizer(sysFor(t, "dl585g7"), cfg)
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	_, err = c.Characterize(7, ModeWrite)
	if err == nil {
		t.Fatal("always-hanging plan must fail the sweep")
	}
	if elapsed := time.Since(start); elapsed > 30*time.Second {
		t.Fatalf("hang timeouts took %v of real time; the fake clock should absorb them", elapsed)
	}
}

// TestRejectOutliers pins the MAD cutoff arithmetic.
func TestRejectOutliers(t *testing.T) {
	cases := []struct {
		name       string
		vals       []float64
		cutoff     float64
		wantKept   int
		wantReject int
	}{
		{"clean cluster keeps all", []float64{10, 10.1, 9.9, 10.05, 9.95}, 3.5, 5, 0},
		{"single crash outlier dropped", []float64{10, 10.1, 9.9, 10.05, 5}, 3.5, 4, 1},
		{"two-sided outliers dropped", []float64{10, 10.1, 9.9, 20, 1}, 3.5, 3, 2},
		{"identical values zero MAD keeps all", []float64{10, 10, 10, 10, 3}, 3.5, 5, 0},
		{"tiny sets untouched", []float64{1, 100}, 3.5, 2, 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			kept, rejected := rejectOutliers(tc.vals, tc.cutoff)
			if len(kept) != tc.wantKept || rejected != tc.wantReject {
				t.Fatalf("rejectOutliers(%v) kept %d rejected %d, want %d/%d",
					tc.vals, len(kept), rejected, tc.wantKept, tc.wantReject)
			}
		})
	}
}

// TestOutlierRejectionRecoversMean: with rejection on, an injected outlier
// must not drag the node's reported bandwidth, so the chaos mean lands
// near the clean one.
func TestOutlierRejectionRecoversMean(t *testing.T) {
	clean, err := NewCharacterizer(sysFor(t, "dl585g7"), Config{Repeats: 7})
	if err != nil {
		t.Fatal(err)
	}
	cleanModel, err := clean.Characterize(7, ModeWrite)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		Repeats: 7,
		Faults: &faults.Plan{
			Seed: 3,
			Measurement: faults.MeasurementFault{
				OutlierRate:   0.2,
				OutlierFactor: 0.3,
			},
		},
		Clock: resilience.NewAutoClock(time.Unix(0, 0)),
	}
	chaos, err := NewCharacterizer(sysFor(t, "dl585g7"), cfg)
	if err != nil {
		t.Fatal(err)
	}
	chaosModel, err := chaos.Characterize(7, ModeWrite)
	if err != nil {
		t.Fatal(err)
	}
	if chaosModel.Resilience == nil || chaosModel.Resilience.Outliers == 0 {
		t.Fatal("plan injected no outliers; raise the rate or repeats")
	}
	for i, s := range chaosModel.Samples {
		rel := math.Abs(float64(s.Bandwidth)-float64(cleanModel.Samples[i].Bandwidth)) /
			float64(cleanModel.Samples[i].Bandwidth)
		if rel > 0.05 {
			t.Fatalf("node %d chaos bandwidth off by %.1f%% despite MAD rejection",
				int(s.Node), rel*100)
		}
	}
}
