package core

import (
	"fmt"
	"math"
	"sort"

	"numaio/internal/topology"
	"numaio/internal/units"
)

// predictEntry is one node's row of the precomputed Eq. 1 lookup table:
// its class rank and the class's average bandwidth.
type predictEntry struct {
	node topology.NodeID
	rank int
	avg  units.Bandwidth
}

// predictTable returns the model's node-sorted class-rate table, building
// it on first use. Walking this table in order visits mix nodes in exactly
// the ascending-node order the per-call sort used to produce, so float
// accumulation stays byte-identical while Predict itself stops allocating.
func (m *Model) predictTable() []predictEntry {
	if t, ok := m.table.Load().([]predictEntry); ok {
		return t
	}
	var t []predictEntry
	for _, c := range m.Classes {
		for _, n := range c.Nodes {
			t = append(t, predictEntry{node: n, rank: c.Rank, avg: c.Avg})
		}
	}
	sort.Slice(t, func(i, j int) bool { return t[i].node < t[j].node })
	m.table.Store(t)
	return t
}

// Predict estimates the aggregate device bandwidth when the device is
// shared by data accesses distributed over NUMA nodes — Eq. 1 of the paper:
//
//	BW_io = Σ αᵢ · BWᵢ
//
// where αᵢ is the fraction of accesses from class i and BWᵢ the class's
// average single-class bandwidth, taken from a measured per-class I/O rate
// table (classRates) or, when classRates is nil, from the model's own
// memcpy averages.
//
// mix maps nodes to their traffic fraction; fractions must sum to 1.
func (m *Model) Predict(mix map[topology.NodeID]float64, classRates map[int]units.Bandwidth) (units.Bandwidth, error) {
	if len(mix) == 0 {
		return 0, fmt.Errorf("core: empty mix")
	}
	var total float64
	for _, f := range mix {
		if f < 0 {
			return 0, fmt.Errorf("core: negative mix fraction")
		}
		total += f
	}
	if math.Abs(total-1) > 1e-6 {
		return 0, fmt.Errorf("core: mix fractions sum to %v, want 1", total)
	}

	var bw float64
	matched := 0
	for _, e := range m.predictTable() {
		f, ok := mix[e.node]
		if !ok {
			continue
		}
		matched++
		rate := e.avg
		if classRates != nil {
			r, ok := classRates[e.rank]
			if !ok {
				return 0, fmt.Errorf("core: no measured rate for class %d", e.rank)
			}
			rate = r
		}
		bw += f * float64(rate)
	}
	if matched != len(mix) {
		// Cold error path: rescan to name the unclassified node.
		for n := range mix {
			if _, err := m.ClassOf(n); err != nil {
				return 0, err
			}
		}
	}
	return units.Bandwidth(bw), nil
}

// PredictCounts is Predict with process counts per node instead of
// fractions (the paper's worked example uses two processes on node 2 and
// two on node 0).
func (m *Model) PredictCounts(counts map[topology.NodeID]int, classRates map[int]units.Bandwidth) (units.Bandwidth, error) {
	total := 0
	for _, c := range counts {
		if c < 0 {
			return 0, fmt.Errorf("core: negative process count")
		}
		total += c
	}
	if total == 0 {
		return 0, fmt.Errorf("core: no processes")
	}
	mix := make(map[topology.NodeID]float64, len(counts))
	for n, c := range counts {
		if c > 0 {
			mix[n] = float64(c) / float64(total)
		}
	}
	return m.Predict(mix, classRates)
}

// RelativeError returns |predicted-measured|/measured, the paper's Eq. 1
// validation metric (3.1% in Sec. V-B).
func RelativeError(predicted, measured units.Bandwidth) float64 {
	if measured == 0 {
		return math.Inf(1)
	}
	return math.Abs(float64(predicted-measured)) / math.Abs(float64(measured))
}

// EquivalentClasses returns the ranks of classes whose averages are within
// tol (relative) of each other, starting from the best class — the sets a
// scheduler may treat as interchangeable (Sec. V-B: classes 1 and 2 of the
// RDMA_WRITE model have "almost identical performance").
func (m *Model) EquivalentClasses(tol float64) [][]int {
	var groups [][]int
	for _, c := range m.Classes {
		placed := false
		for gi, g := range groups {
			ref := m.classByRank(g[0]).Avg
			if ref > 0 && math.Abs(float64(c.Avg-ref))/float64(ref) <= tol {
				groups[gi] = append(groups[gi], c.Rank)
				placed = true
				break
			}
		}
		if !placed {
			groups = append(groups, []int{c.Rank})
		}
	}
	return groups
}

func (m *Model) classByRank(rank int) Class {
	for _, c := range m.Classes {
		if c.Rank == rank {
			return c
		}
	}
	return Class{}
}
