package core

import (
	"bytes"
	"reflect"
	"testing"
	"time"

	"numaio/internal/faults"
	"numaio/internal/resilience"
)

// These tests pin the chunked (atomic-counter) scheduler introduced for the
// zero-alloc sweep: workers claim contiguous ranges of (node, repeat) cells,
// so the widths below are chosen to hit uneven chunk boundaries (3 does not
// divide the cell count; 16 exceeds it). The determinism contract is the
// same as parallel_test.go's: jitter and fault draws are keyed by job name,
// so chunk shape must never change a value.

// chunkWidths includes serial, even and uneven splits, and more workers
// than cells.
var chunkWidths = []int{1, 2, 3, 8, 16}

// chunkChaosConfig builds the fault-plan config used by the boundary tests:
// every resilience knob on, fake clock so retries don't sleep.
func chunkChaosConfig(p int) Config {
	return Config{
		Repeats:     3,
		Parallelism: p,
		Faults: &faults.Plan{
			Name: "chunk-bound",
			Seed: 11,
			Measurement: faults.MeasurementFault{
				FailureRate:   0.10,
				HangRate:      0.05,
				OutlierRate:   0.10,
				OutlierFactor: 0.4,
				Noise:         0.03,
			},
		},
		Clock: resilience.NewAutoClock(time.Unix(0, 0)),
	}
}

// TestCharacterizeChunkBoundariesBitIdentical: one sweep (the path whose
// cells go through the chunked scheduler) is identical at every width,
// clean and under a fault plan.
func TestCharacterizeChunkBoundariesBitIdentical(t *testing.T) {
	sys := sysFor(t, "dl585g7")
	for _, chaos := range []bool{false, true} {
		name := "clean"
		if chaos {
			name = "faults"
		}
		t.Run(name, func(t *testing.T) {
			var want *Model
			for _, p := range chunkWidths {
				cfg := Config{Repeats: 3, Parallelism: p}
				if chaos {
					cfg = chunkChaosConfig(p)
				}
				c, err := NewCharacterizer(sys, cfg)
				if err != nil {
					t.Fatal(err)
				}
				got, err := c.Characterize(7, ModeWrite)
				if err != nil {
					t.Fatal(err)
				}
				if want == nil {
					want = got
					continue
				}
				if !reflect.DeepEqual(got, want) {
					t.Errorf("parallelism %d: model differs from serial", p)
				}
			}
		})
	}
}

// TestCharacterizeAllChunkBoundariesBitIdentical: the whole-host sweep
// (pair-level atomic claiming, serial cells inside each sweep) serializes
// to the same bytes at every width, clean and under a fault plan.
func TestCharacterizeAllChunkBoundariesBitIdentical(t *testing.T) {
	sys := sysFor(t, "magny-a")
	for _, chaos := range []bool{false, true} {
		name := "clean"
		if chaos {
			name = "faults"
		}
		t.Run(name, func(t *testing.T) {
			var want []byte
			for _, p := range chunkWidths {
				cfg := Config{Repeats: 3, Parallelism: p}
				if chaos {
					cfg = chunkChaosConfig(p)
				}
				c, err := NewCharacterizer(sys, cfg)
				if err != nil {
					t.Fatal(err)
				}
				mm, err := c.CharacterizeAll()
				if err != nil {
					t.Fatal(err)
				}
				got := machineJSON(t, mm)
				if want == nil {
					want = got
					continue
				}
				if !bytes.Equal(got, want) {
					t.Errorf("parallelism %d: machine model JSON differs from serial", p)
				}
			}
		})
	}
}

// TestChunkWorkerErrorDrains: a failure mid-chunk (no retry budget, partial
// failure rate, so some cell deep inside a claimed range errors) must
// surface the error and drain every worker — the test completing at all
// proves no worker blocks on an orphaned handoff — and the characterizer
// must stay usable for subsequent calls.
func TestChunkWorkerErrorDrains(t *testing.T) {
	cfg := Config{
		Repeats:     5,
		Parallelism: 4,
		MaxRetries:  -1, // no retries: the first triggered fault is fatal
		Faults: &faults.Plan{
			Seed:        5,
			Measurement: faults.MeasurementFault{FailureRate: 0.3},
		},
		Clock: resilience.NewAutoClock(time.Unix(0, 0)),
	}
	c, err := NewCharacterizer(sysFor(t, "dl585g7"), cfg)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		_, err := c.Characterize(7, ModeWrite)
		done <- err
	}()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("certain mid-chunk failure with no retries must error")
		}
	case <-time.After(30 * time.Second):
		t.Fatal("worker pool did not drain after mid-chunk failure")
	}
	// The pool must have recovered its runners: a second run on the same
	// characterizer fails the same way rather than deadlocking or panicking.
	if _, err := c.Characterize(7, ModeWrite); err == nil {
		t.Fatal("second run after drain: expected injected failure, got nil")
	}
	// CharacterizeAll shares the pool; it must also drain cleanly.
	if _, err := c.CharacterizeAll(); err == nil {
		t.Fatal("CharacterizeAll under certain failure: expected error, got nil")
	}
}
