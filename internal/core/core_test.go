package core

import (
	"bytes"
	"math"
	"reflect"
	"strings"
	"testing"

	"numaio/internal/device"
	"numaio/internal/fio"
	"numaio/internal/numa"
	"numaio/internal/stream"
	"numaio/internal/topology"
	"numaio/internal/units"
)

func newSys(t *testing.T) *numa.System {
	t.Helper()
	sys, err := numa.NewSystem(topology.DL585G7())
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

func characterize(t *testing.T, mode Mode) *Model {
	t.Helper()
	sys := newSys(t)
	c, err := NewCharacterizer(sys, Config{Sigma: -1, Repeats: 1, BytesPerThread: units.GiB})
	if err != nil {
		t.Fatal(err)
	}
	m, err := c.Characterize(7, mode)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func classNodes(m *Model, rank int) []topology.NodeID {
	for _, c := range m.Classes {
		if c.Rank == rank {
			return c.Nodes
		}
	}
	return nil
}

// Table IV: the device-write model of node 7 classifies the nodes into
// {6,7} | {0,1,4,5} | {2,3}.
func TestWriteModelClasses(t *testing.T) {
	m := characterize(t, ModeWrite)
	if m.NumClasses() != 3 {
		t.Fatalf("write model has %d classes, want 3: %+v", m.NumClasses(), m.Classes)
	}
	want := [][]topology.NodeID{
		{6, 7},
		{0, 1, 4, 5},
		{2, 3},
	}
	for rank, nodes := range want {
		if got := classNodes(m, rank+1); !reflect.DeepEqual(got, nodes) {
			t.Errorf("write class %d = %v, want %v", rank+1, got, nodes)
		}
	}
	// Class averages follow Table IV's memcpy row shape: ~51 / ~44.5 / ~26.6.
	avgs := []float64{m.Classes[0].Avg.Gbps(), m.Classes[1].Avg.Gbps(), m.Classes[2].Avg.Gbps()}
	for i, want := range []float64{50.0, 44.5, 26.5} {
		if math.Abs(avgs[i]-want) > 0.12*want {
			t.Errorf("write class %d avg = %.1f, want ~%.1f", i+1, avgs[i], want)
		}
	}
	if !(avgs[0] > avgs[1] && avgs[1] > avgs[2]) {
		t.Errorf("write class averages not strictly decreasing: %v", avgs)
	}
}

// Table V: the device-read model of node 7 classifies the nodes into
// {6,7} | {2,3} | {0,1,5} | {4}.
func TestReadModelClasses(t *testing.T) {
	m := characterize(t, ModeRead)
	if m.NumClasses() != 4 {
		t.Fatalf("read model has %d classes, want 4: %+v", m.NumClasses(), m.Classes)
	}
	want := [][]topology.NodeID{
		{6, 7},
		{2, 3},
		{0, 1, 5},
		{4},
	}
	for rank, nodes := range want {
		if got := classNodes(m, rank+1); !reflect.DeepEqual(got, nodes) {
			t.Errorf("read class %d = %v, want %v", rank+1, got, nodes)
		}
	}
	for i, wantAvg := range []float64{50.0, 49.0, 40.8, 28.0} {
		if got := m.Classes[i].Avg.Gbps(); math.Abs(got-wantAvg) > 0.12*wantAvg {
			t.Errorf("read class %d avg = %.1f, want ~%.1f", i+1, got, wantAvg)
		}
	}
}

// Sec. V-B: testing one node per class halves the read-model evaluation
// cost (4 classes for 8 nodes).
func TestCostReductionAndRepresentatives(t *testing.T) {
	m := characterize(t, ModeRead)
	if got := m.CostReduction(); math.Abs(got-0.5) > 1e-9 {
		t.Errorf("cost reduction = %v, want 0.5", got)
	}
	reps := m.RepresentativeNodes()
	if len(reps) != 4 {
		t.Fatalf("representatives = %v", reps)
	}
	seen := map[int]bool{}
	for _, r := range reps {
		cls, err := m.ClassOf(r)
		if err != nil {
			t.Fatal(err)
		}
		if seen[cls.Rank] {
			t.Errorf("two representatives for class %d", cls.Rank)
		}
		seen[cls.Rank] = true
	}
	if (&Model{}).CostReduction() != 0 {
		t.Error("empty model cost reduction should be 0")
	}
}

func TestCharacterizerValidation(t *testing.T) {
	sys := newSys(t)
	if _, err := NewCharacterizer(sys, Config{Threads: -1}); err == nil {
		t.Error("negative threads should fail")
	}
	if _, err := NewCharacterizer(sys, Config{Repeats: -1}); err == nil {
		t.Error("negative repeats should fail")
	}
	if _, err := NewCharacterizer(sys, Config{GapThreshold: 2}); err == nil {
		t.Error("gap threshold >= 1 should fail")
	}
	c, err := NewCharacterizer(sys, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Characterize(42, ModeWrite); err == nil {
		t.Error("unknown target should fail")
	}
}

func TestClassifyEdgeCases(t *testing.T) {
	m := topology.DL585G7()
	if _, err := Classify(m, 7, nil, 0.2); err == nil {
		t.Error("empty samples should fail")
	}
	dup := []Sample{{Node: 0, Bandwidth: units.Gbps}, {Node: 0, Bandwidth: units.Gbps}}
	if _, err := Classify(m, 7, dup, 0.2); err == nil {
		t.Error("duplicate samples should fail")
	}
	bad := []Sample{{Node: 42, Bandwidth: units.Gbps}}
	if _, err := Classify(m, 7, bad, 0.2); err == nil {
		t.Error("unknown node should fail")
	}
	noTarget := []Sample{{Node: 0, Bandwidth: units.Gbps}}
	if _, err := Classify(m, 7, noTarget, 0.2); err == nil {
		t.Error("missing target should fail")
	}
	zero := []Sample{{Node: 7, Bandwidth: 0}}
	if _, err := Classify(m, 7, zero, 0.2); err == nil {
		t.Error("nonpositive bandwidth should fail")
	}

	// Uniform remotes collapse into a single class.
	var flat []Sample
	for n := topology.NodeID(0); n < 8; n++ {
		flat = append(flat, Sample{Node: n, Bandwidth: 10 * units.Gbps})
	}
	classes, err := Classify(m, 7, flat, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	if len(classes) != 2 {
		t.Errorf("flat samples gave %d classes, want 2 (class1 + one remote class)", len(classes))
	}
	if got := classes[0].Nodes; !reflect.DeepEqual(got, []topology.NodeID{6, 7}) {
		t.Errorf("class 1 = %v, want [6 7]", got)
	}
}

func TestModelLookups(t *testing.T) {
	m := characterize(t, ModeWrite)
	if _, err := m.ClassOf(42); err == nil {
		t.Error("unknown node should fail")
	}
	if _, err := m.SampleOf(42); err == nil {
		t.Error("unknown node should fail")
	}
	bw, err := m.SampleOf(2)
	if err != nil || math.Abs(bw.Gbps()-26.5) > 1 {
		t.Errorf("SampleOf(2) = %v, %v", bw.Gbps(), err)
	}
}

// The paper's Eq. 1 worked example: two RDMA_READ processes on node 2
// (class 2) and two on node 0 (class 3). Prediction from single-class
// measurements must land within a few percent of the measured mixed run.
func TestEq1PredictionAgainstFio(t *testing.T) {
	sys := newSys(t)
	model := characterize(t, ModeRead)
	runner := fio.NewRunner(sys)
	runner.Sigma = 0

	classRate := func(n topology.NodeID) units.Bandwidth {
		rep, err := runner.Run([]fio.Job{{Name: "s", Engine: device.EngineRDMARead,
			Node: n, NumJobs: 2, Size: 4 * units.GiB}})
		if err != nil {
			t.Fatal(err)
		}
		return rep.Aggregate
	}
	rates := map[int]units.Bandwidth{}
	for _, rep := range model.RepresentativeNodes() {
		cls, err := model.ClassOf(rep)
		if err != nil {
			t.Fatal(err)
		}
		rates[cls.Rank] = classRate(rep)
	}

	predicted, err := model.PredictCounts(map[topology.NodeID]int{2: 2, 0: 2}, rates)
	if err != nil {
		t.Fatal(err)
	}
	measured, err := runner.Run([]fio.Job{
		{Name: "c2", Engine: device.EngineRDMARead, Node: 2, NumJobs: 2, Size: 4 * units.GiB},
		{Name: "c3", Engine: device.EngineRDMARead, Node: 0, NumJobs: 2, Size: 4 * units.GiB},
	})
	if err != nil {
		t.Fatal(err)
	}
	errRel := RelativeError(predicted, measured.Aggregate)
	if errRel > 0.05 {
		t.Errorf("Eq.1 relative error %.1f%% exceeds 5%% (paper: 3.1%%)", errRel*100)
	}
	if predicted < measured.Aggregate {
		t.Errorf("arithmetic mixture (%.2f) should not undercut the harmonic measurement (%.2f)",
			predicted.Gbps(), measured.Aggregate.Gbps())
	}
}

func TestPredictValidation(t *testing.T) {
	m := characterize(t, ModeWrite)
	if _, err := m.Predict(nil, nil); err == nil {
		t.Error("empty mix should fail")
	}
	if _, err := m.Predict(map[topology.NodeID]float64{0: 0.5}, nil); err == nil {
		t.Error("mix not summing to 1 should fail")
	}
	if _, err := m.Predict(map[topology.NodeID]float64{0: -1, 2: 2}, nil); err == nil {
		t.Error("negative fraction should fail")
	}
	if _, err := m.Predict(map[topology.NodeID]float64{42: 1}, nil); err == nil {
		t.Error("unknown node should fail")
	}
	if _, err := m.Predict(map[topology.NodeID]float64{0: 1},
		map[int]units.Bandwidth{1: units.Gbps}); err == nil {
		t.Error("missing class rate should fail")
	}
	if _, err := m.PredictCounts(map[topology.NodeID]int{}, nil); err == nil {
		t.Error("no processes should fail")
	}
	if _, err := m.PredictCounts(map[topology.NodeID]int{0: -1}, nil); err == nil {
		t.Error("negative count should fail")
	}

	// Degenerate single-node mix equals the node's class average.
	got, err := m.Predict(map[topology.NodeID]float64{2: 1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	cls, _ := m.ClassOf(2)
	if got != cls.Avg {
		t.Errorf("single-node prediction %v != class avg %v", got, cls.Avg)
	}
}

// Property-flavoured check: any valid mixture prediction lies within the
// [min, max] of the involved class averages.
func TestPredictConvexity(t *testing.T) {
	m := characterize(t, ModeRead)
	mix := map[topology.NodeID]float64{0: 0.25, 2: 0.25, 4: 0.25, 6: 0.25}
	got, err := m.Predict(mix, nil)
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for n := range mix {
		cls, _ := m.ClassOf(n)
		lo = math.Min(lo, float64(cls.Avg))
		hi = math.Max(hi, float64(cls.Avg))
	}
	if float64(got) < lo-1 || float64(got) > hi+1 {
		t.Errorf("prediction %v outside [%v, %v]", got, lo, hi)
	}
}

func TestRelativeError(t *testing.T) {
	if got := RelativeError(20.017*units.Gbps, 19.415*units.Gbps); math.Abs(got-0.031) > 0.001 {
		t.Errorf("paper example relative error = %.4f, want ~0.031", got)
	}
	if !math.IsInf(RelativeError(units.Gbps, 0), 1) {
		t.Error("zero measurement should yield +Inf")
	}
}

func TestEquivalentClasses(t *testing.T) {
	m := &Model{
		Classes: []Class{
			{Rank: 1, Nodes: []topology.NodeID{7}, Avg: 23.3 * units.Gbps},
			{Rank: 2, Nodes: []topology.NodeID{0}, Avg: 23.2 * units.Gbps},
			{Rank: 3, Nodes: []topology.NodeID{2}, Avg: 17.1 * units.Gbps},
		},
	}
	groups := m.EquivalentClasses(0.05)
	if len(groups) != 2 {
		t.Fatalf("groups = %v, want 2", groups)
	}
	if !reflect.DeepEqual(groups[0], []int{1, 2}) {
		t.Errorf("group 0 = %v, want [1 2] (the paper's interchangeable classes)", groups[0])
	}
	if !reflect.DeepEqual(groups[1], []int{3}) {
		t.Errorf("group 1 = %v", groups[1])
	}
}

func TestPersistenceRoundTrip(t *testing.T) {
	m := characterize(t, ModeRead)
	var buf bytes.Buffer
	if err := m.SaveJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := LoadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(m, back) {
		t.Error("model changed over JSON round trip")
	}
}

func TestLoadJSONValidation(t *testing.T) {
	cases := []string{
		`{`, // syntax error
		`{"samples":[],"classes":[]}`,
		`{"samples":[{"node":7,"bandwidth_bps":1}],"classes":[]}`,
		`{"samples":[{"node":7,"bandwidth_bps":0}],"classes":[{"rank":1,"nodes":[7],"min_bps":1,"max_bps":1,"avg_bps":1}]}`,
		`{"samples":[{"node":7,"bandwidth_bps":1},{"node":7,"bandwidth_bps":1}],"classes":[{"rank":1,"nodes":[7],"min_bps":1,"max_bps":1,"avg_bps":1}]}`,
		`{"samples":[{"node":7,"bandwidth_bps":1}],"classes":[{"rank":2,"nodes":[7],"min_bps":1,"max_bps":1,"avg_bps":1}]}`,
		`{"samples":[{"node":7,"bandwidth_bps":1}],"classes":[{"rank":1,"nodes":[],"min_bps":1,"max_bps":1,"avg_bps":1}]}`,
		`{"samples":[{"node":7,"bandwidth_bps":1}],"classes":[{"rank":1,"nodes":[5],"min_bps":1,"max_bps":1,"avg_bps":1}]}`,
		`{"samples":[{"node":7,"bandwidth_bps":1}],"classes":[{"rank":1,"nodes":[7],"min_bps":2,"max_bps":1,"avg_bps":1}]}`,
		`{"samples":[{"node":7,"bandwidth_bps":1},{"node":6,"bandwidth_bps":1}],"classes":[{"rank":1,"nodes":[7],"min_bps":1,"max_bps":1,"avg_bps":1}]}`,
		`{"samples":[{"node":7,"bandwidth_bps":1}],"classes":[{"rank":1,"nodes":[7,7],"min_bps":1,"max_bps":1,"avg_bps":1}]}`,
	}
	for _, src := range cases {
		if _, err := LoadJSON(strings.NewReader(src)); err == nil {
			t.Errorf("expected validation error for %s", src)
		}
	}
}

// The hop-distance baseline groups by distance only; on the DL585G7 it
// puts node 4 (the read-model's worst node) into the same class as nodes
// 0 and 2 — exactly the failure the paper demonstrates.
func TestHopDistanceBaseline(t *testing.T) {
	m := topology.DL585G7()
	hop, err := HopDistanceModel(m, 7)
	if err != nil {
		t.Fatal(err)
	}
	if hop.NumClasses() != 3 {
		t.Fatalf("hop model classes = %d, want 3 (0, 1, 2 hops)", hop.NumClasses())
	}
	oneHop := classNodes(hop, 2)
	if !reflect.DeepEqual(oneHop, []topology.NodeID{0, 2, 4, 6}) {
		t.Errorf("1-hop class = %v, want [0 2 4 6]", oneHop)
	}
	if _, err := HopDistanceModel(m, 42); err == nil {
		t.Error("unknown target should fail")
	}
}

// A3 ablation: the memcpy iomodel must rank nodes for device reads far
// better than hop distance or the STREAM models do.
func TestModelRankCorrelationBeatsBaselines(t *testing.T) {
	sys := newSys(t)
	ioModel := characterize(t, ModeRead)
	hopModel, err := HopDistanceModel(sys.Machine(), 7)
	if err != nil {
		t.Fatal(err)
	}
	sr, err := stream.New(sys, stream.Config{Sigma: -1})
	if err != nil {
		t.Fatal(err)
	}
	mx, err := sr.Matrix()
	if err != nil {
		t.Fatal(err)
	}
	cpuModel, err := StreamModel(mx, sys.Machine(), 7, CPUCentric, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	memModel, err := StreamModel(mx, sys.Machine(), 7, MemCentric, 0.2)
	if err != nil {
		t.Fatal(err)
	}

	// Measured device-read rates per node (RDMA_READ, the protocol where
	// the paper's mismatch is starkest).
	runner := fio.NewRunner(sys)
	runner.Sigma = 0
	var measured []Sample
	for n := topology.NodeID(0); n < 8; n++ {
		rep, err := runner.Run([]fio.Job{{Name: "r", Engine: device.EngineRDMARead,
			Node: n, NumJobs: 2, Size: 4 * units.GiB}})
		if err != nil {
			t.Fatal(err)
		}
		measured = append(measured, Sample{Node: n, Bandwidth: rep.Aggregate})
	}

	rho := func(m *Model) float64 {
		r, err := SpearmanRank(m, measured)
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	ioRho, hopRho, cpuRho, memRho := rho(ioModel), rho(hopModel), rho(cpuModel), rho(memModel)
	if ioRho < 0.85 {
		t.Errorf("iomodel Spearman rho = %.2f, want >= 0.85", ioRho)
	}
	for name, base := range map[string]float64{"hop": hopRho, "cpu-centric": cpuRho, "mem-centric": memRho} {
		if !(ioRho > base+0.1) {
			t.Errorf("iomodel rho %.2f should clearly beat %s rho %.2f", ioRho, name, base)
		}
	}
}

func TestSpearmanValidation(t *testing.T) {
	m := characterize(t, ModeWrite)
	if _, err := SpearmanRank(m, nil); err == nil {
		t.Error("too few samples should fail")
	}
	if _, err := SpearmanRank(m, []Sample{{Node: 42, Bandwidth: 1}, {Node: 0, Bandwidth: 1}}); err == nil {
		t.Error("unknown node should fail")
	}
	if _, err := SpearmanRank(m, []Sample{
		{Node: 0, Bandwidth: units.Gbps}, {Node: 1, Bandwidth: units.Gbps},
	}); err == nil {
		t.Error("all-tied measurement should fail (degenerate)")
	}
}

func TestStreamModelKinds(t *testing.T) {
	sys := newSys(t)
	sr, err := stream.New(sys, stream.Config{Sigma: -1})
	if err != nil {
		t.Fatal(err)
	}
	mx, err := sr.Matrix()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := StreamModel(mx, sys.Machine(), 7, StreamModelKind(9), 0.2); err == nil {
		t.Error("unknown kind should fail")
	}
	cm, err := StreamModel(mx, sys.Machine(), 7, CPUCentric, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(cm.Samples) != 8 {
		t.Errorf("stream model samples = %d", len(cm.Samples))
	}
	if CPUCentric.String() != "cpu-centric" || MemCentric.String() != "memory-centric" {
		t.Error("kind strings")
	}
	if StreamModelKind(9).String() == "" {
		t.Error("fallback string")
	}
}

func TestModeStrings(t *testing.T) {
	if ModeWrite.String() != "write" || ModeRead.String() != "read" {
		t.Error("mode strings")
	}
	if Mode(9).String() == "" {
		t.Error("fallback string")
	}
}

func TestCharacterizeAll(t *testing.T) {
	sys := newSys(t)
	c, err := NewCharacterizer(sys, Config{Sigma: -1, Repeats: 1, BytesPerThread: units.GiB})
	if err != nil {
		t.Fatal(err)
	}
	mm, err := c.CharacterizeAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(mm.Models) != 16 { // 8 targets x 2 modes
		t.Fatalf("models = %d, want 16", len(mm.Models))
	}
	if len(mm.Targets()) != 8 {
		t.Errorf("targets = %v", mm.Targets())
	}
	m7, err := mm.ModelFor(7, ModeRead)
	if err != nil {
		t.Fatal(err)
	}
	if m7.NumClasses() != 4 {
		t.Errorf("node 7 read classes = %d, want 4", m7.NumClasses())
	}
	if _, err := mm.ModelFor(42, ModeRead); err == nil {
		t.Error("unknown target should fail")
	}
	// Whole-host cost reduction: representatives cover far fewer cells.
	if cr := mm.CostReduction(); cr < 0.4 || cr >= 1 {
		t.Errorf("machine cost reduction = %v", cr)
	}
	if (&MachineModel{}).CostReduction() != 0 {
		t.Error("empty machine model cost reduction should be 0")
	}

	// Every target's write model must keep the target in class 1.
	for _, target := range mm.Targets() {
		w, err := mm.ModelFor(target, ModeWrite)
		if err != nil {
			t.Fatal(err)
		}
		cls, err := w.ClassOf(target)
		if err != nil {
			t.Fatal(err)
		}
		if cls.Rank != 1 {
			t.Errorf("target %d not in its own class 1", int(target))
		}
	}
}

func TestMachineModelJSONRoundTrip(t *testing.T) {
	sys := newSys(t)
	c, err := NewCharacterizer(sys, Config{Sigma: -1, Repeats: 1, BytesPerThread: units.GiB})
	if err != nil {
		t.Fatal(err)
	}
	mm, err := c.CharacterizeAll()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := mm.SaveJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := LoadMachineJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(mm, back) {
		t.Error("machine model changed over JSON round trip")
	}
	if _, err := LoadMachineJSON(strings.NewReader("{}")); err == nil {
		t.Error("empty machine model should fail")
	}
	if _, err := LoadMachineJSON(strings.NewReader("{")); err == nil {
		t.Error("syntax error should fail")
	}
	if _, err := LoadMachineJSON(strings.NewReader(`{"models":[{"samples":[],"classes":[]}]}`)); err == nil {
		t.Error("invalid contained model should fail")
	}
}

func TestDiff(t *testing.T) {
	before := characterize(t, ModeWrite)

	// Identical models: no changes, zero deltas.
	same, err := Diff(before, before)
	if err != nil {
		t.Fatal(err)
	}
	if len(ChangedNodes(same)) != 0 {
		t.Errorf("self-diff reported changes: %v", ChangedNodes(same))
	}
	for _, d := range same {
		if d.RelChange != 0 {
			t.Errorf("self-diff node %d rel change %v", d.Node, d.RelChange)
		}
	}

	// A degraded machine moves node 0.
	mutant := topology.DL585G7()
	if err := mutant.DegradeLinkBetween("node0", "node7", 0.35); err != nil {
		t.Fatal(err)
	}
	sys2, err := numa.NewSystem(mutant)
	if err != nil {
		t.Fatal(err)
	}
	c2, err := NewCharacterizer(sys2, Config{Sigma: -1, Repeats: 1, BytesPerThread: units.GiB})
	if err != nil {
		t.Fatal(err)
	}
	after, err := c2.Characterize(7, ModeWrite)
	if err != nil {
		t.Fatal(err)
	}
	diffs, err := Diff(before, after)
	if err != nil {
		t.Fatal(err)
	}
	changed := ChangedNodes(diffs)
	found := false
	for _, n := range changed {
		if n == 0 {
			found = true
		}
	}
	if !found {
		t.Errorf("node 0 should change class after degradation: %v", changed)
	}
	for _, d := range diffs {
		if d.Node == 0 && d.RelChange >= 0 {
			t.Errorf("node 0 bandwidth should drop: %+v", d)
		}
	}

	// Validation errors.
	if _, err := Diff(nil, before); err == nil {
		t.Error("nil model should fail")
	}
	read := characterize(t, ModeRead)
	if _, err := Diff(before, read); err == nil {
		t.Error("cross-mode diff should fail")
	}
	other := *before
	other.Target = 3
	if _, err := Diff(before, &other); err == nil {
		t.Error("cross-target diff should fail")
	}
	short := *before
	short.Samples = short.Samples[:4]
	if _, err := Diff(before, &short); err == nil {
		t.Error("different node sets should fail")
	}
}

func TestSampleStdDev(t *testing.T) {
	sys := newSys(t)
	noisy, err := NewCharacterizer(sys, Config{Sigma: 0.03, Repeats: 6, BytesPerThread: units.GiB})
	if err != nil {
		t.Fatal(err)
	}
	m, err := noisy.Characterize(7, ModeWrite)
	if err != nil {
		t.Fatal(err)
	}
	anySpread := false
	for _, s := range m.Samples {
		if s.StdDev > 0 {
			anySpread = true
		}
		// Spread must stay well below the mean for a 3% jitter.
		if float64(s.StdDev) > 0.1*float64(s.Bandwidth) {
			t.Errorf("node %d stddev %v too large for mean %v", s.Node, s.StdDev, s.Bandwidth)
		}
	}
	if !anySpread {
		t.Error("noisy characterization should report nonzero spread")
	}

	quiet, err := NewCharacterizer(sys, Config{Sigma: -1, Repeats: 3, BytesPerThread: units.GiB})
	if err != nil {
		t.Fatal(err)
	}
	qm, err := quiet.Characterize(7, ModeWrite)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range qm.Samples {
		if s.StdDev != 0 {
			t.Errorf("noiseless run should have zero spread, node %d has %v", s.Node, s.StdDev)
		}
	}
}

func TestLoadModelsJSONStream(t *testing.T) {
	w := characterize(t, ModeWrite)
	r := characterize(t, ModeRead)
	var buf bytes.Buffer
	if err := w.SaveJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if err := r.SaveJSON(&buf); err != nil {
		t.Fatal(err)
	}
	models, err := LoadModelsJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(models) != 2 || models[0].Mode != ModeWrite || models[1].Mode != ModeRead {
		t.Errorf("stream decoded %d models", len(models))
	}
	if _, err := LoadModelsJSON(strings.NewReader("")); err == nil {
		t.Error("empty stream should fail")
	}
	if _, err := LoadModelsJSON(strings.NewReader("{\"samples\":[],\"classes\":[]}")); err == nil {
		t.Error("invalid model in stream should fail")
	}
}
