package core

import (
	"testing"

	"numaio/internal/numa"
	"numaio/internal/topology"
	"numaio/internal/units"
)

// Sec. V-B: "The methodology used to model the performance of node 7 can
// also be generalized to other nodes in the host and other NUMA systems."
// These tests run Algorithm 1 on different targets and machines.

func characterizeOn(t *testing.T, m *topology.Machine, target topology.NodeID, mode Mode) *Model {
	t.Helper()
	sys, err := numa.NewSystem(m)
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewCharacterizer(sys, Config{Sigma: -1, Repeats: 1, BytesPerThread: units.GiB})
	if err != nil {
		t.Fatal(err)
	}
	model, err := c.Characterize(target, mode)
	if err != nil {
		t.Fatal(err)
	}
	return model
}

// A different target on the testbed: node 0's write model must keep node 0
// and its package mate in class 1 and still classify every node.
func TestCharacterizeOtherTarget(t *testing.T) {
	m := characterizeOn(t, topology.DL585G7(), 0, ModeWrite)
	c1, err := m.ClassOf(0)
	if err != nil {
		t.Fatal(err)
	}
	if c1.Rank != 1 {
		t.Errorf("target not in class 1")
	}
	cn, err := m.ClassOf(1)
	if err != nil {
		t.Fatal(err)
	}
	if cn.Rank != 1 {
		t.Errorf("package mate of the target should share class 1, got %d", cn.Rank)
	}
	total := 0
	for _, cls := range m.Classes {
		total += len(cls.Nodes)
	}
	if total != 8 {
		t.Errorf("classified %d of 8 nodes", total)
	}
}

// A uniform full-mesh machine (Intel 4s/4n) collapses all remotes into one
// class: local+none vs remotes. (Four single-die sockets have no package
// neighbours.)
func TestCharacterizeUniformMesh(t *testing.T) {
	m := characterizeOn(t, topology.Intel4S4N(), 0, ModeWrite)
	if m.NumClasses() != 2 {
		t.Fatalf("uniform mesh classes = %d, want 2: %+v", m.NumClasses(), m.Classes)
	}
	if len(m.Classes[0].Nodes) != 1 || m.Classes[0].Nodes[0] != 0 {
		t.Errorf("class 1 = %v, want just the target", m.Classes[0].Nodes)
	}
	if len(m.Classes[1].Nodes) != 3 {
		t.Errorf("remote class = %v", m.Classes[1].Nodes)
	}
}

// The uniform Fig. 1(a) machine (no calibrated asymmetries): class 1 is the
// target package; every remote collapses into one class because all HT
// links carry the same capacity.
func TestCharacterizeUniformMagnyCours(t *testing.T) {
	m := characterizeOn(t, topology.MagnyCours4P(topology.VariantA), 7, ModeWrite)
	if m.NumClasses() != 2 {
		t.Fatalf("uniform magny classes = %d, want 2: %+v", m.NumClasses(), m.Classes)
	}
	if got := m.Classes[0].Nodes; len(got) != 2 || got[0] != 6 || got[1] != 7 {
		t.Errorf("class 1 = %v, want [6 7]", got)
	}
}

// Variant B has 8-bit diagonal links: the remotes split into full-width and
// narrow classes.
func TestCharacterizeVariantBNarrowLinks(t *testing.T) {
	m := characterizeOn(t, topology.MagnyCours4P(topology.VariantB), 7, ModeWrite)
	if m.NumClasses() < 3 {
		t.Fatalf("variant-b should split remotes over the 8-bit links: %+v", m.Classes)
	}
	// Node 2 reaches 7 over the narrow 2-7 diagonal: bottom class.
	c2, err := m.ClassOf(2)
	if err != nil {
		t.Fatal(err)
	}
	if c2.Rank != m.NumClasses() {
		t.Errorf("node 2 class = %d, want bottom (%d)", c2.Rank, m.NumClasses())
	}
}

// The 32-node blade system: the characterization cost drop grows with the
// host (the paper reports 50% for 8 nodes; at 32 nodes one blade-local
// class plus one cross-blade class cover nearly everything).
func TestCharacterizeBladeSystemScales(t *testing.T) {
	m := characterizeOn(t, topology.HPBlade32(), 0, ModeWrite)
	total := 0
	for _, cls := range m.Classes {
		total += len(cls.Nodes)
	}
	if total != 32 {
		t.Fatalf("classified %d of 32 nodes", total)
	}
	if m.NumClasses() > 4 {
		t.Errorf("blade system classes = %d, expected few", m.NumClasses())
	}
	if cr := m.CostReduction(); cr < 0.85 {
		t.Errorf("cost reduction = %.0f%%, expected >= 85%% on 32 nodes", cr*100)
	}
	// Blade mates of the target share class 1.
	for _, n := range []topology.NodeID{1, 2, 3} {
		cls, err := m.ClassOf(n)
		if err != nil {
			t.Fatal(err)
		}
		if cls.Rank != 1 {
			t.Errorf("blade mate %d in class %d", n, cls.Rank)
		}
	}
}

// Robustness: scaling every capacity by a common factor (a different
// calibration of the same machine) must not change the class structure —
// the model captures relative, not absolute, behaviour.
func TestClassesScaleInvariant(t *testing.T) {
	base := characterizeOn(t, topology.DL585G7(), 7, ModeWrite)

	scaled := topology.DL585G7().Clone()
	for i := 0; i < scaled.NumLinks(); i++ {
		if err := scaled.ScaleLink(i, 1.15); err != nil {
			t.Fatal(err)
		}
	}
	for i := range scaled.Nodes {
		scaled.Nodes[i].MemBandwidth = units.Bandwidth(1.15 * float64(scaled.Nodes[i].MemBandwidth))
	}
	up := characterizeOn(t, scaled, 7, ModeWrite)

	if base.NumClasses() != up.NumClasses() {
		t.Fatalf("class count changed: %d vs %d", base.NumClasses(), up.NumClasses())
	}
	for i := range base.Classes {
		if len(base.Classes[i].Nodes) != len(up.Classes[i].Nodes) {
			t.Errorf("class %d membership changed", i+1)
			continue
		}
		for j := range base.Classes[i].Nodes {
			if base.Classes[i].Nodes[j] != up.Classes[i].Nodes[j] {
				t.Errorf("class %d node %d changed", i+1, j)
			}
		}
		ratio := float64(up.Classes[i].Avg) / float64(base.Classes[i].Avg)
		if ratio < 1.14 || ratio > 1.16 {
			t.Errorf("class %d average should scale by 1.15, got %.3f", i+1, ratio)
		}
	}
}
