// Package core implements the paper's primary contribution (Sec. V): the
// NUMA I/O bandwidth performance model built from memory-copy operations.
//
// Algorithm 1: to characterize the node an I/O device is attached to (the
// "target"), spawn one copy thread per core of the target node and bind all
// of them to it — simulating the device's DMA engine. For the device-write
// model the data sink is fixed on the target and the source sweeps every
// node; for the device-read model the source is fixed and the sink sweeps.
// The per-node bandwidths are then clustered into performance classes
// (Tables IV and V): the target and its package neighbour always form class
// 1, and the remote nodes split wherever a wide bandwidth gap appears.
//
// The resulting Model predicts multi-user aggregate device bandwidth with
// the mixture of Eq. 1 and tells schedulers which nodes are interchangeable
// — all without touching the I/O hardware.
package core

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"numaio/internal/device"
	"numaio/internal/faults"
	"numaio/internal/fio"
	"numaio/internal/numa"
	"numaio/internal/resilience"
	"numaio/internal/telemetry"
	"numaio/internal/topology"
	"numaio/internal/units"
)

// activeWorkers counts the measurement workers currently executing a
// (node, repeat) cell, process-wide; numaiod exports it as the
// numaiod_measure_workers_busy gauge. The two plain atomic adds per cell
// are always paid — the gauge must read correctly for untraced sweeps
// too — while the trace counter series built on top of them (a Sprintf
// and an event append per sample) stays gated on an active tracer.
var activeWorkers atomic.Int64

// ActiveMeasureWorkers returns the number of measurement cells currently
// executing across all characterizations in the process, traced or not.
func ActiveMeasureWorkers() int64 { return activeWorkers.Load() }

// Mode selects which I/O direction the model describes.
type Mode int

// Modes.
const (
	// ModeWrite models writing to the device: the DMA engine reads host
	// memory on a varying node and stores into the device (data sink fixed
	// on the target node in the memcpy simulation, Fig. 9a).
	ModeWrite Mode = iota
	// ModeRead models reading from the device: the DMA engine writes host
	// memory on a varying node (data source fixed on the target, Fig. 9b).
	ModeRead
)

func (m Mode) String() string {
	switch m {
	case ModeWrite:
		return "write"
	case ModeRead:
		return "read"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// ParseMode maps the wire/CLI spelling of a mode back to its value.
func ParseMode(s string) (Mode, error) {
	switch s {
	case "write":
		return ModeWrite, nil
	case "read":
		return ModeRead, nil
	default:
		return 0, fmt.Errorf("core: unknown mode %q (want write or read)", s)
	}
}

// Sample is one measured point of the model.
type Sample struct {
	Node      topology.NodeID `json:"node"`
	Bandwidth units.Bandwidth `json:"bandwidth_bps"`
	// StdDev is the spread over the characterization repeats — the
	// run-to-run variation behind the ranges the paper's tables report.
	StdDev units.Bandwidth `json:"stddev_bps,omitempty"`
	// Outliers counts the repeats the MAD cutoff rejected for this node
	// (Config.OutlierMAD); omitted when rejection is off or nothing was
	// rejected.
	Outliers int `json:"outliers,omitempty"`
}

// Class is one performance class of the model.
type Class struct {
	Rank  int               `json:"rank"` // 1 is the target's own class
	Nodes []topology.NodeID `json:"nodes"`
	Min   units.Bandwidth   `json:"min_bps"`
	Max   units.Bandwidth   `json:"max_bps"`
	Avg   units.Bandwidth   `json:"avg_bps"`
}

// Model is a complete I/O bandwidth performance model for one target node
// and direction.
type Model struct {
	Machine string          `json:"machine"`
	Target  topology.NodeID `json:"target"`
	Mode    Mode            `json:"mode"`
	Samples []Sample        `json:"samples"`
	Classes []Class         `json:"classes"`
	// Resilience reports what the fault-tolerance machinery absorbed while
	// building the model; present only for runs under a fault plan.
	Resilience *ResilienceReport `json:"resilience,omitempty"`

	// table caches the lazily built node-sorted class-rate lookup used by
	// Predict (see predictTable). It holds a []predictEntry; concurrent
	// first builds are idempotent because the table is a pure function of
	// Classes. Rebind Classes only on a fresh copy, never on a Model that
	// has already served a Predict.
	table atomic.Value
}

// ResilienceReport summarizes the faults a characterization sweep survived
// (Config.Faults): how many measurement attempts were retried, why, and
// how many repeats the outlier rejection discarded. All counts are pure
// functions of the fault-plan seed, so they are identical at any
// Parallelism.
type ResilienceReport struct {
	// FaultPlan and Seed identify the plan the sweep ran under.
	FaultPlan string `json:"fault_plan,omitempty"`
	Seed      uint64 `json:"seed,omitempty"`
	// Retries counts retried measurement attempts; Timeouts and Failures
	// split the triggering errors into deadline expiries (induced hangs)
	// and injected transient failures.
	Retries  int `json:"retries,omitempty"`
	Timeouts int `json:"timeouts,omitempty"`
	Failures int `json:"failures,omitempty"`
	// Outliers counts repeats rejected by the MAD cutoff across all nodes.
	Outliers int `json:"outliers,omitempty"`
}

// Config tunes the characterization run.
type Config struct {
	// Threads per test; 0 means one per core of the target node
	// (Algorithm 1 line 2: m = cores/nodes).
	Threads int
	// Repeats averages this many runs per node; 0 means 5. (Algorithm 1
	// copies 100 times; the simulation's jitter converges much faster.)
	Repeats int
	// BytesPerThread per repeat; 0 means 2 GiB.
	BytesPerThread units.Size
	// GapThreshold is the fraction of the remote-node bandwidth spread
	// that counts as a class boundary; 0 means 0.2.
	GapThreshold float64
	// Sigma is the measurement noise; 0 means 0.02, negative disables.
	Sigma float64
	// Parallelism bounds the number of measurement workers. The
	// (node, repeat) cells of Characterize — and the (target, mode) sweeps
	// of CharacterizeAll — are independent, so they fan out over a worker
	// pool of this width; 0 or 1 runs serially. Measured values are
	// identical at any setting: jitter is keyed by job name, so scheduling
	// order cannot change a cell's value, and results are assembled in
	// deterministic node order. Parallelism therefore tunes wall time only.
	Parallelism int

	// Faults, when non-nil, runs the sweep under the fault plan: degraded
	// links, flaky devices, and measurements that fail, hang or report
	// outliers (internal/faults). Fault decisions are keyed by job name, so
	// chaos runs are as deterministic — and as Parallelism-independent — as
	// clean ones.
	Faults *faults.Plan
	// MeasureTimeout bounds one measurement attempt; an attempt the plan
	// hangs is abandoned (and retried) after this long. 0 means 250ms when
	// Faults is set and no limit otherwise; negative disables.
	MeasureTimeout time.Duration
	// MaxRetries is the retry budget per measurement cell for transient
	// failures and timeouts; retried attempts are renamed (-a1, -a2, …) so
	// they deterministically re-roll their fault and jitter draws. 0 means
	// 5 when Faults is set and no retries otherwise; negative disables.
	MaxRetries int
	// RetryBackoff is the base of the exponential backoff between retries
	// (doubling per attempt, capped at 64x). 0 means 1ms when Faults is set
	// and no waiting otherwise; negative disables.
	RetryBackoff time.Duration
	// OutlierMAD rejects a repeat whose modified z-score against the
	// per-node median — 0.6745*|v-median|/MAD — exceeds this cutoff, and
	// reports the rejection in the model (Sample.Outliers). 0 means 3.5
	// when Faults is set and no rejection otherwise; negative disables.
	// Clean runs leave it off, so previously serialized models are
	// reproduced byte for byte.
	OutlierMAD float64
	// Clock drives retry backoff and measurement timeouts; nil means the
	// system clock. Tests inject resilience.NewAutoClock so chaos sweeps
	// run without real sleeps.
	Clock resilience.Clock

	// Tracer, when non-nil, records the sweep onto the trace: one span per
	// (target, mode) sweep, one per (node, repeat) cell, the classification
	// pass, the underlying fluid runs, and resilience events (timeouts,
	// failures, outlier rejections). Tracing shapes no results and is
	// excluded from model cache keys.
	Tracer *telemetry.Tracer
}

func (c Config) withDefaults() Config {
	if c.Repeats == 0 {
		c.Repeats = 5
	}
	if c.BytesPerThread == 0 {
		c.BytesPerThread = 2 * units.GiB
	}
	if c.GapThreshold == 0 {
		c.GapThreshold = 0.2
	}
	if c.Sigma == 0 {
		c.Sigma = 0.02
	} else if c.Sigma < 0 {
		c.Sigma = 0
	}
	// Resilience knobs default on only under a fault plan, so clean runs
	// keep the exact historical behaviour (and bytes).
	chaos := c.Faults != nil
	if c.MeasureTimeout == 0 && chaos {
		c.MeasureTimeout = 250 * time.Millisecond
	} else if c.MeasureTimeout < 0 {
		c.MeasureTimeout = 0
	}
	if c.MaxRetries == 0 && chaos {
		c.MaxRetries = 5
	} else if c.MaxRetries < 0 {
		c.MaxRetries = 0
	}
	if c.RetryBackoff == 0 && chaos {
		c.RetryBackoff = time.Millisecond
	} else if c.RetryBackoff < 0 {
		c.RetryBackoff = 0
	}
	if c.OutlierMAD == 0 && chaos {
		c.OutlierMAD = 3.5
	} else if c.OutlierMAD < 0 {
		c.OutlierMAD = 0
	}
	if c.Clock == nil {
		c.Clock = resilience.SystemClock{}
	}
	return c
}

// runnerSlots is the number of per-worker runner slots (trace tracks 0 to
// runnerSlots use the sharded path; beyond that the freelist takes over).
const runnerSlots = 64

// Characterizer runs Algorithm 1 on a system.
type Characterizer struct {
	sys   *numa.System
	cfg   Config
	inj   *faults.Injector
	retry resilience.RetryPolicy

	// Runner pool. Building a runner is the expensive part of a sweep —
	// resource table, fluid session, private host — so runners are pooled
	// across sweeps and across CharacterizeAll calls instead of rebuilt per
	// worker. Each runner owns a private numa.System over the shared machine:
	// measured values never read host allocator state (memcpy buffer
	// placement is explicit), and private hosts mean parallel workers never
	// serialize on one allocator mutex.
	//
	// The pool is sharded per worker: slot[tid] parks the runner worker tid
	// last used, so getRunner/putRunner are a single atomic swap mid-sweep
	// (no global mutex) and each worker keeps hitting its own runner's warm
	// caches. The mutex-guarded freelist only backs the slots up — slot
	// collisions and out-of-range tids.
	slot [runnerSlots + 1]atomic.Pointer[fio.Runner]
	mu   sync.Mutex
	idle []*fio.Runner

	// names caches the per-sweep cell job names (see cellNames); fpOnce
	// caches the machine fingerprint for CharacterizeAll.
	nameMu sync.Mutex
	names  map[sweepKey][]string
	fpOnce sync.Once
	fp     string
	fpErr  error
}

// NewCharacterizer returns a characterizer for the system.
func NewCharacterizer(sys *numa.System, cfg Config) (*Characterizer, error) {
	cfg = cfg.withDefaults()
	if cfg.Threads < 0 {
		return nil, fmt.Errorf("core: negative thread count")
	}
	if cfg.Repeats < 1 {
		return nil, fmt.Errorf("core: repeats must be >= 1")
	}
	if cfg.GapThreshold <= 0 || cfg.GapThreshold >= 1 {
		return nil, fmt.Errorf("core: gap threshold %v out of (0,1)", cfg.GapThreshold)
	}
	if cfg.Parallelism < 0 {
		return nil, fmt.Errorf("core: negative parallelism")
	}
	c := &Characterizer{sys: sys, cfg: cfg}
	c.retry = resilience.RetryPolicy{MaxRetries: cfg.MaxRetries, Base: cfg.RetryBackoff}
	if cfg.Faults != nil {
		inj, err := faults.New(*cfg.Faults)
		if err != nil {
			return nil, err
		}
		// Resolve the plan's link faults now so an unknown link errors at
		// construction, not mid-sweep in a worker.
		if _, err := inj.LinkScales(sys.Machine()); err != nil {
			return nil, err
		}
		c.inj = inj
	}
	return c, nil
}

// getRunner pops a pooled measurement runner (or builds one on a pool
// miss), rebound to the given trace track. Return it with putRunner.
// Worker tid's own slot is tried first — one atomic swap, warm caches.
func (c *Characterizer) getRunner(tid int) (*fio.Runner, error) {
	if tid >= 0 && tid <= runnerSlots {
		if runner := c.slot[tid].Swap(nil); runner != nil {
			runner.Tracer, runner.TraceTID = c.cfg.Tracer, tid
			return runner, nil
		}
	}
	c.mu.Lock()
	if n := len(c.idle); n > 0 {
		runner := c.idle[n-1]
		c.idle = c.idle[:n-1]
		c.mu.Unlock()
		runner.Tracer, runner.TraceTID = c.cfg.Tracer, tid
		return runner, nil
	}
	c.mu.Unlock()
	sys, err := numa.NewSystem(c.sys.Machine())
	if err != nil {
		return nil, err
	}
	runner := fio.NewRunner(sys)
	runner.Sigma = c.cfg.Sigma
	// The sweep reads only the aggregate; skip the per-phase timeline.
	runner.LeanTimeline = true
	if err := runner.SetFaults(c.inj); err != nil {
		return nil, err
	}
	runner.Tracer, runner.TraceTID = c.cfg.Tracer, tid
	return runner, nil
}

// putRunner parks a runner for reuse by later cells and sweeps, preferring
// the worker's own slot.
func (c *Characterizer) putRunner(runner *fio.Runner, tid int) {
	runner.Tracer = nil
	if tid >= 0 && tid <= runnerSlots && c.slot[tid].CompareAndSwap(nil, runner) {
		return
	}
	c.mu.Lock()
	c.idle = append(c.idle, runner)
	c.mu.Unlock()
}

// workers clamps the configured parallelism to the number of independent
// work items.
func (c *Characterizer) workers(items int) int {
	p := c.cfg.Parallelism
	if p < 1 {
		p = 1
	}
	if p > items {
		p = items
	}
	return p
}

// Characterize runs Algorithm 1 for one target node and mode and returns
// the classified model. With Config.Parallelism > 1 the (node, repeat)
// measurement cells run concurrently; the model is identical either way.
func (c *Characterizer) Characterize(target topology.NodeID, mode Mode) (*Model, error) {
	return c.characterize(target, mode, -1, 0)
}

// CharacterizeOn is Characterize with the sweep's spans recorded on the
// given trace track. Callers that fan whole sweeps out over their own
// worker pools (the scenario grid runner) pass each worker's track so
// concurrent sweeps nest cleanly in the trace; the model is identical to
// Characterize's. Without a Config.Tracer the track is irrelevant.
func (c *Characterizer) CharacterizeOn(target topology.NodeID, mode Mode, track int) (*Model, error) {
	return c.characterize(target, mode, -1, track)
}

// characterize is Characterize with an explicit worker budget and trace
// track; budget < 0 means use the configured parallelism. CharacterizeAll
// passes 1 so that fanning out over (target, mode) pairs does not multiply
// the pool width, and gives each sweep its worker's track.
func (c *Characterizer) characterize(target topology.NodeID, mode Mode, budget, tid int) (*Model, error) {
	// Span construction (name formatting, attr slice) is skipped outright
	// without a tracer — this sits on the sweep's hot path. All span methods
	// are nil-safe, so the untraced flow below is unchanged.
	var sweep *telemetry.Span
	if c.cfg.Tracer != nil {
		sweep = c.cfg.Tracer.StartSpanOn(tid,
			fmt.Sprintf("characterize t%d %v", int(target), mode), "characterize",
			telemetry.Int("target", int(target)), telemetry.String("mode", mode.String()))
	}
	defer sweep.End()

	m := c.sys.Machine()
	targetNode, ok := m.Node(target)
	if !ok {
		return nil, fmt.Errorf("core: unknown target node %d", int(target))
	}
	threads := c.cfg.Threads
	if threads == 0 || threads > targetNode.Cores {
		threads = targetNode.Cores
	}

	nodes := m.NodeIDs()
	if budget < 0 {
		budget = c.workers(len(nodes) * c.cfg.Repeats)
	}
	vals, stats, err := c.measureCells(target, mode, threads, nodes, budget, tid)
	if err != nil {
		return nil, err
	}
	model := &Model{Machine: m.Name, Target: target, Mode: mode}
	model.Samples = make([]Sample, 0, len(nodes))
	totalOutliers := 0
	for i, n := range nodes {
		kept, rejected := vals[i], 0
		if c.cfg.OutlierMAD > 0 {
			kept, rejected = rejectOutliers(vals[i], c.cfg.OutlierMAD)
			totalOutliers += rejected
		}
		if rejected > 0 {
			c.cfg.Tracer.InstantOn(tid, "outliers-rejected", "resilience",
				telemetry.Int("node", int(n)), telemetry.Int("rejected", rejected))
		}
		bw, sd := meanStddev(kept)
		model.Samples = append(model.Samples, Sample{Node: n, Bandwidth: bw, StdDev: sd, Outliers: rejected})
	}
	if c.cfg.Faults != nil {
		model.Resilience = &ResilienceReport{
			FaultPlan: c.cfg.Faults.Name,
			Seed:      c.cfg.Faults.Seed,
			Retries:   stats.retries,
			Timeouts:  stats.timeouts,
			Failures:  stats.failures,
			Outliers:  totalOutliers,
		}
	}
	clsSpan := sweep.StartSpan("classify", "classify")
	classes, err := Classify(m, target, model.Samples, c.cfg.GapThreshold)
	clsSpan.End()
	if err != nil {
		return nil, err
	}
	model.Classes = classes
	return model, nil
}

// cellStats counts what the retry machinery absorbed for one cell.
type cellStats struct {
	retries, timeouts, failures int
}

func (s *cellStats) add(o cellStats) {
	s.retries += o.retries
	s.timeouts += o.timeouts
	s.failures += o.failures
}

// measureScratch is one worker's reusable measurement state: the job slice
// handed to the fio runner and the src/dst nodes its pointer fields bind
// to. One per worker, so a cell allocates nothing to describe its job.
type measureScratch struct {
	jobs     [1]fio.Job
	src, dst topology.NodeID
}

// newScratch seeds the sweep-invariant job fields; per-cell fields (Name,
// src, dst) are filled by measureAttempt.
func (c *Characterizer) newScratch(target topology.NodeID, threads int) *measureScratch {
	sc := &measureScratch{}
	sc.jobs[0] = fio.Job{
		Engine:  device.EngineMemcpy,
		Node:    target, // all copy threads bound to the target node
		NumJobs: threads,
		Size:    c.cfg.BytesPerThread,
		SrcNode: &sc.src,
		DstNode: &sc.dst,
	}
	return sc
}

// sweepKey identifies one (target, mode) sweep's cached cell names.
type sweepKey struct {
	target topology.NodeID
	mode   Mode
}

// cellNames returns the attempt-0 job names of every (node, repeat) cell,
// row-indexed [nodeIdx*reps+rep], built once per (target, mode) and cached:
// the names carry the full cell coordinates (they key the jitter and fault
// draws), and formatting them per cell was a measurable slice of the sweep.
func (c *Characterizer) cellNames(target topology.NodeID, mode Mode, nodes []topology.NodeID, reps int) []string {
	key := sweepKey{target: target, mode: mode}
	c.nameMu.Lock()
	defer c.nameMu.Unlock()
	if row, ok := c.names[key]; ok && len(row) == len(nodes)*reps {
		return row
	}
	row := make([]string, len(nodes)*reps)
	for i, n := range nodes {
		for rep := 0; rep < reps; rep++ {
			row[i*reps+rep] = fmt.Sprintf("iomodel-%v-t%d-n%d-r%d", mode, int(target), int(n), rep)
		}
	}
	if c.names == nil {
		c.names = make(map[sweepKey][]string)
	}
	c.names[key] = row
	return row
}

// measureCells runs every (node, repeat) measurement cell of one sweep and
// returns vals[nodeIdx][rep] plus the summed resilience stats. Cells are
// independent, so with workers > 1 they are distributed over a bounded
// pool, one fio.Runner per worker: workers claim contiguous index ranges
// off an atomic counter — no channel send per cell — and the result matrix
// (and the per-cell stats it sums) is indexed, not appended, so scheduling
// order cannot change the assembled model.
func (c *Characterizer) measureCells(target topology.NodeID, mode Mode, threads int, nodes []topology.NodeID, workers, tid int) ([][]float64, cellStats, error) {
	reps := c.cfg.Repeats
	flat := make([]float64, len(nodes)*reps)
	vals := make([][]float64, len(nodes))
	for i := range vals {
		vals[i] = flat[i*reps : (i+1)*reps : (i+1)*reps]
	}
	total := len(nodes) * reps
	perCell := make([]cellStats, total)
	names := c.cellNames(target, mode, nodes, reps)
	var sum cellStats
	// The busy-worker gauge is always maintained — two plain atomic adds
	// per cell — so /metrics reads true occupancy whether or not a trace
	// is running. Only the trace counter series (Sprintf + event append)
	// is gated on an active tracer.
	traced := c.cfg.Tracer != nil

	if workers <= 1 {
		runner, err := c.getRunner(tid)
		if err != nil {
			return nil, sum, err
		}
		defer c.putRunner(runner, tid)
		sc := c.newScratch(target, threads)
		for i, n := range nodes {
			for rep := 0; rep < reps; rep++ {
				idx := i*reps + rep
				activeWorkers.Add(1)
				v, st, err := c.measureCell(runner, sc, names[idx], target, n, mode, rep, tid)
				activeWorkers.Add(-1)
				if err != nil {
					return nil, sum, err
				}
				vals[i][rep] = v
				perCell[idx] = st
			}
		}
		for _, st := range perCell {
			sum.add(st)
		}
		return vals, sum, nil
	}

	// Workers grab chunkSize cells at a time: big enough that claiming is a
	// handful of atomic adds per sweep, small enough (4 chunks per worker)
	// that an unlucky worker cannot strand a long tail.
	chunk := int64(total / (workers * 4))
	if chunk < 1 {
		chunk = 1
	}
	var next atomic.Int64
	var failed atomic.Bool
	var wg sync.WaitGroup
	var mu sync.Mutex
	var firstErr error
	fail := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		mu.Unlock()
		failed.Store(true)
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(wtid int) {
			defer wg.Done()
			runner, err := c.getRunner(wtid)
			if err != nil {
				fail(err)
				return
			}
			defer c.putRunner(runner, wtid)
			sc := c.newScratch(target, threads)
			for {
				end := next.Add(chunk)
				start := end - chunk
				if start >= int64(total) {
					return
				}
				if end > int64(total) {
					end = int64(total)
				}
				for idx := start; idx < end; idx++ {
					if failed.Load() {
						return
					}
					i, rep := int(idx)/reps, int(idx)%reps
					busy := activeWorkers.Add(1)
					if traced {
						// Worker-pool occupancy, sampled onto the trace as a
						// counter series (parallel paths only, so serial traces
						// stay byte-deterministic).
						c.cfg.Tracer.Count("measure-workers-busy", float64(busy))
					}
					v, st, err := c.measureCell(runner, sc, names[idx], target, nodes[i], mode, rep, wtid)
					busy = activeWorkers.Add(-1)
					if traced {
						c.cfg.Tracer.Count("measure-workers-busy", float64(busy))
					}
					if err != nil {
						fail(err)
						return
					}
					vals[i][rep] = v
					perCell[idx] = st
				}
			}
		}(w + 1)
	}
	wg.Wait()
	if firstErr != nil {
		return nil, sum, firstErr
	}
	// Summed in index order, so the totals are schedule-independent.
	for _, st := range perCell {
		sum.add(st)
	}
	return vals, sum, nil
}

// retryable reports whether a measurement error is worth another attempt:
// injected transient faults and abandoned (timed-out) attempts are; logic
// errors (unknown nodes, bad configs) are not.
func retryable(err error) bool {
	return resilience.IsTransient(err) || errors.Is(err, context.DeadlineExceeded)
}

// measureCell runs one (target, node, repeat) cell (one iteration of
// Algorithm 1 line 12) with the configured retry budget: a transient
// failure or timeout backs off exponentially and tries again under an
// attempt-suffixed job name, so the retry deterministically re-rolls its
// fault and jitter draws. The returned stats are a pure function of the
// cell and the fault-plan seed.
func (c *Characterizer) measureCell(runner *fio.Runner, sc *measureScratch, name string, target, n topology.NodeID, mode Mode, rep, tid int) (float64, cellStats, error) {
	var cell *telemetry.Span
	if c.cfg.Tracer != nil {
		cell = c.cfg.Tracer.StartSpanOn(tid,
			fmt.Sprintf("measure n%d r%d", int(n), rep), "measure",
			telemetry.Int("target", int(target)), telemetry.String("mode", mode.String()),
			telemetry.Int("node", int(n)), telemetry.Int("repeat", rep))
	}
	var st cellStats
	maxAttempts := c.cfg.MaxRetries + 1
	if maxAttempts < 1 {
		maxAttempts = 1
	}
	for attempt := 0; ; attempt++ {
		v, err := c.measureAttempt(runner, sc, name, target, n, mode, attempt)
		if err == nil {
			cell.SetAttr(telemetry.Int("attempts", attempt+1))
			cell.End()
			return v, st, nil
		}
		if errors.Is(err, context.DeadlineExceeded) {
			st.timeouts++
			c.cfg.Tracer.InstantOn(tid, "measure-timeout", "resilience",
				telemetry.Int("node", int(n)), telemetry.Int("repeat", rep),
				telemetry.Int("attempt", attempt))
		} else {
			st.failures++
			c.cfg.Tracer.InstantOn(tid, "measure-failure", "resilience",
				telemetry.Int("node", int(n)), telemetry.Int("repeat", rep),
				telemetry.Int("attempt", attempt))
		}
		if attempt+1 >= maxAttempts || !retryable(err) {
			cell.SetAttr(telemetry.Int("attempts", attempt+1), telemetry.String("error", "failed"))
			cell.End()
			return 0, st, fmt.Errorf("core: node %d repeat %d failed after %d attempts: %w",
				int(n), rep, attempt+1, err)
		}
		st.retries++
		if d := c.retry.Delay(attempt); d > 0 {
			<-c.cfg.Clock.After(d)
		}
	}
}

// measureAttempt runs the memcpy engine once. The job name carries the
// full cell coordinates (plus the attempt number on retries), so the
// jitter and fault draws — and therefore the measured value — are a pure
// function of the cell, independent of which worker runs it. The job rides
// in the worker's scratch and the runner's aggregate-only path, so a clean
// attempt allocates nothing.
func (c *Characterizer) measureAttempt(runner *fio.Runner, sc *measureScratch, name string, target, n topology.NodeID, mode Mode, attempt int) (float64, error) {
	sc.src, sc.dst = n, target // device write: read from node i, store at target
	if mode == ModeRead {
		sc.src, sc.dst = target, n // device read: read at target, store to node i
	}
	if attempt > 0 {
		// Retries re-roll their draws under an attempt-suffixed name; the
		// rare path keeps the Sprintf.
		name = fmt.Sprintf("%s-a%d", name, attempt)
	}
	sc.jobs[0].Name = name
	ctx := context.Background()
	if c.cfg.MeasureTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = resilience.ContextWithTimeout(ctx, c.cfg.Clock, c.cfg.MeasureTimeout)
		defer cancel()
	}
	agg, err := runner.RunAggregate(ctx, sc.jobs[:])
	if err != nil {
		return 0, err
	}
	return float64(agg), nil
}

// rejectOutliers drops the values whose modified z-score against the
// median — 0.6745*|v-median|/MAD — exceeds the cutoff, preserving the
// order of the survivors (so the mean accumulates exactly like the serial
// loop). A zero MAD (at least half the repeats identical) keeps everything.
func rejectOutliers(vals []float64, cutoff float64) ([]float64, int) {
	if len(vals) < 3 {
		return vals, 0
	}
	med := median(vals)
	devs := make([]float64, len(vals))
	for i, v := range vals {
		devs[i] = math.Abs(v - med)
	}
	mad := median(devs)
	if mad == 0 {
		return vals, 0
	}
	kept := make([]float64, 0, len(vals))
	for _, v := range vals {
		if 0.6745*math.Abs(v-med)/mad <= cutoff {
			kept = append(kept, v)
		}
	}
	if len(kept) == 0 {
		// Degenerate spread: keep the medianmost value rather than nothing.
		return []float64{med}, len(vals) - 1
	}
	return kept, len(vals) - len(kept)
}

// median returns the middle value (mean of the middle two for even
// lengths) without mutating vals.
func median(vals []float64) float64 {
	s := append([]float64(nil), vals...)
	sort.Float64s(s)
	mid := len(s) / 2
	if len(s)%2 == 1 {
		return s[mid]
	}
	return (s[mid-1] + s[mid]) / 2
}

// meanStddev averages the repeats of one cell row (Algorithm 1 line 12)
// and reports the sample spread. Accumulation runs in repeat order so the
// floats match the original serial loop bit for bit.
func meanStddev(vals []float64) (units.Bandwidth, units.Bandwidth) {
	var sum float64
	for _, v := range vals {
		sum += v
	}
	mean := sum / float64(len(vals))
	var sq float64
	for _, v := range vals {
		sq += (v - mean) * (v - mean)
	}
	var sd float64
	if len(vals) > 1 {
		sd = math.Sqrt(sq / float64(len(vals)-1))
	}
	return units.Bandwidth(mean), units.Bandwidth(sd)
}

// Classify groups per-node bandwidths into performance classes. Following
// Sec. V-A, the target and its package neighbours always form class 1; the
// remote nodes are sorted by bandwidth and split wherever consecutive
// values gap by more than gapThreshold times the remote spread.
func Classify(m *topology.Machine, target topology.NodeID, samples []Sample, gapThreshold float64) ([]Class, error) {
	if len(samples) == 0 {
		return nil, fmt.Errorf("core: no samples to classify")
	}
	byNode := make(map[topology.NodeID]units.Bandwidth, len(samples))
	for _, s := range samples {
		if _, ok := m.Node(s.Node); !ok {
			return nil, fmt.Errorf("core: sample for unknown node %d", int(s.Node))
		}
		if _, dup := byNode[s.Node]; dup {
			return nil, fmt.Errorf("core: duplicate sample for node %d", int(s.Node))
		}
		if s.Bandwidth <= 0 {
			return nil, fmt.Errorf("core: nonpositive bandwidth for node %d", int(s.Node))
		}
		byNode[s.Node] = s.Bandwidth
	}
	if _, ok := byNode[target]; !ok {
		return nil, fmt.Errorf("core: samples missing target node %d", int(target))
	}

	var first []Sample
	var remotes []Sample
	for _, s := range samples {
		if s.Node == target || m.Neighbors(target, s.Node) {
			first = append(first, s)
		} else {
			remotes = append(remotes, s)
		}
	}
	classes := []Class{newClass(1, first)}

	if len(remotes) > 0 {
		sort.Slice(remotes, func(i, j int) bool {
			if remotes[i].Bandwidth != remotes[j].Bandwidth {
				return remotes[i].Bandwidth > remotes[j].Bandwidth
			}
			return remotes[i].Node < remotes[j].Node
		})
		spread := float64(remotes[0].Bandwidth - remotes[len(remotes)-1].Bandwidth)
		cur := []Sample{remotes[0]}
		for i := 1; i < len(remotes); i++ {
			gap := float64(remotes[i-1].Bandwidth - remotes[i].Bandwidth)
			if spread > 0 && gap > gapThreshold*spread {
				classes = append(classes, newClass(len(classes)+1, cur))
				cur = nil
			}
			cur = append(cur, remotes[i])
		}
		classes = append(classes, newClass(len(classes)+1, cur))
	}
	return classes, nil
}

func newClass(rank int, samples []Sample) Class {
	c := Class{Rank: rank}
	var sum float64
	for i, s := range samples {
		c.Nodes = append(c.Nodes, s.Node)
		if i == 0 || s.Bandwidth < c.Min {
			c.Min = s.Bandwidth
		}
		if s.Bandwidth > c.Max {
			c.Max = s.Bandwidth
		}
		sum += float64(s.Bandwidth)
	}
	sort.Slice(c.Nodes, func(i, j int) bool { return c.Nodes[i] < c.Nodes[j] })
	if len(samples) > 0 {
		c.Avg = units.Bandwidth(sum / float64(len(samples)))
	}
	return c
}

// ClassOf returns the class containing the node.
func (m *Model) ClassOf(n topology.NodeID) (Class, error) {
	for _, c := range m.Classes {
		for _, id := range c.Nodes {
			if id == n {
				return c, nil
			}
		}
	}
	return Class{}, fmt.Errorf("core: node %d not in model", int(n))
}

// SampleOf returns the measured bandwidth of a node.
func (m *Model) SampleOf(n topology.NodeID) (units.Bandwidth, error) {
	for _, s := range m.Samples {
		if s.Node == n {
			return s.Bandwidth, nil
		}
	}
	return 0, fmt.Errorf("core: node %d not in model", int(n))
}

// NumClasses returns the number of performance classes.
func (m *Model) NumClasses() int { return len(m.Classes) }

// RepresentativeNodes returns one node per class (the lowest ID): to
// characterize actual I/O hardware it suffices to benchmark these nodes,
// the cost reduction of Sec. V-B.
func (m *Model) RepresentativeNodes() []topology.NodeID {
	out := make([]topology.NodeID, 0, len(m.Classes))
	for _, c := range m.Classes {
		if len(c.Nodes) > 0 {
			out = append(out, c.Nodes[0])
		}
	}
	return out
}

// CostReduction is the fraction of benchmark runs saved by testing one node
// per class instead of every node (50% in the paper's Table V example).
func (m *Model) CostReduction() float64 {
	if len(m.Samples) == 0 {
		return 0
	}
	return 1 - float64(len(m.Classes))/float64(len(m.Samples))
}
