package core

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sort"
	"testing"
	"time"

	"numaio/internal/telemetry"
)

// traceJSON runs one Characterize sweep on dl585g7 under a fake step clock
// and returns the serialized trace.
func traceJSON(t *testing.T, parallelism int) []byte {
	t.Helper()
	sys := sysFor(t, "dl585g7")
	tr := telemetry.NewTracerFunc(telemetry.StepClock(time.Microsecond))
	c, err := NewCharacterizer(sys, Config{Parallelism: parallelism, Tracer: tr})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Characterize(7, ModeWrite); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// spanKeys reduces a trace to its multiset of complete spans — one
// "name|cat|sorted args" line each, sorted. Counter samples and track IDs
// are scheduling-dependent and excluded.
func spanKeys(t *testing.T, trace []byte) []string {
	t.Helper()
	var doc struct {
		TraceEvents []struct {
			Name string          `json:"name"`
			Cat  string          `json:"cat"`
			Ph   string          `json:"ph"`
			Args json.RawMessage `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(trace, &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	var keys []string
	for _, e := range doc.TraceEvents {
		if e.Ph != "X" {
			continue
		}
		args := make(map[string]string)
		if len(e.Args) > 0 {
			if err := json.Unmarshal(e.Args, &args); err != nil {
				t.Fatalf("span %q args are not strings: %v", e.Name, err)
			}
		}
		argKeys := make([]string, 0, len(args))
		for k := range args {
			argKeys = append(argKeys, k)
		}
		sort.Strings(argKeys)
		key := e.Name + "|" + e.Cat
		for _, k := range argKeys {
			key += "|" + k + "=" + args[k]
		}
		keys = append(keys, key)
	}
	sort.Strings(keys)
	return keys
}

// TestTraceGoldenSerial: two identical serial runs under the fake clock
// must serialize byte-identically, and the trace must contain exactly one
// measure span per (node, repeat) cell.
func TestTraceGoldenSerial(t *testing.T) {
	a, b := traceJSON(t, 1), traceJSON(t, 1)
	if !bytes.Equal(a, b) {
		t.Error("two serial fake-clock runs produced different trace bytes")
	}

	keys := spanKeys(t, a)
	const nodes, reps = 8, 5 // dl585g7 nodes × default repeats
	measures := 0
	seen := make(map[string]bool)
	for _, k := range keys {
		if len(k) >= 8 && k[:8] == "measure " {
			measures++
			seen[k] = true
		}
	}
	if measures != nodes*reps {
		t.Errorf("trace has %d measure spans, want %d", measures, nodes*reps)
	}
	if len(seen) != nodes*reps {
		t.Errorf("measure spans are not unique per cell: %d distinct of %d", len(seen), nodes*reps)
	}
	for n := 0; n < nodes; n++ {
		for r := 0; r < reps; r++ {
			k := fmt.Sprintf("measure n%d r%d|measure|attempts=1|mode=write|node=%d|repeat=%d|target=7", n, r, n, r)
			if !seen[k] {
				t.Errorf("missing cell span %q", k)
			}
		}
	}
}

// TestTraceParallelEventSetIdentical: at Parallelism=8 the same spans must
// be recorded (different order and tracks, same multiset).
func TestTraceParallelEventSetIdentical(t *testing.T) {
	serial := spanKeys(t, traceJSON(t, 1))
	parallel := spanKeys(t, traceJSON(t, 8))
	if len(serial) != len(parallel) {
		t.Fatalf("span counts differ: serial %d, parallel %d", len(serial), len(parallel))
	}
	for i := range serial {
		if serial[i] != parallel[i] {
			t.Fatalf("span multiset differs at %d:\nserial:   %s\nparallel: %s", i, serial[i], parallel[i])
		}
	}
}

// TestStageReportReconciles: under a real clock, the top-level sweep
// stage's total must reconcile with the trace's wall time within 5% (the
// sweep span covers the whole run; only span-recording overhead escapes
// it).
func TestStageReportReconciles(t *testing.T) {
	sys := sysFor(t, "dl585g7")
	tr := telemetry.NewTracer()
	c, err := NewCharacterizer(sys, Config{Parallelism: 1, Tracer: tr})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Characterize(7, ModeWrite); err != nil {
		t.Fatal(err)
	}
	wall := tr.WallTime()
	if wall <= 0 {
		t.Fatal("no wall time recorded")
	}
	var sweepTotal time.Duration
	found := false
	for _, row := range tr.StageReport() {
		if row.Stage == "characterize" {
			sweepTotal, found = row.Total, true
		}
	}
	if !found {
		t.Fatal("no characterize stage in report")
	}
	if diff := (wall - sweepTotal).Seconds(); diff < 0 || diff > 0.05*wall.Seconds() {
		t.Errorf("characterize total %v does not reconcile with wall %v", sweepTotal, wall)
	}
}
