package core

import (
	"fmt"
	"math"
	"sort"

	"numaio/internal/stream"
	"numaio/internal/topology"
	"numaio/internal/units"
)

// This file implements the characterization baselines the paper compares
// against and finds wanting (Secs. I-A, IV): the hop-distance metric and
// STREAM-derived models. They exist so the experiments can quantify how
// much better the memcpy iomodel tracks real I/O behaviour.

// HopDistanceModel builds a pseudo-model from hop counts: nodes at equal
// distance from the target form a class, nearer is assumed faster. There is
// no bandwidth measurement behind it, so class averages carry synthetic
// scores (hops+1 inverted) useful only for rank comparisons.
func HopDistanceModel(m *topology.Machine, target topology.NodeID) (*Model, error) {
	if _, ok := m.Node(target); !ok {
		return nil, fmt.Errorf("core: unknown target node %d", int(target))
	}
	byHops := make(map[int][]topology.NodeID)
	maxHops := 0
	for _, n := range m.NodeIDs() {
		h, err := m.HopDistance(target, n)
		if err != nil {
			return nil, err
		}
		byHops[h] = append(byHops[h], n)
		if h > maxHops {
			maxHops = h
		}
	}
	model := &Model{Machine: m.Name, Target: target, Mode: ModeWrite}
	rank := 0
	for h := 0; h <= maxHops; h++ {
		nodes, ok := byHops[h]
		if !ok {
			continue
		}
		rank++
		score := units.Bandwidth(maxHops-h+1) * units.Gbps // synthetic ordering score
		cls := Class{Rank: rank, Nodes: nodes, Min: score, Max: score, Avg: score}
		sort.Slice(cls.Nodes, func(i, j int) bool { return cls.Nodes[i] < cls.Nodes[j] })
		model.Classes = append(model.Classes, cls)
		for _, n := range nodes {
			model.Samples = append(model.Samples, Sample{Node: n, Bandwidth: score})
		}
	}
	sort.Slice(model.Samples, func(i, j int) bool { return model.Samples[i].Node < model.Samples[j].Node })
	return model, nil
}

// StreamModelKind selects which STREAM-derived model to build (Fig. 4).
type StreamModelKind int

// Stream model kinds.
const (
	// CPUCentric: STREAM threads fixed on the target, memory sweeping —
	// Fig. 4(a).
	CPUCentric StreamModelKind = iota
	// MemCentric: data fixed on the target, threads sweeping — Fig. 4(b).
	MemCentric
)

func (k StreamModelKind) String() string {
	switch k {
	case CPUCentric:
		return "cpu-centric"
	case MemCentric:
		return "memory-centric"
	default:
		return fmt.Sprintf("StreamModelKind(%d)", int(k))
	}
}

// StreamModel builds a cbench-style model from STREAM measurements (the
// approach of [18] that Sec. IV-B shows mispredicts I/O behaviour).
func StreamModel(mx *stream.Matrix, m *topology.Machine, target topology.NodeID, kind StreamModelKind, gapThreshold float64) (*Model, error) {
	var vec []units.Bandwidth
	var err error
	switch kind {
	case CPUCentric:
		vec, err = mx.CPUCentric(target)
	case MemCentric:
		vec, err = mx.MemCentric(target)
	default:
		return nil, fmt.Errorf("core: unknown stream model kind %v", kind)
	}
	if err != nil {
		return nil, err
	}
	model := &Model{Machine: m.Name, Target: target, Mode: ModeWrite}
	for i, n := range mx.Nodes {
		model.Samples = append(model.Samples, Sample{Node: n, Bandwidth: vec[i]})
	}
	if gapThreshold <= 0 {
		gapThreshold = 0.2
	}
	classes, err := Classify(m, target, model.Samples, gapThreshold)
	if err != nil {
		return nil, err
	}
	model.Classes = classes
	return model, nil
}

// SpearmanRank computes Spearman's rank correlation between a model's
// per-node bandwidths and externally measured per-node rates. 1 means the
// model orders the nodes exactly like the measurement; values near 0 mean
// the model is useless as a predictor. Ties get averaged ranks.
func SpearmanRank(model *Model, measured []Sample) (float64, error) {
	if len(measured) < 2 {
		return 0, fmt.Errorf("core: need at least two measured samples")
	}
	var xs, ys []float64
	for _, s := range measured {
		bw, err := model.SampleOf(s.Node)
		if err != nil {
			return 0, err
		}
		xs = append(xs, float64(bw))
		ys = append(ys, float64(s.Bandwidth))
	}
	rx, ry := ranks(xs), ranks(ys)
	return pearson(rx, ry)
}

// ranks assigns average ranks (1-based) with tie handling.
func ranks(v []float64) []float64 {
	type iv struct {
		i int
		v float64
	}
	s := make([]iv, len(v))
	for i, x := range v {
		s[i] = iv{i, x}
	}
	sort.Slice(s, func(a, b int) bool { return s[a].v < s[b].v })
	out := make([]float64, len(v))
	for i := 0; i < len(s); {
		j := i
		for j < len(s) && s[j].v == s[i].v {
			j++
		}
		avg := float64(i+j+1) / 2 // average of 1-based ranks i+1..j
		for k := i; k < j; k++ {
			out[s[k].i] = avg
		}
		i = j
	}
	return out
}

func pearson(x, y []float64) (float64, error) {
	n := float64(len(x))
	var sx, sy float64
	for i := range x {
		sx += x[i]
		sy += y[i]
	}
	mx, my := sx/n, sy/n
	var num, dx, dy float64
	for i := range x {
		a, b := x[i]-mx, y[i]-my
		num += a * b
		dx += a * a
		dy += b * b
	}
	if dx == 0 || dy == 0 {
		return 0, fmt.Errorf("core: degenerate rank vector (all ties)")
	}
	return num / (math.Sqrt(dx) * math.Sqrt(dy)), nil
}
