package core

import (
	"fmt"
	"math"
	"sort"
	"testing"

	"numaio/internal/topology"
	"numaio/internal/units"
)

// legacyPredict is the pre-table reference implementation of Eq. 1: sort
// the mix keys per call and accumulate via ClassOf. The precomputed-table
// Predict must match it bit for bit.
func legacyPredict(m *Model, mix map[topology.NodeID]float64, classRates map[int]units.Bandwidth) (units.Bandwidth, error) {
	var bw float64
	nodes := make([]topology.NodeID, 0, len(mix))
	for n := range mix {
		nodes = append(nodes, n)
	}
	sort.Slice(nodes, func(i, j int) bool { return nodes[i] < nodes[j] })
	for _, n := range nodes {
		cls, err := m.ClassOf(n)
		if err != nil {
			return 0, err
		}
		rate := cls.Avg
		if classRates != nil {
			r, ok := classRates[cls.Rank]
			if !ok {
				return 0, fmt.Errorf("core: no measured rate for class %d", cls.Rank)
			}
			rate = r
		}
		bw += mix[n] * float64(rate)
	}
	return units.Bandwidth(bw), nil
}

// TestPredictTableMatchesLegacy pins the table-driven Predict to the
// historical sorted-keys accumulation, bit for bit, across mixes of every
// size and with and without a measured class-rate table.
func TestPredictTableMatchesLegacy(t *testing.T) {
	m := characterize(t, ModeWrite)
	rates := map[int]units.Bandwidth{}
	for _, c := range m.Classes {
		rates[c.Rank] = c.Avg * 9 / 10
	}

	var nodes []topology.NodeID
	for _, s := range m.Samples {
		nodes = append(nodes, s.Node)
	}
	sort.Slice(nodes, func(i, j int) bool { return nodes[i] < nodes[j] })

	mixes := []map[topology.NodeID]float64{
		{nodes[0]: 1},
		{nodes[0]: 0.5, nodes[len(nodes)-1]: 0.5},
		{nodes[0]: 0.125, nodes[1]: 0.375, nodes[len(nodes)-1]: 0.5},
	}
	full := make(map[topology.NodeID]float64, len(nodes))
	for _, n := range nodes {
		full[n] = 1 / float64(len(nodes))
	}
	mixes = append(mixes, full)

	for i, mix := range mixes {
		for _, cr := range []map[int]units.Bandwidth{nil, rates} {
			want, err := legacyPredict(m, mix, cr)
			if err != nil {
				t.Fatal(err)
			}
			got, err := m.Predict(mix, cr)
			if err != nil {
				t.Fatal(err)
			}
			if math.Float64bits(float64(got)) != math.Float64bits(float64(want)) {
				t.Errorf("mix %d (rates=%v): Predict = %v, legacy = %v", i, cr != nil, got, want)
			}
		}
	}
}

// TestPredictAllocFree: once the table exists, a hot Predict call performs
// no allocations — the serving-path contract.
func TestPredictAllocFree(t *testing.T) {
	m := characterize(t, ModeWrite)
	mix := map[topology.NodeID]float64{0: 0.5, 2: 0.5}
	if _, err := m.Predict(mix, nil); err != nil { // build the table
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		if _, err := m.Predict(mix, nil); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("hot Predict allocates %v times per call, want 0", allocs)
	}
}
