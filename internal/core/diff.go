package core

import (
	"fmt"
	"math"

	"numaio/internal/topology"
	"numaio/internal/units"
)

// NodeDiff compares one node across two models of the same target/mode.
type NodeDiff struct {
	Node         topology.NodeID
	Before       units.Bandwidth
	After        units.Bandwidth
	ClassBefore  int
	ClassAfter   int
	RelChange    float64 // (after-before)/before
	ClassChanged bool
}

// Diff compares two models node by node — the analysis behind the what-if
// workflow (re-characterize after a hardware change, see what moved).
// Both models must describe the same target, mode and node set.
func Diff(before, after *Model) ([]NodeDiff, error) {
	if before == nil || after == nil {
		return nil, fmt.Errorf("core: Diff needs two models")
	}
	if before.Target != after.Target {
		return nil, fmt.Errorf("core: Diff across targets (%d vs %d)",
			int(before.Target), int(after.Target))
	}
	if before.Mode != after.Mode {
		return nil, fmt.Errorf("core: Diff across modes (%v vs %v)", before.Mode, after.Mode)
	}
	if len(before.Samples) != len(after.Samples) {
		return nil, fmt.Errorf("core: Diff across node sets (%d vs %d samples)",
			len(before.Samples), len(after.Samples))
	}
	var out []NodeDiff
	for _, s := range before.Samples {
		afterBW, err := after.SampleOf(s.Node)
		if err != nil {
			return nil, err
		}
		cb, err := before.ClassOf(s.Node)
		if err != nil {
			return nil, err
		}
		ca, err := after.ClassOf(s.Node)
		if err != nil {
			return nil, err
		}
		d := NodeDiff{
			Node: s.Node, Before: s.Bandwidth, After: afterBW,
			ClassBefore: cb.Rank, ClassAfter: ca.Rank,
			ClassChanged: cb.Rank != ca.Rank,
		}
		if s.Bandwidth > 0 {
			d.RelChange = float64(afterBW-s.Bandwidth) / float64(s.Bandwidth)
		} else {
			d.RelChange = math.Inf(1)
		}
		out = append(out, d)
	}
	return out, nil
}

// ChangedNodes filters a diff to the nodes whose class moved.
func ChangedNodes(diffs []NodeDiff) []topology.NodeID {
	var out []topology.NodeID
	for _, d := range diffs {
		if d.ClassChanged {
			out = append(out, d.Node)
		}
	}
	return out
}
