package core_test

import (
	"fmt"
	"log"

	"numaio/internal/core"
	"numaio/internal/numa"
	"numaio/internal/topology"
	"numaio/internal/units"
)

// ExampleCharacterizer_Characterize runs Algorithm 1 against the calibrated
// testbed and prints the resulting device-write classes — the Tables IV/V
// workflow in a dozen lines.
func ExampleCharacterizer_Characterize() {
	sys, err := numa.NewSystem(topology.DL585G7())
	if err != nil {
		log.Fatal(err)
	}
	c, err := core.NewCharacterizer(sys, core.Config{Sigma: -1, Repeats: 1, BytesPerThread: units.GiB})
	if err != nil {
		log.Fatal(err)
	}
	model, err := c.Characterize(7, core.ModeWrite)
	if err != nil {
		log.Fatal(err)
	}
	for _, cls := range model.Classes {
		fmt.Printf("class %d: %v\n", cls.Rank, cls.Nodes)
	}
	// Output:
	// class 1: [6 7]
	// class 2: [0 1 4 5]
	// class 3: [2 3]
}

// ExampleModel_Predict estimates a multi-user aggregate with Eq. 1 from the
// model's own class averages.
func ExampleModel_Predict() {
	sys, err := numa.NewSystem(topology.DL585G7())
	if err != nil {
		log.Fatal(err)
	}
	c, err := core.NewCharacterizer(sys, core.Config{Sigma: -1, Repeats: 1, BytesPerThread: units.GiB})
	if err != nil {
		log.Fatal(err)
	}
	model, err := c.Characterize(7, core.ModeRead)
	if err != nil {
		log.Fatal(err)
	}
	bw, err := model.Predict(map[topology.NodeID]float64{2: 0.5, 0: 0.5}, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%.0f Gb/s\n", bw.Gbps())
	// Output:
	// 45 Gb/s
}
