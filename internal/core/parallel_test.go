package core

import (
	"bytes"
	"reflect"
	"testing"

	"numaio/internal/numa"
	"numaio/internal/topology"
)

// These tests pin the determinism contract of the parallel characterization
// engine: jitter is keyed by job name (mode, target, node, repeat), so no
// worker-pool schedule can change a measured value, and the assembled models
// must be byte-identical to the serial run.

func sysFor(t *testing.T, profile string) *numa.System {
	t.Helper()
	m, err := topology.ProfileByName(profile)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := numa.NewSystem(m)
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

func machineJSON(t *testing.T, mm *MachineModel) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := mm.SaveJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestCharacterizeParallelBitIdentical: one (target, mode) sweep on the
// 8-node reference machine at increasing parallelism, all equal to serial.
func TestCharacterizeParallelBitIdentical(t *testing.T) {
	sys := sysFor(t, "dl585g7")
	serial, err := NewCharacterizer(sys, Config{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	want, err := serial.Characterize(7, ModeWrite)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []int{2, 4, 8, 64} {
		c, err := NewCharacterizer(sys, Config{Parallelism: p})
		if err != nil {
			t.Fatal(err)
		}
		got, err := c.Characterize(7, ModeWrite)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("parallelism %d: model differs from serial", p)
		}
	}
}

// TestCharacterizeAllParallelBitIdentical: whole-host sweeps across every
// target and mode on the Magny-Cours and full-mesh machines serialize to
// the exact same bytes at any parallelism.
func TestCharacterizeAllParallelBitIdentical(t *testing.T) {
	for _, profile := range []string{"magny-a", "intel-4s4n"} {
		t.Run(profile, func(t *testing.T) {
			sys := sysFor(t, profile)
			serial, err := NewCharacterizer(sys, Config{Repeats: 3})
			if err != nil {
				t.Fatal(err)
			}
			base, err := serial.CharacterizeAll()
			if err != nil {
				t.Fatal(err)
			}
			want := machineJSON(t, base)
			for _, p := range []int{4, 16} {
				c, err := NewCharacterizer(sys, Config{Repeats: 3, Parallelism: p})
				if err != nil {
					t.Fatal(err)
				}
				mm, err := c.CharacterizeAll()
				if err != nil {
					t.Fatal(err)
				}
				if got := machineJSON(t, mm); !bytes.Equal(got, want) {
					t.Errorf("parallelism %d: machine model JSON differs from serial", p)
				}
			}
		})
	}
}

// TestParallelismValidation: negative parallelism is rejected; large values
// are clamped to the cell count rather than erroring.
func TestParallelismValidation(t *testing.T) {
	sys := sysFor(t, "dl585g7")
	if _, err := NewCharacterizer(sys, Config{Parallelism: -1}); err == nil {
		t.Error("negative parallelism accepted")
	}
	c, err := NewCharacterizer(sys, Config{Parallelism: 1000})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Characterize(0, ModeRead); err != nil {
		t.Errorf("oversized parallelism: %v", err)
	}
}
