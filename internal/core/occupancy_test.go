package core

import (
	"testing"
	"time"

	"numaio/internal/faults"
)

// TestUntracedOccupancyGauge guards against the regression where the
// busy-worker gauge was only maintained for traced sweeps: an untraced
// characterization must still drive ActiveMeasureWorkers (the
// numaiod_measure_workers_busy gauge) above zero while cells execute,
// and back to zero once the sweep completes. Some cells are made to hang
// (and time out) under a fault plan so a worker reliably sits inside a
// counted cell long enough for the poller to observe it even on a
// single-CPU host.
func TestUntracedOccupancyGauge(t *testing.T) {
	cfg := Config{
		Sigma:       -1,
		Repeats:     4,
		Parallelism: 2,
		Faults: &faults.Plan{
			Name:        "occupancy",
			Seed:        1,
			Measurement: faults.MeasurementFault{HangRate: 0.3},
		},
		MeasureTimeout: 50 * time.Millisecond,
		MaxRetries:     30,
	}
	c, err := NewCharacterizer(sysFor(t, "dl585g7"), cfg)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		_, err := c.Characterize(0, ModeWrite)
		done <- err
	}()

	sawBusy := false
	deadline := time.After(60 * time.Second)
poll:
	for {
		if ActiveMeasureWorkers() > 0 {
			sawBusy = true
		}
		select {
		case err := <-done:
			if err != nil {
				t.Fatalf("characterize: %v", err)
			}
			break poll
		case <-deadline:
			t.Fatal("characterization did not finish")
		case <-time.After(time.Millisecond):
		}
	}
	if !sawBusy {
		t.Error("ActiveMeasureWorkers never went above 0 during an untraced sweep")
	}
	if got := ActiveMeasureWorkers(); got != 0 {
		t.Errorf("ActiveMeasureWorkers = %d after the sweep, want 0", got)
	}
}
