package core

import (
	"encoding/json"
	"fmt"
	"io"
)

// SaveJSON writes the model as indented JSON — the on-disk format the
// iomodel tool produces for schedulers to load.
func (m *Model) SaveJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(m); err != nil {
		return fmt.Errorf("core: encoding model: %w", err)
	}
	return nil
}

// LoadJSON reads a model written by SaveJSON and validates its structure.
func LoadJSON(r io.Reader) (*Model, error) {
	var m Model
	dec := json.NewDecoder(r)
	if err := dec.Decode(&m); err != nil {
		return nil, fmt.Errorf("core: decoding model: %w", err)
	}
	if err := m.validate(); err != nil {
		return nil, err
	}
	return &m, nil
}

// Validate checks the structural invariants of a model — every sampled
// node classified exactly once, positive bandwidths, consistent class
// stats. Deserializers call it automatically; services accepting models
// over the wire should call it on anything user-supplied.
func (m *Model) Validate() error { return m.validate() }

// validate checks structural invariants of a deserialized model.
func (m *Model) validate() error {
	if len(m.Samples) == 0 {
		return fmt.Errorf("core: model has no samples")
	}
	if len(m.Classes) == 0 {
		return fmt.Errorf("core: model has no classes")
	}
	seen := make(map[int]bool)
	classified := make(map[int]bool)
	for _, s := range m.Samples {
		if seen[int(s.Node)] {
			return fmt.Errorf("core: duplicate sample for node %d", int(s.Node))
		}
		seen[int(s.Node)] = true
		if s.Bandwidth <= 0 {
			return fmt.Errorf("core: nonpositive bandwidth for node %d", int(s.Node))
		}
	}
	for i, c := range m.Classes {
		if c.Rank != i+1 {
			return fmt.Errorf("core: class %d has rank %d", i, c.Rank)
		}
		if len(c.Nodes) == 0 {
			return fmt.Errorf("core: class %d is empty", c.Rank)
		}
		if c.Min > c.Max || c.Avg < c.Min || c.Avg > c.Max {
			return fmt.Errorf("core: class %d has inconsistent stats", c.Rank)
		}
		for _, n := range c.Nodes {
			if !seen[int(n)] {
				return fmt.Errorf("core: class %d contains unsampled node %d", c.Rank, int(n))
			}
			if classified[int(n)] {
				return fmt.Errorf("core: node %d in multiple classes", int(n))
			}
			classified[int(n)] = true
		}
	}
	for n := range seen {
		if !classified[n] {
			return fmt.Errorf("core: node %d unclassified", n)
		}
	}
	return nil
}

// LoadModelsJSON reads a stream of concatenated models (the format
// `iomodel -mode both -o file` writes) and validates each.
func LoadModelsJSON(r io.Reader) ([]*Model, error) {
	dec := json.NewDecoder(r)
	var out []*Model
	for dec.More() {
		var m Model
		if err := dec.Decode(&m); err != nil {
			return nil, fmt.Errorf("core: decoding model %d: %w", len(out), err)
		}
		if err := m.validate(); err != nil {
			return nil, fmt.Errorf("core: model %d: %w", len(out), err)
		}
		out = append(out, &m)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("core: no models in stream")
	}
	return out, nil
}
