// Package netpair models the paper's full network testbed (Fig. 2): two
// identical NUMA hosts whose 40 GbE adapters are cabled back to back. An
// end-to-end TCP transfer is limited by whichever side is weaker — the
// sender's path to its NIC, the wire, or the receiver's path from its NIC —
// so NUMA misconfiguration on either host caps the whole connection, the
// effect the 40 GbE study cited by the paper ([3]) reports as a 30% loss.
package netpair

import (
	"fmt"

	"numaio/internal/device"
	"numaio/internal/fio"
	"numaio/internal/numa"
	"numaio/internal/topology"
	"numaio/internal/units"
)

// WireBandwidth is the usable rate of the 40 GbE link after 8b/10b
// encoding; it matches the PCIe Gen2 x8 data rate, so the wire itself never
// constrains a single adapter.
const WireBandwidth = 32 * units.Gbps

// Pair is two identical hosts connected NIC to NIC.
type Pair struct {
	Sender, Receiver *numa.System
}

// New boots a pair of identical machines. The builder is called twice so
// each host gets an independent simulated instance.
func New(build func() *topology.Machine) (*Pair, error) {
	a, err := numa.NewSystem(build())
	if err != nil {
		return nil, fmt.Errorf("netpair: sender: %w", err)
	}
	b, err := numa.NewSystem(build())
	if err != nil {
		return nil, fmt.Errorf("netpair: receiver: %w", err)
	}
	return &Pair{Sender: a, Receiver: b}, nil
}

// TransferResult reports one end-to-end measurement.
type TransferResult struct {
	SendSide  units.Bandwidth // sender host's achievable TCP send rate
	RecvSide  units.Bandwidth // receiver host's achievable TCP receive rate
	Wire      units.Bandwidth
	EndToEnd  units.Bandwidth // min of the three
	Bottlneck string          // "send", "receive" or "wire"
}

// Transfer measures an end-to-end TCP transfer with the given process
// bindings on each side and the given number of parallel streams.
func (p *Pair) Transfer(sendNode, recvNode topology.NodeID, streams int, size units.Size) (*TransferResult, error) {
	if streams <= 0 {
		return nil, fmt.Errorf("netpair: streams must be positive")
	}
	if size <= 0 {
		size = 4 * units.GiB
	}
	sendRunner := fio.NewRunner(p.Sender)
	sendRunner.Sigma = 0
	sendRep, err := sendRunner.Run([]fio.Job{{
		Name: "send", Engine: device.EngineTCPSend, Node: sendNode,
		NumJobs: streams, Size: size,
	}})
	if err != nil {
		return nil, fmt.Errorf("netpair: send side: %w", err)
	}
	recvRunner := fio.NewRunner(p.Receiver)
	recvRunner.Sigma = 0
	recvRep, err := recvRunner.Run([]fio.Job{{
		Name: "recv", Engine: device.EngineTCPRecv, Node: recvNode,
		NumJobs: streams, Size: size,
	}})
	if err != nil {
		return nil, fmt.Errorf("netpair: receive side: %w", err)
	}

	out := &TransferResult{
		SendSide: sendRep.Aggregate,
		RecvSide: recvRep.Aggregate,
		Wire:     WireBandwidth,
	}
	out.EndToEnd, out.Bottlneck = out.SendSide, "send"
	if out.RecvSide < out.EndToEnd {
		out.EndToEnd, out.Bottlneck = out.RecvSide, "receive"
	}
	if out.Wire < out.EndToEnd {
		out.EndToEnd, out.Bottlneck = out.Wire, "wire"
	}
	return out, nil
}

// Matrix measures the end-to-end rate for every (sender binding, receiver
// binding) pair — the exhaustive two-host characterization whose cost the
// paper's class model cuts down.
func (p *Pair) Matrix(streams int, size units.Size) (nodes []topology.NodeID, bw [][]units.Bandwidth, err error) {
	nodes = p.Sender.Machine().NodeIDs()
	for _, sn := range nodes {
		var row []units.Bandwidth
		for _, rn := range nodes {
			res, err := p.Transfer(sn, rn, streams, size)
			if err != nil {
				return nil, nil, err
			}
			row = append(row, res.EndToEnd)
		}
		bw = append(bw, row)
	}
	return nodes, bw, nil
}

// WorstPenalty returns the relative end-to-end loss between the best and
// worst bindings of a matrix — comparable to the ~30% misplacement penalty
// reported for 40 GbE in [3].
func WorstPenalty(bw [][]units.Bandwidth) float64 {
	var best, worst units.Bandwidth
	first := true
	for _, row := range bw {
		for _, v := range row {
			if first || v > best {
				best = v
			}
			if first || v < worst {
				worst = v
			}
			first = false
		}
	}
	if best <= 0 {
		return 0
	}
	return 1 - float64(worst)/float64(best)
}
