package netpair

import (
	"math"
	"testing"

	"numaio/internal/topology"
	"numaio/internal/units"
)

func newPair(t *testing.T) *Pair {
	t.Helper()
	p, err := New(topology.DL585G7)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestTransferBestBindings(t *testing.T) {
	p := newPair(t)
	res, err := p.Transfer(6, 6, 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Both sides near their ceilings; wire never the bottleneck.
	if res.EndToEnd.Gbps() < 19.5 || res.EndToEnd.Gbps() > 22 {
		t.Errorf("end-to-end = %.2f, want ~20-21", res.EndToEnd.Gbps())
	}
	if res.Bottlneck == "wire" {
		t.Error("the wire should never constrain a single adapter")
	}
	if res.Wire != WireBandwidth {
		t.Error("wire bandwidth mislabeled")
	}
}

// Misbinding either side caps the whole connection.
func TestWeakerSideDominates(t *testing.T) {
	p := newPair(t)
	good, err := p.Transfer(6, 6, 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	badSender, err := p.Transfer(2, 6, 4, 0) // class-3 send binding
	if err != nil {
		t.Fatal(err)
	}
	badReceiver, err := p.Transfer(6, 4, 4, 0) // class-4 receive binding
	if err != nil {
		t.Fatal(err)
	}
	if !(badSender.EndToEnd < good.EndToEnd*0.9) {
		t.Errorf("bad sender binding should cap the connection: %.2f vs %.2f",
			badSender.EndToEnd.Gbps(), good.EndToEnd.Gbps())
	}
	if badSender.Bottlneck != "send" {
		t.Errorf("bottleneck = %q, want send", badSender.Bottlneck)
	}
	if !(badReceiver.EndToEnd < good.EndToEnd*0.9) {
		t.Errorf("bad receiver binding should cap the connection: %.2f vs %.2f",
			badReceiver.EndToEnd.Gbps(), good.EndToEnd.Gbps())
	}
	if badReceiver.Bottlneck != "receive" {
		t.Errorf("bottleneck = %q, want receive", badReceiver.Bottlneck)
	}
}

func TestTransferValidation(t *testing.T) {
	p := newPair(t)
	if _, err := p.Transfer(6, 6, 0, 0); err == nil {
		t.Error("zero streams should fail")
	}
	if _, err := p.Transfer(42, 6, 2, 0); err == nil {
		t.Error("unknown sender node should fail")
	}
	if _, err := p.Transfer(6, 42, 2, 0); err == nil {
		t.Error("unknown receiver node should fail")
	}
}

// The full matrix reproduces the ~30% misplacement penalty reported for
// 40 GbE NUMA hosts ([3] in the paper).
func TestMatrixPenalty(t *testing.T) {
	p := newPair(t)
	nodes, bw, err := p.Matrix(4, 2*units.GiB)
	if err != nil {
		t.Fatal(err)
	}
	if len(nodes) != 8 || len(bw) != 8 || len(bw[0]) != 8 {
		t.Fatalf("matrix shape wrong")
	}
	penalty := WorstPenalty(bw)
	if penalty < 0.20 || penalty > 0.45 {
		t.Errorf("worst-case misplacement penalty = %.0f%%, want ~30%%", penalty*100)
	}
	// The best cell uses neither the class-3 send bindings nor the class-4
	// receive binding.
	var bi, bj int
	best := units.Bandwidth(0)
	for i := range bw {
		for j := range bw[i] {
			if bw[i][j] > best {
				best, bi, bj = bw[i][j], i, j
			}
		}
	}
	if nodes[bi] == 2 || nodes[bi] == 3 || nodes[bj] == 4 {
		t.Errorf("best cell uses a starved binding: send %d recv %d", nodes[bi], nodes[bj])
	}
}

func TestWorstPenaltyEdgeCases(t *testing.T) {
	if WorstPenalty(nil) != 0 {
		t.Error("empty matrix should have zero penalty")
	}
	uniform := [][]units.Bandwidth{{10 * units.Gbps, 10 * units.Gbps}}
	if p := WorstPenalty(uniform); math.Abs(p) > 1e-9 {
		t.Errorf("uniform matrix penalty = %v, want 0", p)
	}
}

func TestNewPropagatesErrors(t *testing.T) {
	if _, err := New(func() *topology.Machine { return topology.New("bad", nil) }); err == nil {
		t.Error("invalid machine should fail")
	}
}
