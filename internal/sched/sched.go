// Package sched applies the iomodel to I/O task placement (Sec. V-B and the
// paper's first future-work direction): given write/read performance models
// of the device's node, it spreads concurrent I/O tasks across the nodes of
// performance-equivalent classes instead of piling them onto the local
// node, avoiding the contention the paper warns about (interrupt handling,
// core saturation, memory-controller pressure).
//
// Baseline policies (local-only, hop-distance-greedy, blind round-robin)
// are provided for the comparison experiments.
package sched

import (
	"fmt"
	"sort"

	"numaio/internal/core"
	"numaio/internal/device"
	"numaio/internal/fio"
	"numaio/internal/numa"
	"numaio/internal/topology"
	"numaio/internal/units"
)

// Policy selects a placement strategy.
type Policy int

// Policies.
const (
	// LocalOnly binds every task to the device's node — the naive
	// "maximize locality" strategy.
	LocalOnly Policy = iota
	// HopDistance fills nodes nearest to the device first (the metric the
	// paper shows is unreliable).
	HopDistance
	// RoundRobin spreads tasks over all nodes blindly.
	RoundRobin
	// ClassBalanced spreads tasks over the nodes of the model's
	// top equivalent classes — the paper's recommendation.
	ClassBalanced
)

func (p Policy) String() string {
	switch p {
	case LocalOnly:
		return "local-only"
	case HopDistance:
		return "hop-distance"
	case RoundRobin:
		return "round-robin"
	case ClassBalanced:
		return "class-balanced"
	default:
		return fmt.Sprintf("Policy(%d)", int(p))
	}
}

// Scheduler places I/O tasks using the characterized models.
type Scheduler struct {
	sys        *numa.System
	writeModel *core.Model
	readModel  *core.Model
	// Tolerance is the relative rate difference within which classes count
	// as equivalent for spreading; default 0.10.
	Tolerance float64
}

// New builds a scheduler from the two directional models of one target
// node. Both models must describe the same target.
func New(sys *numa.System, write, read *core.Model) (*Scheduler, error) {
	if write == nil || read == nil {
		return nil, fmt.Errorf("sched: both models are required")
	}
	if write.Target != read.Target {
		return nil, fmt.Errorf("sched: models describe different targets (%d vs %d)",
			int(write.Target), int(read.Target))
	}
	if write.Mode != core.ModeWrite || read.Mode != core.ModeRead {
		return nil, fmt.Errorf("sched: model modes are swapped")
	}
	return &Scheduler{sys: sys, writeModel: write, readModel: read, Tolerance: 0.10}, nil
}

// FromMachineModel builds a scheduler for one target from a whole-host
// characterization — the request-scoped entry point a model-serving daemon
// uses: the MachineModel comes out of a cache, no re-characterization runs.
func FromMachineModel(sys *numa.System, mm *core.MachineModel, target topology.NodeID) (*Scheduler, error) {
	if mm == nil {
		return nil, fmt.Errorf("sched: nil machine model")
	}
	write, err := mm.ModelFor(target, core.ModeWrite)
	if err != nil {
		return nil, err
	}
	read, err := mm.ModelFor(target, core.ModeRead)
	if err != nil {
		return nil, err
	}
	return New(sys, write, read)
}

// ParsePolicy maps the wire/CLI spelling of a policy back to its value.
func ParsePolicy(s string) (Policy, error) {
	for _, p := range []Policy{LocalOnly, HopDistance, RoundRobin, ClassBalanced} {
		if s == p.String() {
			return p, nil
		}
	}
	return 0, fmt.Errorf("sched: unknown policy %q (want local-only, hop-distance, round-robin, or class-balanced)", s)
}

// Target returns the device node the models describe.
func (s *Scheduler) Target() topology.NodeID { return s.writeModel.Target }

// ModelFor returns the directional model an engine's traffic follows.
func (s *Scheduler) ModelFor(engine string) (*core.Model, error) {
	if engine == device.EngineMemcpy {
		return s.writeModel, nil
	}
	spec, err := device.SpecFor(engine)
	if err != nil {
		return nil, err
	}
	if spec.Direction == device.ToDevice {
		return s.writeModel, nil
	}
	return s.readModel, nil
}

// classRate estimates the single-class I/O rate of a model class for the
// engine: the engine's ClassRate at the class's representative node, or the
// model's own memcpy average for the memcpy engine.
func (s *Scheduler) classRate(engine string, cls core.Class) (units.Bandwidth, error) {
	if engine == device.EngineMemcpy {
		return cls.Avg, nil
	}
	spec, err := device.SpecFor(engine)
	if err != nil {
		return 0, err
	}
	devs := spec.DevicesOfKind(s.sys.Machine())
	if len(devs) == 0 {
		return 0, fmt.Errorf("sched: no %v device", spec.Kind)
	}
	if len(cls.Nodes) == 0 {
		return 0, fmt.Errorf("sched: empty class %d", cls.Rank)
	}
	return spec.ClassRate(s.sys.Machine(), devs[0].ID, cls.Nodes[0])
}

// EligibleNodes returns the nodes of all classes whose engine-level rate is
// within Tolerance of the best class — the interchangeable set of Sec. V-B.
func (s *Scheduler) EligibleNodes(engine string) ([]topology.NodeID, error) {
	model, err := s.ModelFor(engine)
	if err != nil {
		return nil, err
	}
	best := units.Bandwidth(0)
	rates := make(map[int]units.Bandwidth)
	for _, cls := range model.Classes {
		r, err := s.classRate(engine, cls)
		if err != nil {
			return nil, err
		}
		rates[cls.Rank] = r
		if r > best {
			best = r
		}
	}
	var nodes []topology.NodeID
	for _, cls := range model.Classes {
		if float64(rates[cls.Rank]) >= (1-s.Tolerance)*float64(best) {
			nodes = append(nodes, cls.Nodes...)
		}
	}
	sort.Slice(nodes, func(i, j int) bool { return nodes[i] < nodes[j] })
	if len(nodes) == 0 {
		return nil, fmt.Errorf("sched: no eligible nodes for %s", engine)
	}
	return nodes, nil
}

// Place assigns count tasks to nodes under the given policy.
func (s *Scheduler) Place(engine string, count int, policy Policy) ([]topology.NodeID, error) {
	if count <= 0 {
		return nil, fmt.Errorf("sched: task count must be positive")
	}
	m := s.sys.Machine()
	switch policy {
	case LocalOnly:
		out := make([]topology.NodeID, count)
		for i := range out {
			out[i] = s.Target()
		}
		return out, nil

	case RoundRobin:
		ids := m.NodeIDs()
		out := make([]topology.NodeID, count)
		for i := range out {
			out[i] = ids[i%len(ids)]
		}
		return out, nil

	case HopDistance:
		type hopNode struct {
			n    topology.NodeID
			hops int
		}
		var order []hopNode
		for _, n := range m.NodeIDs() {
			h, err := m.HopDistance(s.Target(), n)
			if err != nil {
				return nil, err
			}
			order = append(order, hopNode{n, h})
		}
		sort.Slice(order, func(i, j int) bool {
			if order[i].hops != order[j].hops {
				return order[i].hops < order[j].hops
			}
			return order[i].n < order[j].n
		})
		// Fill nearest nodes up to their core count first.
		var out []topology.NodeID
		for _, hn := range order {
			cores := m.MustNode(hn.n).Cores
			for c := 0; c < cores && len(out) < count; c++ {
				out = append(out, hn.n)
			}
			if len(out) == count {
				return out, nil
			}
		}
		// Overflow: wrap around.
		for len(out) < count {
			out = append(out, order[len(out)%len(order)].n)
		}
		return out, nil

	case ClassBalanced:
		nodes, err := s.EligibleNodes(engine)
		if err != nil {
			return nil, err
		}
		out := make([]topology.NodeID, count)
		for i := range out {
			out[i] = nodes[i%len(nodes)]
		}
		return out, nil

	default:
		return nil, fmt.Errorf("sched: unknown policy %v", policy)
	}
}

// Evaluate runs the engine with the given placement (one fio process per
// task) and reports the measured bandwidths.
func (s *Scheduler) Evaluate(engine string, placement []topology.NodeID, sizePerTask units.Size) (*fio.Report, error) {
	if len(placement) == 0 {
		return nil, fmt.Errorf("sched: empty placement")
	}
	if sizePerTask <= 0 {
		sizePerTask = 4 * units.GiB
	}
	counts := make(map[topology.NodeID]int)
	for _, n := range placement {
		counts[n]++
	}
	nodes := make([]topology.NodeID, 0, len(counts))
	for n := range counts {
		nodes = append(nodes, n)
	}
	sort.Slice(nodes, func(i, j int) bool { return nodes[i] < nodes[j] })

	target := s.Target()
	var jobs []fio.Job
	for _, n := range nodes {
		j := fio.Job{
			Name:    fmt.Sprintf("%s-n%d", engine, int(n)),
			Engine:  engine,
			Node:    n,
			NumJobs: counts[n],
			Size:    sizePerTask,
		}
		if engine == device.EngineMemcpy {
			src := n
			j.SrcNode, j.DstNode = &src, &target
		}
		jobs = append(jobs, j)
	}
	runner := fio.NewRunner(s.sys)
	runner.Sigma = 0
	return runner.Run(jobs)
}

// Comparison is the outcome of comparing policies for one task count.
type Comparison struct {
	Engine    string
	Tasks     int
	Aggregate map[Policy]units.Bandwidth
}

// Compare places and evaluates the same workload under every policy.
func (s *Scheduler) Compare(engine string, count int, sizePerTask units.Size) (*Comparison, error) {
	out := &Comparison{Engine: engine, Tasks: count, Aggregate: make(map[Policy]units.Bandwidth)}
	for _, p := range []Policy{LocalOnly, HopDistance, RoundRobin, ClassBalanced} {
		placement, err := s.Place(engine, count, p)
		if err != nil {
			return nil, err
		}
		rep, err := s.Evaluate(engine, placement, sizePerTask)
		if err != nil {
			return nil, err
		}
		out.Aggregate[p] = rep.Aggregate
	}
	return out, nil
}
