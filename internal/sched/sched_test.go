package sched

import (
	"reflect"
	"sort"
	"testing"

	"numaio/internal/core"
	"numaio/internal/device"
	"numaio/internal/numa"
	"numaio/internal/topology"
	"numaio/internal/units"
)

func newScheduler(t *testing.T) (*numa.System, *Scheduler) {
	t.Helper()
	sys, err := numa.NewSystem(topology.DL585G7())
	if err != nil {
		t.Fatal(err)
	}
	c, err := core.NewCharacterizer(sys, core.Config{Sigma: -1, Repeats: 1, BytesPerThread: units.GiB})
	if err != nil {
		t.Fatal(err)
	}
	write, err := c.Characterize(7, core.ModeWrite)
	if err != nil {
		t.Fatal(err)
	}
	read, err := c.Characterize(7, core.ModeRead)
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(sys, write, read)
	if err != nil {
		t.Fatal(err)
	}
	return sys, s
}

func TestNewValidation(t *testing.T) {
	sys, s := newScheduler(t)
	if _, err := New(sys, nil, nil); err == nil {
		t.Error("nil models should fail")
	}
	if _, err := New(sys, s.writeModel, s.writeModel); err == nil {
		t.Error("swapped modes should fail")
	}
	other := *s.readModel
	other.Target = 3
	if _, err := New(sys, s.writeModel, &other); err == nil {
		t.Error("different targets should fail")
	}
	if s.Target() != 7 {
		t.Errorf("target = %d", s.Target())
	}
}

func TestModelFor(t *testing.T) {
	_, s := newScheduler(t)
	m, err := s.ModelFor(device.EngineRDMAWrite)
	if err != nil || m.Mode != core.ModeWrite {
		t.Errorf("rdma_write -> %v, %v", m.Mode, err)
	}
	m, err = s.ModelFor(device.EngineTCPRecv)
	if err != nil || m.Mode != core.ModeRead {
		t.Errorf("tcp_recv -> %v, %v", m.Mode, err)
	}
	m, err = s.ModelFor(device.EngineMemcpy)
	if err != nil || m.Mode != core.ModeWrite {
		t.Errorf("memcpy -> %v, %v", m.Mode, err)
	}
	if _, err := s.ModelFor("warp"); err == nil {
		t.Error("unknown engine should fail")
	}
}

// Sec. V-B: for RDMA_WRITE, classes 1 and 2 have near-identical I/O rates,
// so the eligible set spans both: {0,1,4,5,6,7}.
func TestEligibleNodesRDMAWrite(t *testing.T) {
	_, s := newScheduler(t)
	nodes, err := s.EligibleNodes(device.EngineRDMAWrite)
	if err != nil {
		t.Fatal(err)
	}
	want := []topology.NodeID{0, 1, 4, 5, 6, 7}
	if !reflect.DeepEqual(nodes, want) {
		t.Errorf("eligible = %v, want %v", nodes, want)
	}
}

// For raw memcpy staging, only class 1 is within 10% of the best.
func TestEligibleNodesMemcpy(t *testing.T) {
	_, s := newScheduler(t)
	nodes, err := s.EligibleNodes(device.EngineMemcpy)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(nodes, []topology.NodeID{6, 7}) {
		t.Errorf("eligible = %v, want [6 7]", nodes)
	}
	// A looser tolerance admits class 2 as well.
	s.Tolerance = 0.15
	nodes, err = s.EligibleNodes(device.EngineMemcpy)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(nodes, []topology.NodeID{0, 1, 4, 5, 6, 7}) {
		t.Errorf("eligible(0.15) = %v", nodes)
	}
}

func TestPlacePolicies(t *testing.T) {
	_, s := newScheduler(t)

	local, err := s.Place(device.EngineRDMAWrite, 3, LocalOnly)
	if err != nil || !reflect.DeepEqual(local, []topology.NodeID{7, 7, 7}) {
		t.Errorf("local = %v, %v", local, err)
	}

	rr, err := s.Place(device.EngineRDMAWrite, 10, RoundRobin)
	if err != nil {
		t.Fatal(err)
	}
	if rr[0] != 0 || rr[7] != 7 || rr[8] != 0 {
		t.Errorf("round robin = %v", rr)
	}

	hop, err := s.Place(device.EngineRDMAWrite, 6, HopDistance)
	if err != nil {
		t.Fatal(err)
	}
	// Device node first (4 cores), then the nearest 1-hop node.
	if !reflect.DeepEqual(hop[:4], []topology.NodeID{7, 7, 7, 7}) {
		t.Errorf("hop placement should fill node 7 first: %v", hop)
	}
	if hop[4] != 0 || hop[5] != 0 {
		t.Errorf("hop placement overflow = %v, want node 0 next", hop)
	}

	cb, err := s.Place(device.EngineRDMAWrite, 8, ClassBalanced)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[topology.NodeID]int{}
	for _, n := range cb {
		counts[n]++
	}
	for _, n := range []topology.NodeID{0, 1, 4, 5, 6, 7} {
		if counts[n] < 1 {
			t.Errorf("class-balanced left node %d empty: %v", n, cb)
		}
	}

	if _, err := s.Place(device.EngineRDMAWrite, 0, LocalOnly); err == nil {
		t.Error("zero count should fail")
	}
	if _, err := s.Place(device.EngineRDMAWrite, 1, Policy(42)); err == nil {
		t.Error("unknown policy should fail")
	}
	if _, err := s.Place("warp", 1, ClassBalanced); err == nil {
		t.Error("unknown engine should fail")
	}
}

func TestHopDistanceOverflowWraps(t *testing.T) {
	_, s := newScheduler(t)
	// 8 nodes * 4 cores = 32 slots; ask for more to hit the wrap path.
	p, err := s.Place(device.EngineRDMAWrite, 40, HopDistance)
	if err != nil {
		t.Fatal(err)
	}
	if len(p) != 40 {
		t.Fatalf("placement len = %d", len(p))
	}
}

// The paper's contention argument, staged with memcpy tasks: piling all
// staging copies onto node 7 serializes on its memory controller, while
// class-balanced spreading nearly doubles the aggregate.
func TestMemcpySpreadBeatsLocal(t *testing.T) {
	_, s := newScheduler(t)
	localPlace, err := s.Place(device.EngineMemcpy, 8, LocalOnly)
	if err != nil {
		t.Fatal(err)
	}
	localRep, err := s.Evaluate(device.EngineMemcpy, localPlace, units.GiB)
	if err != nil {
		t.Fatal(err)
	}
	s.Tolerance = 0.15
	cbPlace, err := s.Place(device.EngineMemcpy, 8, ClassBalanced)
	if err != nil {
		t.Fatal(err)
	}
	cbRep, err := s.Evaluate(device.EngineMemcpy, cbPlace, units.GiB)
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := localRep.Aggregate.Gbps(), cbRep.Aggregate.Gbps()
	if !(hi > 1.3*lo) {
		t.Errorf("class-balanced (%.1f) should beat local-only (%.1f) by >30%%", hi, lo)
	}
	if lo < 50 || lo > 56 {
		t.Errorf("local-only memcpy aggregate = %.1f, want ~53 (controller-bound)", lo)
	}
}

// For TCP send, spreading relieves node 7's interrupt-burdened cores.
func TestTCPSpreadBeatsLocal(t *testing.T) {
	_, s := newScheduler(t)
	cmp, err := s.Compare(device.EngineTCPSend, 8, units.GiB)
	if err != nil {
		t.Fatal(err)
	}
	local := cmp.Aggregate[LocalOnly].Gbps()
	cb := cmp.Aggregate[ClassBalanced].Gbps()
	if !(cb > local) {
		t.Errorf("class-balanced (%.2f) should beat local-only (%.2f)", cb, local)
	}
	// Round-robin also spreads but wastes slots on class-3 nodes; it must
	// not beat the model-driven placement.
	if rrBW := cmp.Aggregate[RoundRobin].Gbps(); rrBW > cb+0.01 {
		t.Errorf("round-robin (%.2f) should not beat class-balanced (%.2f)", rrBW, cb)
	}
}

func TestEvaluateValidation(t *testing.T) {
	_, s := newScheduler(t)
	if _, err := s.Evaluate(device.EngineTCPSend, nil, units.GiB); err == nil {
		t.Error("empty placement should fail")
	}
	// Default size kicks in for zero.
	rep, err := s.Evaluate(device.EngineRDMAWrite, []topology.NodeID{7}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Aggregate <= 0 {
		t.Error("evaluation produced no bandwidth")
	}
}

func TestRebalance(t *testing.T) {
	_, s := newScheduler(t)
	cur, err := s.Place(device.EngineRDMAWrite, 4, LocalOnly) // all on 7
	if err != nil {
		t.Fatal(err)
	}
	out, moves, err := s.Rebalance(device.EngineRDMAWrite, cur, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 6 {
		t.Fatalf("rebalanced placement len = %d", len(out))
	}
	// Result must match the class-balanced target multiset for 6 tasks.
	want, err := s.Place(device.EngineRDMAWrite, 6, ClassBalanced)
	if err != nil {
		t.Fatal(err)
	}
	a := append([]topology.NodeID(nil), out...)
	b := append([]topology.NodeID(nil), want...)
	sort.Slice(a, func(i, j int) bool { return a[i] < a[j] })
	sort.Slice(b, func(i, j int) bool { return b[i] < b[j] })
	if !reflect.DeepEqual(a, b) {
		t.Errorf("rebalanced multiset %v != target %v", a, b)
	}
	// One original task stays on node 7 (the target wants exactly one 7 in
	// its first 6 slots), so moves < len(cur).
	if len(moves) >= len(cur) {
		t.Errorf("too many migrations: %v", moves)
	}
	for _, mv := range moves {
		if mv.From != 7 {
			t.Errorf("move from %d, expected 7", mv.From)
		}
		if out[mv.Task] != mv.To {
			t.Errorf("move %v inconsistent with placement", mv)
		}
	}

	if _, _, err := s.Rebalance(device.EngineRDMAWrite, nil, 0); err == nil {
		t.Error("empty rebalance should fail")
	}
	if _, _, err := s.Rebalance(device.EngineRDMAWrite, cur, -1); err == nil {
		t.Error("negative add should fail")
	}
}

func TestRebalanceKeepsMatchingTasks(t *testing.T) {
	_, s := newScheduler(t)
	// Current placement already class-balanced: zero moves expected.
	cur, err := s.Place(device.EngineRDMAWrite, 6, ClassBalanced)
	if err != nil {
		t.Fatal(err)
	}
	out, moves, err := s.Rebalance(device.EngineRDMAWrite, cur, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(moves) != 0 {
		t.Errorf("expected no moves, got %v", moves)
	}
	if !reflect.DeepEqual(out, cur) {
		t.Errorf("placement changed without moves: %v vs %v", out, cur)
	}
}

func TestSweepAndCrossover(t *testing.T) {
	_, s := newScheduler(t)
	s.Tolerance = 0.15
	points, err := s.Sweep(device.EngineMemcpy, 4, units.GiB)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 4 {
		t.Fatalf("sweep points = %d", len(points))
	}
	// Local-only memcpy is pinned at the controller limit regardless of
	// task count; spreading grows with tasks.
	for i := 1; i < len(points); i++ {
		if points[i].ClassBalanced < points[i-1].ClassBalanced {
			t.Errorf("class-balanced should be nondecreasing: %+v", points)
		}
	}
	cross := Crossover(points)
	if cross == 0 || cross > 3 {
		t.Errorf("crossover = %d, want <= 3", cross)
	}
	if Crossover(nil) != 0 {
		t.Error("empty sweep should have no crossover")
	}
	if _, err := s.Sweep(device.EngineMemcpy, 0, units.GiB); err == nil {
		t.Error("zero maxTasks should fail")
	}
}

func TestPolicyStrings(t *testing.T) {
	for p, want := range map[Policy]string{
		LocalOnly: "local-only", HopDistance: "hop-distance",
		RoundRobin: "round-robin", ClassBalanced: "class-balanced",
	} {
		if p.String() != want {
			t.Errorf("%d = %q", int(p), p.String())
		}
	}
	if Policy(42).String() == "" {
		t.Error("fallback string")
	}
}

// The analytic estimator must track the full simulation within ~10% for
// device engines across placements and policies.
func TestEstimateTracksEvaluation(t *testing.T) {
	_, s := newScheduler(t)
	cases := []struct {
		engine string
		count  int
		policy Policy
	}{
		{device.EngineTCPSend, 8, LocalOnly},
		{device.EngineTCPSend, 8, ClassBalanced},
		{device.EngineTCPSend, 4, RoundRobin},
		{device.EngineRDMAWrite, 4, LocalOnly},
		{device.EngineRDMAWrite, 4, RoundRobin},
		{device.EngineRDMARead, 4, ClassBalanced},
		{device.EngineSSDWrite, 2, HopDistance},
	}
	for _, c := range cases {
		placement, err := s.Place(c.engine, c.count, c.policy)
		if err != nil {
			t.Fatal(err)
		}
		est, err := s.Estimate(c.engine, placement)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := s.Evaluate(c.engine, placement, units.GiB)
		if err != nil {
			t.Fatal(err)
		}
		measured := rep.Aggregate.Gbps()
		if rel := absf(est.Gbps()-measured) / measured; rel > 0.10 {
			t.Errorf("%s/%v: estimate %.2f vs measured %.2f (off %.0f%%)",
				c.engine, c.policy, est.Gbps(), measured, rel*100)
		}
	}
}

func absf(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

func TestEstimateMemcpy(t *testing.T) {
	_, s := newScheduler(t)
	s.Tolerance = 0.15
	for _, p := range []Policy{LocalOnly, ClassBalanced} {
		placement, err := s.Place(device.EngineMemcpy, 8, p)
		if err != nil {
			t.Fatal(err)
		}
		est, err := s.Estimate(device.EngineMemcpy, placement)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := s.Evaluate(device.EngineMemcpy, placement, units.GiB)
		if err != nil {
			t.Fatal(err)
		}
		measured := rep.Aggregate.Gbps()
		if rel := absf(est.Gbps()-measured) / measured; rel > 0.20 {
			t.Errorf("memcpy/%v: estimate %.2f vs measured %.2f (off %.0f%%)",
				p, est.Gbps(), measured, rel*100)
		}
	}
}

func TestEstimateErrors(t *testing.T) {
	_, s := newScheduler(t)
	if _, err := s.Estimate(device.EngineTCPSend, nil); err == nil {
		t.Error("empty placement should fail")
	}
	if _, err := s.Estimate("warp", []topology.NodeID{7}); err == nil {
		t.Error("unknown engine should fail")
	}
	if _, err := s.Estimate(device.EngineTCPSend, []topology.NodeID{42}); err == nil {
		t.Error("unknown node should fail")
	}
}

// BestPlacement must prefer spreading for host-bound TCP and never pick a
// policy whose estimate trails the winner.
func TestBestPlacement(t *testing.T) {
	_, s := newScheduler(t)
	adv, err := s.BestPlacement(device.EngineTCPSend, 8)
	if err != nil {
		t.Fatal(err)
	}
	if adv.Policy == LocalOnly {
		t.Errorf("local-only should not win for 8 TCP streams: %+v", adv.PerPolicy)
	}
	for p, est := range adv.PerPolicy {
		if est > adv.Estimate {
			t.Errorf("policy %v estimate %.2f exceeds winner %.2f", p, est.Gbps(), adv.Estimate.Gbps())
		}
	}
	if len(adv.Placement) != 8 {
		t.Errorf("placement = %v", adv.Placement)
	}
	if _, err := s.BestPlacement("warp", 4); err == nil {
		t.Error("unknown engine should fail")
	}
}

// After a link failure the re-characterized scheduler stops sending work to
// the degraded node — the closed loop of characterize → place → degrade →
// re-characterize → re-place.
func TestSchedulerAdaptsToDegradedLink(t *testing.T) {
	mutant := topology.DL585G7().Clone()
	if err := mutant.DegradeLinkBetween("node0", "node7", 0.3); err != nil {
		t.Fatal(err)
	}
	sys, err := numa.NewSystem(mutant)
	if err != nil {
		t.Fatal(err)
	}
	c, err := core.NewCharacterizer(sys, core.Config{Sigma: -1, Repeats: 1, BytesPerThread: units.GiB})
	if err != nil {
		t.Fatal(err)
	}
	write, err := c.Characterize(7, core.ModeWrite)
	if err != nil {
		t.Fatal(err)
	}
	read, err := c.Characterize(7, core.ModeRead)
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(sys, write, read)
	if err != nil {
		t.Fatal(err)
	}
	nodes, err := s.EligibleNodes(device.EngineRDMAWrite)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range nodes {
		if n == 0 {
			t.Errorf("degraded node 0 must not be eligible: %v", nodes)
		}
	}
	placement, err := s.Place(device.EngineRDMAWrite, 8, ClassBalanced)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range placement {
		if n == 0 {
			t.Errorf("placement uses degraded node 0: %v", placement)
		}
	}
}
