package sched

import (
	"fmt"

	"numaio/internal/device"
	"numaio/internal/fabric"
	"numaio/internal/topology"
	"numaio/internal/units"
)

// Estimate predicts the aggregate bandwidth of a placement from the model
// alone — no I/O (not even simulated I/O) is run. It generalizes Eq. 1 to
// heterogeneous placements: every task contributes its class rate to a
// small abstract allocation problem containing only the model-derived
// constraints (device engine time, per-node host processing, per-stream
// ceilings). This is the estimator a runtime scheduler would consult on a
// production host, where the only calibrated inputs are the memcpy model
// and one measured rate per class.
func (s *Scheduler) Estimate(engine string, placement []topology.NodeID) (units.Bandwidth, error) {
	if len(placement) == 0 {
		return 0, fmt.Errorf("sched: empty placement")
	}
	if engine == device.EngineMemcpy {
		return s.estimateMemcpy(placement)
	}
	spec, err := device.SpecFor(engine)
	if err != nil {
		return 0, err
	}
	model, err := s.ModelFor(engine)
	if err != nil {
		return 0, err
	}

	// One DMA-engine resource per device of the kind: fio stripes SSD
	// instances across both cards, and the estimate must account for the
	// doubled ceiling.
	m := s.sys.Machine()
	devs := spec.DevicesOfKind(m)
	if len(devs) == 0 {
		return 0, fmt.Errorf("sched: no %v device", spec.Kind)
	}
	solver := fabric.NewSolver()
	for _, d := range devs {
		if err := solver.SetResource(fabric.Resource{
			ID: fabric.DeviceResource(d.ID, spec.Name), Capacity: spec.Ceiling,
		}); err != nil {
			return 0, err
		}
	}
	for _, n := range m.Nodes {
		if spec.PerStreamHost <= 0 && n.ID != s.devNode(spec) {
			continue
		}
		if err := solver.SetResource(fabric.Resource{
			ID: fabric.CoreResource(n.ID),
			Capacity: units.Bandwidth(float64(n.Cores) *
				float64(device.TCPHostCostPerStream) * n.EffectiveCoreMultiplier()),
		}); err != nil {
			return 0, err
		}
	}

	devNode := s.devNode(spec)
	for i, n := range placement {
		cls, err := model.ClassOf(n)
		if err != nil {
			return 0, err
		}
		rate, err := s.classRate(engine, cls)
		if err != nil {
			return 0, err
		}
		if rate <= 0 {
			return 0, fmt.Errorf("sched: zero class rate for node %d", int(n))
		}
		dev := devs[i%len(devs)]
		flow := fabric.Flow{
			ID: fmt.Sprintf("t%d", i),
			Usages: []fabric.Usage{
				{Resource: fabric.DeviceResource(dev.ID, spec.Name),
					Weight: float64(spec.Ceiling) / float64(rate)},
			},
		}
		if spec.PerStreamHost > 0 {
			flow.Demand = spec.PerStreamHost
			flow.Usages = append(flow.Usages, fabric.Usage{
				Resource: fabric.CoreResource(n), Weight: 1,
			})
		}
		if spec.IRQWeight > 0 {
			flow.Usages = append(flow.Usages, fabric.Usage{
				Resource: fabric.CoreResource(devNode), Weight: spec.IRQWeight,
			})
		}
		if err := solver.AddFlow(flow); err != nil {
			return 0, err
		}
	}
	alloc, err := solver.Solve()
	if err != nil {
		return 0, err
	}
	return alloc.Aggregate(), nil
}

// devNode returns the node of the first device of the engine's kind (the
// testbed has all devices on one node).
func (s *Scheduler) devNode(spec device.Spec) topology.NodeID {
	devs := spec.DevicesOfKind(s.sys.Machine())
	if len(devs) == 0 {
		return s.Target()
	}
	return devs[0].Node
}

// estimateMemcpy predicts a staging placement from the write model: each
// task contributes its class average, and the target node's memory
// controller (charged twice for local copies) bounds the total.
func (s *Scheduler) estimateMemcpy(placement []topology.NodeID) (units.Bandwidth, error) {
	m := s.sys.Machine()
	target := s.Target()
	targetNode := m.MustNode(target)

	solver := fabric.NewSolver()
	if err := solver.SetResource(fabric.Resource{
		ID: fabric.MemResource(target), Capacity: targetNode.MemBandwidth,
	}); err != nil {
		return 0, err
	}
	// One abstract "path" resource per distinct source class, holding that
	// class's aggregate capacity (its average bandwidth): tasks of the same
	// class share their class's paths into the target.
	classCap := make(map[int]units.Bandwidth)
	for i, n := range placement {
		cls, err := s.writeModel.ClassOf(n)
		if err != nil {
			return 0, err
		}
		if _, ok := classCap[cls.Rank]; !ok {
			classCap[cls.Rank] = cls.Avg
			if err := solver.SetResource(fabric.Resource{
				ID:       fabric.ResourceID(fmt.Sprintf("class:%d", cls.Rank)),
				Capacity: cls.Avg,
			}); err != nil {
				return 0, err
			}
		}
		memWeight := 1.0
		if n == target {
			memWeight = 2.0 // local copy reads and writes the same controller
		}
		if err := solver.AddFlow(fabric.Flow{
			ID: fmt.Sprintf("t%d", i),
			Usages: []fabric.Usage{
				{Resource: fabric.ResourceID(fmt.Sprintf("class:%d", cls.Rank)), Weight: 1},
				{Resource: fabric.MemResource(target), Weight: memWeight},
			},
		}); err != nil {
			return 0, err
		}
	}
	alloc, err := solver.Solve()
	if err != nil {
		return 0, err
	}
	return alloc.Aggregate(), nil
}

// Advice is the outcome of BestPlacement.
type Advice struct {
	Policy    Policy
	Placement []topology.NodeID
	Estimate  units.Bandwidth
	// PerPolicy records the estimate of every candidate policy.
	PerPolicy map[Policy]units.Bandwidth
}

// BestPlacement evaluates all policies with the analytic estimator and
// returns the best (ties break toward the simpler policy, in declaration
// order: local-only < hop-distance < round-robin < class-balanced).
func (s *Scheduler) BestPlacement(engine string, count int) (*Advice, error) {
	adv := &Advice{PerPolicy: make(map[Policy]units.Bandwidth)}
	best := units.Bandwidth(-1)
	for _, p := range []Policy{LocalOnly, HopDistance, RoundRobin, ClassBalanced} {
		placement, err := s.Place(engine, count, p)
		if err != nil {
			return nil, err
		}
		est, err := s.Estimate(engine, placement)
		if err != nil {
			return nil, err
		}
		adv.PerPolicy[p] = est
		if est > best {
			best = est
			adv.Policy, adv.Placement, adv.Estimate = p, placement, est
		}
	}
	return adv, nil
}
