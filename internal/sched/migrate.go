package sched

import (
	"fmt"
	"sort"

	"numaio/internal/topology"
	"numaio/internal/units"
)

// This file implements the paper's first future-work item (Sec. VI):
// mechanisms for placing and migrating parallel I/O threads based on the
// characterization results.

// Move describes one task migration.
type Move struct {
	Task     int // index into the placement slice
	From, To topology.NodeID
}

// Rebalance extends a running placement by add new tasks and rebalances the
// whole set toward the class-balanced target distribution with the fewest
// possible migrations: existing tasks keep their node when the target
// distribution still wants one there.
func (s *Scheduler) Rebalance(engine string, current []topology.NodeID, add int) ([]topology.NodeID, []Move, error) {
	if add < 0 {
		return nil, nil, fmt.Errorf("sched: negative add count")
	}
	total := len(current) + add
	if total == 0 {
		return nil, nil, fmt.Errorf("sched: nothing to place")
	}
	target, err := s.Place(engine, total, ClassBalanced)
	if err != nil {
		return nil, nil, err
	}

	// Desired multiset of node slots.
	want := make(map[topology.NodeID]int)
	for _, n := range target {
		want[n]++
	}

	// Keep existing tasks in place where slots remain.
	out := make([]topology.NodeID, total)
	var moves []Move
	var displaced []int
	for i, n := range current {
		if want[n] > 0 {
			want[n]--
			out[i] = n
		} else {
			displaced = append(displaced, i)
		}
	}
	// Remaining slots, deterministic order.
	var slots []topology.NodeID
	nodes := make([]topology.NodeID, 0, len(want))
	for n := range want {
		nodes = append(nodes, n)
	}
	sort.Slice(nodes, func(i, j int) bool { return nodes[i] < nodes[j] })
	for _, n := range nodes {
		for k := 0; k < want[n]; k++ {
			slots = append(slots, n)
		}
	}
	si := 0
	for _, i := range displaced {
		out[i] = slots[si]
		moves = append(moves, Move{Task: i, From: current[i], To: slots[si]})
		si++
	}
	for i := len(current); i < total; i++ {
		out[i] = slots[si]
		si++
	}
	return out, moves, nil
}

// SweepPoint is one task count of a locality-versus-contention sweep.
type SweepPoint struct {
	Tasks         int
	LocalOnly     units.Bandwidth
	ClassBalanced units.Bandwidth
}

// Sweep evaluates local-only against class-balanced placement for task
// counts 1..maxTasks — the paper's second future-work item, the tradeoff
// between data locality and resource contention. The returned series shows
// where spreading overtakes locality.
func (s *Scheduler) Sweep(engine string, maxTasks int, sizePerTask units.Size) ([]SweepPoint, error) {
	if maxTasks <= 0 {
		return nil, fmt.Errorf("sched: maxTasks must be positive")
	}
	var out []SweepPoint
	for n := 1; n <= maxTasks; n++ {
		pt := SweepPoint{Tasks: n}
		for _, p := range []Policy{LocalOnly, ClassBalanced} {
			placement, err := s.Place(engine, n, p)
			if err != nil {
				return nil, err
			}
			rep, err := s.Evaluate(engine, placement, sizePerTask)
			if err != nil {
				return nil, err
			}
			if p == LocalOnly {
				pt.LocalOnly = rep.Aggregate
			} else {
				pt.ClassBalanced = rep.Aggregate
			}
		}
		out = append(out, pt)
	}
	return out, nil
}

// Crossover returns the smallest task count at which class-balanced
// placement strictly beats local-only, or 0 if it never does within the
// sweep.
func Crossover(points []SweepPoint) int {
	for _, p := range points {
		if p.ClassBalanced > p.LocalOnly {
			return p.Tasks
		}
	}
	return 0
}
