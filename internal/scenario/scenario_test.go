package scenario

import (
	"strings"
	"testing"
)

// validSuite is a minimal well-formed suite other tests mutate from.
const validSuite = `{
  "suite": "t",
  "defaults": {"repeats": 1, "sigma": -1},
  "cases": [
    {
      "name": "a",
      "machine": "intel-4s4n",
      "target": 3,
      "mode": "write",
      "assert": [{"kind": "class-of", "node": 3, "rank": 1}]
    }
  ]
}`

func TestParseSuiteValid(t *testing.T) {
	s, err := ParseSuite([]byte(validSuite))
	if err != nil {
		t.Fatalf("ParseSuite: %v", err)
	}
	if s.Name != "t" || len(s.Cases) != 1 {
		t.Fatalf("suite = %q with %d cases, want t with 1", s.Name, len(s.Cases))
	}
	c := &s.Cases[0]
	if c.MachineModel() == nil || c.MachineModel().Name != "intel-4s-4n" {
		t.Errorf("machine not resolved: %+v", c.MachineModel())
	}
	if got, pinned := c.Repeats(); got != 1 || pinned {
		t.Errorf("repeats = %d pinned %v, want 1 from defaults (unpinned)", got, pinned)
	}
	if c.Plan() != nil {
		t.Errorf("clean case resolved a fault plan")
	}
}

func TestParseSuitePinnedRepeats(t *testing.T) {
	j := strings.Replace(validSuite, `"target": 3,`, `"target": 3, "config": {"repeats": 4},`, 1)
	s, err := ParseSuite([]byte(j))
	if err != nil {
		t.Fatalf("ParseSuite: %v", err)
	}
	if got, pinned := s.Cases[0].Repeats(); got != 4 || !pinned {
		t.Errorf("repeats = %d pinned %v, want 4 pinned", got, pinned)
	}
}

// TestParseSuiteErrors drives every structural-validation error path: a
// suite that loads cleanly cannot fail for these reasons mid-grid.
func TestParseSuiteErrors(t *testing.T) {
	cases := []struct {
		name string
		json string
		want string // substring of the error
	}{
		{"not json", `{`, "unexpected EOF"},
		{"unknown field", `{"suite": "t", "cazes": []}`, "unknown field"},
		{"no name", `{"cases": [{"name": "a"}]}`, "suite name is required"},
		{"no cases", `{"suite": "t", "cases": []}`, "no cases"},
		{"unnamed case",
			strings.Replace(validSuite, `"name": "a",`, "", 1),
			"has no name"},
		{"duplicate case names",
			strings.Replace(validSuite, `}
  ]
}`, `}, {
      "name": "a",
      "machine": "intel-4s4n",
      "target": 3,
      "mode": "write",
      "assert": [{"kind": "class-of", "node": 3, "rank": 1}]
    }]
}`, 1),
			`duplicate case name "a"`},
		{"unknown machine",
			strings.Replace(validSuite, `"machine": "intel-4s4n"`, `"machine": "pdp-11"`, 1),
			"unknown profile"},
		{"target off machine",
			strings.Replace(validSuite, `"target": 3`, `"target": 11`, 1),
			"target node 11 not on machine"},
		{"bad mode",
			strings.Replace(validSuite, `"mode": "write"`, `"mode": "sideways"`, 1),
			"unknown mode"},
		{"bad fault-plan name",
			strings.Replace(validSuite, `"target": 3,`, `"target": 3, "faults": "definitely-not-a-plan",`, 1),
			"unknown plan"},
		{"bad fault-plan file",
			strings.Replace(validSuite, `"target": 3,`, `"target": 3, "faults": "testdata/no-such-plan.json",`, 1),
			"no such file"},
		{"bad inline plan",
			strings.Replace(validSuite, `"target": 3,`, `"target": 3, "faults": {"links": [{"a": "node0", "b": "node1", "factor": 7}]},`, 1),
			"factor 7 out of"},
		{"inline plan unknown field",
			strings.Replace(validSuite, `"target": 3,`, `"target": 3, "faults": {"linkz": []},`, 1),
			"unknown field"},
		{"chaos_seed without faults",
			strings.Replace(validSuite, `"target": 3,`, `"target": 3, "chaos_seed": 7,`, 1),
			"chaos_seed without faults"},
		{"negative repeats",
			strings.Replace(validSuite, `{"repeats": 1, "sigma": -1}`, `{"repeats": -2}`, 1),
			"negative repeats"},
		{"gap out of range",
			strings.Replace(validSuite, `{"repeats": 1, "sigma": -1}`, `{"gap": 1.5}`, 1),
			"gap threshold"},
		{"no assertions",
			strings.Replace(validSuite, `"assert": [{"kind": "class-of", "node": 3, "rank": 1}]`, `"assert": []`, 1),
			"no assertions"},
		{"assertion missing kind",
			strings.Replace(validSuite, `{"kind": "class-of", "node": 3, "rank": 1}`, `{"node": 3}`, 1),
			"missing kind"},
		{"unknown assertion kind",
			strings.Replace(validSuite, `"class-of"`, `"vibes"`, 1),
			`unknown kind "vibes"`},
		{"malformed classes assertion",
			strings.Replace(validSuite, `{"kind": "class-of", "node": 3, "rank": 1}`, `{"kind": "classes"}`, 1),
			"needs non-empty sets"},
		{"classes with empty set",
			strings.Replace(validSuite, `{"kind": "class-of", "node": 3, "rank": 1}`, `{"kind": "classes", "sets": [[3], []]}`, 1),
			"class 2 is empty"},
		{"classes with off-machine node",
			strings.Replace(validSuite, `{"kind": "class-of", "node": 3, "rank": 1}`, `{"kind": "classes", "sets": [[3], [9]]}`, 1),
			"node 9 not on machine"},
		{"num-classes without min",
			strings.Replace(validSuite, `{"kind": "class-of", "node": 3, "rank": 1}`, `{"kind": "num-classes"}`, 1),
			"needs min >= 1"},
		{"num-classes max below min",
			strings.Replace(validSuite, `{"kind": "class-of", "node": 3, "rank": 1}`, `{"kind": "num-classes", "min": 3, "max": 2}`, 1),
			"max 2 below min 3"},
		{"class-of without node",
			strings.Replace(validSuite, `{"kind": "class-of", "node": 3, "rank": 1}`, `{"kind": "class-of", "rank": 1}`, 1),
			"needs node"},
		{"bandwidth without bounds",
			strings.Replace(validSuite, `{"kind": "class-of", "node": 3, "rank": 1}`, `{"kind": "bandwidth", "node": 3}`, 1),
			"needs positive gbps bounds"},
		{"bandwidth inverted bounds",
			strings.Replace(validSuite, `{"kind": "class-of", "node": 3, "rank": 1}`, `{"kind": "bandwidth", "node": 3, "min_gbps": 9, "max_gbps": 4}`, 1),
			"max_gbps 4 below min_gbps 9"},
		{"predict bad mix sum",
			strings.Replace(validSuite, `{"kind": "class-of", "node": 3, "rank": 1}`, `{"kind": "predict", "mix": {"0": 0.5, "3": 0.4}, "min_gbps": 1, "max_gbps": 2}`, 1),
			"sum to 0.9"},
		{"predict bad mix key",
			strings.Replace(validSuite, `{"kind": "class-of", "node": 3, "rank": 1}`, `{"kind": "predict", "mix": {"zero": 1}, "min_gbps": 1, "max_gbps": 2}`, 1),
			`mix key "zero"`},
		{"resilience on clean case",
			strings.Replace(validSuite, `{"kind": "class-of", "node": 3, "rank": 1}`, `{"kind": "resilience", "min_retries": 1}`, 1),
			"requires a fault plan"},
		{"resilience without bounds",
			strings.Replace(
				strings.Replace(validSuite, `"target": 3,`, `"target": 3, "faults": "flaky-measurements",`, 1),
				`{"kind": "class-of", "node": 3, "rank": 1}`, `{"kind": "resilience"}`, 1),
			"needs at least one bound"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ParseSuite([]byte(tc.json))
			if err == nil {
				t.Fatalf("ParseSuite accepted invalid suite")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}
