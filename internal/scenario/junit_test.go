package scenario

import (
	"os"
	"strings"
	"testing"
	"time"
)

// fakeClock steps 100ms per call, so durations and timestamps are exact.
func fakeClock() func() time.Time {
	t := time.Date(2026, 1, 2, 3, 4, 5, 0, time.UTC)
	return func() time.Time {
		t = t.Add(100 * time.Millisecond)
		return t
	}
}

// TestWriteJUnitGolden pins the XML byte-for-byte: one testsuite for the
// grid suite, a clean testcase, a testcase with two <failure> elements and
// a testcase with an <error>, under a stepping fake clock and a serial
// runner. Engine output is deterministic, so the assertion-failure
// messages (which embed measured bandwidths) are stable too.
func TestWriteJUnitGolden(t *testing.T) {
	r := Runner{Now: fakeClock()}
	results := r.RunAll([]*Suite{mustParse(t, gridSuite)})

	var sb strings.Builder
	if err := WriteJUnit(&sb, results); err != nil {
		t.Fatalf("WriteJUnit: %v", err)
	}
	got := sb.String()

	want, err := os.ReadFile("testdata/junit.golden")
	if err != nil {
		t.Fatalf("read golden: %v", err)
	}
	if got != string(want) {
		t.Errorf("JUnit output differs from testdata/junit.golden — update it if the change is intentional.\ngot:\n%s\nwant:\n%s", got, want)
	}
}

// TestWriteJUnitStructure sanity-checks the report semantics independent of
// the golden bytes, so a deliberate golden refresh can't silently encode a
// broken report.
func TestWriteJUnitStructure(t *testing.T) {
	r := Runner{Now: fakeClock()}
	results := r.RunAll([]*Suite{mustParse(t, gridSuite)})

	var sb strings.Builder
	if err := WriteJUnit(&sb, results); err != nil {
		t.Fatalf("WriteJUnit: %v", err)
	}
	got := sb.String()
	for _, want := range []string{
		`<testsuites tests="3" failures="1" errors="1"`,
		`<testsuite name="grid" tests="3" failures="1" errors="1"`,
		`timestamp="2026-01-02T03:04:05Z"`,
		`classname="scenario.grid"`,
		`<failure message=`,
		`type="assertion"`,
		`<error message=`,
		`type="error"`,
	} {
		if !strings.Contains(got, want) {
			t.Errorf("JUnit output missing %q:\n%s", want, got)
		}
	}
	if !strings.HasPrefix(got, "<?xml version=") {
		t.Errorf("JUnit output missing the XML header")
	}
	if strings.Count(got, "<failure") != 2 {
		t.Errorf("want exactly 2 <failure> elements (the fail case has 2 assertions):\n%s", got)
	}
}
