package scenario

import (
	"reflect"
	"strings"
	"testing"

	"numaio/internal/telemetry"
)

// gridSuite exercises pass, assertion-failure and engine-error outcomes in
// one grid: case "pass" holds by construction (the target is always class
// 1), case "fail" pins an impossible class count, and case "err" names a
// fault-plan link that does not exist on the machine, which the engine
// rejects when the characterizer is built.
const gridSuite = `{
  "suite": "grid",
  "defaults": {"repeats": 2, "sigma": -1},
  "cases": [
    {
      "name": "pass",
      "machine": "intel-4s4n",
      "target": 3,
      "mode": "write",
      "assert": [
        {"kind": "class-of", "node": 3, "rank": 1},
        {"kind": "class-order"},
        {"kind": "num-classes", "min": 1}
      ]
    },
    {
      "name": "fail",
      "machine": "intel-4s4n",
      "target": 3,
      "mode": "read",
      "assert": [
        {"kind": "num-classes", "min": 9, "max": 9},
        {"kind": "bandwidth", "node": 3, "min_gbps": 0.001, "max_gbps": 0.002}
      ]
    },
    {
      "name": "err",
      "machine": "intel-4s4n",
      "target": 0,
      "mode": "write",
      "faults": {"links": [{"a": "node6", "b": "node7", "factor": 0.5}]},
      "assert": [{"kind": "num-classes", "min": 1}]
    }
  ]
}`

func mustParse(t *testing.T, j string) *Suite {
	t.Helper()
	s, err := ParseSuite([]byte(j))
	if err != nil {
		t.Fatalf("ParseSuite: %v", err)
	}
	return s
}

func TestRunAllOutcomes(t *testing.T) {
	r := Runner{}
	results := r.RunAll([]*Suite{mustParse(t, gridSuite)})
	if len(results) != 1 || len(results[0].Cases) != 3 {
		t.Fatalf("results shape = %d suites, want 1 with 3 cases", len(results))
	}
	pass, fail, errd := &results[0].Cases[0], &results[0].Cases[1], &results[0].Cases[2]
	if !pass.Passed() || len(pass.Failures) != 0 || pass.Err != nil {
		t.Errorf("pass case: failures %v err %v", pass.Failures, pass.Err)
	}
	if fail.Passed() || len(fail.Failures) != 2 || fail.Err != nil {
		t.Errorf("fail case: failures %v err %v, want 2 assertion failures", fail.Failures, fail.Err)
	}
	if len(fail.Failures) > 0 && !strings.Contains(fail.Failures[0], "num-classes") {
		t.Errorf("first failure %q does not name the assertion", fail.Failures[0])
	}
	if errd.Err == nil || len(errd.Failures) != 0 {
		t.Errorf("err case: failures %v err %v, want an engine error", errd.Failures, errd.Err)
	}
	total, failed, errored := results[0].Totals()
	if total != 3 || failed != 1 || errored != 1 {
		t.Errorf("totals = (%d, %d, %d), want (3, 1, 1)", total, failed, errored)
	}
	if FailedCases(results) != 2 {
		t.Errorf("FailedCases = %d, want 2", FailedCases(results))
	}
}

// TestRunAllParallelDeterminism runs the seed suites' grid shape at widths
// 1 and 4: every outcome — including the exact assertion-failure strings,
// which embed measured bandwidths — must be identical, because jitter and
// fault draws are keyed by job name, not by scheduling.
func TestRunAllParallelDeterminism(t *testing.T) {
	outcomes := func(p int) [][]string {
		r := Runner{Parallelism: p}
		results := r.RunAll([]*Suite{mustParse(t, gridSuite)})
		var out [][]string
		for i := range results[0].Cases {
			cr := &results[0].Cases[i]
			row := append([]string(nil), cr.Failures...)
			if cr.Err != nil {
				row = append(row, "err: "+cr.Err.Error())
			}
			out = append(out, row)
		}
		return out
	}
	serial, parallel := outcomes(1), outcomes(4)
	if !reflect.DeepEqual(serial, parallel) {
		t.Errorf("parallel grid diverged from serial:\nserial:   %v\nparallel: %v", serial, parallel)
	}
}

// TestRunnerRepeatsOverride: the grid-wide override reaches cases that
// inherit repeats from the defaults but leaves pinned cases alone.
func TestRunnerRepeatsOverride(t *testing.T) {
	j := strings.Replace(gridSuite, `"name": "pass",
      "machine": "intel-4s4n",
      "target": 3,`,
		`"name": "pass",
      "machine": "intel-4s4n",
      "config": {"repeats": 3},
      "target": 3,`, 1)
	s := mustParse(t, j)
	if got, pinned := s.Cases[0].Repeats(); got != 3 || !pinned {
		t.Fatalf("case repeats = %d pinned %v, want 3 pinned", got, pinned)
	}
	if got, pinned := s.Cases[1].Repeats(); got != 2 || pinned {
		t.Fatalf("case repeats = %d pinned %v, want 2 unpinned", got, pinned)
	}
	// Both override settings must still produce the same verdicts for this
	// suite (its assertions are repeat-robust by design).
	for _, repeats := range []int{0, 4} {
		r := Runner{Repeats: repeats}
		results := r.RunAll([]*Suite{s})
		if !results[0].Cases[0].Passed() {
			t.Errorf("repeats override %d broke the pass case: %v err %v",
				repeats, results[0].Cases[0].Failures, results[0].Cases[0].Err)
		}
	}
}

// TestRunCaseTracing: cases land as spans (with verdict attrs) on the
// trace, and the engine's own sweep spans record beneath them.
func TestRunCaseTracing(t *testing.T) {
	tr := telemetry.NewTracer()
	r := Runner{Tracer: tr}
	r.RunAll([]*Suite{mustParse(t, gridSuite)})
	var caseSpans, sweeps int
	for _, e := range tr.Events() {
		switch e.Cat {
		case "scenario":
			caseSpans++
		case "characterize":
			sweeps++
		}
	}
	// One complete-phase event per span: 3 cases, 2 engine sweeps (the err
	// case never characterizes).
	if caseSpans != 3 {
		t.Errorf("scenario span events = %d, want 3", caseSpans)
	}
	if sweeps == 0 {
		t.Errorf("no characterize spans recorded beneath the cases")
	}
}

// TestSeedSuites runs the shipped suites end to end at both the quick and
// the full grid: every case must pass, at any parallelism.
func TestSeedSuites(t *testing.T) {
	for _, path := range []string{"../../suites/shapevalidation.json", "../../suites/chaosmatrix.json"} {
		s, err := LoadSuite(path)
		if err != nil {
			t.Fatalf("LoadSuite(%s): %v", path, err)
		}
		for _, repeats := range []int{0, 2} {
			r := Runner{Parallelism: 4, Repeats: repeats}
			results := r.RunAll([]*Suite{s})
			for i := range results[0].Cases {
				cr := &results[0].Cases[i]
				if !cr.Passed() {
					t.Errorf("%s (repeats=%d) %s: failures %v err %v",
						s.Name, repeats, cr.Case.Name, cr.Failures, cr.Err)
				}
			}
		}
	}
}

func TestSummarize(t *testing.T) {
	r := Runner{}
	results := r.RunAll([]*Suite{mustParse(t, gridSuite)})
	tbl := Summarize(results).Render()
	for _, want := range []string{"3 cases: 1 passed, 1 failed, 1 errored", "FAIL", "ERROR", "pass"} {
		if !strings.Contains(tbl, want) {
			t.Errorf("summary missing %q:\n%s", want, tbl)
		}
	}
}
