package scenario

import (
	"fmt"
	"strings"

	"numaio/internal/core"
	"numaio/internal/topology"
	"numaio/internal/units"
)

// Assertion is one declarative check against a characterized model. Kind
// selects the check; the other fields parameterise it (each kind reads a
// subset, validated at load time):
//
//	classes      — exact class memberships in rank order: sets [[6,7],[0,1]]
//	num-classes  — class count within [min, max] (max 0 = unbounded)
//	class-order  — class average bandwidths non-increasing with rank
//	class-of     — node is a member of the class with the given rank
//	bandwidth    — node's measured bandwidth within [min_gbps, max_gbps]
//	predict      — Eq. 1 prediction for mix within [min_gbps, max_gbps]
//	resilience   — resilience-report counters within the given bounds
//	               (requires a fault plan on the case)
type Assertion struct {
	Kind string `json:"kind"`

	// classes
	Sets [][]int `json:"sets,omitempty"`

	// num-classes
	Min int `json:"min,omitempty"`
	Max int `json:"max,omitempty"`

	// class-of and bandwidth
	Node *int `json:"node,omitempty"`
	// class-of
	Rank int `json:"rank,omitempty"`

	// bandwidth and predict
	MinGbps float64 `json:"min_gbps,omitempty"`
	MaxGbps float64 `json:"max_gbps,omitempty"`
	// predict
	Mix map[string]float64 `json:"mix,omitempty"`

	// resilience (pointers so 0 is an assertable bound)
	MinRetries  *int `json:"min_retries,omitempty"`
	MaxRetries  *int `json:"max_retries,omitempty"`
	MinTimeouts *int `json:"min_timeouts,omitempty"`
	MinFailures *int `json:"min_failures,omitempty"`
	MinOutliers *int `json:"min_outliers,omitempty"`
	MaxOutliers *int `json:"max_outliers,omitempty"`
}

// AssertionKinds lists the valid kinds, for error messages and docs.
func AssertionKinds() []string {
	return []string{"classes", "num-classes", "class-order", "class-of",
		"bandwidth", "predict", "resilience"}
}

// validate checks the assertion is well formed for its kind and that every
// node it references exists on the machine.
func (a *Assertion) validate(m *topology.Machine, hasFaults bool) error {
	switch a.Kind {
	case "classes":
		if len(a.Sets) == 0 {
			return fmt.Errorf("needs non-empty sets")
		}
		for rank, set := range a.Sets {
			if len(set) == 0 {
				return fmt.Errorf("class %d is empty", rank+1)
			}
			for _, n := range set {
				if err := nodeOn(m, n); err != nil {
					return err
				}
			}
		}
	case "num-classes":
		if a.Min < 1 {
			return fmt.Errorf("needs min >= 1")
		}
		if a.Max != 0 && a.Max < a.Min {
			return fmt.Errorf("max %d below min %d", a.Max, a.Min)
		}
	case "class-order":
		// No parameters.
	case "class-of":
		if a.Node == nil {
			return fmt.Errorf("needs node")
		}
		if err := nodeOn(m, *a.Node); err != nil {
			return err
		}
		if a.Rank < 1 {
			return fmt.Errorf("needs rank >= 1")
		}
	case "bandwidth":
		if a.Node == nil {
			return fmt.Errorf("needs node")
		}
		if err := nodeOn(m, *a.Node); err != nil {
			return err
		}
		if err := checkBounds(a.MinGbps, a.MaxGbps); err != nil {
			return err
		}
	case "predict":
		if len(a.Mix) == 0 {
			return fmt.Errorf("needs mix")
		}
		if _, err := parseMix(m, a.Mix); err != nil {
			return err
		}
		if err := checkBounds(a.MinGbps, a.MaxGbps); err != nil {
			return err
		}
	case "resilience":
		if !hasFaults {
			return fmt.Errorf("requires a fault plan on the case")
		}
		if a.MinRetries == nil && a.MaxRetries == nil && a.MinTimeouts == nil &&
			a.MinFailures == nil && a.MinOutliers == nil && a.MaxOutliers == nil {
			return fmt.Errorf("needs at least one bound")
		}
	case "":
		return fmt.Errorf("missing kind (want one of %s)", strings.Join(AssertionKinds(), ", "))
	default:
		return fmt.Errorf("unknown kind %q (want one of %s)", a.Kind, strings.Join(AssertionKinds(), ", "))
	}
	return nil
}

func checkBounds(min, max float64) error {
	if min < 0 || max <= 0 {
		return fmt.Errorf("needs positive gbps bounds")
	}
	if max < min {
		return fmt.Errorf("max_gbps %v below min_gbps %v", max, min)
	}
	return nil
}

// check evaluates the assertion against the model; a non-empty return is
// the failure message.
func (a *Assertion) check(m *topology.Machine, model *core.Model) string {
	switch a.Kind {
	case "classes":
		return a.checkClasses(model)
	case "num-classes":
		got := model.NumClasses()
		if got < a.Min || (a.Max != 0 && got > a.Max) {
			return fmt.Sprintf("num-classes: got %d classes, want %s", got, rangeStr(a.Min, a.Max))
		}
	case "class-order":
		for i := 1; i < len(model.Classes); i++ {
			prev, cur := model.Classes[i-1], model.Classes[i]
			if cur.Avg > prev.Avg {
				return fmt.Sprintf("class-order: class %d avg %s above class %d avg %s",
					cur.Rank, gbps(cur.Avg), prev.Rank, gbps(prev.Avg))
			}
		}
	case "class-of":
		cls, err := model.ClassOf(topology.NodeID(*a.Node))
		if err != nil {
			return fmt.Sprintf("class-of: %v", err)
		}
		if cls.Rank != a.Rank {
			return fmt.Sprintf("class-of: node %d in class %d, want class %d", *a.Node, cls.Rank, a.Rank)
		}
	case "bandwidth":
		bw, err := model.SampleOf(topology.NodeID(*a.Node))
		if err != nil {
			return fmt.Sprintf("bandwidth: %v", err)
		}
		if v := bw.Gbps(); v < a.MinGbps || v > a.MaxGbps {
			return fmt.Sprintf("bandwidth: node %d at %s Gb/s, want [%g, %g]",
				*a.Node, gbps(bw), a.MinGbps, a.MaxGbps)
		}
	case "predict":
		mix, err := parseMix(m, a.Mix)
		if err != nil {
			return fmt.Sprintf("predict: %v", err)
		}
		bw, err := model.Predict(mix, nil)
		if err != nil {
			return fmt.Sprintf("predict: %v", err)
		}
		if v := bw.Gbps(); v < a.MinGbps || v > a.MaxGbps {
			return fmt.Sprintf("predict: mix yields %s Gb/s, want [%g, %g]",
				gbps(bw), a.MinGbps, a.MaxGbps)
		}
	case "resilience":
		return a.checkResilience(model.Resilience)
	}
	return ""
}

func (a *Assertion) checkClasses(model *core.Model) string {
	got := make([][]int, len(model.Classes))
	for i, cls := range model.Classes {
		for _, n := range cls.Nodes {
			got[i] = append(got[i], int(n))
		}
	}
	match := len(got) == len(a.Sets)
	if match {
	outer:
		for i := range got {
			if len(got[i]) != len(a.Sets[i]) {
				match = false
				break
			}
			for j := range got[i] {
				if got[i][j] != a.Sets[i][j] {
					match = false
					break outer
				}
			}
		}
	}
	if !match {
		return fmt.Sprintf("classes: got %s, want %s", setsStr(got), setsStr(a.Sets))
	}
	return ""
}

func (a *Assertion) checkResilience(r *core.ResilienceReport) string {
	if r == nil {
		r = &core.ResilienceReport{}
	}
	type bound struct {
		name     string
		min, max *int
		got      int
	}
	for _, b := range []bound{
		{"retries", a.MinRetries, a.MaxRetries, r.Retries},
		{"timeouts", a.MinTimeouts, nil, r.Timeouts},
		{"failures", a.MinFailures, nil, r.Failures},
		{"outliers", a.MinOutliers, a.MaxOutliers, r.Outliers},
	} {
		if b.min != nil && b.got < *b.min {
			return fmt.Sprintf("resilience: %d %s, want >= %d", b.got, b.name, *b.min)
		}
		if b.max != nil && b.got > *b.max {
			return fmt.Sprintf("resilience: %d %s, want <= %d", b.got, b.name, *b.max)
		}
	}
	return ""
}

// setsStr formats class memberships like "{6,7} | {0,1,4,5}".
func setsStr(sets [][]int) string {
	parts := make([]string, len(sets))
	for i, set := range sets {
		ns := make([]string, len(set))
		for j, n := range set {
			ns[j] = fmt.Sprintf("%d", n)
		}
		parts[i] = "{" + strings.Join(ns, ",") + "}"
	}
	return strings.Join(parts, " | ")
}

func rangeStr(min, max int) string {
	if max == 0 {
		return fmt.Sprintf(">= %d", min)
	}
	return fmt.Sprintf("[%d, %d]", min, max)
}

func gbps(bw units.Bandwidth) string { return fmt.Sprintf("%.2f", bw.Gbps()) }
