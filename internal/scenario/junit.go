package scenario

import (
	"encoding/xml"
	"fmt"
	"io"
	"strings"
	"time"
)

// JUnit XML report, the CI-consumable half of the grid outcome. One
// <testsuite> per scenario suite, one <testcase> per grid cell; assertion
// failures become <failure> elements (one per failed assertion), engine
// errors become <error>. The layout follows the common JUnit schema that
// CI artifact viewers and merge gates consume.
//
// The output is a pure function of the results: attribute order is fixed
// by the struct layout and times come from the Runner's clock, so a run
// under a fake clock is byte-for-byte reproducible (the golden test pins
// it).

type junitFailure struct {
	Message string `xml:"message,attr"`
	Type    string `xml:"type,attr"`
	Body    string `xml:",chardata"`
}

type junitCase struct {
	XMLName   xml.Name       `xml:"testcase"`
	Name      string         `xml:"name,attr"`
	ClassName string         `xml:"classname,attr"`
	Time      string         `xml:"time,attr"`
	Failures  []junitFailure `xml:"failure"`
	Errors    []junitFailure `xml:"error"`
}

type junitSuite struct {
	XMLName   xml.Name    `xml:"testsuite"`
	Name      string      `xml:"name,attr"`
	Tests     int         `xml:"tests,attr"`
	Failures  int         `xml:"failures,attr"`
	Errors    int         `xml:"errors,attr"`
	Time      string      `xml:"time,attr"`
	Timestamp string      `xml:"timestamp,attr"`
	Cases     []junitCase `xml:"testcase"`
}

type junitSuites struct {
	XMLName  xml.Name     `xml:"testsuites"`
	Tests    int          `xml:"tests,attr"`
	Failures int          `xml:"failures,attr"`
	Errors   int          `xml:"errors,attr"`
	Time     string       `xml:"time,attr"`
	Suites   []junitSuite `xml:"testsuite"`
}

// WriteJUnit renders the grid results as indented JUnit XML.
func WriteJUnit(w io.Writer, results []*SuiteResult) error {
	root := junitSuites{}
	var totalTime time.Duration
	for _, sr := range results {
		total, failed, errored := sr.Totals()
		js := junitSuite{
			Name:      sr.Suite.Name,
			Tests:     total,
			Failures:  failed,
			Errors:    errored,
			Time:      junitSeconds(sr.Duration),
			Timestamp: sr.Start.Format("2006-01-02T15:04:05Z"),
		}
		for i := range sr.Cases {
			cr := &sr.Cases[i]
			jc := junitCase{
				Name:      cr.Case.Name,
				ClassName: "scenario." + sr.Suite.Name,
				Time:      junitSeconds(cr.Duration),
			}
			for _, msg := range cr.Failures {
				jc.Failures = append(jc.Failures, junitFailure{
					Message: firstLine(msg), Type: "assertion", Body: msg,
				})
			}
			if cr.Err != nil {
				jc.Errors = append(jc.Errors, junitFailure{
					Message: firstLine(cr.Err.Error()), Type: "error", Body: cr.Err.Error(),
				})
			}
			js.Cases = append(js.Cases, jc)
		}
		root.Tests += js.Tests
		root.Failures += js.Failures
		root.Errors += js.Errors
		totalTime += sr.Duration
		root.Suites = append(root.Suites, js)
	}
	root.Time = junitSeconds(totalTime)

	out, err := xml.MarshalIndent(root, "", "  ")
	if err != nil {
		return fmt.Errorf("scenario: encoding junit: %w", err)
	}
	if _, err := io.WriteString(w, xml.Header); err != nil {
		return err
	}
	if _, err := w.Write(append(out, '\n')); err != nil {
		return err
	}
	return nil
}

func junitSeconds(d time.Duration) string {
	return fmt.Sprintf("%.3f", d.Seconds())
}

func firstLine(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		return s[:i]
	}
	return s
}
