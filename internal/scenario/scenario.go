// Package scenario runs declarative test suites over the characterization
// engine: a suite file names a grid of cases — machine model × I/O mode ×
// optional fault plan — and per-case assertions on the resulting model
// (class structure, class ordering, bandwidth bounds, Eq. 1 predictions,
// resilience-report expectations). The runner executes the grid in
// parallel through core.Characterizer and reports pass/fail both as a
// summary table and as JUnit XML for CI.
//
// This is the paper's Tables IV/V turned into a regression harness: the
// hand-run matrix of topology × direction × placement becomes a reusable,
// CI-consumable suite, the same way DAMOV systematizes data-movement
// bottleneck evaluation. New topologies and device classes land here
// cheaply: add a case, pin its class structure, and CI holds the shape.
// See docs/SCENARIOS.md for the file format and suites/ for the seeds.
package scenario

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"os"
	"path/filepath"

	"numaio/internal/cli"
	"numaio/internal/core"
	"numaio/internal/faults"
	"numaio/internal/topology"
)

// Suite is one declarative scenario file: a named list of cases sharing
// optional config defaults.
type Suite struct {
	// Name identifies the suite in reports and as the JUnit testsuite name.
	Name string `json:"suite"`
	// Description says what invariants the suite holds.
	Description string `json:"description,omitempty"`
	// Defaults seeds every case's config; a case's own config overrides
	// field by field.
	Defaults *CaseConfig `json:"defaults,omitempty"`
	Cases    []Case      `json:"cases"`

	// Path is the file the suite was loaded from (informational).
	Path string `json:"-"`
}

// Case is one cell of the scenario grid: characterize (machine, target,
// mode), optionally under a fault plan, then check every assertion.
type Case struct {
	// Name must be unique within the suite; it becomes the JUnit testcase
	// name.
	Name string `json:"name"`
	// Machine is a canned profile name or a machine JSON path (the
	// -machine contract, cli.Machine).
	Machine string `json:"machine"`
	// Target is the node the modelled I/O device is attached to.
	Target int `json:"target"`
	// Mode is "write" or "read".
	Mode string `json:"mode"`
	// Config overrides the suite defaults for this case. A case that sets
	// repeats explicitly pins it: the runner's grid-wide repeats override
	// (the quick-grid knob) leaves pinned cases alone, because their
	// assertions depend on the exact repeat count.
	Config *CaseConfig `json:"config,omitempty"`
	// Faults is either a string — a built-in plan name or a JSON plan-file
	// path (faults.Load) — or an inline plan object (faults.Plan).
	Faults json.RawMessage `json:"faults,omitempty"`
	// ChaosSeed overrides the fault plan's seed; 0 keeps the plan's own.
	ChaosSeed uint64 `json:"chaos_seed,omitempty"`
	// Assert lists the checks run against the characterized model.
	Assert []Assertion `json:"assert"`

	// Resolved at load time so a bad reference fails fast, not mid-grid.
	machine       *topology.Machine
	mode          core.Mode
	plan          *faults.Plan
	repeats       int
	repeatsPinned bool
	threads       int
	gap           float64
	sigma         float64
}

// CaseConfig is the subset of core.Config a suite can set. Zero values
// inherit (suite defaults first, then the engine defaults); like the
// engine, a negative sigma disables measurement noise.
type CaseConfig struct {
	// Repeats per node; 0 inherits (engine default 5).
	Repeats int `json:"repeats,omitempty"`
	// Threads per test; 0 means one per target core.
	Threads int `json:"threads,omitempty"`
	// Gap is the classification gap threshold in (0,1); 0 inherits 0.2.
	Gap float64 `json:"gap,omitempty"`
	// Sigma is the measurement noise; 0 inherits 0.02, negative disables.
	Sigma float64 `json:"sigma,omitempty"`
}

// MachineModel returns the case's resolved machine (valid after LoadSuite).
func (c *Case) MachineModel() *topology.Machine { return c.machine }

// CoreMode returns the case's parsed mode (valid after LoadSuite).
func (c *Case) CoreMode() core.Mode { return c.mode }

// Plan returns the case's resolved fault plan, nil for clean cases.
func (c *Case) Plan() *faults.Plan { return c.plan }

// Repeats returns the case's effective repeat count (0 = engine default)
// and whether the case pinned it explicitly.
func (c *Case) Repeats() (int, bool) { return c.repeats, c.repeatsPinned }

// LoadSuite reads and fully validates a suite file: every machine resolves,
// every mode parses, every fault reference loads, every assertion is well
// formed and every referenced node exists on the case's machine. A suite
// that loads cleanly cannot fail for structural reasons mid-grid.
func LoadSuite(path string) (*Suite, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	s, err := ParseSuite(data)
	if err != nil {
		return nil, fmt.Errorf("scenario: %s: %w", path, err)
	}
	s.Path = filepath.ToSlash(path)
	return s, nil
}

// ParseSuite decodes and validates a suite from raw JSON (strict: unknown
// fields are an error, so typos in assertion fields fail loudly).
func ParseSuite(data []byte) (*Suite, error) {
	var s Suite
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&s); err != nil {
		return nil, err
	}
	if err := s.validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

func (s *Suite) validate() error {
	if s.Name == "" {
		return fmt.Errorf("suite name is required")
	}
	if len(s.Cases) == 0 {
		return fmt.Errorf("suite %q has no cases", s.Name)
	}
	seen := make(map[string]bool, len(s.Cases))
	for i := range s.Cases {
		c := &s.Cases[i]
		if c.Name == "" {
			return fmt.Errorf("case %d has no name", i)
		}
		if seen[c.Name] {
			return fmt.Errorf("duplicate case name %q", c.Name)
		}
		seen[c.Name] = true
		if err := c.resolve(s.Defaults); err != nil {
			return fmt.Errorf("case %q: %w", c.Name, err)
		}
	}
	return nil
}

// resolve materialises the case: machine, mode, fault plan, merged config
// and assertion validity.
func (c *Case) resolve(defaults *CaseConfig) error {
	m, err := cli.Machine(c.Machine)
	if err != nil {
		return err
	}
	c.machine = m
	if _, ok := m.Node(topology.NodeID(c.Target)); !ok {
		return fmt.Errorf("target node %d not on machine %s", c.Target, m.Name)
	}
	c.mode, err = core.ParseMode(c.Mode)
	if err != nil {
		return err
	}
	if len(c.Faults) > 0 {
		plan, err := faults.Resolve(c.Faults)
		if err != nil {
			return err
		}
		c.plan = &plan
	}
	if c.ChaosSeed != 0 && c.plan == nil {
		return fmt.Errorf("chaos_seed without faults")
	}

	merged := CaseConfig{}
	if defaults != nil {
		merged = *defaults
	}
	if c.Config != nil {
		if c.Config.Repeats != 0 {
			merged.Repeats = c.Config.Repeats
			c.repeatsPinned = true
		}
		if c.Config.Threads != 0 {
			merged.Threads = c.Config.Threads
		}
		if c.Config.Gap != 0 {
			merged.Gap = c.Config.Gap
		}
		if c.Config.Sigma != 0 {
			merged.Sigma = c.Config.Sigma
		}
	}
	if merged.Repeats < 0 {
		return fmt.Errorf("negative repeats %d", merged.Repeats)
	}
	if merged.Threads < 0 {
		return fmt.Errorf("negative threads %d", merged.Threads)
	}
	if merged.Gap < 0 || merged.Gap >= 1 {
		return fmt.Errorf("gap threshold %v out of [0,1)", merged.Gap)
	}
	c.repeats, c.threads, c.gap, c.sigma = merged.Repeats, merged.Threads, merged.Gap, merged.Sigma

	if len(c.Assert) == 0 {
		return fmt.Errorf("no assertions")
	}
	for i := range c.Assert {
		if err := c.Assert[i].validate(m, c.plan != nil); err != nil {
			return fmt.Errorf("assertion %d (%s): %w", i, c.Assert[i].Kind, err)
		}
	}
	return nil
}

// nodeOn checks a suite-referenced node exists on the case's machine.
func nodeOn(m *topology.Machine, n int) error {
	if _, ok := m.Node(topology.NodeID(n)); !ok {
		return fmt.Errorf("node %d not on machine %s", n, m.Name)
	}
	return nil
}

// parseMix converts a JSON mix (string node keys, like the numaiod request
// bodies) into the core.Model.Predict form, checking every node exists and
// the fractions sum to 1.
func parseMix(m *topology.Machine, in map[string]float64) (map[topology.NodeID]float64, error) {
	mix := make(map[topology.NodeID]float64, len(in))
	var sum float64
	for k, f := range in {
		var n int
		if _, err := fmt.Sscanf(k, "%d", &n); err != nil {
			return nil, fmt.Errorf("mix key %q is not a node ID", k)
		}
		if err := nodeOn(m, n); err != nil {
			return nil, err
		}
		if f < 0 {
			return nil, fmt.Errorf("mix fraction for node %d is negative", n)
		}
		mix[topology.NodeID(n)] = f
		sum += f
	}
	if math.Abs(sum-1) > 1e-6 {
		return nil, fmt.Errorf("mix fractions sum to %v, want 1", sum)
	}
	return mix, nil
}
