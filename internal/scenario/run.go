package scenario

import (
	"fmt"
	"sync"
	"time"

	"numaio/internal/core"
	"numaio/internal/numa"
	"numaio/internal/report"
	"numaio/internal/resilience"
	"numaio/internal/telemetry"
	"numaio/internal/topology"
)

// Runner executes scenario suites through the characterization engine.
type Runner struct {
	// Parallelism bounds the number of cases measured concurrently; 0 or 1
	// runs the grid serially. Cases are deterministic (jitter and fault
	// draws are keyed by job name), so results are identical at any width;
	// results are assembled in suite order regardless of scheduling.
	Parallelism int
	// Repeats, when non-zero, overrides the repeat count of every case
	// that did not pin one explicitly — the quick-grid knob: PR CI passes
	// a small value, the nightly grid runs the suites' full counts.
	Repeats int
	// ChaosSeed, when non-zero, overrides every fault plan's seed.
	ChaosSeed uint64
	// Tracer, when non-nil, records one span per case (on the measuring
	// worker's track) around the engine's own characterization spans.
	Tracer *telemetry.Tracer
	// Now is the clock behind case durations and suite timestamps; nil
	// means time.Now. Tests inject a stepping fake so the JUnit output is
	// byte-deterministic.
	Now func() time.Time
}

// CaseResult is the outcome of one grid cell.
type CaseResult struct {
	Suite string
	Case  *Case
	// Duration is the wall time of the cell (characterization + checks).
	Duration time.Duration
	// Failures lists the assertion messages that failed; empty means the
	// case passed (unless Err is set).
	Failures []string
	// Err is a structural failure: the engine could not produce a model at
	// all. Distinct from assertion failures, it maps to a JUnit <error>.
	Err error
}

// Passed reports whether the case produced a model and every assertion held.
func (c *CaseResult) Passed() bool { return c.Err == nil && len(c.Failures) == 0 }

// SuiteResult is the outcome of one suite.
type SuiteResult struct {
	Suite *Suite
	// Start is when the suite's first case began (the JUnit timestamp).
	Start time.Time
	// Duration sums the case durations — grid time, not wall time, so the
	// number is independent of Parallelism.
	Duration time.Duration
	Cases    []CaseResult
}

// Totals counts the suite's cases by outcome.
func (s *SuiteResult) Totals() (total, failed, errored int) {
	for i := range s.Cases {
		total++
		switch {
		case s.Cases[i].Err != nil:
			errored++
		case len(s.Cases[i].Failures) > 0:
			failed++
		}
	}
	return
}

func (r *Runner) now() time.Time {
	if r.Now != nil {
		return r.Now()
	}
	return time.Now()
}

// RunAll executes every case of every suite over one bounded worker pool
// and returns per-suite results in suite order.
func (r *Runner) RunAll(suites []*Suite) []*SuiteResult {
	results := make([]*SuiteResult, len(suites))
	type cell struct{ si, ci int }
	var cells []cell
	for si, s := range suites {
		results[si] = &SuiteResult{Suite: s, Start: r.now().UTC(), Cases: make([]CaseResult, len(s.Cases))}
		for ci := range s.Cases {
			cells = append(cells, cell{si, ci})
		}
	}

	workers := r.Parallelism
	if workers < 1 {
		workers = 1
	}
	if workers > len(cells) {
		workers = len(cells)
	}

	if workers <= 1 {
		for _, c := range cells {
			results[c.si].Cases[c.ci] = r.runCase(suites[c.si], &suites[c.si].Cases[c.ci], 0)
		}
	} else {
		jobs := make(chan cell)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(wtid int) {
				defer wg.Done()
				for c := range jobs {
					results[c.si].Cases[c.ci] = r.runCase(suites[c.si], &suites[c.si].Cases[c.ci], wtid)
				}
			}(w + 1)
		}
		for _, c := range cells {
			jobs <- c
		}
		close(jobs)
		wg.Wait()
	}

	for _, sr := range results {
		for i := range sr.Cases {
			sr.Duration += sr.Cases[i].Duration
		}
	}
	return results
}

// runCase characterizes one grid cell and evaluates its assertions. The
// case span lands on the worker's trace track, so parallel grids nest
// cleanly in the trace.
func (r *Runner) runCase(s *Suite, c *Case, tid int) CaseResult {
	var span *telemetry.Span
	if r.Tracer != nil {
		span = r.Tracer.StartSpanOn(tid, "case "+c.Name, "scenario",
			telemetry.String("suite", s.Name), telemetry.String("machine", c.machine.Name),
			telemetry.String("mode", c.Mode))
	}
	start := r.now()
	out := CaseResult{Suite: s.Name, Case: c}
	out.Failures, out.Err = r.measure(c, tid)
	out.Duration = r.now().Sub(start)
	if span != nil {
		verdict := "pass"
		if !out.Passed() {
			verdict = "fail"
		}
		span.SetAttr(telemetry.String("verdict", verdict))
		span.End()
	}
	return out
}

func (r *Runner) measure(c *Case, tid int) ([]string, error) {
	sys, err := numa.NewSystem(c.machine)
	if err != nil {
		return nil, err
	}
	repeats := c.repeats
	if r.Repeats != 0 && !c.repeatsPinned {
		repeats = r.Repeats
	}
	cfg := core.Config{
		Threads: c.threads, Repeats: repeats, GapThreshold: c.gap,
		Sigma: c.sigma, Tracer: r.Tracer,
	}
	if c.plan != nil {
		plan := *c.plan
		if r.ChaosSeed != 0 {
			plan.Seed = r.ChaosSeed
		}
		cfg.Faults = &plan
		// Like the -chaos CLIs: double the default retry budget so every
		// reasonable plan converges, and let induced hangs cost no wall
		// time.
		cfg.MaxRetries = 10
		cfg.Clock = resilience.NewAutoClock(time.Unix(0, 0))
	}
	char, err := core.NewCharacterizer(sys, cfg)
	if err != nil {
		return nil, err
	}
	model, err := char.CharacterizeOn(topology.NodeID(c.Target), c.mode, tid)
	if err != nil {
		return nil, err
	}
	var failures []string
	for i := range c.Assert {
		if msg := c.Assert[i].check(c.machine, model); msg != "" {
			failures = append(failures, msg)
		}
	}
	return failures, nil
}

// Summarize renders the grid outcome as the human summary table: one row
// per case, pass/fail/error verdicts, durations and first failure detail.
func Summarize(results []*SuiteResult) *report.Table {
	var total, failed, errored int
	for _, sr := range results {
		t, f, e := sr.Totals()
		total, failed, errored = total+t, failed+f, errored+e
	}
	tbl := report.NewTable(
		fmt.Sprintf("Scenario matrix — %d cases: %d passed, %d failed, %d errored",
			total, total-failed-errored, failed, errored),
		"suite", "case", "machine", "mode", "result", "time", "detail")
	for _, sr := range results {
		for i := range sr.Cases {
			cr := &sr.Cases[i]
			verdict, detail := "pass", ""
			switch {
			case cr.Err != nil:
				verdict, detail = "ERROR", cr.Err.Error()
			case len(cr.Failures) > 0:
				verdict, detail = "FAIL", cr.Failures[0]
				if len(cr.Failures) > 1 {
					detail += fmt.Sprintf(" (+%d more)", len(cr.Failures)-1)
				}
			}
			tbl.AddRow(cr.Suite, cr.Case.Name, cr.Case.machine.Name, cr.Case.Mode,
				verdict, cr.Duration.Round(time.Millisecond).String(), detail)
		}
	}
	return tbl
}

// FailedCases counts cases that did not pass across all suites.
func FailedCases(results []*SuiteResult) int {
	n := 0
	for _, sr := range results {
		_, f, e := sr.Totals()
		n += f + e
	}
	return n
}
